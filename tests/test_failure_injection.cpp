// Failure injection: corrupted commons files, poisoned inputs, and
// degenerate histories must produce clear errors or safe no-predictions —
// never silent wrong answers.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "lineage/tracker.hpp"
#include "nas/search_space.hpp"
#include "penguin/engine.hpp"
#include "util/fsutil.hpp"

namespace a4nn {
namespace {

namespace fs = std::filesystem;

struct CommonsFixture : ::testing::Test {
  void SetUp() override {
    root = util::make_temp_dir("a4nn-fail");
    lineage::LineageTracker tracker({root, 0});
    util::Rng rng(1);
    nas::EvaluationRecord r;
    r.genome = nas::random_genome(3, 4, rng);
    r.model_id = 0;
    r.fitness_history = {50.0, 70.0};
    tracker.record_evaluation(r);
  }
  void TearDown() override { fs::remove_all(root); }
  fs::path root;
};

TEST_F(CommonsFixture, CorruptedRecordJsonThrows) {
  util::write_file(root / "models" / "model_00000" / "record.json",
                   "{ not json");
  lineage::DataCommons commons(root);
  EXPECT_THROW(commons.load_records(), util::JsonError);
}

TEST_F(CommonsFixture, RecordMissingFieldsThrows) {
  util::write_file(root / "models" / "model_00000" / "record.json",
                   R"({"model_id": 3})");
  lineage::DataCommons commons(root);
  EXPECT_THROW(commons.load_records(), util::JsonError);
}

TEST_F(CommonsFixture, TruncatedCheckpointThrows) {
  util::write_file(root / "models" / "model_00000" / "epoch_0001.ckpt.json",
                   R"({"input_shape": [1, 8, 8], "spec")");
  lineage::DataCommons commons(root);
  EXPECT_THROW(commons.load_model(0, 1), util::JsonError);
}

TEST_F(CommonsFixture, CheckpointWithWrongWeightsThrows) {
  // A structurally valid checkpoint whose weights do not match its spec.
  util::Rng rng(2);
  nas::SearchSpaceConfig space;
  space.input_shape = {1, 8, 8};
  nn::Model model =
      nas::decode_genome(nas::random_genome(3, 4, rng), space, rng);
  util::Json ckpt = model.checkpoint();
  ckpt["weights"] = util::Json::object();  // drop every layer's weights
  util::write_file(root / "models" / "model_00000" / "epoch_0002.ckpt.json",
                   ckpt.dump());
  lineage::DataCommons commons(root);
  EXPECT_THROW(commons.load_model(0, 2), util::JsonError);
}

TEST_F(CommonsFixture, MissingSearchConfigThrows) {
  lineage::DataCommons commons(root);
  EXPECT_THROW(commons.search_config(), std::runtime_error);
}

TEST(EngineRobustness, NanHistoryYieldsNoPrediction) {
  const penguin::PredictionEngine engine(penguin::default_engine_config());
  const std::vector<double> with_nan{50.0, std::nan(""), 70.0, 80.0};
  EXPECT_FALSE(engine.predict(with_nan).has_value());
}

TEST(EngineRobustness, InfiniteHistoryYieldsNoPrediction) {
  const penguin::PredictionEngine engine(penguin::default_engine_config());
  const std::vector<double> with_inf{
      50.0, std::numeric_limits<double>::infinity(), 70.0, 80.0};
  EXPECT_FALSE(engine.predict(with_inf).has_value());
}

TEST(EngineRobustness, ConstantHistoryStaysSafe) {
  // A perfectly flat curve has no increasing trend to extrapolate; the
  // engine may predict the plateau or abstain, but must never produce an
  // out-of-bounds convergence.
  const penguin::PredictionEngine engine(penguin::default_engine_config());
  const std::vector<double> flat(10, 80.0);
  const auto p = engine.predict(flat);
  if (p) {
    EXPECT_NEAR(*p, 80.0, 5.0);
  }
}

TEST(EngineRobustness, HistoryShorterThanCMinYieldsNoPrediction) {
  penguin::EngineConfig cfg = penguin::default_engine_config();
  ASSERT_GE(cfg.c_min, 1u);
  const penguin::PredictionEngine engine(cfg);
  EXPECT_FALSE(engine.predict(std::vector<double>{}).has_value());
  std::vector<double> history;
  for (std::size_t e = 1; e < cfg.c_min; ++e) {
    history.push_back(45.0 + static_cast<double>(e));
    EXPECT_FALSE(engine.predict(history).has_value())
        << "history of " << history.size() << " < c_min predicted";
  }
}

TEST(EngineRobustness, AllZeroHistoryStaysFinite) {
  // A degenerate flat-zero curve (dead model) must never yield a NaN/inf
  // prediction that could poison the NAS fitness.
  const penguin::PredictionEngine engine(penguin::default_engine_config());
  const std::vector<double> zeros(10, 0.0);
  const auto p = engine.predict(zeros);
  if (p) EXPECT_TRUE(std::isfinite(*p));
}

TEST(EngineRobustness, ConvergenceNeedsFullWindowAndBounds) {
  penguin::EngineConfig cfg = penguin::default_engine_config();
  const penguin::PredictionEngine engine(cfg);
  // Fewer predictions than the window: never converged.
  EXPECT_FALSE(engine.converged(std::vector<double>{}));
  EXPECT_FALSE(engine.converged(std::vector<double>(cfg.window - 1, 80.0)));
  // Out-of-bounds predictions invalidate the window even at variance 0.
  EXPECT_FALSE(engine.converged(std::vector<double>(cfg.window, 150.0)));
  EXPECT_FALSE(engine.converged(std::vector<double>(cfg.window, -3.0)));
  // A stable, in-bounds window converges.
  EXPECT_TRUE(engine.converged(std::vector<double>(cfg.window, 80.0)));
}

TEST(EngineRobustness, SimulateEmptyCurve) {
  const penguin::PredictionEngine engine(penguin::default_engine_config());
  const auto sim =
      penguin::simulate_early_termination(std::vector<double>{}, engine);
  EXPECT_EQ(sim.epochs_trained, 0u);
  EXPECT_FALSE(sim.early_terminated);
  EXPECT_DOUBLE_EQ(sim.reported_fitness, 0.0);
}

TEST(FsRobustness, WriteToUnwritablePathThrows) {
  EXPECT_THROW(util::write_file("/proc/a4nn-cannot-write/here.txt", "x"),
               std::exception);
}

}  // namespace
}  // namespace a4nn
