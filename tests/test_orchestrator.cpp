// Orchestrator: Algorithm-1 semantics of the training loop and the
// generation-level evaluator with FIFO placement.
#include <gtest/gtest.h>

#include <cmath>

#include "orchestrator/workflow_evaluator.hpp"
#include "xfel/dataset.hpp"

namespace a4nn::orchestrator {
namespace {

struct Fixture {
  Fixture() {
    xfel::XfelDatasetConfig cfg;
    cfg.images_per_class = 150;
    cfg.detector.pixels = 12;
    cfg.intensity = xfel::BeamIntensity::kHigh;  // easy -> fast saturation
    data = xfel::generate_xfel_dataset(cfg);
    space.input_shape = {1, 12, 12};
    space.stem_channels = 4;
  }
  xfel::XfelDataset data;
  nas::SearchSpaceConfig space;
};

TrainerConfig fast_trainer(bool engine) {
  TrainerConfig cfg;
  cfg.max_epochs = 8;
  cfg.batch_size = 16;
  cfg.learning_rate = 0.02;
  cfg.use_prediction_engine = engine;
  cfg.engine.e_pred = 8.0;
  return cfg;
}

TEST(TrainingLoop, ValidatesInputs) {
  Fixture f;
  nn::Dataset empty(1, 8, 8);
  EXPECT_THROW(TrainingLoop(empty, f.data.validation, fast_trainer(false)),
               std::invalid_argument);
  TrainerConfig zero = fast_trainer(false);
  zero.max_epochs = 0;
  EXPECT_THROW(TrainingLoop(f.data.train, f.data.validation, zero),
               std::invalid_argument);
}

TEST(TrainingLoop, StandaloneTrainsExactlyMaxEpochs) {
  Fixture f;
  TrainingLoop loop(f.data.train, f.data.validation, fast_trainer(false));
  util::Rng rng(1);
  const nas::Genome g = nas::random_genome(3, 4, rng);
  const nas::EvaluationRecord r = loop.train_genome(g, f.space, 0, 42);
  EXPECT_EQ(r.epochs_trained, 8u);
  EXPECT_FALSE(r.early_terminated);
  EXPECT_TRUE(r.prediction_history.empty());
  EXPECT_EQ(r.fitness_history.size(), 8u);
  EXPECT_EQ(r.train_accuracy_history.size(), 8u);
  EXPECT_EQ(r.train_loss_history.size(), 8u);
  // Standalone fitness is the last measured accuracy.
  EXPECT_DOUBLE_EQ(r.fitness, r.fitness_history.back());
  EXPECT_DOUBLE_EQ(r.measured_fitness, r.fitness_history.back());
  EXPECT_EQ(r.genome.key(), g.key());
  EXPECT_GT(r.flops, 0u);
  EXPECT_GT(r.parameters, 0u);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(TrainingLoop, VirtualTimeMatchesCostModel) {
  Fixture f;
  TrainerConfig cfg = fast_trainer(false);
  TrainingLoop loop(f.data.train, f.data.validation, cfg);
  util::Rng rng(2);
  const nas::EvaluationRecord r =
      loop.train_genome(nas::random_genome(3, 4, rng), f.space, 0, 7);
  const double per_epoch = cfg.cost.epoch_seconds(r.flops);
  EXPECT_DOUBLE_EQ(r.virtual_seconds,
                   per_epoch * static_cast<double>(r.epochs_trained));
  ASSERT_EQ(r.epoch_virtual_seconds.size(), r.epochs_trained);
  EXPECT_DOUBLE_EQ(r.epoch_virtual_seconds[0], per_epoch);
}

TEST(TrainingLoop, EngineTerminatesEarlyOnSaturatingCurve) {
  // High-intensity data saturates quickly; across a few seeds at least one
  // model should terminate early, and every early-terminated record must
  // carry consistent histories.
  Fixture f;
  TrainerConfig cfg = fast_trainer(true);
  cfg.max_epochs = 20;
  cfg.engine.e_pred = 20.0;
  TrainingLoop loop(f.data.train, f.data.validation, cfg);
  util::Rng rng(3);
  bool any_early = false;
  for (int trial = 0; trial < 6 && !any_early; ++trial) {
    const nas::EvaluationRecord r = loop.train_genome(
        nas::random_genome(3, 4, rng), f.space, trial, 1000 + trial);
    EXPECT_LE(r.epochs_trained, 20u);
    if (r.early_terminated) {
      any_early = true;
      EXPECT_LT(r.epochs_trained, 20u);
      // Converged fitness is the last prediction, within valid bounds.
      EXPECT_DOUBLE_EQ(r.fitness, r.prediction_history.back());
      EXPECT_GE(r.fitness, 0.0);
      EXPECT_LE(r.fitness, 100.0);
      EXPECT_GT(r.engine_overhead_seconds, 0.0);
    }
  }
  EXPECT_TRUE(any_early);
}

TEST(SimulatedTermination, FinalEpochConvergenceReportsMeasuredFitness) {
  // Regression: convergence that lands exactly on the last epoch of the
  // curve saves no training, so the measured fitness — not the engine's
  // extrapolation — is what gets reported. The old code handed back the
  // prediction, silently re-scoring fully-trained models.
  penguin::EngineConfig ecfg = penguin::default_engine_config();
  ecfg.c_min = 10;     // first prediction only at the final epoch
  ecfg.window = 1;     // ...which immediately satisfies convergence
  ecfg.tolerance = 5.0;
  ecfg.e_pred = 25.0;  // extrapolates past the curve, so the plateau
                       // estimate differs from the last measured value
  const penguin::PredictionEngine engine(ecfg);

  std::vector<double> curve;  // y = 80 - 1.3^(5 - x), plateau at 80
  for (int e = 1; e <= 10; ++e)
    curve.push_back(80.0 - std::pow(1.3, 5.0 - static_cast<double>(e)));

  const penguin::SimulatedTermination sim =
      penguin::simulate_early_termination(curve, engine);
  EXPECT_EQ(sim.epochs_trained, 10u);
  EXPECT_FALSE(sim.early_terminated);
  ASSERT_EQ(sim.prediction_history.size(), 1u);
  EXPECT_DOUBLE_EQ(sim.reported_fitness, curve.back());
  EXPECT_NE(sim.reported_fitness, sim.prediction_history.back());
}

TEST(TrainingLoop, TerminationSemanticsMatchSimulateOnIdenticalCurve) {
  // The shared contract between the live loop and the ablation-bench
  // simulator: replaying an engine over the standalone run's full fitness
  // curve must reproduce exactly what the engine-enabled loop did on the
  // same genome/seed — same stop epoch, same early/full decision, same
  // reported fitness, same prediction trail.
  Fixture f;
  util::Rng rng(17);
  const nas::Genome g = nas::random_genome(3, 4, rng);

  TrainerConfig standalone = fast_trainer(false);
  standalone.max_epochs = 20;
  TrainingLoop bare(f.data.train, f.data.validation, standalone);
  const nas::EvaluationRecord full = bare.train_genome(g, f.space, 0, 77);
  ASSERT_EQ(full.fitness_history.size(), 20u);

  TrainerConfig with_engine = fast_trainer(true);
  with_engine.max_epochs = 20;
  with_engine.engine.e_pred = 20.0;
  TrainingLoop live(f.data.train, f.data.validation, with_engine);
  const nas::EvaluationRecord r = live.train_genome(g, f.space, 0, 77);

  const penguin::PredictionEngine engine(with_engine.engine);
  const penguin::SimulatedTermination sim =
      penguin::simulate_early_termination(full.fitness_history, engine);
  EXPECT_EQ(r.early_terminated, sim.early_terminated);
  EXPECT_EQ(r.epochs_trained, sim.epochs_trained);
  EXPECT_DOUBLE_EQ(r.fitness, sim.reported_fitness);
  ASSERT_EQ(r.prediction_history.size(), sim.prediction_history.size());
  for (std::size_t i = 0; i < sim.prediction_history.size(); ++i)
    EXPECT_DOUBLE_EQ(r.prediction_history[i], sim.prediction_history[i]);
}

TEST(TrainerConfig, LrSchedules) {
  TrainerConfig cfg;
  cfg.learning_rate = 0.1;
  cfg.min_learning_rate = 0.01;
  cfg.max_epochs = 25;

  cfg.lr_schedule = LrSchedule::kConstant;
  EXPECT_DOUBLE_EQ(cfg.lr_at(1), 0.1);
  EXPECT_DOUBLE_EQ(cfg.lr_at(25), 0.1);

  cfg.lr_schedule = LrSchedule::kCosine;
  EXPECT_DOUBLE_EQ(cfg.lr_at(1), 0.1);               // starts at lr
  EXPECT_NEAR(cfg.lr_at(25), 0.01, 1e-12);           // ends at the floor
  EXPECT_NEAR(cfg.lr_at(13), 0.055, 1e-12);          // midpoint = average
  // Monotone decreasing.
  for (std::size_t e = 2; e <= 25; ++e)
    EXPECT_LE(cfg.lr_at(e), cfg.lr_at(e - 1));

  cfg.lr_schedule = LrSchedule::kStep;
  cfg.step_every = 10;
  EXPECT_DOUBLE_EQ(cfg.lr_at(10), 0.1);
  EXPECT_DOUBLE_EQ(cfg.lr_at(11), 0.05);
  EXPECT_DOUBLE_EQ(cfg.lr_at(21), 0.025);
  EXPECT_THROW(cfg.lr_at(0), std::invalid_argument);
  EXPECT_STREQ(lr_schedule_name(LrSchedule::kCosine), "cosine");
}

TEST(TrainingLoop, CosineScheduleTrains) {
  Fixture f;
  TrainerConfig cfg = fast_trainer(false);
  cfg.lr_schedule = LrSchedule::kCosine;
  TrainingLoop loop(f.data.train, f.data.validation, cfg);
  util::Rng rng(21);
  const nas::EvaluationRecord r =
      loop.train_genome(nas::random_genome(3, 4, rng), f.space, 0, 99);
  EXPECT_EQ(r.epochs_trained, cfg.max_epochs);
  // Training actually learned something beyond chance.
  EXPECT_GT(r.fitness_history.back(), 60.0);
}

TEST(TrainingLoop, DeterministicForSeed) {
  Fixture f;
  TrainingLoop loop(f.data.train, f.data.validation, fast_trainer(false));
  util::Rng rng(4);
  const nas::Genome g = nas::random_genome(3, 4, rng);
  const auto r1 = loop.train_genome(g, f.space, 0, 123);
  const auto r2 = loop.train_genome(g, f.space, 0, 123);
  EXPECT_EQ(r1.fitness_history, r2.fitness_history);
  const auto r3 = loop.train_genome(g, f.space, 0, 124);
  EXPECT_NE(r1.fitness_history, r3.fitness_history);
}

TEST(WorkflowEvaluator, AssignsIdsGenerationsAndDevices) {
  Fixture f;
  TrainingLoop loop(f.data.train, f.data.validation, fast_trainer(false));
  sched::ClusterConfig ccfg;
  ccfg.num_gpus = 2;
  sched::ResourceManager cluster(ccfg);
  WorkflowEvaluator eval(loop, cluster, f.space, 99);

  util::Rng rng(5);
  std::vector<nas::Genome> gen1{nas::random_genome(3, 4, rng),
                                nas::random_genome(3, 4, rng),
                                nas::random_genome(3, 4, rng)};
  auto records = eval.evaluate_generation(gen1, 0);
  ASSERT_EQ(records.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(records[i].model_id, static_cast<int>(i));
    EXPECT_EQ(records[i].generation, 0);
    EXPECT_GE(records[i].device_id, 0);
    EXPECT_LT(records[i].device_id, 2);
  }
  // Next generation continues the id sequence.
  std::vector<nas::Genome> gen2{nas::random_genome(3, 4, rng)};
  auto records2 = eval.evaluate_generation(gen2, 1);
  EXPECT_EQ(records2[0].model_id, 3);
  EXPECT_EQ(eval.schedules().size(), 2u);
  EXPECT_GT(eval.schedules()[1].makespan_end,
            eval.schedules()[0].makespan_end);
}

TEST(WorkflowEvaluator, ParallelExecutionMatchesSerial) {
  Fixture f;
  TrainingLoop loop(f.data.train, f.data.validation, fast_trainer(false));
  util::Rng rng(6);
  std::vector<nas::Genome> genomes;
  for (int i = 0; i < 4; ++i) genomes.push_back(nas::random_genome(3, 4, rng));

  auto run = [&](bool parallel) {
    sched::ClusterConfig ccfg;
    ccfg.num_gpus = 2;
    ccfg.parallel_execution = parallel;
    sched::ResourceManager cluster(ccfg);
    WorkflowEvaluator eval(loop, cluster, f.space, 7);
    return eval.evaluate_generation(genomes, 0);
  };
  const auto serial = run(false);
  const auto parallel = run(true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Training is seeded per model id, so results are identical regardless
    // of execution interleaving.
    EXPECT_EQ(serial[i].fitness_history, parallel[i].fitness_history);
    EXPECT_EQ(serial[i].device_id, parallel[i].device_id);
  }
}

TEST(WorkflowEvaluator, PreloadedGenomeMismatchRetrainsWithWarning) {
  Fixture f;
  TrainingLoop loop(f.data.train, f.data.validation, fast_trainer(false));
  sched::ClusterConfig ccfg;
  ccfg.parallel_execution = false;
  sched::ResourceManager cluster(ccfg);
  WorkflowEvaluator eval(loop, cluster, f.space, 99);

  util::Rng rng(8);
  const nas::Genome requested = nas::random_genome(3, 4, rng);
  nas::Genome stale = nas::random_genome(3, 4, rng);
  int tries = 0;
  while (stale.key() == requested.key() && tries++ < 32)
    stale = nas::random_genome(3, 4, rng);
  ASSERT_NE(stale.key(), requested.key());

  // A commons from a different seed/config: same model id, other genome.
  nas::EvaluationRecord cached;
  cached.model_id = 0;
  cached.genome = stale;
  cached.fitness = 99.0;
  cached.virtual_seconds = 1.0;
  eval.preload_records({cached});

  std::vector<nas::Genome> genomes{requested};
  const auto records = eval.evaluate_generation(genomes, 0);
  EXPECT_EQ(eval.genome_mismatches(), 1u);
  EXPECT_EQ(eval.resumed_count(), 0u);
  // The stale result was discarded: the record is a real retrain of the
  // requested genome.
  EXPECT_EQ(records[0].genome.key(), requested.key());
  EXPECT_NE(records[0].fitness, 99.0);
  EXPECT_EQ(records[0].epochs_trained, 8u);
}

TEST(WorkflowEvaluator, MatchingPreloadIsReusedWithoutMismatch) {
  Fixture f;
  TrainingLoop loop(f.data.train, f.data.validation, fast_trainer(false));
  sched::ClusterConfig ccfg;
  ccfg.parallel_execution = false;
  sched::ResourceManager cluster(ccfg);
  WorkflowEvaluator eval(loop, cluster, f.space, 99);

  util::Rng rng(9);
  const nas::Genome g = nas::random_genome(3, 4, rng);
  nas::EvaluationRecord cached;
  cached.model_id = 0;
  cached.genome = g;
  cached.fitness = 77.5;
  cached.virtual_seconds = 12.0;
  eval.preload_records({cached});

  std::vector<nas::Genome> genomes{g};
  const auto records = eval.evaluate_generation(genomes, 0);
  EXPECT_EQ(eval.resumed_count(), 1u);
  EXPECT_EQ(eval.genome_mismatches(), 0u);
  EXPECT_DOUBLE_EQ(records[0].fitness, 77.5);
}

}  // namespace
}  // namespace a4nn::orchestrator
