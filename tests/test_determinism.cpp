// Determinism regression: training and the full seeded search must be
// bit-identical regardless of the kernel worker count. This is what lets
// the PENGUIN prediction engine terminate training early on reproducible
// per-epoch fitness whether the host has 1 core or 64, and makes runs
// comparable across machines.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/a4nn.hpp"
#include "nn/factory.hpp"
#include "nn/layers.hpp"
#include "nn/model.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace a4nn {
namespace {

// Restores the global kernel worker count even when an assertion fails.
struct IntraOpGuard {
  ~IntraOpGuard() { tensor::set_intra_op_threads(1); }
};

nn::Dataset synthetic_dataset(std::size_t samples, std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Dataset data(1, 8, 8);
  std::vector<float> img(64);
  for (std::size_t i = 0; i < samples; ++i) {
    const std::int64_t label = static_cast<std::int64_t>(i % 2);
    for (auto& p : img)
      p = static_cast<float>(rng.normal()) + (label ? 0.5f : -0.5f);
    data.add_sample(img, label);
  }
  return data;
}

std::unique_ptr<nn::Sequential> small_trunk(std::uint64_t seed) {
  util::Rng rng(seed);
  auto seq = std::make_unique<nn::Sequential>();
  seq->append(std::make_unique<nn::Conv2d>(1, 4, 3, 1, 1, rng));
  seq->append(std::make_unique<nn::ReLU>());
  seq->append(std::make_unique<nn::MaxPool2d>(2));
  seq->append(std::make_unique<nn::Flatten>());
  seq->append(std::make_unique<nn::Linear>(4 * 4 * 4, 2, rng));
  return seq;
}

// Train a small model from a fixed seed and return its final weights as a
// canonical string.
std::string train_and_dump(std::size_t kernel_threads, bool fuse) {
  tensor::set_intra_op_threads(kernel_threads);
  auto trunk = small_trunk(99);
  if (fuse) trunk->fuse_epilogues();
  nn::Model model(std::move(trunk), {1, 8, 8});
  const nn::Dataset data = synthetic_dataset(48, 7);
  nn::Sgd opt(0.05, 0.9, 1e-4);
  util::Rng rng(5);
  for (int epoch = 0; epoch < 3; ++epoch)
    model.train_epoch(data, 8, opt, rng);
  return model.trunk().weights().dump();
}

TEST(Determinism, TrainingBitIdenticalAtPoolSizes128) {
  IntraOpGuard guard;
  const std::string w1 = train_and_dump(1, /*fuse=*/false);
  const std::string w2 = train_and_dump(2, /*fuse=*/false);
  const std::string w8 = train_and_dump(8, /*fuse=*/false);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(w1, w8);
}

TEST(Determinism, TrainingBitIdenticalAtPoolSizesUnderTunedBlocking) {
  // The autotuner may install per-(k, n) blocking that changes KC and the
  // small-path cutoff — a different (but fixed) summation order. Pool-size
  // invariance must survive any such table: the order may depend on the
  // tuned config, never on the worker count.
  IntraOpGuard guard;
  struct TableGuard {
    ~TableGuard() { tensor::clear_tuned_tile_configs(); }
  } table_guard;
  // The shapes this model's layers emit: conv im2col GEMM (k=9, n=64) and
  // the dense layer (k=64, n=2). Non-default kc and a forced blocked path
  // make the tuned order observably different from the compiled defaults.
  tensor::TileConfig forced;
  forced.mc = 36;
  forced.kc = 4;
  forced.nc = 64;
  forced.small_row_flops = 0;
  tensor::set_tuned_tile_configs({{9, 64, forced}, {64, 2, forced}});
  const std::string w1 = train_and_dump(1, /*fuse=*/false);
  const std::string w2 = train_and_dump(2, /*fuse=*/false);
  const std::string w8 = train_and_dump(8, /*fuse=*/false);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(w1, w8);
}

TEST(Determinism, FusedEpiloguesMatchUnfusedTraining) {
  // fuse_epilogues() folds Conv/Linear + ReLU into one layer; the fused
  // network must train to bit-identical weights.
  IntraOpGuard guard;
  const std::string unfused = train_and_dump(1, /*fuse=*/false);
  const std::string fused = train_and_dump(1, /*fuse=*/true);
  // The dumps differ in layer count (ReLU removed), so compare the layers
  // that carry weights: conv is layer 0 in both; linear is layer 4 vs 3.
  const util::Json ju = util::Json::parse(unfused);
  const util::Json jf = util::Json::parse(fused);
  const auto& lu = ju.at("layers").as_array();
  const auto& lf = jf.at("layers").as_array();
  ASSERT_EQ(lu.size(), 5u);
  ASSERT_EQ(lf.size(), 4u);
  EXPECT_TRUE(lu[0] == lf[0]) << "conv weights diverged";
  EXPECT_TRUE(lu[4] == lf[3]) << "linear weights diverged";
}

TEST(Determinism, FusedModelSpecRoundTripsThroughFactory) {
  auto trunk = small_trunk(42);
  ASSERT_EQ(trunk->fuse_epilogues(), 1u);
  ASSERT_EQ(trunk->layer_count(), 4u);
  const util::Json spec = trunk->spec();
  util::Rng rng(0);
  auto rebuilt = nn::make_sequential(spec, rng);
  EXPECT_EQ(rebuilt->spec().dump(), spec.dump());
  auto* conv = dynamic_cast<nn::Conv2d*>(&rebuilt->layer(0));
  ASSERT_NE(conv, nullptr);
  EXPECT_EQ(conv->activation(), nn::Activation::kRelu);
}

core::WorkflowConfig mini_search_config() {
  core::WorkflowConfig cfg;
  cfg.dataset.images_per_class = 40;
  cfg.dataset.detector.pixels = 8;
  cfg.dataset.intensity = xfel::BeamIntensity::kHigh;
  cfg.nas.population_size = 4;
  cfg.nas.offspring_per_generation = 4;
  cfg.nas.generations = 2;
  cfg.nas.max_epochs = 6;
  cfg.nas.space.input_shape = {1, 8, 8};
  cfg.nas.space.stem_channels = 4;
  cfg.trainer.max_epochs = 6;
  cfg.trainer.engine.e_pred = 6.0;
  cfg.cluster.num_gpus = 2;
  return cfg;
}

struct SearchFingerprint {
  std::vector<std::vector<double>> fitness_histories;
  std::vector<double> fitness;
  std::vector<std::size_t> pareto;
  std::vector<std::size_t> final_population;

  bool operator==(const SearchFingerprint&) const = default;
};

SearchFingerprint run_mini_search(std::size_t kernel_threads) {
  tensor::set_intra_op_threads(kernel_threads);
  core::A4nnWorkflow workflow(mini_search_config());
  const core::WorkflowResult result = workflow.run();
  SearchFingerprint fp;
  for (const auto& r : result.search.history) {
    fp.fitness_histories.push_back(r.fitness_history);
    fp.fitness.push_back(r.fitness);
  }
  fp.pareto = result.search.pareto;
  fp.final_population = result.search.final_population;
  return fp;
}

TEST(Determinism, TracingDoesNotPerturbSearchResults) {
  // The tracing layer's zero-interference guarantee: a fully-instrumented
  // run (spans + metrics recording everywhere) produces bit-identical
  // search results to a bare one. Recording must never touch RNG streams,
  // float accumulation order, or scheduling.
  IntraOpGuard guard;
  const SearchFingerprint off = run_mini_search(1);

  util::trace::start();
  const SearchFingerprint on = run_mini_search(1);
  util::trace::stop();
  EXPECT_GT(util::trace::event_count(), 0u)
      << "tracing was supposed to be capturing during the second run";
  util::trace::clear();

  EXPECT_TRUE(off == on) << "tracing changed the search results";
}

TEST(Determinism, SeededSearchBitIdenticalAtPoolSizes128) {
  // Two-generation mini search, repeated at kernel pool sizes 1, 2 and 8:
  // per-epoch fitness histories (the engine's early-termination input),
  // final fitness, Pareto front, and surviving population must all match
  // exactly — not approximately.
  IntraOpGuard guard;
  const SearchFingerprint f1 = run_mini_search(1);
  const SearchFingerprint f2 = run_mini_search(2);
  const SearchFingerprint f8 = run_mini_search(8);
  ASSERT_EQ(f1.fitness_histories.size(), 8u);
  EXPECT_TRUE(f1 == f2) << "pool size 2 diverged from serial";
  EXPECT_TRUE(f1 == f8) << "pool size 8 diverged from serial";
}

}  // namespace
}  // namespace a4nn
