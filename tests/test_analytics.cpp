// Analyzer: Pareto selection, savings/termination statistics, queries, and
// architecture rendering on synthetic record sets.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analytics/analyzer.hpp"
#include "analytics/dot_export.hpp"

namespace a4nn::analytics {
namespace {

nas::EvaluationRecord make_record(int id, double fitness, std::uint64_t flops,
                                  std::size_t epochs, bool early,
                                  int generation = 0) {
  nas::EvaluationRecord r;
  r.model_id = id;
  r.generation = generation;
  r.fitness = fitness;
  r.measured_fitness = fitness;
  r.flops = flops;
  r.epochs_trained = epochs;
  r.max_epochs = 25;
  r.early_terminated = early;
  for (std::size_t e = 1; e <= epochs; ++e) {
    // Concave saturating synthetic curve toward `fitness`.
    r.fitness_history.push_back(
        fitness * (1.0 - std::exp(-0.4 * static_cast<double>(e))));
  }
  return r;
}

TEST(Analytics, ParetoIndices) {
  std::vector<nas::EvaluationRecord> records{
      make_record(0, 99.0, 5000, 25, false),
      make_record(1, 95.0, 1000, 25, false),   // cheaper, less accurate
      make_record(2, 90.0, 6000, 25, false),   // dominated by 0
      make_record(3, 99.0, 4000, 25, false)};  // dominates 0 on flops
  const auto pareto = pareto_indices(records);
  const std::set<std::size_t> s(pareto.begin(), pareto.end());
  EXPECT_TRUE(s.count(1));
  EXPECT_TRUE(s.count(3));
  EXPECT_FALSE(s.count(2));
  EXPECT_FALSE(s.count(0));  // dominated by 3
}

TEST(Analytics, EpochSavings) {
  std::vector<nas::EvaluationRecord> records{
      make_record(0, 95, 100, 10, true), make_record(1, 96, 100, 25, false),
      make_record(2, 97, 100, 15, true)};
  const EpochSavings s = epoch_savings(records);
  EXPECT_EQ(s.epochs_trained, 50u);
  EXPECT_EQ(s.epochs_budget, 75u);
  EXPECT_NEAR(s.saved_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(s.early_terminated, 2u);
  EXPECT_NEAR(s.early_terminated_fraction, 2.0 / 3.0, 1e-12);
}

TEST(Analytics, EpochSavingsEmptyIsZero) {
  const EpochSavings s = epoch_savings(std::vector<nas::EvaluationRecord>{});
  EXPECT_DOUBLE_EQ(s.saved_fraction, 0.0);
  EXPECT_EQ(s.epochs_trained, 0u);
}

TEST(Analytics, TerminationStats) {
  std::vector<nas::EvaluationRecord> records{
      make_record(0, 95, 100, 10, true), make_record(1, 96, 100, 25, false),
      make_record(2, 97, 100, 14, true), make_record(3, 98, 100, 12, true)};
  const TerminationStats t = termination_stats(records);
  EXPECT_EQ(t.termination_epochs.size(), 3u);
  EXPECT_DOUBLE_EQ(t.mean_e_t, 12.0);
  EXPECT_DOUBLE_EQ(t.early_fraction, 0.75);
  EXPECT_EQ(t.histogram.counts.size(), 25u);
  EXPECT_EQ(t.histogram.total(), 3u);
}

TEST(Analytics, FitnessSummary) {
  std::vector<nas::EvaluationRecord> records{
      make_record(0, 90, 2000, 25, false), make_record(1, 99, 1000, 25, false),
      make_record(2, 80, 3000, 25, false)};
  const FitnessSummary s = fitness_summary(records);
  EXPECT_DOUBLE_EQ(s.best, 99.0);
  EXPECT_DOUBLE_EQ(s.worst, 80.0);
  EXPECT_NEAR(s.mean, 89.666, 0.01);
  EXPECT_DOUBLE_EQ(s.best_pareto, 99.0);
  EXPECT_DOUBLE_EQ(s.best_pareto_flops, 1000.0);
}

TEST(Analytics, FlopsFitnessCorrelation) {
  std::vector<nas::EvaluationRecord> pos{
      make_record(0, 90, 1000, 25, false), make_record(1, 95, 2000, 25, false),
      make_record(2, 99, 3000, 25, false)};
  EXPECT_GT(flops_fitness_correlation(pos), 0.9);
}

TEST(Analytics, CurveShapeDetectsConcavity) {
  std::vector<nas::EvaluationRecord> records{
      make_record(0, 95, 100, 20, false), make_record(1, 90, 100, 20, false)};
  const CurveShape shape = curve_shape(records);
  EXPECT_DOUBLE_EQ(shape.increasing_fraction, 1.0);
  // Saturating curves: early gain dwarfs late gain.
  EXPECT_GT(shape.mean_first_half_gain, shape.mean_second_half_gain * 2.0);
}

TEST(Analytics, FindRecordsComposesFilters) {
  std::vector<nas::EvaluationRecord> records{
      make_record(0, 95, 1000, 10, true, 0),
      make_record(1, 85, 500, 25, false, 1),
      make_record(2, 99, 2000, 12, true, 1)};
  RecordQuery q;
  q.min_fitness = 90.0;
  EXPECT_EQ(find_records(records, q), (std::vector<std::size_t>{0, 2}));
  q.max_flops = 1500.0;
  EXPECT_EQ(find_records(records, q), (std::vector<std::size_t>{0}));
  RecordQuery early;
  early.early_terminated_only = true;
  early.generation = 1;
  EXPECT_EQ(find_records(records, early), (std::vector<std::size_t>{2}));
}

TEST(Analytics, RenderArchitectureShowsStructure) {
  nas::Genome g;
  for (int p = 0; p < 3; ++p) {
    nn::PhaseSpec spec;
    spec.nodes = 4;
    spec.bits = {true, false, true, false, false, false};  // 0->1, 1->2
    spec.skip = p == 1;
    g.phases.push_back(spec);
  }
  nas::SearchSpaceConfig space;
  const std::string art = render_architecture(g, space);
  EXPECT_NE(art.find("stem"), std::string::npos);
  EXPECT_NE(art.find("phase 1"), std::string::npos);
  EXPECT_NE(art.find("phase 3"), std::string::npos);
  EXPECT_NE(art.find("(+input skip)"), std::string::npos);
  EXPECT_NE(art.find("node 1: conv3x3+bn+relu <- node 0"), std::string::npos);
  EXPECT_NE(art.find("node 3: (pruned)"), std::string::npos);
  EXPECT_NE(art.find("global-avg-pool"), std::string::npos);
}

TEST(Analytics, RenderRepairsEmptyPhase) {
  nas::Genome g;
  for (int p = 0; p < 3; ++p) {
    nn::PhaseSpec spec;
    spec.nodes = 4;
    spec.bits.assign(6, false);
    g.phases.push_back(spec);
  }
  nas::SearchSpaceConfig space;
  const std::string art = render_architecture(g, space);
  // Node 0 repaired to active, reading the phase input.
  EXPECT_NE(art.find("node 0: conv3x3+bn+relu <- phase input"),
            std::string::npos);
}

TEST(Analytics, HypervolumeHandComputed) {
  // Minimization points (1,3),(2,2),(3,1) vs reference (4,4): staircase
  // area = 1*1 + 1*2 + 1*3 = 6.
  const std::vector<nas::Objectives> pts{{1, 3}, {2, 2}, {3, 1}};
  EXPECT_DOUBLE_EQ(hypervolume(pts, {4, 4}), 6.0);
  // Dominated points add nothing.
  const std::vector<nas::Objectives> with_dominated{
      {1, 3}, {2, 2}, {3, 1}, {2.5, 2.5}};
  EXPECT_DOUBLE_EQ(hypervolume(with_dominated, {4, 4}), 6.0);
  // Points outside the reference box contribute nothing.
  EXPECT_DOUBLE_EQ(hypervolume(pts, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(hypervolume({}, {4, 4}), 0.0);
}

TEST(Analytics, HypervolumeSinglePointIsBox) {
  const std::vector<nas::Objectives> pts{{1, 1}};
  EXPECT_DOUBLE_EQ(hypervolume(pts, {3, 5}), 8.0);
}

TEST(Analytics, FrontierHypervolumeNormalized) {
  std::vector<nas::EvaluationRecord> records{
      make_record(0, 100, 0, 25, false)};  // perfect corner
  // (acc 100, flops 0) dominates the whole (50..100) x (0..1000) box.
  EXPECT_NEAR(frontier_hypervolume(records, 50.0, 1000.0), 1.0, 1e-12);
  std::vector<nas::EvaluationRecord> mid{make_record(0, 75, 500, 25, false)};
  EXPECT_NEAR(frontier_hypervolume(mid, 50.0, 1000.0), 0.25, 1e-12);
  // A better frontier has larger hypervolume.
  std::vector<nas::EvaluationRecord> better{
      make_record(0, 75, 500, 25, false), make_record(1, 95, 800, 25, false)};
  EXPECT_GT(frontier_hypervolume(better, 50.0, 1000.0),
            frontier_hypervolume(mid, 50.0, 1000.0));
}

TEST(DotExport, RendersWellFormedDigraph) {
  nas::Genome g;
  for (int p = 0; p < 3; ++p) {
    nn::PhaseSpec spec;
    spec.nodes = 4;
    spec.bits = {true, false, true, false, false, false};
    spec.skip = p == 0;
    g.phases.push_back(spec);
  }
  nas::SearchSpaceConfig space;
  const std::string dot = to_dot(g, space);
  EXPECT_EQ(dot.rfind("digraph a4nn_model {", 0), 0u);
  EXPECT_EQ(dot.back(), '\n');
  // Balanced braces.
  std::size_t open = 0, close = 0;
  for (char c : dot) {
    if (c == '{') ++open;
    if (c == '}') ++close;
  }
  EXPECT_EQ(open, close);
  // One cluster per phase, skip edge highlighted, pruned node greyed.
  EXPECT_NE(dot.find("cluster_phase0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_phase2"), std::string::npos);
  EXPECT_NE(dot.find("label=\"skip\""), std::string::npos);
  EXPECT_NE(dot.find("#cccccc"), std::string::npos);
  // Stem feeds phase 0, head feeds output.
  EXPECT_NE(dot.find("stem -> p0_n0"), std::string::npos);
  EXPECT_NE(dot.find("head -> output"), std::string::npos);
}

TEST(DotExport, StyleAndRankdirApply) {
  nas::Genome g;
  for (int p = 0; p < 3; ++p) {
    nn::PhaseSpec spec;
    spec.nodes = 4;
    spec.bits.assign(6, true);
    g.phases.push_back(spec);
  }
  nas::SearchSpaceConfig space;
  DotStyle style;
  style.node_color = "#123456";
  style.rankdir_lr = true;
  const std::string dot = to_dot(g, space, style);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  EXPECT_NE(dot.find("#123456"), std::string::npos);
  // Fully connected phases have no pruned nodes.
  EXPECT_EQ(dot.find("#cccccc"), std::string::npos);
}

}  // namespace
}  // namespace a4nn::analytics
