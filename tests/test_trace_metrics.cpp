// The tracing/metrics layer: instrument semantics, the Chrome-trace
// document shape, the zero-overhead-when-off guarantee, and the workflow
// contract that RunSummary totals are *derived views* of the metrics
// registry — bit-identical to the ad-hoc sums they replaced, with the
// trace file's span arguments carrying the same exact numbers.
#include <gtest/gtest.h>

#include <map>

#include "analytics/analyzer.hpp"
#include "core/a4nn.hpp"
#include "sched/resource_manager.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace a4nn::util {
namespace {

namespace trace = util::trace;
namespace metrics = util::metrics;

// Restores the process-wide trace recorder to "off, empty" no matter how a
// test exits, so suites never leak tracing state into each other.
struct TraceGuard {
  ~TraceGuard() {
    trace::stop();
    trace::clear();
  }
};

TEST(Metrics, CounterAccumulatesAndResets) {
  metrics::Counter c;
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.add();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  c.reset();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(Metrics, GaugeSetAndHighWater) {
  metrics::Gauge g;
  g.set(4.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.update_max(2.0);  // below the current value: no change
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.update_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramClampsIntoEdgeBins) {
  metrics::Histogram h(0.0, 10.0, 5);
  h.observe(-3.0);   // clamps into bin 0
  h.observe(0.5);    // bin 0
  h.observe(5.0);    // bin 2
  h.observe(100.0);  // clamps into bin 4
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
}

TEST(Metrics, RegistryReturnsStableInstruments) {
  metrics::Registry reg;
  metrics::Counter& a = reg.counter("x");
  a.add(2.0);
  // Same name → same instrument, so increments land in one accumulator.
  EXPECT_EQ(&reg.counter("x"), &a);
  EXPECT_DOUBLE_EQ(reg.counter("x").value(), 2.0);
  metrics::Histogram& h = reg.histogram("lat", 0.0, 1.0, 4);
  // Re-requesting with a different shape still returns the original.
  EXPECT_EQ(&reg.histogram("lat", 0.0, 99.0, 17), &h);
}

TEST(Metrics, QuantilesMatchAKnownDistribution) {
  // 100 observations 0.5, 1.5, ..., 99.5 into 100 unit-wide bins over
  // [0, 100]: one count per bin, so the interpolated q-quantile is exactly
  // 100q and every estimate is exact, not just bin-accurate.
  metrics::Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.observe(i + 0.5);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  // q=0 sits at the bottom of the first occupied bin.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);

  // Skewed distribution: 90 fast requests in [0,10), 10 slow in [90,100).
  // The median lands in the fast band, p99 deep in the slow tail.
  metrics::Histogram skew(0.0, 100.0, 100);
  for (int i = 0; i < 90; ++i) skew.observe(5.0);
  for (int i = 0; i < 10; ++i) skew.observe(95.0);
  EXPECT_NEAR(skew.quantile(0.50), 5.5, 1.0);   // within the [5,6) bin
  EXPECT_NEAR(skew.quantile(0.95), 95.5, 1.0);  // within the [95,96) bin
  EXPECT_GT(skew.quantile(0.99), 95.0);
  EXPECT_LE(skew.quantile(0.99), 96.0);

  // Empty histogram answers lo (a server that has seen no traffic).
  metrics::Histogram empty(2.0, 8.0, 4);
  EXPECT_DOUBLE_EQ(empty.quantile(0.99), 2.0);
}

TEST(Metrics, SnapshotCarriesQuantiles) {
  metrics::Registry reg;
  metrics::Histogram& h = reg.histogram("serve.latency_ms", 0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.observe(i + 0.5);
  const Json snap = reg.snapshot();
  const Json& hj = snap.at("histograms").at("serve.latency_ms");
  EXPECT_DOUBLE_EQ(hj.at("p50").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(hj.at("p95").as_number(), 9.5);
  EXPECT_DOUBLE_EQ(hj.at("p99").as_number(), 9.9);
}

TEST(Metrics, SnapshotSerializesEveryInstrumentKind) {
  metrics::Registry reg;
  reg.counter("jobs").add(7.0);
  reg.gauge("high_water").set(1.5);
  reg.histogram("lat", 0.0, 2.0, 2).observe(0.5);

  const Json snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.at("counters").at("jobs").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(snap.at("gauges").at("high_water").as_number(), 1.5);
  const Json& lat = snap.at("histograms").at("lat");
  EXPECT_DOUBLE_EQ(lat.at("lo").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(lat.at("hi").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(lat.at("counts").at(0).as_number(), 1.0);

  reg.reset();
  const Json zero = reg.snapshot();
  // Names survive a reset (dashboards keep their rows); values zero out.
  EXPECT_DOUBLE_EQ(zero.at("counters").at("jobs").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(zero.at("gauges").at("high_water").as_number(), 0.0);
}

TEST(Trace, DisabledRecorderIsInert) {
  TraceGuard guard;
  trace::clear();
  ASSERT_FALSE(trace::enabled());
  EXPECT_DOUBLE_EQ(trace::now_us(), 0.0);
  {
    trace::Scope scope("never.recorded", "test");
    scope.arg("x", 1.0);
  }
  trace::emit_instant("dropped", "test", 0.0, trace::kHostPid, 0);
  trace::emit_complete("dropped", "test", 0.0, 1.0, trace::kHostPid, 0);
  EXPECT_EQ(trace::event_count(), 0u);
}

TEST(Trace, RecordsSpansAndSerializesChromeTraceJson) {
  TraceGuard guard;
  trace::clear();
  trace::start();
  ASSERT_TRUE(trace::enabled());
  trace::name_process(trace::kHostPid, "test host");
  {
    trace::Scope outer("outer", "test");
    outer.arg("answer", 42.0);
    trace::Scope inner("inner", "test");
  }
  trace::emit_instant("tick", "test", 5.0, trace::kVirtualPid, 0,
                      {{"job", 3.0}});
  trace::stop();
  EXPECT_FALSE(trace::enabled());
  EXPECT_EQ(trace::event_count(), 3u);  // outer + inner + tick, not metadata

  Json extra = Json::object();
  extra["metrics"] = Json::object();
  const Json doc = trace::to_json(&extra);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  EXPECT_TRUE(doc.contains("metrics"));  // extra top-level keys merged in
  const JsonArray& events = doc.at("traceEvents").as_array();

  std::map<std::string, const Json*> by_name;
  for (const Json& e : events) by_name[e.at("name").as_string()] = &e;
  ASSERT_TRUE(by_name.count("outer"));
  ASSERT_TRUE(by_name.count("inner"));
  ASSERT_TRUE(by_name.count("tick"));
  ASSERT_TRUE(by_name.count("process_name"));  // metadata from name_process

  const Json& outer = *by_name["outer"];
  EXPECT_EQ(outer.at("ph").as_string(), "X");
  EXPECT_EQ(outer.at("pid").as_int(), trace::kHostPid);
  EXPECT_DOUBLE_EQ(outer.at("args").at("answer").as_number(), 42.0);
  const Json& inner = *by_name["inner"];
  // RAII nesting: the inner span starts no earlier and ends no later.
  EXPECT_GE(inner.at("ts").as_number(), outer.at("ts").as_number());
  EXPECT_LE(inner.at("ts").as_number() + inner.at("dur").as_number(),
            outer.at("ts").as_number() + outer.at("dur").as_number());
  const Json& tick = *by_name["tick"];
  EXPECT_EQ(tick.at("ph").as_string(), "i");
  EXPECT_EQ(tick.at("pid").as_int(), trace::kVirtualPid);
  EXPECT_DOUBLE_EQ(tick.at("args").at("job").as_number(), 3.0);

  // The document round-trips through the parser (what check_trace.py and
  // chrome://tracing will read).
  EXPECT_EQ(Json::parse(doc.dump(1)).at("traceEvents").size(), events.size());

  trace::clear();
  EXPECT_EQ(trace::event_count(), 0u);
}

// The virtual-timeline spans carry the scheduler's exact accounting: the
// "job N" span on each GPU lane holds that placement's final retry count
// and wasted seconds, and the fault events mirror the schedule's fault
// tallies one-for-one.
TEST(Trace, SchedulerSpanArgsMatchScheduleExactly) {
  TraceGuard guard;
  sched::ClusterConfig cfg;
  cfg.num_gpus = 3;
  cfg.parallel_execution = false;
  cfg.fault.enabled = true;
  cfg.fault.seed = 7;
  cfg.fault.transient_failure_prob = 0.35;
  cfg.fault.permanent_failure_prob = 0.3;
  cfg.fault.job_crash_prob = 0.2;
  cfg.fault.straggler_prob = 0.3;
  cfg.fault.backoff_base_seconds = 2.0;
  sched::ResourceManager cluster(cfg);

  std::vector<sched::Job> jobs;
  for (int i = 0; i < 8; ++i)
    jobs.push_back(sched::Job{[i] { return 10.0 + i; }});

  trace::clear();
  trace::start();
  const sched::GenerationSchedule schedule =
      cluster.run_generation(std::move(jobs));
  trace::stop();
  // This seed must actually exercise the fault machinery.
  ASSERT_GT(schedule.total_retries, 0u);

  const Json doc = trace::to_json();
  std::map<int, const Json*> job_spans;
  std::size_t fault_events = 0;
  std::size_t quarantine_events = 0;
  for (const Json& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "M") continue;  // lane-name metadata
    if (e.at("pid").as_int() != trace::kVirtualPid) continue;
    const std::string& name = e.at("name").as_string();
    const std::string& cat = e.at("cat").as_string();
    if (cat == "sched" && e.at("ph").as_string() == "X") {
      job_spans[static_cast<int>(e.at("args").at("job").as_number())] = &e;
    } else if (name == "fault.transient" || name == "fault.crash") {
      ++fault_events;
    } else if (name == "quarantine") {
      ++quarantine_events;
    }
  }

  ASSERT_EQ(job_spans.size(), schedule.placements.size());
  std::size_t span_retries = 0;
  double span_wasted = 0.0;
  for (std::size_t job = 0; job < schedule.placements.size(); ++job) {
    const sched::JobPlacement& p = schedule.placements[job];
    const Json& span = *job_spans.at(static_cast<int>(job));
    EXPECT_EQ(span.at("tid").as_int(), p.device_id);
    // Virtual seconds → trace microseconds, exact per placement.
    EXPECT_DOUBLE_EQ(span.at("ts").as_number(), p.start_seconds * 1e6);
    EXPECT_DOUBLE_EQ(span.at("dur").as_number(), p.duration_seconds * 1e6);
    EXPECT_DOUBLE_EQ(span.at("args").at("retries").as_number(),
                     static_cast<double>(p.retries));
    EXPECT_DOUBLE_EQ(span.at("args").at("wasted_seconds").as_number(),
                     p.wasted_seconds);
    span_retries += static_cast<std::size_t>(
        span.at("args").at("retries").as_number());
    span_wasted += span.at("args").at("wasted_seconds").as_number();
  }
  // Summed in placement order — the same order fault_totals walks — the
  // span args reproduce the generation totals bit-for-bit.
  EXPECT_EQ(span_retries, schedule.total_retries);
  EXPECT_EQ(span_wasted, schedule.wasted_seconds);
  EXPECT_EQ(fault_events, schedule.transient_faults + schedule.job_crashes);
  EXPECT_EQ(quarantine_events, schedule.newly_quarantined.size());
}

core::WorkflowConfig faulty_workflow_config() {
  core::WorkflowConfig cfg;
  cfg.dataset.images_per_class = 30;
  cfg.dataset.detector.pixels = 8;
  cfg.dataset.intensity = xfel::BeamIntensity::kHigh;
  cfg.nas.population_size = 3;
  cfg.nas.offspring_per_generation = 3;
  cfg.nas.generations = 2;
  cfg.nas.max_epochs = 6;
  cfg.nas.space.input_shape = {1, 8, 8};
  cfg.nas.space.stem_channels = 4;
  cfg.trainer.max_epochs = 6;
  cfg.trainer.engine.e_pred = 6.0;
  cfg.cluster.num_gpus = 2;
  cfg.cluster.fault.enabled = true;
  cfg.cluster.fault.transient_failure_prob = 0.3;
  cfg.cluster.fault.job_crash_prob = 0.15;
  cfg.cluster.fault.straggler_prob = 0.3;
  cfg.cluster.fault.backoff_base_seconds = 2.0;
  return cfg;
}

// The acceptance contract of the metrics layer: RunSummary's fault and
// engine-overhead numbers are read back from the registry, and they equal
// the ad-hoc walks they replaced bit-for-bit — no tolerance.
TEST(WorkflowMetrics, SummaryTotalsAreBitExactDerivedViews) {
  TraceGuard guard;
  trace::clear();
  trace::start();
  core::A4nnWorkflow workflow(faulty_workflow_config());
  const core::WorkflowResult result = workflow.run();
  trace::stop();

  // Both fault_totals overloads — the schedule walk and the registry
  // read-back — must agree on every field.
  const analytics::FaultTotals walked = analytics::fault_totals(
      std::span<const sched::GenerationSchedule>(result.schedules));
  ASSERT_GT(walked.retries, 0u);  // the injection actually fired
  EXPECT_EQ(result.summary.faults.total_jobs, walked.total_jobs);
  EXPECT_EQ(result.summary.faults.retries, walked.retries);
  EXPECT_EQ(result.summary.faults.transient_faults, walked.transient_faults);
  EXPECT_EQ(result.summary.faults.job_crashes, walked.job_crashes);
  EXPECT_EQ(result.summary.faults.straggler_events, walked.straggler_events);
  EXPECT_EQ(result.summary.faults.permanent_device_failures,
            walked.permanent_device_failures);
  EXPECT_EQ(result.summary.faults.failed_jobs, walked.failed_jobs);
  EXPECT_EQ(result.summary.faults.wasted_virtual_seconds,
            walked.wasted_virtual_seconds);

  // Engine overhead: the counter accumulates per record, in history order,
  // so it bit-matches this sum.
  double overhead = 0.0;
  for (const auto& record : result.search.history)
    overhead += record.engine_overhead_seconds;
  EXPECT_EQ(result.summary.engine_overhead_seconds, overhead);
  ASSERT_GT(overhead, 0.0);

  // The snapshot itself carries the raw counters the views derive from.
  const Json& counters = result.summary.metrics.at("counters");
  EXPECT_DOUBLE_EQ(counters.at("nas.evaluations").as_number(),
                   static_cast<double>(result.search.history.size()));
  EXPECT_DOUBLE_EQ(counters.at("sched.jobs").as_number(),
                   static_cast<double>(walked.total_jobs));
  EXPECT_DOUBLE_EQ(counters.at("train.models").as_number(),
                   static_cast<double>(result.search.history.size()));
  EXPECT_GT(counters.at("train.epochs").as_number(), 0.0);
  EXPECT_GT(counters.at("penguin.fits").as_number(), 0.0);
  EXPECT_EQ(result.summary.failed_evaluations, 0u);

  // The trace's per-record accounting instants are emitted in history
  // order, so their engine-overhead args sum to the same exact total.
  const Json doc = trace::to_json();
  double instant_overhead = 0.0;
  std::size_t accounting_events = 0;
  for (const Json& e : doc.at("traceEvents").as_array()) {
    if (e.at("name").as_string() != "record.accounting") continue;
    ++accounting_events;
    instant_overhead += e.at("args").at("engine_overhead_seconds").as_number();
  }
  EXPECT_EQ(accounting_events, result.search.history.size());
  EXPECT_EQ(instant_overhead, result.summary.engine_overhead_seconds);
}

// Trace-off runs must still produce the metrics block — observability is
// not allowed to depend on tracing being switched on.
TEST(WorkflowMetrics, MetricsBlockExistsWithTracingOff) {
  ASSERT_FALSE(trace::enabled());
  core::WorkflowConfig cfg = faulty_workflow_config();
  cfg.cluster.fault.enabled = false;
  cfg.nas.generations = 1;
  core::A4nnWorkflow workflow(cfg);
  const core::WorkflowResult result = workflow.run();
  EXPECT_EQ(trace::event_count(), 0u);
  const Json& counters = result.summary.metrics.at("counters");
  EXPECT_DOUBLE_EQ(counters.at("nas.evaluations").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(counters.at("sched.jobs").as_number(), 3.0);
  const util::Json j = result.summary.to_json();
  EXPECT_TRUE(j.contains("metrics"));
  EXPECT_TRUE(j.at("metrics").contains("counters"));
}

}  // namespace
}  // namespace a4nn::util
