#include "util/args.hpp"

#include <gtest/gtest.h>

namespace a4nn::util {
namespace {

ArgParser make_parser() {
  ArgParser args("prog", "test program");
  args.add_option("population", "10", "population size");
  args.add_option("rate", "0.5", "a rate");
  args.add_flag("verbose", "enable logging");
  return args;
}

void parse(ArgParser& args, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  args.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, DefaultsApply) {
  ArgParser args = make_parser();
  parse(args, {});
  EXPECT_EQ(args.get("population"), "10");
  EXPECT_DOUBLE_EQ(args.get_double("rate"), 0.5);
  EXPECT_FALSE(args.get_flag("verbose"));
}

TEST(ArgParser, SpaceAndEqualsForms) {
  ArgParser args = make_parser();
  parse(args, {"--population", "25", "--rate=0.75"});
  EXPECT_EQ(args.get_size("population"), 25u);
  EXPECT_DOUBLE_EQ(args.get_double("rate"), 0.75);
}

TEST(ArgParser, FlagsAndPositionals) {
  ArgParser args = make_parser();
  parse(args, {"--verbose", "input.json", "more"});
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"input.json", "more"}));
}

TEST(ArgParser, HelpRequested) {
  ArgParser args = make_parser();
  parse(args, {"--help"});
  EXPECT_TRUE(args.help_requested());
  const std::string usage = args.usage();
  EXPECT_NE(usage.find("--population"), std::string::npos);
  EXPECT_NE(usage.find("default: 10"), std::string::npos);
}

TEST(ArgParser, Errors) {
  {
    ArgParser args = make_parser();
    EXPECT_THROW(parse(args, {"--unknown", "x"}), ArgError);
  }
  {
    ArgParser args = make_parser();
    EXPECT_THROW(parse(args, {"--population"}), ArgError);  // missing value
  }
  {
    ArgParser args = make_parser();
    EXPECT_THROW(parse(args, {"--verbose=yes"}), ArgError);  // flag w/ value
  }
  {
    ArgParser args = make_parser();
    parse(args, {"--population", "abc"});
    EXPECT_THROW(args.get_size("population"), ArgError);
  }
  {
    ArgParser args = make_parser();
    EXPECT_THROW(args.add_option("rate", "1", "dup"), ArgError);
    EXPECT_THROW(args.get("undeclared"), ArgError);
  }
}

TEST(ArgParser, NegativeSizeRejected) {
  ArgParser args = make_parser();
  parse(args, {"--population", "-3"});
  EXPECT_THROW(args.get_size("population"), ArgError);
  EXPECT_DOUBLE_EQ(args.get_double("population"), -3.0);
}

TEST(ArgParser, LastOccurrenceWins) {
  ArgParser args = make_parser();
  parse(args, {"--population", "5", "--population", "9"});
  EXPECT_EQ(args.get_size("population"), 9u);
}

}  // namespace
}  // namespace a4nn::util
