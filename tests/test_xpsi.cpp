// XPSI baseline: kNN correctness and autoencoder+kNN classification on
// easy synthetic data.
#include <gtest/gtest.h>

#include "xfel/dataset.hpp"
#include "xpsi/xpsi.hpp"

namespace a4nn::xpsi {
namespace {

TEST(Knn, MajorityVote) {
  const std::vector<std::vector<float>> points{
      {0.0f}, {0.1f}, {0.2f}, {10.0f}, {10.1f}};
  const std::vector<std::int64_t> labels{0, 0, 0, 1, 1};
  const std::vector<float> near_zero{0.05f};
  EXPECT_EQ(knn_predict(points, labels, near_zero, 3), 0);
  const std::vector<float> near_ten{9.9f};
  EXPECT_EQ(knn_predict(points, labels, near_ten, 2), 1);
}

TEST(Knn, KLargerThanDatasetClamps) {
  const std::vector<std::vector<float>> points{{0.0f}, {1.0f}};
  const std::vector<std::int64_t> labels{1, 1};
  EXPECT_EQ(knn_predict(points, labels, std::vector<float>{0.5f}, 99), 1);
}

TEST(Knn, TieBreaksToSmallerLabel) {
  const std::vector<std::vector<float>> points{{0.0f}, {1.0f}};
  const std::vector<std::int64_t> labels{1, 0};
  // k=2: one vote each -> label 0 wins deterministically.
  EXPECT_EQ(knn_predict(points, labels, std::vector<float>{0.5f}, 2), 0);
}

TEST(Knn, Validation) {
  const std::vector<std::vector<float>> points{{0.0f}};
  const std::vector<std::int64_t> labels{0};
  EXPECT_THROW(
      knn_predict({}, std::span<const std::int64_t>{}, std::vector<float>{0.0f}, 1),
      std::invalid_argument);
  EXPECT_THROW(knn_predict(points, labels, std::vector<float>{0.0f, 1.0f}, 1),
               std::invalid_argument);
}

TEST(Xpsi, ConfigValidation) {
  XpsiConfig cfg;
  cfg.latent_dim = 0;
  EXPECT_THROW(XpsiClassifier{cfg}, std::invalid_argument);
  cfg = XpsiConfig{};
  cfg.k_neighbors = 0;
  EXPECT_THROW(XpsiClassifier{cfg}, std::invalid_argument);
}

TEST(Xpsi, EmbedBeforeFitThrows) {
  XpsiClassifier xpsi(XpsiConfig{});
  nn::Dataset d(1, 4, 4);
  d.add_sample(std::vector<float>(16, 0.0f), 0);
  EXPECT_THROW(xpsi.embed(d), std::logic_error);
}

TEST(Xpsi, LearnsHighIntensityData) {
  xfel::XfelDatasetConfig dcfg;
  dcfg.images_per_class = 80;
  dcfg.detector.pixels = 8;
  dcfg.intensity = xfel::BeamIntensity::kHigh;
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(dcfg);

  XpsiConfig cfg;
  cfg.autoencoder_epochs = 10;
  XpsiClassifier xpsi(cfg);
  const XpsiResult result = xpsi.fit_and_evaluate(data.train, data.validation);

  // Autoencoder actually learned to reconstruct.
  ASSERT_EQ(result.mse_history.size(), 10u);
  EXPECT_LT(result.mse_history.back(), result.mse_history.front());
  // Classification well above chance on the easy regime.
  EXPECT_GT(result.validation_accuracy, 75.0);
  // Accounting fields populated.
  EXPECT_GT(result.virtual_seconds, 0.0);
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GT(result.autoencoder_flops, 0u);

  // Embeddings have the configured dimension.
  const auto latents = xpsi.embed(data.validation);
  ASSERT_EQ(latents.size(), data.validation.size());
  EXPECT_EQ(latents[0].size(), cfg.latent_dim);
}

TEST(Xpsi, RadialProfileGeometry) {
  // Center-peaked image: profile must be monotonically decreasing.
  const std::size_t n = 8;
  std::vector<float> img(n * n, 0.0f);
  for (std::size_t y = 0; y < n; ++y) {
    for (std::size_t x = 0; x < n; ++x) {
      const double dy = static_cast<double>(y) - 3.5;
      const double dx = static_cast<double>(x) - 3.5;
      img[y * n + x] = static_cast<float>(10.0 / (1.0 + dx * dx + dy * dy));
    }
  }
  const auto prof = XpsiClassifier::radial_profile(img, n, n);
  ASSERT_GE(prof.size(), 2u);
  for (std::size_t r = 1; r < prof.size(); ++r)
    EXPECT_LT(prof[r], prof[r - 1]);
  EXPECT_THROW(XpsiClassifier::radial_profile(img, n, n + 1),
               std::invalid_argument);
}

TEST(Xpsi, OrientationRecoveryBeatsChance) {
  xfel::XfelDatasetConfig dcfg;
  dcfg.images_per_class = 120;
  dcfg.detector.pixels = 8;
  dcfg.intensity = xfel::BeamIntensity::kHigh;
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(dcfg);

  XpsiConfig cfg;
  cfg.autoencoder_epochs = 15;
  XpsiClassifier xpsi(cfg);
  xpsi.fit_and_evaluate(data.train, data.validation);
  const auto recovery = xpsi.evaluate_orientation_recovery(
      data.train, data.train_orientations, data.validation,
      data.validation_orientations);
  // Under the 2-fold Friedel ambiguity, random rotations are ~104 degrees
  // apart on average; latent-nearest-neighbour assignment must do better.
  EXPECT_NEAR(recovery.chance_error_deg, 104.0, 20.0);
  EXPECT_LT(recovery.mean_error_deg, recovery.chance_error_deg);
  EXPECT_GT(recovery.mean_error_deg, 0.0);
  EXPECT_LE(recovery.median_error_deg, recovery.chance_error_deg);
}

TEST(Xpsi, OrientationRecoveryValidatesMetadata) {
  xfel::XfelDatasetConfig dcfg;
  dcfg.images_per_class = 10;
  dcfg.detector.pixels = 8;
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(dcfg);
  XpsiConfig cfg;
  cfg.autoencoder_epochs = 1;
  XpsiClassifier xpsi(cfg);
  xpsi.fit_and_evaluate(data.train, data.validation);
  const std::vector<xfel::Mat3> wrong_count(3);
  EXPECT_THROW(xpsi.evaluate_orientation_recovery(
                   data.train, wrong_count, data.validation,
                   data.validation_orientations),
               std::invalid_argument);
}

}  // namespace
}  // namespace a4nn::xpsi
