// Prediction engine: parametric families (values, gradients, guesses),
// Levenberg-Marquardt fitting, and the predictor/analyzer semantics of
// Algorithm 1 / Table 1.
#include <gtest/gtest.h>

#include <cmath>

#include "penguin/engine.hpp"
#include "util/rng.hpp"

namespace a4nn::penguin {
namespace {

/// Sample the paper's curve family: y = a - b^(c - x).
std::vector<double> sample_pow_exp(double a, double b, double c,
                                   std::size_t n) {
  std::vector<double> ys;
  for (std::size_t i = 1; i <= n; ++i)
    ys.push_back(a - std::pow(b, c - static_cast<double>(i)));
  return ys;
}

std::vector<double> epochs(std::size_t n) {
  std::vector<double> xs;
  for (std::size_t i = 1; i <= n; ++i) xs.push_back(static_cast<double>(i));
  return xs;
}

TEST(Parametric, RegistryAndNames) {
  for (const auto& name : function_names()) {
    const FunctionPtr f = make_function(name);
    EXPECT_EQ(f->name(), name);
    EXPECT_EQ(f->param_count(), 3u);
  }
  EXPECT_THROW(make_function("not_a_family"), std::invalid_argument);
}

TEST(Parametric, PowExpEvaluates) {
  const FunctionPtr f = make_pow_exp();
  const std::vector<double> p{90.0, 2.0, 3.0};
  // F(3) = 90 - 2^0 = 89; F(5) = 90 - 2^-2 = 89.75.
  EXPECT_NEAR(f->eval(p, 3.0), 89.0, 1e-12);
  EXPECT_NEAR(f->eval(p, 5.0), 89.75, 1e-12);
  // Saturates at a.
  EXPECT_NEAR(f->eval(p, 100.0), 90.0, 1e-9);
}

class GradientCheck : public ::testing::TestWithParam<std::string> {};

TEST_P(GradientCheck, AnalyticMatchesFiniteDifference) {
  const FunctionPtr f = make_function(GetParam());
  // Valid parameters for each family.
  std::vector<double> p;
  if (GetParam() == "pow_exp") p = {90.0, 1.8, 2.5};
  else if (GetParam() == "inverse_power") p = {95.0, 30.0, 0.8};
  else if (GetParam() == "logistic") p = {98.0, 0.4, 8.0};
  else if (GetParam() == "weibull") p = {95.0, 5.0, 1.2};
  else if (GetParam() == "ilog") p = {98.0, 20.0, 2.0};
  else if (GetParam() == "janoschek") p = {95.0, 40.0, 0.3};
  else if (GetParam() == "mmf") p = {95.0, 3.0, 1.2};
  else p = {4.0, -2.0, 0.2};  // vapor_pressure

  std::vector<double> grad(3);
  for (double x : {2.0, 5.0, 11.0}) {
    f->gradient(p, x, grad);
    for (std::size_t i = 0; i < 3; ++i) {
      const double eps = 1e-6 * std::max(1.0, std::fabs(p[i]));
      std::vector<double> pp = p, pm = p;
      pp[i] += eps;
      pm[i] -= eps;
      const double numeric = (f->eval(pp, x) - f->eval(pm, x)) / (2.0 * eps);
      EXPECT_NEAR(grad[i], numeric, 1e-4 * std::max(1.0, std::fabs(numeric)))
          << GetParam() << " param " << i << " at x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, GradientCheck,
                         ::testing::Values("pow_exp", "inverse_power",
                                           "logistic", "vapor_pressure",
                                           "weibull", "ilog", "janoschek",
                                           "mmf"));

class FitSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(FitSweep, FamilyFitsItsOwnCleanSamples) {
  // Self-consistency: every family must recover (to small SSE) a curve
  // sampled from itself with valid parameters.
  const FunctionPtr f = make_function(GetParam());
  std::vector<double> p;
  if (GetParam() == "pow_exp") p = {92.0, 1.5, 2.0};
  else if (GetParam() == "inverse_power") p = {95.0, 30.0, 0.8};
  else if (GetParam() == "logistic") p = {95.0, 0.6, 5.0};
  else if (GetParam() == "weibull") p = {95.0, 4.0, 1.1};
  else if (GetParam() == "ilog") p = {99.0, 25.0, 2.0};
  else if (GetParam() == "janoschek") p = {94.0, 45.0, 0.35};
  else if (GetParam() == "mmf") p = {95.0, 3.0, 1.3};
  else p = {4.5, -1.5, 0.05};  // vapor_pressure
  std::vector<double> ys;
  for (double x : epochs(15)) ys.push_back(f->eval(p, x));
  const auto fit = fit_curve(*f, epochs(15), ys);
  ASSERT_TRUE(fit.has_value()) << GetParam();
  EXPECT_LT(fit->sse, 1.0) << GetParam();
  // Extrapolation close to the family's own value.
  EXPECT_NEAR(f->eval(fit->params, 25.0), f->eval(p, 25.0), 2.0)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FitSweep,
                         ::testing::Values("pow_exp", "inverse_power",
                                           "logistic", "vapor_pressure",
                                           "weibull", "ilog", "janoschek",
                                           "mmf"));

TEST(Ensemble, WeightsFavorBetterFittingFamily) {
  // Data sampled from janoschek: the ensemble's prediction should be close
  // to the true plateau and the janoschek member should carry weight.
  const FunctionPtr truth_family = make_janoschek();
  const std::vector<double> p{93.0, 45.0, 0.4};
  std::vector<double> ys;
  for (double x : epochs(12)) ys.push_back(truth_family->eval(p, x));
  const std::vector<FunctionPtr> pool{make_pow_exp(), make_janoschek(),
                                      make_ilog()};
  const auto ens = ensemble_predict(pool, epochs(12), ys, 25.0);
  ASSERT_TRUE(ens.has_value());
  EXPECT_NEAR(ens->prediction, truth_family->eval(p, 25.0), 1.0);
  double weight_sum = 0.0;
  for (const auto& [name, pred, weight] : ens->members) weight_sum += weight;
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
}

TEST(Ensemble, EmptyOrUnfittablePoolReturnsNull) {
  const std::vector<double> ys{90.0, 80.0, 70.0, 60.0};  // decreasing
  EXPECT_FALSE(ensemble_predict({}, epochs(4), ys, 25.0).has_value());
  EXPECT_FALSE(ensemble_predict({make_pow_exp()}, epochs(4), ys, 25.0)
                   .has_value());
}

TEST(Ensemble, EngineUsesEnsembleWhenConfigured) {
  EngineConfig cfg = default_engine_config();
  cfg.ensemble = {make_pow_exp(), make_janoschek(), make_weibull()};
  const PredictionEngine engine(cfg);
  const auto ys = sample_pow_exp(96.0, 1.5, 2.0, 10);
  const auto p = engine.predict(ys);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 96.0, 1.5);
  const util::Json j = cfg.to_json();
  EXPECT_EQ(j.at("ensemble").size(), 3u);
}

TEST(Parametric, PowExpInitialGuessOnCleanCurve) {
  const FunctionPtr f = make_pow_exp();
  const auto ys = sample_pow_exp(92.0, 1.6, 2.0, 8);
  const auto guess = f->initial_guess(epochs(8), ys);
  ASSERT_TRUE(guess.has_value());
  EXPECT_TRUE(f->valid_params(*guess));
  EXPECT_NEAR((*guess)[0], 92.0, 3.0);  // plateau near a
}

TEST(Parametric, PowExpRejectsDecreasingCurve) {
  const FunctionPtr f = make_pow_exp();
  const std::vector<double> ys{90.0, 80.0, 70.0, 60.0};
  const auto guess = f->initial_guess(epochs(4), ys);
  EXPECT_FALSE(guess.has_value());
}

TEST(Parametric, ValidParamsBoundaries) {
  const FunctionPtr f = make_pow_exp();
  EXPECT_TRUE(f->valid_params(std::vector<double>{90.0, 1.5, 2.0}));
  EXPECT_FALSE(f->valid_params(std::vector<double>{90.0, 0.9, 2.0}));  // b <= 1
  EXPECT_FALSE(f->valid_params(
      std::vector<double>{std::nan(""), 1.5, 2.0}));
}

TEST(SolveDense, Solves3x3System) {
  // A = [[2,1,0],[1,3,1],[0,1,2]], b = [3,8,5] -> x = [0.5, 2, 1.5]:
  // row checks: 2*0.5+2 = 3; 0.5+6+1.5 = 8; 2+3 = 5.
  std::vector<double> a{2, 1, 0, 1, 3, 1, 0, 1, 2};
  std::vector<double> b{3, 8, 5};
  ASSERT_TRUE(solve_dense(a, b, 3));
  EXPECT_NEAR(b[0], 0.5, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
  EXPECT_NEAR(b[2], 1.5, 1e-12);
}

TEST(SolveDense, DetectsSingular) {
  std::vector<double> a{1, 2, 2, 4};
  std::vector<double> b{1, 2};
  EXPECT_FALSE(solve_dense(a, b, 2));
}

TEST(SolveDense, ValidatesDimensions) {
  std::vector<double> a{1};
  std::vector<double> b{1, 2};
  EXPECT_THROW(solve_dense(a, b, 2), std::invalid_argument);
}

TEST(FitCurve, RecoversPowExpParameters) {
  const FunctionPtr f = make_pow_exp();
  const auto ys = sample_pow_exp(95.0, 1.5, 1.0, 10);
  const auto fit = fit_curve(*f, epochs(10), ys);
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(fit->sse, 1e-6);
  EXPECT_NEAR(fit->params[0], 95.0, 0.1);
  // Extrapolation at a far epoch reaches the plateau.
  EXPECT_NEAR(f->eval(fit->params, 25.0), 95.0, 0.1);
}

TEST(FitCurve, HandlesNoisyCurve) {
  const FunctionPtr f = make_pow_exp();
  util::Rng rng(7);
  auto ys = sample_pow_exp(90.0, 1.4, 2.0, 15);
  for (auto& y : ys) y += rng.normal(0.0, 0.4);
  const auto fit = fit_curve(*f, epochs(15), ys);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(f->eval(fit->params, 25.0), 90.0, 3.0);
}

TEST(FitCurve, ReportsHonestIterationCountAndConvergence) {
  // Regression: the iteration counter used to report max_iterations (or
  // worse, max_iterations + 1) even when LM converged on the second pass,
  // making the engine-overhead accounting claim ~50x the work actually
  // done. A clean, exactly-representable curve converges almost instantly;
  // the result must say so.
  const FunctionPtr f = make_pow_exp();
  const auto ys = sample_pow_exp(95.0, 1.5, 1.0, 10);
  FitOptions options;
  options.max_iterations = 100;
  const auto fit = fit_curve(*f, epochs(10), ys, options);
  ASSERT_TRUE(fit.has_value());
  EXPECT_TRUE(fit->converged);
  EXPECT_GE(fit->iterations, 1u);
  EXPECT_LT(fit->iterations, options.max_iterations);

  // With the budget capped below what the fit needs, the count equals the
  // budget exactly and the converged flag stays honest.
  util::Rng rng(11);
  auto noisy = sample_pow_exp(90.0, 1.4, 2.0, 15);
  for (auto& y : noisy) y += rng.normal(0.0, 0.5);
  FitOptions tight;
  tight.max_iterations = 1;
  tight.tolerance = 0.0;  // never declare convergence
  const auto capped = fit_curve(*f, epochs(15), noisy, tight);
  if (capped.has_value()) {
    EXPECT_EQ(capped->iterations, 1u);
    EXPECT_FALSE(capped->converged);
  }
}

TEST(FitCurve, UnderDeterminedReturnsNull) {
  const FunctionPtr f = make_pow_exp();
  const std::vector<double> ys{50.0, 60.0};
  EXPECT_FALSE(fit_curve(*f, epochs(2), ys).has_value());
}

TEST(FitCurve, SizeMismatchThrows) {
  const FunctionPtr f = make_pow_exp();
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW(fit_curve(*f, epochs(3), ys), std::invalid_argument);
}

TEST(EngineConfig, DefaultsMatchTable1) {
  const EngineConfig cfg = default_engine_config();
  EXPECT_EQ(cfg.function->name(), "pow_exp");
  EXPECT_EQ(cfg.c_min, 3u);
  EXPECT_DOUBLE_EQ(cfg.e_pred, 25.0);
  EXPECT_EQ(cfg.window, 3u);
  EXPECT_DOUBLE_EQ(cfg.tolerance, 0.5);
  const util::Json j = cfg.to_json();
  EXPECT_EQ(j.at("function").as_string(), "pow_exp");
  EXPECT_EQ(j.at("c_min").as_int(), 3);
}

TEST(PredictionEngine, ValidatesConfig) {
  EngineConfig cfg = default_engine_config();
  cfg.c_min = 1;  // below 3 fit parameters
  EXPECT_THROW(PredictionEngine{cfg}, std::invalid_argument);
  cfg = default_engine_config();
  cfg.window = 0;
  EXPECT_THROW(PredictionEngine{cfg}, std::invalid_argument);
  cfg = default_engine_config();
  cfg.function = nullptr;
  EXPECT_THROW(PredictionEngine{cfg}, std::invalid_argument);
}

TEST(PredictionEngine, NoPredictionBeforeCMin) {
  const PredictionEngine engine(default_engine_config());
  const std::vector<double> two_points{50.0, 60.0};
  EXPECT_FALSE(engine.predict(two_points).has_value());
}

TEST(PredictionEngine, PredictsPlateauOfCleanCurve) {
  const PredictionEngine engine(default_engine_config());
  const auto ys = sample_pow_exp(96.0, 1.5, 2.0, 8);
  const auto p = engine.predict(ys);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 96.0, 0.5);
}

TEST(PredictionEngine, ConvergenceRequiresWindow) {
  const PredictionEngine engine(default_engine_config());
  EXPECT_FALSE(engine.converged(std::vector<double>{95.0, 95.1}));
  EXPECT_TRUE(engine.converged(std::vector<double>{95.0, 95.1, 95.2}));
}

TEST(PredictionEngine, ConvergenceRejectsOutOfBounds) {
  const PredictionEngine engine(default_engine_config());
  // 105 is not a valid accuracy -> not converged even with low variance.
  EXPECT_FALSE(engine.converged(std::vector<double>{105.0, 105.0, 105.0}));
  EXPECT_FALSE(engine.converged(std::vector<double>{-2.0, -2.0, -2.0}));
  // Only the last N matter: early garbage is fine.
  EXPECT_TRUE(
      engine.converged(std::vector<double>{400.0, 95.0, 95.0, 95.0}));
}

TEST(PredictionEngine, ConvergenceRespectsVarianceTolerance) {
  const PredictionEngine engine(default_engine_config());
  // Variance of {90, 92, 94} is 8/3 > 0.5 -> no convergence.
  EXPECT_FALSE(engine.converged(std::vector<double>{90.0, 92.0, 94.0}));
  // Variance of {95.0, 95.5, 95.2} ~ 0.042 <= 0.5 -> converged.
  EXPECT_TRUE(engine.converged(std::vector<double>{95.0, 95.5, 95.2}));
}

TEST(PredictionEngine, EndToEndEarlyStop) {
  // Simulate Algorithm 1 on a clean saturating curve: the engine should
  // converge well before 25 epochs and predict the plateau.
  const PredictionEngine engine(default_engine_config());
  const auto curve = sample_pow_exp(94.0, 1.6, 1.5, 25);
  std::vector<double> history, predictions;
  std::size_t stopped_at = 25;
  for (std::size_t e = 1; e <= 25; ++e) {
    history.push_back(curve[e - 1]);
    const auto p = engine.predict(history);
    if (p) predictions.push_back(*p);
    if (engine.converged(predictions)) {
      stopped_at = e;
      break;
    }
  }
  EXPECT_LT(stopped_at, 12u);
  EXPECT_NEAR(predictions.back(), 94.0, 1.0);
}

TEST(PredictionEngine, NeverConvergesOnErraticCurve) {
  const PredictionEngine engine(default_engine_config());
  util::Rng rng(9);
  std::vector<double> history, predictions;
  bool converged = false;
  for (std::size_t e = 1; e <= 25 && !converged; ++e) {
    history.push_back(50.0 + rng.normal(0.0, 15.0));  // non-learning NN
    const auto p = engine.predict(history);
    if (p) predictions.push_back(*p);
    converged = engine.converged(predictions);
  }
  // An erratic fitness curve should not trigger confident early stopping
  // with the paper's strict tolerance.
  EXPECT_FALSE(converged);
}

}  // namespace
}  // namespace a4nn::penguin
