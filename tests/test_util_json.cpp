#include "util/json.hpp"

#include <gtest/gtest.h>

namespace a4nn::util {
namespace {

TEST(Json, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
}

TEST(Json, ScalarConstruction) {
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(3.5).is_number());
  EXPECT_TRUE(Json("hi").is_string());
  EXPECT_EQ(Json(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Json(2.25).as_number(), 2.25);
}

TEST(Json, VectorConstruction) {
  std::vector<double> v{1.0, 2.0, 3.0};
  Json j(v);
  ASSERT_TRUE(j.is_array());
  EXPECT_EQ(j.size(), 3u);
  EXPECT_EQ(j.as_double_vector(), v);
}

TEST(Json, ObjectAccess) {
  Json j = Json::object();
  j["a"] = 1;
  j["b"] = "text";
  EXPECT_TRUE(j.contains("a"));
  EXPECT_FALSE(j.contains("zzz"));
  EXPECT_EQ(j.at("a").as_int(), 1);
  EXPECT_EQ(j.at("b").as_string(), "text");
  EXPECT_THROW(j.at("zzz"), JsonError);
}

TEST(Json, TypedAccessorMismatchThrows) {
  Json j(1.0);
  EXPECT_THROW(j.as_string(), JsonError);
  EXPECT_THROW(j.as_array(), JsonError);
  EXPECT_THROW(j.as_object(), JsonError);
  EXPECT_THROW(j.as_bool(), JsonError);
}

TEST(Json, DefaultedGetters) {
  Json j = Json::object();
  j["x"] = 7.0;
  EXPECT_DOUBLE_EQ(j.number_or("x", 0.0), 7.0);
  EXPECT_DOUBLE_EQ(j.number_or("y", 3.0), 3.0);
  EXPECT_EQ(j.string_or("name", "dflt"), "dflt");
  EXPECT_TRUE(j.bool_or("flag", true));
}

TEST(Json, ArrayPushBackOnNullPromotes) {
  Json j;
  j.push_back(Json(1));
  j.push_back(Json(2));
  ASSERT_TRUE(j.is_array());
  EXPECT_EQ(j.at(std::size_t{1}).as_int(), 2);
  EXPECT_THROW(j.at(std::size_t{5}), JsonError);
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(Json::parse("\"abc\"").as_string(), "abc");
}

TEST(Json, ParseNested) {
  const Json j = Json::parse(R"({"a": [1, 2, {"b": true}], "c": null})");
  EXPECT_EQ(j.at("a").size(), 3u);
  EXPECT_TRUE(j.at("a").at(std::size_t{2}).at("b").as_bool());
  EXPECT_TRUE(j.at("c").is_null());
}

TEST(Json, ParseStringEscapes) {
  const Json j = Json::parse(R"("line\nbreak \"quoted\" tab\t uA")");
  EXPECT_EQ(j.as_string(), "line\nbreak \"quoted\" tab\t uA");
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
}

TEST(Json, DumpParseRoundTrip) {
  Json j = Json::object();
  j["name"] = "model_42";
  j["acc"] = 99.125;
  j["flags"] = Json(JsonArray{Json(true), Json(false), Json(nullptr)});
  Json nested = Json::object();
  nested["k"] = -17;
  j["nested"] = nested;

  for (int indent : {-1, 0, 2}) {
    const Json back = Json::parse(j.dump(indent));
    EXPECT_EQ(back, j) << "indent=" << indent;
  }
}

TEST(Json, RoundTripPreservesDoublePrecision) {
  const double value = 0.1234567890123456789;
  const Json back = Json::parse(Json(value).dump());
  EXPECT_DOUBLE_EQ(back.as_number(), value);
}

TEST(Json, IntegersRenderWithoutExponent) {
  EXPECT_EQ(Json(1000000.0).dump(), "1000000");
  EXPECT_EQ(Json(-3).dump(), "-3");
}

TEST(Json, NonFiniteRendersAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, StringEscapingInDump) {
  const Json j(std::string("a\"b\\c\nd"));
  EXPECT_EQ(j.dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json::parse(j.dump()).as_string(), "a\"b\\c\nd");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().dump(), "[]");
  EXPECT_EQ(Json::object().dump(2), "{}");
}

TEST(Json, ObjectKeysAreSorted) {
  Json j = Json::object();
  j["zebra"] = 1;
  j["alpha"] = 2;
  const std::string dumped = j.dump();
  EXPECT_LT(dumped.find("alpha"), dumped.find("zebra"));
}

}  // namespace
}  // namespace a4nn::util
