#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace a4nn::util {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 7 * 0.1);
}

TEST(Rng, UniformIndexThrowsOnZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, PoissonSmallLambdaMean) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(2.5));
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, PoissonLargeLambdaMean) {
  Rng rng(29);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(500.0));
  EXPECT_NEAR(sum / n, 500.0, 2.0);
}

TEST(Rng, PoissonZeroLambdaIsZero) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonNegativeLambdaThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
}

TEST(Rng, BernoulliRate) {
  Rng rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.split();
  // The child stream should differ from the parent's continued stream.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.next_u64() != child.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, DistinctSeedsProduceDistinctStreams) {
  std::set<std::uint64_t> firsts;
  for (std::uint64_t seed = 0; seed < 100; ++seed)
    firsts.insert(Rng(seed).next_u64());
  EXPECT_EQ(firsts.size(), 100u);
}

}  // namespace
}  // namespace a4nn::util
