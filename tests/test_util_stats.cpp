#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace a4nn::util {
namespace {

const std::vector<double> kSample{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(mean(kSample), 5.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, PopulationVarianceAndStddev) {
  EXPECT_DOUBLE_EQ(variance(kSample), 4.0);
  EXPECT_DOUBLE_EQ(stddev(kSample), 2.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(min_of(kSample), 2.0);
  EXPECT_DOUBLE_EQ(max_of(kSample), 9.0);
  EXPECT_THROW(min_of(std::vector<double>{}), std::invalid_argument);
}

TEST(Stats, MedianAndPercentiles) {
  const std::vector<double> odd{1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  EXPECT_DOUBLE_EQ(percentile(kSample, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(kSample, 100.0), 9.0);
  EXPECT_THROW(percentile(kSample, 101.0), std::invalid_argument);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateReturnsZero) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> flat{5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(xs, flat), 0.0);
  EXPECT_DOUBLE_EQ(pearson(xs, std::vector<double>{1.0}), 0.0);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 7.0);
  }
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-10);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitNeedsTwoPoints) {
  EXPECT_THROW(linear_fit(std::vector<double>{1.0}, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Stats, HistogramCountsAndClamping) {
  const std::vector<double> xs{-1.0, 0.5, 1.5, 2.5, 99.0};
  const Histogram h = histogram(xs, 0.0, 3.0, 3);
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[0], 2u);  // -1 clamped in, 0.5
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 2u);  // 2.5, 99 clamped in
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Stats, HistogramValidation) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(histogram(xs, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(histogram(xs, 1.0, 1.0, 2), std::invalid_argument);
}

TEST(Stats, HistogramRenderContainsBars) {
  const std::vector<double> xs{0.1, 0.1, 0.9};
  const Histogram h = histogram(xs, 0.0, 1.0, 2);
  const std::string render = h.render(10);
  EXPECT_NE(render.find("##########"), std::string::npos);
  EXPECT_NE(render.find("#####"), std::string::npos);
}

}  // namespace
}  // namespace a4nn::util
