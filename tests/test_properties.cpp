// Property-style parameterized suites (TEST_P) on cross-cutting
// invariants: convolution gradient correctness over geometry sweeps,
// scheduler work-conservation bounds over GPU counts, dataset invariants
// over beam intensities, genome round-trips over search-space geometries,
// and engine safety over noise levels.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "nas/operators.hpp"
#include "nas/search_space.hpp"
#include "nn/layers.hpp"
#include "penguin/engine.hpp"
#include "sched/resource_manager.hpp"
#include "xfel/dataset.hpp"

namespace a4nn {
namespace {

// ------------------------------------------------------- conv geometries

struct ConvCase {
  std::size_t in_channels, out_channels, kernel, stride, pad, size;
};

class ConvGeometrySweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGeometrySweep, BackwardMatchesFiniteDifference) {
  const ConvCase c = GetParam();
  util::Rng rng(77);
  nn::Conv2d conv(c.in_channels, c.out_channels, c.kernel, c.stride, c.pad,
                  rng);
  nn::Tensor x = nn::Tensor::randn({2, c.in_channels, c.size, c.size}, rng);
  nn::Tensor w = nn::Tensor::randn(
      nn::Shape{2, c.out_channels,
                (c.size + 2 * c.pad - c.kernel) / c.stride + 1,
                (c.size + 2 * c.pad - c.kernel) / c.stride + 1},
      rng);

  conv.forward(x, true);
  const nn::Tensor analytic = conv.backward(w);
  auto loss = [&](const nn::Tensor& input) {
    const nn::Tensor out = conv.forward(input, true);
    double acc = 0.0;
    for (std::size_t i = 0; i < out.numel(); ++i)
      acc += static_cast<double>(out[i]) * w[i];
    return acc;
  };
  const float eps = 1e-2f;
  for (std::size_t i = 0; i < x.numel(); i += std::max<std::size_t>(1, x.numel() / 16)) {
    nn::Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (loss(xp) - loss(xm)) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric, 0.03 * std::max(1.0, std::fabs(numeric)));
  }
}

TEST_P(ConvGeometrySweep, FlopsMatchOutputGeometry) {
  const ConvCase c = GetParam();
  util::Rng rng(78);
  nn::Conv2d conv(c.in_channels, c.out_channels, c.kernel, c.stride, c.pad,
                  rng);
  const nn::Shape out =
      conv.output_shape({c.in_channels, c.size, c.size});
  const std::uint64_t expected =
      out[1] * out[2] * c.out_channels *
      (2 * c.in_channels * c.kernel * c.kernel + 1);
  EXPECT_EQ(conv.flops({c.in_channels, c.size, c.size}), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGeometrySweep,
    ::testing::Values(ConvCase{1, 2, 3, 1, 1, 6}, ConvCase{2, 3, 3, 2, 1, 7},
                      ConvCase{3, 1, 1, 1, 0, 5}, ConvCase{2, 2, 5, 1, 2, 8},
                      ConvCase{1, 4, 3, 2, 0, 9}));

// --------------------------------------------------------- scheduler law

class SchedulerSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SchedulerSweep, MakespanRespectsWorkConservationBounds) {
  const std::size_t gpus = GetParam();
  sched::ClusterConfig cfg;
  cfg.num_gpus = gpus;
  cfg.parallel_execution = false;
  sched::ResourceManager rm(cfg);

  util::Rng rng(gpus * 13 + 1);
  std::vector<sched::Job> jobs;
  double total = 0.0, longest = 0.0;
  for (int i = 0; i < 23; ++i) {
    const double d = rng.uniform(1.0, 40.0);
    total += d;
    longest = std::max(longest, d);
    jobs.push_back(sched::Job{[d] { return d; }});
  }
  const auto schedule = rm.run_generation(std::move(jobs));
  // Work conservation: makespan within [max(total/gpus, longest), total].
  EXPECT_GE(schedule.makespan_end + 1e-9,
            std::max(total / static_cast<double>(gpus), longest));
  EXPECT_LE(schedule.makespan_end, total + 1e-9);
  // Busy + idle accounts for every device-second under the barrier.
  EXPECT_NEAR(schedule.makespan_end * static_cast<double>(gpus),
              total + schedule.idle_seconds, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, SchedulerSweep,
                         ::testing::Values(1, 2, 3, 4, 7));

// ----------------------------------------------------- dataset invariants

class IntensitySweep
    : public ::testing::TestWithParam<xfel::BeamIntensity> {};

TEST_P(IntensitySweep, DatasetWellFormedAtEveryIntensity) {
  xfel::XfelDatasetConfig cfg;
  cfg.intensity = GetParam();
  cfg.images_per_class = 25;
  cfg.detector.pixels = 8;
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(cfg);
  EXPECT_EQ(data.train.size() + data.validation.size(), 50u);
  EXPECT_EQ(data.train.num_classes(), 2u);
  for (std::size_t i = 0; i < data.train.size(); ++i) {
    for (float v : data.train.image(i)) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST_P(IntensitySweep, HigherIntensityIsLessNoisy) {
  // Noise proxy: mean absolute difference between two shots of the SAME
  // conformation at the SAME orientation should shrink as fluence grows.
  const auto [conf, unused] =
      xfel::make_conformation_pair(xfel::ProteinConfig{});
  (void)unused;
  xfel::DetectorConfig det;
  det.pixels = 8;
  util::Rng rng(5);
  const xfel::Mat3 orientation = xfel::Mat3::random_rotation(rng);

  auto shot_noise = [&](xfel::BeamIntensity intensity) {
    xfel::DiffractionSimulator sim(det, intensity);
    const auto ideal = sim.ideal_pattern(conf, orientation);
    // Compare a Poisson sample against the ideal pattern shape.
    const double photons = xfel::beam_expected_photons(intensity);
    util::Rng noise_rng(9);
    double err = 0.0;
    for (std::size_t i = 0; i < ideal.size(); ++i) {
      const double expected = photons * ideal[i];
      const double sampled =
          static_cast<double>(noise_rng.poisson(expected));
      err += std::fabs(sampled - expected) / photons;
    }
    return err;
  };
  if (GetParam() == xfel::BeamIntensity::kHigh) {
    EXPECT_LT(shot_noise(xfel::BeamIntensity::kHigh),
              shot_noise(xfel::BeamIntensity::kLow));
  }
}

INSTANTIATE_TEST_SUITE_P(Beams, IntensitySweep,
                         ::testing::Values(xfel::BeamIntensity::kLow,
                                           xfel::BeamIntensity::kMedium,
                                           xfel::BeamIntensity::kHigh));

// -------------------------------------------------- genome shape sweeps

struct SpaceCase {
  std::size_t phases, nodes;
};

class GenomeSweep : public ::testing::TestWithParam<SpaceCase> {};

TEST_P(GenomeSweep, BitsAndJsonRoundTripForEveryGeometry) {
  const SpaceCase c = GetParam();
  util::Rng rng(c.phases * 100 + c.nodes);
  for (int trial = 0; trial < 10; ++trial) {
    const nas::Genome g = nas::random_genome(c.phases, c.nodes, rng);
    EXPECT_EQ(g.bit_count(),
              c.phases * (nn::PhaseSpec::bits_for_nodes(c.nodes) + 1));
    EXPECT_EQ(nas::Genome::from_bits(g.to_bits(), c.phases, c.nodes).key(),
              g.key());
    EXPECT_EQ(nas::Genome::from_json(g.to_json()).key(), g.key());
  }
}

INSTANTIATE_TEST_SUITE_P(Spaces, GenomeSweep,
                         ::testing::Values(SpaceCase{1, 2}, SpaceCase{2, 3},
                                           SpaceCase{3, 4}, SpaceCase{4, 5}));

// ---------------------------------------- checkpoint round-trip sweeps

struct CheckpointCase {
  std::uint64_t seed;
  bool searchable_ops;
};

class CheckpointSweep : public ::testing::TestWithParam<CheckpointCase> {};

TEST_P(CheckpointSweep, RandomArchitecturesSurviveSerialization) {
  // Property over random architectures (macro and extended space): a model
  // checkpointed through JSON text reproduces identical predictions.
  const CheckpointCase c = GetParam();
  util::Rng rng(c.seed);
  nas::SearchSpaceConfig space;
  space.input_shape = {1, 8, 8};
  space.searchable_ops = c.searchable_ops;
  const nas::Genome genome =
      nas::random_genome(space.phase_count, space.nodes_per_phase, rng,
                         c.searchable_ops);
  nn::Model model = nas::decode_genome(genome, space, rng);
  nn::Tensor x = nn::Tensor::randn({2, 1, 8, 8}, rng);
  // One training-mode pass so batch-norm has nontrivial running stats.
  model.trunk().forward(x, true);
  const nn::Tensor before = model.predict(x);

  nn::Model restored = nn::Model::from_checkpoint(
      util::Json::parse(model.checkpoint().dump()));
  const nn::Tensor after = restored.predict(x);
  ASSERT_EQ(before.shape(), after.shape());
  for (std::size_t i = 0; i < before.numel(); ++i)
    EXPECT_FLOAT_EQ(before[i], after[i]);
  EXPECT_EQ(restored.flops_per_image(), model.flops_per_image());
}

INSTANTIATE_TEST_SUITE_P(
    RandomModels, CheckpointSweep,
    ::testing::Values(CheckpointCase{101, false}, CheckpointCase{202, false},
                      CheckpointCase{303, true}, CheckpointCase{404, true},
                      CheckpointCase{505, true}));

// ------------------------------------------------ engine safety sweeps

class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, EarlyTerminationPredictionsStayNearTruth) {
  // For concave saturating curves with increasing noise, the engine may
  // terminate later or not at all — but whenever it does terminate, its
  // reported fitness must stay within bounds and near the true plateau.
  const double noise = GetParam();
  const penguin::PredictionEngine engine(penguin::default_engine_config());
  util::Rng rng(static_cast<std::uint64_t>(noise * 1000) + 3);
  for (int trial = 0; trial < 20; ++trial) {
    const double plateau = rng.uniform(70.0, 99.0);
    std::vector<double> curve;
    for (int e = 1; e <= 25; ++e) {
      curve.push_back(plateau * (1.0 - std::exp(-0.35 * e)) +
                      rng.normal(0.0, noise));
    }
    const auto sim = penguin::simulate_early_termination(curve, engine);
    if (sim.early_terminated) {
      EXPECT_GE(sim.reported_fitness, 0.0);
      EXPECT_LE(sim.reported_fitness, 100.0);
      EXPECT_NEAR(sim.reported_fitness, plateau, 5.0 + 4.0 * noise);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, NoiseSweep,
                         ::testing::Values(0.0, 0.25, 1.0, 3.0));

// -------------------------------------------------- genome digest (memo key)

// The memo-cache and tabular-mode key. Every consumer still verifies the
// full key behind the digest, so a collision can only cost a cache miss —
// but the digest should be empirically injective at search scale anyway.
TEST(GenomeDigest, InjectiveOnTenThousandGenomeSample) {
  util::Rng rng(2023);
  std::map<std::uint64_t, std::string> seen;
  std::size_t distinct = 0;
  while (distinct < 10000) {
    const nas::Genome g =
        nas::random_genome(3, 4, rng, /*with_node_ops=*/distinct % 2 == 0);
    const auto [it, fresh] = seen.emplace(g.digest(), g.key());
    if (fresh) {
      ++distinct;
      continue;
    }
    // Same digest must mean same key (a revisited genome, not a collision).
    ASSERT_EQ(it->second, g.key());
  }
}

TEST(GenomeDigest, StableAcrossSerializationRoundTrips) {
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const nas::Genome g = nas::random_genome(3, 3, rng, i % 2 == 0);
    const std::uint64_t d = g.digest();
    EXPECT_EQ(nas::Genome::from_json(g.to_json()).digest(), d);
    EXPECT_EQ(nas::Genome::from_bits(g.to_bits(), 3, 3, i % 2 == 0).digest(),
              d);
    EXPECT_EQ(nas::Genome::from_json(
                  util::Json::parse(g.to_json().dump()))
                  .digest(),
              d);
  }
}

// Flipping any single gene — every connectivity bit, skip bit, and (in the
// op-searchable space) op bit — must change the digest.
TEST(GenomeDigest, ChangesUnderEverySingleGeneMutation) {
  util::Rng rng(9);
  for (int variant = 0; variant < 2; ++variant) {
    const bool with_ops = variant == 1;
    const nas::Genome g = nas::random_genome(2, 3, rng, with_ops);
    const std::uint64_t base = g.digest();
    const std::vector<bool> bits = g.to_bits();
    for (std::size_t b = 0; b < bits.size(); ++b) {
      std::vector<bool> flipped = bits;
      flipped[b] = !flipped[b];
      const nas::Genome m = nas::Genome::from_bits(flipped, 2, 3, with_ops);
      EXPECT_NE(m.digest(), base) << "bit " << b << " ops=" << with_ops;
    }
  }
}

// The search's actual mutation operator never silently preserves a digest:
// whenever it changes the key, it changes the digest.
TEST(GenomeDigest, MutationOperatorChangesDigestWheneverKeyChanges) {
  util::Rng rng(13);
  nas::OperatorConfig ops;
  ops.mutation_rate = 0.2;
  std::size_t changed = 0;
  for (int i = 0; i < 200; ++i) {
    const nas::Genome g = nas::random_genome(2, 3, rng);
    const nas::Genome m = nas::mutate(g, ops, rng);
    if (m.key() == g.key()) {
      EXPECT_EQ(m.digest(), g.digest());
    } else {
      EXPECT_NE(m.digest(), g.digest());
      ++changed;
    }
  }
  EXPECT_GT(changed, 0u);
}

}  // namespace
}  // namespace a4nn
