// Autotuner pipeline tests. The measurement hook is faked throughout, so
// every assertion here — winner selection, journal replay, byte-identical
// re-emission, the commons round-trip — is fully deterministic; the live
// timing path is exercised by bench_kernels and the CI tune-smoke job.
#include "tensor/autotune.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "lineage/tracker.hpp"
#include "tensor/ops.hpp"
#include "util/fsutil.hpp"
#include "util/json.hpp"

namespace a4nn::tensor {
namespace {

// Reinstalls the compiled defaults no matter how a test exits.
struct TableGuard {
  ~TableGuard() { clear_tuned_tile_configs(); }
};

// A fake measurement that makes candidate `winner_index` the fastest for
// every shape. Values are a pure function of (shape, candidate), so
// re-runs journal identically.
MeasureFn favor(std::size_t winner_index) {
  return [winner_index](const TuneShape& s, const TileConfig& c) {
    const auto& cands = candidate_tile_configs();
    std::size_t ci = 0;
    while (ci < cands.size() && !(cands[ci] == c)) ++ci;
    return ci == winner_index ? 100.0 : 1000.0 + 10.0 * static_cast<double>(ci) +
                                            static_cast<double>(s.m);
  };
}

TEST(Autotune, ShapeKeyIsStable) {
  TuneShape s{"conv3x3", 4, 36, 256, false};
  EXPECT_EQ(s.key(), "conv3x3 m4 k36 n256");
  TuneShape t{"linear_eval", 64, 32, 2, true};
  EXPECT_EQ(t.key(), "linear_eval m64 k32 n2 bt");
}

TEST(Autotune, CandidateZeroIsTheCompiledDefault) {
  // The winner is an argmin over the candidate list, so as long as entry 0
  // is the default config a tune can never regress a journaled shape below
  // the untuned baseline. Every candidate must also be installable.
  const auto& cands = candidate_tile_configs();
  ASSERT_FALSE(cands.empty());
  EXPECT_EQ(cands[0], TileConfig{});
  for (const TileConfig& c : cands) EXPECT_NO_THROW(validate_tile_config(c));
}

TEST(Autotune, SearchSpaceShapesShareLinearKN) {
  // The eval-batch Linear and every serving micro-batch Linear must land in
  // one (k, n) group (they are the same layer at different m) — that is
  // what the co-tuning pass relies on.
  const auto shapes = search_space_tune_shapes(16, 2, 4, 64, {1, 8, 32});
  std::size_t lin_k = 0, lin_n = 0, lin_count = 0;
  for (const TuneShape& s : shapes) {
    if (!s.b_transposed) continue;
    ++lin_count;
    if (lin_count == 1) {
      lin_k = s.k;
      lin_n = s.n;
    } else {
      EXPECT_EQ(s.k, lin_k);
      EXPECT_EQ(s.n, lin_n);
    }
  }
  EXPECT_EQ(lin_count, 4u);  // eval + 3 serving batches
  for (const TuneShape& s : shapes) {
    EXPECT_GT(s.m, 0u);
    EXPECT_GT(s.k, 0u);
    EXPECT_GT(s.n, 0u);
  }
}

TEST(Autotune, FakeMeasureTuneIsByteDeterministic) {
  const std::vector<TuneShape> shapes = {
      {"conv3x3", 4, 36, 64, false},
      {"linear", 8, 32, 2, true},
  };
  TuneOptions opt;
  opt.seed = 7;
  opt.measure = favor(3);
  const TuneResult r1 = run_tune(shapes, opt);
  const TuneResult r2 = run_tune(shapes, opt);
  EXPECT_EQ(r1.doc.dump(2), r2.doc.dump(2));
  ASSERT_EQ(r1.entries.size(), 2u);
  for (const TunedTileEntry& e : r1.entries)
    EXPECT_EQ(e.config, candidate_tile_configs()[3]);
}

TEST(Autotune, ResumeReplaysJournalWithoutMeasuring) {
  const std::vector<TuneShape> shapes = {
      {"conv3x3", 4, 36, 64, false},
      {"linear", 8, 32, 2, true},
  };
  TuneOptions opt;
  opt.seed = 11;
  opt.measure = favor(2);
  const TuneResult first = run_tune(shapes, opt);

  // Replay: the measure hook must never fire; the emitted bytes match.
  std::size_t calls = 0;
  TuneOptions replay = opt;
  replay.measure = [&](const TuneShape&, const TileConfig&) -> double {
    ++calls;
    return 0.0;
  };
  const TuneResult second = run_tune(shapes, replay, &first.doc);
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(first.doc.dump(2), second.doc.dump(2));
}

TEST(Autotune, ResumeIgnoresJournalFromDifferentIdentity) {
  const std::vector<TuneShape> shapes = {{"conv3x3", 4, 36, 64, false}};
  TuneOptions opt;
  opt.seed = 1;
  opt.measure = favor(2);
  const TuneResult first = run_tune(shapes, opt);

  // Different seed: the prior journal's identity no longer matches, so the
  // tune re-measures rather than replaying stale numbers.
  std::size_t calls = 0;
  TuneOptions other = opt;
  other.seed = 2;
  other.measure = [&](const TuneShape&, const TileConfig&) -> double {
    ++calls;
    return 500.0;
  };
  run_tune(shapes, other, &first.doc);
  EXPECT_EQ(calls, candidate_tile_configs().size());
}

TEST(Autotune, CoTuningPicksTheSummedArgmin) {
  // Two shapes share (k, n) = (32, 48). Candidate 4 is best for the big
  // shape by a wide margin and slightly worse for the small one; candidate
  // 5 is the reverse. The summed argmin must side with the big shape.
  const std::vector<TuneShape> shapes = {
      {"big", 64, 32, 48, false},
      {"small", 1, 32, 48, false},
  };
  TuneOptions opt;
  opt.measure = [](const TuneShape& s, const TileConfig& c) {
    const auto& cands = candidate_tile_configs();
    std::size_t ci = 0;
    while (ci < cands.size() && !(cands[ci] == c)) ++ci;
    const bool big = s.cls == "big";
    if (ci == 4) return big ? 100.0 : 210.0;   // sum 310
    if (ci == 5) return big ? 900.0 : 200.0;   // sum 1100
    return big ? 1000.0 : 1000.0;
  };
  const TuneResult r = run_tune(shapes, opt);
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].k, 32u);
  EXPECT_EQ(r.entries[0].n, 48u);
  EXPECT_EQ(r.entries[0].config, candidate_tile_configs()[4]);
  // The winner row records both claiming shapes.
  const util::Json& w = r.doc.at("winners").at(0);
  EXPECT_EQ(w.at("shapes").size(), 2u);
  EXPECT_DOUBLE_EQ(w.at("total_ns").as_number(), 310.0);
}

TEST(Autotune, TiesBreakTowardTheDefaultConfig) {
  const std::vector<TuneShape> shapes = {{"flat", 4, 30, 40, false}};
  TuneOptions opt;
  opt.measure = [](const TuneShape&, const TileConfig&) { return 42.0; };
  const TuneResult r = run_tune(shapes, opt);
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].config, TileConfig{});  // candidate 0 wins ties
}

TEST(Autotune, RejectsDegenerateShapes) {
  TuneOptions opt;
  opt.measure = favor(0);
  EXPECT_THROW(run_tune({{"zero_k", 4, 0, 8, false}}, opt),
               std::invalid_argument);
  EXPECT_THROW(run_tune({{"", 4, 8, 8, false}}, opt), std::invalid_argument);
}

TEST(Autotune, EntriesFromJsonValidates) {
  EXPECT_THROW(tune_entries_from_json(util::Json::parse("[]")),
               std::invalid_argument);
  EXPECT_THROW(tune_entries_from_json(util::Json::parse("{}")),
               std::invalid_argument);
  EXPECT_THROW(tune_entries_from_json(util::Json::parse(
                   R"({"entries": [], "version": 99})")),
               std::invalid_argument);
  // An entry violating the MR/NR alignment rules must not install.
  EXPECT_THROW(
      tune_entries_from_json(util::Json::parse(
          R"({"entries": [{"k": 36, "n": 64, "mc": 7, "kc": 256,
              "nc": 256, "small_row_flops": 0}], "version": 1})")),
      std::invalid_argument);
  // A well-formed document parses into installable entries.
  const auto entries = tune_entries_from_json(util::Json::parse(
      R"({"entries": [{"k": 36, "n": 64, "mc": 36, "kc": 128,
          "nc": 128, "small_row_flops": 512}], "version": 1})"));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].k, 36u);
  EXPECT_EQ(entries[0].config.kc, 128u);
}

TEST(Autotune, ArtifactRoundTripsThroughTheCommons) {
  // The full production path: run a (fake-measured) tune, journal it as a
  // CRC-framed commons artifact, deep-fsck the tree, load it back, install
  // it, and observe the driver serving the tuned config.
  TableGuard guard;
  const std::filesystem::path dir = util::make_temp_dir("a4nn_tune_test");
  const std::vector<TuneShape> shapes = {{"conv3x3", 4, 36, 64, false}};
  TuneOptions opt;
  opt.seed = 3;
  opt.measure = favor(7);
  const TuneResult r = run_tune(shapes, opt);
  {
    lineage::LineageTracker tracker({dir.string()});
    tracker.record_artifact("tune.json", r.doc);
  }
  lineage::DataCommons commons(dir.string());
  const lineage::FsckReport report = commons.fsck(lineage::FsckMode::kDeep);
  EXPECT_TRUE(report.clean());
  ASSERT_TRUE(commons.has_artifact("tune.json"));
  const util::Json loaded = commons.load_artifact("tune.json");
  EXPECT_EQ(loaded.dump(2), r.doc.dump(2));
  apply_tune_document(loaded);
  EXPECT_EQ(tile_config_for(36, 64), candidate_tile_configs()[7]);
  // Unjournaled (k, n) keys still see the defaults.
  EXPECT_EQ(tile_config_for(36, 65), TileConfig{});
  std::filesystem::remove_all(dir);
}

TEST(Autotune, LoadTuneFileAcceptsPlainJsonAndRejectsGarbage) {
  TableGuard guard;
  const std::filesystem::path dir = util::make_temp_dir("a4nn_tune_file");
  const std::string good = (dir / "tune.json").string();
  util::write_file(good,
                   R"({"entries": [{"k": 36, "n": 64, "mc": 120, "kc": 512,
                       "nc": 512, "small_row_flops": 2048}], "version": 1})");
  load_tune_file(good);
  EXPECT_EQ(tile_config_for(36, 64).kc, 512u);
  clear_tuned_tile_configs();

  const std::string bad = (dir / "bad.json").string();
  util::write_file(bad, "not json at all");
  EXPECT_THROW(load_tune_file(bad), std::exception);
  EXPECT_THROW(load_tune_file((dir / "missing.json").string()),
               std::exception);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace a4nn::tensor
