#include "util/csv.hpp"

#include <gtest/gtest.h>

namespace a4nn::util {
namespace {

TEST(CsvWriter, EmitsHeaderAndRows) {
  CsvWriter w({"a", "b"});
  w.add_row({"1", "x"});
  w.add_numeric_row(std::vector<double>{2.5, 3.0});
  EXPECT_EQ(w.to_string(), "a,b\n1,x\n2.5,3\n");
  EXPECT_EQ(w.row_count(), 2u);
}

TEST(CsvWriter, RejectsEmptyHeaderAndBadWidth) {
  EXPECT_THROW(CsvWriter({}), std::invalid_argument);
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"only-one"}), std::invalid_argument);
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  CsvWriter w({"text"});
  w.add_row({std::string("has,comma")});
  w.add_row({std::string("has\"quote")});
  w.add_row({std::string("has\nnewline")});
  EXPECT_EQ(w.to_string(),
            "text\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(ParseCsv, SimpleTable) {
  const CsvTable t = parse_csv("x,y\n1,2\n3,4\n");
  ASSERT_EQ(t.header, (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][0], "3");
}

TEST(ParseCsv, QuotedCells) {
  const CsvTable t = parse_csv("a,b\n\"1,5\",\"say \"\"hi\"\"\"\n");
  EXPECT_EQ(t.rows[0][0], "1,5");
  EXPECT_EQ(t.rows[0][1], "say \"hi\"");
}

TEST(ParseCsv, MissingFinalNewlineOk) {
  const CsvTable t = parse_csv("a\n1");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "1");
}

TEST(ParseCsv, CrLfHandled) {
  const CsvTable t = parse_csv("a,b\r\n7,8\r\n");
  EXPECT_EQ(t.rows[0][1], "8");
}

TEST(ParseCsv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("a\n\"oops"), std::runtime_error);
}

TEST(CsvTable, ColumnLookup) {
  const CsvTable t = parse_csv("id,value\n1,10\n2,20\n");
  EXPECT_EQ(t.column("value"), 1u);
  EXPECT_THROW(t.column("nope"), std::out_of_range);
  EXPECT_EQ(t.numeric_column("value"), (std::vector<double>{10.0, 20.0}));
}

TEST(CsvTable, NumericColumnRejectsText) {
  const CsvTable t = parse_csv("v\nabc\n");
  EXPECT_THROW(t.numeric_column("v"), std::runtime_error);
}

TEST(Csv, WriterParserRoundTrip) {
  CsvWriter w({"name", "score"});
  w.add_row({"model,1", "99.5"});
  w.add_row({"line\nbreak", "-3"});
  const CsvTable t = parse_csv(w.to_string());
  EXPECT_EQ(t.rows[0][0], "model,1");
  EXPECT_EQ(t.rows[1][0], "line\nbreak");
  EXPECT_EQ(t.numeric_column("score"), (std::vector<double>{99.5, -3.0}));
}

}  // namespace
}  // namespace a4nn::util
