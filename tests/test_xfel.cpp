// XFEL simulator: geometry, physics sanity, noise scaling, and dataset
// generation invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "xfel/dataset.hpp"
#include "xfel/shapes_dataset.hpp"

namespace a4nn::xfel {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  const Vec3 s = a + b;
  EXPECT_DOUBLE_EQ(s.z, 9.0);
  const Vec3 d = b - a;
  EXPECT_DOUBLE_EQ(d.x, 3.0);
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  const Vec3 scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled.y, 4.0);
}

TEST(Mat3, RotationPreservesLengthAndOrientation) {
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const Mat3 r = Mat3::random_rotation(rng);
    const Vec3 v{rng.normal(), rng.normal(), rng.normal()};
    const Vec3 rv = r.apply(v);
    EXPECT_NEAR(dot(rv, rv), dot(v, v), 1e-9);
  }
}

TEST(Mat3, RotationAboutAxisFixesAxis) {
  const Vec3 axis{0, 0, 1};
  const Mat3 r = Mat3::rotation_about(axis, 1.0);
  const Vec3 fixed = r.apply(axis);
  EXPECT_NEAR(fixed.z, 1.0, 1e-12);
  const Vec3 x{1, 0, 0};
  const Vec3 rx = r.apply(x);
  EXPECT_NEAR(rx.x, std::cos(1.0), 1e-12);
  EXPECT_NEAR(rx.y, std::sin(1.0), 1e-12);
}

TEST(Mat3, GeodesicDistance) {
  const Mat3 identity;
  EXPECT_NEAR(rotation_angle_between(identity, identity), 0.0, 1e-12);
  const Mat3 quarter = Mat3::rotation_about({0, 0, 1}, M_PI / 2.0);
  EXPECT_NEAR(rotation_angle_between(identity, quarter), M_PI / 2.0, 1e-12);
  // Symmetric.
  EXPECT_NEAR(rotation_angle_between(quarter, identity), M_PI / 2.0, 1e-12);
  const Mat3 half = Mat3::rotation_about({0, 1, 0}, M_PI);
  EXPECT_NEAR(rotation_angle_between(identity, half), M_PI, 1e-9);
}

TEST(Conformations, ShareCoreDifferInDomain) {
  ProteinConfig cfg;
  const auto [a, b] = make_conformation_pair(cfg);
  ASSERT_EQ(a.atoms.size(), cfg.core_atoms + cfg.domain_atoms);
  ASSERT_EQ(a.atoms.size(), b.atoms.size());
  // Core atoms identical.
  for (std::size_t i = 0; i < cfg.core_atoms; ++i) {
    EXPECT_DOUBLE_EQ(a.atoms[i].x, b.atoms[i].x);
    EXPECT_DOUBLE_EQ(a.atoms[i].y, b.atoms[i].y);
  }
  // Domain atoms displaced.
  double max_shift = 0.0;
  for (std::size_t i = cfg.core_atoms; i < a.atoms.size(); ++i) {
    const Vec3 d = a.atoms[i] - b.atoms[i];
    max_shift = std::max(max_shift, std::sqrt(dot(d, d)));
  }
  EXPECT_GT(max_shift, 1.0);
  // Comparable size, different shape.
  EXPECT_GT(a.radius_of_gyration(), 0.0);
  EXPECT_NE(a.radius_of_gyration(), b.radius_of_gyration());
}

TEST(Conformations, DeterministicForSeed) {
  ProteinConfig cfg;
  const auto [a1, b1] = make_conformation_pair(cfg);
  const auto [a2, b2] = make_conformation_pair(cfg);
  EXPECT_DOUBLE_EQ(a1.atoms[10].x, a2.atoms[10].x);
  EXPECT_DOUBLE_EQ(b1.atoms.back().y, b2.atoms.back().y);
}

TEST(Conformations, MultiConformationInterpolatesSwing) {
  ProteinConfig cfg;
  const auto confs = make_conformations(cfg, 4);
  ASSERT_EQ(confs.size(), 4u);
  EXPECT_EQ(confs[0].name, "confA");
  EXPECT_EQ(confs[3].name, "confD");
  // First and last match the pair construction's endpoints.
  const auto [a, b] = make_conformation_pair(cfg);
  EXPECT_DOUBLE_EQ(confs[0].atoms.back().x, a.atoms.back().x);
  EXPECT_DOUBLE_EQ(confs[3].atoms.back().y, b.atoms.back().y);
  // Domain displacement grows monotonically with the conformation index.
  auto shift = [&](const Conformation& c) {
    const Vec3 d = c.atoms.back() - confs[0].atoms.back();
    return std::sqrt(dot(d, d));
  };
  EXPECT_LT(shift(confs[1]), shift(confs[2]));
  EXPECT_LT(shift(confs[2]), shift(confs[3]));
  EXPECT_THROW(make_conformations(cfg, 1), std::invalid_argument);
}

TEST(XfelDataset, MultiClassGeneration) {
  XfelDatasetConfig cfg;
  cfg.images_per_class = 20;
  cfg.conformations = 3;
  cfg.detector.pixels = 8;
  const XfelDataset data = generate_xfel_dataset(cfg);
  EXPECT_EQ(data.train.size() + data.validation.size(), 60u);
  EXPECT_EQ(data.train.num_classes(), 3u);
}

TEST(Beam, NamesFluencesAndPhotons) {
  EXPECT_STREQ(beam_name(BeamIntensity::kLow), "low");
  EXPECT_STREQ(beam_name(BeamIntensity::kHigh), "high");
  EXPECT_DOUBLE_EQ(beam_fluence(BeamIntensity::kLow), 1e14);
  EXPECT_DOUBLE_EQ(beam_fluence(BeamIntensity::kMedium), 1e15);
  EXPECT_DOUBLE_EQ(beam_fluence(BeamIntensity::kHigh), 1e16);
  // Detected photons follow the 10x fluence ladder.
  EXPECT_NEAR(beam_expected_photons(BeamIntensity::kMedium) /
                  beam_expected_photons(BeamIntensity::kLow),
              10.0, 1e-9);
}

TEST(DiffractionSimulator, IdealPatternNormalizedAndPositive) {
  ProteinConfig pcfg;
  const auto [conf, conf_b] = make_conformation_pair(pcfg);
  (void)conf_b;
  DetectorConfig det;
  det.pixels = 8;
  DiffractionSimulator sim(det, BeamIntensity::kHigh);
  util::Rng rng(2);
  const auto pattern = sim.ideal_pattern(conf, Mat3::random_rotation(rng));
  ASSERT_EQ(pattern.size(), 64u);
  double total = 0.0;
  for (double v : pattern) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DiffractionSimulator, CentralPeakDominates) {
  // Coherent scattering: |F(0)|^2 = atoms^2 is the global maximum; q=0 is
  // the detector center pixel when pixels is odd.
  ProteinConfig pcfg;
  const auto [conf, unused] = make_conformation_pair(pcfg);
  (void)unused;
  DetectorConfig det;
  det.pixels = 9;
  DiffractionSimulator sim(det, BeamIntensity::kHigh);
  util::Rng rng(3);
  const auto pattern = sim.ideal_pattern(conf, Mat3::random_rotation(rng));
  const double center = pattern[4 * 9 + 4];
  for (double v : pattern) EXPECT_LE(v, center + 1e-12);
}

TEST(DiffractionSimulator, ConformationsProduceDifferentPatterns) {
  ProteinConfig pcfg;
  const auto [a, b] = make_conformation_pair(pcfg);
  DetectorConfig det;
  det.pixels = 8;
  DiffractionSimulator sim(det, BeamIntensity::kHigh);
  const Mat3 identity;
  const auto pa = sim.ideal_pattern(a, identity);
  const auto pb = sim.ideal_pattern(b, identity);
  double diff = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) diff += std::fabs(pa[i] - pb[i]);
  EXPECT_GT(diff, 1e-3);
}

TEST(DiffractionSimulator, ShotPhotonCountScalesWithIntensity) {
  ProteinConfig pcfg;
  const auto [conf, unused] = make_conformation_pair(pcfg);
  (void)unused;
  DetectorConfig det;
  det.pixels = 8;
  auto mean_photons = [&](BeamIntensity intensity) {
    DiffractionSimulator sim(det, intensity);
    util::Rng rng(4);
    double total = 0.0;
    for (int i = 0; i < 20; ++i)
      total += sim.simulate_shot(conf, rng).total_photons;
    return total / 20.0;
  };
  const double low = mean_photons(BeamIntensity::kLow);
  const double high = mean_photons(BeamIntensity::kHigh);
  EXPECT_GT(high, low * 50.0);  // ~100x modulo Poisson noise
}

TEST(DiffractionSimulator, ShotImageIsNormalized) {
  ProteinConfig pcfg;
  const auto [conf, unused] = make_conformation_pair(pcfg);
  (void)unused;
  DetectorConfig det;
  det.pixels = 8;
  DiffractionSimulator sim(det, BeamIntensity::kMedium);
  util::Rng rng(5);
  const Shot shot = sim.simulate_shot(conf, rng);
  float max_px = 0.0f;
  for (float v : shot.image) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
    max_px = std::max(max_px, v);
  }
  EXPECT_FLOAT_EQ(max_px, 1.0f);  // log-normalized to the peak
}

TEST(DiffractionSimulator, ConfigValidation) {
  DetectorConfig det;
  det.pixels = 2;
  EXPECT_THROW(DiffractionSimulator(det, BeamIntensity::kLow),
               std::invalid_argument);
  det.pixels = 8;
  det.q_max = 0.0;
  EXPECT_THROW(DiffractionSimulator(det, BeamIntensity::kLow),
               std::invalid_argument);
}

TEST(XfelDataset, BalancedSplitAndMetadata) {
  XfelDatasetConfig cfg;
  cfg.images_per_class = 50;
  cfg.detector.pixels = 8;
  const XfelDataset data = generate_xfel_dataset(cfg);
  EXPECT_EQ(data.train.size(), 80u);
  EXPECT_EQ(data.validation.size(), 20u);
  EXPECT_EQ(data.train_orientations.size(), 80u);
  EXPECT_EQ(data.validation_orientations.size(), 20u);
  // Class balance within 20% on the train split.
  std::size_t class0 = 0;
  for (std::size_t i = 0; i < data.train.size(); ++i)
    class0 += data.train.label(i) == 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(class0), 40.0, 12.0);
}

TEST(XfelDataset, DeterministicForSeed) {
  XfelDatasetConfig cfg;
  cfg.images_per_class = 10;
  cfg.detector.pixels = 8;
  const XfelDataset a = generate_xfel_dataset(cfg);
  const XfelDataset b = generate_xfel_dataset(cfg);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train.label(i), b.train.label(i));
    EXPECT_EQ(a.train.image(i)[7], b.train.image(i)[7]);
  }
  cfg.seed += 1;
  const XfelDataset c = generate_xfel_dataset(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.train.size() && !any_diff; ++i)
    any_diff = a.train.image(i)[3] != c.train.image(i)[3];
  EXPECT_TRUE(any_diff);
}

TEST(XfelDataset, Validation) {
  XfelDatasetConfig cfg;
  cfg.images_per_class = 0;
  EXPECT_THROW(generate_xfel_dataset(cfg), std::invalid_argument);
  cfg.images_per_class = 10;
  cfg.train_fraction = 1.5;
  EXPECT_THROW(generate_xfel_dataset(cfg), std::invalid_argument);
}

TEST(ShapesDataset, RenderedShapesAreDistinct) {
  util::Rng rng(1);
  const auto disc = render_shape(ShapeClass::kDisc, 16, 0.0, 0.0, rng);
  const auto ring = render_shape(ShapeClass::kRing, 16, 0.0, 0.0, rng);
  ASSERT_EQ(disc.size(), 256u);
  // A noise-free disc has a lit center; a ring does not.
  EXPECT_GT(disc[8 * 16 + 8], 0.5f);
  EXPECT_LT(ring[8 * 16 + 8], 0.5f);
  // Both have lit pixels.
  double disc_sum = 0.0, ring_sum = 0.0;
  for (std::size_t i = 0; i < 256; ++i) {
    disc_sum += disc[i];
    ring_sum += ring[i];
  }
  EXPECT_GT(disc_sum, ring_sum);
  EXPECT_GT(ring_sum, 5.0);
}

TEST(ShapesDataset, GenerationAndValidation) {
  ShapesDatasetConfig cfg;
  cfg.images_per_class = 30;
  cfg.classes = 3;
  cfg.image_px = 8;
  const ShapesDataset data = generate_shapes_dataset(cfg);
  EXPECT_EQ(data.train.size(), 72u);
  EXPECT_EQ(data.validation.size(), 18u);
  EXPECT_EQ(data.train.num_classes(), 3u);

  ShapesDatasetConfig bad = cfg;
  bad.classes = 5;
  EXPECT_THROW(generate_shapes_dataset(bad), std::invalid_argument);
  bad = cfg;
  bad.images_per_class = 0;
  EXPECT_THROW(generate_shapes_dataset(bad), std::invalid_argument);
  bad = cfg;
  bad.train_fraction = 0.0;
  EXPECT_THROW(generate_shapes_dataset(bad), std::invalid_argument);
}

TEST(ShapesDataset, DeterministicBySeed) {
  ShapesDatasetConfig cfg;
  cfg.images_per_class = 10;
  cfg.image_px = 8;
  const ShapesDataset a = generate_shapes_dataset(cfg);
  const ShapesDataset b = generate_shapes_dataset(cfg);
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train.label(i), b.train.label(i));
    EXPECT_EQ(a.train.image(i)[10], b.train.image(i)[10]);
  }
}

}  // namespace
}  // namespace a4nn::xfel
