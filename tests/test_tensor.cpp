#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"

namespace a4nn::tensor {
namespace {

TEST(Tensor, ShapeAndNumel) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_THROW(t.dim(3), std::out_of_range);
  EXPECT_EQ(shape_to_string(t.shape()), "[2x3x4]");
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({5});
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full({3}, 2.5f);
  EXPECT_EQ(t[2], 2.5f);
  t.zero();
  EXPECT_EQ(t[0], 0.0f);
}

TEST(Tensor, DataConstructorValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, CheckedAccess) {
  Tensor t({2});
  EXPECT_NO_THROW(t.at(1));
  EXPECT_THROW(t.at(2), std::out_of_range);
}

TEST(Tensor, At4RowMajorLayout) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
  Tensor flat({10});
  EXPECT_THROW(flat.at4(0, 0, 0, 0), std::logic_error);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_EQ(r[4], 5.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, HeInitStatistics) {
  util::Rng rng(5);
  const std::size_t fan_in = 64;
  Tensor t = Tensor::he_init({200, fan_in}, fan_in, rng);
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    sum += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  const double n = static_cast<double>(t.numel());
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 2.0 / fan_in, 0.005);
}

TEST(Tensor, XavierInitBounds) {
  util::Rng rng(6);
  Tensor t = Tensor::xavier_init({50, 30}, 30, 50, rng);
  const float bound = std::sqrt(6.0f / 80.0f);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::fabs(t[i]), bound);
  }
}

TEST(Ops, AddMulAxpy) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  Tensor sum = add(a, b);
  EXPECT_EQ(sum[1], 22.0f);
  Tensor prod = mul(a, b);
  EXPECT_EQ(prod[2], 90.0f);
  std::vector<float> out{1, 1, 1};
  axpy(2.0f, a.span(), out);
  EXPECT_EQ(out[2], 7.0f);
  Tensor c({2});
  EXPECT_THROW(add(a, c), std::invalid_argument);
}

TEST(Ops, ScaleAndSum) {
  Tensor t({4}, {1, 2, 3, 4});
  scale(t, 0.5f);
  EXPECT_EQ(t[3], 2.0f);
  EXPECT_DOUBLE_EQ(sum(t), 5.0);
}

TEST(Ops, Argmax) {
  std::vector<float> v{1.0f, 5.0f, 3.0f};
  EXPECT_EQ(argmax(v), 1u);
  EXPECT_THROW(argmax(std::vector<float>{}), std::invalid_argument);
}

// Reference triple-loop GEMM for validation.
void ref_gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
              const float* b, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk)
        acc += a[i * k + kk] * b[kk * n + j];
      c[i * n + j] = acc;
    }
  }
}

TEST(Ops, GemmMatchesReference) {
  util::Rng rng(7);
  const std::size_t m = 7, k = 5, n = 9;
  std::vector<float> a(m * k), b(k * n), c(m * n), ref(m * n);
  for (auto& x : a) x = static_cast<float>(rng.normal());
  for (auto& x : b) x = static_cast<float>(rng.normal());
  gemm(m, k, n, a.data(), b.data(), c.data());
  ref_gemm(m, k, n, a.data(), b.data(), ref.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);
}

TEST(Ops, GemmAtBMatchesReference) {
  util::Rng rng(8);
  const std::size_t m = 4, k = 6, n = 3;
  // A stored (k x m), compute C = A^T B.
  std::vector<float> a_t(k * m), b(k * n), c(m * n), a(m * k), ref(m * n);
  for (auto& x : a_t) x = static_cast<float>(rng.normal());
  for (auto& x : b) x = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t kk = 0; kk < k; ++kk) a[i * k + kk] = a_t[kk * m + i];
  gemm_at_b(m, k, n, a_t.data(), b.data(), c.data());
  ref_gemm(m, k, n, a.data(), b.data(), ref.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);
}

TEST(Ops, GemmABtMatchesReference) {
  util::Rng rng(9);
  const std::size_t m = 5, k = 4, n = 6;
  // B stored (n x k), compute C = A B^T.
  std::vector<float> a(m * k), b_t(n * k), b(k * n), c(m * n), ref(m * n);
  for (auto& x : a) x = static_cast<float>(rng.normal());
  for (auto& x : b_t) x = static_cast<float>(rng.normal());
  for (std::size_t kk = 0; kk < k; ++kk)
    for (std::size_t j = 0; j < n; ++j) b[kk * n + j] = b_t[j * k + kk];
  gemm_a_bt(m, k, n, a.data(), b_t.data(), c.data());
  ref_gemm(m, k, n, a.data(), b.data(), ref.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);
}

TEST(Ops, ConvGeometry) {
  ConvGeometry g;
  g.in_channels = 3;
  g.in_h = 8;
  g.in_w = 8;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  EXPECT_EQ(g.out_h(), 8u);
  EXPECT_EQ(g.out_w(), 8u);
  EXPECT_EQ(g.patch_size(), 27u);
  g.stride = 2;
  g.pad = 0;
  EXPECT_EQ(g.out_h(), 3u);
}

TEST(Ops, Im2colIdentityKernel) {
  // 1x1 kernel, no padding: columns == image.
  ConvGeometry g;
  g.in_channels = 2;
  g.in_h = 3;
  g.in_w = 3;
  g.kernel = 1;
  std::vector<float> img(18);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<float>(i);
  std::vector<float> cols(18);
  im2col(g, img, cols);
  EXPECT_EQ(cols, img);
}

TEST(Ops, Im2colPaddingProducesZeros) {
  ConvGeometry g;
  g.in_channels = 1;
  g.in_h = 2;
  g.in_w = 2;
  g.kernel = 3;
  g.pad = 1;
  std::vector<float> img{1, 2, 3, 4};
  std::vector<float> cols(9 * 4);
  im2col(g, img, cols);
  // First row of columns = kernel position (0,0): top-left output cell
  // reads the padded corner -> 0.
  EXPECT_EQ(cols[0], 0.0f);
  // Center kernel position (1,1) row reproduces the image.
  const std::size_t center_row = 4;
  EXPECT_EQ(cols[center_row * 4 + 0], 1.0f);
  EXPECT_EQ(cols[center_row * 4 + 3], 4.0f);
}

TEST(Ops, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
  // property that makes the convolution backward pass correct.
  util::Rng rng(11);
  ConvGeometry g;
  g.in_channels = 2;
  g.in_h = 5;
  g.in_w = 4;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  const std::size_t img_size = 2 * 5 * 4;
  const std::size_t col_size = g.patch_size() * g.out_h() * g.out_w();
  std::vector<float> x(img_size), y(col_size), cols(col_size), back(img_size, 0.0f);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : y) v = static_cast<float>(rng.normal());
  im2col(g, x, cols);
  col2im(g, y, back);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < col_size; ++i) lhs += static_cast<double>(cols[i]) * y[i];
  for (std::size_t i = 0; i < img_size; ++i) rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Ops, Im2colSizeValidation) {
  ConvGeometry g;
  g.in_channels = 1;
  g.in_h = 4;
  g.in_w = 4;
  g.kernel = 3;
  std::vector<float> img(16), cols(5);
  EXPECT_THROW(im2col(g, img, cols), std::invalid_argument);
  std::vector<float> bad_img(7);
  std::vector<float> ok_cols(9 * 4);
  EXPECT_THROW(im2col(g, bad_img, ok_cols), std::invalid_argument);
}

}  // namespace
}  // namespace a4nn::tensor
