#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/autotune.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"
#include "tensor/scratch.hpp"

namespace a4nn::tensor {
namespace {

TEST(Tensor, ShapeAndNumel) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_THROW(t.dim(3), std::out_of_range);
  EXPECT_EQ(shape_to_string(t.shape()), "[2x3x4]");
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({5});
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full({3}, 2.5f);
  EXPECT_EQ(t[2], 2.5f);
  t.zero();
  EXPECT_EQ(t[0], 0.0f);
}

TEST(Tensor, DataConstructorValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, CheckedAccess) {
  Tensor t({2});
  EXPECT_NO_THROW(t.at(1));
  EXPECT_THROW(t.at(2), std::out_of_range);
}

TEST(Tensor, At4RowMajorLayout) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
  Tensor flat({10});
  EXPECT_THROW(flat.at4(0, 0, 0, 0), std::logic_error);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_EQ(r[4], 5.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, HeInitStatistics) {
  util::Rng rng(5);
  const std::size_t fan_in = 64;
  Tensor t = Tensor::he_init({200, fan_in}, fan_in, rng);
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    sum += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  const double n = static_cast<double>(t.numel());
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 2.0 / fan_in, 0.005);
}

TEST(Tensor, XavierInitBounds) {
  util::Rng rng(6);
  Tensor t = Tensor::xavier_init({50, 30}, 30, 50, rng);
  const float bound = std::sqrt(6.0f / 80.0f);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::fabs(t[i]), bound);
  }
}

TEST(Ops, AddMulAxpy) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  Tensor sum = add(a, b);
  EXPECT_EQ(sum[1], 22.0f);
  Tensor prod = mul(a, b);
  EXPECT_EQ(prod[2], 90.0f);
  std::vector<float> out{1, 1, 1};
  axpy(2.0f, a.span(), out);
  EXPECT_EQ(out[2], 7.0f);
  Tensor c({2});
  EXPECT_THROW(add(a, c), std::invalid_argument);
}

TEST(Ops, ScaleAndSum) {
  Tensor t({4}, {1, 2, 3, 4});
  scale(t, 0.5f);
  EXPECT_EQ(t[3], 2.0f);
  EXPECT_DOUBLE_EQ(sum(t), 5.0);
}

TEST(Ops, Argmax) {
  std::vector<float> v{1.0f, 5.0f, 3.0f};
  EXPECT_EQ(argmax(v), 1u);
  EXPECT_THROW(argmax(std::vector<float>{}), std::invalid_argument);
}

// Reference triple-loop GEMM for validation.
void ref_gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
              const float* b, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk)
        acc += a[i * k + kk] * b[kk * n + j];
      c[i * n + j] = acc;
    }
  }
}

TEST(Ops, GemmMatchesReference) {
  util::Rng rng(7);
  const std::size_t m = 7, k = 5, n = 9;
  std::vector<float> a(m * k), b(k * n), c(m * n), ref(m * n);
  for (auto& x : a) x = static_cast<float>(rng.normal());
  for (auto& x : b) x = static_cast<float>(rng.normal());
  gemm(m, k, n, a.data(), b.data(), c.data());
  ref_gemm(m, k, n, a.data(), b.data(), ref.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);
}

TEST(Ops, GemmAtBMatchesReference) {
  util::Rng rng(8);
  const std::size_t m = 4, k = 6, n = 3;
  // A stored (k x m), compute C = A^T B.
  std::vector<float> a_t(k * m), b(k * n), c(m * n), a(m * k), ref(m * n);
  for (auto& x : a_t) x = static_cast<float>(rng.normal());
  for (auto& x : b) x = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t kk = 0; kk < k; ++kk) a[i * k + kk] = a_t[kk * m + i];
  gemm_at_b(m, k, n, a_t.data(), b.data(), c.data());
  ref_gemm(m, k, n, a.data(), b.data(), ref.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);
}

TEST(Ops, GemmABtMatchesReference) {
  util::Rng rng(9);
  const std::size_t m = 5, k = 4, n = 6;
  // B stored (n x k), compute C = A B^T.
  std::vector<float> a(m * k), b_t(n * k), b(k * n), c(m * n), ref(m * n);
  for (auto& x : a) x = static_cast<float>(rng.normal());
  for (auto& x : b_t) x = static_cast<float>(rng.normal());
  for (std::size_t kk = 0; kk < k; ++kk)
    for (std::size_t j = 0; j < n; ++j) b[kk * n + j] = b_t[j * k + kk];
  gemm_a_bt(m, k, n, a.data(), b_t.data(), c.data());
  ref_gemm(m, k, n, a.data(), b.data(), ref.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);
}

TEST(Ops, ConvGeometry) {
  ConvGeometry g;
  g.in_channels = 3;
  g.in_h = 8;
  g.in_w = 8;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  EXPECT_EQ(g.out_h(), 8u);
  EXPECT_EQ(g.out_w(), 8u);
  EXPECT_EQ(g.patch_size(), 27u);
  g.stride = 2;
  g.pad = 0;
  EXPECT_EQ(g.out_h(), 3u);
}

TEST(Ops, Im2colIdentityKernel) {
  // 1x1 kernel, no padding: columns == image.
  ConvGeometry g;
  g.in_channels = 2;
  g.in_h = 3;
  g.in_w = 3;
  g.kernel = 1;
  std::vector<float> img(18);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<float>(i);
  std::vector<float> cols(18);
  im2col(g, img, cols);
  EXPECT_EQ(cols, img);
}

TEST(Ops, Im2colPaddingProducesZeros) {
  ConvGeometry g;
  g.in_channels = 1;
  g.in_h = 2;
  g.in_w = 2;
  g.kernel = 3;
  g.pad = 1;
  std::vector<float> img{1, 2, 3, 4};
  std::vector<float> cols(9 * 4);
  im2col(g, img, cols);
  // First row of columns = kernel position (0,0): top-left output cell
  // reads the padded corner -> 0.
  EXPECT_EQ(cols[0], 0.0f);
  // Center kernel position (1,1) row reproduces the image.
  const std::size_t center_row = 4;
  EXPECT_EQ(cols[center_row * 4 + 0], 1.0f);
  EXPECT_EQ(cols[center_row * 4 + 3], 4.0f);
}

TEST(Ops, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
  // property that makes the convolution backward pass correct.
  util::Rng rng(11);
  ConvGeometry g;
  g.in_channels = 2;
  g.in_h = 5;
  g.in_w = 4;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  const std::size_t img_size = 2 * 5 * 4;
  const std::size_t col_size = g.patch_size() * g.out_h() * g.out_w();
  std::vector<float> x(img_size), y(col_size), cols(col_size), back(img_size, 0.0f);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : y) v = static_cast<float>(rng.normal());
  im2col(g, x, cols);
  col2im(g, y, back);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < col_size; ++i) lhs += static_cast<double>(cols[i]) * y[i];
  for (std::size_t i = 0; i < img_size; ++i) rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Ops, Im2colSizeValidation) {
  ConvGeometry g;
  g.in_channels = 1;
  g.in_h = 4;
  g.in_w = 4;
  g.kernel = 3;
  std::vector<float> img(16), cols(5);
  EXPECT_THROW(im2col(g, img, cols), std::invalid_argument);
  std::vector<float> bad_img(7);
  std::vector<float> ok_cols(9 * 4);
  EXPECT_THROW(im2col(g, bad_img, ok_cols), std::invalid_argument);
}

// ------------------------------------------- randomized GEMM property sweep
//
// Every public variant is checked against a double-precision reference over
// a few hundred shapes: degenerate extents (1, 2, odd), extents straddling
// the blocking constants (just below/at/above MR=4, NR=16, MC=64, KC=NC=256),
// and uniformly random ones. The error bound is absolute and scales only
// with the k-extent (the summation length) — a packing or tiling bug that
// drops, duplicates, or misindexes a term shows up far above it.

double ref_entry(std::size_t k, std::size_t n, const float* a, const float* b,
                 std::size_t i, std::size_t j) {
  double acc = 0.0;
  for (std::size_t kk = 0; kk < k; ++kk)
    acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
  return acc;
}

float sweep_tolerance(std::size_t k) {
  // float rounding of a length-k sum of ~N(0,1) products, with headroom.
  return 1e-5f * static_cast<float>(k + 8);
}

std::size_t sweep_extent(util::Rng& rng) {
  // Half the draws target the blocking boundaries, half are uniform.
  static const std::size_t kEdges[] = {1,  2,  3,  4,  5,   15,  16, 17,
                                       31, 63, 64, 65, 255, 256, 257};
  if (rng.uniform() < 0.5) {
    const auto e = kEdges[static_cast<std::size_t>(rng.uniform() * 15.0)];
    return std::min<std::size_t>(e, 257);
  }
  return 1 + static_cast<std::size_t>(rng.uniform() * 48.0);
}

TEST(OpsSweep, AllGemmVariantsMatchDoubleReference) {
  util::Rng rng(2023);
  for (int trial = 0; trial < 200; ++trial) {
    std::size_t m = sweep_extent(rng);
    std::size_t k = sweep_extent(rng);
    std::size_t n = sweep_extent(rng);
    // Keep the double reference O(m*k*n) affordable when two extents are
    // large: shrink the third.
    while (m * k * n > 600'000) {
      if (m >= k && m >= n) m = m / 2 + 1;
      else if (k >= n) k = k / 2 + 1;
      else n = n / 2 + 1;
    }
    SCOPED_TRACE("m=" + std::to_string(m) + " k=" + std::to_string(k) +
                 " n=" + std::to_string(n));

    std::vector<float> a(m * k), b(k * n);
    for (auto& x : a) x = static_cast<float>(rng.normal());
    for (auto& x : b) x = static_cast<float>(rng.normal());
    // Transposed copies for the at_b / a_bt variants.
    std::vector<float> a_t(k * m), b_t(n * k);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t kk = 0; kk < k; ++kk) a_t[kk * m + i] = a[i * k + kk];
    for (std::size_t kk = 0; kk < k; ++kk)
      for (std::size_t j = 0; j < n; ++j) b_t[j * k + kk] = b[kk * n + j];

    std::vector<double> ref(m * n);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j)
        ref[i * n + j] = ref_entry(k, n, a.data(), b.data(), i, j);
    const float tol = sweep_tolerance(k);

    // The garbage prefill proves the overwrite variants really overwrite.
    std::vector<float> c(m * n, 123.0f);
    auto check = [&](const char* who, double extra = 0.0) {
      for (std::size_t i = 0; i < m * n; ++i) {
        ASSERT_NEAR(c[i], ref[i] + extra, tol) << who << " entry " << i;
      }
    };

    gemm(m, k, n, a.data(), b.data(), c.data());
    check("gemm");
    std::fill(c.begin(), c.end(), 123.0f);
    gemm_naive(m, k, n, a.data(), b.data(), c.data());
    check("gemm_naive");
    std::fill(c.begin(), c.end(), 123.0f);
    gemm_at_b(m, k, n, a_t.data(), b.data(), c.data());
    check("gemm_at_b");
    std::fill(c.begin(), c.end(), 123.0f);
    gemm_a_bt(m, k, n, a.data(), b_t.data(), c.data());
    check("gemm_a_bt");

    // Accumulating variants add on top of a nonzero C.
    std::fill(c.begin(), c.end(), 0.25f);
    gemm_accumulate(m, k, n, a.data(), b.data(), c.data());
    check("gemm_accumulate", 0.25);
    std::fill(c.begin(), c.end(), 0.25f);
    gemm_at_b_acc(m, k, n, a_t.data(), b.data(), c.data());
    check("gemm_at_b_acc", 0.25);
    std::fill(c.begin(), c.end(), 0.25f);
    gemm_a_bt_acc(m, k, n, a.data(), b_t.data(), c.data());
    check("gemm_a_bt_acc", 0.25);
  }
}

TEST(OpsSweep, FusedEpiloguesMatchUnfusedPasses) {
  util::Rng rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t m = sweep_extent(rng) % 80 + 1;
    const std::size_t k = sweep_extent(rng) % 80 + 1;
    const std::size_t n = sweep_extent(rng) % 80 + 1;
    SCOPED_TRACE("m=" + std::to_string(m) + " k=" + std::to_string(k) +
                 " n=" + std::to_string(n));
    std::vector<float> a(m * k), b(k * n), row_bias(m), col_bias(n);
    for (auto& x : a) x = static_cast<float>(rng.normal());
    for (auto& x : b) x = static_cast<float>(rng.normal());
    for (auto& x : row_bias) x = static_cast<float>(rng.normal());
    for (auto& x : col_bias) x = static_cast<float>(rng.normal());
    std::vector<float> b_t(n * k);
    for (std::size_t kk = 0; kk < k; ++kk)
      for (std::size_t j = 0; j < n; ++j) b_t[j * k + kk] = b[kk * n + j];

    // Unfused: plain GEMM, then bias pass, then ReLU pass.
    std::vector<float> expect(m * n);
    gemm(m, k, n, a.data(), b.data(), expect.data());
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        float v = expect[i * n + j] + row_bias[i];
        expect[i * n + j] = v > 0.0f ? v : 0.0f;
      }
    Epilogue ep;
    ep.bias = Epilogue::Bias::kPerRow;
    ep.bias_data = row_bias.data();
    ep.relu = true;
    std::vector<float> c(m * n, -9.0f);
    gemm_ex(m, k, n, a.data(), b.data(), c.data(), ep);
    // Same arithmetic, same order: the fused result is bit-identical.
    for (std::size_t i = 0; i < m * n; ++i)
      ASSERT_EQ(c[i], expect[i]) << "gemm_ex entry " << i;

    // Dense-style: A*B^T with per-column bias, no ReLU.
    gemm_a_bt(m, k, n, a.data(), b_t.data(), expect.data());
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) expect[i * n + j] += col_bias[j];
    Epilogue ep2;
    ep2.bias = Epilogue::Bias::kPerCol;
    ep2.bias_data = col_bias.data();
    std::fill(c.begin(), c.end(), -9.0f);
    gemm_a_bt_ex(m, k, n, a.data(), b_t.data(), c.data(), ep2);
    for (std::size_t i = 0; i < m * n; ++i)
      ASSERT_EQ(c[i], expect[i]) << "gemm_a_bt_ex entry " << i;
  }
}

TEST(OpsSweep, GemmDegenerateExtents) {
  // k == 0: overwrite zeroes C, accumulate leaves it alone, the epilogue
  // still applies. m == 0 or n == 0: no touching anything.
  std::vector<float> c(6, 5.0f);
  gemm(2, 0, 3, nullptr, nullptr, c.data());
  for (float v : c) EXPECT_EQ(v, 0.0f);
  std::fill(c.begin(), c.end(), 5.0f);
  gemm_accumulate(2, 0, 3, nullptr, nullptr, c.data());
  for (float v : c) EXPECT_EQ(v, 5.0f);
  std::vector<float> bias{1.0f, 2.0f};
  Epilogue ep;
  ep.bias = Epilogue::Bias::kPerRow;
  ep.bias_data = bias.data();
  std::fill(c.begin(), c.end(), 5.0f);
  gemm_ex(2, 0, 3, nullptr, nullptr, c.data(), ep);
  EXPECT_EQ(c[0], 1.0f);
  EXPECT_EQ(c[5], 2.0f);
  std::fill(c.begin(), c.end(), 5.0f);
  gemm(0, 4, 3, nullptr, nullptr, c.data());
  gemm(2, 4, 0, nullptr, nullptr, c.data());
  for (float v : c) EXPECT_EQ(v, 5.0f);
}

TEST(OpsSweep, AdjointnessOverStridedPaddedGeometries) {
  // <im2col(x), y> == <x, col2im(y)> across the full geometry grid the
  // search space can produce, including stride-2 and kernel-sized padding.
  util::Rng rng(42);
  for (std::size_t ch : {1, 3}) {
    for (std::size_t h : {4, 5, 7}) {
      for (std::size_t w : {4, 6, 9}) {
        for (std::size_t kernel : {1, 2, 3}) {
          for (std::size_t stride : {1, 2}) {
            for (std::size_t pad : {0, 1, 2}) {
              if (h + 2 * pad < kernel || w + 2 * pad < kernel) continue;
              // ConvGeometry::validate rejects pad >= kernel (border
              // outputs would read only padding) — no layer emits these.
              if (pad >= kernel) continue;
              ConvGeometry g;
              g.in_channels = ch;
              g.in_h = h;
              g.in_w = w;
              g.kernel = kernel;
              g.stride = stride;
              g.pad = pad;
              SCOPED_TRACE("ch=" + std::to_string(ch) + " h=" +
                           std::to_string(h) + " w=" + std::to_string(w) +
                           " k=" + std::to_string(kernel) + " s=" +
                           std::to_string(stride) + " p=" +
                           std::to_string(pad));
              const std::size_t img_size = ch * h * w;
              const std::size_t col_size =
                  g.patch_size() * g.out_h() * g.out_w();
              std::vector<float> x(img_size), y(col_size), cols(col_size),
                  back(img_size, 0.0f);
              for (auto& v : x) v = static_cast<float>(rng.normal());
              for (auto& v : y) v = static_cast<float>(rng.normal());
              im2col(g, x, cols);
              col2im(g, y, back);
              double lhs = 0.0, rhs = 0.0;
              for (std::size_t i = 0; i < col_size; ++i)
                lhs += static_cast<double>(cols[i]) * y[i];
              for (std::size_t i = 0; i < img_size; ++i)
                rhs += static_cast<double>(x[i]) * back[i];
              ASSERT_NEAR(lhs, rhs, 1e-3);
            }
          }
        }
      }
    }
  }
}

// ----------------------------------------------- tuned blocking candidates
//
// Every candidate the autotuner can install must produce correct results on
// adversarial shapes: extents of 1, extents straddling the register tile
// (MR=6, NR=16), and extents straddling that candidate's own kc/nc cache
// boundaries. A candidate that mispacks a partial panel would win a tune on
// round shapes and then corrupt real layer shapes at runtime.

std::vector<std::size_t> boundary_extents(std::size_t tile,
                                          std::size_t cap) {
  std::vector<std::size_t> out{1, tile - 1, tile + 1};
  std::erase_if(out, [&](std::size_t e) { return e == 0 || e > cap; });
  return out;
}

TEST(OpsTuned, EveryCandidateMatchesNaiveOnBoundaryShapes) {
  util::Rng rng(314);
  for (std::size_t ci = 0; ci < candidate_tile_configs().size(); ++ci) {
    const TileConfig& cfg = candidate_tile_configs()[ci];
    ASSERT_NO_THROW(validate_tile_config(cfg));
    // m boundaries stress the MR strips; k the candidate's k-panel depth
    // (plus the small-path cutoff via n*k); n the NR strips and nc blocks.
    std::vector<std::size_t> ms = boundary_extents(kGemmMR, 16);
    std::vector<std::size_t> ks = boundary_extents(cfg.kc, 600);
    ks.push_back(3);
    std::vector<std::size_t> ns = boundary_extents(kGemmNR, 600);
    for (std::size_t e : boundary_extents(cfg.nc, 600)) ns.push_back(e);
    for (std::size_t m : ms) {
      for (std::size_t k : ks) {
        for (std::size_t n : ns) {
          if (m * k * n > 3'000'000) continue;
          SCOPED_TRACE("candidate=" + std::to_string(ci) + " m=" +
                       std::to_string(m) + " k=" + std::to_string(k) +
                       " n=" + std::to_string(n));
          std::vector<float> a(m * k), b(k * n), c(m * n, 123.0f),
              ref(m * n, -7.0f);
          for (auto& x : a) x = static_cast<float>(rng.normal());
          for (auto& x : b) x = static_cast<float>(rng.normal());
          gemm_with_config(m, k, n, a.data(), b.data(), c.data(), cfg);
          gemm_naive(m, k, n, a.data(), b.data(), ref.data());
          const float tol = sweep_tolerance(k);
          for (std::size_t i = 0; i < m * n; ++i)
            ASSERT_NEAR(c[i], ref[i], tol) << "entry " << i;
        }
      }
    }
  }
}

TEST(OpsTuned, RowResultsAreIndependentOfBatchSize) {
  // The serving engine's batch-size-invariance guarantee, at the kernel
  // level: row i of an m-row GEMM is bit-identical to the same row computed
  // alone, under every tuner candidate. This is what makes it safe to key
  // the tuned table on (k, n) and never on m.
  util::Rng rng(1618);
  const std::size_t k = 36, n = 64, m = 9;
  std::vector<float> a(m * k), b(k * n);
  for (auto& x : a) x = static_cast<float>(rng.normal());
  for (auto& x : b) x = static_cast<float>(rng.normal());
  for (std::size_t ci = 0; ci < candidate_tile_configs().size(); ++ci) {
    const TileConfig& cfg = candidate_tile_configs()[ci];
    SCOPED_TRACE("candidate=" + std::to_string(ci));
    std::vector<float> batch(m * n);
    gemm_with_config(m, k, n, a.data(), b.data(), batch.data(), cfg);
    for (std::size_t i = 0; i < m; ++i) {
      std::vector<float> solo(n);
      gemm_with_config(1, k, n, a.data() + i * k, b.data(), solo.data(), cfg);
      ASSERT_EQ(std::memcmp(solo.data(), batch.data() + i * n,
                            n * sizeof(float)),
                0)
          << "row " << i;
    }
  }
}

TEST(OpsTuned, InstalledTableMatchesExplicitConfig) {
  util::Rng rng(2718);
  const std::size_t m = 7, k = 36, n = 64;
  std::vector<float> a(m * k), b(k * n);
  for (auto& x : a) x = static_cast<float>(rng.normal());
  for (auto& x : b) x = static_cast<float>(rng.normal());
  TileConfig cfg;
  cfg.mc = 36;
  cfg.kc = 128;
  cfg.nc = 128;
  cfg.small_row_flops = 0;  // force the blocked path even for this shape
  std::vector<float> expect(m * n), got(m * n);
  gemm_with_config(m, k, n, a.data(), b.data(), expect.data(), cfg);
  set_tuned_tile_configs({{k, n, cfg}});
  gemm(m, k, n, a.data(), b.data(), got.data());
  // Another (k, n) still uses the defaults — tuned entries never leak.
  std::vector<float> other(m * (n + 1)), other_ref(m * (n + 1));
  std::vector<float> b2(k * (n + 1));
  for (auto& x : b2) x = static_cast<float>(rng.normal());
  gemm(m, k, n + 1, a.data(), b2.data(), other.data());
  clear_tuned_tile_configs();
  gemm(m, k, n + 1, a.data(), b2.data(), other_ref.data());
  EXPECT_EQ(std::memcmp(got.data(), expect.data(), m * n * sizeof(float)), 0);
  EXPECT_EQ(std::memcmp(other.data(), other_ref.data(),
                        m * (n + 1) * sizeof(float)),
            0);
}

TEST(OpsTuned, TableRejectsInvalidAndDuplicateEntries) {
  TileConfig bad_mc;
  bad_mc.mc = 7;  // not a multiple of MR=6
  EXPECT_THROW(validate_tile_config(bad_mc), std::invalid_argument);
  TileConfig bad_nc;
  bad_nc.nc = 100;  // not a multiple of NR=16
  EXPECT_THROW(validate_tile_config(bad_nc), std::invalid_argument);
  TileConfig bad_kc;
  bad_kc.kc = 0;
  EXPECT_THROW(validate_tile_config(bad_kc), std::invalid_argument);
  EXPECT_THROW(set_tuned_tile_configs({{36, 64, bad_mc}}),
               std::invalid_argument);
  EXPECT_THROW(set_tuned_tile_configs({{0, 64, TileConfig{}}}),
               std::invalid_argument);
  // Two entries for one (k, n) could give the same row two different
  // summation orders depending on which wins — rejected outright.
  EXPECT_THROW(
      set_tuned_tile_configs({{36, 64, TileConfig{}}, {36, 64, TileConfig{}}}),
      std::invalid_argument);
  clear_tuned_tile_configs();
}

// -------------------------------------------------------- direct 3x3 conv

TEST(OpsConv, DirectViabilityFollowsGeometry) {
  auto geom = [](std::size_t ch, std::size_t hw, std::size_t kernel,
                 std::size_t stride, std::size_t pad) {
    ConvGeometry g;
    g.in_channels = ch;
    g.in_h = hw;
    g.in_w = hw;
    g.kernel = kernel;
    g.stride = stride;
    g.pad = pad;
    return g;
  };
  EXPECT_TRUE(conv2d_direct_viable(geom(1, 16, 3, 1, 1)));   // out_w = 16
  EXPECT_FALSE(conv2d_direct_viable(geom(1, 8, 3, 1, 1)));   // out_w = 8
  EXPECT_FALSE(conv2d_direct_viable(geom(1, 16, 3, 2, 1)));  // stride 2
  EXPECT_FALSE(conv2d_direct_viable(geom(1, 16, 1, 1, 0)));  // 1x1
}

TEST(OpsConv, DirectMatchesIm2colBitExact) {
  // The direct packer feeds the same microkernel the same panel bytes in
  // the same order as im2col + gemm_ex, so the outputs must be bit-equal —
  // across viable geometries (out_w >= NR), fallback geometries (narrow,
  // small), pad 0 and 1, and fused epilogues.
  util::Rng rng(999);
  struct Case {
    std::size_t ch, h, w, pad, oc;
  };
  const Case cases[] = {
      {1, 16, 16, 1, 4},  // stem shape: viable, padded
      {4, 16, 16, 1, 8},  // multi-channel viable
      {1, 18, 20, 0, 3},  // viable, no padding, non-square
      {2, 16, 17, 1, 5},  // odd out_w = 17 (partial last strip)
      {4, 8, 8, 1, 8},    // narrow: materialized fallback
      {1, 4, 4, 1, 2},    // tiny: small-problem fallback
  };
  for (const Case& tc : cases) {
    SCOPED_TRACE("ch=" + std::to_string(tc.ch) + " h=" + std::to_string(tc.h) +
                 " w=" + std::to_string(tc.w) + " pad=" +
                 std::to_string(tc.pad) + " oc=" + std::to_string(tc.oc));
    ConvGeometry g;
    g.in_channels = tc.ch;
    g.in_h = tc.h;
    g.in_w = tc.w;
    g.kernel = 3;
    g.stride = 1;
    g.pad = tc.pad;
    g.validate();
    const std::size_t cols = g.out_h() * g.out_w();
    const std::size_t patch = g.patch_size();
    std::vector<float> image(tc.ch * tc.h * tc.w), weights(tc.oc * patch),
        bias(tc.oc);
    for (auto& v : image) v = static_cast<float>(rng.normal());
    for (auto& v : weights) v = static_cast<float>(rng.normal());
    for (auto& v : bias) v = static_cast<float>(rng.normal());
    Epilogue ep;
    ep.bias = Epilogue::Bias::kPerRow;
    ep.bias_data = bias.data();
    ep.relu = true;

    std::vector<float> col_buf(patch * cols);
    im2col(g, image, col_buf);
    std::vector<float> expect(tc.oc * cols, -5.0f);
    gemm_ex(tc.oc, patch, cols, weights.data(), col_buf.data(), expect.data(),
            ep);

    std::vector<float> got(tc.oc * cols, 17.0f);
    conv2d_forward_direct(g, tc.oc, weights.data(), image, got.data(), ep);
    ASSERT_EQ(
        std::memcmp(got.data(), expect.data(), got.size() * sizeof(float)), 0);
  }
}

TEST(OpsConv, DirectBitExactUnderEveryCandidateConfig) {
  // The bit-equality contract has to survive retuning: whatever blocking
  // the autotuner installs for the conv's (k, n), direct and materialized
  // paths still agree bit for bit.
  util::Rng rng(555);
  ConvGeometry g;
  g.in_channels = 4;
  g.in_h = 16;
  g.in_w = 16;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  const std::size_t oc = 8, patch = g.patch_size(),
                    cols = g.out_h() * g.out_w();
  std::vector<float> image(4 * 16 * 16), weights(oc * patch);
  for (auto& v : image) v = static_cast<float>(rng.normal());
  for (auto& v : weights) v = static_cast<float>(rng.normal());
  Epilogue ep;
  std::vector<float> col_buf(patch * cols);
  im2col(g, image, col_buf);
  for (std::size_t ci = 0; ci < candidate_tile_configs().size(); ++ci) {
    SCOPED_TRACE("candidate=" + std::to_string(ci));
    set_tuned_tile_configs({{patch, cols, candidate_tile_configs()[ci]}});
    std::vector<float> expect(oc * cols), got(oc * cols);
    gemm_ex(oc, patch, cols, weights.data(), col_buf.data(), expect.data(),
            ep);
    conv2d_forward_direct(g, oc, weights.data(), image, got.data(), ep);
    clear_tuned_tile_configs();
    ASSERT_EQ(
        std::memcmp(got.data(), expect.data(), got.size() * sizeof(float)), 0);
  }
}

TEST(OpsConv, GeometryValidationRejectsDegenerates) {
  ConvGeometry g;
  g.in_channels = 1;
  g.in_h = 8;
  g.in_w = 8;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  EXPECT_NO_THROW(g.validate());
  ConvGeometry pad_heavy = g;
  pad_heavy.pad = 3;  // pad >= kernel: border outputs read only padding
  EXPECT_THROW(pad_heavy.validate(), std::invalid_argument);
  ConvGeometry too_small = g;
  too_small.in_h = 2;
  too_small.pad = 0;  // 2 + 0 < 3: out_h truncates to zero (size_t wrap)
  EXPECT_THROW(too_small.validate(), std::invalid_argument);
  ConvGeometry zero_ch = g;
  zero_ch.in_channels = 0;
  EXPECT_THROW(zero_ch.validate(), std::invalid_argument);
  ConvGeometry zero_stride = g;
  zero_stride.stride = 0;
  EXPECT_THROW(zero_stride.validate(), std::invalid_argument);
  ConvGeometry zero_kernel = g;
  zero_kernel.kernel = 0;
  EXPECT_THROW(zero_kernel.validate(), std::invalid_argument);
  // im2col and the direct forward validate too — the degenerate geometry
  // never reaches the kernels.
  std::vector<float> img(64), cols(1);
  EXPECT_THROW(im2col(pad_heavy, img, cols), std::invalid_argument);
  EXPECT_THROW(
      conv2d_forward_direct(pad_heavy, 1, nullptr, img, nullptr, Epilogue{}),
      std::invalid_argument);
}

// ------------------------------------------------------------ scratch arena

TEST(Scratch, PointersStayStableAcrossGrowth) {
  ScratchArena arena;
  auto first = arena.alloc(8);
  first[0] = 42.0f;
  // Force several new blocks; the first allocation must not move.
  for (int i = 0; i < 6; ++i) arena.alloc(1 << 15);
  EXPECT_EQ(first[0], 42.0f);
  arena.release();
  EXPECT_EQ(arena.capacity(), 0u);
}

TEST(Scratch, ScopeRewindReusesMemory) {
  ScratchArena arena;
  float* p1;
  {
    ScratchScope scope(arena);
    p1 = scope.alloc(100).data();
  }
  const std::size_t cap_after_first = arena.capacity();
  {
    ScratchScope scope(arena);
    // Same size from the same position: identical pointer, no new block.
    EXPECT_EQ(scope.alloc(100).data(), p1);
  }
  EXPECT_EQ(arena.capacity(), cap_after_first);
}

TEST(Scratch, AllocZeroedZeroesAndHighWaterTracks) {
  ScratchArena arena;
  {
    ScratchScope scope(arena);
    auto s = scope.alloc_zeroed(64);
    for (float v : s) ASSERT_EQ(v, 0.0f);
    scope.alloc(36);
  }
  EXPECT_EQ(arena.high_water(), 100u);
  {
    ScratchScope scope(arena);
    scope.alloc(10);
  }
  EXPECT_EQ(arena.high_water(), 100u);  // high-water is a max, not current
}

TEST(Scratch, NestedScopesUnwindInOrder) {
  ScratchArena arena;
  ScratchScope outer(arena);
  float* a = outer.alloc(16).data();
  float* inner_ptr;
  {
    ScratchScope inner(arena);
    inner_ptr = inner.alloc(16).data();
    EXPECT_NE(inner_ptr, a);
  }
  // Inner released; the next alloc reuses its slot. Outer's span survives.
  ScratchScope again(arena);
  EXPECT_EQ(again.alloc(16).data(), inner_ptr);
}

TEST(Scratch, TrimKeepsOnlyTheWatermarkBlock) {
  ScratchArena arena;
  {
    ScratchScope scope(arena);
    scope.alloc(100);      // first block: 1 << 14 floats
    scope.alloc(1 << 15);  // second block: 1 << 15 floats
  }
  ASSERT_EQ(arena.capacity(), (1u << 14) + (1u << 15));
  // Trim to a watermark that fits only the smaller block: the outlier
  // block is freed, the steady-state one survives.
  arena.trim(1 << 14);
  EXPECT_EQ(arena.capacity(), 1u << 14);
  // The surviving block is immediately reusable from offset zero.
  {
    ScratchScope scope(arena);
    scope.alloc(1 << 14);
  }
  EXPECT_EQ(arena.capacity(), 1u << 14);
  // A watermark below every block frees everything.
  arena.trim(100);
  EXPECT_EQ(arena.capacity(), 0u);
}

TEST(Scratch, TrimIsANoOpWhileAllocationsAreLive) {
  ScratchArena arena;
  ScratchScope scope(arena);
  auto s = scope.alloc(256);
  s[0] = 3.5f;
  const std::size_t cap = arena.capacity();
  arena.trim(0);  // live floats: freeing would dangle the span above
  EXPECT_EQ(arena.capacity(), cap);
  EXPECT_EQ(s[0], 3.5f);
}

// --------------------------------------------------- deterministic chunking

TEST(Parallel, PartitionCoversRangeDisjointly) {
  for (std::size_t items : {0u, 1u, 2u, 15u, 16u, 17u, 100u, 1000u}) {
    const std::size_t chunks = intra_op_chunks(items);
    EXPECT_EQ(chunks, std::min<std::size_t>(items, kMaxIntraOpChunks));
    std::size_t covered = 0;
    std::size_t prev_end = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const ChunkRange r = intra_op_chunk_range(items, c);
      EXPECT_EQ(r.begin, prev_end);  // contiguous, in order, no gaps
      EXPECT_GT(r.end, r.begin);     // never an empty chunk
      covered += r.end - r.begin;
      prev_end = r.end;
    }
    EXPECT_EQ(covered, items);
    if (chunks > 0) {
      EXPECT_EQ(prev_end, items);
    }
  }
}

TEST(Parallel, ChunksRunBitIdenticalAtAnyThreadCount) {
  // The same chunked reduction at pool sizes 1, 2, and 8 must produce the
  // same bytes: the partition depends on the item count alone and the
  // caller reduces chunk-private slabs in chunk order.
  const std::size_t items = 1000;
  std::vector<float> data(items);
  util::Rng rng(3);
  for (auto& v : data) v = static_cast<float>(rng.normal());

  auto run = [&](std::size_t threads) {
    set_intra_op_threads(threads);
    const std::size_t chunks = intra_op_chunks(items);
    std::vector<float> partial(chunks, 0.0f);
    parallel_chunks(items, [&](std::size_t c, std::size_t begin,
                               std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) partial[c] += data[i] * data[i];
    });
    float total = 0.0f;
    for (std::size_t c = 0; c < chunks; ++c) total += partial[c];
    return total;
  };
  const float t1 = run(1);
  const float t2 = run(2);
  const float t8 = run(8);
  set_intra_op_threads(1);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

TEST(Parallel, ChunkExceptionPropagatesAndPoolSurvives) {
  set_intra_op_threads(4);
  EXPECT_THROW(
      parallel_chunks(100,
                      [&](std::size_t c, std::size_t, std::size_t) {
                        if (c == 3) throw std::runtime_error("chunk fault");
                      }),
      std::runtime_error);
  // The pool is still usable and regions still run to completion.
  std::vector<int> hits(intra_op_chunks(100), 0);
  parallel_chunks(100, [&](std::size_t c, std::size_t, std::size_t) {
    hits[c] = 1;
  });
  set_intra_op_threads(1);
  for (int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace a4nn::tensor
