// Fault-tolerant execution layer: deterministic fault injection in the
// scheduler, retry/backoff accounting, permanent device quarantine,
// job-granular checkpoint/restart, and the kill-and-resume acceptance
// test (an interrupted faulty run, resumed, reproduces the fault-free
// Pareto front exactly).
#include <gtest/gtest.h>

#include <filesystem>

#include "core/a4nn.hpp"
#include "util/fsutil.hpp"

namespace a4nn::core {
namespace {

namespace fs = std::filesystem;

WorkflowConfig tiny_config() {
  WorkflowConfig cfg;
  cfg.dataset.images_per_class = 30;
  cfg.dataset.detector.pixels = 8;
  cfg.dataset.intensity = xfel::BeamIntensity::kHigh;
  cfg.nas.population_size = 3;
  cfg.nas.offspring_per_generation = 3;
  cfg.nas.generations = 2;
  cfg.nas.max_epochs = 8;
  cfg.nas.space.input_shape = {1, 8, 8};
  cfg.nas.space.stem_channels = 4;
  cfg.trainer.max_epochs = 8;
  cfg.trainer.engine.e_pred = 8.0;
  return cfg;
}

util::FaultConfig noisy_faults() {
  util::FaultConfig fault;
  fault.enabled = true;
  fault.transient_failure_prob = 0.3;
  fault.job_crash_prob = 0.15;
  fault.straggler_prob = 0.3;
  fault.backoff_base_seconds = 2.0;
  return fault;
}

std::vector<sched::Job> fixed_jobs(std::size_t n, double seconds) {
  std::vector<sched::Job> jobs;
  for (std::size_t i = 0; i < n; ++i)
    jobs.push_back(sched::Job{[seconds] { return seconds; }});
  return jobs;
}

// The acceptance test of the fault-tolerance layer: a run with injected
// faults, killed mid-flight after a few flushed records, then resumed from
// the commons, must end with exactly the Pareto front of an uninterrupted
// fault-free run. Faults may only move virtual time, never results.
TEST(FaultTolerance, KillAndResumeReproducesFaultFreePareto) {
  WorkflowConfig base = tiny_config();
  base.cluster.num_gpus = 2;

  A4nnWorkflow reference(base);
  const WorkflowResult ref = reference.run();

  // A fault-free run reports an all-zero fault/recovery summary.
  EXPECT_EQ(ref.summary.faults.retries, 0u);
  EXPECT_EQ(ref.summary.faults.transient_faults, 0u);
  EXPECT_EQ(ref.summary.faults.job_crashes, 0u);
  EXPECT_EQ(ref.summary.faults.straggler_events, 0u);
  EXPECT_EQ(ref.summary.faults.permanent_device_failures, 0u);
  EXPECT_EQ(ref.summary.faults.failed_jobs, 0u);
  EXPECT_DOUBLE_EQ(ref.summary.faults.wasted_virtual_seconds, 0.0);
  EXPECT_EQ(ref.summary.resumed_evaluations, 0u);
  EXPECT_EQ(ref.summary.resumed_epochs, 0u);

  const fs::path commons = util::make_temp_dir("a4nn_kill_resume");
  WorkflowConfig faulty = base;
  faulty.cluster.fault = noisy_faults();
  faulty.lineage = lineage::TrackerConfig{commons, 1};
  faulty.crash_after_evaluations = 2;

  // The "process" dies after two records reach the commons.
  A4nnWorkflow crashed(faulty, reference.dataset());
  EXPECT_THROW(crashed.run(), orchestrator::WorkflowInterrupted);

  std::size_t surviving_records = 0;
  {
    lineage::DataCommons inspect(commons);
    surviving_records = inspect.load_records().size();
  }
  EXPECT_GE(surviving_records, 2u);
  EXPECT_LT(surviving_records, ref.search.history.size());

  WorkflowConfig resumption = faulty;
  resumption.crash_after_evaluations = 0;
  resumption.resume_from_commons = true;
  A4nnWorkflow resumed(resumption, reference.dataset());
  const WorkflowResult res = resumed.run();

  // Flushed records were reused, not retrained.
  EXPECT_EQ(res.resumed_evaluations, surviving_records);
  EXPECT_GT(res.summary.faults.retries, 0u);  // faults were active

  ASSERT_EQ(res.search.history.size(), ref.search.history.size());
  for (std::size_t i = 0; i < ref.search.history.size(); ++i) {
    const auto& a = ref.search.history[i];
    const auto& b = res.search.history[i];
    EXPECT_EQ(a.genome.key(), b.genome.key()) << "model " << i;
    EXPECT_DOUBLE_EQ(a.fitness, b.fitness) << "model " << i;
    EXPECT_DOUBLE_EQ(a.measured_fitness, b.measured_fitness) << "model " << i;
    EXPECT_EQ(a.epochs_trained, b.epochs_trained) << "model " << i;
    EXPECT_EQ(a.flops, b.flops) << "model " << i;
  }
  EXPECT_EQ(ref.search.pareto, res.search.pareto);

  fs::remove_all(commons);
}

// Mid-training restart: train a model with per-epoch state checkpoints,
// drop everything after an early epoch (as a crash would), retrain with
// resume enabled — the second run must continue from the checkpoint and
// produce bit-identical histories to the uninterrupted one.
TEST(FaultTolerance, EpochCheckpointResumeIsBitExact) {
  xfel::XfelDatasetConfig dcfg;
  dcfg.images_per_class = 40;
  dcfg.detector.pixels = 8;
  dcfg.intensity = xfel::BeamIntensity::kHigh;
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(dcfg);
  nas::SearchSpaceConfig space;
  space.input_shape = {1, 8, 8};
  space.stem_channels = 4;

  orchestrator::TrainerConfig tcfg;
  tcfg.max_epochs = 6;
  tcfg.batch_size = 16;
  tcfg.use_prediction_engine = false;

  const fs::path root = util::make_temp_dir("a4nn_epoch_resume");
  lineage::LineageTracker full_tracker({root, 1});
  orchestrator::TrainingLoop full_loop(data.train, data.validation, tcfg,
                                       &full_tracker);
  util::Rng grng(11);
  const nas::Genome genome = nas::random_genome(3, 4, grng);
  const nas::EvaluationRecord uninterrupted =
      full_loop.train_genome(genome, space, 0, 99);

  // Keep checkpoints up to epoch 2 only: the crash "lost" epochs 3..6.
  const fs::path dir = root / "models" / lineage::model_dir_name(0);
  for (std::size_t e = 3; e <= tcfg.max_epochs; ++e) {
    fs::remove(dir / lineage::snapshot_file_name(e));
    fs::remove(dir / lineage::training_state_file_name(e));
  }
  fs::remove(dir / "record.json");

  tcfg.resume_partial = true;
  lineage::LineageTracker resume_tracker({root, 1});
  orchestrator::TrainingLoop resume_loop(data.train, data.validation, tcfg,
                                         &resume_tracker);
  const nas::EvaluationRecord resumed =
      resume_loop.train_genome(genome, space, 0, 99);

  EXPECT_EQ(resume_loop.resumed_epochs(), 2u);
  EXPECT_EQ(resumed.resumed_from_epoch, 2u);
  EXPECT_EQ(resumed.epochs_trained, uninterrupted.epochs_trained);
  ASSERT_EQ(resumed.fitness_history.size(),
            uninterrupted.fitness_history.size());
  for (std::size_t i = 0; i < uninterrupted.fitness_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(resumed.fitness_history[i],
                     uninterrupted.fitness_history[i])
        << "epoch " << i + 1;
    EXPECT_DOUBLE_EQ(resumed.train_loss_history[i],
                     uninterrupted.train_loss_history[i])
        << "epoch " << i + 1;
  }
  EXPECT_DOUBLE_EQ(resumed.fitness, uninterrupted.fitness);

  fs::remove_all(root);
}

// A stale checkpoint from a different architecture must be rejected (spec
// guard), falling back to training from scratch instead of loading wrong
// weights.
TEST(FaultTolerance, ResumeRejectsWrongArchitectureCheckpoint) {
  xfel::XfelDatasetConfig dcfg;
  dcfg.images_per_class = 30;
  dcfg.detector.pixels = 8;
  dcfg.intensity = xfel::BeamIntensity::kHigh;
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(dcfg);
  nas::SearchSpaceConfig space;
  space.input_shape = {1, 8, 8};
  space.stem_channels = 4;

  orchestrator::TrainerConfig tcfg;
  tcfg.max_epochs = 3;
  tcfg.batch_size = 16;
  tcfg.use_prediction_engine = false;

  const fs::path root = util::make_temp_dir("a4nn_stale_ckpt");
  lineage::LineageTracker tracker({root, 1});
  orchestrator::TrainingLoop loop(data.train, data.validation, tcfg, &tracker);
  util::Rng grng(5);
  const nas::Genome first = nas::random_genome(3, 4, grng);
  loop.train_genome(first, space, 0, 7);

  // Same model id, different genome: the commons holds a stale trail.
  tcfg.resume_partial = true;
  lineage::LineageTracker tracker2({root, 1});
  orchestrator::TrainingLoop loop2(data.train, data.validation, tcfg,
                                   &tracker2);
  nas::Genome other = nas::random_genome(3, 4, grng);
  int tries = 0;
  while (other.key() == first.key() && tries++ < 32)
    other = nas::random_genome(3, 4, grng);
  ASSERT_NE(other.key(), first.key());

  const nas::EvaluationRecord r = loop2.train_genome(other, space, 0, 7);
  EXPECT_EQ(r.resumed_from_epoch, 0u);  // guard refused the stale state
  EXPECT_EQ(loop2.resumed_epochs(), 0u);
  EXPECT_EQ(r.epochs_trained, 3u);

  fs::remove_all(root);
}

// With permanent-failure probability 1 on a two-device cluster, exactly
// one device dies (the last healthy device is never taken) and the
// generation still completes, deterministically.
TEST(FaultTolerance, PermanentDeviceFailureGenerationCompletes) {
  sched::ClusterConfig cc;
  cc.num_gpus = 2;
  cc.parallel_execution = false;
  cc.fault.enabled = true;
  cc.fault.permanent_failure_prob = 1.0;
  cc.fault.seed = 42;

  sched::ResourceManager rm(cc);
  const sched::GenerationSchedule s1 = rm.run_generation(fixed_jobs(5, 100.0));
  ASSERT_EQ(s1.newly_quarantined.size(), 1u);
  EXPECT_EQ(rm.healthy_devices(), 1u);
  EXPECT_TRUE(rm.is_quarantined(s1.newly_quarantined[0]));
  const int survivor = s1.newly_quarantined[0] == 0 ? 1 : 0;
  for (const auto& p : s1.placements) {
    EXPECT_FALSE(p.failed);
    EXPECT_EQ(p.device_id, survivor);
    EXPECT_GE(p.end_seconds, p.start_seconds);
  }
  // The requeued job retried at least once and wasted virtual time.
  EXPECT_GE(s1.total_retries, 1u);
  EXPECT_GT(s1.wasted_seconds, 0.0);

  // The next generation sees no further deaths (survivor is protected)
  // and completes on the one remaining device.
  const sched::GenerationSchedule s2 = rm.run_generation(fixed_jobs(3, 50.0));
  EXPECT_TRUE(s2.newly_quarantined.empty());
  EXPECT_EQ(rm.healthy_devices(), 1u);
  for (const auto& p : s2.placements) EXPECT_EQ(p.device_id, survivor);

  // Bit-identical replay on a fresh manager with the same seed.
  sched::ResourceManager replay(cc);
  const sched::GenerationSchedule t1 =
      replay.run_generation(fixed_jobs(5, 100.0));
  EXPECT_EQ(t1.newly_quarantined, s1.newly_quarantined);
  EXPECT_DOUBLE_EQ(t1.makespan_end, s1.makespan_end);
  EXPECT_DOUBLE_EQ(t1.idle_seconds, s1.idle_seconds);
  ASSERT_EQ(t1.placements.size(), s1.placements.size());
  for (std::size_t i = 0; i < s1.placements.size(); ++i) {
    EXPECT_EQ(t1.placements[i].device_id, s1.placements[i].device_id);
    EXPECT_DOUBLE_EQ(t1.placements[i].start_seconds,
                     s1.placements[i].start_seconds);
    EXPECT_DOUBLE_EQ(t1.placements[i].end_seconds,
                     s1.placements[i].end_seconds);
    EXPECT_EQ(t1.placements[i].retries, s1.placements[i].retries);
  }
}

// Transient faults with probability 1 burn exactly max_retries attempts
// per job (injection stops after max_retries so every job terminates),
// charging backoff as wasted virtual time.
TEST(FaultTolerance, TransientFaultsRetryWithBackoffThenSucceed) {
  sched::ClusterConfig cc;
  cc.num_gpus = 1;
  cc.parallel_execution = false;
  cc.fault.enabled = true;
  cc.fault.transient_failure_prob = 1.0;
  cc.fault.max_retries = 3;
  cc.fault.seed = 7;

  sched::ResourceManager rm(cc);
  const sched::GenerationSchedule s = rm.run_generation(fixed_jobs(2, 60.0));
  EXPECT_EQ(s.transient_faults, 2u * 3u);
  EXPECT_EQ(s.total_retries, 2u * 3u);
  for (const auto& p : s.placements) {
    EXPECT_FALSE(p.failed);
    EXPECT_EQ(p.retries, 3u);
    EXPECT_GT(p.wasted_seconds, 0.0);
  }
  EXPECT_GT(s.makespan_end, 2 * 60.0);  // faults cost virtual time
}

// A job whose real execution keeps throwing is contained: it is reported
// as a failed placement with the exception message, and the rest of the
// generation completes normally.
TEST(FaultTolerance, RealJobExceptionIsContained) {
  sched::ClusterConfig cc;
  cc.num_gpus = 2;
  cc.parallel_execution = false;

  std::vector<sched::Job> jobs;
  jobs.push_back(sched::Job{
      []() -> double { throw std::runtime_error("synthetic job fault"); }});
  jobs.push_back(sched::Job{[] { return 42.0; }});

  sched::ResourceManager rm(cc);
  const sched::GenerationSchedule s = rm.run_generation(std::move(jobs));
  EXPECT_TRUE(s.placements[0].failed);
  EXPECT_NE(s.placements[0].error.find("synthetic job fault"),
            std::string::npos);
  EXPECT_EQ(s.placements[0].device_id, -1);
  EXPECT_EQ(s.failed_jobs, 1u);
  EXPECT_FALSE(s.placements[1].failed);
  EXPECT_GE(s.placements[1].device_id, 0);
  EXPECT_DOUBLE_EQ(s.makespan_end, 42.0);
}

// Straggler injection slows attempts down by the configured factor but
// never fails them.
TEST(FaultTolerance, StragglersSlowDownWithoutFailing) {
  sched::ClusterConfig cc;
  cc.num_gpus = 1;
  cc.parallel_execution = false;
  cc.fault.enabled = true;
  cc.fault.straggler_prob = 1.0;
  cc.fault.straggler_slowdown = 2.5;
  cc.fault.seed = 13;

  sched::ResourceManager rm(cc);
  const sched::GenerationSchedule s = rm.run_generation(fixed_jobs(1, 100.0));
  EXPECT_EQ(s.straggler_events, 1u);
  EXPECT_EQ(s.total_retries, 0u);
  EXPECT_FALSE(s.placements[0].failed);
  EXPECT_DOUBLE_EQ(s.placements[0].duration_seconds, 250.0);
  EXPECT_DOUBLE_EQ(s.makespan_end, 250.0);
}

// Backoff jitter draws from the seeded hash stream, never the wall clock:
// the same (seed, generation, job, attempt) coordinate always yields the
// same delay, different seeds yield different ones, and the factor stays
// inside the configured [1 - jitter, 1 + jitter] band.
TEST(FaultTolerance, BackoffJitterIsSeededNotWallClock) {
  util::FaultConfig fc;
  fc.enabled = true;
  fc.backoff_base_seconds = 2.0;
  fc.backoff_multiplier = 2.0;
  fc.backoff_cap_seconds = 64.0;
  fc.backoff_jitter = 0.25;
  fc.seed = 42;
  const util::FaultInjector a(fc);
  const util::FaultInjector b(fc);  // same seed, constructed later
  fc.seed = 43;
  const util::FaultInjector other(fc);

  bool any_diverged = false;
  for (std::uint64_t gen = 0; gen < 4; ++gen) {
    for (std::size_t job = 0; job < 8; ++job) {
      for (std::size_t attempt = 1; attempt <= 4; ++attempt) {
        const double base = a.backoff_seconds(attempt);
        const double da = a.jittered_backoff_seconds(gen, job, attempt);
        // Bit-identical across injector instances: pure hash, no state.
        EXPECT_EQ(da, b.jittered_backoff_seconds(gen, job, attempt));
        EXPECT_GE(da, base * (1.0 - fc.backoff_jitter));
        EXPECT_LE(da, base * (1.0 + fc.backoff_jitter));
        if (da != other.jittered_backoff_seconds(gen, job, attempt))
          any_diverged = true;
      }
    }
  }
  EXPECT_TRUE(any_diverged);  // the seed actually feeds the stream

  // jitter = 0 degenerates to the exact unjittered delay.
  fc.backoff_jitter = 0.0;
  fc.seed = 42;
  const util::FaultInjector plain(fc);
  for (std::size_t attempt = 1; attempt <= 4; ++attempt)
    EXPECT_EQ(plain.jittered_backoff_seconds(1, 2, attempt),
              plain.backoff_seconds(attempt));
}

// A faulty generation with jittered backoff replays bit-identically:
// every placement's timeline, retry count, and the makespan are equal
// across two runs of the same configuration.
TEST(FaultTolerance, JitteredFaultyScheduleReplaysBitIdentically) {
  sched::ClusterConfig cc;
  cc.num_gpus = 2;
  cc.parallel_execution = false;
  cc.fault.enabled = true;
  cc.fault.transient_failure_prob = 0.5;
  cc.fault.job_crash_prob = 0.2;
  cc.fault.straggler_prob = 0.3;
  cc.fault.backoff_base_seconds = 3.0;
  cc.fault.backoff_jitter = 0.4;
  cc.fault.seed = 99;

  sched::ResourceManager rm1(cc);
  sched::ResourceManager rm2(cc);
  const sched::GenerationSchedule s1 = rm1.run_generation(fixed_jobs(6, 50.0));
  const sched::GenerationSchedule s2 = rm2.run_generation(fixed_jobs(6, 50.0));

  EXPECT_GT(s1.total_retries, 0u);  // faults (and thus jitter) were active
  ASSERT_EQ(s1.placements.size(), s2.placements.size());
  for (std::size_t i = 0; i < s1.placements.size(); ++i) {
    const auto& p1 = s1.placements[i];
    const auto& p2 = s2.placements[i];
    EXPECT_EQ(p1.device_id, p2.device_id) << "job " << i;
    EXPECT_EQ(p1.retries, p2.retries) << "job " << i;
    EXPECT_EQ(p1.start_seconds, p2.start_seconds) << "job " << i;
    EXPECT_EQ(p1.duration_seconds, p2.duration_seconds) << "job " << i;
    EXPECT_EQ(p1.wasted_seconds, p2.wasted_seconds) << "job " << i;
  }
  EXPECT_EQ(s1.makespan_end, s2.makespan_end);
  EXPECT_EQ(s1.total_retries, s2.total_retries);
  EXPECT_EQ(s1.transient_faults, s2.transient_faults);
}

// fsck quarantines a corrupt record file (so resume survives it) and
// removes stale tmp files from crashed writers.
TEST(FaultTolerance, FsckQuarantinesCorruptRecords) {
  xfel::XfelDatasetConfig dcfg;
  dcfg.images_per_class = 30;
  dcfg.detector.pixels = 8;
  dcfg.intensity = xfel::BeamIntensity::kHigh;
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(dcfg);
  nas::SearchSpaceConfig space;
  space.input_shape = {1, 8, 8};
  space.stem_channels = 4;

  orchestrator::TrainerConfig tcfg;
  tcfg.max_epochs = 2;
  tcfg.batch_size = 16;
  tcfg.use_prediction_engine = false;

  const fs::path root = util::make_temp_dir("a4nn_fsck");
  lineage::LineageTracker tracker({root, 1});
  orchestrator::TrainingLoop loop(data.train, data.validation, tcfg, &tracker);
  util::Rng grng(3);
  for (int id = 0; id < 2; ++id) {
    const nas::EvaluationRecord r =
        loop.train_genome(nas::random_genome(3, 4, grng), space, id, 17 + id);
    tracker.record_evaluation(r);
  }

  // Corrupt one record mid-write and strand a staging file.
  const fs::path bad = root / "models" / lineage::model_dir_name(0);
  util::write_file(bad / "record.json", "{\"genome\": truncated");
  util::write_file(root / "search.json.tmp.1234.5", "partial");
  util::write_file(bad / lineage::training_state_file_name(1),
                   "{\"epoch\": 1}");  // missing rng/optimizer/record

  lineage::DataCommons commons(root);
  const lineage::FsckReport report = commons.fsck();
  EXPECT_EQ(report.models_scanned, 2u);
  EXPECT_EQ(report.records_valid, 1u);
  EXPECT_EQ(report.files_quarantined, 2u);
  EXPECT_EQ(report.tmp_files_removed, 1u);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(fs::exists(root / "quarantine" / "models" /
                         lineage::model_dir_name(0) / "record.json"));
  EXPECT_FALSE(fs::exists(bad / "record.json"));

  // The surviving commons loads without throwing.
  const auto records = commons.load_records();
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].model_id, 1);

  // A second pass finds nothing left to fix.
  EXPECT_TRUE(commons.fsck().clean());

  fs::remove_all(root);
}

// Sealing the tracker makes every later write a no-op — the in-process
// stand-in for process death used by the kill-and-resume test.
TEST(FaultTolerance, SealedTrackerDropsWrites) {
  const fs::path root = util::make_temp_dir("a4nn_seal");
  lineage::LineageTracker tracker({root, 1});
  nas::EvaluationRecord r;
  r.model_id = 0;
  tracker.record_evaluation(r);
  EXPECT_TRUE(fs::exists(root / "models" / lineage::model_dir_name(0) /
                         "record.json"));

  tracker.seal();
  EXPECT_TRUE(tracker.sealed());
  nas::EvaluationRecord r2;
  r2.model_id = 1;
  tracker.record_evaluation(r2);
  EXPECT_FALSE(fs::exists(root / "models" / lineage::model_dir_name(1) /
                          "record.json"));
  fs::remove_all(root);
}

}  // namespace
}  // namespace a4nn::core
