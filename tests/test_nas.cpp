// NAS substrate: genome encoding, NSGA-II machinery, variation operators,
// genome decoding, and the search loop against a fake evaluator.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "nas/search.hpp"

namespace a4nn::nas {
namespace {

TEST(Genome, BitsRoundTrip) {
  util::Rng rng(1);
  const Genome g = random_genome(3, 4, rng);
  EXPECT_EQ(g.bit_count(), 3u * 7u);  // 6 connectivity + 1 skip per phase
  const Genome back = Genome::from_bits(g.to_bits(), 3, 4);
  EXPECT_EQ(back.key(), g.key());
  EXPECT_TRUE(back == g);
}

TEST(Genome, FromBitsValidatesLength) {
  std::vector<bool> bits(5, false);
  EXPECT_THROW(Genome::from_bits(bits, 3, 4), std::invalid_argument);
}

TEST(Genome, JsonRoundTrip) {
  util::Rng rng(2);
  const Genome g = random_genome(2, 3, rng);
  const Genome back =
      Genome::from_json(util::Json::parse(g.to_json().dump()));
  EXPECT_EQ(back.key(), g.key());
}

TEST(Genome, KeysDistinguishArchitectures) {
  util::Rng rng(3);
  std::set<std::string> keys;
  for (int i = 0; i < 200; ++i) keys.insert(random_genome(3, 4, rng).key());
  EXPECT_GT(keys.size(), 150u);  // 2^21 space: collisions should be rare
}

TEST(GenomeOps, ExtendedEncodingRoundTrips) {
  util::Rng rng(41);
  const Genome g = random_genome(3, 4, rng, /*with_node_ops=*/true);
  EXPECT_TRUE(g.has_node_ops());
  // 6 connectivity + 1 skip + 2*4 op bits per phase.
  EXPECT_EQ(g.bit_count(), 3u * (6u + 1u + 8u));
  const Genome back = Genome::from_bits(g.to_bits(), 3, 4, true);
  EXPECT_EQ(back.key(), g.key());
  for (std::size_t p = 0; p < 3; ++p)
    EXPECT_EQ(back.phases[p].node_ops, g.phases[p].node_ops);
  const Genome json_back =
      Genome::from_json(util::Json::parse(g.to_json().dump()));
  EXPECT_EQ(json_back.key(), g.key());
}

TEST(GenomeOps, KeyDistinguishesOpChoices) {
  util::Rng rng(42);
  Genome a = random_genome(2, 3, rng, true);
  Genome b = a;
  b.phases[0].node_ops[0] =
      static_cast<nn::NodeOp>((static_cast<int>(a.phases[0].node_ops[0]) + 1) %
                              static_cast<int>(nn::kNodeOpCount));
  EXPECT_NE(a.key(), b.key());
  // Connectivity-identical genomes with/without ops also differ.
  Genome no_ops = a;
  for (auto& phase : no_ops.phases) phase.node_ops.clear();
  EXPECT_NE(a.key(), no_ops.key());
}

TEST(GenomeOps, OperatorsPreserveOpEncoding) {
  util::Rng rng(43);
  const Genome a = random_genome(3, 4, rng, true);
  const Genome b = random_genome(3, 4, rng, true);
  OperatorConfig cfg;
  cfg.crossover_rate = 1.0;
  const Genome child = mutate(crossover(a, b, cfg, rng), cfg, rng);
  EXPECT_TRUE(child.has_node_ops());
  EXPECT_EQ(child.phases[0].node_ops.size(), 4u);
}

TEST(GenomeOps, RandomOpsCoverTheOpSet) {
  util::Rng rng(44);
  std::set<nn::NodeOp> seen;
  for (int i = 0; i < 30; ++i) {
    const Genome g = random_genome(3, 4, rng, true);
    for (const auto& p : g.phases)
      seen.insert(p.node_ops.begin(), p.node_ops.end());
  }
  EXPECT_EQ(seen.size(), nn::kNodeOpCount);
}

TEST(GenomeOps, ExtendedGenomeDecodesAndTrainsForward) {
  util::Rng rng(45);
  const Genome g = random_genome(3, 4, rng, true);
  SearchSpaceConfig cfg;
  cfg.searchable_ops = true;
  nn::Model model = decode_genome(g, cfg, rng);
  nn::Tensor x({2, 1, 16, 16});
  EXPECT_EQ(model.predict(x).shape(), (tensor::Shape{2, 2}));
}

TEST(PhaseSpecHelper, EdgeIndexing) {
  EXPECT_EQ(nn::PhaseSpec::bits_for_nodes(4), 6u);
  EXPECT_EQ(nn::PhaseSpec::edge_index(0, 1), 0u);
  EXPECT_EQ(nn::PhaseSpec::edge_index(0, 2), 1u);
  EXPECT_EQ(nn::PhaseSpec::edge_index(1, 2), 2u);
  EXPECT_EQ(nn::PhaseSpec::edge_index(2, 3), 5u);
}

TEST(SearchSpace, DecodeProducesTrainableModel) {
  util::Rng rng(4);
  const Genome g = random_genome(3, 4, rng);
  SearchSpaceConfig cfg;
  cfg.input_shape = {1, 16, 16};
  nn::Model model = decode_genome(g, cfg, rng);
  EXPECT_GT(model.flops_per_image(), 0u);
  EXPECT_GT(model.parameter_count(), 0u);
  // Forward pass produces 2 class logits.
  nn::Tensor x({2, 1, 16, 16});
  const nn::Tensor logits = model.predict(x);
  EXPECT_EQ(logits.shape(), (tensor::Shape{2, 2}));
}

TEST(SearchSpace, MoreEdgesMeanMoreFlops) {
  SearchSpaceConfig cfg;
  Genome sparse, dense;
  for (int p = 0; p < 3; ++p) {
    nn::PhaseSpec s;
    s.nodes = 4;
    s.bits.assign(6, false);
    sparse.phases.push_back(s);
    nn::PhaseSpec d;
    d.nodes = 4;
    d.bits.assign(6, true);
    dense.phases.push_back(d);
  }
  EXPECT_GT(genome_flops(dense, cfg), genome_flops(sparse, cfg));
}

TEST(SearchSpace, PhaseCountMismatchRejected) {
  util::Rng rng(5);
  const Genome g = random_genome(2, 4, rng);
  SearchSpaceConfig cfg;  // expects 3 phases
  EXPECT_THROW(decode_genome(g, cfg, rng), std::invalid_argument);
}

TEST(Nsga2, Dominates) {
  EXPECT_TRUE(dominates({1.0, 1.0}, {2.0, 2.0}));
  EXPECT_TRUE(dominates({1.0, 2.0}, {2.0, 2.0}));
  EXPECT_FALSE(dominates({1.0, 3.0}, {2.0, 2.0}));  // trade-off
  EXPECT_FALSE(dominates({1.0, 1.0}, {1.0, 1.0}));  // equal
}

TEST(Nsga2, FastNonDominatedSortLayers) {
  // Front 0: (0,3), (1,1), (3,0). Front 1: (2,2). Front 2: (4,4).
  const std::vector<Objectives> pts{{0, 3}, {1, 1}, {3, 0}, {2, 2}, {4, 4}};
  const auto fronts = fast_non_dominated_sort(pts);
  ASSERT_EQ(fronts.size(), 3u);
  EXPECT_EQ(std::set<std::size_t>(fronts[0].begin(), fronts[0].end()),
            (std::set<std::size_t>{0, 1, 2}));
  EXPECT_EQ(fronts[1], (std::vector<std::size_t>{3}));
  EXPECT_EQ(fronts[2], (std::vector<std::size_t>{4}));
}

TEST(Nsga2, CrowdingDistanceBoundariesInfinite) {
  const std::vector<Objectives> pts{{0, 4}, {1, 2}, {2, 1}, {4, 0}};
  const std::vector<std::size_t> front{0, 1, 2, 3};
  const auto dist = crowding_distance(pts, front);
  EXPECT_TRUE(std::isinf(dist[0]));
  EXPECT_TRUE(std::isinf(dist[3]));
  EXPECT_GT(dist[1], 0.0);
  EXPECT_FALSE(std::isinf(dist[1]));
}

TEST(Nsga2, CrowdingDistanceSmallFronts) {
  const std::vector<Objectives> pts{{0, 1}, {1, 0}};
  const std::vector<std::size_t> front{0, 1};
  for (double d : crowding_distance(pts, front)) EXPECT_TRUE(std::isinf(d));
}

TEST(Nsga2, EnvironmentalSelectionPrefersBetterFronts) {
  const std::vector<Objectives> pts{{0, 3}, {1, 1}, {3, 0}, {2, 2}, {4, 4}};
  const auto chosen = environmental_selection(pts, 3);
  EXPECT_EQ(std::set<std::size_t>(chosen.begin(), chosen.end()),
            (std::set<std::size_t>{0, 1, 2}));
  EXPECT_THROW(environmental_selection(pts, 10), std::invalid_argument);
}

TEST(Nsga2, EnvironmentalSelectionBreaksTiesByCrowding) {
  // One big front; picking 3 of 4 must keep both extremes.
  const std::vector<Objectives> pts{{0, 10}, {1, 5}, {1.1, 4.9}, {10, 0}};
  const auto chosen = environmental_selection(pts, 3);
  const std::set<std::size_t> s(chosen.begin(), chosen.end());
  EXPECT_TRUE(s.count(0));
  EXPECT_TRUE(s.count(3));
}

TEST(Nsga2, TournamentWinner) {
  const std::vector<RankedPoint> ranked{
      {0, 1.0}, {1, 100.0}, {0, 2.0}};
  EXPECT_EQ(tournament_winner(ranked, 0, 1), 0u);  // rank beats crowding
  EXPECT_EQ(tournament_winner(ranked, 0, 2), 2u);  // crowding breaks tie
}

TEST(Nsga2, ParetoFront) {
  const std::vector<Objectives> pts{{0, 3}, {1, 1}, {3, 0}, {2, 2}};
  const auto front = pareto_front(pts);
  EXPECT_EQ(std::set<std::size_t>(front.begin(), front.end()),
            (std::set<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(pareto_front(std::vector<Objectives>{}).empty());
}

TEST(Nsga2, ThirdObjectiveWeakensDominanceKnownFront) {
  // The hardware-aware motivation in miniature: {2,2} is dominated by
  // {1,1} on {-accuracy, flops} alone, but once measured latency joins the
  // vector the cheap-but-slow point stops dominating the fast one.
  EXPECT_TRUE(dominates({1.0, 1.0}, {2.0, 2.0}));
  EXPECT_FALSE(dominates({1.0, 1.0, 9.0}, {2.0, 2.0, 1.0}));
  EXPECT_TRUE(dominates({1.0, 1.0, 9.0}, {2.0, 2.0, 9.0}));  // still <= all

  // Known 3-objective front structure: the four trade-off points are
  // mutually non-dominated; {2,2,2} loses only to {2,2,1}, and {3,3,9}
  // loses to both {1,1,9} and {2,2,2} — three nested fronts.
  const std::vector<Objectives> pts{{0, 3, 5}, {1, 1, 9}, {3, 0, 2},
                                    {2, 2, 1}, {3, 3, 9}, {2, 2, 2}};
  const auto fronts = fast_non_dominated_sort(pts);
  ASSERT_EQ(fronts.size(), 3u);
  EXPECT_EQ(std::set<std::size_t>(fronts[0].begin(), fronts[0].end()),
            (std::set<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(fronts[1], (std::vector<std::size_t>{5}));
  EXPECT_EQ(fronts[2], (std::vector<std::size_t>{4}));
  const auto front0 = pareto_front(pts);
  EXPECT_EQ(std::set<std::size_t>(front0.begin(), front0.end()),
            (std::set<std::size_t>{0, 1, 2, 3}));
}

TEST(Nsga2, ConstantExtraObjectivesReduceToTwoObjectiveBehavior) {
  // A degenerate objective (identical for every point) discriminates
  // nothing, so sort, crowding, selection, and ranking over k objectives
  // must reproduce the 2-objective results bit-for-bit. This is the
  // property that keeps `--objective flops` runs byte-identical whether
  // the code path is the historical pair or the general k-vector.
  util::Rng rng(42);
  std::vector<Objectives> two, three, four;
  for (int i = 0; i < 24; ++i) {
    const double a = rng.uniform(), b = rng.uniform();
    two.push_back({a, b});
    three.push_back({a, b, 7.0});
    four.push_back({a, b, 7.0, -2.5});
  }

  const auto fronts2 = fast_non_dominated_sort(two);
  EXPECT_EQ(fast_non_dominated_sort(three), fronts2);
  EXPECT_EQ(fast_non_dominated_sort(four), fronts2);
  EXPECT_EQ(pareto_front(three), pareto_front(two));
  EXPECT_EQ(pareto_front(four), pareto_front(two));

  for (const auto& front : fronts2) {
    const auto dist2 = crowding_distance(two, front);
    EXPECT_EQ(crowding_distance(three, front), dist2);
    EXPECT_EQ(crowding_distance(four, front), dist2);
  }

  for (std::size_t count : {1u, 6u, 12u, 23u}) {
    const auto chosen2 = environmental_selection(two, count);
    EXPECT_EQ(environmental_selection(three, count), chosen2);
    EXPECT_EQ(environmental_selection(four, count), chosen2);
  }

  const auto ranked2 = rank_population(two);
  const auto ranked3 = rank_population(three);
  const auto ranked4 = rank_population(four);
  ASSERT_EQ(ranked3.size(), ranked2.size());
  ASSERT_EQ(ranked4.size(), ranked2.size());
  for (std::size_t i = 0; i < ranked2.size(); ++i) {
    EXPECT_EQ(ranked3[i].rank, ranked2[i].rank);
    EXPECT_EQ(ranked3[i].crowding, ranked2[i].crowding);
    EXPECT_EQ(ranked4[i].rank, ranked2[i].rank);
    EXPECT_EQ(ranked4[i].crowding, ranked2[i].crowding);
  }
  for (std::size_t i = 0; i + 1 < ranked2.size(); i += 2) {
    EXPECT_EQ(tournament_winner(ranked3, i, i + 1),
              tournament_winner(ranked2, i, i + 1));
  }
}

TEST(Operators, CrossoverPreservesStructure) {
  util::Rng rng(6);
  const Genome a = random_genome(3, 4, rng);
  const Genome b = random_genome(3, 4, rng);
  OperatorConfig cfg;
  cfg.crossover_rate = 1.0;
  const Genome child = crossover(a, b, cfg, rng);
  EXPECT_EQ(child.phase_count(), 3u);
  // Every child bit comes from one of the parents.
  const auto ba = a.to_bits(), bb = b.to_bits(), bc = child.to_bits();
  for (std::size_t i = 0; i < bc.size(); ++i)
    EXPECT_TRUE(bc[i] == ba[i] || bc[i] == bb[i]);
}

TEST(Operators, ZeroRateCrossoverCopiesParentA) {
  util::Rng rng(7);
  const Genome a = random_genome(3, 4, rng);
  const Genome b = random_genome(3, 4, rng);
  OperatorConfig cfg;
  cfg.crossover_rate = 0.0;
  EXPECT_EQ(crossover(a, b, cfg, rng).key(), a.key());
}

TEST(Operators, MutationFlipsExpectedFraction) {
  util::Rng rng(8);
  const Genome g = random_genome(3, 4, rng);
  OperatorConfig cfg;
  cfg.mutation_rate = 1.0;  // flip everything
  const auto orig = g.to_bits();
  const auto flipped = mutate(g, cfg, rng).to_bits();
  for (std::size_t i = 0; i < orig.size(); ++i)
    EXPECT_NE(orig[i], flipped[i]);
  cfg.mutation_rate = 0.0;
  EXPECT_EQ(mutate(g, cfg, rng).key(), g.key());
}

/// Fake evaluator: fitness = number of set bits (more edges = "better"),
/// flops = same count (so there's a genuine trade-off frontier of one
/// point... use inverted flops to make it interesting).
class FakeEvaluator : public Evaluator {
 public:
  std::vector<EvaluationRecord> evaluate_generation(
      std::span<const Genome> genomes, int /*generation*/) override {
    std::vector<EvaluationRecord> out;
    for (const auto& g : genomes) {
      EvaluationRecord r;
      r.genome = g;
      std::size_t ones = 0;
      for (bool b : g.to_bits()) ones += b ? 1 : 0;
      r.fitness = static_cast<double>(ones);
      r.measured_fitness = r.fitness;
      r.flops = 10 + ones * ones;  // quadratic cost: frontier is a curve
      r.epochs_trained = 25;
      r.max_epochs = 25;
      r.fitness_history.assign(25, r.fitness);
      r.epoch_virtual_seconds.assign(25, 1.0);
      r.virtual_seconds = 25.0;
      ++calls;
      return_count += 1;
      out.push_back(std::move(r));
    }
    return out;
  }
  int calls = 0;
  int return_count = 0;
};

TEST(Search, ConfigTotals) {
  NsgaNetConfig cfg;
  EXPECT_EQ(cfg.total_networks(), 100u);  // paper Table 2
  cfg.generations = 3;
  cfg.population_size = 8;
  cfg.offspring_per_generation = 6;
  EXPECT_EQ(cfg.total_networks(), 20u);
}

TEST(Search, EvaluatesExactlyTotalNetworksAllDistinct) {
  NsgaNetConfig cfg;
  cfg.population_size = 6;
  cfg.offspring_per_generation = 6;
  cfg.generations = 4;
  FakeEvaluator eval;
  NsgaNetSearch search(cfg, eval);
  const SearchResult result = search.run();
  EXPECT_EQ(result.history.size(), cfg.total_networks());
  std::set<std::string> keys;
  for (const auto& r : result.history) keys.insert(r.genome.key());
  EXPECT_EQ(keys.size(), result.history.size());  // dedup guarantee
  // model_id indexes history.
  for (std::size_t i = 0; i < result.history.size(); ++i)
    EXPECT_EQ(result.history[i].model_id, static_cast<int>(i));
}

TEST(Search, FinalPopulationAndParetoAreValid) {
  NsgaNetConfig cfg;
  cfg.population_size = 5;
  cfg.offspring_per_generation = 5;
  cfg.generations = 3;
  FakeEvaluator eval;
  NsgaNetSearch search(cfg, eval);
  const SearchResult result = search.run();
  EXPECT_EQ(result.final_population.size(), cfg.population_size);
  EXPECT_FALSE(result.pareto.empty());
  // Pareto members must be mutually non-dominating.
  for (std::size_t a : result.pareto) {
    for (std::size_t b : result.pareto) {
      if (a == b) continue;
      EXPECT_FALSE(dominates(record_objectives(result.history[a]),
                             record_objectives(result.history[b])));
    }
  }
}

TEST(Search, ObserverSeesEveryGeneration) {
  NsgaNetConfig cfg;
  cfg.population_size = 4;
  cfg.offspring_per_generation = 4;
  cfg.generations = 3;
  FakeEvaluator eval;
  NsgaNetSearch search(cfg, eval);
  std::vector<int> generations;
  std::size_t records_seen = 0;
  search.set_observer([&](int gen, std::span<const EvaluationRecord> recs) {
    generations.push_back(gen);
    records_seen += recs.size();
  });
  search.run();
  EXPECT_EQ(generations, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(records_seen, cfg.total_networks());
}

TEST(Search, GenerationsStampedOnRecords) {
  NsgaNetConfig cfg;
  cfg.population_size = 4;
  cfg.offspring_per_generation = 2;
  cfg.generations = 2;
  FakeEvaluator eval;
  NsgaNetSearch search(cfg, eval);
  const SearchResult result = search.run();
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(result.history[i].generation, 0);
  for (std::size_t i = 4; i < 6; ++i)
    EXPECT_EQ(result.history[i].generation, 1);
}

TEST(Search, DeterministicForSeed) {
  NsgaNetConfig cfg;
  cfg.population_size = 4;
  cfg.offspring_per_generation = 4;
  cfg.generations = 3;
  FakeEvaluator e1, e2;
  const SearchResult r1 = NsgaNetSearch(cfg, e1).run();
  const SearchResult r2 = NsgaNetSearch(cfg, e2).run();
  ASSERT_EQ(r1.history.size(), r2.history.size());
  for (std::size_t i = 0; i < r1.history.size(); ++i)
    EXPECT_EQ(r1.history[i].genome.key(), r2.history[i].genome.key());
}

TEST(Search, ValidatesConfig) {
  NsgaNetConfig cfg;
  cfg.population_size = 1;
  FakeEvaluator eval;
  EXPECT_THROW(NsgaNetSearch(cfg, eval), std::invalid_argument);
}

TEST(EvaluationRecord, JsonRoundTrip) {
  util::Rng rng(9);
  EvaluationRecord r;
  r.genome = random_genome(3, 4, rng);
  r.model_id = 17;
  r.generation = 2;
  r.fitness = 98.25;
  r.measured_fitness = 97.5;
  r.flops = 123456;
  r.parameters = 999;
  r.epochs_trained = 12;
  r.max_epochs = 25;
  r.early_terminated = true;
  r.fitness_history = {50.0, 80.0, 95.0};
  r.prediction_history = {97.0, 98.0, 98.25};
  r.epoch_virtual_seconds = {60.0, 60.0, 60.0};
  r.wall_seconds = 1.5;
  r.virtual_seconds = 180.0;
  r.engine_overhead_seconds = 0.001;
  r.device_id = 3;

  const EvaluationRecord back =
      EvaluationRecord::from_json(util::Json::parse(r.to_json().dump(2)));
  EXPECT_EQ(back.genome.key(), r.genome.key());
  EXPECT_EQ(back.model_id, 17);
  EXPECT_DOUBLE_EQ(back.fitness, 98.25);
  EXPECT_EQ(back.flops, 123456u);
  EXPECT_TRUE(back.early_terminated);
  EXPECT_EQ(back.fitness_history, r.fitness_history);
  EXPECT_EQ(back.device_id, 3);
}

TEST(SearchResult, AggregateAccounting) {
  SearchResult r;
  EvaluationRecord a, b;
  a.epochs_trained = 10;
  a.virtual_seconds = 100.0;
  a.wall_seconds = 1.0;
  b.epochs_trained = 25;
  b.virtual_seconds = 250.0;
  b.wall_seconds = 2.0;
  r.history = {a, b};
  EXPECT_EQ(r.total_epochs_trained(), 35u);
  EXPECT_DOUBLE_EQ(r.total_wall_seconds(), 3.0);
}

}  // namespace
}  // namespace a4nn::nas
