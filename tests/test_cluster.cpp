// Cluster fault-tolerance suite: the incremental wire decoder (partial
// reads, resync after corruption), the message protocol, and a real
// master exercised by scripted hostile workers over loopback TCP — the
// wire-corruption sweep asserting the master never commits a corrupt,
// stale, or duplicated record.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "cluster/master.hpp"
#include "cluster/protocol.hpp"
#include "cluster/transport.hpp"
#include "cluster/worker.hpp"
#include "nas/evaluator.hpp"
#include "nas/genome.hpp"
#include "util/frame.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

using namespace a4nn;
using cluster::MsgType;

namespace {

// ---------------------------------------------------------------------------
// StreamDecoder: incremental decoding + resync
// ---------------------------------------------------------------------------

TEST(StreamDecoder, SingleFrameRoundTrip) {
  util::StreamDecoder dec;
  dec.feed(util::encode_wire_frame(4, "hello cluster"));
  util::WireFrame f;
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.type, 4);
  EXPECT_EQ(f.payload, "hello cluster");
  EXPECT_FALSE(dec.next(f));
  EXPECT_EQ(dec.frames_decoded(), 1u);
  EXPECT_EQ(dec.corrupt_frames(), 0u);
}

TEST(StreamDecoder, SplitAtEveryByteBoundary) {
  // Three frames of varying sizes; the stream must decode identically no
  // matter where a read() boundary falls — including inside the length
  // prefix, the type byte, the integrity header, and the payload.
  std::string stream;
  stream += util::encode_wire_frame(1, "");
  stream += util::encode_wire_frame(2, "x");
  stream += util::encode_wire_frame(9, std::string(257, 'q') + "\n\x01 end");
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    util::StreamDecoder dec;
    dec.feed(stream.data(), split);
    std::vector<util::WireFrame> got;
    util::WireFrame f;
    while (dec.next(f)) got.push_back(f);
    dec.feed(stream.data() + split, stream.size() - split);
    while (dec.next(f)) got.push_back(f);
    ASSERT_EQ(got.size(), 3u) << "split at byte " << split;
    EXPECT_EQ(got[0].type, 1) << "split at byte " << split;
    EXPECT_EQ(got[1].payload, "x") << "split at byte " << split;
    EXPECT_EQ(got[2].type, 9) << "split at byte " << split;
    EXPECT_EQ(dec.corrupt_frames(), 0u) << "split at byte " << split;
  }
}

TEST(StreamDecoder, OneBytePerFeed) {
  std::string stream;
  for (int i = 0; i < 5; ++i)
    stream += util::encode_wire_frame(static_cast<std::uint8_t>(i + 1),
                                      "payload " + std::to_string(i));
  util::StreamDecoder dec;
  std::vector<util::WireFrame> got;
  util::WireFrame f;
  for (char c : stream) {
    dec.feed(&c, 1);
    while (dec.next(f)) got.push_back(f);
  }
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(got[i].payload, "payload " + std::to_string(i));
}

TEST(StreamDecoder, ResyncAfterGarbageBetweenFrames) {
  std::string stream = util::encode_wire_frame(1, "before");
  stream += "\x13\x37garbage bytes that are not a frame\xff\xfe";
  stream += util::encode_wire_frame(2, "after");
  util::StreamDecoder dec;
  dec.feed(stream);
  util::WireFrame f;
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.payload, "before");
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.payload, "after");
  EXPECT_FALSE(dec.next(f));
  EXPECT_GE(dec.corrupt_frames(), 1u);
  EXPECT_GE(dec.resyncs(), 1u);
  EXPECT_GT(dec.bytes_discarded(), 0u);
}

TEST(StreamDecoder, ResyncAfterBitFlipInPayload) {
  std::string a = util::encode_wire_frame(1, "first frame payload");
  std::string b = util::encode_wire_frame(2, "second frame payload");
  a[a.size() / 2] ^= 0x40;  // flip a bit inside the first frame's payload
  util::StreamDecoder dec;
  dec.feed(a + b);
  util::WireFrame f;
  // The corrupted frame must be dropped (CRC catches the flip) and the
  // clean one recovered via resync.
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.payload, "second frame payload");
  EXPECT_FALSE(dec.next(f));
  EXPECT_GE(dec.corrupt_frames(), 1u);
}

TEST(StreamDecoder, ResyncAfterBitFlipEveryPosition) {
  // A bit flip at ANY byte of the first frame must never corrupt what the
  // decoder yields, and once enough bytes arrive to resolve even an
  // inflated length claim (bounded here by a small max_frame_bytes), the
  // clean frames that follow must all be recovered. A flush frame larger
  // than the length bound guarantees every stall resolves.
  const std::string clean = util::encode_wire_frame(3, "victim payload");
  const std::string follow = util::encode_wire_frame(4, "survivor");
  const std::string flush = util::encode_wire_frame(5, std::string(1000, 'f'));
  for (std::size_t i = 0; i < clean.size(); ++i) {
    std::string corrupted = clean;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x20);
    if (corrupted == clean) continue;
    util::StreamDecoder dec(1024);
    dec.feed(corrupted + follow + flush);
    util::WireFrame f;
    std::vector<std::string> got;
    while (dec.next(f)) got.push_back(f.payload);
    // The survivor and (if the flip hit only the victim's type byte) the
    // victim may decode; a corrupted victim payload must never appear.
    for (const std::string& p : got)
      EXPECT_TRUE(p == "victim payload" || p == "survivor" ||
                  p == std::string(1000, 'f'))
          << "flip at byte " << i << " yielded corrupt payload";
    ASSERT_GE(got.size(), 2u) << "flip at byte " << i;
    EXPECT_EQ(got[got.size() - 2], "survivor") << "flip at byte " << i;
    EXPECT_EQ(got.back(), std::string(1000, 'f')) << "flip at byte " << i;
  }
}

TEST(StreamDecoder, TruncatedFrameWaitsForMoreBytes) {
  const std::string frame = util::encode_wire_frame(5, "truncation test");
  util::StreamDecoder dec;
  dec.feed(frame.data(), frame.size() - 4);
  util::WireFrame f;
  EXPECT_FALSE(dec.next(f));
  EXPECT_EQ(dec.corrupt_frames(), 0u);  // incomplete, not corrupt
  dec.feed(frame.data() + frame.size() - 4, 4);
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.payload, "truncation test");
}

TEST(StreamDecoder, DuplicatedFrameDecodesTwice) {
  // The decoder is dumb on purpose: duplicates are the master's problem
  // (job-id matching), detecting them here would need unbounded memory.
  const std::string frame = util::encode_wire_frame(6, "dup");
  util::StreamDecoder dec;
  dec.feed(frame + frame);
  util::WireFrame f;
  ASSERT_TRUE(dec.next(f));
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.payload, "dup");
  EXPECT_FALSE(dec.next(f));
}

TEST(StreamDecoder, OversizedLengthIsCorruptNotFatal) {
  // A torn length prefix can claim gigabytes; the decoder must reject it
  // instead of buffering forever, then recover the next clean frame.
  std::string evil = "\xff\xff\xff\x7f" + std::string(1, '\x01') + "junk";
  util::StreamDecoder dec(1 << 20);
  dec.feed(evil + util::encode_wire_frame(7, "clean"));
  util::WireFrame f;
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.payload, "clean");
  EXPECT_GE(dec.corrupt_frames(), 1u);
}

// ---------------------------------------------------------------------------
// Protocol bodies
// ---------------------------------------------------------------------------

TEST(Protocol, HelloRoundTrip) {
  cluster::Hello h;
  h.worker = "node-17";
  h.ram_bytes = 64ull << 30;
  h.threads = 12;
  h.config_crc = 0xDEADBEEF;
  const cluster::Hello back = cluster::Hello::from_json(h.to_json());
  EXPECT_EQ(back.worker, "node-17");
  EXPECT_EQ(back.ram_bytes, 64ull << 30);
  EXPECT_EQ(back.threads, 12u);
  EXPECT_EQ(back.config_crc, 0xDEADBEEFu);
  EXPECT_EQ(back.protocol, cluster::kProtocolVersion);
}

TEST(Protocol, SeedHexSurvivesBeyondDoublePrecision) {
  // 2^53 + 1 is unrepresentable as a double — the reason seeds ride as hex.
  const std::uint64_t seeds[] = {0ull, 1ull, (1ull << 53) + 1,
                                 0xFFFFFFFFFFFFFFFFull,
                                 0x9E3779B97F4A7C15ull};
  for (std::uint64_t s : seeds)
    EXPECT_EQ(cluster::hex_to_u64(cluster::u64_to_hex(s)), s);
  EXPECT_THROW(cluster::hex_to_u64("not hex"), std::runtime_error);
}

TEST(Protocol, JobRequestRoundTrip) {
  util::Rng rng(11);
  cluster::JobRequest req;
  req.job = (1ull << 40) + 3;
  req.model_id = 42;
  req.generation = 7;
  req.seed_hex = cluster::u64_to_hex(0xABCDEF0123456789ull);
  req.genome = nas::random_genome(3, 4, rng).to_json();
  const std::string wire = cluster::encode(MsgType::kJobRequest, req.to_json());
  util::StreamDecoder dec;
  dec.feed(wire);
  util::WireFrame f;
  ASSERT_TRUE(dec.next(f));
  ASSERT_TRUE(cluster::known_type(f.type));
  ASSERT_EQ(static_cast<MsgType>(f.type), MsgType::kJobRequest);
  const cluster::JobRequest back =
      cluster::JobRequest::from_json(cluster::parse_body(f));
  EXPECT_EQ(back.job, req.job);
  EXPECT_EQ(back.model_id, 42);
  EXPECT_EQ(back.generation, 7);
  EXPECT_EQ(nas::Genome::from_json(back.genome).key(),
            nas::Genome::from_json(req.genome).key());
}

// ---------------------------------------------------------------------------
// Master vs scripted hostile workers (loopback TCP)
// ---------------------------------------------------------------------------

cluster::MasterOptions fast_master_options() {
  cluster::MasterOptions o;
  o.port = 0;  // ephemeral
  o.config_crc = 0xC0FFEE;
  o.heartbeat_interval_ms = 50;
  o.heartbeat_timeout_ms = 2000;
  o.max_attempts = 4;
  o.quarantine_after = 3;
  o.backoff_base_ms = 5.0;
  o.backoff_cap_ms = 20.0;
  o.seed = 99;
  return o;
}

util::Json job_payload(int model_id) {
  util::Json p = util::Json::object();
  p["job"] = 0.0;
  p["model_id"] = model_id;
  p["generation"] = 1;
  p["seed"] = cluster::u64_to_hex(1234);
  util::Rng rng(static_cast<std::uint64_t>(model_id) + 1);
  p["genome"] = nas::random_genome(2, 3, rng).to_json();
  return p;
}

util::Json record_for(const cluster::JobRequest& req) {
  nas::EvaluationRecord rec;
  rec.model_id = req.model_id;
  rec.generation = req.generation;
  rec.genome = nas::Genome::from_json(req.genome);
  rec.fitness = 90.0 + req.model_id;
  rec.virtual_seconds = 1.5;
  return rec.to_json();
}

/// Blocking handshake helper for scripted raw-socket workers.
struct RawWorker {
  cluster::TcpConn conn;
  util::StreamDecoder dec;

  static RawWorker join(std::uint16_t port, std::uint32_t crc = 0xC0FFEE,
                        const std::string& name = "raw") {
    RawWorker w;
    w.conn = cluster::TcpConn::connect("127.0.0.1", port, 2000);
    EXPECT_TRUE(w.conn.valid());
    cluster::Hello hello;
    hello.worker = name;
    hello.threads = 2;
    hello.ram_bytes = 1ull << 30;
    hello.config_crc = crc;
    EXPECT_TRUE(
        w.conn.send_all(cluster::encode(MsgType::kHello, hello.to_json())));
    return w;
  }

  /// Pump until a frame of `want` arrives (answering heartbeats), or fail.
  bool await(MsgType want, util::WireFrame& out, int total_timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(total_timeout_ms);
    char buf[8192];
    for (;;) {
      util::WireFrame f;
      while (dec.next(f)) {
        if (!cluster::known_type(f.type)) continue;
        const auto type = static_cast<MsgType>(f.type);
        if (type == MsgType::kHeartbeat) {
          conn.send_all(cluster::encode(MsgType::kHeartbeatAck));
          continue;
        }
        if (type == want) {
          out = f;
          return true;
        }
      }
      if (std::chrono::steady_clock::now() > deadline) return false;
      const int n = conn.recv_some(buf, sizeof(buf), 50);
      if (n < 0) return false;
      if (n > 0) dec.feed(buf, static_cast<std::size_t>(n));
    }
  }
};

TEST(Master, NoWorkersMeansImmediateLocalFallback) {
  cluster::Master master(fast_master_options());
  util::metrics::Registry reg;
  master.set_metrics(&reg);
  EXPECT_EQ(master.connected_workers(), 0u);
  const auto result = master.evaluate(job_payload(1));
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(reg.counter("cluster.local_fallbacks").value(), 1.0);
  master.set_metrics(nullptr);
}

TEST(Master, ConfigDigestMismatchIsRejected) {
  cluster::Master master(fast_master_options());
  RawWorker w = RawWorker::join(master.port(), /*crc=*/0xBAD);
  util::WireFrame f;
  ASSERT_TRUE(w.await(MsgType::kReject, f));
  const cluster::Reject r = cluster::Reject::from_json(cluster::parse_body(f));
  EXPECT_NE(r.reason.find("config"), std::string::npos);
  EXPECT_EQ(master.connected_workers(), 0u);
}

TEST(Master, HappyPathRemoteEvaluation) {
  cluster::Master master(fast_master_options());
  RawWorker w = RawWorker::join(master.port());
  util::WireFrame f;
  ASSERT_TRUE(w.await(MsgType::kWelcome, f));
  ASSERT_TRUE(master.wait_for_workers(1, 2000));

  auto fut = std::async(std::launch::async,
                        [&] { return master.evaluate(job_payload(7)); });
  ASSERT_TRUE(w.await(MsgType::kJobRequest, f));
  const cluster::JobRequest req =
      cluster::JobRequest::from_json(cluster::parse_body(f));
  EXPECT_EQ(req.model_id, 7);
  cluster::JobResult res;
  res.job = req.job;
  res.record = record_for(req);
  ASSERT_TRUE(
      w.conn.send_all(cluster::encode(MsgType::kJobResult, res.to_json())));
  const auto result = fut.get();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(static_cast<int>(result->at("model_id").as_number()), 7);
}

// The wire-corruption sweep: bit-flipped frame, duplicated frame, stale
// job id, wrong-model record, truncated frame + drop. In every case the
// master must commit only the one clean record (or fall back locally) and
// account for what it dropped.
TEST(Master, CorruptionSweepNeverCommitsBadRecords) {
  cluster::Master master(fast_master_options());
  util::metrics::Registry reg;
  master.set_metrics(&reg);
  RawWorker w = RawWorker::join(master.port());
  util::WireFrame f;
  ASSERT_TRUE(w.await(MsgType::kWelcome, f));
  ASSERT_TRUE(master.wait_for_workers(1, 2000));

  // --- stale reply for a job id that was never dispatched: dropped.
  {
    cluster::JobResult ghost;
    ghost.job = 999999;
    cluster::JobRequest fake;
    fake.model_id = 12;
    fake.generation = 0;
    util::Rng rng(5);
    fake.genome = nas::random_genome(2, 3, rng).to_json();
    ghost.record = record_for(fake);
    ASSERT_TRUE(w.conn.send_all(
        cluster::encode(MsgType::kJobResult, ghost.to_json())));
  }

  auto fut = std::async(std::launch::async,
                        [&] { return master.evaluate(job_payload(3)); });
  ASSERT_TRUE(w.await(MsgType::kJobRequest, f));
  const cluster::JobRequest req =
      cluster::JobRequest::from_json(cluster::parse_body(f));

  cluster::JobResult good;
  good.job = req.job;
  good.record = record_for(req);
  const std::string good_bytes =
      cluster::encode(MsgType::kJobResult, good.to_json());

  // --- bit-flipped copy first: CRC must reject it, the master must not
  //     finish the job with it.
  std::string flipped = good_bytes;
  flipped[flipped.size() / 2] ^= 0x10;
  ASSERT_TRUE(w.conn.send_all(flipped));
  // --- then the clean frame, TWICE (duplicated-frame case): the first
  //     commits, the second is stale because the job is already done.
  ASSERT_TRUE(w.conn.send_all(good_bytes));
  ASSERT_TRUE(w.conn.send_all(good_bytes));

  const auto result = fut.get();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(static_cast<int>(result->at("model_id").as_number()), 3);
  EXPECT_DOUBLE_EQ(result->at("fitness").as_number(), 93.0);

  // Give the io thread a beat to account the trailing duplicate and the
  // decoder-corruption tally (the tally runs at the top of the next pump
  // tick, one tick after the frames decode).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while ((reg.counter("cluster.stale_results").value() < 2.0 ||
          reg.counter("cluster.corrupt_frames").value() < 1.0) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(reg.counter("cluster.corrupt_frames").value(), 1.0);
  EXPECT_EQ(reg.counter("cluster.stale_results").value(), 2.0);
  EXPECT_EQ(reg.counter("cluster.remote_results").value(), 1.0);
  master.set_metrics(nullptr);
}

TEST(Master, WrongModelRecordIsRejectedAndRedispatched) {
  auto opts = fast_master_options();
  opts.quarantine_after = 10;  // let the same identity reconnect
  cluster::Master master(opts);
  util::metrics::Registry reg;
  master.set_metrics(&reg);

  RawWorker w = RawWorker::join(master.port());
  util::WireFrame f;
  ASSERT_TRUE(w.await(MsgType::kWelcome, f));
  ASSERT_TRUE(master.wait_for_workers(1, 2000));

  auto fut = std::async(std::launch::async,
                        [&] { return master.evaluate(job_payload(5)); });
  ASSERT_TRUE(w.await(MsgType::kJobRequest, f));
  cluster::JobRequest req =
      cluster::JobRequest::from_json(cluster::parse_body(f));

  // CRC-valid result naming the WRONG model: must never be committed.
  cluster::JobRequest wrong = req;
  wrong.model_id = req.model_id + 100;
  cluster::JobResult evil;
  evil.job = req.job;
  evil.record = record_for(wrong);
  ASSERT_TRUE(
      w.conn.send_all(cluster::encode(MsgType::kJobResult, evil.to_json())));

  // The master drops the connection; reconnect as the same identity and
  // serve the re-dispatched job correctly.
  RawWorker w2 = RawWorker::join(master.port());
  ASSERT_TRUE(w2.await(MsgType::kWelcome, f));
  ASSERT_TRUE(w2.await(MsgType::kJobRequest, f, 10000));
  req = cluster::JobRequest::from_json(cluster::parse_body(f));
  EXPECT_EQ(req.model_id, 5);
  cluster::JobResult good;
  good.job = req.job;
  good.record = record_for(req);
  ASSERT_TRUE(
      w2.conn.send_all(cluster::encode(MsgType::kJobResult, good.to_json())));

  const auto result = fut.get();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(static_cast<int>(result->at("model_id").as_number()), 5);
  EXPECT_GE(reg.counter("cluster.corrupt_results").value(), 1.0);
  EXPECT_GE(reg.counter("cluster.redispatches").value(), 1.0);
  master.set_metrics(nullptr);
}

TEST(Master, TruncatedResultAndDropTriggersRedispatch) {
  auto opts = fast_master_options();
  opts.quarantine_after = 10;
  cluster::Master master(opts);
  util::metrics::Registry reg;
  master.set_metrics(&reg);

  RawWorker w = RawWorker::join(master.port());
  util::WireFrame f;
  ASSERT_TRUE(w.await(MsgType::kWelcome, f));
  ASSERT_TRUE(master.wait_for_workers(1, 2000));

  auto fut = std::async(std::launch::async,
                        [&] { return master.evaluate(job_payload(8)); });
  ASSERT_TRUE(w.await(MsgType::kJobRequest, f));
  cluster::JobRequest req =
      cluster::JobRequest::from_json(cluster::parse_body(f));
  cluster::JobResult res;
  res.job = req.job;
  res.record = record_for(req);
  // Torn mid-frame, then the connection dies (the classic kill -9).
  w.conn.send_torn(cluster::encode(MsgType::kJobResult, res.to_json()),
                   /*prefix=*/30);

  RawWorker w2 = RawWorker::join(master.port());
  ASSERT_TRUE(w2.await(MsgType::kWelcome, f));
  ASSERT_TRUE(w2.await(MsgType::kJobRequest, f, 10000));
  req = cluster::JobRequest::from_json(cluster::parse_body(f));
  EXPECT_EQ(req.model_id, 8);
  res.job = req.job;
  res.record = record_for(req);
  ASSERT_TRUE(
      w2.conn.send_all(cluster::encode(MsgType::kJobResult, res.to_json())));

  const auto result = fut.get();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(static_cast<int>(result->at("model_id").as_number()), 8);
  EXPECT_GE(reg.counter("cluster.worker_failures").value(), 1.0);
  EXPECT_GE(reg.counter("cluster.redispatches").value(), 1.0);
  master.set_metrics(nullptr);
}

TEST(Master, RepeatOffenderIsQuarantined) {
  auto opts = fast_master_options();
  opts.quarantine_after = 2;
  cluster::Master master(opts);
  util::metrics::Registry reg;
  master.set_metrics(&reg);

  util::WireFrame f;
  for (int round = 0; round < 2; ++round) {
    RawWorker w = RawWorker::join(master.port(), 0xC0FFEE, "flaky");
    ASSERT_TRUE(w.await(MsgType::kWelcome, f));
    w.conn.close();  // immediate drop = one failure
    // Wait until the master notices the drop.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(3);
    while (reg.counter("cluster.worker_failures").value() < round + 1 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(reg.counter("cluster.worker_quarantines").value(), 1.0);

  RawWorker w = RawWorker::join(master.port(), 0xC0FFEE, "flaky");
  ASSERT_TRUE(w.await(MsgType::kReject, f));
  const cluster::Reject r = cluster::Reject::from_json(cluster::parse_body(f));
  EXPECT_NE(r.reason.find("quarantine"), std::string::npos);
  // A DIFFERENT identity is still welcome.
  RawWorker fresh = RawWorker::join(master.port(), 0xC0FFEE, "healthy");
  ASSERT_TRUE(fresh.await(MsgType::kWelcome, f));
  master.set_metrics(nullptr);
}

// ---------------------------------------------------------------------------
// Real Worker + Master end to end, with injected worker-side faults
// ---------------------------------------------------------------------------

TEST(Cluster, RealWorkerServesJobsAndShutsDownCleanly) {
  cluster::Master master(fast_master_options());

  cluster::WorkerOptions wopts;
  wopts.port = master.port();
  wopts.name = "real-0";
  wopts.threads = 2;
  wopts.config_crc = 0xC0FFEE;
  cluster::Worker worker(wopts);
  std::thread worker_thread([&] {
    const cluster::WorkerStats stats = worker.run(
        [](const cluster::JobRequest& req) { return record_for(req); });
    EXPECT_TRUE(stats.clean_shutdown);
    EXPECT_EQ(stats.jobs_completed, 6u);
  });
  ASSERT_TRUE(master.wait_for_workers(1, 3000));

  std::vector<std::future<std::optional<util::Json>>> futs;
  for (int m = 0; m < 6; ++m)
    futs.push_back(std::async(std::launch::async, [&master, m] {
      return master.evaluate(job_payload(m));
    }));
  for (int m = 0; m < 6; ++m) {
    const auto result = futs[m].get();
    ASSERT_TRUE(result.has_value()) << "model " << m;
    EXPECT_EQ(static_cast<int>(result->at("model_id").as_number()), m);
  }
  master.stop();  // sends Shutdown
  worker_thread.join();
}

TEST(Cluster, InjectedWorkerCrashesAreSurvived) {
  auto mopts = fast_master_options();
  mopts.quarantine_after = 50;  // crashes are injected, don't quarantine
  mopts.max_attempts = 20;
  cluster::Master master(mopts);
  util::metrics::Registry reg;
  master.set_metrics(&reg);

  cluster::WorkerOptions wopts;
  wopts.port = master.port();
  wopts.name = "crashy";
  wopts.config_crc = 0xC0FFEE;
  wopts.reconnect_base_ms = 5.0;
  wopts.reconnect_cap_ms = 20.0;
  wopts.max_reconnects = 100;
  wopts.seed = 4242;
  wopts.fault.enabled = true;
  wopts.fault.worker_crash_prob = 0.3;  // dies after ~1 in 3 jobs
  cluster::Worker worker(wopts);
  std::thread worker_thread([&] {
    const cluster::WorkerStats stats = worker.run(
        [](const cluster::JobRequest& req) { return record_for(req); });
    EXPECT_GT(stats.injected_crashes, 0u);
  });
  ASSERT_TRUE(master.wait_for_workers(1, 3000));

  for (int m = 0; m < 8; ++m) {
    const auto result = master.evaluate(job_payload(m));
    // A crash mid-job may exhaust the moment's workers; local fallback is
    // legal. What is NOT legal is a wrong or corrupt result.
    if (result.has_value()) {
      EXPECT_EQ(static_cast<int>(result->at("model_id").as_number()), m);
    }
  }
  EXPECT_GE(reg.counter("cluster.worker_failures").value(), 1.0);
  master.set_metrics(nullptr);
  master.stop();
  worker.request_stop();
  worker_thread.join();
}

}  // namespace
