// Serving layer: champion selection, bit-identical micro-batching,
// hot-swap without request loss, SLO shedding, queue backpressure, and
// corrupt-artifact fallback.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "lineage/tracker.hpp"
#include "nn/layers.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "tensor/ops.hpp"
#include "util/fsutil.hpp"

namespace a4nn::serve {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kInputNumel = 1 * 8 * 8;  // one {1,8,8} image
constexpr std::size_t kClasses = 3;

nn::Model tiny_model(std::uint64_t seed) {
  util::Rng rng(seed);
  auto trunk = std::make_unique<nn::Sequential>();
  trunk->append(std::make_unique<nn::Conv2d>(1, 4, 3, 1, 1, rng));
  trunk->append(std::make_unique<nn::ReLU>());
  trunk->append(std::make_unique<nn::MaxPool2d>(2));
  trunk->append(std::make_unique<nn::Flatten>());
  trunk->append(std::make_unique<nn::Linear>(4 * 4 * 4, kClasses, rng));
  return nn::Model(std::move(trunk), {1, 8, 8});
}

/// Model exercising the layers with training/eval mode splits, so the
/// batch-size-invariance runs cover running-stat and mask handling too.
nn::Model normed_model(std::uint64_t seed) {
  util::Rng rng(seed);
  auto trunk = std::make_unique<nn::Sequential>();
  trunk->append(std::make_unique<nn::Conv2d>(1, 4, 3, 1, 1, rng));
  trunk->append(std::make_unique<nn::BatchNorm2d>(4));
  trunk->append(std::make_unique<nn::ReLU>());
  trunk->append(std::make_unique<nn::Dropout>(0.5, seed + 1));
  trunk->append(std::make_unique<nn::GlobalAvgPool>());
  trunk->append(std::make_unique<nn::Linear>(4, kClasses, rng));
  return nn::Model(std::move(trunk), {1, 8, 8});
}

std::vector<float> random_image(util::Rng& rng) {
  std::vector<float> img(kInputNumel);
  for (auto& v : img) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return img;
}

struct ServeFixture : ::testing::Test {
  void SetUp() override {
    root = util::make_temp_dir("a4nn-serve");
    tracker = std::make_unique<lineage::LineageTracker>(
        lineage::TrackerConfig{root, 1, /*durable=*/false});
    util::Json cfg = util::Json::object();
    cfg["experiment"] = "serve-test";
    tracker->record_search_config(cfg);
  }
  void TearDown() override { fs::remove_all(root); }

  /// Publish a trained-model stand-in: snapshots at `epochs` plus a record
  /// trail carrying the fitness/FLOPs the champion policy reads.
  void publish(int id, double fitness, std::uint64_t flops,
               std::uint64_t seed, std::vector<std::size_t> epochs = {1},
               bool normed = false) {
    nn::Model model = normed ? normed_model(seed) : tiny_model(seed);
    for (std::size_t e : epochs) tracker->record_model_epoch(id, e, model);
    util::Rng rng(seed);
    nas::EvaluationRecord r;
    r.genome = nas::random_genome(3, 4, rng);
    r.model_id = id;
    r.generation = 0;
    r.fitness = fitness;
    r.measured_fitness = fitness;
    r.flops = flops;
    r.epochs_trained = epochs.empty() ? 0 : epochs.back();
    r.max_epochs = 25;
    tracker->record_evaluation(r);
  }

  fs::path snapshot_path(int id, std::size_t epoch) const {
    return root / "models" / lineage::model_dir_name(id) /
           lineage::snapshot_file_name(epoch);
  }

  fs::path root;
  std::unique_ptr<lineage::LineageTracker> tracker;
};

/// Flip one bit of the file at a relative offset in (0, 1).
void flip_bit(const fs::path& path, double where) {
  std::string bytes = util::read_file(path);
  ASSERT_FALSE(bytes.empty());
  auto pos = static_cast<std::size_t>(where * static_cast<double>(bytes.size()));
  if (pos >= bytes.size()) pos = bytes.size() - 1;
  bytes[pos] = static_cast<char>(bytes[pos] ^ 0x10);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Truncate the file to a fraction of its size (0 empties it).
void truncate_file(const fs::path& path, double keep) {
  std::string bytes = util::read_file(path);
  bytes.resize(static_cast<std::size_t>(keep * static_cast<double>(bytes.size())));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(ServeFixture, ChampionPolicyNamesRoundTrip) {
  for (ChampionPolicy p : {ChampionPolicy::kBestFitness,
                           ChampionPolicy::kMinFlops,
                           ChampionPolicy::kBalanced})
    EXPECT_EQ(champion_policy_from_name(champion_policy_name(p)), p);
  EXPECT_THROW(champion_policy_from_name("bogus"), std::invalid_argument);
}

TEST_F(ServeFixture, ChampionSelectionFollowsPolicy) {
  // All three sit on the Pareto front (fitness and FLOPs both increase).
  publish(0, 90.0, 2000, 11);
  publish(1, 95.0, 8000, 12);
  publish(2, 85.0, 1000, 13);

  ModelRegistry best({root, ChampionPolicy::kBestFitness});
  EXPECT_TRUE(best.refresh());
  EXPECT_EQ(best.active()->info.model_id, 1);
  EXPECT_EQ(best.active()->info.generation, 1u);
  EXPECT_FALSE(best.refresh());  // unchanged champion: no republish

  ModelRegistry cheap({root, ChampionPolicy::kMinFlops});
  EXPECT_TRUE(cheap.refresh());
  EXPECT_EQ(cheap.active()->info.model_id, 2);

  // Balanced: 85 / log2(1002) beats 90 / log2(2002) and 95 / log2(8002).
  ModelRegistry balanced({root, ChampionPolicy::kBalanced});
  EXPECT_TRUE(balanced.refresh());
  EXPECT_EQ(balanced.active()->info.model_id, 2);

  // A FLOPs budget narrows the candidate set before the front is taken.
  ModelRegistry budget({root, ChampionPolicy::kBestFitness, 3000});
  EXPECT_TRUE(budget.refresh());
  EXPECT_EQ(budget.active()->info.model_id, 0);
}

TEST_F(ServeFixture, RegistryPrefersNewestSnapshotAndFailedRecordsAreSkipped) {
  publish(0, 90.0, 2000, 21, {1, 3, 7});
  publish(1, 99.0, 1000, 22);
  {
    // Mark model 1 failed after the fact: highest fitness, but no
    // trustworthy record — the registry must not serve it.
    lineage::DataCommons commons(root);
    auto records = commons.load_records();
    for (auto& r : records)
      if (r.model_id == 1) {
        r.failed = true;
        tracker->record_evaluation(r);
      }
  }
  ModelRegistry registry({root});
  EXPECT_TRUE(registry.refresh());
  EXPECT_EQ(registry.active()->info.model_id, 0);
  EXPECT_EQ(registry.active()->info.epoch, 7u);
}

TEST_F(ServeFixture, PredictionsBitIdenticalAcrossBatchingAndWorkers) {
  // The serving determinism guarantee: a request's scores do not depend on
  // how it was batched or which worker ran it. Exercised on a model with
  // BatchNorm + Dropout, the layers with real train/eval mode splits.
  publish(0, 90.0, 2000, 31, {1}, /*normed=*/true);
  ModelRegistry registry({root});
  registry.refresh();

  util::Rng rng(77);
  std::vector<std::vector<float>> images;
  for (int i = 0; i < 48; ++i) images.push_back(random_image(rng));

  // Reference: strict batch-1 forward, straight through the model.
  std::vector<std::vector<float>> reference;
  {
    auto generation = registry.active();
    for (const auto& img : images) {
      tensor::Tensor one({1, 1, 8, 8}, img);
      tensor::Tensor out = generation->model.predict(one);
      reference.emplace_back(out.data(), out.data() + kClasses);
    }
  }

  for (std::size_t max_batch : {1u, 8u, 32u}) {
    for (std::size_t workers : {1u, 2u, 8u}) {
      EngineConfig cfg;
      cfg.max_batch = max_batch;
      cfg.max_delay_ms = 0.5;
      cfg.queue_capacity = 1024;
      cfg.workers = workers;
      InferenceEngine engine(registry, cfg);
      std::vector<std::future<Prediction>> futures;
      for (const auto& img : images) {
        auto res = engine.submit(img);
        ASSERT_EQ(res.admission, Admission::kAccepted);
        futures.push_back(std::move(res.prediction));
      }
      for (std::size_t i = 0; i < images.size(); ++i) {
        Prediction p = futures[i].get();
        ASSERT_EQ(p.scores.size(), kClasses);
        EXPECT_EQ(std::memcmp(p.scores.data(), reference[i].data(),
                              kClasses * sizeof(float)),
                  0)
            << "image " << i << " max_batch " << max_batch << " workers "
            << workers;
      }
    }
  }
}

TEST_F(ServeFixture, BatchInvarianceSurvivesTunedBlocking) {
  // Same guarantee as above, but with an autotuned blocking table installed
  // for the exact (k, n) shapes this champion's layers emit. A tuned config
  // may change the summation order, but never per-m: row i of a batched
  // GEMM must still be the bytes batch-1 would produce.
  struct TableGuard {
    ~TableGuard() { tensor::clear_tuned_tile_configs(); }
  } table_guard;
  tensor::TileConfig forced;
  forced.mc = 36;
  forced.kc = 4;  // k=9 conv GEMM now spans three k-panels
  forced.nc = 64;
  forced.small_row_flops = 0;  // force the blocked path even at these sizes
  // Conv2d(1->4, 3x3) on 8x8: k = 9, n = 64. Linear(4 -> 3): k = 4, n = 3.
  tensor::set_tuned_tile_configs({{9, 64, forced}, {4, 3, forced}});

  publish(0, 90.0, 2000, 51, {1}, /*normed=*/true);
  ModelRegistry registry({root});
  registry.refresh();

  util::Rng rng(79);
  std::vector<std::vector<float>> images;
  for (int i = 0; i < 48; ++i) images.push_back(random_image(rng));

  std::vector<std::vector<float>> reference;
  {
    auto generation = registry.active();
    for (const auto& img : images) {
      tensor::Tensor one({1, 1, 8, 8}, img);
      tensor::Tensor out = generation->model.predict(one);
      reference.emplace_back(out.data(), out.data() + kClasses);
    }
  }

  for (std::size_t max_batch : {1u, 8u, 32u}) {
    EngineConfig cfg;
    cfg.max_batch = max_batch;
    cfg.max_delay_ms = 0.5;
    cfg.queue_capacity = 1024;
    cfg.workers = 2;
    InferenceEngine engine(registry, cfg);
    std::vector<std::future<Prediction>> futures;
    for (const auto& img : images) {
      auto res = engine.submit(img);
      ASSERT_EQ(res.admission, Admission::kAccepted);
      futures.push_back(std::move(res.prediction));
    }
    for (std::size_t i = 0; i < images.size(); ++i) {
      Prediction p = futures[i].get();
      ASSERT_EQ(p.scores.size(), kClasses);
      EXPECT_EQ(std::memcmp(p.scores.data(), reference[i].data(),
                            kClasses * sizeof(float)),
                0)
          << "image " << i << " max_batch " << max_batch;
    }
  }
}

TEST_F(ServeFixture, HotSwapMidStreamLosesNoRequests) {
  publish(0, 90.0, 2000, 41);
  ModelRegistry registry({root});
  registry.refresh();

  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay_ms = 0.2;
  cfg.queue_capacity = 4096;
  cfg.workers = 2;
  InferenceEngine engine(registry, cfg);

  util::Rng rng(88);
  constexpr int kRequests = 300;
  std::vector<std::future<Prediction>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    // Publish a better champion mid-stream; in-flight work must survive.
    if (i == kRequests / 2) {
      publish(1, 99.0, 1500, 42);
      EXPECT_TRUE(registry.refresh());
    }
    auto res = engine.submit(random_image(rng));
    ASSERT_EQ(res.admission, Admission::kAccepted);
    futures.push_back(std::move(res.prediction));
  }
  engine.drain();

  std::size_t swapped = 0;
  for (auto& f : futures) {
    const Prediction p = f.get();  // no request lost, no exception
    EXPECT_TRUE(p.generation == 1 || p.generation == 2);
    if (p.generation == 2) ++swapped;
  }
  // Batches are bound to a generation at dispatch, after they leave the
  // queue — so everything submitted after the swap ran on generation 2.
  EXPECT_GE(swapped, static_cast<std::size_t>(kRequests / 2));
  // And the post-drain engine serves the new champion.
  auto res = engine.submit(random_image(rng));
  ASSERT_EQ(res.admission, Admission::kAccepted);
  EXPECT_EQ(res.prediction.get().generation, 2u);
}

TEST_F(ServeFixture, SheddingActivatesAboveSloAndShowsInMetrics) {
  publish(0, 90.0, 2000, 51);
  ModelRegistry registry({root});
  registry.refresh();

  util::metrics::Registry metrics;
  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay_ms = 1.0;
  cfg.queue_capacity = 64;
  cfg.workers = 1;
  cfg.slo_ms = 10.0;
  cfg.metrics = &metrics;
  InferenceEngine engine(registry, cfg);
  // Deterministic shed decisions: pin the per-item estimate instead of
  // racing the first measured batch.
  engine.hint_service_time_ms(5.0);
  engine.pause();

  util::Rng rng(99);
  // First request estimates 1*5 + 1 = 6ms <= SLO: accepted.
  auto first = engine.submit(random_image(rng));
  EXPECT_EQ(first.admission, Admission::kAccepted);
  // Next one estimates 2*5 + 1 = 11ms > 10ms SLO: shed at admission.
  auto second = engine.submit(random_image(rng));
  EXPECT_EQ(second.admission, Admission::kShed);
  auto third = engine.submit(random_image(rng));
  EXPECT_EQ(third.admission, Admission::kShed);

  engine.resume();
  engine.drain();
  EXPECT_EQ(first.prediction.get().scores.size(), kClasses);

  const util::Json snap = metrics.snapshot();
  EXPECT_DOUBLE_EQ(snap.at("counters").at("serve.requests_shed").as_number(),
                   2.0);
  EXPECT_DOUBLE_EQ(snap.at("counters").at("serve.requests_ok").as_number(),
                   1.0);
  const util::Json stats = engine.stats();
  EXPECT_DOUBLE_EQ(stats.at("requests").at("shed").as_number(), 2.0);
  EXPECT_LE(stats.at("latency_ms").at("p50").as_number(),
            stats.at("latency_ms").at("p99").as_number());
  EXPECT_EQ(stats.at("champion").at("model_id").as_number(), 0.0);
}

TEST_F(ServeFixture, FullQueueRejectsWithBackpressure) {
  publish(0, 90.0, 2000, 61);
  ModelRegistry registry({root});
  registry.refresh();

  EngineConfig cfg;
  cfg.max_batch = 2;
  cfg.max_delay_ms = 1.0;
  cfg.queue_capacity = 4;
  cfg.workers = 1;
  InferenceEngine engine(registry, cfg);
  engine.pause();

  util::Rng rng(111);
  std::vector<std::future<Prediction>> futures;
  for (int i = 0; i < 4; ++i) {
    auto res = engine.submit(random_image(rng));
    ASSERT_EQ(res.admission, Admission::kAccepted);
    futures.push_back(std::move(res.prediction));
  }
  EXPECT_EQ(engine.queue_depth(), 4u);
  auto overflow = engine.submit(random_image(rng));
  EXPECT_EQ(overflow.admission, Admission::kRejected);

  engine.resume();
  engine.drain();
  for (auto& f : futures) EXPECT_EQ(f.get().scores.size(), kClasses);
  EXPECT_DOUBLE_EQ(engine.stats().at("requests").at("rejected").as_number(),
                   1.0);
}

TEST_F(ServeFixture, CorruptionSweepFallsBackToIntactGeneration) {
  // Baseline champion that stays intact throughout.
  publish(10, 95.0, 2000, 71);
  ModelRegistry registry({root});
  EXPECT_TRUE(registry.refresh());
  EXPECT_EQ(registry.active()->info.model_id, 10);

  // Sweep: each round publishes a better champion, damages its only
  // snapshot a different way, and refreshes. The registry must quarantine
  // the damage and keep serving the intact baseline — never crash.
  struct Damage {
    const char* name;
    void (*apply)(const fs::path&);
  };
  const Damage kDamage[] = {
      {"bit flip in header", [](const fs::path& p) { flip_bit(p, 0.001); }},
      {"bit flip mid payload", [](const fs::path& p) { flip_bit(p, 0.5); }},
      {"bit flip near end", [](const fs::path& p) { flip_bit(p, 0.97); }},
      {"truncated to half", [](const fs::path& p) { truncate_file(p, 0.5); }},
      {"truncated to empty", [](const fs::path& p) { truncate_file(p, 0.0); }},
  };
  int id = 20;
  double fitness = 96.0;
  std::size_t expect_quarantined = 0;
  for (const Damage& damage : kDamage) {
    publish(id, fitness, 1000, 80 + static_cast<std::uint64_t>(id));
    damage.apply(snapshot_path(id, 1));
    EXPECT_FALSE(registry.refresh()) << damage.name;
    EXPECT_EQ(registry.active()->info.model_id, 10) << damage.name;
    ++expect_quarantined;
    EXPECT_EQ(registry.quarantined_count(), expect_quarantined) << damage.name;
    EXPECT_TRUE(fs::exists(root / "quarantine" / "models" /
                           lineage::model_dir_name(id) /
                           lineage::snapshot_file_name(1)))
        << damage.name;
    ++id;
    fitness += 1.0;
  }

  // A corrupt record trail costs only that candidate, not the scan.
  publish(50, 99.5, 900, 200);
  flip_bit(root / "models" / lineage::model_dir_name(50) / "record.json", 0.5);
  EXPECT_FALSE(registry.refresh());
  EXPECT_EQ(registry.active()->info.model_id, 10);

  // The intact champion still serves after the whole sweep.
  ModelRegistry fresh({root});
  EXPECT_TRUE(fresh.refresh());
  EXPECT_EQ(fresh.active()->info.model_id, 10);
}

TEST_F(ServeFixture, DamagedChampionMidServeKeepsOldGenerationAlive) {
  publish(0, 90.0, 2000, 91);
  ModelRegistry registry({root});
  registry.refresh();
  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.workers = 1;
  InferenceEngine engine(registry, cfg);

  // A better champion lands, but its snapshot is torn. refresh() must keep
  // the live generation and the engine keeps answering.
  publish(1, 99.0, 1500, 92);
  truncate_file(snapshot_path(1, 1), 0.3);
  EXPECT_FALSE(registry.refresh());
  EXPECT_EQ(registry.active()->info.model_id, 0);

  util::Rng rng(123);
  auto res = engine.submit(random_image(rng));
  ASSERT_EQ(res.admission, Admission::kAccepted);
  EXPECT_EQ(res.prediction.get().generation, 1u);
}

TEST_F(ServeFixture, EmptyCommonsThrowsOnlyWithNothingToServe) {
  // A record without snapshots is not servable.
  util::Rng rng(7);
  nas::EvaluationRecord r;
  r.genome = nas::random_genome(3, 4, rng);
  r.model_id = 0;
  r.fitness = 90.0;
  r.flops = 1000;
  tracker->record_evaluation(r);
  ModelRegistry registry({root});
  EXPECT_THROW(registry.refresh(), std::runtime_error);
  EXPECT_EQ(registry.active(), nullptr);
}

TEST_F(ServeFixture, SubmitValidatesImageSize) {
  publish(0, 90.0, 2000, 101);
  ModelRegistry registry({root});
  registry.refresh();
  InferenceEngine engine(registry, {});
  EXPECT_THROW(engine.submit(std::vector<float>(3)), std::invalid_argument);
}

}  // namespace
}  // namespace a4nn::serve
