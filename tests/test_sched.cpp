// Resource manager: cost model, FIFO placement, barriers, idle accounting,
// and parallel/serial equivalence.
#include <gtest/gtest.h>

#include "sched/resource_manager.hpp"

namespace a4nn::sched {
namespace {

Job fixed_job(double duration) {
  return Job{[duration] { return duration; }};
}

TEST(CostModel, EpochSecondsScaleWithFlops) {
  DeviceCostModel cost;
  const double small = cost.epoch_seconds(1'000'000);
  const double big = cost.epoch_seconds(10'000'000);
  EXPECT_GT(big, small);
  // Linear in FLOPs beyond the fixed overhead.
  EXPECT_NEAR((big - cost.epoch_overhead_seconds) /
                  (small - cost.epoch_overhead_seconds),
              10.0, 1e-9);
}

TEST(CostModel, PaperScaleEpochIsTensOfSeconds) {
  // Calibration check: a ~1 MFLOP model over the paper's 63.5k/15.9k images
  // should cost tens of virtual seconds per epoch, putting 2,500 epochs at
  // the paper's tens-of-hours scale.
  DeviceCostModel cost;
  const double s = cost.epoch_seconds(1'500'000);
  EXPECT_GT(s, 20.0);
  EXPECT_LT(s, 300.0);
}

TEST(ResourceManager, ValidatesConfig) {
  ClusterConfig cfg;
  cfg.num_gpus = 0;
  EXPECT_THROW(ResourceManager{cfg}, std::invalid_argument);
}

TEST(ResourceManager, SingleGpuSerializesJobs) {
  ClusterConfig cfg;
  cfg.num_gpus = 1;
  cfg.parallel_execution = false;
  ResourceManager rm(cfg);
  std::vector<Job> jobs;
  for (double d : {3.0, 2.0, 5.0}) jobs.push_back(fixed_job(d));
  const GenerationSchedule s = rm.run_generation(std::move(jobs));
  EXPECT_EQ(s.placements[0].device_id, 0);
  EXPECT_DOUBLE_EQ(s.placements[0].start_seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.placements[1].start_seconds, 3.0);
  EXPECT_DOUBLE_EQ(s.placements[2].start_seconds, 5.0);
  EXPECT_DOUBLE_EQ(s.makespan_end, 10.0);
  EXPECT_DOUBLE_EQ(s.idle_seconds, 0.0);
  EXPECT_DOUBLE_EQ(rm.virtual_now(), 10.0);
}

TEST(ResourceManager, FifoPicksEarliestFreeDevice) {
  ClusterConfig cfg;
  cfg.num_gpus = 2;
  cfg.parallel_execution = false;
  ResourceManager rm(cfg);
  std::vector<Job> jobs;
  for (double d : {4.0, 1.0, 2.0, 2.0}) jobs.push_back(fixed_job(d));
  const GenerationSchedule s = rm.run_generation(std::move(jobs));
  // j0 -> gpu0 [0,4); j1 -> gpu1 [0,1); j2 -> gpu1 [1,3); j3 -> gpu1 [3,5).
  EXPECT_EQ(s.placements[0].device_id, 0);
  EXPECT_EQ(s.placements[1].device_id, 1);
  EXPECT_EQ(s.placements[2].device_id, 1);
  EXPECT_DOUBLE_EQ(s.placements[2].start_seconds, 1.0);
  EXPECT_EQ(s.placements[3].device_id, 1);
  EXPECT_DOUBLE_EQ(s.makespan_end, 5.0);
  // gpu0 idles from 4 to 5.
  EXPECT_DOUBLE_EQ(s.idle_seconds, 1.0);
}

TEST(ResourceManager, GenerationBarrierAccumulates) {
  ClusterConfig cfg;
  cfg.num_gpus = 2;
  cfg.parallel_execution = false;
  ResourceManager rm(cfg);
  std::vector<Job> gen1;
  gen1.push_back(fixed_job(3.0));
  gen1.push_back(fixed_job(1.0));
  rm.run_generation(std::move(gen1));
  EXPECT_DOUBLE_EQ(rm.virtual_now(), 3.0);
  // Second generation starts at the barrier even on the idle device.
  std::vector<Job> gen2;
  gen2.push_back(fixed_job(2.0));
  const GenerationSchedule s2 = rm.run_generation(std::move(gen2));
  EXPECT_DOUBLE_EQ(s2.placements[0].start_seconds, 3.0);
  EXPECT_DOUBLE_EQ(rm.virtual_now(), 5.0);
  rm.reset();
  EXPECT_DOUBLE_EQ(rm.virtual_now(), 0.0);
}

TEST(ResourceManager, EmptyGenerationIsNoOp) {
  ClusterConfig cfg;
  cfg.parallel_execution = false;
  ResourceManager rm(cfg);
  const GenerationSchedule s = rm.run_generation({});
  EXPECT_TRUE(s.placements.empty());
  EXPECT_DOUBLE_EQ(s.makespan_end, 0.0);
}

TEST(ResourceManager, ParallelAndSerialProduceSamePlacements) {
  std::vector<double> durations{5.0, 1.0, 4.0, 2.0, 3.0, 6.0, 1.5};
  auto run = [&](bool parallel) {
    ClusterConfig cfg;
    cfg.num_gpus = 3;
    cfg.parallel_execution = parallel;
    ResourceManager rm(cfg);
    std::vector<Job> jobs;
    for (double d : durations) jobs.push_back(fixed_job(d));
    return rm.run_generation(std::move(jobs));
  };
  const GenerationSchedule serial = run(false);
  const GenerationSchedule parallel = run(true);
  ASSERT_EQ(serial.placements.size(), parallel.placements.size());
  for (std::size_t i = 0; i < serial.placements.size(); ++i) {
    EXPECT_EQ(serial.placements[i].device_id, parallel.placements[i].device_id);
    EXPECT_DOUBLE_EQ(serial.placements[i].start_seconds,
                     parallel.placements[i].start_seconds);
    EXPECT_DOUBLE_EQ(serial.placements[i].end_seconds,
                     parallel.placements[i].end_seconds);
  }
  EXPECT_DOUBLE_EQ(serial.makespan_end, parallel.makespan_end);
}

TEST(ResourceManager, MoreGpusShortenMakespan) {
  auto makespan = [&](std::size_t gpus) {
    ClusterConfig cfg;
    cfg.num_gpus = gpus;
    cfg.parallel_execution = false;
    ResourceManager rm(cfg);
    std::vector<Job> jobs;
    for (int i = 0; i < 10; ++i) jobs.push_back(fixed_job(10.0));
    return rm.run_generation(std::move(jobs)).makespan_end;
  };
  EXPECT_DOUBLE_EQ(makespan(1), 100.0);
  EXPECT_DOUBLE_EQ(makespan(4), 30.0);  // ceil(10/4)=3 waves
  // Near-linear speedup with a remainder (the paper's observation).
  EXPECT_NEAR(makespan(1) / makespan(4), 3.33, 0.01);
}

}  // namespace
}  // namespace a4nn::sched
