// End-to-end A4NN workflow vs the standalone baseline on a shared tiny
// dataset: the paper's central comparison, in miniature.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/a4nn.hpp"
#include "util/fsutil.hpp"

namespace a4nn::core {
namespace {

namespace fs = std::filesystem;

WorkflowConfig tiny_config() {
  WorkflowConfig cfg;
  cfg.dataset.images_per_class = 40;
  cfg.dataset.detector.pixels = 8;
  cfg.dataset.intensity = xfel::BeamIntensity::kHigh;
  cfg.nas.population_size = 4;
  cfg.nas.offspring_per_generation = 4;
  cfg.nas.generations = 2;
  cfg.nas.max_epochs = 10;
  cfg.nas.space.input_shape = {1, 8, 8};
  cfg.nas.space.stem_channels = 4;
  cfg.trainer.max_epochs = 10;
  cfg.trainer.engine.e_pred = 10.0;
  return cfg;
}

TEST(Workflow, RunsAndAccountsEverything) {
  WorkflowConfig cfg = tiny_config();
  cfg.cluster.num_gpus = 2;
  A4nnWorkflow workflow(cfg);
  const WorkflowResult result = workflow.run();
  EXPECT_EQ(result.search.history.size(), 8u);
  EXPECT_EQ(result.schedules.size(), 2u);  // one per generation
  EXPECT_GT(result.virtual_wall_seconds, 0.0);
  EXPECT_GT(result.measured_wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.virtual_wall_seconds,
                   result.schedules.back().makespan_end);
  EXPECT_FALSE(result.commons_root.has_value());
  for (const auto& r : result.search.history) {
    EXPECT_LE(r.epochs_trained, 10u);
    EXPECT_GE(r.device_id, 0);
    EXPECT_LT(r.device_id, 2);
  }
}

TEST(Workflow, StandaloneVariantDisablesEngineAndMultiGpu) {
  WorkflowConfig cfg = tiny_config();
  cfg.cluster.num_gpus = 4;
  const WorkflowConfig standalone = standalone_variant(cfg);
  EXPECT_FALSE(standalone.trainer.use_prediction_engine);
  EXPECT_EQ(standalone.cluster.num_gpus, 1u);

  A4nnWorkflow workflow(standalone);
  const WorkflowResult result = workflow.run();
  // Without the engine every model trains the full budget.
  for (const auto& r : result.search.history) {
    EXPECT_EQ(r.epochs_trained, 10u);
    EXPECT_FALSE(r.early_terminated);
    EXPECT_TRUE(r.prediction_history.empty());
  }
}

TEST(Workflow, SharedDatasetMakesComparisonFair) {
  WorkflowConfig cfg = tiny_config();
  A4nnWorkflow a4nn(cfg);
  // The baseline reuses the generated dataset instead of regenerating.
  A4nnWorkflow baseline(standalone_variant(cfg), a4nn.dataset());
  const WorkflowResult ra = a4nn.run();
  const WorkflowResult rb = baseline.run();
  // Same search trajectory (same NAS seed) -> same genomes evaluated.
  ASSERT_EQ(ra.search.history.size(), rb.search.history.size());
  EXPECT_EQ(ra.search.history[0].genome.key(),
            rb.search.history[0].genome.key());
  // A4NN can only train fewer or equal epochs.
  EXPECT_LE(ra.search.total_epochs_trained(), rb.search.total_epochs_trained());
}

TEST(Workflow, LineageCommonsWrittenWhenConfigured) {
  WorkflowConfig cfg = tiny_config();
  const fs::path root = util::make_temp_dir("a4nn-wf-commons");
  cfg.lineage = lineage::TrackerConfig{root, 0};
  A4nnWorkflow workflow(cfg);
  const WorkflowResult result = workflow.run();
  ASSERT_TRUE(result.commons_root.has_value());

  lineage::DataCommons commons(*result.commons_root);
  EXPECT_EQ(commons.load_records().size(), result.search.history.size());
  const util::Json search_cfg = commons.search_config();
  EXPECT_EQ(search_cfg.at("dataset").at("intensity").as_string(), "high");
  EXPECT_DOUBLE_EQ(search_cfg.at("dataset").at("fluence").as_number(), 1e16);
  fs::remove_all(root);
}

TEST(Workflow, ResumeFromCommonsSkipsCompletedTrainings) {
  WorkflowConfig cfg = tiny_config();
  const fs::path root = util::make_temp_dir("a4nn-resume");
  cfg.lineage = lineage::TrackerConfig{root, 0};

  // Full run writes every record trail.
  A4nnWorkflow original(cfg);
  const WorkflowResult full = original.run();
  EXPECT_EQ(full.resumed_evaluations, 0u);

  // Simulate an interrupted run: drop the trails of the last generation.
  std::size_t removed = 0;
  for (const auto& r : full.search.history) {
    if (r.generation == 1) {
      fs::remove(root / "models" / lineage::model_dir_name(r.model_id) /
                 "record.json");
      ++removed;
    }
  }
  ASSERT_GT(removed, 0u);

  // Resume retrains only the missing networks and reproduces the search.
  WorkflowConfig resume_cfg = cfg;
  resume_cfg.resume_from_commons = true;
  A4nnWorkflow resumed(resume_cfg, original.dataset());
  const WorkflowResult replay = resumed.run();
  EXPECT_EQ(replay.resumed_evaluations,
            full.search.history.size() - removed);
  ASSERT_EQ(replay.search.history.size(), full.search.history.size());
  for (std::size_t i = 0; i < full.search.history.size(); ++i) {
    EXPECT_EQ(replay.search.history[i].genome.key(),
              full.search.history[i].genome.key());
    EXPECT_EQ(replay.search.history[i].fitness_history,
              full.search.history[i].fitness_history);
  }
  fs::remove_all(root);
}

TEST(Workflow, ResumeIgnoresMismatchedGenomes) {
  WorkflowConfig cfg = tiny_config();
  const fs::path root = util::make_temp_dir("a4nn-resume-bad");
  cfg.lineage = lineage::TrackerConfig{root, 0};
  A4nnWorkflow original(cfg);
  const WorkflowResult full = original.run();

  // Poison one record with a different genome: the resume must retrain it
  // rather than silently reuse a wrong result.
  lineage::DataCommons commons(root);
  auto records = commons.load_records();
  util::Rng rng(4242);
  records[0].genome = nas::random_genome(3, 4, rng);
  lineage::LineageTracker tracker({root, 0});
  tracker.record_evaluation(records[0]);

  WorkflowConfig resume_cfg = cfg;
  resume_cfg.resume_from_commons = true;
  A4nnWorkflow resumed(resume_cfg, original.dataset());
  const WorkflowResult replay = resumed.run();
  EXPECT_EQ(replay.resumed_evaluations, full.search.history.size() - 1);
  EXPECT_EQ(replay.search.history[0].genome.key(),
            full.search.history[0].genome.key());
  fs::remove_all(root);
}

TEST(Workflow, ConfigSerializesKeySettings) {
  const WorkflowConfig cfg = tiny_config();
  const util::Json j = cfg.to_json();
  EXPECT_EQ(j.at("nas").at("population_size").as_int(), 4);
  EXPECT_EQ(j.at("trainer").at("engine").at("function").as_string(),
            "pow_exp");
  EXPECT_EQ(j.at("cluster").at("num_gpus").as_int(), 1);
}

}  // namespace
}  // namespace a4nn::core
