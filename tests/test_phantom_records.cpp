// Regression suite for the phantom zero-fitness bug: a training job that
// exhausts its retries used to leave a default-constructed record (fitness
// 0.0, 0 FLOPs) that was journaled to the commons and fed to NSGA-II as a
// real evaluation — a free "0-cost" point that could win tournaments and
// poison the Pareto front. A failed evaluation must instead be flagged,
// kept out of selection/Pareto/journal, and surfaced in the counts.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <stdexcept>

#include "analytics/analyzer.hpp"
#include "nas/search.hpp"
#include "orchestrator/workflow_evaluator.hpp"
#include "util/fsutil.hpp"
#include "util/rng.hpp"
#include "xfel/dataset.hpp"

namespace a4nn::orchestrator {
namespace {

namespace fs = std::filesystem;

/// A TrainingLoop whose jobs throw permanently for chosen model ids —
/// the "always-crashing architecture" every retry re-hits.
class FlakyLoop : public TrainingLoop {
 public:
  using TrainingLoop::TrainingLoop;

  nas::EvaluationRecord train_genome(const nas::Genome& genome,
                                     const nas::SearchSpaceConfig& space,
                                     int model_id,
                                     std::uint64_t seed) const override {
    if (poisoned.count(model_id))
      throw std::runtime_error("injected permanent failure");
    return TrainingLoop::train_genome(genome, space, model_id, seed);
  }

  std::set<int> poisoned;
};

struct PhantomFixture : ::testing::Test {
  void SetUp() override {
    xfel::XfelDatasetConfig cfg;
    cfg.images_per_class = 40;
    cfg.detector.pixels = 8;
    cfg.intensity = xfel::BeamIntensity::kHigh;
    data = xfel::generate_xfel_dataset(cfg);
    space.input_shape = {1, 8, 8};
    space.stem_channels = 4;
    root = util::make_temp_dir("a4nn-phantom");
  }
  void TearDown() override { fs::remove_all(root); }

  TrainerConfig trainer() const {
    TrainerConfig cfg;
    cfg.max_epochs = 3;
    cfg.batch_size = 16;
    cfg.use_prediction_engine = false;
    return cfg;
  }

  nas::NsgaNetConfig search_config() const {
    nas::NsgaNetConfig cfg;
    cfg.population_size = 4;
    cfg.offspring_per_generation = 4;
    cfg.generations = 2;
    cfg.max_epochs = 3;
    cfg.space = space;
    return cfg;
  }

  xfel::XfelDataset data;
  nas::SearchSpaceConfig space;
  fs::path root;
};

TEST_F(PhantomFixture, FailedJobNeverBecomesAPhantomRecord) {
  lineage::LineageTracker tracker({root, 0});
  FlakyLoop loop(data.train, data.validation, trainer(), &tracker);
  loop.poisoned = {1};  // one initial-population member always crashes

  sched::ClusterConfig cluster_cfg;
  cluster_cfg.num_gpus = 2;
  sched::ResourceManager cluster(cluster_cfg);
  WorkflowEvaluator evaluator(loop, cluster, space, 2023, &tracker);

  nas::NsgaNetSearch search(search_config(), evaluator);
  const nas::SearchResult result = search.run();
  ASSERT_EQ(result.history.size(), 8u);

  // The failed evaluation is flagged, carries the error, and was never
  // placed on a device.
  const nas::EvaluationRecord& failed = result.history[1];
  EXPECT_TRUE(failed.failed);
  EXPECT_NE(failed.error.find("injected permanent failure"), std::string::npos);
  EXPECT_EQ(failed.device_id, -1);
  EXPECT_DOUBLE_EQ(failed.fitness, 0.0);
  EXPECT_EQ(failed.epochs_trained, 0u);
  EXPECT_EQ(evaluator.failed_count(), 1u);
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    if (i != 1) {
      EXPECT_FALSE(result.history[i].failed) << "record " << i;
    }
  }

  // A fitness-0.0 / 0-FLOPs point would Pareto-dominate on the FLOPs axis;
  // it must appear neither on the front nor in the surviving population.
  for (std::size_t idx : result.pareto) EXPECT_NE(idx, 1u);
  for (std::size_t idx : result.final_population) EXPECT_NE(idx, 1u);
  for (std::size_t idx : analytics::pareto_indices(result.history))
    EXPECT_NE(idx, 1u);
  EXPECT_FALSE(result.pareto.empty());
  EXPECT_FALSE(result.final_population.empty());

  // The commons holds record trails for every success and NONE for the
  // failure — a journaled phantom would be replayed on resume.
  EXPECT_FALSE(
      fs::exists(root / "models" / lineage::model_dir_name(1) / "record.json"));
  for (int id : {0, 2, 3, 4, 5, 6, 7}) {
    EXPECT_TRUE(fs::exists(root / "models" / lineage::model_dir_name(id) /
                           "record.json"))
        << "model " << id;
  }
}

TEST_F(PhantomFixture, AllFailedInitialPopulationThrows) {
  FlakyLoop loop(data.train, data.validation, trainer());
  loop.poisoned = {0, 1, 2, 3};
  sched::ClusterConfig cluster_cfg;
  cluster_cfg.num_gpus = 2;
  sched::ResourceManager cluster(cluster_cfg);
  WorkflowEvaluator evaluator(loop, cluster, space, 2023);
  nas::NsgaNetSearch search(search_config(), evaluator);
  EXPECT_THROW(search.run(), std::runtime_error);
}

TEST_F(PhantomFixture, FailedPreloadedRecordIsRetrained) {
  // A failure marker must never satisfy a resume hit: the retrained record
  // replaces it and the resumed count stays at the genuine reuses.
  lineage::LineageTracker tracker({root, 0});
  FlakyLoop loop(data.train, data.validation, trainer(), &tracker);

  sched::ClusterConfig cluster_cfg;
  cluster_cfg.num_gpus = 2;
  sched::ResourceManager cluster(cluster_cfg);
  WorkflowEvaluator evaluator(loop, cluster, space, 2023, &tracker);

  nas::EvaluationRecord stale;
  stale.model_id = 0;
  stale.failed = true;
  stale.error = "from a previous run";
  evaluator.preload_records({stale});

  nas::NsgaNetConfig cfg = search_config();
  cfg.generations = 1;
  nas::NsgaNetSearch search(cfg, evaluator);
  const nas::SearchResult result = search.run();
  EXPECT_EQ(evaluator.resumed_count(), 0u);
  EXPECT_FALSE(result.history[0].failed);
  EXPECT_GT(result.history[0].epochs_trained, 0u);
}

TEST(PhantomRecordJson, FailureFieldsRoundTripAndStayOptional) {
  util::Rng rng(3);
  nas::EvaluationRecord ok;
  ok.genome = nas::random_genome(3, 4, rng);
  ok.model_id = 4;
  ok.fitness = 71.5;
  ok.measured_fitness = 71.5;
  ok.fitness_history = {50.0, 71.5};
  ok.epochs_trained = 2;
  // Successful records serialize exactly as before this field existed, so
  // pre-existing commons bytes remain byte-identical.
  const util::Json j_ok = ok.to_json();
  EXPECT_FALSE(j_ok.contains("failed"));
  EXPECT_FALSE(j_ok.contains("error"));
  EXPECT_FALSE(nas::EvaluationRecord::from_json(j_ok).failed);

  nas::EvaluationRecord bad = ok;
  bad.failed = true;
  bad.error = "device on fire";
  const util::Json j_bad = bad.to_json();
  ASSERT_TRUE(j_bad.contains("failed"));
  const nas::EvaluationRecord back = nas::EvaluationRecord::from_json(j_bad);
  EXPECT_TRUE(back.failed);
  EXPECT_EQ(back.error, "device on fire");
}

}  // namespace
}  // namespace a4nn::orchestrator
