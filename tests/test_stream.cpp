// Self-healing streaming loop: steady-state serving, drift-triggered
// recovery with hot-swap, deterministic faulty replay, watchdog
// supervision, graceful degradation, crash-consistent trigger journal,
// and kill-anywhere/resume convergence.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "lineage/tracker.hpp"
#include "nn/layers.hpp"
#include "stream/drift.hpp"
#include "stream/journal.hpp"
#include "stream/scenario.hpp"
#include "util/fault.hpp"
#include "util/fsutil.hpp"

namespace a4nn::stream {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kPixels = 8;
constexpr std::size_t kClasses = 2;  // conformations in the stream

nn::Model tiny_model(std::uint64_t seed) {
  util::Rng rng(seed);
  auto trunk = std::make_unique<nn::Sequential>();
  trunk->append(std::make_unique<nn::Conv2d>(1, 4, 3, 1, 1, rng));
  trunk->append(std::make_unique<nn::ReLU>());
  trunk->append(std::make_unique<nn::MaxPool2d>(2));
  trunk->append(std::make_unique<nn::Flatten>());
  trunk->append(std::make_unique<nn::Linear>(4 * 4 * 4, kClasses, rng));
  return nn::Model(std::move(trunk), {1, kPixels, kPixels});
}

/// Flip one bit of the file at a relative offset in (0, 1).
void flip_bit(const fs::path& path, double where) {
  std::string bytes = util::read_file(path);
  ASSERT_FALSE(bytes.empty());
  auto pos =
      static_cast<std::size_t>(where * static_cast<double>(bytes.size()));
  if (pos >= bytes.size()) pos = bytes.size() - 1;
  bytes[pos] = static_cast<char>(bytes[pos] ^ 0x10);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::size_t count_lines(const std::string& text) {
  return static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n'));
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++n;
  return n;
}

struct StreamFixture : ::testing::Test {
  void TearDown() override {
    for (const auto& root : roots) fs::remove_all(root);
  }

  /// A fresh commons with one servable genesis champion (model 0, epoch 1).
  /// Identical calls produce byte-identical model weights and records, so
  /// two commons built this way are interchangeable for replay tests.
  fs::path make_commons() {
    const fs::path root = util::make_temp_dir("a4nn-stream");
    roots.push_back(root);
    lineage::LineageTracker tracker(
        lineage::TrackerConfig{root, 1, /*durable=*/false});
    util::Json cfg = util::Json::object();
    cfg["experiment"] = "stream-test";
    tracker.record_search_config(cfg);
    nn::Model model = tiny_model(11);
    tracker.record_model_epoch(0, 1, model);
    util::Rng rng(11);
    nas::EvaluationRecord r;
    r.genome = nas::random_genome(3, 4, rng);
    r.model_id = 0;
    r.generation = 0;
    r.fitness = 60.0;
    r.measured_fitness = 60.0;
    r.flops = 2000;
    r.epochs_trained = 1;
    r.max_epochs = 25;
    tracker.record_evaluation(r);
    return root;
  }

  /// Small, unpaced run: 256 frames, 32-frame windows, trigger disabled
  /// (fire_below = 0 means no window ever counts bad) until a test arms it.
  StreamConfig base_config(const fs::path& root) {
    StreamConfig cfg;
    cfg.commons_root = root;
    cfg.seed = 7;
    cfg.durable = false;
    cfg.producer.total_frames = 256;
    cfg.producer.pool_per_class = 8;
    cfg.producer.dataset.detector.pixels = kPixels;
    cfg.producer.dataset.conformations = kClasses;
    cfg.producer.dataset.seed = 7;
    cfg.drift.window_frames = 32;
    cfg.drift.num_classes = kClasses;
    cfg.drift.fire_below = 0.0;
    cfg.drift.rearm_above = 0.0;
    cfg.recovery.buffer_frames = 64;
    cfg.recovery.finetune_epochs = 2;
    cfg.recovery.batch_size = 16;
    cfg.engine.max_batch = 4;
    cfg.engine.max_delay_ms = 0.2;
    cfg.engine.workers = 2;
    cfg.engine.queue_capacity = 512;
    return cfg;
  }

  std::vector<fs::path> roots;
};

TEST_F(StreamFixture, SteadyStreamServesEverythingWithinSlo) {
  const fs::path root = make_commons();
  StreamConfig cfg = base_config(root);
  StreamResult r = StreamScenario(cfg).run();

  EXPECT_EQ(r.frames_produced, 256u);
  EXPECT_EQ(r.frames_served, 256u);
  EXPECT_EQ(r.frames_corrupt_dropped, 0u);
  EXPECT_EQ(r.frames_unserved, 0u);
  EXPECT_EQ(r.windows, 8u);
  EXPECT_EQ(r.triggers_fired, 0u);
  EXPECT_EQ(r.triggers_shed, 0u);
  EXPECT_FALSE(r.degraded);
  EXPECT_FALSE(r.aborted);
  EXPECT_FALSE(r.interrupted);
  // Journal: genesis line only, and it names the published champion.
  EXPECT_EQ(count_lines(r.journal_text), 1u);
  TriggerJournal reread(root / "stream.journal");
  EXPECT_TRUE(reread.has_genesis());
  EXPECT_EQ(reread.genesis_model_id(), 0);
  EXPECT_TRUE(reread.actions().empty());
  // SLO: with no faults every window counts, and the tail stays far from
  // the histogram ceiling on an unloaded tiny model.
  ASSERT_EQ(r.window_fault_tainted.size(), r.windows);
  for (bool tainted : r.window_fault_tainted) EXPECT_FALSE(tainted);
  EXPECT_GT(r.p99_outside_faults_ms, 0.0);
  EXPECT_LT(r.p99_outside_faults_ms, 150.0);
}

TEST_F(StreamFixture, DriftFiresRecoveryAndHotSwapsChampion) {
  const fs::path root = make_commons();
  StreamConfig cfg = base_config(root);
  cfg.producer.total_frames = 384;
  PhaseSpec drifted;
  drifted.start_frame = 128;
  drifted.label_rotation = 1;
  cfg.producer.phases.push_back(drifted);
  cfg.drift.fire_below = 70.0;
  cfg.drift.rearm_above = 85.0;
  cfg.drift.sustain_windows = 2;
  cfg.drift.cooldown_windows = 2;
  StreamResult r = StreamScenario(cfg).run();

  ASSERT_GE(r.triggers_completed, 1u);
  // Deterministic swap holds the stream at each firing boundary, so every
  // fired action completes before the run ends.
  EXPECT_EQ(r.triggers_fired, r.triggers_completed);
  EXPECT_EQ(r.champions.size(), r.triggers_completed);
  // The fine-tuned model (trained on the drifted stream) wins the honest
  // re-score and serves as the final champion.
  EXPECT_GE(r.final_champion_model, cfg.recovery.model_id_base);
  EXPECT_EQ(r.final_champion_epoch, cfg.recovery.finetune_epochs);
  // Journal records the full fired → acked → completed ladder per action.
  EXPECT_EQ(count_occurrences(r.journal_text, "\"fired\""),
            r.triggers_completed);
  EXPECT_EQ(count_occurrences(r.journal_text, "\"completed\""),
            r.triggers_completed);
  // Fired flags in the window history match the journaled windows.
  TriggerJournal journal(root / "stream.journal");
  for (const auto& [id, rec] : journal.actions()) {
    ASSERT_LT(rec.window_index, r.window_history.size());
    EXPECT_TRUE(r.window_history[rec.window_index].fired) << "action " << id;
  }
  EXPECT_FALSE(r.degraded);
  EXPECT_FALSE(r.aborted);
}

TEST_F(StreamFixture, FaultyReplayIsDeterministicAcrossRuns) {
  // Two independent commons built identically, the same seed and the same
  // injected faults: the acceptance criterion is byte-identical trigger
  // journals and the same champion lineage, with every recovery action
  // fired/acked/completed exactly once.
  auto run_once = [&](const fs::path& root) {
    StreamConfig cfg = base_config(root);
    cfg.drift.fire_below = 101.0;  // every window is bad: fires on schedule
    cfg.drift.rearm_above = 101.0;
    cfg.drift.sustain_windows = 2;
    cfg.drift.cooldown_windows = 2;
    cfg.fault.enabled = true;
    cfg.fault.stream_corrupt_prob = 0.03;
    cfg.fault.stream_crash_prob = 0.004;
    cfg.fault.stream_recovery_crash_prob = 0.25;
    cfg.producer_policy.max_restarts = 10;
    cfg.recovery_policy.max_restarts = 10;
    return StreamScenario(cfg).run();
  };
  const StreamResult a = run_once(make_commons());
  const StreamResult b = run_once(make_commons());

  EXPECT_EQ(a.journal_text, b.journal_text);
  EXPECT_EQ(a.champions, b.champions);
  EXPECT_EQ(a.frames_produced, b.frames_produced);
  EXPECT_EQ(a.frames_served, b.frames_served);
  EXPECT_EQ(a.frames_corrupt_dropped, b.frames_corrupt_dropped);
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.window_fault_tainted, b.window_fault_tainted);
  ASSERT_EQ(a.window_history.size(), b.window_history.size());
  for (std::size_t i = 0; i < a.window_history.size(); ++i) {
    EXPECT_EQ(a.window_history[i].accuracy, b.window_history[i].accuracy)
        << "window " << i;
    EXPECT_EQ(a.window_history[i].fired, b.window_history[i].fired)
        << "window " << i;
  }
  ASSERT_GE(a.triggers_completed, 1u);
  // Exactly once per action, even with injected recovery crashes forcing
  // retries: one fired line, one acked line, one completed line each.
  EXPECT_EQ(count_occurrences(a.journal_text, "\"fired\""),
            a.triggers_completed);
  EXPECT_EQ(count_occurrences(a.journal_text, "\"acked\""),
            a.triggers_completed);
  EXPECT_EQ(count_occurrences(a.journal_text, "\"completed\""),
            a.triggers_completed);
}

TEST_F(StreamFixture, StallTripsWatchdogAndStreamStillCompletes) {
  const fs::path root = make_commons();
  StreamConfig cfg = base_config(root);
  cfg.producer.total_frames = 128;
  cfg.fault.enabled = true;
  cfg.fault.stream_stall_prob = 0.04;
  cfg.fault.stream_stall_ms = 60.0;
  cfg.producer_policy.watchdog_ms = 20.0;
  // Each restart re-rolls the remaining frames at a new attempt, so the
  // total stall count compounds well past stall_prob * total_frames; give
  // the budget generous headroom so the run completes instead of degrading.
  cfg.producer_policy.max_restarts = 50;
  // The oracle must draw at least one first-attempt stall for this
  // configuration, or the test would assert nothing.
  {
    util::FaultConfig fc = cfg.fault;
    fc.seed = cfg.seed ^ 0xA4A4ULL;
    const util::FaultInjector oracle(fc);
    std::size_t stalls = 0;
    for (std::size_t i = 0; i < cfg.producer.total_frames; ++i)
      if (oracle.stream_stall(i, 0)) ++stalls;
    ASSERT_GE(stalls, 1u);
  }
  StreamResult r = StreamScenario(cfg).run();

  EXPECT_GE(r.watchdog_stalls, 1u);
  EXPECT_GE(r.child_restarts, 1u);
  // Restarted incarnations resume at the cursor: no frame lost or doubled.
  EXPECT_EQ(r.frames_produced, 128u);
  EXPECT_EQ(r.frames_served, 128u);
  EXPECT_FALSE(r.aborted);
  EXPECT_FALSE(r.degraded);
}

TEST_F(StreamFixture, ProducerExhaustionDegradesGracefully) {
  const fs::path root = make_commons();
  StreamConfig cfg = base_config(root);
  cfg.producer.total_frames = 64;
  cfg.fault.enabled = true;
  cfg.fault.stream_crash_prob = 1.0;  // crashes at every frame
  cfg.producer_policy.max_restarts = 1;
  StreamResult r = StreamScenario(cfg).run();

  // Budget burned: the supervisor escalates, the queue closes, the pump
  // drains and finishes — a degraded but orderly end, not an abort.
  EXPECT_TRUE(r.degraded);
  EXPECT_GE(r.degraded_entries, 1u);
  EXPECT_GE(r.child_crashes, 2u);
  EXPECT_EQ(r.frames_produced, 0u);
  EXPECT_EQ(r.frames_served, 0u);
  EXPECT_FALSE(r.aborted);
  EXPECT_FALSE(r.interrupted);
  EXPECT_EQ(count_lines(r.journal_text), 1u);  // genesis only
}

TEST_F(StreamFixture, CorruptFramesDroppedExactlyPerOracle) {
  const fs::path root = make_commons();
  StreamConfig cfg = base_config(root);
  cfg.fault.enabled = true;
  cfg.fault.stream_corrupt_prob = 0.08;
  util::FaultConfig fc = cfg.fault;
  fc.seed = cfg.seed ^ 0xA4A4ULL;
  const util::FaultInjector oracle(fc);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < cfg.producer.total_frames; ++i)
    if (oracle.stream_corrupt_frame(i)) ++expected;
  ASSERT_GE(expected, 1u);

  StreamResult r = StreamScenario(cfg).run();
  EXPECT_EQ(r.frames_corrupt_dropped, expected);
  EXPECT_EQ(r.frames_served, 256u - expected);
  // Corrupt frames never reach the drift monitor: window boundaries are
  // counted over valid frames only.
  EXPECT_EQ(r.windows, (256u - expected) / cfg.drift.window_frames);
}

TEST_F(StreamFixture, KillAnywhereThenResumeConvergesToReferenceJournal) {
  // Reference: an undisturbed run whose configuration fires exactly one
  // recovery action (cooldown covers the rest of the stream), producing a
  // 4-line journal: genesis, fired, acked, completed.
  auto configure = [&](const fs::path& root) {
    StreamConfig cfg = base_config(root);
    cfg.producer.total_frames = 192;
    cfg.drift.fire_below = 101.0;
    cfg.drift.rearm_above = 101.0;
    cfg.drift.sustain_windows = 2;
    cfg.drift.cooldown_windows = 100;
    return cfg;
  };
  const StreamResult ref = StreamScenario(configure(make_commons())).run();
  ASSERT_EQ(ref.triggers_completed, 1u);
  ASSERT_EQ(count_lines(ref.journal_text), 4u);
  ASSERT_FALSE(ref.interrupted);

  // Kill after every possible journal append (1 = after genesis, 2 = after
  // fired, 3 = after acked), then resume: the journal must converge to the
  // reference bytes and the same champion lineage, with nothing re-fired.
  for (std::size_t kill_after : {1u, 2u, 3u}) {
    const fs::path root = make_commons();
    StreamConfig killed = configure(root);
    killed.journal_append_limit = kill_after;
    const StreamResult dead = StreamScenario(killed).run();
    EXPECT_TRUE(dead.interrupted) << "kill_after " << kill_after;
    EXPECT_LE(count_lines(dead.journal_text), kill_after);

    StreamConfig resumed = configure(root);
    resumed.resume = true;
    const StreamResult back = StreamScenario(resumed).run();
    EXPECT_FALSE(back.interrupted) << "kill_after " << kill_after;
    EXPECT_EQ(back.journal_text, ref.journal_text)
        << "kill_after " << kill_after;
    EXPECT_EQ(back.champions, ref.champions) << "kill_after " << kill_after;
    EXPECT_EQ(back.triggers_completed, 1u) << "kill_after " << kill_after;
    EXPECT_EQ(back.final_champion_model, ref.final_champion_model)
        << "kill_after " << kill_after;
  }
}

TEST_F(StreamFixture, CorruptPromotedChampionFallsBackDuringHotSwap) {
  // Hot-swap under fire: the recovery action promotes its fine-tuned
  // model, the snapshot is damaged before the registry refresh, and the
  // swap must fall back to the intact genesis champion with zero failed
  // in-flight requests.
  const fs::path root = make_commons();
  StreamConfig cfg = base_config(root);
  cfg.producer.total_frames = 192;
  cfg.drift.fire_below = 101.0;
  cfg.drift.rearm_above = 101.0;
  cfg.drift.sustain_windows = 2;
  cfg.drift.cooldown_windows = 100;
  cfg.after_promote_hook = [&](int model_id, std::size_t epoch) {
    flip_bit(root / "models" / lineage::model_dir_name(model_id) /
                 lineage::snapshot_file_name(epoch),
             0.5);
  };
  StreamResult r = StreamScenario(cfg).run();

  ASSERT_EQ(r.triggers_completed, 1u);
  // The completion line records the champion the registry actually settled
  // on: the genesis fallback, not the corrupt promotion.
  ASSERT_EQ(r.champions.size(), 1u);
  EXPECT_EQ(r.champions[0].first, 0);
  EXPECT_EQ(r.champions[0].second, 1u);
  EXPECT_EQ(r.final_champion_model, 0);
  // Zero failed in-flight: every produced frame is accounted for.
  EXPECT_EQ(r.frames_served + r.frames_corrupt_dropped + r.frames_unserved,
            r.frames_produced);
  EXPECT_EQ(r.frames_served, r.frames_produced);
  EXPECT_FALSE(r.aborted);
  EXPECT_FALSE(r.degraded);
}

TEST_F(StreamFixture, RecoveryExhaustionShedsLaterTriggers) {
  const fs::path root = make_commons();
  StreamConfig cfg = base_config(root);
  cfg.producer.total_frames = 192;
  cfg.drift.fire_below = 101.0;
  cfg.drift.rearm_above = 101.0;
  cfg.drift.sustain_windows = 1;
  cfg.drift.cooldown_windows = 0;
  cfg.fault.enabled = true;
  cfg.fault.stream_recovery_crash_prob = 1.0;  // every attempt crashes
  cfg.recovery_policy.max_restarts = 1;
  StreamResult r = StreamScenario(cfg).run();

  // Serve-only degradation: the first action wedges, later fired windows
  // are shed, the stale champion keeps serving to the end of the stream.
  EXPECT_TRUE(r.degraded);
  EXPECT_GE(r.degraded_entries, 1u);
  EXPECT_EQ(r.triggers_fired, 1u);
  EXPECT_EQ(r.triggers_completed, 0u);
  EXPECT_GE(r.triggers_shed, 1u);
  EXPECT_EQ(r.frames_produced, 192u);
  EXPECT_EQ(r.frames_served, 192u);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.final_champion_model, 0);
}

TEST_F(StreamFixture, GracefulStopDrainsMidStream) {
  const fs::path root = make_commons();
  StreamConfig cfg = base_config(root);
  cfg.producer.total_frames = 4000;
  cfg.producer.rate_hz = 400.0;
  auto polls = std::make_shared<std::atomic<int>>(0);
  cfg.stop_requested = [polls] { return polls->fetch_add(1) >= 15; };
  StreamResult r = StreamScenario(cfg).run();

  EXPECT_TRUE(r.graceful_stop);
  EXPECT_FALSE(r.aborted);
  EXPECT_FALSE(r.interrupted);
  EXPECT_LT(r.frames_produced, 4000u);
  TriggerJournal journal(root / "stream.journal");
  EXPECT_TRUE(journal.has_genesis());
}

TEST_F(StreamFixture, WallDeadlineAbortsRun) {
  const fs::path root = make_commons();
  StreamConfig cfg = base_config(root);
  cfg.producer.total_frames = 4000;
  cfg.producer.rate_hz = 400.0;
  cfg.max_wall_seconds = 0.25;
  StreamResult r = StreamScenario(cfg).run();
  EXPECT_TRUE(r.aborted);
  EXPECT_LT(r.frames_produced, 4000u);
}

// ---- TriggerJournal unit coverage ---------------------------------------

TEST(TriggerJournal, LadderIsIdempotentAndReloadsByteExact) {
  const fs::path dir = util::make_temp_dir("a4nn-journal");
  const fs::path file = dir / "stream.journal";
  {
    TriggerJournal j(file, /*durable=*/false);
    EXPECT_FALSE(j.has_genesis());
    EXPECT_EQ(j.next_action_id(), 0u);
    j.write_genesis(5, 2);
    j.write_genesis(9, 9);  // no-op: genesis is pinned once
    EXPECT_EQ(j.genesis_model_id(), 5);
    EXPECT_EQ(j.genesis_epoch(), 2u);

    EXPECT_TRUE(j.fire(0, 3));
    EXPECT_FALSE(j.fire(0, 3));  // exactly-once
    EXPECT_TRUE(j.ack(0));
    EXPECT_FALSE(j.ack(0));
    EXPECT_TRUE(j.complete(0, 900000, 4));
    EXPECT_FALSE(j.complete(0, 900000, 4));
    EXPECT_FALSE(j.ack(0));  // no backwards transitions either
    EXPECT_TRUE(j.fire(1, 9));
    EXPECT_EQ(j.next_action_id(), 2u);
    EXPECT_THROW(j.ack(7), std::runtime_error);
  }
  TriggerJournal reread(file);
  EXPECT_TRUE(reread.has_genesis());
  EXPECT_EQ(reread.genesis_model_id(), 5);
  const auto actions = reread.actions();
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_EQ(actions.at(0).state, ActionState::kCompleted);
  EXPECT_EQ(actions.at(0).window_index, 3u);  // fired window survives reload
  EXPECT_EQ(actions.at(0).champion_model_id, 900000);
  EXPECT_EQ(actions.at(0).champion_epoch, 4u);
  EXPECT_EQ(actions.at(1).state, ActionState::kFired);
  EXPECT_EQ(reread.next_action_id(), 2u);
  EXPECT_EQ(reread.text(), util::read_file(file));
  fs::remove_all(dir);
}

TEST(TriggerJournal, TornTailIsDroppedAndRepairedOnDisk) {
  const fs::path dir = util::make_temp_dir("a4nn-journal");
  const fs::path file = dir / "stream.journal";
  std::string intact;
  {
    TriggerJournal j(file, /*durable=*/false);
    j.write_genesis(5, 2);
    j.fire(0, 3);
    intact = j.text();
  }
  // A power cut mid-append: a bad-CRC line and an unterminated tail.
  {
    std::ofstream out(file, std::ios::binary | std::ios::app);
    out << "deadbeef {\"action\":1,\"state\":\"fired\",\"window\":4}\n";
    out << "00000000 {\"action\":2,\"sta";
  }
  TriggerJournal j(file, /*durable=*/false);
  EXPECT_EQ(j.torn_lines(), 2u);
  EXPECT_EQ(j.actions().size(), 1u);
  EXPECT_EQ(j.next_action_id(), 1u);
  EXPECT_EQ(j.text(), intact);
  // The constructor rewrote the file without the torn tail.
  EXPECT_EQ(util::read_file(file), intact);
  fs::remove_all(dir);
}

TEST(TriggerJournal, AppendLimitKillsBeforeTheWrite) {
  const fs::path dir = util::make_temp_dir("a4nn-journal");
  const fs::path file = dir / "stream.journal";
  TriggerJournal j(file, /*durable=*/false);
  j.set_append_limit(2);
  j.write_genesis(5, 2);
  EXPECT_TRUE(j.fire(0, 1));
  EXPECT_THROW(j.ack(0), StreamInterrupted);
  // The limit fires BEFORE the write: disk and memory agree, and the
  // action is still (durably) in the fired state for resume to pick up.
  EXPECT_EQ(count_lines(util::read_file(file)), 2u);
  TriggerJournal reread(file);
  EXPECT_EQ(reread.actions().at(0).state, ActionState::kFired);
  fs::remove_all(dir);
}

// ---- DriftMonitor unit coverage -----------------------------------------

/// Feed one window of `window_frames` observations with the given number
/// of correct predictions; returns the closed window.
WindowStats feed_window(DriftMonitor& m, std::size_t correct) {
  const std::size_t frames = m.config().window_frames;
  std::optional<WindowStats> closed;
  for (std::size_t i = 0; i < frames; ++i) {
    const std::int64_t truth = static_cast<std::int64_t>(i % 2);
    const std::int64_t predicted = i < correct ? truth : 1 - truth;
    closed = m.observe(predicted, truth, 1.0);
  }
  EXPECT_TRUE(closed.has_value());
  return *closed;
}

DriftConfig small_drift() {
  DriftConfig cfg;
  cfg.window_frames = 4;
  cfg.fire_below = 50.0;
  cfg.rearm_above = 75.0;
  cfg.sustain_windows = 2;
  cfg.cooldown_windows = 1;
  cfg.num_classes = 2;
  return cfg;
}

TEST(DriftMonitor, FiresAfterSustainedBadWindowsThenCoolsDown) {
  DriftMonitor m(small_drift());
  EXPECT_FALSE(feed_window(m, 4).fired);  // 100%: healthy
  EXPECT_FALSE(feed_window(m, 0).fired);  // bad streak 1 of 2
  EXPECT_TRUE(feed_window(m, 0).fired);   // sustained: fire
  EXPECT_EQ(m.fires(), 1u);
  EXPECT_FALSE(feed_window(m, 0).fired);  // cooldown window: breaker open
  EXPECT_FALSE(feed_window(m, 0).fired);  // streak restarts at 1
  EXPECT_TRUE(feed_window(m, 0).fired);   // second fire
  EXPECT_EQ(m.fires(), 2u);
  EXPECT_EQ(m.windows_closed(), 6u);
  EXPECT_EQ(m.history().size(), 6u);
}

TEST(DriftMonitor, HysteresisBandHoldsTheStreak) {
  DriftMonitor m(small_drift());
  EXPECT_FALSE(feed_window(m, 0).fired);  // 0% < 50: streak 1
  // 50% sits in [fire_below, rearm_above): holds the streak without
  // incrementing it — the champion oscillating around the threshold does
  // not machine-gun the trigger.
  EXPECT_FALSE(feed_window(m, 2).fired);
  EXPECT_EQ(m.bad_streak(), 1u);
  EXPECT_TRUE(feed_window(m, 0).fired);  // streak 2: fire
  // Recovery above rearm_above clears a partial streak.
  DriftMonitor m2(small_drift());
  feed_window(m2, 0);
  EXPECT_FALSE(feed_window(m2, 4).fired);  // 100% >= 75: reset
  EXPECT_EQ(m2.bad_streak(), 0u);
  EXPECT_FALSE(feed_window(m2, 0).fired);  // back to streak 1
  EXPECT_EQ(m2.fires(), 0u);
}

TEST(DriftMonitor, DisarmAndPendingSuppressFiring) {
  DriftMonitor m(small_drift());
  m.disarm_until(2);  // windows 0 and 1 are replay territory
  EXPECT_FALSE(feed_window(m, 0).fired);
  EXPECT_FALSE(feed_window(m, 0).fired);
  EXPECT_EQ(m.bad_streak(), 0u);
  EXPECT_FALSE(feed_window(m, 0).fired);  // window 2: armed, streak 1
  EXPECT_TRUE(feed_window(m, 0).fired);

  DriftMonitor p(small_drift());
  p.set_pending(true);  // a recovery action is in flight
  EXPECT_FALSE(feed_window(p, 0).fired);
  EXPECT_FALSE(feed_window(p, 0).fired);
  EXPECT_FALSE(feed_window(p, 0).fired);
  EXPECT_EQ(p.fires(), 0u);
  p.set_pending(false);
  EXPECT_FALSE(feed_window(p, 0).fired);
  EXPECT_TRUE(feed_window(p, 0).fired);
}

TEST(DriftMonitor, WindowStatsCarryLabelCountsAndLatencyTail) {
  DriftConfig cfg = small_drift();
  cfg.window_frames = 8;
  DriftMonitor m(cfg);
  const WindowStats w = feed_window(m, 8);
  EXPECT_EQ(w.index, 0u);
  EXPECT_EQ(w.frames, 8u);
  EXPECT_EQ(w.correct, 8u);
  EXPECT_DOUBLE_EQ(w.accuracy, 100.0);
  ASSERT_EQ(w.label_counts.size(), 2u);
  EXPECT_EQ(w.label_counts[0] + w.label_counts[1], 8u);
  EXPECT_EQ(w.label_counts[0], 4u);  // alternating truth labels
  EXPECT_GT(w.p99_latency_ms, 0.0);
  // The label histogram is windowed: the next window starts from zero.
  const WindowStats w2 = feed_window(m, 0);
  EXPECT_EQ(w2.label_counts[0] + w2.label_counts[1], 8u);
}

TEST(DriftMonitor, RejectsDegenerateConfigs) {
  DriftConfig bad = small_drift();
  bad.window_frames = 0;
  EXPECT_THROW(DriftMonitor{bad}, std::invalid_argument);
  bad = small_drift();
  bad.sustain_windows = 0;
  EXPECT_THROW(DriftMonitor{bad}, std::invalid_argument);
  bad = small_drift();
  bad.rearm_above = bad.fire_below - 1.0;
  EXPECT_THROW(DriftMonitor{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace a4nn::stream
