// End-to-end artifact integrity: CRC32 + framed file format, manifest
// journal + deep fsck, durable writes, and the crash-point fuzzer — every
// write boundary of a tracked run is killed and restarted, and the final
// Pareto front must be bit-identical to an uninterrupted run.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/a4nn.hpp"
#include "util/checksum.hpp"
#include "util/frame.hpp"
#include "util/fsutil.hpp"

namespace a4nn {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- checksum

TEST(Checksum, Crc32KnownVectors) {
  // The standard CRC-32 check value.
  EXPECT_EQ(util::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(util::crc32(""), 0x00000000u);
  EXPECT_EQ(util::crc32("a"), 0xE8B7BE43u);
}

TEST(Checksum, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    util::Crc32 crc;
    crc.update(data.substr(0, split));
    crc.update(data.substr(split));
    EXPECT_EQ(crc.value(), util::crc32(data)) << "split at " << split;
  }
}

TEST(Checksum, ResetRestartsTheStream) {
  util::Crc32 crc;
  crc.update("garbage");
  crc.reset();
  crc.update("123456789");
  EXPECT_EQ(crc.value(), 0xCBF43926u);
}

// ------------------------------------------------------------------ frame

TEST(Frame, RoundTripsPayload) {
  const std::string payload = R"({"fitness": 97.25, "epochs": 14})";
  const std::string framed = util::frame(payload);
  EXPECT_TRUE(util::is_framed(framed));
  EXPECT_EQ(util::unframe(framed), payload);
  const auto result = util::unframe_or_legacy(framed);
  EXPECT_TRUE(result.was_framed);
  EXPECT_EQ(result.payload, payload);
}

TEST(Frame, EmptyPayloadRoundTrips) {
  EXPECT_EQ(util::unframe(util::frame("")), "");
}

TEST(Frame, LegacyContentPassesThrough) {
  const auto result = util::unframe_or_legacy("{\"legacy\": true}");
  EXPECT_FALSE(result.was_framed);
  EXPECT_EQ(result.payload, "{\"legacy\": true}");
  EXPECT_THROW(util::unframe("{\"legacy\": true}"), util::FrameError);
}

TEST(Frame, EverySingleByteFlipIsDetected) {
  const std::string framed = util::frame(R"({"records": [1, 2, 3]})");
  for (std::size_t i = 0; i < framed.size(); ++i) {
    std::string corrupt = framed;
    // Low-bit flip: always changes the decoded value (unlike e.g. 0x20,
    // which only changes the case of a hex digit in the stored CRC).
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    EXPECT_THROW(util::unframe(corrupt), util::FrameError) << "byte " << i;
  }
}

TEST(Frame, EveryTruncationIsDetected) {
  const std::string framed = util::frame(R"({"weights": [0.5, -1.25]})");
  for (std::size_t len = 0; len < framed.size(); ++len) {
    EXPECT_THROW(util::unframe(framed.substr(0, len)), util::FrameError)
        << "truncated to " << len;
  }
}

TEST(Frame, TrailingGarbageIsDetected) {
  EXPECT_THROW(util::unframe(util::frame("{}") + "x"), util::FrameError);
}

TEST(Frame, UnsupportedVersionRejectedNotLegacy) {
  std::string framed = util::frame("{}");
  // Bump the version digit: A4NNF1 -> A4NNF2.
  framed[5] = '2';
  EXPECT_TRUE(util::is_framed(framed));
  EXPECT_THROW(util::unframe_or_legacy(framed), util::FrameError);
}

// ----------------------------------------------------------------- fsutil

TEST(FsDurability, FsyncModeRoundTrips) {
  const fs::path dir = util::make_temp_dir("a4nn-durable");
  util::write_file(dir / "j.journal", "line\n", util::Durability::kFsync);
  EXPECT_EQ(util::read_file(dir / "j.journal"), "line\n");
  // Overwrite through the same path stays atomic.
  util::write_file(dir / "j.journal", "line\nline2\n",
                   util::Durability::kFsync);
  EXPECT_EQ(util::read_file(dir / "j.journal"), "line\nline2\n");
  fs::remove_all(dir);
}

TEST(FsDurability, ReadFileReportsSizeMismatchOnSpecialFiles) {
  // /proc files stat as 0-byte regular files but stream real content: the
  // size-vs-expected check must refuse to return silently short/long data.
  if (!fs::exists("/proc/self/status")) GTEST_SKIP();
  try {
    util::read_file("/proc/self/status");
    FAIL() << "expected size-mismatch error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("size mismatch"), std::string::npos);
  }
}

TEST(FsDurability, CrashAfterWritesTearsTheArmedWrite) {
  const fs::path dir = util::make_temp_dir("a4nn-crashpoint");
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    util::set_crash_after_writes(2);
    util::write_file(dir / "first.txt", "committed");
    util::write_file(dir / "second.txt", "torn");
    ::_exit(0);  // must never be reached
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 1);
  // Write 1 survived, write 2 died staged-but-uncommitted.
  EXPECT_EQ(util::read_file(dir / "first.txt"), "committed");
  EXPECT_FALSE(fs::exists(dir / "second.txt"));
  bool staged_tmp_left = false;
  for (const auto& f : util::list_files(dir))
    if (f.filename().string().find(".tmp") != std::string::npos)
      staged_tmp_left = true;
  EXPECT_TRUE(staged_tmp_left);
  fs::remove_all(dir);
}

// -------------------------------------------------- framed commons + fsck

orchestrator::TrainerConfig tiny_trainer() {
  orchestrator::TrainerConfig tcfg;
  tcfg.max_epochs = 3;
  tcfg.batch_size = 16;
  tcfg.use_prediction_engine = false;
  return tcfg;
}

/// A small tracked commons with two trained models (snapshots every epoch).
struct FramedCommonsFixture : ::testing::Test {
  void SetUp() override {
    root = util::make_temp_dir("a4nn-integrity");
    xfel::XfelDatasetConfig dcfg;
    dcfg.images_per_class = 24;
    dcfg.detector.pixels = 8;
    dcfg.intensity = xfel::BeamIntensity::kHigh;
    data = xfel::generate_xfel_dataset(dcfg);
    space.input_shape = {1, 8, 8};
    space.stem_channels = 4;

    lineage::LineageTracker tracker({root, 1});
    orchestrator::TrainingLoop loop(data->train, data->validation,
                                    tiny_trainer(), &tracker);
    util::Rng rng(9);
    for (int id = 0; id < 2; ++id) {
      const nas::EvaluationRecord r =
          loop.train_genome(nas::random_genome(3, 4, rng), space, id, 40 + id);
      tracker.record_evaluation(r);
    }
  }
  void TearDown() override { fs::remove_all(root); }

  fs::path record_path(int id) const {
    return root / "models" / lineage::model_dir_name(id) / "record.json";
  }

  fs::path root;
  std::optional<xfel::XfelDataset> data;
  nas::SearchSpaceConfig space;
};

TEST_F(FramedCommonsFixture, TrackerWritesFramedArtifactsAndJournal) {
  const std::string raw = util::read_file(record_path(0));
  EXPECT_TRUE(util::is_framed(raw));
  EXPECT_TRUE(fs::exists(root / lineage::manifest_file_name()));

  lineage::DataCommons commons(root);
  EXPECT_EQ(commons.load_records().size(), 2u);
  EXPECT_EQ(commons.snapshot_epochs(0), (std::vector<std::size_t>{1, 2, 3}));

  lineage::FsckReport report = commons.fsck(lineage::FsckMode::kDeep);
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.integrity.files_verified, 0u);
  EXPECT_EQ(report.integrity.files_verified, report.integrity.journal_entries);
  EXPECT_EQ(report.integrity.crc_mismatches, 0u);
  EXPECT_EQ(report.integrity.legacy_unframed, 0u);
}

TEST_F(FramedCommonsFixture, LegacyUnframedArtifactsStillLoad) {
  // A pre-framing commons: every artifact unframed, no manifest journal —
  // exactly the tree the seed tracker would have left behind.
  lineage::DataCommons commons(root);
  const auto records = commons.load_records();
  ASSERT_EQ(records.size(), 2u);
  fs::remove(root / lineage::manifest_file_name());
  std::size_t artifact_count = 0;
  for (int id = 0; id < 2; ++id) {
    const fs::path dir = root / "models" / lineage::model_dir_name(id);
    for (const auto& file : util::list_files(dir, ".json")) {
      const std::string payload = lineage::read_artifact(file);
      std::ofstream(file, std::ios::binary | std::ios::trunc) << payload;
      ++artifact_count;
    }
  }
  ASSERT_GT(artifact_count, 2u);  // records + snapshots + training states

  const auto reloaded = commons.load_records();
  ASSERT_EQ(reloaded.size(), 2u);
  EXPECT_EQ(reloaded[1].model_id, records[1].model_id);
  EXPECT_DOUBLE_EQ(reloaded[1].fitness, records[1].fitness);
  EXPECT_EQ(commons.snapshot_epochs(0), (std::vector<std::size_t>{1, 2, 3}));

  // Deep fsck accepts legacy files, journals them, and stays green.
  lineage::FsckReport report = commons.fsck(lineage::FsckMode::kDeep);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.integrity.legacy_unframed, artifact_count);
  EXPECT_TRUE(report.integrity.journal_rewritten);
  // Second pass: everything is journaled and verified now.
  lineage::FsckReport second = commons.fsck(lineage::FsckMode::kDeep);
  EXPECT_TRUE(second.clean());
  EXPECT_EQ(second.integrity.files_verified, artifact_count);
  EXPECT_EQ(second.integrity.legacy_unframed, 0u);
}

TEST_F(FramedCommonsFixture, BitFlipInFramedRecordIsQuarantined) {
  std::string raw = util::read_file(record_path(0));
  raw[raw.size() / 2] = static_cast<char>(raw[raw.size() / 2] ^ 0x01);
  std::ofstream(record_path(0), std::ios::binary | std::ios::trunc) << raw;

  lineage::DataCommons commons(root);
  lineage::FsckReport report = commons.fsck(lineage::FsckMode::kDeep);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.files_quarantined, 1u);
  EXPECT_FALSE(fs::exists(record_path(0)));
  EXPECT_TRUE(fs::exists(root / "quarantine" / "models" /
                         lineage::model_dir_name(0) / "record.json"));
  // The survivor loads; the corrupted record can never be replayed.
  EXPECT_EQ(commons.load_records().size(), 1u);
  EXPECT_TRUE(commons.fsck(lineage::FsckMode::kDeep).clean());
}

TEST_F(FramedCommonsFixture, TamperedButWellFramedRecordFailsDeepFsckOnly) {
  // Re-frame modified content: the frame's own CRC is valid, the JSON
  // parses, but the bytes no longer match the manifest journal — only the
  // deep pass can catch this.
  lineage::DataCommons commons(root);
  auto records = commons.load_records();
  records[0].fitness += 1.0;
  std::ofstream(record_path(0), std::ios::binary | std::ios::trunc)
      << util::frame(records[0].to_json().dump(2));

  EXPECT_TRUE(commons.fsck(lineage::FsckMode::kQuick).clean());
  lineage::FsckReport deep = commons.fsck(lineage::FsckMode::kDeep);
  EXPECT_FALSE(deep.clean());
  EXPECT_EQ(deep.integrity.crc_mismatches, 1u);
  EXPECT_FALSE(fs::exists(record_path(0)));
  EXPECT_TRUE(commons.fsck(lineage::FsckMode::kDeep).clean());
}

TEST_F(FramedCommonsFixture, TruncatedCheckpointMidPayloadIsQuarantined) {
  const fs::path ckpt = root / "models" / lineage::model_dir_name(1) /
                        lineage::snapshot_file_name(2);
  ASSERT_TRUE(fs::exists(ckpt));
  fs::resize_file(ckpt, fs::file_size(ckpt) / 2);

  lineage::DataCommons commons(root);
  lineage::FsckReport report = commons.fsck(lineage::FsckMode::kDeep);
  EXPECT_FALSE(report.clean());
  EXPECT_GE(report.files_quarantined, 1u);
  EXPECT_FALSE(fs::exists(ckpt));
  EXPECT_EQ(commons.snapshot_epochs(1), (std::vector<std::size_t>{1, 3}));
  EXPECT_TRUE(commons.fsck(lineage::FsckMode::kDeep).clean());
}

TEST_F(FramedCommonsFixture, TruncatedJournalMidLineIsRepaired) {
  const fs::path journal = root / lineage::manifest_file_name();
  ASSERT_TRUE(fs::exists(journal));
  fs::resize_file(journal, fs::file_size(journal) - 5);

  lineage::DataCommons commons(root);
  lineage::FsckReport report = commons.fsck(lineage::FsckMode::kDeep);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.integrity.journal_torn_lines, 1u);
  // The artifact whose line was torn is still intact on disk: it must be
  // adopted back, never quarantined.
  EXPECT_EQ(report.files_quarantined, 0u);
  EXPECT_EQ(report.integrity.unjournaled_adopted, 1u);
  EXPECT_TRUE(report.integrity.journal_rewritten);
  EXPECT_TRUE(commons.fsck(lineage::FsckMode::kDeep).clean());
}

TEST_F(FramedCommonsFixture, MissingJournaledArtifactIsReportedAndPruned) {
  fs::remove(record_path(1));
  lineage::DataCommons commons(root);
  lineage::FsckReport report = commons.fsck(lineage::FsckMode::kDeep);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.integrity.missing_files, 1u);
  EXPECT_TRUE(commons.fsck(lineage::FsckMode::kDeep).clean());
}

TEST_F(FramedCommonsFixture, StrayModelDirectoryCannotAliasModelZero) {
  // Regression for the bare-atoi parse: "model_backup" atoi'd to 0 and
  // aliased model 0. It must be skipped instead.
  fs::create_directories(root / "models" / "model_backup");
  fs::create_directories(root / "models" / "gen_backup");
  lineage::DataCommons commons(root);
  EXPECT_EQ(commons.model_ids(), (std::vector<int>{0, 1}));
  EXPECT_EQ(commons.load_records().size(), 2u);
}

TEST_F(FramedCommonsFixture, ResumeFallsBackToNewestIntactState) {
  // Corrupt the newest (epoch 3) training state: resume must fall back to
  // epoch 2 rather than trusting a CRC-failing file or giving up.
  const fs::path dir = root / "models" / lineage::model_dir_name(0);
  const fs::path newest = dir / lineage::training_state_file_name(3);
  ASSERT_TRUE(fs::exists(newest));
  std::string raw = util::read_file(newest);
  raw[raw.size() - 3] = static_cast<char>(raw[raw.size() - 3] ^ 0x04);
  std::ofstream(newest, std::ios::binary | std::ios::trunc) << raw;
  fs::remove(dir / "record.json");

  // Recreate the genome stream used by the fixture: model 0's genome.
  util::Rng rng(9);
  const nas::Genome genome = nas::random_genome(3, 4, rng);

  orchestrator::TrainerConfig tcfg = tiny_trainer();
  tcfg.resume_partial = true;
  lineage::LineageTracker tracker({root, 1});
  orchestrator::TrainingLoop loop(data->train, data->validation, tcfg,
                                  &tracker);
  const nas::EvaluationRecord record =
      loop.train_genome(genome, space, 0, 40);
  EXPECT_EQ(record.resumed_from_epoch, 2u);
  EXPECT_EQ(loop.resumed_epochs(), 2u);
  EXPECT_EQ(record.epochs_trained, 3u);
}

// ------------------------------------------------- crash-point fuzzer sweep

core::WorkflowConfig sweep_config() {
  core::WorkflowConfig cfg;
  cfg.dataset.images_per_class = 24;
  cfg.dataset.detector.pixels = 8;
  cfg.dataset.intensity = xfel::BeamIntensity::kHigh;
  cfg.nas.population_size = 2;
  cfg.nas.offspring_per_generation = 2;
  cfg.nas.generations = 2;
  cfg.nas.max_epochs = 4;
  cfg.nas.space.input_shape = {1, 8, 8};
  cfg.nas.space.stem_channels = 4;
  cfg.trainer.max_epochs = 4;
  // Engine off: every model trains all 4 epochs, so every run writes the
  // full checkpoint/state/record trail the sweep is meant to tear.
  cfg.trainer.use_prediction_engine = false;
  cfg.cluster.num_gpus = 2;
  return cfg;
}

// The acceptance test of the integrity layer: kill the workflow at EVERY
// write boundary k of a tracked fault-free run (each kill leaves writes
// 1..k-1 committed and write k torn), restart from the commons, and demand
// (a) the final Pareto front is bit-identical to an uninterrupted run and
// (b) a deep fsck afterwards finds zero surviving inconsistencies.
// A4NN_CRASH_SWEEP_STRIDE=n bounds the sweep (e.g. for sanitizer CI jobs).
TEST(ArtifactIntegrity, CrashPointSweepReproducesParetoBitExact) {
  const core::WorkflowConfig base = sweep_config();
  core::A4nnWorkflow reference(base);
  const core::WorkflowResult ref = reference.run();
  ASSERT_FALSE(ref.search.pareto.empty());

  // Probe run: same config with lineage enabled, counting write boundaries.
  std::uint64_t total_writes = 0;
  {
    const fs::path probe = util::make_temp_dir("a4nn_crash_probe");
    core::WorkflowConfig cfg = base;
    cfg.lineage = lineage::TrackerConfig{probe, 2};
    const std::uint64_t before = util::write_op_count();
    core::A4nnWorkflow tracked(cfg, reference.dataset());
    const core::WorkflowResult full = tracked.run();
    total_writes = util::write_op_count() - before;
    ASSERT_EQ(full.search.pareto, ref.search.pareto);
    fs::remove_all(probe);
  }
  ASSERT_GT(total_writes, 8u);

  std::uint64_t stride = 1;
  if (const char* env = std::getenv("A4NN_CRASH_SWEEP_STRIDE"))
    stride = std::max<std::uint64_t>(1, std::strtoull(env, nullptr, 10));

  for (std::uint64_t k = 1; k <= total_writes; k += stride) {
    const fs::path commons = util::make_temp_dir("a4nn_crash_sweep");

    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      core::WorkflowConfig cfg = base;
      cfg.lineage = lineage::TrackerConfig{commons, 2};
      util::set_crash_after_writes(k);
      try {
        core::A4nnWorkflow doomed(cfg, reference.dataset());
        doomed.run();
      } catch (...) {
      }
      ::_exit(42);  // unreachable: the run crosses >= k write boundaries
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "k=" << k;
    ASSERT_EQ(WEXITSTATUS(status), 1) << "k=" << k;

    // Restart after the kill: resume must reproduce the reference exactly.
    core::WorkflowConfig cfg = base;
    cfg.lineage = lineage::TrackerConfig{commons, 2};
    cfg.resume_from_commons = true;
    core::A4nnWorkflow resumed(cfg, reference.dataset());
    const core::WorkflowResult res = resumed.run();

    ASSERT_EQ(res.search.history.size(), ref.search.history.size())
        << "k=" << k;
    for (std::size_t i = 0; i < ref.search.history.size(); ++i) {
      const auto& a = ref.search.history[i];
      const auto& b = res.search.history[i];
      ASSERT_EQ(a.genome.key(), b.genome.key()) << "k=" << k << " model " << i;
      ASSERT_DOUBLE_EQ(a.fitness, b.fitness) << "k=" << k << " model " << i;
      ASSERT_DOUBLE_EQ(a.measured_fitness, b.measured_fitness)
          << "k=" << k << " model " << i;
      ASSERT_EQ(a.epochs_trained, b.epochs_trained)
          << "k=" << k << " model " << i;
      ASSERT_EQ(a.flops, b.flops) << "k=" << k << " model " << i;
    }
    ASSERT_EQ(ref.search.pareto, res.search.pareto) << "k=" << k;

    // Zero surviving inconsistencies after recovery.
    lineage::DataCommons inspect(commons);
    const lineage::FsckReport post = inspect.fsck(lineage::FsckMode::kDeep);
    EXPECT_TRUE(post.clean())
        << "k=" << k << ": crc_mismatches=" << post.integrity.crc_mismatches
        << " missing=" << post.integrity.missing_files
        << " torn=" << post.integrity.journal_torn_lines
        << " adopted=" << post.integrity.unjournaled_adopted
        << " quarantined=" << post.files_quarantined;

    fs::remove_all(commons);
  }
}

}  // namespace
}  // namespace a4nn
