// Model/dataset/optimizer behaviour: training converges on a separable
// synthetic problem, checkpoints restore exactly, and the batch machinery
// partitions epochs correctly.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "nn/factory.hpp"
#include "nn/layers.hpp"
#include "nn/model.hpp"

namespace a4nn::nn {
namespace {

/// Two-class 1x4x4 images: class 0 bright in the left half, class 1 bright
/// in the right half, plus noise — trivially separable by a small CNN.
Dataset make_separable(std::size_t per_class, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset data(1, 4, 4);
  std::vector<float> img(16);
  for (std::size_t i = 0; i < per_class; ++i) {
    for (std::int64_t label = 0; label < 2; ++label) {
      for (std::size_t y = 0; y < 4; ++y) {
        for (std::size_t x = 0; x < 4; ++x) {
          const bool bright = label == 0 ? x < 2 : x >= 2;
          img[y * 4 + x] =
              static_cast<float>((bright ? 1.0 : 0.0) + rng.normal(0.0, 0.1));
        }
      }
      data.add_sample(img, label);
    }
  }
  return data;
}

std::unique_ptr<Sequential> tiny_trunk(util::Rng& rng) {
  auto trunk = std::make_unique<Sequential>();
  trunk->append(std::make_unique<Conv2d>(1, 4, 3, 1, 1, rng));
  trunk->append(std::make_unique<ReLU>());
  trunk->append(std::make_unique<GlobalAvgPool>());
  trunk->append(std::make_unique<Linear>(4, 2, rng));
  return trunk;
}

TEST(Dataset, AddAndAccess) {
  Dataset d(1, 2, 2);
  d.add_sample(std::vector<float>{1, 2, 3, 4}, 0);
  d.add_sample(std::vector<float>{5, 6, 7, 8}, 1);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.image_numel(), 4u);
  EXPECT_EQ(d.image(1)[3], 8.0f);
  EXPECT_EQ(d.label(1), 1);
  EXPECT_EQ(d.num_classes(), 2u);
  EXPECT_THROW(d.add_sample(std::vector<float>{1.0f}, 0),
               std::invalid_argument);
  EXPECT_THROW(d.add_sample(std::vector<float>{1, 2, 3, 4}, -1),
               std::invalid_argument);
  EXPECT_THROW(d.image(5), std::out_of_range);
}

TEST(Dataset, GatherBuildsBatch) {
  Dataset d = make_separable(4, 1);
  std::vector<std::size_t> idx{0, 3, 5};
  const auto batch = d.gather(idx);
  EXPECT_EQ(batch.images.shape(), (tensor::Shape{3, 1, 4, 4}));
  EXPECT_EQ(batch.labels.size(), 3u);
  EXPECT_EQ(batch.labels[1], d.label(3));
  EXPECT_EQ(batch.images[16 + 5], d.image(3)[5]);
}

TEST(Dataset, SplitPartitionsWithoutLoss) {
  Dataset d = make_separable(25, 2);  // 50 samples
  util::Rng rng(3);
  const auto [train, test] = d.split(0.8, rng);
  EXPECT_EQ(train.size(), 40u);
  EXPECT_EQ(test.size(), 10u);
  EXPECT_THROW(d.split(1.5, rng), std::invalid_argument);
}

TEST(BatchIterator, CoversEveryIndexOnce) {
  util::Rng rng(4);
  BatchIterator it(10, 3, rng);
  std::multiset<std::size_t> seen;
  std::size_t batches = 0;
  for (auto b = it.next(); !b.empty(); b = it.next()) {
    seen.insert(b.begin(), b.end());
    ++batches;
  }
  EXPECT_EQ(batches, 4u);  // 3+3+3+1
  EXPECT_EQ(seen.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(BatchIterator, NoShuffleKeepsOrder) {
  util::Rng rng(5);
  BatchIterator it(5, 2, rng, /*shuffle=*/false);
  EXPECT_EQ(it.next(), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(it.next(), (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(it.next(), (std::vector<std::size_t>{4}));
  EXPECT_TRUE(it.next().empty());
}

TEST(Model, RejectsBadTrunk) {
  util::Rng rng(6);
  auto no_head = std::make_unique<Sequential>();
  no_head->append(std::make_unique<Conv2d>(1, 4, 3, 1, 1, rng));
  EXPECT_THROW(Model(std::move(no_head), tensor::Shape{1, 4, 4}),
               std::invalid_argument);
  EXPECT_THROW(Model(nullptr, tensor::Shape{1, 4, 4}), std::invalid_argument);
}

TEST(Model, LearnsSeparableProblem) {
  const Dataset train = make_separable(40, 7);
  const Dataset val = make_separable(10, 8);
  util::Rng rng(9);
  Model model(tiny_trunk(rng), {1, 4, 4});
  Sgd opt(0.1, 0.9);
  double first_loss = 0.0, last_loss = 0.0;
  for (int e = 0; e < 12; ++e) {
    const EpochMetrics m = model.train_epoch(train, 16, opt, rng);
    if (e == 0) first_loss = m.loss;
    last_loss = m.loss;
  }
  EXPECT_LT(last_loss, first_loss);
  const EpochMetrics val_metrics = model.evaluate(val);
  EXPECT_GT(val_metrics.accuracy, 95.0);
}

TEST(Model, AdamAlsoConverges) {
  const Dataset train = make_separable(40, 10);
  util::Rng rng(11);
  Model model(tiny_trunk(rng), {1, 4, 4});
  Adam opt(0.01);
  for (int e = 0; e < 12; ++e) model.train_epoch(train, 16, opt, rng);
  EXPECT_GT(model.evaluate(train).accuracy, 95.0);
}

TEST(Model, FlopsAndParameterCount) {
  util::Rng rng(12);
  Model model(tiny_trunk(rng), {1, 4, 4});
  EXPECT_GT(model.flops_per_image(), 0u);
  // conv: 4*(1*9)+4 bias; linear: 2*4+2 bias.
  EXPECT_EQ(model.parameter_count(), 36u + 4u + 8u + 2u);
}

TEST(Model, CheckpointRestoresExactPredictions) {
  const Dataset train = make_separable(20, 13);
  util::Rng rng(14);
  Model model(tiny_trunk(rng), {1, 4, 4});
  Sgd opt(0.05);
  for (int e = 0; e < 3; ++e) model.train_epoch(train, 8, opt, rng);

  const util::Json ckpt = model.checkpoint();
  // Round-trip through text like the lineage tracker does.
  Model restored = Model::from_checkpoint(util::Json::parse(ckpt.dump()));

  const auto batch = train.gather(std::vector<std::size_t>{0, 1, 2});
  const Tensor a = model.predict(batch.images);
  const Tensor b = restored.predict(batch.images);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(Model, EvaluateRejectsEmptyDataset) {
  util::Rng rng(15);
  Model model(tiny_trunk(rng), {1, 4, 4});
  Dataset empty(1, 4, 4);
  EXPECT_THROW(model.evaluate(empty), std::invalid_argument);
  Sgd opt(0.1);
  EXPECT_THROW(model.train_epoch(empty, 8, opt, rng), std::invalid_argument);
}

TEST(Optimizer, SgdMomentumAcceleratesAlongConstantGradient) {
  Tensor w({1}, {0.0f});
  Tensor g({1}, {1.0f});
  std::vector<ParamSlot> slots{{"w", &w, &g}};
  Sgd opt(0.1, 0.9);
  opt.step(slots);
  const float first_step = -w[0];
  const float w_before = w[0];
  opt.step(slots);
  const float second_step = -(w[0] - w_before);
  EXPECT_GT(second_step, first_step);  // velocity accumulates
  EXPECT_THROW(Sgd(0.0), std::invalid_argument);
}

TEST(Optimizer, AdamFirstStepIsLrSized) {
  Tensor w({1}, {0.0f});
  Tensor g({1}, {0.5f});
  std::vector<ParamSlot> slots{{"w", &w, &g}};
  Adam opt(0.01);
  opt.step(slots);
  // With bias correction the first Adam step is ~lr * sign(grad).
  EXPECT_NEAR(w[0], -0.01f, 1e-4f);
}

TEST(Optimizer, WeightDecayShrinksWeights) {
  Tensor w({1}, {10.0f});
  Tensor g({1}, {0.0f});
  std::vector<ParamSlot> slots{{"w", &w, &g}};
  Sgd opt(0.1, 0.0, 0.1);
  opt.step(slots);
  EXPECT_LT(w[0], 10.0f);
}

}  // namespace
}  // namespace a4nn::nn
