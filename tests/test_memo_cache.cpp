// Differential-equivalence harness for the search-time fitness memo-cache
// (nas/memo.hpp), weight inheritance, and the tabular NAS mode.
//
// The contract under test: a memo-on run (kOn) of any configuration is
// bit-identical — Pareto front, commons journal, lineage facts — to a
// memo-cold run (kCold) of the same configuration, where "cold" uses the
// same genome-keyed seeds but never reuses a result. Only wall-clock
// fields (wall_seconds, engine_overhead_seconds host time) may differ.
// The same identity must survive a kill + --resume and a distributed
// 2-worker cluster run.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "cluster/master.hpp"
#include "cluster/protocol.hpp"
#include "cluster/worker.hpp"
#include "core/a4nn.hpp"
#include "nas/table.hpp"
#include "util/frame.hpp"
#include "util/fsutil.hpp"

namespace a4nn::core {
namespace {

namespace fs = std::filesystem;

/// Duplicate-heavy tiny search: 36 evaluations drawn from a 16-genome
/// space, so revisits are guaranteed and the memo path actually fires.
WorkflowConfig memo_config(nas::MemoMode mode) {
  WorkflowConfig cfg;
  cfg.dataset.images_per_class = 12;
  cfg.dataset.detector.pixels = 8;
  cfg.dataset.intensity = xfel::BeamIntensity::kHigh;
  cfg.nas.population_size = 6;
  cfg.nas.offspring_per_generation = 6;
  cfg.nas.generations = 4;
  cfg.nas.max_epochs = 6;
  cfg.nas.space.phase_count = 2;
  cfg.nas.space.nodes_per_phase = 2;
  cfg.nas.space.input_shape = {1, 8, 8};
  cfg.nas.space.stem_channels = 4;
  cfg.nas.allow_duplicates = true;
  cfg.trainer.max_epochs = 6;
  cfg.trainer.engine.e_pred = 6.0;
  cfg.memo = mode;
  cfg.seed = 11;
  return cfg;
}

/// A record minus its host-time fields. Everything else — fitness curves,
/// virtual seconds, device placement, genome, provenance — must be
/// bit-identical across equivalent runs.
std::string canonical(const nas::EvaluationRecord& r) {
  util::Json j = r.to_json();
  j["wall_seconds"] = 0.0;
  j["engine_overhead_seconds"] = 0.0;
  return j.dump();
}

void expect_histories_identical(
    const std::vector<nas::EvaluationRecord>& a,
    const std::vector<nas::EvaluationRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(canonical(a[i]), canonical(b[i])) << "record " << i;
}

std::string normalized_search_json(const fs::path& commons) {
  util::Json j = util::Json::parse(
      util::unframe(util::read_file(commons / "search.json")));
  j["memo"] = std::string("normalized");
  return j.dump();
}

}  // namespace

// ---------------------------------------------------------------------------
// The core differential: cold vs on, full-run bit-identity.
// ---------------------------------------------------------------------------

TEST(MemoCache, ColdAndOnRunsAreBitIdentical) {
  const fs::path cold_root = util::make_temp_dir("a4nn_memo_cold");
  const fs::path on_root = util::make_temp_dir("a4nn_memo_on");

  WorkflowConfig cold_cfg = memo_config(nas::MemoMode::kCold);
  cold_cfg.lineage = lineage::TrackerConfig{cold_root, 0};
  A4nnWorkflow cold_flow(cold_cfg);
  const WorkflowResult cold = cold_flow.run();
  EXPECT_EQ(cold.summary.memo_hits, 0u);

  WorkflowConfig on_cfg = memo_config(nas::MemoMode::kOn);
  on_cfg.lineage = lineage::TrackerConfig{on_root, 0};
  A4nnWorkflow on_flow(on_cfg, cold_flow.dataset());
  const WorkflowResult on = on_flow.run();
  EXPECT_GT(on.summary.memo_hits, 0u);

  // In-memory history, selection outcome, and Pareto front.
  expect_histories_identical(cold.search.history, on.search.history);
  EXPECT_EQ(cold.search.pareto, on.search.pareto);
  EXPECT_EQ(cold.search.final_population, on.search.final_population);

  // Commons journals: every persisted record trail, byte-for-byte after
  // stripping host time.
  lineage::DataCommons cold_commons(cold_root);
  lineage::DataCommons on_commons(on_root);
  const auto cold_records = cold_commons.load_records();
  const auto on_records = on_commons.load_records();
  expect_histories_identical(cold_records, on_records);

  // The journaled memo index is built from history alone, so the two
  // modes must agree on its exact bytes.
  EXPECT_EQ(util::read_file(cold_root / "memo_index.json"),
            util::read_file(on_root / "memo_index.json"));

  // search.json differs only in the "memo" mode field.
  EXPECT_EQ(normalized_search_json(cold_root),
            normalized_search_json(on_root));

  // Both commons pass a deep fsck (the journaled memo_index.json is a
  // tracked artifact, not an orphan).
  EXPECT_TRUE(cold_commons.fsck(lineage::FsckMode::kDeep).clean());
  EXPECT_TRUE(on_commons.fsck(lineage::FsckMode::kDeep).clean());

  fs::remove_all(cold_root);
  fs::remove_all(on_root);
}

// ---------------------------------------------------------------------------
// The same differential with weight inheritance composed in: duplicates
// bred from different parents must warm-start (never replay a record that
// was fine-tuned from some other ancestor), so cold and on stay
// bit-identical with both features enabled.
// ---------------------------------------------------------------------------

TEST(MemoCache, ColdAndOnRunsAreBitIdenticalWithInheritance) {
  const fs::path cold_root = util::make_temp_dir("a4nn_memo_inh_cold");
  const fs::path on_root = util::make_temp_dir("a4nn_memo_inh_on");

  WorkflowConfig cold_cfg = memo_config(nas::MemoMode::kCold);
  cold_cfg.trainer.inherit_weights = true;
  cold_cfg.trainer.inherit_epoch_fraction = 0.5;
  cold_cfg.lineage = lineage::TrackerConfig{cold_root, 1};  // snapshots on
  A4nnWorkflow cold_flow(cold_cfg);
  const WorkflowResult cold = cold_flow.run();
  EXPECT_EQ(cold.summary.memo_hits, 0u);
  ASSERT_GT(cold.summary.inherited_starts, 0u);  // warm starts actually fired

  WorkflowConfig on_cfg = memo_config(nas::MemoMode::kOn);
  on_cfg.trainer.inherit_weights = true;
  on_cfg.trainer.inherit_epoch_fraction = 0.5;
  on_cfg.lineage = lineage::TrackerConfig{on_root, 1};
  A4nnWorkflow on_flow(on_cfg, cold_flow.dataset());
  const WorkflowResult on = on_flow.run();

  expect_histories_identical(cold.search.history, on.search.history);
  EXPECT_EQ(cold.search.pareto, on.search.pareto);
  EXPECT_EQ(cold.search.final_population, on.search.final_population);
  EXPECT_EQ(cold.summary.inherited_starts, on.summary.inherited_starts);
  EXPECT_EQ(util::read_file(cold_root / "memo_index.json"),
            util::read_file(on_root / "memo_index.json"));
  EXPECT_EQ(normalized_search_json(cold_root),
            normalized_search_json(on_root));

  // RunSummary.inherited_starts counts warm starts paid this run: it must
  // match both the history's fresh inherited records and the training
  // loop's own train.inherited_starts counter (no double count on replays).
  for (const WorkflowResult* r : {&cold, &on}) {
    std::size_t fresh_inherited = 0;
    for (const auto& rec : r->search.history)
      if (rec.inherited_from_model >= 0 && !rec.replayed) ++fresh_inherited;
    EXPECT_EQ(r->summary.inherited_starts, fresh_inherited);
    EXPECT_DOUBLE_EQ(r->summary.metrics.at("counters").number_or(
                         "train.inherited_starts", 0.0),
                     static_cast<double>(fresh_inherited));
  }

  fs::remove_all(cold_root);
  fs::remove_all(on_root);
}

// ---------------------------------------------------------------------------
// Kill + resume: a memo-on run killed mid-flight and resumed converges to
// the exact uninterrupted result, memo index included.
// ---------------------------------------------------------------------------

TEST(MemoCache, KillAndResumeConvergesToUninterruptedRun) {
  const fs::path ref_root = util::make_temp_dir("a4nn_memo_ref");
  WorkflowConfig ref_cfg = memo_config(nas::MemoMode::kOn);
  ref_cfg.lineage = lineage::TrackerConfig{ref_root, 0};
  A4nnWorkflow reference(ref_cfg);
  const WorkflowResult ref = reference.run();

  const fs::path crash_root = util::make_temp_dir("a4nn_memo_crash");
  WorkflowConfig crash_cfg = memo_config(nas::MemoMode::kOn);
  crash_cfg.lineage = lineage::TrackerConfig{crash_root, 0};
  crash_cfg.crash_after_evaluations = 3;
  A4nnWorkflow crashing(crash_cfg, reference.dataset());
  EXPECT_THROW(crashing.run(), orchestrator::WorkflowInterrupted);

  WorkflowConfig resume_cfg = memo_config(nas::MemoMode::kOn);
  resume_cfg.lineage = lineage::TrackerConfig{crash_root, 0};
  resume_cfg.resume_from_commons = true;
  A4nnWorkflow resumed(resume_cfg, reference.dataset());
  const WorkflowResult res = resumed.run();
  EXPECT_GT(res.summary.resumed_evaluations, 0u);

  expect_histories_identical(ref.search.history, res.search.history);
  EXPECT_EQ(ref.search.pareto, res.search.pareto);
  EXPECT_EQ(util::read_file(ref_root / "memo_index.json"),
            util::read_file(crash_root / "memo_index.json"));

  fs::remove_all(ref_root);
  fs::remove_all(crash_root);
}

// ---------------------------------------------------------------------------
// Cluster re-dispatch: a 2-worker distributed memo-on run equals the solo
// run. Genome-keyed seeds ride the job payload, so workers — who have no
// memo of their own — still train cache-equivalent results.
// ---------------------------------------------------------------------------

TEST(MemoCache, TwoWorkerClusterRunMatchesSoloRun) {
  WorkflowConfig solo_cfg = memo_config(nas::MemoMode::kOn);
  A4nnWorkflow solo_flow(solo_cfg);
  const WorkflowResult solo = solo_flow.run();

  cluster::MasterOptions mopts;
  mopts.port = 0;
  mopts.config_crc = 0xA4;
  mopts.heartbeat_interval_ms = 50;
  cluster::Master master(mopts);

  WorkflowConfig dist_cfg = memo_config(nas::MemoMode::kOn);
  dist_cfg.trainer.cost = dist_cfg.cluster.cost;
  const nas::SearchSpaceConfig wspace = [&] {
    nas::SearchSpaceConfig s = dist_cfg.nas.space;
    s.classes = solo_flow.dataset().train.num_classes();
    return s;
  }();
  orchestrator::TrainingLoop worker_loop(solo_flow.dataset().train,
                                         solo_flow.dataset().validation,
                                         dist_cfg.trainer);

  auto serve = [&](const cluster::JobRequest& req) {
    const nas::Genome genome = nas::Genome::from_json(req.genome);
    nas::EvaluationRecord record = worker_loop.train_genome(
        genome, wspace, req.model_id, cluster::hex_to_u64(req.seed_hex));
    record.generation = req.generation;
    return record.to_json();
  };

  std::vector<cluster::Worker*> workers;
  std::vector<std::thread> fleet;
  std::vector<std::unique_ptr<cluster::Worker>> owned;
  for (int w = 0; w < 2; ++w) {
    cluster::WorkerOptions wopts;
    wopts.port = master.port();
    wopts.name = "memo-w" + std::to_string(w);
    wopts.threads = 1;
    wopts.config_crc = 0xA4;
    owned.push_back(std::make_unique<cluster::Worker>(wopts));
    fleet.emplace_back([&, w] { owned[w]->run(serve); });
  }
  ASSERT_TRUE(master.wait_for_workers(2, 5000));

  dist_cfg.cluster.remote = &master;
  A4nnWorkflow dist_flow(dist_cfg, solo_flow.dataset());
  const WorkflowResult dist = dist_flow.run();
  master.stop();
  for (auto& t : fleet) t.join();

  EXPECT_GT(dist.summary.cluster.remote_jobs, 0u);
  EXPECT_EQ(dist.summary.memo_hits, solo.summary.memo_hits);
  expect_histories_identical(solo.search.history, dist.search.history);
  EXPECT_EQ(solo.search.pareto, dist.search.pareto);
}

// ---------------------------------------------------------------------------
// Same-generation duplicate coalescing: a coalesce-on run trains each
// distinct genome once per generation and copies the leader's record into
// every duplicate slot. Genome-keyed seeds make that copy bit-equal to the
// training the duplicate would have run, so the whole run — history,
// Pareto front, commons journal, memo index — matches the coalesce-off
// run exactly. Only search.json differs (the "coalesce" config key), so
// that file is deliberately NOT compared here.
// ---------------------------------------------------------------------------

TEST(MemoCache, CoalescedRunIsBitIdenticalToSequentialRun) {
  const fs::path off_root = util::make_temp_dir("a4nn_coalesce_off");
  const fs::path on_root = util::make_temp_dir("a4nn_coalesce_on");

  WorkflowConfig off_cfg = memo_config(nas::MemoMode::kCold);
  off_cfg.lineage = lineage::TrackerConfig{off_root, 0};
  A4nnWorkflow off_flow(off_cfg);
  const WorkflowResult off = off_flow.run();
  EXPECT_EQ(off.summary.coalesced_evaluations, 0u);

  WorkflowConfig on_cfg = memo_config(nas::MemoMode::kCold);
  on_cfg.coalesce_duplicates = true;
  on_cfg.lineage = lineage::TrackerConfig{on_root, 0};
  A4nnWorkflow on_flow(on_cfg, off_flow.dataset());
  const WorkflowResult on = on_flow.run();
  // The 36-evaluation / 16-genome configuration revisits genomes within
  // single generations, so the leader/follower path must actually fire.
  EXPECT_GT(on.summary.coalesced_evaluations, 0u);

  expect_histories_identical(off.search.history, on.search.history);
  EXPECT_EQ(off.search.pareto, on.search.pareto);
  EXPECT_EQ(off.search.final_population, on.search.final_population);

  // Coalesced followers flush their own (restamped) copy of the leader's
  // record, and device placement is stamped from the virtual-time schedule
  // in the accounting pass — so the persisted journals agree byte-for-byte
  // after stripping host time.
  lineage::DataCommons off_commons(off_root);
  lineage::DataCommons on_commons(on_root);
  expect_histories_identical(off_commons.load_records(),
                             on_commons.load_records());
  EXPECT_EQ(util::read_file(off_root / "memo_index.json"),
            util::read_file(on_root / "memo_index.json"));

  // The coalesced engine cost is split into its own bucket, mirroring the
  // replayed-overhead accounting: the history's coalesced records carry
  // the overhead the summary attributes to coalescing.
  double coalesced_overhead = 0.0;
  for (const auto& r : on.search.history)
    if (r.coalesced) coalesced_overhead += r.engine_overhead_seconds;
  EXPECT_DOUBLE_EQ(on.summary.engine_overhead_coalesced_seconds,
                   coalesced_overhead);

  fs::remove_all(off_root);
  fs::remove_all(on_root);
}

// ---------------------------------------------------------------------------
// PR 4 semantics: failed evaluations never become cache hits.
// ---------------------------------------------------------------------------

TEST(MemoCache, FailedRecordsAreNeverCached) {
  nas::FitnessMemo memo(nas::MemoMode::kOn);
  util::Rng rng(3);
  nas::EvaluationRecord failed;
  failed.genome = nas::random_genome(2, 2, rng);
  failed.model_id = 0;
  failed.failed = true;
  failed.error = "exhausted retries";
  memo.insert(failed);
  EXPECT_EQ(memo.size(), 0u);
  EXPECT_EQ(memo.lookup(failed.genome), nullptr);

  // A later successful evaluation of the same genome IS cached.
  nas::EvaluationRecord ok = failed;
  ok.failed = false;
  ok.error.clear();
  ok.model_id = 1;
  ok.fitness = 87.5;
  memo.insert(ok);
  ASSERT_NE(memo.lookup(ok.genome), nullptr);
  EXPECT_DOUBLE_EQ(memo.lookup(ok.genome)->fitness, 87.5);
  EXPECT_EQ(memo.canonical_model(ok.genome), 1);

  // kCold never serves hits, even for inserted records.
  nas::FitnessMemo cold(nas::MemoMode::kCold);
  cold.insert(ok);
  EXPECT_EQ(cold.lookup(ok.genome), nullptr);
  EXPECT_EQ(cold.canonical_model(ok.genome), 1);  // provenance still tracked
}

// ---------------------------------------------------------------------------
// Inherited records are never cached: their curves depend on the ancestor
// they warm-started from, so replaying one for a duplicate bred from a
// different parent would break the cold/on bit-identity contract.
// ---------------------------------------------------------------------------

TEST(MemoCache, InheritedRecordsAreNeverCached) {
  nas::FitnessMemo memo(nas::MemoMode::kOn);
  util::Rng rng(7);
  nas::EvaluationRecord inherited;
  inherited.genome = nas::random_genome(2, 2, rng);
  inherited.model_id = 4;
  inherited.fitness = 91.0;
  inherited.inherited_from_model = 2;
  memo.insert(inherited);
  EXPECT_EQ(memo.size(), 0u);
  EXPECT_EQ(memo.lookup(inherited.genome), nullptr);
  EXPECT_EQ(memo.canonical_model_of(4), -1);

  // A from-scratch evaluation of the same genome IS admitted afterwards.
  nas::EvaluationRecord scratch = inherited;
  scratch.inherited_from_model = -1;
  scratch.model_id = 5;
  memo.insert(scratch);
  ASSERT_NE(memo.lookup(scratch.genome), nullptr);
  EXPECT_EQ(memo.lookup(scratch.genome)->model_id, 5);
}

// ---------------------------------------------------------------------------
// Honest accounting: engine overhead carried by replayed records is kept
// out of the fresh-overhead total, and both totals bit-match the history.
// ---------------------------------------------------------------------------

TEST(MemoCache, ReplayedEngineOverheadIsAccountedSeparately) {
  WorkflowConfig cfg = memo_config(nas::MemoMode::kOn);
  A4nnWorkflow flow(cfg);
  const WorkflowResult result = flow.run();
  ASSERT_GT(result.summary.memo_hits, 0u);

  double fresh = 0.0, replayed = 0.0;
  for (const auto& r : result.search.history)
    (r.replayed ? replayed : fresh) += r.engine_overhead_seconds;
  EXPECT_DOUBLE_EQ(result.summary.engine_overhead_seconds, fresh);
  EXPECT_DOUBLE_EQ(result.summary.engine_overhead_replayed_seconds, replayed);

  // Cold control: nothing is replayed, so the replayed bucket is zero.
  WorkflowConfig cold_cfg = memo_config(nas::MemoMode::kCold);
  A4nnWorkflow cold_flow(cold_cfg, flow.dataset());
  const WorkflowResult cold = cold_flow.run();
  EXPECT_EQ(cold.summary.memo_hits, 0u);
  EXPECT_DOUBLE_EQ(cold.summary.engine_overhead_replayed_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Weight inheritance: a child warm-started from its ancestor's checkpoint
// reaches the parent's fitness in strictly fewer epochs, deterministically.
// ---------------------------------------------------------------------------

TEST(MemoCache, InheritedChildReachesParentFitnessInFewerEpochs) {
  xfel::XfelDatasetConfig ds;
  ds.images_per_class = 30;
  ds.detector.pixels = 8;
  ds.intensity = xfel::BeamIntensity::kHigh;
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(ds);

  nas::SearchSpaceConfig space;
  space.phase_count = 2;
  space.nodes_per_phase = 2;
  space.input_shape = {1, 8, 8};
  space.stem_channels = 4;
  space.classes = data.train.num_classes();

  const fs::path root = util::make_temp_dir("a4nn_inherit");
  lineage::TrackerConfig tcfg{root, 1};  // snapshots: inheritance needs them
  lineage::LineageTracker tracker(tcfg);
  tracker.record_search_config(util::Json::object());

  orchestrator::TrainerConfig trainer;
  trainer.max_epochs = 8;
  trainer.use_prediction_engine = false;
  util::Rng rng(21);
  const nas::Genome genome = nas::random_genome(2, 2, rng);

  orchestrator::TrainingLoop parent_loop(data.train, data.validation, trainer,
                                         &tracker);
  const nas::EvaluationRecord parent =
      parent_loop.train_genome(genome, space, 0, 1234);
  ASSERT_FALSE(parent.failed);

  orchestrator::TrainerConfig fine = trainer;
  fine.inherit_weights = true;
  fine.inherit_epoch_fraction = 0.5;
  orchestrator::TrainingLoop child_loop(data.train, data.validation, fine,
                                        &tracker);
  const nas::EvaluationRecord child =
      child_loop.train_genome_inherited(genome, space, 1, 5678, 0);
  ASSERT_FALSE(child.failed);

  EXPECT_EQ(child.inherited_from_model, 0);
  EXPECT_EQ(child.inherited_from_epoch, parent.epochs_trained);
  EXPECT_GT(child.inherited_params_copied, 0u);
  EXPECT_EQ(child.inherited_params_fresh, 0u);  // same genome: full transfer
  EXPECT_LT(child.epochs_trained, parent.epochs_trained);
  EXPECT_GE(child.fitness, parent.fitness);

  // Determinism: the same inherited start reproduces bit-identically.
  orchestrator::TrainingLoop again_loop(data.train, data.validation, fine,
                                        &tracker);
  const nas::EvaluationRecord again =
      again_loop.train_genome_inherited(genome, space, 2, 5678, 0);
  nas::EvaluationRecord lhs = child, rhs = again;
  rhs.model_id = lhs.model_id;
  EXPECT_EQ(canonical(lhs), canonical(rhs));

  fs::remove_all(root);
}

// ---------------------------------------------------------------------------
// Tabular mode: the per-digest fit cache reuses the journaled fit — a
// repeated sweep runs zero fresh Levenberg–Marquardt iterations.
// ---------------------------------------------------------------------------

TEST(MemoCache, TableFitCacheRunsNoFreshFitsOnRepeatSweeps) {
  xfel::XfelDatasetConfig ds;
  ds.images_per_class = 12;
  ds.detector.pixels = 8;
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(ds);

  nas::SearchSpaceConfig space;
  space.phase_count = 2;
  space.nodes_per_phase = 2;
  space.input_shape = {1, 8, 8};
  space.classes = data.train.num_classes();
  const auto genomes = nas::enumerate_space(space);

  orchestrator::TrainerConfig trainer;
  trainer.max_epochs = 6;
  trainer.use_prediction_engine = false;  // the table holds full curves
  sched::ClusterConfig ccfg;
  trainer.cost = ccfg.cost;
  orchestrator::TrainingLoop loop(data.train, data.validation, trainer);
  sched::ResourceManager cluster(ccfg);
  orchestrator::WorkflowEvaluator trainer_eval(loop, cluster, space, 7);
  const auto trained = trainer_eval.evaluate_generation(genomes, 0);
  const nas::GenomeTable table = nas::GenomeTable::from_records(trained);
  ASSERT_EQ(table.size(), genomes.size());

  nas::TableEvaluator sweep(table, penguin::default_engine_config());
  util::metrics::Registry reg;
  sweep.set_metrics(&reg);

  const auto first = sweep.evaluate_generation(genomes, 0);
  const double lm_after_first = reg.counter("penguin.lm_iterations").value();
  EXPECT_GT(lm_after_first, 0.0);
  EXPECT_EQ(sweep.fit_cache_hits(), 0u);

  const auto second = sweep.evaluate_generation(genomes, 0);
  const double lm_after_second = reg.counter("penguin.lm_iterations").value();
  EXPECT_DOUBLE_EQ(lm_after_second, lm_after_first);  // zero fresh fits
  EXPECT_EQ(sweep.fit_cache_hits(), genomes.size());

  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(canonical(first[i]), canonical(second[i]));

  // Unknown genomes miss with a failed record, never a bogus fitness.
  nas::SearchSpaceConfig big = space;
  big.nodes_per_phase = 4;
  util::Rng rng(5);
  const nas::Genome stranger = nas::random_genome(2, 4, rng);
  const auto missed = sweep.evaluate_generation({&stranger, 1}, 0);
  ASSERT_EQ(missed.size(), 1u);
  EXPECT_TRUE(missed[0].failed);
  EXPECT_EQ(sweep.table_misses(), 1u);
}

}  // namespace a4nn::core
