// Extended-space layers: SeparableConv2d, AvgPool2d, Identity, and
// PhaseBlock with per-node operations.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/factory.hpp"
#include "nn/layers_extra.hpp"
#include "nn/phase_block.hpp"

namespace a4nn::nn {
namespace {

double dot(const Tensor& a, const Tensor& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i)
    acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

void check_input_gradient(Layer& layer, Tensor x, double tol = 3e-2) {
  util::Rng rng(7);
  Tensor probe = layer.forward(x, true);
  Tensor w = Tensor::randn(probe.shape(), rng);
  layer.forward(x, true);
  const Tensor analytic = layer.backward(w);
  const float eps = 1e-2f;
  for (std::size_t i = 0; i < x.numel();
       i += std::max<std::size_t>(1, x.numel() / 20)) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric =
        (dot(layer.forward(xp, true), w) - dot(layer.forward(xm, true), w)) /
        (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric, tol * std::max(1.0, std::fabs(numeric)));
  }
}

void check_param_gradients(Layer& layer, Tensor x, double tol = 3e-2) {
  util::Rng rng(8);
  Tensor probe = layer.forward(x, true);
  Tensor w = Tensor::randn(probe.shape(), rng);
  layer.zero_grad();
  layer.forward(x, true);
  layer.backward(w);
  for (auto& slot : layer.params()) {
    Tensor analytic = *slot.grad;
    Tensor& value = *slot.value;
    for (std::size_t i = 0; i < value.numel();
         i += std::max<std::size_t>(1, value.numel() / 10)) {
      const float eps = 1e-2f;
      const float orig = value[i];
      value[i] = orig + eps;
      const double fp = dot(layer.forward(x, true), w);
      value[i] = orig - eps;
      const double fm = dot(layer.forward(x, true), w);
      value[i] = orig;
      const double numeric = (fp - fm) / (2.0 * eps);
      EXPECT_NEAR(analytic[i], numeric,
                  tol * std::max(1.0, std::fabs(numeric)))
          << slot.name << "[" << i << "]";
    }
  }
}

TEST(SeparableConv2d, ShapesAndCheaperThanDense) {
  util::Rng rng(1);
  SeparableConv2d sep(8, 8, 3, 1, rng);
  EXPECT_EQ(sep.output_shape({8, 10, 10}), (Shape{8, 10, 10}));
  Conv2d dense(8, 8, 3, 1, 1, rng);
  EXPECT_LT(sep.flops({8, 10, 10}), dense.flops({8, 10, 10}));
}

TEST(SeparableConv2d, GradientsMatchFiniteDifferences) {
  util::Rng rng(2);
  SeparableConv2d sep(2, 3, 3, 1, rng);
  check_input_gradient(sep, Tensor::randn({2, 2, 5, 5}, rng));
  check_param_gradients(sep, Tensor::randn({2, 2, 5, 5}, rng));
}

TEST(SeparableConv2d, FiveByFiveKernel) {
  util::Rng rng(3);
  SeparableConv2d sep(2, 2, 5, 2, rng);
  EXPECT_EQ(sep.output_shape({2, 8, 8}), (Shape{2, 8, 8}));
  check_input_gradient(sep, Tensor::randn({1, 2, 8, 8}, rng));
}

TEST(SeparableConv2d, SerializationRoundTrip) {
  util::Rng rng(4);
  SeparableConv2d sep(2, 3, 3, 1, rng);
  Tensor x = Tensor::randn({1, 2, 6, 6}, rng);
  const Tensor y = sep.forward(x, false);
  util::Rng rng2(99);
  auto rebuilt = make_layer(sep.spec(), rng2);
  rebuilt->load_weights(
      util::Json::parse(sep.weights().dump()));
  const Tensor y2 = rebuilt->forward(x, false);
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], y2[i]);
  SeparableConv2d other(2, 4, 3, 1, rng);
  EXPECT_THROW(sep.load_weights(other.weights()), std::invalid_argument);
}

TEST(AvgPool2d, ForwardAveragesAndBackwardSpreads) {
  AvgPool2d pool(2);
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 6});
  const Tensor y = pool.forward(x, true);
  ASSERT_EQ(y.numel(), 1u);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  Tensor g({1, 1, 1, 1}, {4.0f});
  const Tensor gx = pool.backward(g);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gx[i], 1.0f);
  EXPECT_EQ(pool.output_shape({3, 8, 8}), (Shape{3, 4, 4}));
  EXPECT_THROW(AvgPool2d(0), std::invalid_argument);
}

TEST(AvgPool2d, GradientsMatchFiniteDifferences) {
  util::Rng rng(5);
  AvgPool2d pool(2);
  check_input_gradient(pool, Tensor::randn({2, 2, 4, 4}, rng));
}

TEST(Identity, PassThrough) {
  Identity id;
  util::Rng rng(6);
  Tensor x = Tensor::randn({2, 3}, rng);
  const Tensor y = id.forward(x, true);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
  EXPECT_EQ(id.flops({2, 3}), 0u);
  EXPECT_EQ(id.output_shape({5}), (Shape{5}));
}

TEST(NodeOps, NamesAndCodes) {
  EXPECT_STREQ(node_op_name(NodeOp::kConv3x3), "conv3x3");
  EXPECT_STREQ(node_op_name(NodeOp::kSepConv3x3), "sepconv3x3");
  EXPECT_STREQ(node_op_name(NodeOp::kConv1x1), "conv1x1");
  EXPECT_STREQ(node_op_name(NodeOp::kSepConv5x5), "sepconv5x5");
  PhaseSpec spec;
  spec.nodes = 2;
  spec.bits = {true};
  EXPECT_EQ(spec.op_of(0), NodeOp::kConv3x3);  // macro default
  spec.node_ops = {NodeOp::kConv1x1, NodeOp::kSepConv5x5};
  EXPECT_EQ(spec.op_of(1), NodeOp::kSepConv5x5);
}

TEST(PhaseBlockOps, MixedOperationsForwardBackward) {
  util::Rng rng(9);
  PhaseSpec spec;
  spec.nodes = 3;
  spec.bits = {true, true, false};  // 0->1, 0->2
  spec.skip = true;
  spec.node_ops = {NodeOp::kConv1x1, NodeOp::kSepConv3x3, NodeOp::kConv3x3};
  PhaseBlock block(spec, 2, rng);
  Tensor x = Tensor::randn({2, 2, 4, 4}, rng);
  const Tensor y = block.forward(x, true);
  EXPECT_EQ(y.shape(), x.shape());
  check_input_gradient(block, x, 6e-2);
}

TEST(PhaseBlockOps, OpChoiceChangesFlops) {
  util::Rng rng(10);
  PhaseSpec cheap;
  cheap.nodes = 2;
  cheap.bits = {true};
  cheap.node_ops = {NodeOp::kConv1x1, NodeOp::kConv1x1};
  PhaseSpec pricey = cheap;
  pricey.node_ops = {NodeOp::kConv3x3, NodeOp::kSepConv5x5};
  PhaseBlock a(cheap, 8, rng), b(pricey, 8, rng);
  EXPECT_LT(a.flops({8, 8, 8}), b.flops({8, 8, 8}));
}

TEST(PhaseBlockOps, SpecRoundTripPreservesOps) {
  util::Rng rng(11);
  PhaseSpec spec;
  spec.nodes = 3;
  spec.bits = {true, false, true};
  spec.node_ops = {NodeOp::kSepConv5x5, NodeOp::kConv1x1, NodeOp::kConv3x3};
  PhaseBlock block(spec, 2, rng);
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  block.forward(x, true);
  const Tensor y = block.forward(x, false);

  util::Rng rng2(77);
  auto rebuilt = make_layer(block.spec(), rng2);
  rebuilt->load_weights(util::Json::parse(block.weights().dump()));
  const Tensor y2 = rebuilt->forward(x, false);
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], y2[i]);
}

TEST(PhaseBlockOps, WrongOpCountRejected) {
  util::Rng rng(12);
  PhaseSpec spec;
  spec.nodes = 3;
  spec.bits = {true, false, true};
  spec.node_ops = {NodeOp::kConv3x3};  // 1 != 3
  EXPECT_THROW(PhaseBlock(spec, 2, rng), std::invalid_argument);
}

}  // namespace
}  // namespace a4nn::nn
