// Central finite-difference gradient checks for every trainable/geometric
// layer on the training hot path, exercising the fused bias/ReLU epilogues
// and the chunk-parallel backward paths. Loss is L = sum(w ⊙ forward(x))
// for a fixed random cotangent w, so backward(w) must reproduce dL/dx and
// dL/dθ. Central differences with a small step keep the truncation error
// of the piecewise-linear layers (ReLU, pooling) bounded by O(h).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "nn/layers.hpp"
#include "nn/layers_extra.hpp"
#include "tensor/parallel.hpp"
#include "util/rng.hpp"

namespace a4nn::nn {
namespace {

constexpr float kStep = 5e-3f;
constexpr double kTolAbs = 2e-2;
constexpr double kTolRel = 2e-2;

// Loss plus the activation sign pattern of the output. A perturbation that
// flips the pattern crossed a ReLU (or pooling) kink between x-h and x+h;
// the central difference is O(1) wrong there regardless of the step size,
// so those entries are skipped rather than tolerated.
struct Probe {
  double loss = 0.0;
  std::vector<bool> mask;
};

Probe probe(Layer& layer, const Tensor& x, const Tensor& w) {
  const Tensor out = layer.forward(x, /*training=*/true);
  Probe p;
  p.mask.resize(out.numel());
  for (std::size_t i = 0; i < out.numel(); ++i) {
    p.loss += static_cast<double>(w[i]) * out[i];
    p.mask[i] = out[i] > 0.0f;
  }
  return p;
}

void expect_close(double analytic, double fd, const std::string& what) {
  const double tol =
      kTolAbs + kTolRel * std::max(std::fabs(analytic), std::fabs(fd));
  EXPECT_NEAR(analytic, fd, tol) << what;
}

// Checks d(loss)/d(input) and d(loss)/d(every parameter) against central
// finite differences.
void gradcheck(Layer& layer, Tensor x, std::uint64_t seed) {
  util::Rng rng(seed);
  layer.zero_grad();
  const Tensor out = layer.forward(x, /*training=*/true);
  Tensor w(out.shape());
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<float>(rng.normal());
  const Tensor gx = layer.backward(w);
  ASSERT_TRUE(gx.same_shape(x));

  std::size_t checked = 0;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float saved = x[i];
    x[i] = saved + kStep;
    const Probe plus = probe(layer, x, w);
    x[i] = saved - kStep;
    const Probe minus = probe(layer, x, w);
    x[i] = saved;
    if (plus.mask != minus.mask) continue;  // crossed a kink
    ++checked;
    expect_close(gx[i], (plus.loss - minus.loss) / (2.0 * kStep),
                 "input grad entry " + std::to_string(i));
  }
  EXPECT_GT(checked, x.numel() / 2) << "too many kink skips for input grads";

  for (ParamSlot& slot : layer.params()) {
    checked = 0;
    for (std::size_t i = 0; i < slot.value->numel(); ++i) {
      const float saved = (*slot.value)[i];
      (*slot.value)[i] = saved + kStep;
      const Probe plus = probe(layer, x, w);
      (*slot.value)[i] = saved - kStep;
      const Probe minus = probe(layer, x, w);
      (*slot.value)[i] = saved;
      if (plus.mask != minus.mask) continue;  // crossed a kink
      ++checked;
      expect_close((*slot.grad)[i], (plus.loss - minus.loss) / (2.0 * kStep),
                   slot.name + " grad entry " + std::to_string(i));
    }
    EXPECT_GT(checked, 0u) << "every " << slot.name << " entry crossed a kink";
  }
}

Tensor random_input(const Shape& shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor x(shape);
  for (std::size_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.normal());
  return x;
}

TEST(GradCheck, Conv2dPlain) {
  util::Rng rng(1);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  gradcheck(conv, random_input({2, 2, 5, 5}, 10), 100);
}

TEST(GradCheck, Conv2dStridedNoPad) {
  util::Rng rng(2);
  Conv2d conv(1, 2, 3, 2, 0, rng);
  gradcheck(conv, random_input({3, 1, 7, 7}, 11), 101);
}

TEST(GradCheck, Conv2dFusedRelu) {
  util::Rng rng(3);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  conv.set_activation(Activation::kRelu);
  gradcheck(conv, random_input({2, 2, 5, 5}, 12), 102);
}

TEST(GradCheck, LinearPlain) {
  util::Rng rng(4);
  Linear lin(6, 4, rng);
  gradcheck(lin, random_input({5, 6}, 13), 103);
}

TEST(GradCheck, LinearFusedRelu) {
  util::Rng rng(5);
  Linear lin(6, 4, rng);
  lin.set_activation(Activation::kRelu);
  gradcheck(lin, random_input({5, 6}, 14), 104);
}

TEST(GradCheck, MaxPool2d) {
  MaxPool2d pool(2);
  gradcheck(pool, random_input({2, 2, 6, 6}, 15), 105);
}

TEST(GradCheck, AvgPool2d) {
  AvgPool2d pool(2);
  gradcheck(pool, random_input({2, 2, 6, 6}, 16), 106);
}

TEST(GradCheck, GlobalAvgPool) {
  GlobalAvgPool pool;
  gradcheck(pool, random_input({2, 3, 4, 4}, 17), 107);
}

TEST(GradCheck, SeparableConv2d) {
  util::Rng rng(6);
  SeparableConv2d conv(2, 3, 3, 1, rng);
  gradcheck(conv, random_input({2, 2, 5, 5}, 18), 108);
}

TEST(GradCheck, BatchNorm2dTrainingMode) {
  BatchNorm2d bn(2);
  // Running statistics shift every forward call, but the normalization in
  // training mode only uses the current batch, so FD still applies.
  gradcheck(bn, random_input({3, 2, 4, 4}, 19), 109);
}

TEST(GradCheck, Conv2dFusedReluParallel) {
  // The same check with the kernel pool enabled: chunk-private slab
  // reduction must produce correct (and identical) gradients.
  tensor::set_intra_op_threads(4);
  util::Rng rng(7);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  conv.set_activation(Activation::kRelu);
  gradcheck(conv, random_input({6, 2, 5, 5}, 20), 110);
  tensor::set_intra_op_threads(1);
}

TEST(GradCheck, LinearParallel) {
  tensor::set_intra_op_threads(4);
  util::Rng rng(8);
  Linear lin(6, 4, rng);
  gradcheck(lin, random_input({9, 6}, 21), 111);
  tensor::set_intra_op_threads(1);
}

// Weight inheritance copies parent tensors into a freshly-constructed
// child layer slot-by-slot (matching name + shape). The gradients of an
// inherited layer must be exactly as correct as a freshly-initialized
// one: backprop differentiates the current values, wherever they came
// from. These mirror the orchestrator's transfer map at the layer level.

/// Copy every matching (name, shape) parameter of `parent` into `child`.
std::size_t inherit_params(Layer& parent, Layer& child) {
  std::size_t copied = 0;
  auto sources = parent.params();
  for (ParamSlot& dst : child.params()) {
    for (ParamSlot& src : sources) {
      if (src.name != dst.name || !src.value->same_shape(*dst.value))
        continue;
      *dst.value = *src.value;
      ++copied;
      break;
    }
  }
  return copied;
}

TEST(GradCheck, InheritedConv2dFusedRelu) {
  util::Rng parent_rng(31), child_rng(32);
  Conv2d parent(2, 3, 3, 1, 1, parent_rng);
  // Nudge the parent off its init, standing in for prior training: kinks
  // and gradient structure depend on the values, not on their history.
  for (ParamSlot& p : parent.params())
    for (std::size_t i = 0; i < p.value->numel(); ++i)
      (*p.value)[i] += 0.05f * static_cast<float>(parent_rng.normal());
  Conv2d child(2, 3, 3, 1, 1, child_rng);
  child.set_activation(Activation::kRelu);
  ASSERT_EQ(inherit_params(parent, child), child.params().size());
  gradcheck(child, random_input({2, 2, 5, 5}, 22), 112);
}

TEST(GradCheck, InheritedLinear) {
  util::Rng parent_rng(33), child_rng(34);
  Linear parent(6, 4, parent_rng);
  for (ParamSlot& p : parent.params())
    for (std::size_t i = 0; i < p.value->numel(); ++i)
      (*p.value)[i] += 0.05f * static_cast<float>(parent_rng.normal());
  Linear child(6, 4, child_rng);
  ASSERT_EQ(inherit_params(parent, child), child.params().size());
  gradcheck(child, random_input({5, 6}, 23), 113);
}

TEST(GradCheck, ShapeMismatchedSlotsAreNotInherited) {
  util::Rng parent_rng(35), child_rng(36);
  Linear parent(6, 4, parent_rng);
  Linear child(8, 4, child_rng);  // wider input: weight shapes differ
  // Only the bias (same name, same {4} shape) transfers; the weight is
  // left at the child's fresh initialization.
  EXPECT_EQ(inherit_params(parent, child), 1u);
  gradcheck(child, random_input({5, 8}, 24), 114);
}

}  // namespace
}  // namespace a4nn::nn
