// Cross-module integration properties: full-workflow determinism, virtual
// timing consistency between records and schedules, and GPU-scaling
// behaviour of a real (tiny) search.
#include <gtest/gtest.h>

#include "core/a4nn.hpp"

namespace a4nn::core {
namespace {

WorkflowConfig tiny_config(std::size_t gpus) {
  WorkflowConfig cfg;
  cfg.dataset.images_per_class = 30;
  cfg.dataset.detector.pixels = 8;
  cfg.dataset.intensity = xfel::BeamIntensity::kHigh;
  cfg.nas.population_size = 4;
  cfg.nas.offspring_per_generation = 4;
  cfg.nas.generations = 2;
  cfg.nas.max_epochs = 8;
  cfg.nas.space.input_shape = {1, 8, 8};
  cfg.nas.space.stem_channels = 4;
  cfg.trainer.max_epochs = 8;
  cfg.trainer.engine.e_pred = 8.0;
  cfg.cluster.num_gpus = gpus;
  return cfg;
}

TEST(Integration, FullWorkflowIsDeterministic) {
  const WorkflowResult r1 = A4nnWorkflow(tiny_config(2)).run();
  const WorkflowResult r2 = A4nnWorkflow(tiny_config(2)).run();
  ASSERT_EQ(r1.search.history.size(), r2.search.history.size());
  for (std::size_t i = 0; i < r1.search.history.size(); ++i) {
    const auto& a = r1.search.history[i];
    const auto& b = r2.search.history[i];
    EXPECT_EQ(a.genome.key(), b.genome.key());
    EXPECT_EQ(a.fitness_history, b.fitness_history);
    EXPECT_EQ(a.prediction_history, b.prediction_history);
    EXPECT_EQ(a.epochs_trained, b.epochs_trained);
    EXPECT_EQ(a.device_id, b.device_id);
  }
  EXPECT_DOUBLE_EQ(r1.virtual_wall_seconds, r2.virtual_wall_seconds);
}

TEST(Integration, RecordTimesConsistentWithSchedules) {
  const WorkflowResult result = A4nnWorkflow(tiny_config(2)).run();
  std::size_t record_index = 0;
  for (const auto& schedule : result.schedules) {
    for (const auto& placement : schedule.placements) {
      const auto& record = result.search.history[record_index++];
      EXPECT_DOUBLE_EQ(placement.duration_seconds, record.virtual_seconds);
      EXPECT_EQ(placement.device_id, record.device_id);
      EXPECT_LE(placement.end_seconds, schedule.makespan_end + 1e-9);
    }
  }
  EXPECT_EQ(record_index, result.search.history.size());
}

TEST(Integration, MoreGpusReduceVirtualWallTimeNotEpochs) {
  // Same seed: identical trainings, so epochs match exactly while virtual
  // wall time shrinks near-linearly — the paper's scalability story
  // (Figs 7 and 9) in one assertion pair.
  const WorkflowResult one = A4nnWorkflow(tiny_config(1)).run();
  const WorkflowResult four = A4nnWorkflow(tiny_config(4)).run();
  EXPECT_EQ(one.search.total_epochs_trained(),
            four.search.total_epochs_trained());
  EXPECT_LT(four.virtual_wall_seconds, one.virtual_wall_seconds);
  const double speedup = one.virtual_wall_seconds / four.virtual_wall_seconds;
  EXPECT_GT(speedup, 1.5);
  EXPECT_LE(speedup, 4.0 + 1e-9);
}

TEST(Integration, EngineNeverWorsensFitnessBudget) {
  // A4NN's reported fitness for early-terminated models is a prediction of
  // epoch-e_pred fitness; sanity: predictions stay within valid bounds and
  // close to the final measured accuracy for converged curves.
  const WorkflowResult result = A4nnWorkflow(tiny_config(1)).run();
  for (const auto& r : result.search.history) {
    if (!r.early_terminated) continue;
    EXPECT_GE(r.fitness, 0.0);
    EXPECT_LE(r.fitness, 100.0);
    // The prediction should not be wildly off the last measurement for
    // saturating high-intensity curves.
    EXPECT_NEAR(r.fitness, r.measured_fitness, 25.0);
  }
}

}  // namespace
}  // namespace a4nn::core
