// Thread pool, filesystem helpers, table rendering, and logging.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <future>
#include <stdexcept>
#include <thread>

#include <sys/time.h>

#include "util/fsutil.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace a4nn::util {
namespace {

namespace fs = std::filesystem;

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter, i] {
      counter.fetch_add(1);
      return i * 2;
    }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * 2);
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, TrySubmitRefusesWhenBoundedQueueIsFull) {
  // One worker pinned on a latch, capacity 2: the first submit occupies
  // the worker, two more fill the queue, the fourth must be refused.
  ThreadPool pool(1, 2);
  EXPECT_EQ(pool.queue_capacity(), 2u);
  std::promise<void> release;
  std::shared_future<void> latch = release.get_future().share();
  auto running = std::make_shared<std::promise<void>>();
  auto first = pool.try_submit([latch, running] {
    running->set_value();
    latch.wait();
  });
  ASSERT_TRUE(first.has_value());
  running->get_future().wait();  // worker is busy, queue is empty
  auto second = pool.try_submit([latch] { latch.wait(); });
  auto third = pool.try_submit([latch] { latch.wait(); });
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(pool.queued(), 2u);
  EXPECT_FALSE(pool.try_submit([] {}).has_value());  // full → refused
  release.set_value();
  first->get();
  second->get();
  third->get();
  // Capacity freed: accepted again.
  EXPECT_TRUE(pool.try_submit([] {}).has_value());
  pool.wait_idle();
}

TEST(ThreadPool, BoundedSubmitBlocksUntilASlotFrees) {
  ThreadPool pool(1, 1);
  std::promise<void> release;
  std::shared_future<void> latch = release.get_future().share();
  auto running = std::make_shared<std::promise<void>>();
  auto first = pool.submit([latch, running] {
    running->set_value();
    latch.wait();
  });
  running->get_future().wait();
  auto second = pool.submit([] { return 1; });  // fills the single slot
  // Third submit must block (backpressure) until the latch releases the
  // worker; run it from a helper thread and observe the ordering.
  std::atomic<bool> third_accepted{false};
  std::thread submitter([&] {
    auto third = pool.submit([] { return 2; });
    third_accepted.store(true);
    EXPECT_EQ(third.get(), 2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_accepted.load());  // still stuck behind the full queue
  release.set_value();
  submitter.join();
  EXPECT_TRUE(third_accepted.load());
  first.get();
  EXPECT_EQ(second.get(), 1);
  pool.wait_idle();
}

TEST(ThreadPool, BoundedQueueDrainsAndPropagatesExceptions) {
  ThreadPool pool(2, 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i]() -> int {
      if (i % 7 == 0) throw std::runtime_error("bounded boom");
      return i;
    }));
  }
  pool.wait_idle();  // drain completes even with interleaved failures
  for (int i = 0; i < 64; ++i) {
    if (i % 7 == 0) {
      EXPECT_THROW(futures[i].get(), std::runtime_error) << i;
    } else {
      EXPECT_EQ(futures[i].get(), i);
    }
  }
}

TEST(ThreadPool, ThrowingTaskDoesNotWedgeWaitIdle) {
  ThreadPool pool(2);
  auto bad =
      pool.submit([]() -> int { throw std::runtime_error("task fault"); });
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) pool.submit([&done] { done.fetch_add(1); });
  // The throw is captured in the future; the worker survives and the pool
  // drains normally.
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool stays usable after the failure.
  EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
  pool.wait_idle();
}

TEST(ThreadPool, ZeroWorkersRunsInlineAtSubmit) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  // Task runs on the calling thread, during submit, not on a worker.
  const auto caller = std::this_thread::get_id();
  bool ran = false;
  auto fut = pool.submit([&ran, caller] {
    ran = true;
    EXPECT_EQ(std::this_thread::get_id(), caller);
    return 7;
  });
  EXPECT_TRUE(ran);  // before get(): submit itself executed it
  EXPECT_EQ(fut.get(), 7);
  pool.wait_idle();  // trivially idle; must not block
}

TEST(ThreadPool, ZeroWorkerExceptionLandsInFuture) {
  ThreadPool pool(0);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("inline"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, DestructionDrainsQueuedWork) {
  // Queue far more tasks than workers, then destroy the pool immediately:
  // the destructor must run every queued task, not drop the backlog.
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) pool.submit([&done] { done.fetch_add(1); });
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, SizeReported) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(FsUtil, WriteReadRoundTrip) {
  const fs::path dir = make_temp_dir("a4nn-test");
  const fs::path file = dir / "sub" / "data.txt";
  write_file(file, "hello\nworld");
  EXPECT_EQ(read_file(file), "hello\nworld");
  fs::remove_all(dir);
}

TEST(FsUtil, WriteIsAtomicNoTmpLeftBehind) {
  const fs::path dir = make_temp_dir("a4nn-test");
  write_file(dir / "x.json", "{}");
  EXPECT_FALSE(fs::exists(dir / "x.json.tmp"));
  fs::remove_all(dir);
}

TEST(FsUtil, ConcurrentWritersLeaveOneCompletePayload) {
  // Regression: writers once shared a single "<path>.tmp" staging name, so
  // two concurrent write_file calls to the same target could interleave
  // (one writer renaming the other's half-written file). Staging names are
  // now unique per writer; the surviving file must always be one writer's
  // payload in full.
  const fs::path dir = make_temp_dir("a4nn-conc-write");
  const fs::path target = dir / "contested.json";
  constexpr int kThreads = 8;
  constexpr int kWrites = 25;
  ThreadPool pool(kThreads);
  std::vector<std::future<void>> futures;
  for (int t = 0; t < kThreads; ++t) {
    futures.push_back(pool.submit([&target, t] {
      const std::string payload(4096, static_cast<char>('a' + t));
      for (int i = 0; i < kWrites; ++i) write_file(target, payload);
    }));
  }
  for (auto& f : futures) f.get();

  const std::string content = read_file(target);
  ASSERT_EQ(content.size(), 4096u);
  EXPECT_EQ(content, std::string(4096, content[0]));
  // No staging files left behind by any of the 200 writes.
  for (const auto& f : list_files(dir))
    EXPECT_EQ(f.filename().string().find(".tmp"), std::string::npos)
        << f.filename();
  fs::remove_all(dir);
}

TEST(FsUtil, ReadMissingThrows) {
  EXPECT_THROW(read_file("/nonexistent/a4nn/file"), std::runtime_error);
}

TEST(FsUtil, ListFilesFiltersAndSorts) {
  const fs::path dir = make_temp_dir("a4nn-test");
  write_file(dir / "b.json", "{}");
  write_file(dir / "a.json", "{}");
  write_file(dir / "c.txt", "x");
  const auto jsons = list_files(dir, ".json");
  ASSERT_EQ(jsons.size(), 2u);
  EXPECT_EQ(jsons[0].filename(), "a.json");
  EXPECT_EQ(list_files(dir).size(), 3u);
  EXPECT_TRUE(list_files(dir / "missing").empty());
  fs::remove_all(dir);
}

TEST(FsUtil, TempDirsAreUnique) {
  const fs::path a = make_temp_dir("a4nn-test");
  const fs::path b = make_temp_dir("a4nn-test");
  EXPECT_NE(a, b);
  fs::remove_all(a);
  fs::remove_all(b);
}

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable t({"name", "val"});
  t.add_row({"model_1", "99.50"});
  t.add_row({"m", "1"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name    | val   |"), std::string::npos);
  EXPECT_NE(out.find("| model_1 | 99.50 |"), std::string::npos);
  EXPECT_NE(out.find("|---------|-------|"), std::string::npos);
}

TEST(AsciiTable, WidthMismatchThrows) {
  AsciiTable t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
  EXPECT_THROW(AsciiTable({}), std::invalid_argument);
}

TEST(AsciiTable, NumFormatting) {
  EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::num(2.0, 0), "2");
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.milliseconds(), t.seconds() * 1000.0 * 0.99);
}

TEST(Log, LevelFiltering) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  log_error("this should not crash and not print");
  set_log_level(LogLevel::kDebug);
  log_debug("value=", 42, " name=", "x");
  set_log_level(before);
}

TEST(Histogram, WindowSnapshotPartitionsTheObservationStream) {
  metrics::Histogram h(0.0, 100.0, 10);
  h.observe(5.0);
  h.observe(15.0);
  h.observe(95.0);
  auto w1 = h.window_snapshot();
  EXPECT_EQ(w1.total, 3u);
  ASSERT_EQ(w1.counts.size(), 10u);
  EXPECT_EQ(w1.counts[0], 1u);
  EXPECT_EQ(w1.counts[1], 1u);
  EXPECT_EQ(w1.counts[9], 1u);
  // The p99 estimate is confined to the containing bin (width 10).
  EXPECT_GE(w1.p99, 90.0);
  EXPECT_LE(w1.p99, 100.0);

  // The snapshot exchanged the bins to zero: the next window sees only
  // what was observed after it — an observation lands in exactly one
  // window, and the cumulative view restarts too.
  EXPECT_EQ(h.total(), 0u);
  for (int i = 0; i < 4; ++i) h.observe(50.0);
  auto w2 = h.window_snapshot();
  EXPECT_EQ(w2.total, 4u);
  EXPECT_EQ(w2.counts[5], 4u);
  EXPECT_EQ(w2.counts[0], 0u);
  for (double q : {w2.p50, w2.p95, w2.p99}) {
    EXPECT_GE(q, 50.0);
    EXPECT_LE(q, 60.0);
  }
}

TEST(Histogram, WindowSnapshotOfEmptyWindowIsZeroed) {
  metrics::Histogram h(10.0, 20.0, 4);
  auto w = h.window_snapshot();
  EXPECT_EQ(w.total, 0u);
  EXPECT_DOUBLE_EQ(w.p50, 10.0);  // empty quantile pins to lo
  EXPECT_DOUBLE_EQ(w.p99, 10.0);
  ASSERT_EQ(w.counts.size(), 4u);
  for (auto c : w.counts) EXPECT_EQ(c, 0u);
}

TEST(FsUtil, ReadWriteSurviveSignalInterruption) {
  // A 1ms SIGALRM ticker installed WITHOUT SA_RESTART: every slow syscall
  // in this window is eligible to fail with EINTR, so the write/read loops
  // must retry instead of producing short transfers.
  struct sigaction action{};
  struct sigaction previous {};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ASSERT_EQ(sigaction(SIGALRM, &action, &previous), 0);
  itimerval ticker{};
  ticker.it_interval.tv_usec = 1000;
  ticker.it_value.tv_usec = 1000;
  ASSERT_EQ(setitimer(ITIMER_REAL, &ticker, nullptr), 0);

  const fs::path dir = make_temp_dir("a4nn-eintr");
  std::string payload;
  payload.reserve(8u << 20);
  while (payload.size() < (8u << 20))
    payload += "0123456789abcdef0123456789ABCDEF";
  for (int round = 0; round < 4; ++round) {
    const fs::path file = dir / ("blob" + std::to_string(round));
    write_file(file, payload, Durability::kFsync);
    EXPECT_EQ(read_file(file), payload) << "round " << round;
  }

  itimerval off{};
  setitimer(ITIMER_REAL, &off, nullptr);
  sigaction(SIGALRM, &previous, nullptr);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace a4nn::util
