// Lineage tracker + data commons: record trails persist and reload, model
// snapshots reproduce predictions from any epoch.
#include <gtest/gtest.h>

#include <filesystem>

#include "lineage/tracker.hpp"
#include "orchestrator/training_loop.hpp"
#include "util/fsutil.hpp"
#include "xfel/dataset.hpp"

namespace a4nn::lineage {
namespace {

namespace fs = std::filesystem;

struct CommonsFixture : ::testing::Test {
  void SetUp() override { root = util::make_temp_dir("a4nn-lineage"); }
  void TearDown() override { fs::remove_all(root); }
  fs::path root;
};

TEST_F(CommonsFixture, NamingHelpers) {
  EXPECT_EQ(model_dir_name(7), "model_00007");
  EXPECT_EQ(snapshot_file_name(12), "epoch_0012.ckpt.json");
}

TEST_F(CommonsFixture, TrackerValidatesConfig) {
  EXPECT_THROW(LineageTracker(TrackerConfig{"", 0}), std::invalid_argument);
}

TEST_F(CommonsFixture, SnapshotCadence) {
  LineageTracker every_two({root, 2});
  EXPECT_FALSE(every_two.wants_snapshot(1));
  EXPECT_TRUE(every_two.wants_snapshot(2));
  EXPECT_TRUE(every_two.wants_snapshot(4));
  LineageTracker off({root, 0});
  EXPECT_FALSE(off.wants_snapshot(1));
}

TEST_F(CommonsFixture, RecordsRoundTripThroughCommons) {
  LineageTracker tracker({root, 0});
  util::Json cfg = util::Json::object();
  cfg["experiment"] = "unit-test";
  tracker.record_search_config(cfg);

  util::Rng rng(1);
  for (int id : {0, 1, 5}) {
    nas::EvaluationRecord r;
    r.genome = nas::random_genome(3, 4, rng);
    r.model_id = id;
    r.generation = id / 2;
    r.fitness = 90.0 + id;
    r.measured_fitness = r.fitness;
    r.flops = 1000u * static_cast<unsigned>(id + 1);
    r.epochs_trained = 5;
    r.max_epochs = 25;
    r.fitness_history = {10.0, 50.0, 70.0, 85.0, 90.0 + id};
    tracker.record_evaluation(r);
  }

  DataCommons commons(root);
  EXPECT_EQ(commons.search_config().at("experiment").as_string(), "unit-test");
  EXPECT_EQ(commons.model_ids(), (std::vector<int>{0, 1, 5}));
  const auto records = commons.load_records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].model_id, 5);
  EXPECT_DOUBLE_EQ(records[2].fitness, 95.0);
  EXPECT_EQ(records[0].fitness_history.size(), 5u);
}

TEST_F(CommonsFixture, CommonsRejectsNonCommonsDir) {
  const fs::path other = util::make_temp_dir("a4nn-other");
  EXPECT_THROW(DataCommons{other}, std::invalid_argument);
  fs::remove_all(other);
}

TEST_F(CommonsFixture, PerEpochSnapshotsReloadAndReproduce) {
  // Train a real (tiny) model with per-epoch snapshots and verify the
  // reloaded model at each epoch reproduces its recorded fitness — the
  // paper's "load and re-evaluate from any point" claim.
  xfel::XfelDatasetConfig dcfg;
  dcfg.images_per_class = 30;
  dcfg.detector.pixels = 8;
  dcfg.intensity = xfel::BeamIntensity::kHigh;
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(dcfg);

  LineageTracker tracker({root, 1});
  orchestrator::TrainerConfig tcfg;
  tcfg.max_epochs = 4;
  tcfg.use_prediction_engine = false;
  orchestrator::TrainingLoop loop(data.train, data.validation, tcfg, &tracker);

  nas::SearchSpaceConfig space;
  space.input_shape = {1, 8, 8};
  space.stem_channels = 4;
  util::Rng rng(2);
  const nas::Genome genome = nas::random_genome(3, 4, rng);
  nas::EvaluationRecord record = loop.train_genome(genome, space, 3, 77);
  record.genome = genome;
  tracker.record_evaluation(record);

  DataCommons commons(root);
  const auto epochs = commons.snapshot_epochs(3);
  EXPECT_EQ(epochs, (std::vector<std::size_t>{1, 2, 3, 4}));
  for (std::size_t e : epochs) {
    nn::Model reloaded = commons.load_model(3, e);
    const nn::EpochMetrics m = reloaded.evaluate(data.validation);
    EXPECT_NEAR(m.accuracy, record.fitness_history[e - 1], 1e-9)
        << "epoch " << e;
  }
}

TEST_F(CommonsFixture, MissingSnapshotThrows) {
  LineageTracker tracker({root, 0});
  DataCommons commons(root);
  EXPECT_THROW(commons.load_model(0, 1), std::runtime_error);
  EXPECT_TRUE(commons.snapshot_epochs(42).empty());
}

}  // namespace
}  // namespace a4nn::lineage
