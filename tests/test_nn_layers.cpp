// Layer-level correctness: analytic gradients vs finite differences,
// shape/FLOPs accounting, and spec/weights serialization round trips.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/factory.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/phase_block.hpp"
#include "nn/sequential.hpp"

namespace a4nn::nn {
namespace {

double dot(const Tensor& a, const Tensor& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i)
    acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

/// Check d<forward(x), w>/dx against backward(w) by central differences.
void check_input_gradient(Layer& layer, Tensor x, double tol = 2e-2) {
  util::Rng rng(99);
  layer.forward(x, true);
  Tensor probe = layer.forward(x, true);  // ensure caches match final pass
  Tensor w = Tensor::randn(probe.shape(), rng);
  layer.forward(x, true);
  const Tensor analytic = layer.backward(w);
  const float eps = 1e-2f;
  for (std::size_t i = 0; i < x.numel(); i += std::max<std::size_t>(1, x.numel() / 24)) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double fp = dot(layer.forward(xp, true), w);
    const double fm = dot(layer.forward(xm, true), w);
    const double numeric = (fp - fm) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tol * std::max(1.0, std::fabs(numeric)))
        << "input index " << i;
  }
}

/// Check parameter gradients the same way.
void check_param_gradients(Layer& layer, Tensor x, double tol = 2e-2) {
  util::Rng rng(101);
  Tensor probe = layer.forward(x, true);
  Tensor w = Tensor::randn(probe.shape(), rng);
  layer.zero_grad();
  layer.forward(x, true);
  layer.backward(w);
  for (auto& slot : layer.params()) {
    Tensor analytic = *slot.grad;  // copy before we perturb
    Tensor& value = *slot.value;
    for (std::size_t i = 0;
         i < value.numel();
         i += std::max<std::size_t>(1, value.numel() / 12)) {
      const float eps = 1e-2f;
      const float orig = value[i];
      value[i] = orig + eps;
      const double fp = dot(layer.forward(x, true), w);
      value[i] = orig - eps;
      const double fm = dot(layer.forward(x, true), w);
      value[i] = orig;
      const double numeric = (fp - fm) / (2.0 * eps);
      EXPECT_NEAR(analytic[i], numeric,
                  tol * std::max(1.0, std::fabs(numeric)))
          << slot.name << "[" << i << "]";
    }
  }
}

Tensor random_input(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::randn(std::move(shape), rng);
}

TEST(Conv2d, OutputShapeAndFlops) {
  util::Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, rng);
  EXPECT_EQ(conv.output_shape({3, 16, 16}), (Shape{8, 16, 16}));
  // 2*27+1 FLOPs per output element, 8*16*16 elements.
  EXPECT_EQ(conv.flops({3, 16, 16}), 16u * 16u * 8u * 55u);
  Conv2d strided(3, 4, 3, 2, 0, rng);
  EXPECT_EQ(strided.output_shape({3, 9, 9}), (Shape{4, 4, 4}));
}

TEST(Conv2d, ForwardMatchesDirectConvolution) {
  util::Rng rng(2);
  Conv2d conv(1, 1, 3, 1, 0, rng);
  // Set kernel to a known box filter with zero bias.
  auto params = conv.params();
  for (std::size_t i = 0; i < 9; ++i) (*params[0].value)[i] = 1.0f;
  Tensor x({1, 1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) x[i] = static_cast<float>(i + 1);
  const Tensor y = conv.forward(x, true);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 45.0f);  // sum 1..9
}

TEST(Conv2d, GradientsMatchFiniteDifferences) {
  util::Rng rng(3);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  check_input_gradient(conv, random_input({2, 2, 5, 5}, 31));
  check_param_gradients(conv, random_input({2, 2, 5, 5}, 32));
}

TEST(Conv2d, StridedGradients) {
  util::Rng rng(4);
  Conv2d conv(1, 2, 3, 2, 1, rng);
  check_input_gradient(conv, random_input({2, 1, 6, 6}, 33));
}

TEST(Conv2d, RejectsBadInput) {
  util::Rng rng(5);
  Conv2d conv(2, 4, 3, 1, 1, rng);
  Tensor wrong_channels({1, 3, 8, 8});
  EXPECT_THROW(conv.forward(wrong_channels, true), std::invalid_argument);
  EXPECT_THROW(Conv2d(0, 4, 3, 1, 1, rng), std::invalid_argument);
}

TEST(Linear, ForwardAndGradients) {
  util::Rng rng(6);
  Linear lin(7, 4, rng);
  EXPECT_EQ(lin.output_shape({7}), (Shape{4}));
  EXPECT_EQ(lin.flops({7}), 4u * 15u);
  check_input_gradient(lin, random_input({3, 7}, 34));
  check_param_gradients(lin, random_input({3, 7}, 35));
}

TEST(Linear, RejectsWrongWidth) {
  util::Rng rng(7);
  Linear lin(7, 4, rng);
  Tensor x({2, 6});
  EXPECT_THROW(lin.forward(x, true), std::invalid_argument);
}

TEST(ReLU, ForwardClampsAndGradientMasks) {
  ReLU relu;
  Tensor x({4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  const Tensor y = relu.forward(x, true);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  Tensor g({4}, {1, 1, 1, 1});
  const Tensor gx = relu.backward(g);
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx[2], 1.0f);
}

TEST(MaxPool2d, ForwardAndRouting) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  const Tensor y = pool.forward(x, true);
  ASSERT_EQ(y.numel(), 1u);
  EXPECT_EQ(y[0], 5.0f);
  Tensor g({1, 1, 1, 1}, {2.0f});
  const Tensor gx = pool.backward(g);
  EXPECT_EQ(gx[1], 2.0f);  // gradient routed to the argmax only
  EXPECT_EQ(gx[0], 0.0f);
}

TEST(MaxPool2d, GradientsMatchFiniteDifferences) {
  MaxPool2d pool(2);
  check_input_gradient(pool, random_input({2, 2, 4, 4}, 36));
}

TEST(MaxPool2d, ShapeValidation) {
  MaxPool2d pool(2);
  EXPECT_EQ(pool.output_shape({4, 8, 8}), (Shape{4, 4, 4}));
  Tensor tiny({1, 1, 1, 1});
  EXPECT_THROW(pool.forward(tiny, true), std::invalid_argument);
}

TEST(GlobalAvgPool, ForwardAndGradients) {
  GlobalAvgPool gap;
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor y = gap.forward(x, true);
  ASSERT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 25.0f);
  check_input_gradient(gap, random_input({2, 3, 4, 4}, 37));
}

TEST(Flatten, RoundTrip) {
  Flatten flat;
  Tensor x = random_input({2, 3, 4, 4}, 38);
  const Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 48}));
  const Tensor gx = flat.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(Dropout, EvalIsIdentityTrainScales) {
  Dropout drop(0.5, 7);
  Tensor x = Tensor::full({1000}, 1.0f);
  const Tensor eval_out = drop.forward(x, false);
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(eval_out[i], 1.0f);
  const Tensor train_out = drop.forward(x, true);
  std::size_t zeros = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < 1000; ++i) {
    if (train_out[i] == 0.0f) ++zeros;
    sum += train_out[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros), 500.0, 70.0);
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.15);  // inverted scaling keeps mean
  EXPECT_THROW(Dropout(1.0, 1), std::invalid_argument);
}

TEST(BatchNorm2d, NormalizesTrainingBatch) {
  BatchNorm2d bn(2);
  Tensor x = random_input({4, 2, 3, 3}, 39);
  const Tensor y = bn.forward(x, true);
  // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    for (std::size_t n = 0; n < 4; ++n) {
      for (std::size_t i = 0; i < 9; ++i) {
        const float v = y[(n * 2 + c) * 9 + i];
        sum += v;
        sq += static_cast<double>(v) * v;
      }
    }
    EXPECT_NEAR(sum / 36.0, 0.0, 1e-4);
    EXPECT_NEAR(sq / 36.0, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, GradientsMatchFiniteDifferences) {
  BatchNorm2d bn(2);
  check_input_gradient(bn, random_input({3, 2, 3, 3}, 40), 5e-2);
  check_param_gradients(bn, random_input({3, 2, 3, 3}, 41), 5e-2);
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  util::Rng rng(42);
  // Train on shifted data so running stats move away from (0, 1).
  for (int i = 0; i < 50; ++i) {
    Tensor x = Tensor::randn({8, 1, 2, 2}, rng, 5.0f, 2.0f);
    bn.forward(x, true);
  }
  Tensor probe = Tensor::full({1, 1, 2, 2}, 5.0f);
  const Tensor y = bn.forward(probe, false);
  // Input at the running mean should normalize to ~0.
  EXPECT_NEAR(y[0], 0.0f, 0.3f);
}

TEST(PhaseBlock, ActiveNodePruningAndRepair) {
  util::Rng rng(8);
  PhaseSpec all_zero;
  all_zero.nodes = 4;
  all_zero.bits.assign(6, false);
  PhaseBlock block(all_zero, 4, rng);
  EXPECT_EQ(block.active_nodes(), 1u);  // repaired to one default node

  PhaseSpec chain;
  chain.nodes = 3;
  chain.bits = {true, false, true};  // 0->1, 1->2
  PhaseBlock chain_block(chain, 4, rng);
  EXPECT_EQ(chain_block.active_nodes(), 3u);
}

TEST(PhaseBlock, PreservesShapeAndCountsFlops) {
  util::Rng rng(9);
  PhaseSpec spec;
  spec.nodes = 3;
  spec.bits = {true, true, true};
  spec.skip = true;
  PhaseBlock block(spec, 4, rng);
  EXPECT_EQ(block.output_shape({4, 8, 8}), (Shape{4, 8, 8}));
  EXPECT_GT(block.flops({4, 8, 8}), 0u);
  Tensor x = random_input({2, 4, 8, 8}, 43);
  const Tensor y = block.forward(x, true);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(PhaseBlock, GradientsMatchFiniteDifferences) {
  util::Rng rng(10);
  PhaseSpec spec;
  spec.nodes = 3;
  spec.bits = {true, true, false};  // 0->1, 0->2; two loose ends
  spec.skip = true;
  PhaseBlock block(spec, 2, rng);
  check_input_gradient(block, random_input({2, 2, 4, 4}, 44), 6e-2);
}

TEST(PhaseBlock, SpecValidation) {
  util::Rng rng(11);
  PhaseSpec bad;
  bad.nodes = 3;
  bad.bits = {true};  // wrong count
  EXPECT_THROW(PhaseBlock(bad, 4, rng), std::invalid_argument);
}

TEST(SoftmaxCrossEntropy, LossAndGradient) {
  Tensor logits({2, 3}, {2.0f, 1.0f, 0.1f, 0.0f, 0.0f, 0.0f});
  std::vector<std::int64_t> labels{0, 2};
  const LossResult res = softmax_cross_entropy(logits, labels);
  EXPECT_GT(res.loss, 0.0);
  EXPECT_EQ(res.correct, 1u);  // row 1 is a three-way tie -> argmax 0 != 2
  // Gradient rows sum to zero (softmax minus one-hot).
  for (std::size_t n = 0; n < 2; ++n) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) row_sum += res.grad[n * 3 + c];
    EXPECT_NEAR(row_sum, 0.0, 1e-6);
  }
  // Uniform logits: loss = ln(3), grad for true class = (1/3 - 1)/batch.
  EXPECT_NEAR(res.grad[5], (1.0 / 3.0 - 1.0) / 2.0, 1e-6);
}

TEST(SoftmaxCrossEntropy, NumericalGradient) {
  util::Rng rng(12);
  Tensor logits = Tensor::randn({3, 4}, rng);
  std::vector<std::int64_t> labels{1, 3, 0};
  const LossResult res = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const double fp = softmax_cross_entropy(lp, labels).loss;
    const double fm = softmax_cross_entropy(lm, labels).loss;
    EXPECT_NEAR(res.grad[i], (fp - fm) / (2.0 * eps), 1e-3);
  }
}

TEST(SoftmaxCrossEntropy, Validation) {
  Tensor logits({2, 3});
  std::vector<std::int64_t> wrong_count{0};
  EXPECT_THROW(softmax_cross_entropy(logits, wrong_count),
               std::invalid_argument);
  std::vector<std::int64_t> out_of_range{0, 5};
  EXPECT_THROW(softmax_cross_entropy(logits, out_of_range),
               std::invalid_argument);
}

TEST(Softmax, RowsSumToOne) {
  util::Rng rng(13);
  Tensor logits = Tensor::randn({4, 5}, rng, 0.0f, 3.0f);
  const Tensor p = softmax(logits);
  for (std::size_t n = 0; n < 4; ++n) {
    double row = 0.0;
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_GE(p[n * 5 + c], 0.0f);
      row += p[n * 5 + c];
    }
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(Serialization, LayerSpecWeightsRoundTrip) {
  util::Rng rng(14);
  Sequential seq;
  seq.append(std::make_unique<Conv2d>(1, 4, 3, 1, 1, rng));
  seq.append(std::make_unique<BatchNorm2d>(4));
  seq.append(std::make_unique<ReLU>());
  PhaseSpec spec;
  spec.nodes = 3;
  spec.bits = {true, false, true};
  spec.skip = true;
  seq.append(std::make_unique<PhaseBlock>(spec, 4, rng));
  seq.append(std::make_unique<MaxPool2d>(2));
  seq.append(std::make_unique<GlobalAvgPool>());
  seq.append(std::make_unique<Linear>(4, 2, rng));

  Tensor x = random_input({2, 1, 8, 8}, 45);
  // Capture BN running stats by running one training pass first.
  seq.forward(x, true);
  const Tensor y = seq.forward(x, false);

  util::Rng rebuild_rng(999);
  auto rebuilt = make_sequential(seq.spec(), rebuild_rng);
  rebuilt->load_weights(seq.weights());
  const Tensor y2 = rebuilt->forward(x, false);
  ASSERT_EQ(y.shape(), y2.shape());
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], y2[i]);
}

TEST(Serialization, UnknownKindRejected) {
  util::Rng rng(15);
  util::Json bad = util::Json::object();
  bad["kind"] = "warp_drive";
  EXPECT_THROW(make_layer(bad, rng), std::invalid_argument);
}

TEST(Serialization, LoadWeightsShapeMismatchRejected) {
  util::Rng rng(16);
  Conv2d a(1, 2, 3, 1, 1, rng);
  Conv2d b(1, 3, 3, 1, 1, rng);
  EXPECT_THROW(a.load_weights(b.weights()), std::invalid_argument);
}

TEST(Sequential, FlopsAccumulateAcrossLayers) {
  util::Rng rng(17);
  Sequential seq;
  seq.append(std::make_unique<Conv2d>(1, 2, 3, 1, 1, rng));
  seq.append(std::make_unique<ReLU>());
  const std::uint64_t conv_flops = seq.layer(0).flops({1, 8, 8});
  const std::uint64_t relu_flops = seq.layer(1).flops({2, 8, 8});
  EXPECT_EQ(seq.flops({1, 8, 8}), conv_flops + relu_flops);
}

}  // namespace
}  // namespace a4nn::nn
