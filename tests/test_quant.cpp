// int8 quantized serving: exactness of the int8 GEMM against an integer
// reference, QuantizedModel bit-determinism / accuracy parity / snapshot
// integrity, and the measured-p99 champion policy with its epsilon
// accuracy guard — the "measure latency, don't model it" serving story.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <vector>

#include "lineage/tracker.hpp"
#include "nn/layers.hpp"
#include "nn/optimizer.hpp"
#include "quant/quantized_model.hpp"
#include "serve/registry.hpp"
#include "tensor/ops.hpp"
#include "util/fsutil.hpp"
#include "xfel/dataset.hpp"

namespace a4nn {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// int8 kernel primitives.
// ---------------------------------------------------------------------------

TEST(QuantKernels, SymmetricScaleMapsLimitTo127AndSurvivesZeros) {
  EXPECT_FLOAT_EQ(tensor::symmetric_scale_s8(12.7f), 0.1f);
  // All-zero tensors still get a positive, usable scale.
  EXPECT_FLOAT_EQ(tensor::symmetric_scale_s8(0.0f), 1.0f);
  EXPECT_GT(tensor::symmetric_scale_s8(-3.0f), 0.0f);

  const std::vector<float> xs = {0.0f, -1.5f, 2.5f, -4.0f};
  EXPECT_FLOAT_EQ(tensor::max_abs(xs), 4.0f);
  const std::vector<float> empty;
  EXPECT_FLOAT_EQ(tensor::max_abs(empty), 0.0f);
}

TEST(QuantKernels, QuantizeRoundsToNearestAndClamps) {
  const std::vector<float> xs = {0.0f, 0.26f, -0.26f, 1.0f, -1.0f, 99.0f,
                                 -99.0f};
  std::vector<std::int8_t> q(xs.size());
  tensor::quantize_s8(xs, 0.5f, q.data());
  EXPECT_EQ(q[0], 0);
  EXPECT_EQ(q[1], 1);   // 0.52 rounds to 1
  EXPECT_EQ(q[2], -1);
  EXPECT_EQ(q[3], 2);
  EXPECT_EQ(q[4], -2);
  EXPECT_EQ(q[5], 127);   // clamped, never wraps
  EXPECT_EQ(q[6], -127);  // symmetric clamp: -128 is never produced

  EXPECT_THROW(tensor::quantize_s8(xs, 0.0f, q.data()),
               std::invalid_argument);
  EXPECT_THROW(tensor::quantize_s8(xs, -1.0f, q.data()),
               std::invalid_argument);
}

TEST(QuantKernels, GemmS8MatchesExactIntegerReference) {
  constexpr std::size_t m = 5, k = 7, n = 4;
  std::vector<std::int8_t> a(m * k), b_t(n * k);
  // Deterministic values spanning the full signed range, including the
  // extremes the clamp produces.
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<std::int8_t>((static_cast<int>(i) * 37 % 255) - 127);
  for (std::size_t i = 0; i < b_t.size(); ++i)
    b_t[i] = static_cast<std::int8_t>((static_cast<int>(i) * 53 % 255) - 127);
  std::vector<float> a_scales(m), bias(n);
  for (std::size_t i = 0; i < m; ++i)
    a_scales[i] = 0.01f + 0.005f * static_cast<float>(i);
  for (std::size_t j = 0; j < n; ++j)
    bias[j] = 0.1f * static_cast<float>(j) - 0.15f;
  const float b_scale = 0.02f;

  // Exact integer reference accumulators (int64: cannot overflow here).
  std::vector<std::int64_t> acc(m * n, 0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t kk = 0; kk < k; ++kk)
        acc[i * n + j] += static_cast<std::int64_t>(a[i * k + kk]) *
                          static_cast<std::int64_t>(b_t[j * k + kk]);

  // Without an epilogue the dequant is a pure multiply chain — no
  // FP-contraction freedom — so the kernel output is bit-identical to the
  // reference expression: the integer dot product is computed exactly.
  std::vector<float> plain(m * n);
  tensor::gemm_s8_a_bt_ex(m, k, n, a.data(), a_scales, b_t.data(),
                          {&b_scale, 1}, plain.data(), tensor::Epilogue{});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_EQ(plain[i * n + j],
                static_cast<float>(acc[i * n + j]) * a_scales[i] * b_scale)
          << "at (" << i << "," << j << ")";

  // With the fused bias + ReLU writeback the compiler may contract the
  // bias add into an FMA, so the comparison is ULP-level rather than
  // bit-level; the ReLU clamp itself must be exact.
  tensor::Epilogue ep;
  ep.bias = tensor::Epilogue::Bias::kPerCol;
  ep.bias_data = bias.data();
  ep.relu = true;
  std::vector<float> c(m * n);
  tensor::gemm_s8_a_bt_ex(m, k, n, a.data(), a_scales, b_t.data(),
                          {&b_scale, 1}, c.data(), ep);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float v = static_cast<float>(acc[i * n + j]) * a_scales[i] * b_scale;
      v += bias[j];
      if (v < 0.0f) v = 0.0f;
      EXPECT_FLOAT_EQ(c[i * n + j], v) << "at (" << i << "," << j << ")";
      if (v == 0.0f) {
        EXPECT_EQ(c[i * n + j], 0.0f);
      }
      EXPECT_GE(c[i * n + j], 0.0f);
    }
  }
}

TEST(QuantKernels, GemmS8ValidatesScalesAndDepth) {
  const std::vector<std::int8_t> a = {1, 2}, b_t = {3, 4};
  const std::vector<float> two_scales = {0.1f, 0.2f};
  const float one = 0.1f, zero = 0.0f;
  std::vector<float> c(1);
  tensor::Epilogue ep;

  // 1x2 * 2x1: A scales must be size 1; two entries is a caller bug.
  EXPECT_THROW(tensor::gemm_s8_a_bt_ex(1, 2, 1, a.data(), two_scales,
                                       b_t.data(), {&one, 1}, c.data(), ep),
               std::invalid_argument);
  EXPECT_THROW(tensor::gemm_s8_a_bt_ex(1, 2, 1, a.data(), {&zero, 1},
                                       b_t.data(), {&one, 1}, c.data(), ep),
               std::invalid_argument);

  // Depths past INT32_MAX / 127^2 would overflow the accumulator.
  const std::size_t too_deep =
      static_cast<std::size_t>(INT32_MAX) / (127 * 127) + 1;
  std::vector<std::int8_t> deep_a(too_deep, 127), deep_b(too_deep, 127);
  std::vector<float> deep_c(1);
  EXPECT_THROW(
      tensor::gemm_s8_a_bt_ex(1, too_deep, 1, deep_a.data(), {&one, 1},
                              deep_b.data(), {&one, 1}, deep_c.data(), ep),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// QuantizedModel on a trained XFEL classifier.
// ---------------------------------------------------------------------------

struct QuantModelTest : ::testing::Test {
  static const xfel::XfelDataset& data() {
    static const xfel::XfelDataset d = [] {
      xfel::XfelDatasetConfig cfg;
      cfg.images_per_class = 50;
      cfg.detector.pixels = 8;
      cfg.intensity = xfel::BeamIntensity::kHigh;
      return xfel::generate_xfel_dataset(cfg);
    }();
    return d;
  }

  /// A briefly trained conv/linear classifier exercising both quantized
  /// kinds plus the fused-ReLU epilogue and a float pooling stage.
  static nn::Model trained_model() {
    util::Rng rng(17);
    auto trunk = std::make_unique<nn::Sequential>();
    auto conv = std::make_unique<nn::Conv2d>(1, 4, 3, 1, 1, rng);
    conv->set_activation(nn::Activation::kRelu);
    trunk->append(std::move(conv));
    trunk->append(std::make_unique<nn::MaxPool2d>(2));
    trunk->append(std::make_unique<nn::Flatten>());
    trunk->append(std::make_unique<nn::Linear>(
        4 * 4 * 4, data().train.num_classes(), rng));
    nn::Model model(std::move(trunk), {1, 8, 8});
    nn::Sgd opt(0.05);
    util::Rng train_rng(23);
    for (int epoch = 0; epoch < 4; ++epoch)
      model.train_epoch(data().train, 8, opt, train_rng);
    return model;
  }

  static nn::Dataset::Batch head(const nn::Dataset& d, std::size_t count) {
    std::vector<std::size_t> idx(std::min(count, d.size()));
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    return d.gather(idx);
  }

  static std::vector<std::size_t> as_size_t(
      std::span<const std::int64_t> labels) {
    return {labels.begin(), labels.end()};
  }
};

TEST_F(QuantModelTest, Int8AccuracyStaysWithinEpsilonOfFloat) {
  nn::Model model = trained_model();
  const tensor::Tensor calibration = head(data().train, 32).images;
  quant::QuantizedModel qm = quant::QuantizedModel::quantize(model, calibration);

  EXPECT_EQ(qm.quantized_layer_count(), 2u);
  EXPECT_EQ(qm.int8_parameters(),
            4 * 1 * 3 * 3 + 4 * 4 * 4 * data().train.num_classes());

  const double float_acc = model.evaluate(data().validation).accuracy;
  const nn::Dataset::Batch val = head(data().validation,
                                      data().validation.size());
  const double int8_acc =
      quant::top1_accuracy(qm.predict(val.images), as_size_t(val.labels));
  // The epsilon the serving registry enforces by default: int8 may cost at
  // most half a point of accuracy against float on the evaluation set.
  EXPECT_LE(std::abs(float_acc - int8_acc), 0.5)
      << "float " << float_acc << "% vs int8 " << int8_acc << "%";
}

TEST_F(QuantModelTest, PredictionsAreBitDeterministicAcrossBatchSplits) {
  nn::Model model = trained_model();
  const tensor::Tensor calibration = head(data().train, 32).images;
  quant::QuantizedModel qm = quant::QuantizedModel::quantize(model, calibration);

  const nn::Dataset& val = data().validation;
  ASSERT_GE(val.size(), 6u);
  const tensor::Tensor whole = head(val, 6).images;
  const tensor::Tensor logits = qm.predict(whole);

  // The same six images forwarded as 4 + 2 must reproduce every float bit:
  // the int32 accumulator admits no summation-order drift.
  std::vector<std::size_t> first = {0, 1, 2, 3}, second = {4, 5};
  const tensor::Tensor l1 = qm.predict(val.gather(first).images);
  const tensor::Tensor l2 = qm.predict(val.gather(second).images);
  const std::size_t classes = logits.numel() / 6;
  for (std::size_t i = 0; i < l1.numel(); ++i)
    EXPECT_EQ(logits.data()[i], l1.data()[i]) << "row-split bit mismatch";
  for (std::size_t i = 0; i < l2.numel(); ++i)
    EXPECT_EQ(logits.data()[4 * classes + i], l2.data()[i]);

  // A second quantization of the same model and calibration batch is the
  // same function, bit for bit.
  quant::QuantizedModel again =
      quant::QuantizedModel::quantize(model, calibration);
  const tensor::Tensor replay = again.predict(whole);
  for (std::size_t i = 0; i < logits.numel(); ++i)
    EXPECT_EQ(logits.data()[i], replay.data()[i]);
}

TEST_F(QuantModelTest, SnapshotRoundTripsExactlyAndRejectsCorruption) {
  nn::Model model = trained_model();
  const tensor::Tensor calibration = head(data().train, 32).images;
  quant::QuantizedModel qm = quant::QuantizedModel::quantize(model, calibration);

  const fs::path dir = util::make_temp_dir("a4nn_quant_snap");
  const fs::path path = dir / "champion.quant.json";
  qm.save(path);

  quant::QuantizedModel loaded = quant::QuantizedModel::load(path);
  EXPECT_EQ(loaded.to_json().dump(), qm.to_json().dump());
  EXPECT_EQ(loaded.quantized_layer_count(), qm.quantized_layer_count());

  const tensor::Tensor batch = head(data().validation, 5).images;
  const tensor::Tensor expect = qm.predict(batch);
  const tensor::Tensor got = loaded.predict(batch);
  for (std::size_t i = 0; i < expect.numel(); ++i)
    EXPECT_EQ(expect.data()[i], got.data()[i]);

  // A flipped bit inside the A4NNF1 frame must throw, never load quietly.
  std::string bytes = util::read_file(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x08);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(quant::QuantizedModel::load(path), std::exception);

  fs::remove_all(dir);
}

TEST(QuantModel, Top1AccuracyScoresLogitsAgainstLabels) {
  // 3 samples x 2 classes; rows argmax to 1, 0, 1.
  tensor::Tensor logits({3, 2});
  const float values[] = {0.1f, 0.9f, 2.0f, -1.0f, -3.0f, -2.0f};
  std::copy(std::begin(values), std::end(values), logits.data());
  EXPECT_DOUBLE_EQ(quant::top1_accuracy(logits, {1, 0, 1}), 100.0);
  EXPECT_DOUBLE_EQ(quant::top1_accuracy(logits, {0, 0, 1}),
                   100.0 * 2.0 / 3.0);
  EXPECT_THROW(quant::top1_accuracy(logits, {1, 0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// measured-p99 champion policy: probe, don't model.
// ---------------------------------------------------------------------------

constexpr std::size_t kClasses = 3;

nn::Model tiny_model(std::uint64_t seed) {
  util::Rng rng(seed);
  auto trunk = std::make_unique<nn::Sequential>();
  trunk->append(std::make_unique<nn::Conv2d>(1, 4, 3, 1, 1, rng));
  trunk->append(std::make_unique<nn::ReLU>());
  trunk->append(std::make_unique<nn::MaxPool2d>(2));
  trunk->append(std::make_unique<nn::Flatten>());
  trunk->append(std::make_unique<nn::Linear>(4 * 4 * 4, kClasses, rng));
  return nn::Model(std::move(trunk), {1, 8, 8});
}

struct MeasuredP99Fixture : ::testing::Test {
  void SetUp() override {
    root = util::make_temp_dir("a4nn_quant_serve");
    tracker = std::make_unique<lineage::LineageTracker>(
        lineage::TrackerConfig{root, 1, /*durable=*/false});
    util::Json cfg = util::Json::object();
    cfg["experiment"] = "measured-p99-test";
    tracker->record_search_config(cfg);
  }
  void TearDown() override { fs::remove_all(root); }

  void publish(int id, double fitness, std::uint64_t flops,
               std::uint64_t seed) {
    nn::Model model = tiny_model(seed);
    tracker->record_model_epoch(id, 1, model);
    util::Rng rng(seed);
    nas::EvaluationRecord r;
    r.genome = nas::random_genome(3, 4, rng);
    r.model_id = id;
    r.generation = 0;
    r.fitness = fitness;
    r.measured_fitness = fitness;
    r.flops = flops;
    r.epochs_trained = 1;
    r.max_epochs = 25;
    tracker->record_evaluation(r);
  }

  /// measured-p99 config whose probe "measures" the scripted milliseconds,
  /// in hook-call order (candidates probe in model-id order; with
  /// quantization, each candidate probes float first, int8 second).
  serve::RegistryConfig measured_config(std::vector<double> script) {
    serve::RegistryConfig cfg;
    cfg.commons_root = root;
    cfg.policy = serve::ChampionPolicy::kMeasuredP99;
    cfg.probe.batch = 1;
    cfg.probe.warmup = 0;
    cfg.probe.repeats = 1;
    auto plan = std::make_shared<std::vector<double>>(std::move(script));
    auto cursor = std::make_shared<std::size_t>(0);
    cfg.probe_hook = [plan, cursor](const std::function<void()>& pass) {
      pass();  // still run the forward: shapes and kernels stay exercised
      return plan->at((*cursor)++);
    };
    cfg.eval_data = [](const tensor::Shape& shape, std::size_t classes) {
      nn::Dataset d(shape.at(0), shape.at(1), shape.at(2));
      util::Rng rng(99);
      std::vector<float> img(tensor::shape_numel(shape));
      for (std::size_t i = 0; i < 24; ++i) {
        for (auto& v : img) v = static_cast<float>(rng.uniform(-1.0, 1.0));
        d.add_sample(img, static_cast<std::int64_t>(i % classes));
      }
      return d;
    };
    return cfg;
  }

  fs::path root;
  std::unique_ptr<lineage::LineageTracker> tracker;
};

TEST_F(MeasuredP99Fixture, PolicyNameRoundTripsAndQuantizeNeedsEvalData) {
  EXPECT_EQ(serve::champion_policy_from_name("measured-p99"),
            serve::ChampionPolicy::kMeasuredP99);
  EXPECT_STREQ(
      serve::champion_policy_name(serve::ChampionPolicy::kMeasuredP99),
      "measured-p99");

  serve::RegistryConfig bad;
  bad.commons_root = root;
  bad.policy = serve::ChampionPolicy::kMeasuredP99;
  bad.quantize = true;  // but no eval_data: misconfiguration, not a crash
  EXPECT_THROW(serve::ModelRegistry{bad}, std::invalid_argument);
}

TEST_F(MeasuredP99Fixture, SloSatisfiersOutrankFasterButLessFitModels) {
  // All three are Pareto-front members (fitness and FLOPs both increase).
  publish(0, 90.0, 2000, 11);
  publish(1, 95.0, 8000, 12);
  publish(2, 85.0, 1000, 13);

  // Probed in model-id order: 0 -> 5ms, 1 -> 12ms, 2 -> 3ms. Under a 6ms
  // SLO the most accurate *compliant* model wins — model 0, not the
  // higher-fitness SLO violator 1, and not the fastest model 2.
  serve::RegistryConfig cfg = measured_config({5.0, 12.0, 3.0});
  cfg.slo_ms = 6.0;
  serve::ModelRegistry registry(cfg);
  EXPECT_TRUE(registry.refresh());
  EXPECT_EQ(registry.active()->info.model_id, 0);
  EXPECT_DOUBLE_EQ(registry.active()->info.p99_ms, 5.0);
  EXPECT_FALSE(registry.active()->info.quantized);

  // When every candidate misses the SLO, least-bad latency wins.
  serve::RegistryConfig strict = measured_config({5.0, 12.0, 3.0});
  strict.slo_ms = 1.0;
  serve::ModelRegistry least_bad(strict);
  EXPECT_TRUE(least_bad.refresh());
  EXPECT_EQ(least_bad.active()->info.model_id, 2);
  EXPECT_DOUBLE_EQ(least_bad.active()->info.p99_ms, 3.0);
}

TEST_F(MeasuredP99Fixture, Int8ServedOnlyWhenMeasuredFaster) {
  publish(0, 90.0, 2000, 11);

  // float 10ms, int8 4ms: int8 is accurate (epsilon wide open) AND faster,
  // so the quantized variant is published; a re-refresh measuring the same
  // champion/variant does not republish.
  serve::RegistryConfig cfg = measured_config({10.0, 4.0, 10.0, 4.0});
  cfg.quantize = true;
  cfg.epsilon_pct = 100.0;
  util::metrics::Registry metrics;
  cfg.metrics = &metrics;
  serve::ModelRegistry registry(cfg);
  EXPECT_TRUE(registry.refresh());
  auto generation = registry.active();
  EXPECT_TRUE(generation->info.quantized);
  EXPECT_DOUBLE_EQ(generation->info.p99_ms, 4.0);
  ASSERT_TRUE(generation->quantized.has_value());
  EXPECT_DOUBLE_EQ(metrics.counter("quant.quantizations").value(), 1.0);
  EXPECT_FALSE(registry.refresh());  // same champion, same variant

  // The served int8 pipeline is exactly quantize(model, calibration) of
  // the published float model: rebuild it and compare every output bit.
  nn::Dataset eval = cfg.eval_data(generation->input_shape, kClasses);
  std::vector<std::size_t> idx(std::min<std::size_t>(cfg.calibration,
                                                     eval.size()));
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  quant::QuantizedModel rebuilt = quant::QuantizedModel::quantize(
      generation->model, eval.gather(idx).images);
  std::vector<std::size_t> probe_idx = {0, 1, 2, 3};
  const tensor::Tensor batch = eval.gather(probe_idx).images;
  const tensor::Tensor served = generation->predict(batch);
  const tensor::Tensor local = rebuilt.predict(batch);
  ASSERT_EQ(served.numel(), local.numel());
  for (std::size_t i = 0; i < served.numel(); ++i)
    EXPECT_EQ(served.data()[i], local.data()[i]);

  // float 4ms, int8 10ms: quantization that does not pay for itself is
  // not served, however accurate.
  serve::RegistryConfig slower = measured_config({4.0, 10.0});
  slower.quantize = true;
  slower.epsilon_pct = 100.0;
  serve::ModelRegistry float_wins(slower);
  EXPECT_TRUE(float_wins.refresh());
  EXPECT_FALSE(float_wins.active()->info.quantized);
  EXPECT_DOUBLE_EQ(float_wins.active()->info.p99_ms, 4.0);
  EXPECT_FALSE(float_wins.active()->quantized.has_value());
}

TEST_F(MeasuredP99Fixture, EpsilonGuardNeverServesInaccurateInt8) {
  publish(0, 90.0, 2000, 11);

  // An impossible epsilon makes every int8 variant an accuracy violation.
  // The guard must fall back to float WITHOUT probing int8 at all — hence
  // a single scripted measurement; plan->at() throws on a second call.
  serve::RegistryConfig cfg = measured_config({7.0});
  cfg.quantize = true;
  cfg.epsilon_pct = -1000.0;
  util::metrics::Registry metrics;
  cfg.metrics = &metrics;
  serve::ModelRegistry registry(cfg);
  EXPECT_TRUE(registry.refresh());
  EXPECT_FALSE(registry.active()->info.quantized);
  EXPECT_FALSE(registry.active()->quantized.has_value());
  EXPECT_DOUBLE_EQ(registry.active()->info.p99_ms, 7.0);
  // The quantization itself DID run (that is where the drop is measured).
  EXPECT_DOUBLE_EQ(metrics.counter("quant.quantizations").value(), 1.0);
}

}  // namespace
}  // namespace a4nn
