// Generality demo (paper §2.6.2 "Data Path"): the identical A4NN
// machinery — NAS, prediction engine, scheduler — running on a completely
// different dataset (synthetic geometric shapes, 3 classes). The only
// change relative to the protein use case is which nn::Dataset is handed
// to the training loop.
//
//   ./custom_dataset_search [networks] [noise_sigma]
#include <cstdio>
#include <cstdlib>

#include "analytics/analyzer.hpp"
#include "nas/search.hpp"
#include "orchestrator/workflow_evaluator.hpp"
#include "xfel/shapes_dataset.hpp"

using namespace a4nn;

int main(int argc, char** argv) {
  const std::size_t networks =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 20;
  const double noise = argc > 2 ? std::atof(argv[2]) : 0.15;

  xfel::ShapesDatasetConfig dcfg;
  dcfg.images_per_class = 100;
  dcfg.classes = 3;
  dcfg.noise_sigma = noise;
  std::printf("generating 3-class shapes dataset (noise sigma %.2f)...\n",
              noise);
  const xfel::ShapesDataset data = xfel::generate_shapes_dataset(dcfg);

  // Same workflow components, different data path.
  orchestrator::TrainerConfig tcfg;
  tcfg.max_epochs = 25;
  orchestrator::TrainingLoop loop(data.train, data.validation, tcfg);
  sched::ClusterConfig ccfg;
  ccfg.num_gpus = 2;
  sched::ResourceManager cluster(ccfg);

  nas::NsgaNetConfig ncfg;
  ncfg.population_size = 10;
  ncfg.offspring_per_generation = 10;
  ncfg.generations = (networks - 10) / 10 + 1;
  ncfg.space.classes = 3;  // the only search-space change: 3 output classes
  orchestrator::WorkflowEvaluator evaluator(loop, cluster, ncfg.space, 606);
  nas::NsgaNetSearch search(ncfg, evaluator);
  const nas::SearchResult result = search.run();

  const auto savings = analytics::epoch_savings(result.history);
  const auto summary = analytics::fitness_summary(result.history);
  std::printf("\nnetworks: %zu  epochs: %zu/%zu (%.1f%% saved)\n",
              result.history.size(), savings.epochs_trained,
              savings.epochs_budget, 100.0 * savings.saved_fraction);
  std::printf("best fitness: %.2f%% (3-class chance = 33.3%%)\n", summary.best);
  std::printf("Pareto front:\n");
  for (std::size_t idx : result.pareto) {
    const auto& r = result.history[idx];
    std::printf("  model %3d: %.2f%%  %llu FLOPs  %zu epochs%s\n", r.model_id,
                r.fitness, static_cast<unsigned long long>(r.flops),
                r.epochs_trained, r.early_terminated ? " [early]" : "");
  }
  std::printf("\nNo A4NN component changed: only the nn::Dataset (and the\n"
              "classifier head width) differ from the protein use case.\n");
  return 0;
}
