// Full A4NN workflow on the protein-diffraction use case: NSGA-Net
// augmented with the parametric prediction engine, distributed over
// simulated GPUs, with lineage tracking into a data commons.
//
//   ./protein_conformation_search [intensity] [gpus] [networks]
//     intensity: low | medium | high   (default medium)
//     gpus:      simulated GPU count   (default 2)
//     networks:  total networks to evaluate (default 30)
#include <cstdio>
#include <cstring>

#include "core/a4nn.hpp"
#include "util/fsutil.hpp"

using namespace a4nn;

namespace {

xfel::BeamIntensity parse_intensity(const char* s) {
  if (std::strcmp(s, "low") == 0) return xfel::BeamIntensity::kLow;
  if (std::strcmp(s, "high") == 0) return xfel::BeamIntensity::kHigh;
  return xfel::BeamIntensity::kMedium;
}

}  // namespace

int main(int argc, char** argv) {
  const xfel::BeamIntensity intensity =
      argc > 1 ? parse_intensity(argv[1]) : xfel::BeamIntensity::kMedium;
  const std::size_t gpus = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;
  const std::size_t networks =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 30;

  core::WorkflowConfig config;
  config.dataset.intensity = intensity;
  config.dataset.images_per_class = 150;
  config.nas.population_size = 10;
  config.nas.offspring_per_generation = 10;
  config.nas.generations = (networks - 10) / 10 + 1;
  config.nas.max_epochs = 25;
  config.cluster.num_gpus = gpus;
  config.lineage = lineage::TrackerConfig{
      util::make_temp_dir("a4nn-commons"), /*snapshot_every=*/0};

  std::printf("A4NN search: %s intensity, %zu simulated GPUs, %zu networks\n",
              xfel::beam_name(intensity), gpus,
              config.nas.total_networks());
  core::A4nnWorkflow workflow(config);
  const core::WorkflowResult result = workflow.run();

  const auto& history = result.search.history;
  const auto savings = analytics::epoch_savings(history);
  const auto summary = analytics::fitness_summary(history);
  std::printf("\nnetworks evaluated : %zu\n", history.size());
  std::printf("epochs trained     : %zu / %zu (%.1f%% saved)\n",
              savings.epochs_trained, savings.epochs_budget,
              100.0 * savings.saved_fraction);
  std::printf("early terminated   : %zu (%.0f%%)\n", savings.early_terminated,
              100.0 * savings.early_terminated_fraction);
  std::printf("best val accuracy  : %.2f%%  (mean %.2f%%)\n", summary.best,
              summary.mean);
  std::printf("virtual wall time  : %.1f h on %zu GPUs\n",
              result.virtual_wall_seconds / 3600.0, gpus);
  std::printf("measured host time : %.1f s\n", result.measured_wall_seconds);

  std::printf("\nPareto-optimal models (accuracy vs FLOPs):\n");
  for (std::size_t idx : result.search.pareto) {
    const auto& r = history[idx];
    std::printf("  model %3d: acc %6.2f%%  %8llu FLOPs  %2zu epochs%s\n",
                r.model_id, r.measured_fitness,
                static_cast<unsigned long long>(r.flops), r.epochs_trained,
                r.early_terminated ? "  [early]" : "");
  }

  if (result.commons_root) {
    std::printf("\ncommons written to %s\n", result.commons_root->c_str());
    const auto& best = history[result.search.pareto.front()];
    std::printf("\narchitecture of pareto model %d:\n%s", best.model_id,
                analytics::render_architecture(best.genome,
                                               config.nas.space)
                    .c_str());
  }
  return 0;
}
