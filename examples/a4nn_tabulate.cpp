// Tabular-mode precompute pass (NAS-Bench-201 style): exhaustively train
// every genome of a small macro search space once, journaling the full
// learning curves into a data commons. The commons then *is* the table —
// CRC-framed, manifest-journaled, resumable mid-sweep — and a
// nas::GenomeTable / nas::TableEvaluator pair serves ablation sweeps from
// it at thousands of genomes per second.
//
//   ./a4nn_tabulate --commons /tmp/table --phases 2 --nodes 2 --epochs 8
//   ./a4nn_tabulate --commons /tmp/table ... --resume   # continue a sweep
#include <cstdio>

#include "core/a4nn.hpp"
#include "nas/table.hpp"
#include "orchestrator/workflow_evaluator.hpp"
#include "tensor/parallel.hpp"
#include "util/args.hpp"
#include "util/shutdown.hpp"
#include "util/timer.hpp"

using namespace a4nn;

int main(int argc, char** argv) {
  util::ArgParser args("a4nn_tabulate",
                       "Exhaustively evaluate a small search space into a "
                       "genome -> learning-curve table (a journaled, "
                       "resumable data commons)");
  args.add_option("commons", "", "table commons directory (required)");
  args.add_option("phases", "2", "phases in the search space");
  args.add_option("nodes", "2", "nodes per phase");
  args.add_option("epochs", "8", "epochs per genome (full curves, no engine)");
  args.add_option("max-genomes", "4096",
                  "refuse spaces larger than this many genomes");
  args.add_option("chunk", "16", "genomes evaluated per scheduler batch");
  args.add_option("intensity", "medium", "beam intensity: low|medium|high");
  args.add_option("images", "60", "simulated images per conformation class");
  args.add_option("pixels", "8", "detector resolution (pixels per side)");
  args.add_option("gpus", "1", "simulated GPU count");
  args.add_option("seed", "2023", "experiment seed");
  args.add_flag("resume", "skip genomes already tabulated in the commons");
  args.add_option("intra-op-threads", "0",
                  "worker threads per training kernel (0: default)");

  try {
    args.parse(argc, argv);
  } catch (const util::ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), args.usage().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }
  if (args.get("commons").empty()) {
    std::fprintf(stderr, "a4nn_tabulate: --commons is required\n");
    return 1;
  }
  if (args.get_size("intra-op-threads") > 0)
    tensor::set_intra_op_threads(args.get_size("intra-op-threads"));

  nas::SearchSpaceConfig space;
  space.phase_count = args.get_size("phases");
  space.nodes_per_phase = args.get_size("nodes");
  const std::size_t pixels = args.get_size("pixels");
  space.input_shape = {1, pixels, pixels};

  std::vector<nas::Genome> genomes;
  try {
    genomes = nas::enumerate_space(space, args.get_size("max-genomes"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "a4nn_tabulate: %s\n", e.what());
    return 1;
  }

  xfel::XfelDatasetConfig ds;
  const std::string intensity = args.get("intensity");
  ds.intensity = intensity == "low"    ? xfel::BeamIntensity::kLow
                 : intensity == "high" ? xfel::BeamIntensity::kHigh
                                       : xfel::BeamIntensity::kMedium;
  ds.images_per_class = args.get_size("images");
  ds.detector.pixels = pixels;
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(ds);
  space.classes = data.train.num_classes();

  lineage::TrackerConfig tracker_cfg;
  tracker_cfg.root = args.get("commons");
  tracker_cfg.snapshot_every = 0;  // the table stores curves, not weights

  const bool resuming = args.get_flag("resume");
  if (resuming && std::filesystem::exists(tracker_cfg.root / "models")) {
    // Quarantine anything torn before trusting stored curves.
    lineage::DataCommons commons(tracker_cfg.root);
    const lineage::FsckReport fsck = commons.fsck(lineage::FsckMode::kDeep);
    if (!fsck.clean())
      std::fprintf(stderr,
                   "a4nn_tabulate: fsck quarantined %zu file(s), repaired "
                   "%zu journal issue(s)\n",
                   fsck.files_quarantined,
                   fsck.integrity.journal_torn_lines +
                       fsck.integrity.missing_files +
                       fsck.integrity.unjournaled_adopted);
  }

  lineage::LineageTracker tracker(tracker_cfg);
  tracker.record_search_config(
      nas::GenomeTable::header_json(space, genomes.size(),
                                    args.get_size("epochs")));

  orchestrator::TrainerConfig trainer;
  trainer.max_epochs = args.get_size("epochs");
  trainer.use_prediction_engine = false;  // tables hold *full* curves

  sched::ClusterConfig cluster_cfg;
  cluster_cfg.num_gpus = args.get_size("gpus");
  trainer.cost = cluster_cfg.cost;

  orchestrator::TrainingLoop loop(data.train, data.validation, trainer,
                                  &tracker);
  sched::ResourceManager cluster(cluster_cfg);
  orchestrator::WorkflowEvaluator evaluator(
      loop, cluster, space, static_cast<std::uint64_t>(args.get_double("seed")),
      &tracker);
  // Seeds must be architecture-keyed: a table entry's identity is its
  // genome, never its position in the enumeration.
  nas::FitnessMemo memo(nas::MemoMode::kCold);
  evaluator.set_memo(&memo);
  if (resuming && std::filesystem::exists(tracker_cfg.root / "models")) {
    lineage::DataCommons commons(tracker_cfg.root);
    evaluator.preload_records(commons.load_records());
  }

  util::install_shutdown_handlers();
  std::printf("a4nn_tabulate: %zu genomes (%zu phases x %zu nodes), "
              "%zu epochs each\n",
              genomes.size(), space.phase_count, space.nodes_per_phase,
              trainer.max_epochs);

  util::Timer wall;
  const std::size_t chunk = std::max<std::size_t>(1, args.get_size("chunk"));
  std::vector<nas::EvaluationRecord> history;
  history.reserve(genomes.size());
  int generation = 0;
  try {
    for (std::size_t start = 0; start < genomes.size(); start += chunk) {
      const std::size_t n = std::min(chunk, genomes.size() - start);
      auto records = evaluator.evaluate_generation(
          std::span<const nas::Genome>(genomes.data() + start, n), generation);
      for (auto& r : records) history.push_back(std::move(r));
      ++generation;
      std::printf("  tabulated %zu/%zu\n", history.size(), genomes.size());
    }
  } catch (const orchestrator::WorkflowInterrupted& e) {
    std::printf("a4nn_tabulate: stopped cleanly (%s); rerun with --resume to "
                "continue\n",
                e.what());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "a4nn_tabulate: %s\n", e.what());
    return 1;
  }

  // Journal the table header + genome index so consumers can validate the
  // sweep (count, space, epoch budget) without re-listing the tree.
  tracker.record_artifact(
      "table.json",
      nas::GenomeTable::header_json(space, genomes.size(),
                                    trainer.max_epochs));
  tracker.record_artifact("memo_index.json", nas::memo_index_json(history));

  std::size_t failed = 0;
  for (const auto& r : history)
    if (r.failed) ++failed;
  std::printf("a4nn_tabulate: %zu genomes tabulated (%zu reused, %zu failed) "
              "in %.1f s -> %s\n",
              history.size(), evaluator.resumed_count(), failed,
              wall.seconds(), tracker_cfg.root.c_str());
  return failed == 0 ? 0 : 2;
}
