// Lineage explorer: the analyzer's notebook-style interface as a CLI.
//
//   ./lineage_explorer <commons_dir> [min_fitness] [max_flops]
//
// Loads a data commons produced by an A4NN run (e.g. by
// protein_conformation_search or bench_lineage_commons), prints summary
// metrics, searches for NNs matching the given attributes, shows learning
// curve shapes, and renders the best architecture.
#include <cstdio>
#include <cstdlib>

#include "analytics/analyzer.hpp"
#include "lineage/tracker.hpp"
#include "nas/search_space.hpp"

using namespace a4nn;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <commons_dir> [min_fitness] [max_flops]\n"
                 "hint: run bench_lineage_commons first; it writes a commons\n"
                 "      to bench_artifacts/commons_demo\n",
                 argv[0]);
    return 1;
  }
  const double min_fitness = argc > 2 ? std::atof(argv[2]) : -1.0;
  const double max_flops = argc > 3 ? std::atof(argv[3]) : -1.0;

  lineage::DataCommons commons(argv[1]);
  const auto records = commons.load_records();
  if (records.empty()) {
    std::fprintf(stderr, "commons at %s holds no record trails\n", argv[1]);
    return 1;
  }
  std::printf("loaded %zu record trails from %s\n\n", records.size(), argv[1]);

  const auto summary = analytics::fitness_summary(records);
  const auto savings = analytics::epoch_savings(records);
  const auto shape = analytics::curve_shape(records);
  std::printf("fitness: best %.2f%%  mean %.2f%%  worst %.2f%%\n",
              summary.best, summary.mean, summary.worst);
  std::printf("epochs:  %zu trained of %zu budget (%.1f%% saved, %zu early "
              "terminations)\n",
              savings.epochs_trained, savings.epochs_budget,
              100.0 * savings.saved_fraction, savings.early_terminated);
  std::printf("curves:  %.0f%% increasing; first-half gain %.1f pp vs "
              "second-half %.1f pp (concave saturating)\n",
              100.0 * shape.increasing_fraction, shape.mean_first_half_gain,
              shape.mean_second_half_gain);
  std::printf("FLOPs-accuracy correlation: %.3f\n\n",
              analytics::flops_fitness_correlation(records));

  analytics::RecordQuery query;
  query.min_fitness = min_fitness;
  query.max_flops = max_flops;
  const auto matches = analytics::find_records(records, query);
  std::printf("query (fitness >= %.1f, flops <= %.0f): %zu matches\n",
              min_fitness, max_flops, matches.size());
  for (std::size_t idx : matches) {
    const auto& r = records[idx];
    std::printf("  model %3d gen %d: %.2f%%  %8llu FLOPs  %zu epochs%s\n",
                r.model_id, r.generation, r.measured_fitness,
                static_cast<unsigned long long>(r.flops), r.epochs_trained,
                r.early_terminated ? " [early]" : "");
  }

  // Render the best architecture in the commons (Figure 3/10 style). The
  // search-space geometry is read back from the stored search config.
  const util::Json cfg = commons.search_config();
  nas::SearchSpaceConfig space;
  if (cfg.contains("nas") && cfg.at("nas").contains("space")) {
    const auto& sp = cfg.at("nas").at("space");
    space.phase_count = static_cast<std::size_t>(sp.at("phase_count").as_int());
    space.nodes_per_phase =
        static_cast<std::size_t>(sp.at("nodes_per_phase").as_int());
    space.stem_channels =
        static_cast<std::size_t>(sp.at("stem_channels").as_int());
    space.channel_multiplier = sp.at("channel_multiplier").as_number();
    space.input_shape.clear();
    for (const auto& d : sp.at("input_shape").as_array())
      space.input_shape.push_back(static_cast<std::size_t>(d.as_int()));
  }
  const auto pareto = analytics::pareto_indices(records);
  const auto& best = records[pareto.front()];
  std::printf("\nbest Pareto model %d (%.2f%%, %llu FLOPs):\n%s",
              best.model_id, best.measured_fitness,
              static_cast<unsigned long long>(best.flops),
              analytics::render_architecture(best.genome, space).c_str());

  // Learning-curve sparkline of the best model.
  std::printf("\nlearning curve of model %d (validation accuracy %%):\n",
              best.model_id);
  for (std::size_t e = 0; e < best.fitness_history.size(); ++e) {
    const int bar = static_cast<int>(best.fitness_history[e] / 2.5);
    std::printf("  epoch %2zu %6.2f ", e + 1, best.fitness_history[e]);
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf("\n");
  }
  return 0;
}
