// In situ serving driver: point it at a data commons written by a4nn_run,
// and it publishes the Pareto champion through the model registry, stands
// up the micro-batching inference engine, and drives it with a closed-loop
// synthetic client fleet (XFEL diffraction shots regenerated at the
// champion's detector size, so reported accuracy is meaningful).
//
//   ./a4nn_run --commons runs/demo ...         # train + populate commons
//   ./a4nn_serve --commons runs/demo --clients 8 --max-batch 16
//       --slo-ms 50 --stats-out serve_stats.json
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "latency/probe.hpp"
#include "lineage/tracker.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "tensor/autotune.hpp"
#include "util/args.hpp"
#include "util/fsutil.hpp"
#include "util/log.hpp"
#include "util/shutdown.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"
#include "xfel/dataset.hpp"

using namespace a4nn;

int main(int argc, char** argv) {
  util::ArgParser args("a4nn_serve",
                       "Serve the commons champion with micro-batching");
  args.add_option("commons", "a4nn_commons", "data commons root to serve");
  args.add_option("policy", "best-fitness",
                  "champion policy: best-fitness | min-flops | balanced | "
                  "measured-p99");
  args.add_option("max-flops", "0", "FLOPs-per-image budget (0 = unlimited)");
  args.add_option("max-batch", "8", "micro-batch width");
  args.add_option("max-delay-ms", "2", "max batching delay before flush");
  args.add_option("queue-capacity", "256", "request queue bound");
  args.add_option("workers", "2", "inference worker threads");
  args.add_option("slo-ms", "0", "latency SLO for shedding (0 = off); "
                  "measured-p99 also holds probed candidates against it");
  args.add_flag("quantize",
                "measured-p99 only: consider an int8 post-training-quantized "
                "variant per candidate (served when faster and within "
                "--epsilon of float accuracy)");
  args.add_option("epsilon", "0.5",
                  "max absolute accuracy drop (percentage points) an int8 "
                  "variant may cost before falling back to float");
  args.add_option("calibration", "32",
                  "calibration samples for int8 activation scales");
  args.add_flag("auto-batch",
                "sweep (max-batch, max-delay-ms) pairs against the measured "
                "champion latency before serving; journals serve_tune.json "
                "to the commons and serves the winner");
  args.add_option("requests", "2000", "total requests to drive");
  args.add_option("clients", "8", "closed-loop client threads");
  args.add_option("stats-out", "", "write engine stats JSON here");
  args.add_option("trace-out", "", "write a Chrome trace of the run here");
  args.add_option("tune-config", "",
                  "tune.json from a4nn_tune: per-shape GEMM blocking "
                  "(empty: use A4NN_TUNE env var, or compiled defaults)");
  try {
    args.parse(argc, argv);
  } catch (const util::ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), args.usage().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }
  if (!args.get("tune-config").empty()) {
    try {
      tensor::load_tune_file(args.get("tune-config"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--tune-config: %s\n", e.what());
      return 1;
    }
  }
  util::set_log_level(util::LogLevel::kInfo);
  util::install_shutdown_handlers();
  const std::string trace_out = args.get("trace-out");
  if (!trace_out.empty()) util::trace::start();

  serve::RegistryConfig reg_cfg;
  reg_cfg.commons_root = args.get("commons");
  reg_cfg.max_flops = args.get_size("max-flops");
  reg_cfg.slo_ms = args.get_double("slo-ms");
  reg_cfg.quantize = args.get_flag("quantize");
  reg_cfg.epsilon_pct = args.get_double("epsilon");
  reg_cfg.calibration = args.get_size("calibration");
  reg_cfg.probe.batch = args.get_size("max-batch");
  // Labelled shots regenerated at a candidate's own geometry: calibration
  // batch for int8 activation scales plus the float-vs-int8 accuracy guard.
  reg_cfg.eval_data = [](const tensor::Shape& shape, std::size_t classes) {
    if (shape.size() != 3 || shape[0] != 1 || shape[1] != shape[2])
      throw std::runtime_error(
          "quantize: candidate input " + tensor::shape_to_string(shape) +
          " is not a square single-channel detector");
    xfel::XfelDatasetConfig data_cfg;
    data_cfg.detector.pixels = shape[1];
    data_cfg.conformations = classes;
    data_cfg.images_per_class = 32;
    return xfel::generate_xfel_dataset(data_cfg).validation;
  };
  try {
    reg_cfg.policy = serve::champion_policy_from_name(args.get("policy"));
    if (reg_cfg.quantize &&
        reg_cfg.policy != serve::ChampionPolicy::kMeasuredP99)
      throw std::runtime_error(
          "--quantize requires --policy measured-p99 (the only policy that "
          "probes and accuracy-guards the int8 variant)");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "a4nn_serve: %s\n", e.what());
    return 1;
  }
  serve::ModelRegistry registry(reg_cfg);
  try {
    registry.refresh();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "a4nn_serve: %s\n", e.what());
    return 1;
  }
  auto champion = registry.active();
  {
    util::AsciiTable t({"champion", "epoch", "fitness", "MFLOPs", "classes",
                        "variant", "p99 ms"});
    t.add_row({std::to_string(champion->info.model_id),
               std::to_string(champion->info.epoch),
               util::AsciiTable::num(champion->info.fitness, 2),
               util::AsciiTable::num(
                   static_cast<double>(champion->info.flops) / 1e6, 3),
               std::to_string(champion->num_classes),
               champion->info.quantized ? "int8" : "float",
               champion->info.p99_ms > 0.0
                   ? util::AsciiTable::num(champion->info.p99_ms, 3)
                   : "-"});
    std::printf("%s", t.render().c_str());
  }

  // Regenerate diffraction shots at the champion's input geometry so the
  // request stream has ground-truth labels.
  const tensor::Shape& in = champion->input_shape;
  if (in.size() != 3 || in[0] != 1 || in[1] != in[2]) {
    std::fprintf(stderr, "a4nn_serve: champion input %s is not a square "
                 "single-channel detector\n",
                 tensor::shape_to_string(in).c_str());
    return 1;
  }
  xfel::XfelDatasetConfig data_cfg;
  data_cfg.detector.pixels = in[1];
  data_cfg.conformations = champion->num_classes;
  data_cfg.images_per_class = 64;
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(data_cfg);
  const nn::Dataset& pool = data.validation;

  serve::EngineConfig cfg;
  cfg.max_batch = args.get_size("max-batch");
  cfg.max_delay_ms = args.get_double("max-delay-ms");
  cfg.queue_capacity = args.get_size("queue-capacity");
  cfg.workers = args.get_size("workers");
  cfg.slo_ms = args.get_double("slo-ms");

  if (args.get_flag("auto-batch")) {
    // One-shot sweep before serving: probe the champion — the exact
    // variant (float or int8) the registry published — at each candidate
    // micro-batch width, combine each width with each flush delay
    // arithmetically (the delay only shifts the request deadline, it never
    // changes the forward pass), and serve the highest-throughput pair
    // whose estimated worst-case request p99 meets the SLO. The sweep is
    // journaled to the commons like tune.json so the choice is auditable.
    const std::vector<std::size_t> widths = {1, 2, 4, 8, 16, 32};
    const std::vector<double> delays = {0.5, 1.0, 2.0, 4.0};
    const double slo = cfg.slo_ms;
    util::Json cands = util::Json::array();
    std::size_t best_b = cfg.max_batch;
    double best_d = cfg.max_delay_ms;
    double best_tput = 0.0, best_p99 = 0.0;
    bool best_ok = false, have = false;
    for (std::size_t b : widths) {
      latency::ProbeConfig pc;
      pc.batch = b;
      const latency::LatencyProbe prober(pc);
      const latency::ProbeResult r = prober.probe_fn(
          [&](const tensor::Tensor& x) { champion->predict(x); },
          champion->input_shape);
      for (double d : delays) {
        // Worst case for an admitted request: it waits out the full flush
        // delay, then a whole batch runs at the probed per-image p99.
        const double est_p99 = d + static_cast<double>(b) * r.p99_ms;
        const double tput = r.median_ms > 0.0 ? 1000.0 / r.median_ms : 0.0;
        const bool ok = slo <= 0.0 || est_p99 <= slo;
        util::Json c = util::Json::object();
        c["max_batch"] = b;
        c["max_delay_ms"] = d;
        c["per_image_median_ms"] = r.median_ms;
        c["per_image_p99_ms"] = r.p99_ms;
        c["est_request_p99_ms"] = est_p99;
        c["throughput_ips"] = tput;
        c["meets_slo"] = ok;
        cands.push_back(std::move(c));
        const bool better =
            !have ||
            (ok != best_ok
                 ? ok
                 : (ok ? (tput != best_tput ? tput > best_tput
                                            : est_p99 < best_p99)
                       : est_p99 < best_p99));
        if (better) {
          have = true;
          best_ok = ok;
          best_tput = tput;
          best_p99 = est_p99;
          best_b = b;
          best_d = d;
        }
      }
    }
    cfg.max_batch = best_b;
    cfg.max_delay_ms = best_d;
    util::Json doc = util::Json::object();
    doc["host"] = latency::host_fingerprint();
    util::Json id = util::Json::object();
    id["model_id"] = static_cast<double>(champion->info.model_id);
    id["epoch"] = static_cast<double>(champion->info.epoch);
    id["quantized"] = champion->info.quantized;
    doc["champion"] = std::move(id);
    doc["slo_ms"] = slo;
    doc["candidates"] = std::move(cands);
    util::Json chosen = util::Json::object();
    chosen["max_batch"] = best_b;
    chosen["max_delay_ms"] = best_d;
    doc["chosen"] = std::move(chosen);
    lineage::LineageTracker tracker({args.get("commons")});
    tracker.record_artifact("serve_tune.json", doc);
    std::printf(
        "auto-batch: max_batch %zu, max_delay %.1fms (est request p99 "
        "%.2fms%s) -> %s/serve_tune.json\n",
        best_b, best_d, best_p99, best_ok ? "" : ", SLO missed",
        args.get("commons").c_str());
  }

  serve::InferenceEngine engine(registry, cfg);

  const std::size_t total = args.get_size("requests");
  const std::size_t clients = std::max<std::size_t>(args.get_size("clients"), 1);
  std::atomic<std::size_t> correct{0}, answered{0}, dropped{0};
  util::Timer wall;
  {
    std::vector<std::thread> fleet;
    for (std::size_t c = 0; c < clients; ++c) {
      fleet.emplace_back([&, c] {
        // Closed loop: one outstanding request per client.
        for (std::size_t i = c; i < total; i += clients) {
          if (util::shutdown_requested()) break;
          const std::size_t sample = i % pool.size();
          auto image = pool.image(sample);
          auto res = engine.submit({image.begin(), image.end()});
          if (res.admission != serve::Admission::kAccepted) {
            dropped.fetch_add(1);
            continue;
          }
          const serve::Prediction p = res.prediction.get();
          answered.fetch_add(1);
          if (static_cast<std::int64_t>(p.label) == pool.label(sample))
            correct.fetch_add(1);
        }
      });
    }
    for (auto& t : fleet) t.join();
  }
  engine.drain();
  const double seconds = wall.seconds();

  const util::Json stats = engine.stats();
  const double rps = seconds > 0.0
                         ? static_cast<double>(answered.load()) / seconds
                         : 0.0;
  std::printf(
      "served %zu/%zu requests (%zu shed/rejected) in %.2fs — %.0f req/s, "
      "accuracy %.1f%%\n",
      answered.load(), total, dropped.load(), seconds, rps,
      answered.load() > 0
          ? 100.0 * static_cast<double>(correct.load()) /
                static_cast<double>(answered.load())
          : 0.0);
  std::printf("latency p50 %.2fms  p95 %.2fms  p99 %.2fms  mean batch %.2f\n",
              stats.at("latency_ms").at("p50").as_number(),
              stats.at("latency_ms").at("p95").as_number(),
              stats.at("latency_ms").at("p99").as_number(),
              stats.at("batches").at("mean_size").as_number());

  if (!args.get("stats-out").empty()) {
    util::Json doc = stats;
    doc["wall_seconds"] = seconds;
    doc["throughput_rps"] = rps;
    util::write_file(args.get("stats-out"), doc.dump(2));
    std::printf("wrote %s\n", args.get("stats-out").c_str());
  }
  if (!trace_out.empty()) {
    util::trace::stop();
    util::trace::write(trace_out);
    std::printf("wrote %s\n", trace_out.c_str());
  }
  if (util::shutdown_requested())
    std::printf("stopped cleanly on signal %d (in-flight requests drained)\n",
                util::shutdown_signal());
  return 0;
}
