// a4nn_tune: one-shot kernel autotuner driver.
//
// Sweeps the blocking candidates over the GEMM shape classes the search
// space emits for a dataset geometry, and journals the winning configs as
// a CRC-framed commons artifact (tune.json) that every other CLI can load
// via --tune-config / $A4NN_TUNE. Re-running against the same commons
// replays the journaled measurements, so a finished tune re-emits
// byte-identically and an interrupted one resumes instead of re-timing.
#include <cstdio>
#include <exception>
#include <string>

#include "lineage/tracker.hpp"
#include "tensor/autotune.hpp"
#include "util/args.hpp"
#include "util/log.hpp"

using namespace a4nn;

int main(int argc, char** argv) {
  util::ArgParser args("a4nn_tune", "Autotune GEMM cache blocking per shape class");
  args.add_option("commons", "tune_commons",
                  "commons directory for the journaled tune.json");
  args.add_option("pixels", "16", "dataset image edge (pixels x pixels)");
  args.add_option("classes", "2", "classifier output classes");
  args.add_option("stem-channels", "4", "search-space stem width");
  args.add_option("eval-batch", "64", "eval-mode whole-batch Linear rows");
  args.add_option("serve-batches", "1,8,32",
                  "comma-separated serving micro-batch sizes");
  args.add_option("seed", "0", "operand seed / journal identity");
  args.add_option("repeats", "3", "timing repeats per candidate (min kept)");
  args.add_flag("fresh", "ignore any journaled measurements and re-time");
  try {
    args.parse(argc, argv);
    if (args.help_requested()) {
      std::printf("%s", args.usage().c_str());
      return 0;
    }

    std::vector<std::size_t> serve_batches;
    {
      const std::string list = args.get("serve-batches");
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!tok.empty()) serve_batches.push_back(std::stoul(tok));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    }

    const auto shapes = tensor::search_space_tune_shapes(
        args.get_size("pixels"), args.get_size("classes"),
        args.get_size("stem-channels"), args.get_size("eval-batch"),
        serve_batches);

    tensor::TuneOptions options;
    options.seed = args.get_size("seed");
    options.repeats = args.get_size("repeats");

    lineage::LineageTracker tracker({args.get("commons")});
    lineage::DataCommons commons(args.get("commons"));
    util::Json prior;
    bool have_prior = false;
    if (!args.get_flag("fresh") && commons.has_artifact("tune.json")) {
      prior = commons.load_artifact("tune.json");
      have_prior = true;
      util::log_info("a4nn_tune: resuming from journaled tune.json");
    }

    const tensor::TuneResult result =
        tensor::run_tune(shapes, options, have_prior ? &prior : nullptr);
    tracker.record_artifact("tune.json", result.doc);

    // Report per-(k, n) winners and their speedup over candidate 0 (the
    // compiled defaults), from the journaled measurements.
    const auto& meas = result.doc.at("measurements");
    for (const util::Json& w : result.doc.at("winners").as_array()) {
      double base = 0.0;
      const std::size_t ci =
          static_cast<std::size_t>(w.at("candidate").as_int());
      for (const util::Json& key : w.at("shapes").as_array())
        base += meas.at(key.as_string()).at(0).as_number();
      const double tuned = w.at("total_ns").as_number();
      std::printf(
          "k=%-5lld n=%-6lld candidate=%-2zu  %8.0f ns -> %8.0f ns  (%.2fx)\n",
          static_cast<long long>(w.at("k").as_int()),
          static_cast<long long>(w.at("n").as_int()), ci, base, tuned,
          tuned > 0.0 ? base / tuned : 1.0);
    }
    std::printf("tuned %zu (k, n) entries -> %s/tune.json\n",
                result.entries.size(), args.get("commons").c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "a4nn_tune: %s\n", e.what());
    return 1;
  }
}
