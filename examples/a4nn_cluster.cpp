// Distributed A4NN: one master partitions each NSGA-II generation's
// training jobs across remote worker processes over TCP, surviving worker
// crashes, partitions, torn frames, and stragglers — and degrading to
// local in-process evaluation when no workers are reachable. Cluster and
// solo runs produce bit-identical Pareto fronts, because training is
// deterministic given (genome, model id, seed) and the dataset regenerates
// deterministically from the configuration.
//
// Master and workers are launched with the SAME workflow flags; the
// handshake compares a CRC-32 digest of the configuration so a mismatched
// worker is rejected instead of silently computing different results.
//
//   # master (terminal 1)
//   ./a4nn_cluster --master --port 7501 --min-workers 2
//                  --population 4 --generations 3 --epochs 4
//   # workers (terminals 2, 3)
//   ./a4nn_cluster --worker --connect 127.0.0.1:7501 --worker-name w0
//                  --population 4 --generations 3 --epochs 4
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "cluster/master.hpp"
#include "cluster/worker.hpp"
#include "core/a4nn.hpp"
#include "orchestrator/workflow_evaluator.hpp"
#include "tensor/parallel.hpp"
#include "util/args.hpp"
#include "util/checksum.hpp"
#include "util/shutdown.hpp"
#include "util/trace.hpp"

using namespace a4nn;

namespace {

/// Workflow configuration from the shared flags. Master and workers must
/// build the identical object — the handshake CRC is computed over its
/// JSON before any side applies local-only adjustments.
core::WorkflowConfig build_config(const util::ArgParser& args) {
  core::WorkflowConfig cfg;
  const std::string intensity = args.get("intensity");
  cfg.dataset.intensity = intensity == "low" ? xfel::BeamIntensity::kLow
                          : intensity == "high" ? xfel::BeamIntensity::kHigh
                                                : xfel::BeamIntensity::kMedium;
  cfg.dataset.images_per_class = args.get_size("images");
  cfg.dataset.detector.pixels = args.get_size("pixels");
  cfg.nas.population_size = args.get_size("population");
  cfg.nas.offspring_per_generation = args.get_size("offspring");
  cfg.nas.generations = args.get_size("generations");
  cfg.nas.max_epochs = args.get_size("epochs");
  cfg.nas.space.nodes_per_phase = args.get_size("nodes");
  cfg.nas.space.phase_count = args.get_size("phases");
  cfg.nas.space.input_shape = {1, cfg.dataset.detector.pixels,
                               cfg.dataset.detector.pixels};
  cfg.trainer.max_epochs = cfg.nas.max_epochs;
  cfg.trainer.use_prediction_engine = !args.get_flag("no-engine");
  cfg.trainer.engine.e_pred = static_cast<double>(cfg.nas.max_epochs);
  cfg.cluster.num_gpus = args.get_size("gpus");
  // Both sides parse --memo so the handshake config CRC matches; the memo
  // itself only lives on the master (workers just train what they are
  // sent — the genome-keyed seed rides the job payload).
  cfg.memo = nas::memo_mode_from_name(args.get("memo"));
  cfg.nas.allow_duplicates = args.get_flag("allow-duplicates");
  // Parsed on both sides so the handshake CRC covers the objective mode:
  // a master searching on measured latency refuses workers launched in
  // flops mode (and vice versa) at connect time, not mid-search.
  cfg.nas.objective = nas::objective_mode_from_name(args.get("objective"));
  cfg.seed = static_cast<std::uint64_t>(args.get_double("seed"));
  return cfg;
}

int run_master(const util::ArgParser& args, core::WorkflowConfig cfg,
               std::uint32_t config_crc) {
  std::string trace_out = args.get("trace-out");
  if (trace_out.empty()) {
    if (const char* env = std::getenv("A4NN_TRACE")) trace_out = env;
  }
  if (!trace_out.empty()) util::trace::start();

  cluster::MasterOptions opts;
  opts.bind = args.get("bind");
  opts.port = static_cast<std::uint16_t>(args.get_size("port"));
  opts.config_crc = config_crc;
  opts.heartbeat_interval_ms =
      static_cast<int>(args.get_size("heartbeat-interval-ms"));
  opts.heartbeat_timeout_ms =
      static_cast<int>(args.get_size("heartbeat-timeout-ms"));
  opts.max_attempts = args.get_size("max-attempts");
  opts.quarantine_after = args.get_size("quarantine-after");
  opts.seed = cfg.seed;
  opts.fault.partition_prob = args.get_double("fault-partition");
  opts.fault.torn_frame_prob = args.get_double("fault-torn");
  opts.fault.backoff_jitter = args.get_double("backoff-jitter");
  opts.fault.enabled =
      opts.fault.partition_prob > 0 || opts.fault.torn_frame_prob > 0;

  cluster::Master master(opts);
  std::printf("master: listening on %s:%u (config crc %08x)\n",
              opts.bind.c_str(), master.port(), config_crc);

  const std::size_t min_workers = args.get_size("min-workers");
  if (min_workers > 0) {
    std::printf("master: waiting for %zu worker(s)...\n", min_workers);
    if (!master.wait_for_workers(
            min_workers, static_cast<int>(args.get_size("wait-workers-ms")))) {
      std::fprintf(stderr,
                   "master: %zu worker(s) did not connect in time; "
                   "continuing with %zu (local fallback covers the rest)\n",
                   min_workers, master.connected_workers());
    }
  }

  cfg.cluster.remote = &master;
  core::WorkflowResult result;
  try {
    core::A4nnWorkflow workflow(std::move(cfg));
    result = workflow.run();
  } catch (const orchestrator::WorkflowInterrupted& e) {
    if (!util::shutdown_requested()) {
      std::fprintf(stderr, "a4nn_cluster: %s\n", e.what());
      return 1;
    }
    // Graceful SIGINT/SIGTERM: completed records already reached the
    // commons; tell the workers to shut down and flush the trace.
    master.stop();
    if (!trace_out.empty()) {
      util::trace::stop();
      util::trace::write(trace_out);
    }
    std::printf("a4nn_cluster: stopped cleanly on signal %d (%s)\n",
                util::shutdown_signal(), e.what());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "a4nn_cluster: %s\n", e.what());
    return 1;
  }
  master.stop();

  if (!trace_out.empty()) {
    util::trace::stop();
    util::Json extra = util::Json::object();
    extra["metrics"] = result.summary.metrics;
    if (util::trace::write(trace_out, &extra))
      std::printf("trace: %s\n", trace_out.c_str());
  }

  const auto& ct = result.summary.cluster;
  std::printf(
      "cluster: %zu remote job(s), %zu local fallback(s), %zu dispatch(es), "
      "%zu re-dispatch(es), %zu worker failure(s), %zu quarantine(s)\n",
      ct.remote_jobs, ct.remote_fallbacks, ct.dispatches, ct.redispatches,
      ct.worker_failures, ct.worker_quarantines);
  if (ct.stale_results || ct.corrupt_frames || ct.corrupt_results)
    std::printf("cluster: dropped %zu stale / %zu corrupt frame(s) / "
                "%zu corrupt result(s)\n",
                ct.stale_results, ct.corrupt_frames, ct.corrupt_results);

  const auto& history = result.search.history;
  std::printf("Pareto front:\n");
  for (std::size_t idx : result.search.pareto) {
    const auto& r = history[idx];
    std::printf("  model %3d: %.2f%%  %llu FLOPs  %zu epochs\n", r.model_id,
                r.fitness, static_cast<unsigned long long>(r.flops),
                r.epochs_trained);
  }

  // Bit-exact Pareto dump (hexfloat) for the loopback smoke test's
  // cluster-vs-solo comparison.
  const std::string pareto_out = args.get("pareto-out");
  if (!pareto_out.empty()) {
    std::FILE* f = std::fopen(pareto_out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "a4nn_cluster: cannot write %s\n",
                   pareto_out.c_str());
      return 1;
    }
    for (std::size_t idx : result.search.pareto) {
      const auto& r = history[idx];
      std::fprintf(f, "%d %a %llu %zu %s\n", r.model_id, r.fitness,
                   static_cast<unsigned long long>(r.flops), r.epochs_trained,
                   r.genome.key().c_str());
    }
    std::fclose(f);
    std::printf("pareto: %s\n", pareto_out.c_str());
  }
  return 0;
}

int run_worker(const util::ArgParser& args, core::WorkflowConfig cfg,
               std::uint32_t config_crc) {
  std::string host = "127.0.0.1";
  std::uint16_t port = static_cast<std::uint16_t>(args.get_size("port"));
  const std::string connect = args.get("connect");
  if (!connect.empty()) {
    const auto colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "a4nn_cluster: --connect expects host:port\n");
      return 1;
    }
    host = connect.substr(0, colon);
    port = static_cast<std::uint16_t>(
        std::strtoul(connect.c_str() + colon + 1, nullptr, 10));
  }
  if (port == 0) {
    std::fprintf(stderr, "a4nn_cluster: worker needs --connect host:port\n");
    return 1;
  }

  // Local-only adjustments AFTER the CRC: a worker-side commons gives
  // re-dispatched jobs their epoch checkpoints to resume from, without
  // changing what the worker computes.
  if (!args.get("worker-commons").empty()) {
    cfg.lineage = lineage::TrackerConfig{args.get("worker-commons"),
                                         args.get_size("snapshot-every")};
    cfg.trainer.resume_partial = true;
  }
  // Mirror the adjustments A4nnWorkflow::run() applies before training.
  cfg.trainer.cost = cfg.cluster.cost;

  std::printf("worker '%s': generating dataset...\n",
              args.get("worker-name").c_str());
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(cfg.dataset);
  cfg.nas.space.classes = data.train.num_classes();

  std::optional<lineage::LineageTracker> tracker;
  if (cfg.lineage) tracker.emplace(*cfg.lineage);
  orchestrator::TrainingLoop loop(data.train, data.validation, cfg.trainer,
                                  tracker ? &*tracker : nullptr);

  cluster::WorkerOptions opts;
  opts.host = host;
  opts.port = port;
  opts.name = args.get("worker-name");
  opts.threads = args.get_size("threads");
  opts.config_crc = config_crc;
  opts.max_reconnects = args.get_size("max-reconnects");
  opts.seed = cfg.seed;
  opts.fault.worker_crash_prob = args.get_double("fault-worker-crash");
  opts.fault.slow_link_prob = args.get_double("fault-slow-link");
  opts.fault.torn_frame_prob = args.get_double("fault-torn");
  opts.fault.enabled = opts.fault.worker_crash_prob > 0 ||
                       opts.fault.slow_link_prob > 0 ||
                       opts.fault.torn_frame_prob > 0;

  const nas::SearchSpaceConfig space = cfg.nas.space;
  cluster::Worker worker(opts);
  // Relay SIGINT/SIGTERM into the worker's stop flag: run() winds down
  // after the in-flight jobs finish, so nothing is lost mid-training.
  std::atomic<bool> watcher_done{false};
  std::thread watcher([&] {
    while (!watcher_done.load()) {
      if (util::shutdown_requested()) {
        worker.request_stop();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  const std::string objective_name(nas::objective_mode_name(cfg.nas.objective));
  const cluster::WorkerStats stats =
      worker.run([&](const cluster::JobRequest& req) {
        // Belt-and-suspenders beyond the handshake CRC: a request whose
        // objective mode disagrees with this worker's flags is a config
        // drift, not a trainable job.
        if (req.objective != objective_name)
          throw std::runtime_error("job " + std::to_string(req.job) +
                                   " requests objective mode '" +
                                   req.objective + "', worker configured '" +
                                   objective_name + "'");
        const nas::Genome genome = nas::Genome::from_json(req.genome);
        const std::uint64_t model_seed = cluster::hex_to_u64(req.seed_hex);
        nas::EvaluationRecord record =
            loop.train_genome(genome, space, req.model_id, model_seed);
        record.generation = req.generation;
        return record.to_json();
      });
  watcher_done.store(true);
  watcher.join();
  if (util::shutdown_requested())
    std::printf("worker '%s': stopped cleanly on signal %d\n",
                opts.name.c_str(), util::shutdown_signal());

  std::printf(
      "worker '%s': %zu job(s) completed, %zu reconnect(s), %s\n",
      opts.name.c_str(), stats.jobs_completed, stats.reconnects,
      stats.clean_shutdown
          ? "clean shutdown"
          : (!stats.reject_reason.empty() ? stats.reject_reason.c_str()
                                          : "connection lost"));
  if (!stats.reject_reason.empty()) return 2;
  return stats.clean_shutdown ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("a4nn_cluster",
                       "Distributed A4NN over TCP: --master partitions each "
                       "generation across --worker processes; identical "
                       "flags on every node");
  args.add_flag("master", "run the master (search driver)");
  args.add_flag("worker", "run a worker (remote evaluator)");
  // Shared workflow flags (MUST match across master and workers; the
  // handshake rejects mismatches by configuration digest).
  args.add_option("population", "4", "size of starting population");
  args.add_option("offspring", "4", "offspring per generation");
  args.add_option("generations", "3",
                  "evaluation rounds incl. the initial population");
  args.add_option("epochs", "4", "max training epochs per network");
  args.add_option("nodes", "4", "nodes per phase in the search space");
  args.add_option("phases", "3", "phases in the search space");
  args.add_option("intensity", "medium", "beam intensity: low|medium|high");
  args.add_option("images", "60", "simulated images per conformation class");
  args.add_option("pixels", "16", "detector resolution (pixels per side)");
  args.add_flag("no-engine", "disable the prediction engine");
  args.add_option("gpus", "1", "simulated GPU count (virtual schedule)");
  args.add_option("memo", "off",
                  "fitness memo-cache: off|cold|on (master-side replay of "
                  "already-evaluated genomes; never re-dispatches a hit)");
  args.add_option("objective", "flops",
                  "hardware objectives: flops | latency | both (latency is "
                  "probed on the master's own hardware)");
  args.add_flag("allow-duplicates",
                "let crossover/mutation re-produce evaluated genomes");
  args.add_option("seed", "2023", "experiment seed");
  // Master flags.
  args.add_option("bind", "127.0.0.1", "master: address to listen on");
  args.add_option("port", "0",
                  "master: TCP port (0: ephemeral, printed at startup); "
                  "worker: master port when --connect is not given");
  args.add_option("min-workers", "0",
                  "master: wait for this many workers before searching "
                  "(0: start immediately, local fallback covers everything)");
  args.add_option("wait-workers-ms", "10000",
                  "master: how long to wait for --min-workers");
  args.add_option("heartbeat-interval-ms", "200", "master: heartbeat period");
  args.add_option("heartbeat-timeout-ms", "2000",
                  "master: silence before a worker is declared dead");
  args.add_option("max-attempts", "5",
                  "master: dispatch attempts per job before local fallback");
  args.add_option("quarantine-after", "3",
                  "master: worker failures before quarantine");
  args.add_option("backoff-jitter", "0",
                  "master: re-dispatch backoff jitter in [0,1], drawn from "
                  "the run seed");
  args.add_option("fault-partition", "0",
                  "master: injected partition probability per dispatch");
  args.add_option("pareto-out", "",
                  "master: write the Pareto front (hexfloat, bit-exact) here");
  args.add_option("trace-out", "",
                  "master: write a Chrome-trace JSON (cluster lanes on pid 3)");
  // Worker flags.
  args.add_option("connect", "", "worker: master address as host:port");
  args.add_option("worker-name", "worker-0",
                  "worker: stable identity (quarantine key)");
  args.add_option("threads", "1", "worker: concurrent jobs (capacity report)");
  args.add_option("max-reconnects", "10",
                  "worker: consecutive connect failures before giving up");
  args.add_option("worker-commons", "",
                  "worker: commons dir for epoch checkpoints (re-dispatched "
                  "jobs resume instead of retraining; empty: off)");
  args.add_option("snapshot-every", "1",
                  "worker: checkpoint every N epochs into --worker-commons");
  args.add_option("fault-worker-crash", "0",
                  "worker: injected crash probability after each job");
  args.add_option("fault-slow-link", "0",
                  "worker: injected slow-link probability per result");
  // Shared fault flag (either side can tear frames).
  args.add_option("fault-torn", "0",
                  "injected torn-frame probability per send");
  args.add_option("intra-op-threads", "0",
                  "worker threads per training kernel (0: env/default)");

  try {
    args.parse(argc, argv);
  } catch (const util::ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), args.usage().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }
  if (args.get_flag("master") == args.get_flag("worker")) {
    std::fprintf(stderr, "a4nn_cluster: pass exactly one of --master or "
                         "--worker\n%s", args.usage().c_str());
    return 1;
  }
  if (args.get_size("intra-op-threads") > 0)
    tensor::set_intra_op_threads(args.get_size("intra-op-threads"));
  util::install_shutdown_handlers();

  core::WorkflowConfig cfg = build_config(args);
  // Digest over the canonical configuration JSON: both sides compute it
  // from the same flags before any local-only adjustment.
  const std::uint32_t config_crc = util::crc32(cfg.to_json().dump());

  return args.get_flag("master") ? run_master(args, std::move(cfg), config_crc)
                                 : run_worker(args, std::move(cfg), config_crc);
}
