// Self-healing in situ streaming driver: point it at a data commons
// written by a4nn_run and it runs the supervised beamline→champion loop —
// a rate-controlled diffraction producer, the micro-batching serving
// engine, a drift monitor that fires fine-tune triggers through a
// crash-consistent journal, and a recovery worker that hot-swaps the
// champion. Faults are injectable and deterministic; a run killed
// anywhere (including `kill -9`) resumes with --resume and converges to
// the exact journal of an undisturbed run.
//
//   ./a4nn_run --commons runs/demo ...                 # train the commons
//   ./a4nn_stream --commons runs/demo --frames 2048 --drift-at 1024
//       --faults --stall-prob 0.01 --corrupt-prob 0.02
//       --stats-out stream_stats.json --trace-out stream_trace.json
//
// Exit codes: 0 = completed or graceful signal stop; 2 = aborted
// (serving pump dead / wall deadline); 3 = interrupted (simulated kill
// via --kill-after-appends — rerun with --resume).
#include <cstdio>

#include "stream/scenario.hpp"
#include "util/args.hpp"
#include "util/fsutil.hpp"
#include "util/log.hpp"
#include "util/shutdown.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

using namespace a4nn;

int main(int argc, char** argv) {
  util::ArgParser args("a4nn_stream",
                       "Supervised in situ streaming loop with drift-"
                       "triggered recovery");
  args.add_option("commons", "a4nn_commons", "data commons root to serve");
  args.add_option("policy", "best-fitness",
                  "champion policy: best-fitness | min-flops | balanced");
  args.add_option("max-flops", "0", "FLOPs-per-image budget (0 = unlimited)");
  args.add_option("frames", "1024", "total frames to stream");
  args.add_option("rate-hz", "0", "frame pacing rate (0 = unpaced)");
  args.add_option("pool-per-class", "32", "pre-rendered shots per class");
  args.add_option("drift-at", "0",
                  "frame index where conformational drift begins "
                  "(labels rotate by 1; 0 = no drift)");
  args.add_option("window-frames", "64", "drift window size (frames)");
  args.add_option("fire-below", "70", "accuracy %% that counts a bad window");
  args.add_option("rearm-above", "85", "accuracy %% that clears the streak");
  args.add_option("sustain-windows", "2", "bad windows required to fire");
  args.add_option("cooldown-windows", "3", "post-fire circuit-breaker span");
  args.add_option("buffer-frames", "128", "recovery fine-tune buffer");
  args.add_option("finetune-epochs", "3", "fine-tune epochs per recovery");
  args.add_option("finetune-batch", "16", "fine-tune mini-batch size");
  args.add_option("finetune-lr", "0.05", "fine-tune learning rate");
  args.add_option("max-batch", "8", "serving micro-batch width");
  args.add_option("max-delay-ms", "2", "max batching delay before flush");
  args.add_option("workers", "2", "inference worker threads");
  args.add_option("queue-capacity", "64", "frame queue bound");
  args.add_option("watchdog-ms", "2000", "child heartbeat deadline");
  args.add_option("max-restarts", "3", "restart budget per child");
  args.add_option("max-wall-seconds", "0", "abort after this long (0 = off)");
  args.add_option("seed", "42", "run seed (faults, pools, fine-tune RNG)");
  args.add_flag("faults", "enable deterministic fault injection");
  args.add_option("stall-prob", "0", "producer stall probability per frame");
  args.add_option("stall-ms", "50", "injected stall duration");
  args.add_option("burst-prob", "0", "unpaced burst probability per frame");
  args.add_option("corrupt-prob", "0", "corrupt-frame probability");
  args.add_option("spike-prob", "0", "rate-spike probability per frame");
  args.add_option("crash-prob", "0", "producer crash probability per frame");
  args.add_option("recovery-crash-prob", "0",
                  "recovery-action crash probability per attempt");
  args.add_flag("resume", "fsck and resume from the trigger journal");
  args.add_option("kill-after-appends", "0",
                  "simulate SIGKILL after N journal appends (0 = off)");
  args.add_flag("concurrent-swap",
                "serve through recovery instead of holding the stream at "
                "the trigger boundary (sacrifices byte-exact replay)");
  args.add_flag("no-fsync", "skip fsync on journal/lineage writes");
  args.add_option("stats-out", "", "write the run result JSON here");
  args.add_option("trace-out", "", "write a Chrome trace of the run here");
  try {
    args.parse(argc, argv);
  } catch (const util::ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), args.usage().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }
  util::set_log_level(util::LogLevel::kInfo);
  util::install_shutdown_handlers();
  const std::string trace_out = args.get("trace-out");
  if (!trace_out.empty()) util::trace::start();
  util::metrics::Registry metrics;

  stream::StreamConfig cfg;
  cfg.commons_root = args.get("commons");
  cfg.policy = serve::champion_policy_from_name(args.get("policy"));
  cfg.max_flops = args.get_size("max-flops");
  cfg.metrics = &metrics;
  cfg.seed = args.get_size("seed");
  cfg.resume = args.get_flag("resume");
  cfg.durable = !args.get_flag("no-fsync");
  cfg.deterministic_swap = !args.get_flag("concurrent-swap");
  cfg.queue_capacity = args.get_size("queue-capacity");
  cfg.max_wall_seconds = args.get_double("max-wall-seconds");
  cfg.journal_append_limit = args.get_size("kill-after-appends");
  cfg.stop_requested = [] { return util::shutdown_requested(); };

  // Geometry comes from the champion so streamed frames match its input.
  {
    serve::RegistryConfig reg_cfg;
    reg_cfg.commons_root = cfg.commons_root;
    reg_cfg.policy = cfg.policy;
    reg_cfg.max_flops = cfg.max_flops;
    serve::ModelRegistry probe(reg_cfg);
    try {
      probe.refresh();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "a4nn_stream: %s\n", e.what());
      return 1;
    }
    const auto champion = probe.active();
    const tensor::Shape& in = champion->input_shape;
    if (in.size() != 3 || in[0] != 1 || in[1] != in[2]) {
      std::fprintf(stderr,
                   "a4nn_stream: champion input %s is not a square "
                   "single-channel detector\n",
                   tensor::shape_to_string(in).c_str());
      return 1;
    }
    cfg.producer.dataset.detector.pixels = in[1];
    cfg.producer.dataset.conformations = champion->num_classes;
    util::AsciiTable t({"champion", "epoch", "fitness", "classes", "pixels"});
    t.add_row({std::to_string(champion->info.model_id),
               std::to_string(champion->info.epoch),
               util::AsciiTable::num(champion->info.fitness, 2),
               std::to_string(champion->num_classes), std::to_string(in[1])});
    std::printf("%s", t.render().c_str());
  }

  cfg.producer.total_frames = args.get_size("frames");
  cfg.producer.rate_hz = args.get_double("rate-hz");
  cfg.producer.pool_per_class = args.get_size("pool-per-class");
  cfg.producer.dataset.seed = cfg.seed;
  const std::size_t drift_at = args.get_size("drift-at");
  if (drift_at > 0) {
    stream::PhaseSpec drifted;
    drifted.start_frame = drift_at;
    drifted.label_rotation = 1;
    cfg.producer.phases.push_back(drifted);
  }

  cfg.drift.window_frames = args.get_size("window-frames");
  cfg.drift.fire_below = args.get_double("fire-below");
  cfg.drift.rearm_above = args.get_double("rearm-above");
  cfg.drift.sustain_windows = args.get_size("sustain-windows");
  cfg.drift.cooldown_windows = args.get_size("cooldown-windows");
  cfg.drift.num_classes = cfg.producer.dataset.conformations;

  cfg.recovery.buffer_frames = args.get_size("buffer-frames");
  cfg.recovery.finetune_epochs = args.get_size("finetune-epochs");
  cfg.recovery.batch_size = args.get_size("finetune-batch");
  cfg.recovery.learning_rate = args.get_double("finetune-lr");

  cfg.engine.max_batch = args.get_size("max-batch");
  cfg.engine.max_delay_ms = args.get_double("max-delay-ms");
  cfg.engine.workers = args.get_size("workers");

  cfg.fault.enabled = args.get_flag("faults");
  cfg.fault.stream_stall_prob = args.get_double("stall-prob");
  cfg.fault.stream_stall_ms = args.get_double("stall-ms");
  cfg.fault.stream_burst_prob = args.get_double("burst-prob");
  cfg.fault.stream_corrupt_prob = args.get_double("corrupt-prob");
  cfg.fault.stream_rate_spike_prob = args.get_double("spike-prob");
  cfg.fault.stream_crash_prob = args.get_double("crash-prob");
  cfg.fault.stream_recovery_crash_prob =
      args.get_double("recovery-crash-prob");

  const double watchdog_ms = args.get_double("watchdog-ms");
  const std::size_t max_restarts = args.get_size("max-restarts");
  for (auto* policy :
       {&cfg.producer_policy, &cfg.server_policy, &cfg.recovery_policy}) {
    policy->watchdog_ms = watchdog_ms;
    policy->max_restarts = max_restarts;
  }
  // The pump legitimately blocks through a deterministic swap; its
  // heartbeat keeps ticking there, but give it headroom anyway.
  cfg.server_policy.watchdog_ms = watchdog_ms * 2;

  stream::StreamResult result;
  try {
    stream::StreamScenario scenario(cfg);
    result = scenario.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "a4nn_stream: %s\n", e.what());
    return 1;
  }

  std::printf(
      "streamed %zu frames: %zu served (%.1f%% accurate), %zu corrupt "
      "dropped, %zu windows\n",
      result.frames_produced, result.frames_served, result.accuracy_overall,
      result.frames_corrupt_dropped, result.windows);
  std::printf(
      "triggers: %zu fired, %zu completed, %zu shed; supervision: %zu "
      "restarts, %zu stalls, %zu crashes%s\n",
      result.triggers_fired, result.triggers_completed, result.triggers_shed,
      result.child_restarts, result.watchdog_stalls, result.child_crashes,
      result.degraded ? " [degraded]" : "");
  std::printf("champion: model %d epoch %zu (generation %llu), p99 outside "
              "faults %.2fms\n",
              result.final_champion_model, result.final_champion_epoch,
              static_cast<unsigned long long>(result.final_generation),
              result.p99_outside_faults_ms);

  if (!args.get("stats-out").empty()) {
    util::Json doc = result.to_json();
    doc["metrics"] = metrics.snapshot();
    util::write_file(args.get("stats-out"), doc.dump(2));
    std::printf("wrote %s\n", args.get("stats-out").c_str());
  }
  if (!trace_out.empty()) {
    util::trace::stop();
    // Nested under "metrics" like a4nn_run's traces, so check_trace.py can
    // hold the pid-4 lanes to the stream.* counters.
    util::Json extra = util::Json::object();
    extra["metrics"] = metrics.snapshot();
    util::trace::write(trace_out, &extra);
    std::printf("wrote %s\n", trace_out.c_str());
  }
  if (result.interrupted) {
    std::printf("interrupted — rerun with --resume to continue\n");
    return 3;
  }
  if (result.aborted) return 2;
  if (result.graceful_stop)
    std::printf("stopped cleanly on signal %d\n", util::shutdown_signal());
  return 0;
}
