// The full A4NN driver: every knob from the paper's user interface
// (§2.6: NAS settings, data path, prediction engine settings, cluster)
// exposed as command-line arguments, exactly like the original driver
// script that instantiates a NAS run.
//
//   ./a4nn_run --intensity low --population 10 --offspring 10
//              --generations 10 --epochs 25 --gpus 4
//              --function pow_exp --window 3 --tolerance 0.5
//              --commons /tmp/my_commons --snapshot-every 1
#include <cstdio>
#include <cstdlib>

#include "analytics/dot_export.hpp"
#include "core/a4nn.hpp"
#include "orchestrator/workflow_evaluator.hpp"
#include "tensor/autotune.hpp"
#include "tensor/parallel.hpp"
#include "util/args.hpp"
#include "util/fsutil.hpp"
#include "util/shutdown.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

using namespace a4nn;

int main(int argc, char** argv) {
  util::ArgParser args("a4nn_run",
                       "Run the A4NN workflow (NSGA-Net + prediction engine "
                       "+ simulated GPU cluster + lineage commons)");
  // NAS settings (Table 2).
  args.add_option("population", "10", "size of starting population");
  args.add_option("offspring", "10", "offspring per generation");
  args.add_option("generations", "10",
                  "evaluation rounds incl. the initial population");
  args.add_option("epochs", "25", "max training epochs per network");
  args.add_option("nodes", "4", "nodes per phase in the search space");
  args.add_option("phases", "3", "phases in the search space");
  args.add_flag("search-ops",
                "extended space: nodes also choose their operation "
                "(conv3x3/sepconv3x3/conv1x1/sepconv5x5)");
  // Data path settings.
  args.add_option("intensity", "medium", "beam intensity: low|medium|high");
  args.add_option("images", "150", "simulated images per conformation class");
  args.add_option("pixels", "16", "detector resolution (pixels per side)");
  // Prediction engine settings (Table 1).
  args.add_flag("no-engine", "disable the prediction engine (standalone NAS)");
  args.add_option("function", "pow_exp",
                  "parametric family (pow_exp|inverse_power|logistic|"
                  "vapor_pressure|weibull|ilog|janoschek|mmf)");
  args.add_flag("ensemble", "predict with the full family ensemble");
  args.add_option("c-min", "3", "min epochs before the first prediction");
  args.add_option("window", "3", "N: predictions required to converge");
  args.add_option("tolerance", "0.5", "r: prediction variance tolerance");
  // Evaluation accelerator (fitness memo-cache + weight inheritance).
  args.add_option("memo", "off",
                  "fitness memo-cache: off (legacy model-id seeds) | cold "
                  "(genome-keyed seeds, no reuse) | on (O(1) replay of "
                  "already-evaluated genomes)");
  args.add_flag("allow-duplicates",
                "let crossover/mutation re-produce evaluated genomes "
                "(duplicate-heavy searches; pair with --memo on)");
  args.add_flag("inherit-weights",
                "warm-start each child from its parent's newest epoch "
                "checkpoint (requires --snapshot-every >= 1)");
  args.add_option("inherit-fraction", "0.5",
                  "fraction of --epochs an inherited child fine-tunes for");
  args.add_flag("coalesce",
                "train same-generation duplicate genomes once and copy the "
                "record (requires --memo cold|on; journal bytes unchanged)");
  // Hardware-aware objectives.
  args.add_option("objective", "flops",
                  "hardware objectives beside accuracy/FLOPs: flops "
                  "(analytic, the legacy 2-objective search) | latency "
                  "(+ measured ms/image at serving batch) | both "
                  "(+ latency and roofline bytes moved)");
  args.add_option("probe-batch", "8",
                  "latency-probe micro-batch (match the serving engine)");
  args.add_option("probe-repeats", "9",
                  "timed probe passes (median is the objective)");
  // Resource manager + lineage.
  args.add_option("gpus", "1", "simulated GPU count");
  args.add_option("commons", "", "data-commons directory (empty: disabled)");
  args.add_option("snapshot-every", "0",
                  "snapshot model weights every N epochs (0: off)");
  args.add_flag("resume",
                "reuse record trails already in the commons (interrupted-run "
                "recovery; requires --commons)");
  args.add_flag("fsck",
                "validate the commons tree (quarantine corrupt files) and "
                "exit; requires --commons");
  args.add_flag("deep",
                "with --fsck: verify every manifest-journal entry's checksum, "
                "repair torn journal lines, and print the integrity report");
  args.add_flag("fsck-deep", "shorthand for --fsck --deep");
  // Fault injection (deterministic, seeded from --seed).
  args.add_option("fault-transient", "0",
                  "per-attempt transient failure probability [0,1]");
  args.add_option("fault-permanent", "0",
                  "per-generation permanent device-failure probability [0,1]");
  args.add_option("fault-crash", "0",
                  "per-attempt job-crash probability [0,1]");
  args.add_option("fault-straggler", "0",
                  "per-attempt straggler probability [0,1]");
  args.add_option("seed", "2023", "experiment seed");
  args.add_option("intra-op-threads", "0",
                  "worker threads per training kernel (0: use "
                  "A4NN_INTRA_OP_THREADS, default 1); results are "
                  "bit-identical at any setting");
  args.add_option("tune-config", "",
                  "tune.json from a4nn_tune: per-shape GEMM blocking "
                  "(empty: use A4NN_TUNE env var, or compiled defaults)");
  args.add_option("trace-out", "",
                  "write a Chrome-trace JSON of the run (host spans + "
                  "simulated device timeline + metrics) to this path; "
                  "empty: use A4NN_TRACE env var, or tracing stays off");
  args.add_flag("dot", "print the best architecture as Graphviz DOT");

  try {
    args.parse(argc, argv);
  } catch (const util::ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), args.usage().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }

  core::WorkflowConfig cfg;
  const std::string intensity = args.get("intensity");
  cfg.dataset.intensity = intensity == "low" ? xfel::BeamIntensity::kLow
                          : intensity == "high" ? xfel::BeamIntensity::kHigh
                                                : xfel::BeamIntensity::kMedium;
  cfg.dataset.images_per_class = args.get_size("images");
  cfg.dataset.detector.pixels = args.get_size("pixels");
  cfg.nas.population_size = args.get_size("population");
  cfg.nas.offspring_per_generation = args.get_size("offspring");
  cfg.nas.generations = args.get_size("generations");
  cfg.nas.max_epochs = args.get_size("epochs");
  cfg.nas.space.nodes_per_phase = args.get_size("nodes");
  cfg.nas.space.phase_count = args.get_size("phases");
  cfg.nas.space.input_shape = {1, cfg.dataset.detector.pixels,
                               cfg.dataset.detector.pixels};
  cfg.nas.space.searchable_ops = args.get_flag("search-ops");
  cfg.trainer.max_epochs = cfg.nas.max_epochs;
  cfg.trainer.use_prediction_engine = !args.get_flag("no-engine");
  cfg.trainer.engine.function = penguin::make_function(args.get("function"));
  if (args.get_flag("ensemble")) {
    for (const auto& name : penguin::function_names())
      cfg.trainer.engine.ensemble.push_back(penguin::make_function(name));
  }
  cfg.trainer.engine.c_min = args.get_size("c-min");
  cfg.trainer.engine.window = args.get_size("window");
  cfg.trainer.engine.tolerance = args.get_double("tolerance");
  cfg.trainer.engine.e_pred = static_cast<double>(cfg.nas.max_epochs);
  cfg.cluster.num_gpus = args.get_size("gpus");
  cfg.cluster.fault.transient_failure_prob = args.get_double("fault-transient");
  cfg.cluster.fault.permanent_failure_prob = args.get_double("fault-permanent");
  cfg.cluster.fault.job_crash_prob = args.get_double("fault-crash");
  cfg.cluster.fault.straggler_prob = args.get_double("fault-straggler");
  cfg.cluster.fault.enabled = cfg.cluster.fault.transient_failure_prob > 0 ||
                              cfg.cluster.fault.permanent_failure_prob > 0 ||
                              cfg.cluster.fault.job_crash_prob > 0 ||
                              cfg.cluster.fault.straggler_prob > 0;
  try {
    cfg.memo = nas::memo_mode_from_name(args.get("memo"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  cfg.nas.allow_duplicates = args.get_flag("allow-duplicates");
  cfg.coalesce_duplicates = args.get_flag("coalesce");
  if (cfg.coalesce_duplicates && cfg.memo == nas::MemoMode::kOff) {
    std::fprintf(stderr,
                 "--coalesce requires genome-keyed training seeds: pass "
                 "--memo cold or --memo on\n");
    return 1;
  }
  try {
    cfg.nas.objective = nas::objective_mode_from_name(args.get("objective"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  cfg.probe.batch = args.get_size("probe-batch");
  cfg.probe.repeats = args.get_size("probe-repeats");
  cfg.trainer.inherit_weights = args.get_flag("inherit-weights");
  cfg.trainer.inherit_epoch_fraction = args.get_double("inherit-fraction");
  if (cfg.trainer.inherit_weights &&
      (args.get("commons").empty() || args.get_size("snapshot-every") == 0)) {
    std::fprintf(stderr,
                 "--inherit-weights requires --commons and "
                 "--snapshot-every >= 1 (ancestor checkpoints)\n");
    return 1;
  }
  cfg.seed = static_cast<std::uint64_t>(args.get_double("seed"));
  if (args.get_size("intra-op-threads") > 0)
    tensor::set_intra_op_threads(args.get_size("intra-op-threads"));
  if (!args.get("tune-config").empty()) {
    try {
      tensor::load_tune_file(args.get("tune-config"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--tune-config: %s\n", e.what());
      return 1;
    }
  }
  if (!args.get("commons").empty()) {
    cfg.lineage = lineage::TrackerConfig{args.get("commons"),
                                         args.get_size("snapshot-every")};
    cfg.resume_from_commons = args.get_flag("resume");
  } else if (args.get_flag("resume") || args.get_flag("fsck") ||
             args.get_flag("fsck-deep")) {
    std::fprintf(stderr, "--resume and --fsck require --commons\n");
    return 1;
  }

  if (args.get_flag("fsck") || args.get_flag("fsck-deep")) {
    const bool deep = args.get_flag("deep") || args.get_flag("fsck-deep");
    std::optional<lineage::DataCommons> commons;
    try {
      commons.emplace(cfg.lineage->root);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fsck: %s\n", e.what());
      return 1;
    }
    const lineage::FsckReport report = commons->fsck(
        deep ? lineage::FsckMode::kDeep : lineage::FsckMode::kQuick);
    std::printf(
        "fsck%s: %zu model(s) scanned, %zu valid record(s), "
        "%zu file(s) quarantined, %zu tmp file(s) removed\n",
        deep ? " --deep" : "", report.models_scanned, report.records_valid,
        report.files_quarantined, report.tmp_files_removed);
    if (deep) {
      const lineage::IntegrityReport& integrity = report.integrity;
      util::AsciiTable table({"integrity check", "count"});
      table.add_row({"journal entries", std::to_string(integrity.journal_entries)});
      table.add_row({"files verified", std::to_string(integrity.files_verified)});
      table.add_row({"crc mismatches", std::to_string(integrity.crc_mismatches)});
      table.add_row({"missing files", std::to_string(integrity.missing_files)});
      table.add_row({"quarantined", std::to_string(report.files_quarantined)});
      table.add_row(
          {"torn journal lines", std::to_string(integrity.journal_torn_lines)});
      table.add_row(
          {"unjournaled adopted", std::to_string(integrity.unjournaled_adopted)});
      table.add_row(
          {"legacy unframed", std::to_string(integrity.legacy_unframed)});
      table.add_row({"journal rewritten", integrity.journal_rewritten ? "yes" : "no"});
      std::printf("%s", table.render().c_str());
    }
    for (const auto& issue : report.issues)
      std::printf("  issue %s: %s\n", issue.path.c_str(), issue.reason.c_str());
    return report.clean() ? 0 : 2;
  }

  std::printf("A4NN run: %zu networks, %s intensity, %zu GPU(s), engine %s\n",
              cfg.nas.total_networks(), intensity.c_str(),
              cfg.cluster.num_gpus,
              cfg.trainer.use_prediction_engine
                  ? (args.get_flag("ensemble") ? "ensemble"
                                               : args.get("function").c_str())
                  : "off");
  std::string trace_out = args.get("trace-out");
  if (trace_out.empty()) {
    if (const char* env = std::getenv("A4NN_TRACE")) trace_out = env;
  }
  if (!trace_out.empty()) util::trace::start();
  util::install_shutdown_handlers();

  std::optional<core::A4nnWorkflow> workflow_holder;
  core::WorkflowResult result;
  try {
    workflow_holder.emplace(std::move(cfg));
    result = workflow_holder->run();
  } catch (const orchestrator::WorkflowInterrupted& e) {
    if (!util::shutdown_requested()) {
      std::fprintf(stderr, "a4nn_run: %s\n", e.what());
      return 1;
    }
    // Graceful SIGINT/SIGTERM: completed records are already flushed to
    // the commons. Flush the trace and exit cleanly; --resume continues.
    if (!trace_out.empty()) {
      util::trace::stop();
      util::trace::write(trace_out);
    }
    std::printf("a4nn_run: stopped cleanly on signal %d (%s); rerun with "
                "--resume to continue\n",
                util::shutdown_signal(), e.what());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "a4nn_run: %s\n", e.what());
    return 1;
  }
  const core::A4nnWorkflow& workflow = *workflow_holder;

  if (!trace_out.empty()) {
    util::trace::stop();
    // The run's metrics snapshot rides along as an extra top-level key;
    // trace viewers ignore it, scripts/check_trace.py cross-checks it
    // against the span totals.
    util::Json extra = util::Json::object();
    extra["metrics"] = result.summary.metrics;
    if (util::trace::write(trace_out, &extra)) {
      std::printf(
          "trace: %s (open in chrome://tracing or https://ui.perfetto.dev)\n",
          trace_out.c_str());
    }
  }

  const auto& history = result.search.history;
  const auto savings = analytics::epoch_savings(history);
  const auto summary = analytics::fitness_summary(history);
  if (result.resumed_evaluations > 0) {
    std::printf("resumed: %zu of %zu evaluations reused from the commons\n",
                result.resumed_evaluations, history.size());
  }
  if (result.summary.resumed_epochs > 0)
    std::printf("resumed: %zu training epoch(s) skipped via checkpoints\n",
                result.summary.resumed_epochs);
  if (result.summary.genome_mismatches > 0)
    std::printf("resume: %zu stale record(s) rejected (genome mismatch)\n",
                result.summary.genome_mismatches);
  if (result.summary.memo_hits > 0)
    std::printf("memo: %zu evaluation(s) replayed from the fitness cache\n",
                result.summary.memo_hits);
  if (result.summary.inherited_starts > 0)
    std::printf("inherit: %zu child(ren) warm-started from ancestor "
                "checkpoints\n",
                result.summary.inherited_starts);
  if (result.summary.coalesced_evaluations > 0)
    std::printf("coalesce: %zu same-generation duplicate(s) rode a leader's "
                "training\n",
                result.summary.coalesced_evaluations);
  if (result.summary.latency_probes > 0)
    std::printf("latency: %zu candidate(s) probed at the serving batch "
                "geometry\n",
                result.summary.latency_probes);
  if (result.summary.failed_evaluations > 0)
    std::printf(
        "failed: %zu evaluation(s) exhausted retries (excluded from "
        "selection, Pareto, and the commons)\n",
        result.summary.failed_evaluations);
  const auto& faults = result.summary.faults;
  if (workflow.config().cluster.fault.enabled) {
    std::printf(
        "faults: %zu retries (%zu transient, %zu crashes, %zu stragglers), "
        "%zu device(s) lost, %zu job(s) failed, %.1f virtual s wasted\n",
        faults.retries, faults.transient_faults, faults.job_crashes,
        faults.straggler_events, faults.permanent_device_failures,
        faults.failed_jobs, faults.wasted_virtual_seconds);
  }
  std::printf("epochs: %zu/%zu (%.1f%% saved, %zu early terminations)\n",
              savings.epochs_trained, savings.epochs_budget,
              100.0 * savings.saved_fraction, savings.early_terminated);
  std::printf("best fitness: %.2f%%  virtual wall time: %.2f h  host: %.1f s\n",
              summary.best, result.virtual_wall_seconds / 3600.0,
              result.measured_wall_seconds);
  std::printf("Pareto front:\n");
  for (std::size_t idx : result.search.pareto) {
    const auto& r = history[idx];
    std::printf("  model %3d: %.2f%%  %llu FLOPs  %zu epochs%s\n", r.model_id,
                r.fitness, static_cast<unsigned long long>(r.flops),
                r.epochs_trained, r.early_terminated ? " [early]" : "");
  }
  if (result.commons_root)
    std::printf("commons: %s\n", result.commons_root->c_str());
  if (args.get_flag("dot")) {
    const auto& best = history[result.search.pareto.front()];
    std::printf("\n%s", analytics::to_dot(best.genome,
                                          workflow.config().nas.space)
                            .c_str());
  }
  return 0;
}
