// Composability demo: swapping the prediction engine's parametric fitness
// function — the paper's §2.6.3 "Prediction Engine Settings" knob.
//
//   ./custom_fitness_function [family]
//     family: pow_exp | inverse_power | logistic | vapor_pressure
//
// Defines a user-provided parametric family (a shifted hyperbola) to show
// the ParametricFunction extension point, then runs the engine over one
// real learning curve with both the chosen built-in family and the custom
// one, comparing when each would terminate training.
#include <cmath>
#include <cstdio>

#include "orchestrator/training_loop.hpp"
#include "xfel/dataset.hpp"

using namespace a4nn;

namespace {

/// User-defined family: F(x) = a - b / (x + c), c > 0 — another concave
/// saturating curve with plateau `a`.
class ShiftedHyperbola final : public penguin::ParametricFunction {
 public:
  std::string name() const override { return "shifted_hyperbola"; }
  std::size_t param_count() const override { return 3; }

  double eval(std::span<const double> p, double x) const override {
    return p[0] - p[1] / (x + p[2]);
  }

  void gradient(std::span<const double> p, double x,
                std::span<double> out) const override {
    out[0] = 1.0;
    out[1] = -1.0 / (x + p[2]);
    out[2] = p[1] / ((x + p[2]) * (x + p[2]));
  }

  std::optional<std::vector<double>> initial_guess(
      std::span<const double> xs, std::span<const double> ys) const override {
    double best = ys[0];
    for (double y : ys) best = std::max(best, y);
    // b from the first observation, unit shift.
    const double b0 = (best + 1.0 - ys[0]) * (xs[0] + 1.0);
    return std::vector<double>{best + 1.0, b0, 1.0};
  }

  bool valid_params(std::span<const double> p) const override {
    return std::isfinite(p[0]) && p[1] > 0.0 && p[2] > 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::string family = argc > 1 ? argv[1] : "pow_exp";

  // One real learning curve: train a model for the full budget.
  xfel::XfelDatasetConfig dcfg;
  dcfg.images_per_class = 100;
  dcfg.intensity = xfel::BeamIntensity::kMedium;
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(dcfg);

  orchestrator::TrainerConfig tcfg;
  tcfg.max_epochs = 25;
  tcfg.use_prediction_engine = false;  // record the whole curve
  orchestrator::TrainingLoop loop(data.train, data.validation, tcfg);
  nas::SearchSpaceConfig space;
  util::Rng rng(21);
  std::printf("training one NN for the full %zu epochs to record its curve...\n",
              tcfg.max_epochs);
  const nas::EvaluationRecord record = loop.train_genome(
      nas::random_genome(space.phase_count, space.nodes_per_phase, rng),
      space, 0, 333);
  std::printf("final validation accuracy: %.2f%%\n\n",
              record.fitness_history.back());

  auto report = [&](const char* label, penguin::FunctionPtr fn) {
    penguin::EngineConfig cfg = penguin::default_engine_config();
    cfg.function = std::move(fn);
    const penguin::PredictionEngine engine(cfg);
    const auto sim =
        penguin::simulate_early_termination(record.fitness_history, engine);
    if (sim.early_terminated) {
      std::printf("%-18s: terminate at epoch %zu, predicted %.2f%% "
                  "(true final %.2f%%)\n",
                  label, sim.epochs_trained, sim.reported_fitness,
                  record.fitness_history.back());
    } else {
      std::printf("%-18s: never converged; full %zu epochs trained\n", label,
                  sim.epochs_trained);
    }
  };

  report(family.c_str(), penguin::make_function(family));
  report("shifted_hyperbola", std::make_shared<ShiftedHyperbola>());
  std::printf(
      "\nThe engine, orchestrator, and NAS are untouched: composability means\n"
      "swapping F is one line in the engine's configuration (paper §2.6.3).\n");
  return 0;
}
