// Quickstart: generate a simulated XFEL protein-diffraction dataset, build
// a small CNN by hand, and train it — the substrate A4NN searches over.
//
//   ./quickstart [intensity] [epochs] [images_per_class]
//     intensity: low | medium | high   (default medium)
//
// Prints per-epoch training metrics and the final validation accuracy.
#include <cstdio>
#include <cstring>
#include <memory>

#include "nn/factory.hpp"
#include "nn/layers.hpp"
#include "nn/model.hpp"
#include "nn/phase_block.hpp"
#include "xfel/dataset.hpp"

using namespace a4nn;

namespace {

xfel::BeamIntensity parse_intensity(const char* s) {
  if (std::strcmp(s, "low") == 0) return xfel::BeamIntensity::kLow;
  if (std::strcmp(s, "high") == 0) return xfel::BeamIntensity::kHigh;
  return xfel::BeamIntensity::kMedium;
}

// A hand-built trunk in the same family the NAS explores: stem conv, one
// phase-style block, downsample, classifier head.
std::unique_ptr<nn::Sequential> build_trunk(std::size_t image_px,
                                            util::Rng& rng) {
  (void)image_px;
  auto trunk = std::make_unique<nn::Sequential>();
  trunk->append(std::make_unique<nn::Conv2d>(1, 8, 3, 1, 1, rng));
  trunk->append(std::make_unique<nn::BatchNorm2d>(8));
  trunk->append(std::make_unique<nn::ReLU>());
  nn::PhaseSpec phase;
  phase.nodes = 3;
  phase.bits = {true, true, false};  // 0->1, 0->2
  phase.skip = true;
  trunk->append(std::make_unique<nn::PhaseBlock>(phase, 8, rng));
  trunk->append(std::make_unique<nn::MaxPool2d>(2));
  trunk->append(std::make_unique<nn::Conv2d>(8, 16, 3, 1, 1, rng));
  trunk->append(std::make_unique<nn::BatchNorm2d>(16));
  trunk->append(std::make_unique<nn::ReLU>());
  trunk->append(std::make_unique<nn::MaxPool2d>(2));
  trunk->append(std::make_unique<nn::GlobalAvgPool>());
  trunk->append(std::make_unique<nn::Linear>(16, 2, rng));
  return trunk;
}

}  // namespace

int main(int argc, char** argv) {
  const xfel::BeamIntensity intensity =
      argc > 1 ? parse_intensity(argv[1]) : xfel::BeamIntensity::kMedium;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 10;
  const std::size_t per_class =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 200;

  xfel::XfelDatasetConfig cfg;
  cfg.intensity = intensity;
  cfg.images_per_class = per_class;
  std::printf("Generating %s-intensity XFEL dataset (%zu images/class, %zux%zu px)...\n",
              xfel::beam_name(intensity), per_class, cfg.detector.pixels,
              cfg.detector.pixels);
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(cfg);
  std::printf("train=%zu validation=%zu\n", data.train.size(),
              data.validation.size());

  util::Rng rng(123);
  nn::Model model(build_trunk(cfg.detector.pixels, rng),
                  data.train.image_shape());
  std::printf("model: %zu parameters, %llu FLOPs/image\n",
              model.parameter_count(),
              static_cast<unsigned long long>(model.flops_per_image()));

  nn::Sgd opt(0.05, 0.9, 1e-4);
  for (int e = 1; e <= epochs; ++e) {
    const nn::EpochMetrics train = model.train_epoch(data.train, 32, opt, rng);
    const nn::EpochMetrics val = model.evaluate(data.validation);
    std::printf("epoch %2d  train loss %.4f acc %6.2f%%   val loss %.4f acc %6.2f%%\n",
                e, train.loss, train.accuracy, val.loss, val.accuracy);
  }
  return 0;
}
