#include "tensor/ops.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "tensor/autotune.hpp"
#include "tensor/scratch.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace a4nn::tensor {

void axpy(float alpha, std::span<const float> x, std::span<float> out) {
  if (x.size() != out.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) out[i] += alpha * x[i];
}

Tensor add(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("add: shape mismatch");
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) out[i] = a[i] + b[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("mul: shape mismatch");
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) out[i] = a[i] * b[i];
  return out;
}

void scale(Tensor& t, float alpha) {
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] *= alpha;
}

double sum(const Tensor& t) {
  double acc = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) acc += t[i];
  return acc;
}

std::size_t argmax(std::span<const float> xs) {
  if (xs.empty()) throw std::invalid_argument("argmax: empty input");
  return static_cast<std::size_t>(
      std::max_element(xs.begin(), xs.end()) - xs.begin());
}

// --------------------------------------------------------------- GEMM
//
// One packed, cache-blocked driver serves every public variant. Transposed
// operands differ only in how the pack step gathers elements; after
// packing, the microkernel sees identical contiguous panels, so every
// variant gets the same inner loop and the same summation order.

namespace {

// Register tile (MR x NR accumulator): NR is one 16-lane float vector (a
// zmm register, or an emulated pair of ymm); MR = 6 keeps the accumulator
// tile inside the register file even on 256-bit hardware. The cache blocks
// (MC x KC A-tile in L2, KC x NR B-strips streaming from L1) are runtime
// values from TileConfig — hand-fixed defaults, overridable per (k, n) by
// the autotuner's tuned table.
constexpr std::size_t MR = kGemmMR;
constexpr std::size_t NR = kGemmNR;

// 16-lane float vector for the microkernel. GCC/Clang lower this to the
// widest SIMD the target has (one zmm, two ymm, or four xmm); lane-wise
// arithmetic keeps the exact per-element summation order of the scalar
// fallback, so results stay deterministic either way.
#if defined(__GNUC__) || defined(__clang__)
#define A4NN_VECTOR_KERNEL 1
typedef float vf16 __attribute__((vector_size(64)));
static_assert(NR * sizeof(float) == 64);
#endif

// The invariants TileConfig.small_row_flops and .kc are bound by: the
// small/blocked choice compares n*k (never m), and KC groups each row's
// k-panel partials identically at any m — so one output row is
// bit-identical whether it was computed alone or inside any larger batch.
// The serving engine's batch-size-invariance guarantee rests on this,
// which is why the tuned table below is keyed on (k, n) alone and why
// tile_config_for must never consult m.

// Tuned blocking, keyed by packed (k, n). Installed once at startup
// (set_tuned_tile_configs); read-only while kernels run, so the lookup
// needs no lock. Empty means "defaults everywhere".
using TileTable = std::unordered_map<std::uint64_t, TileConfig>;

TileTable& tile_table() {
  static TileTable table;
  return table;
}

constexpr TileConfig kDefaultTiles{};

inline std::uint64_t kn_key(std::size_t k, std::size_t n) {
  return (static_cast<std::uint64_t>(k) << 32) |
         static_cast<std::uint64_t>(n & 0xffffffffu);
}

inline std::size_t round_up(std::size_t x, std::size_t to) {
  return (x + to - 1) / to * to;
}

// Element accessors: `trans` means the buffer stores the mathematical
// operand transposed (A_t is (k x m); B_t is (n x k)).
inline float load_a(const float* a, bool trans, std::size_t m, std::size_t k,
                    std::size_t i, std::size_t kk) {
  return trans ? a[kk * m + i] : a[i * k + kk];
}
inline float load_b(const float* b, bool trans, std::size_t k, std::size_t n,
                    std::size_t kk, std::size_t j) {
  return trans ? b[j * k + kk] : b[kk * n + j];
}

// Pack an (mc x kc) tile of A into MR-row strips:
// out[s*kc*MR + kk*MR + r] = A(m0 + s*MR + r, k0 + kk), zero-padded rows.
void pack_a_tile(const float* a, bool trans, std::size_t m, std::size_t k,
                 std::size_t m0, std::size_t mc, std::size_t k0,
                 std::size_t kc, float* out) {
  const std::size_t strips = (mc + MR - 1) / MR;
  for (std::size_t s = 0; s < strips; ++s) {
    float* dst = out + s * kc * MR;
    for (std::size_t kk = 0; kk < kc; ++kk) {
      for (std::size_t r = 0; r < MR; ++r) {
        const std::size_t row = s * MR + r;
        dst[kk * MR + r] =
            row < mc ? load_a(a, trans, m, k, m0 + row, k0 + kk) : 0.0f;
      }
    }
  }
}

// Pack a (kc x nc) tile of B into NR-column strips:
// out[s*kc*NR + kk*NR + c] = B(k0 + kk, n0 + s*NR + c), zero-padded cols.
void pack_b_tile(const float* b, bool trans, std::size_t k, std::size_t n,
                 std::size_t k0, std::size_t kc, std::size_t n0,
                 std::size_t nc, float* out) {
  const std::size_t strips = (nc + NR - 1) / NR;
  for (std::size_t s = 0; s < strips; ++s) {
    float* dst = out + s * kc * NR;
    for (std::size_t kk = 0; kk < kc; ++kk) {
      for (std::size_t c = 0; c < NR; ++c) {
        const std::size_t col = s * NR + c;
        dst[kk * NR + c] =
            col < nc ? load_b(b, trans, k, n, k0 + kk, n0 + col) : 0.0f;
      }
    }
  }
}

// acc(MR x NR) = Apanel(kc x MR) * Bpanel(kc x NR), acc zeroed by the
// caller. The accumulator tile lives in MR vector registers for the whole
// k-loop; each step broadcasts one A element per row against the same
// B vector (a register-resident rank-1 update chain).
inline void micro_kernel(std::size_t kc, const float* __restrict ap,
                         const float* __restrict bp, float* __restrict acc) {
#ifdef A4NN_VECTOR_KERNEL
  vf16 c[MR] = {};
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const float* arow = ap + kk * MR;
    vf16 b;
    __builtin_memcpy(&b, bp + kk * NR, sizeof b);
    for (std::size_t r = 0; r < MR; ++r) c[r] += arow[r] * b;
  }
  for (std::size_t r = 0; r < MR; ++r)
    __builtin_memcpy(acc + r * NR, &c[r], sizeof(vf16));
#else
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const float* arow = ap + kk * MR;
    const float* brow = bp + kk * NR;
    for (std::size_t r = 0; r < MR; ++r) {
      const float av = arow[r];
      float* accrow = acc + r * NR;
      for (std::size_t c = 0; c < NR; ++c) accrow[c] += av * brow[c];
    }
  }
#endif
}

// Commit one accumulator tile to C; fuses the epilogue on the final
// k-block so biased/activated outputs never need a second pass.
inline void write_tile(float* cmat, std::size_t n, std::size_t i0,
                       std::size_t j0, std::size_t rows, std::size_t cols,
                       const float* acc, bool overwrite, const Epilogue* ep) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* crow = cmat + (i0 + r) * n + j0;
    const float* arow = acc + r * NR;
    const float row_bias =
        ep && ep->bias == Epilogue::Bias::kPerRow ? ep->bias_data[i0 + r]
                                                  : 0.0f;
    for (std::size_t cc = 0; cc < cols; ++cc) {
      float v = overwrite ? arow[cc] : crow[cc] + arow[cc];
      if (ep) {
        v += ep->bias == Epilogue::Bias::kPerCol ? ep->bias_data[j0 + cc]
                                                 : row_bias;
        if (ep->relu && v < 0.0f) v = 0.0f;
      }
      crow[cc] = v;
    }
  }
}

void epilogue_pass(float* c, std::size_t m, std::size_t n,
                   const Epilogue& ep) {
  for (std::size_t i = 0; i < m; ++i) {
    float* row = c + i * n;
    const float row_bias =
        ep.bias == Epilogue::Bias::kPerRow ? ep.bias_data[i] : 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      float v = row[j];
      v += ep.bias == Epilogue::Bias::kPerCol ? ep.bias_data[j] : row_bias;
      if (ep.relu && v < 0.0f) v = 0.0f;
      row[j] = v;
    }
  }
}

// Unblocked path for tiny problems.
void small_gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
                bool at, const float* b, bool bt, float* c, bool accumulate,
                const Epilogue* ep) {
  if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
  if (bt && !at) {
    // Row-dot-row: both operands stream contiguously.
    for (std::size_t i = 0; i < m; ++i) {
      const float* a_row = a + i * k;
      float* c_row = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float* b_row = b + j * k;
        float acc = 0.0f;
        for (std::size_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
        c_row[j] += acc;
      }
    }
  } else {
    // i-k-j: C rows and B rows stream (B gathered when transposed).
    for (std::size_t i = 0; i < m; ++i) {
      float* c_row = c + i * n;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float a_ik = load_a(a, at, m, k, i, kk);
        if (a_ik == 0.0f) continue;
        for (std::size_t j = 0; j < n; ++j)
          c_row[j] += a_ik * load_b(b, bt, k, n, kk, j);
      }
    }
  }
  if (ep) epilogue_pass(c, m, n, *ep);
}

// The cache-blocked macrokernel, parameterized over how B panels are
// produced: pack_b(k0, kc, n0, nc, out) fills a (kc x nc) tile in NR-column
// strips. The GEMM variants gather from a materialized B; the direct
// convolution gathers straight from the image. Everything downstream of
// the packed panels — loop order, microkernel, writeback — is shared, so
// two packers producing identical panel bytes produce identical results.
template <typename PackB>
void blocked_gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
                  bool at, float* c, bool accumulate, const Epilogue* ep,
                  const TileConfig& t, PackB&& pack_b) {
  const std::size_t MC = t.mc, KC = t.kc, NC = t.nc;
  ScratchScope scratch;
  float* bpack =
      scratch.alloc(std::min(k, KC) * round_up(std::min(n, NC), NR)).data();
  float* apack =
      scratch.alloc(std::min(k, KC) * round_up(std::min(m, MC), MR)).data();

  for (std::size_t k0 = 0; k0 < k; k0 += KC) {
    const std::size_t kc = std::min(KC, k - k0);
    const bool first_kb = k0 == 0;
    const bool last_kb = k0 + kc == k;
    for (std::size_t n0 = 0; n0 < n; n0 += NC) {
      const std::size_t nc = std::min(NC, n - n0);
      pack_b(k0, kc, n0, nc, bpack);
      const std::size_t nstrips = (nc + NR - 1) / NR;
      for (std::size_t m0 = 0; m0 < m; m0 += MC) {
        const std::size_t mc = std::min(MC, m - m0);
        pack_a_tile(a, at, m, k, m0, mc, k0, kc, apack);
        const std::size_t mstrips = (mc + MR - 1) / MR;
        for (std::size_t ms = 0; ms < mstrips; ++ms) {
          for (std::size_t ns = 0; ns < nstrips; ++ns) {
            alignas(64) float acc[MR * NR] = {};
            micro_kernel(kc, apack + ms * kc * MR, bpack + ns * kc * NR, acc);
            write_tile(c, n, m0 + ms * MR, n0 + ns * NR,
                       std::min(MR, mc - ms * MR), std::min(NR, nc - ns * NR),
                       acc, first_kb && !accumulate,
                       last_kb ? ep : nullptr);
          }
        }
      }
    }
  }
}

void count_gemm_call(std::size_t m, std::size_t k, std::size_t n) {
  // GEMM is the innermost hot path, so per-call accounting is gated on
  // tracing being live; a bare run pays only one relaxed atomic load.
  if (!util::trace::enabled()) return;
  auto& registry = util::metrics::global();
  registry.counter("gemm.calls").add();
  registry.counter("gemm.flops")
      .add(2.0 * static_cast<double>(m) * static_cast<double>(k) *
           static_cast<double>(n));
  registry.gauge("gemm.scratch_high_water_floats")
      .update_max(static_cast<double>(ScratchArena::tls().high_water()));
}

void gemm_driver(std::size_t m, std::size_t k, std::size_t n, const float* a,
                 bool at, const float* b, bool bt, float* c, bool accumulate,
                 const Epilogue* ep, const TileConfig* forced = nullptr) {
  // First GEMM of the process installs A4NN_TUNE (if set); afterwards this
  // is one relaxed atomic load inside std::call_once.
  ensure_env_tune_loaded();
  count_gemm_call(m, k, n);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
    if (ep) epilogue_pass(c, m, n, *ep);
    return;
  }
  const TileConfig& t = forced ? *forced : tile_config_for(k, n);
  if (n * k <= t.small_row_flops) {
    small_gemm(m, k, n, a, at, b, bt, c, accumulate, ep);
    return;
  }
  blocked_gemm(m, k, n, a, at, c, accumulate, ep, t,
               [&](std::size_t k0, std::size_t kc, std::size_t n0,
                   std::size_t nc, float* out) {
                 pack_b_tile(b, bt, k, n, k0, kc, n0, nc, out);
               });
}

}  // namespace

void validate_tile_config(const TileConfig& config) {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("TileConfig: " + what);
  };
  if (config.mc == 0 || config.mc % kGemmMR != 0)
    fail("mc (" + std::to_string(config.mc) +
         ") must be a positive multiple of MR=" + std::to_string(kGemmMR));
  if (config.nc == 0 || config.nc % kGemmNR != 0)
    fail("nc (" + std::to_string(config.nc) +
         ") must be a positive multiple of NR=" + std::to_string(kGemmNR));
  if (config.kc == 0) fail("kc must be positive");
}

void set_tuned_tile_configs(const std::vector<TunedTileEntry>& entries) {
  TileTable table;
  table.reserve(entries.size());
  for (const TunedTileEntry& e : entries) {
    if (e.k == 0 || e.n == 0)
      throw std::invalid_argument("TunedTileEntry: zero (k, n) key");
    validate_tile_config(e.config);
    if (!table.emplace(kn_key(e.k, e.n), e.config).second)
      throw std::invalid_argument(
          "TunedTileEntry: duplicate (k=" + std::to_string(e.k) +
          ", n=" + std::to_string(e.n) +
          ") key — one shape must map to one config (batch invariance)");
  }
  tile_table() = std::move(table);
}

void clear_tuned_tile_configs() { tile_table().clear(); }

const TileConfig& tile_config_for(std::size_t k, std::size_t n) {
  const TileTable& table = tile_table();
  if (table.empty()) return kDefaultTiles;
  const auto it = table.find(kn_key(k, n));
  return it == table.end() ? kDefaultTiles : it->second;
}

void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c) {
  gemm_driver(m, k, n, a, false, b, false, c, /*accumulate=*/false, nullptr);
}

void gemm_accumulate(std::size_t m, std::size_t k, std::size_t n,
                     const float* a, const float* b, float* c) {
  gemm_driver(m, k, n, a, false, b, false, c, /*accumulate=*/true, nullptr);
}

void gemm_ex(std::size_t m, std::size_t k, std::size_t n, const float* a,
             const float* b, float* c, const Epilogue& epilogue) {
  gemm_driver(m, k, n, a, false, b, false, c, /*accumulate=*/false, &epilogue);
}

void gemm_at_b(std::size_t m, std::size_t k, std::size_t n, const float* a_t,
               const float* b, float* c) {
  gemm_driver(m, k, n, a_t, true, b, false, c, /*accumulate=*/false, nullptr);
}

void gemm_at_b_acc(std::size_t m, std::size_t k, std::size_t n,
                   const float* a_t, const float* b, float* c) {
  gemm_driver(m, k, n, a_t, true, b, false, c, /*accumulate=*/true, nullptr);
}

void gemm_a_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b_t, float* c) {
  gemm_driver(m, k, n, a, false, b_t, true, c, /*accumulate=*/false, nullptr);
}

void gemm_a_bt_acc(std::size_t m, std::size_t k, std::size_t n, const float* a,
                   const float* b_t, float* c) {
  gemm_driver(m, k, n, a, false, b_t, true, c, /*accumulate=*/true, nullptr);
}

void gemm_a_bt_ex(std::size_t m, std::size_t k, std::size_t n, const float* a,
                  const float* b_t, float* c, const Epilogue& epilogue) {
  gemm_driver(m, k, n, a, false, b_t, true, c, /*accumulate=*/false, &epilogue);
}

void gemm_with_config(std::size_t m, std::size_t k, std::size_t n,
                      const float* a, const float* b, float* c,
                      const TileConfig& config) {
  validate_tile_config(config);
  gemm_driver(m, k, n, a, false, b, false, c, /*accumulate=*/false, nullptr,
              &config);
}

void gemm_a_bt_with_config(std::size_t m, std::size_t k, std::size_t n,
                           const float* a, const float* b_t, float* c,
                           const TileConfig& config) {
  validate_tile_config(config);
  gemm_driver(m, k, n, a, false, b_t, true, c, /*accumulate=*/false, nullptr,
              &config);
}

void gemm_naive(std::size_t m, std::size_t k, std::size_t n, const float* a,
                const float* b, float* c) {
  std::memset(c, 0, m * n * sizeof(float));
  for (std::size_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    const float* a_row = a + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float a_ik = a_row[kk];
      if (a_ik == 0.0f) continue;
      const float* b_row = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) c_row[j] += a_ik * b_row[j];
    }
  }
}

void ConvGeometry::validate() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("ConvGeometry: " + what);
  };
  if (in_channels == 0 || in_h == 0 || in_w == 0)
    fail("zero input extent (" + std::to_string(in_channels) + "x" +
         std::to_string(in_h) + "x" + std::to_string(in_w) + ")");
  if (kernel == 0) fail("zero kernel");
  if (stride == 0) fail("zero stride");
  if (pad >= kernel)
    fail("padding (" + std::to_string(pad) + ") >= receptive extent (" +
         std::to_string(kernel) +
         "): border outputs would read only padding");
  if (in_h + 2 * pad < kernel || in_w + 2 * pad < kernel)
    fail("output dims truncate to zero: input " + std::to_string(in_h) + "x" +
         std::to_string(in_w) + " + 2*pad " + std::to_string(pad) +
         " is smaller than kernel " + std::to_string(kernel));
}

void im2col(const ConvGeometry& g, std::span<const float> image,
            std::span<float> columns) {
  g.validate();
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t cols = oh * ow;
  if (image.size() != g.in_channels * g.in_h * g.in_w)
    throw std::invalid_argument("im2col: image size mismatch");
  if (columns.size() != g.patch_size() * cols)
    throw std::invalid_argument("im2col: column buffer size mismatch");

  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    const float* plane = image.data() + c * g.in_h * g.in_w;
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx, ++row) {
        float* out_row = columns.data() + row * cols;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          // Input y for this output row (may fall in the padding band).
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride + ky) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) {
            std::memset(out_row + oy * ow, 0, ow * sizeof(float));
            continue;
          }
          const float* in_row = plane + static_cast<std::size_t>(iy) * g.in_w;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * g.stride + kx) -
                static_cast<std::ptrdiff_t>(g.pad);
            out_row[oy * ow + ox] =
                (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w))
                    ? 0.0f
                    : in_row[static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

void col2im(const ConvGeometry& g, std::span<const float> columns,
            std::span<float> image_grad) {
  g.validate();
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t cols = oh * ow;
  if (image_grad.size() != g.in_channels * g.in_h * g.in_w)
    throw std::invalid_argument("col2im: image size mismatch");
  if (columns.size() != g.patch_size() * cols)
    throw std::invalid_argument("col2im: column buffer size mismatch");

  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    float* plane = image_grad.data() + c * g.in_h * g.in_w;
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* in_row_base = columns.data() + row * cols;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride + ky) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
          float* out_row = plane + static_cast<std::size_t>(iy) * g.in_w;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * g.stride + kx) -
                static_cast<std::ptrdiff_t>(g.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w)) continue;
            out_row[static_cast<std::size_t>(ix)] += in_row_base[oy * ow + ox];
          }
        }
      }
    }
  }
}

// ------------------------------------------------- direct 3x3 convolution

namespace {

// Pack a (kc x nc) tile of the IMPLICIT im2col matrix of `image` (3x3
// kernel, stride 1) into NR-column strips — byte-for-byte what
// pack_b_tile() would produce from a materialized im2col buffer, gathered
// straight from the image instead. Each im2col row k0+kk is one fixed
// (channel, ky, kx); along an output row the input column advances in
// lockstep with the output column, so the interior of every strip row is a
// straight memcpy from the image with explicit zero runs for the padding
// bands.
void pack_b_conv3x3_tile(const float* image, const ConvGeometry& g,
                         std::size_t k0, std::size_t kc, std::size_t n0,
                         std::size_t nc, float* out) {
  const std::size_t ow = g.out_w();
  const std::size_t strips = (nc + NR - 1) / NR;
  const std::ptrdiff_t in_h = static_cast<std::ptrdiff_t>(g.in_h);
  const std::ptrdiff_t in_w = static_cast<std::ptrdiff_t>(g.in_w);
  const std::size_t plane_size = g.in_h * g.in_w;
  for (std::size_t s = 0; s < strips; ++s) {
    float* dst = out + s * kc * NR;
    const std::size_t col0 = s * NR;
    // Real (non-pad-to-strip) columns of this strip; trailing columns are
    // zeroed to mirror pack_b_tile's zero padding.
    const std::size_t real =
        col0 < nc ? std::min<std::size_t>(NR, nc - col0) : 0;
    // Output pixel of the strip's first column — the only divisions in the
    // routine; the row loop advances (oy, ox) and (c, ky, kx) by increment.
    const std::size_t j0 = n0 + col0;
    const std::size_t oy0 = j0 / ow;
    const std::size_t ox0 = j0 % ow;
    std::size_t c = k0 / 9;
    std::size_t ky = (k0 % 9) / 3;
    std::size_t kx = k0 % 3;
    const float* plane = image + c * plane_size;
    for (std::size_t kk = 0; kk < kc; ++kk) {
      float* drow = dst + kk * NR;
      if (real < NR)
        std::memset(drow + real, 0, (NR - real) * sizeof(float));
      // ix = ox + kx - pad is valid for ox in [pad-kx, in_w-kx+pad).
      const std::ptrdiff_t shift = static_cast<std::ptrdiff_t>(kx) -
                                   static_cast<std::ptrdiff_t>(g.pad);
      std::size_t oy = oy0;
      std::size_t ox = ox0;
      std::size_t cc = 0;
      while (cc < real) {
        // Columns [cc, cc+run) share output row oy.
        const std::size_t run = std::min(ow - ox, real - cc);
        const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                  static_cast<std::ptrdiff_t>(g.pad);
        float* d = drow + cc;
        if (iy < 0 || iy >= in_h) {
          std::memset(d, 0, run * sizeof(float));
        } else {
          const float* in_row = plane + static_cast<std::size_t>(iy) * g.in_w;
          const std::ptrdiff_t lo =
              std::max<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(ox),
                                       -shift);
          const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(
              static_cast<std::ptrdiff_t>(ox + run), in_w - shift);
          if (hi <= lo) {
            std::memset(d, 0, run * sizeof(float));
          } else {
            const std::size_t lead = static_cast<std::size_t>(lo) - ox;
            const std::size_t mid = static_cast<std::size_t>(hi - lo);
            if (lead > 0) std::memset(d, 0, lead * sizeof(float));
            std::memcpy(d + lead, in_row + (lo + shift), mid * sizeof(float));
            if (lead + mid < run)
              std::memset(d + lead + mid, 0,
                          (run - lead - mid) * sizeof(float));
          }
        }
        cc += run;
        ox += run;
        if (ox == ow) {
          ox = 0;
          ++oy;
        }
      }
      // Next im2col row: kx fastest, then ky, then channel.
      if (++kx == 3) {
        kx = 0;
        if (++ky == 3) {
          ky = 0;
          ++c;
          plane += plane_size;
        }
      }
    }
  }
}

}  // namespace

bool conv2d_direct_viable(const ConvGeometry& g) {
  // 3x3 stride-1 is what the fused packer implements; the out_w >= NR
  // condition is a measured perf heuristic, not a correctness one: with
  // narrower outputs every NR-strip row splits into multiple short branchy
  // runs, and the two-pass im2col path (straight contiguous copies both
  // passes) is faster. out_w >= NR keeps one memcpy-dominated run per
  // strip row, where skipping the materialization wins (~1.3x in
  // bench_kernels on the 16x16 search-space shapes).
  return g.kernel == 3 && g.stride == 1 && g.out_w() >= kGemmNR;
}

void conv2d_forward_direct(const ConvGeometry& g, std::size_t out_channels,
                           const float* weights, std::span<const float> image,
                           float* out, const Epilogue& epilogue) {
  g.validate();
  if (image.size() != g.in_channels * g.in_h * g.in_w)
    throw std::invalid_argument("conv2d_forward_direct: image size mismatch");
  const std::size_t m = out_channels;
  const std::size_t k = g.patch_size();
  const std::size_t n = g.out_h() * g.out_w();
  ensure_env_tune_loaded();
  const TileConfig& t = tile_config_for(k, n);
  if (!conv2d_direct_viable(g) || n * k <= t.small_row_flops) {
    // General geometries and small problems take the materialized path —
    // the exact code the caller would have run, so the bits cannot differ.
    ScratchScope scratch;
    std::span<float> cols = scratch.alloc(k * n);
    im2col(g, image, cols);
    gemm_driver(m, k, n, weights, false, cols.data(), false, out,
                /*accumulate=*/false, &epilogue);
    return;
  }
  count_gemm_call(m, k, n);
  if (util::trace::enabled())
    util::metrics::global().counter("conv.direct_calls").add();
  blocked_gemm(m, k, n, weights, false, out, /*accumulate=*/false, &epilogue,
               t,
               [&](std::size_t k0, std::size_t kc, std::size_t n0,
                   std::size_t nc, float* bpack) {
                 pack_b_conv3x3_tile(image.data(), g, k0, kc, n0, nc, bpack);
               });
}

}  // namespace a4nn::tensor
