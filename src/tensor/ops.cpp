#include "tensor/ops.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace a4nn::tensor {

void axpy(float alpha, std::span<const float> x, std::span<float> out) {
  if (x.size() != out.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) out[i] += alpha * x[i];
}

Tensor add(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("add: shape mismatch");
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) out[i] = a[i] + b[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("mul: shape mismatch");
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) out[i] = a[i] * b[i];
  return out;
}

void scale(Tensor& t, float alpha) {
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] *= alpha;
}

double sum(const Tensor& t) {
  double acc = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) acc += t[i];
  return acc;
}

std::size_t argmax(std::span<const float> xs) {
  if (xs.empty()) throw std::invalid_argument("argmax: empty input");
  return static_cast<std::size_t>(
      std::max_element(xs.begin(), xs.end()) - xs.begin());
}

void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c) {
  std::memset(c, 0, m * n * sizeof(float));
  gemm_accumulate(m, k, n, a, b, c);
}

void gemm_accumulate(std::size_t m, std::size_t k, std::size_t n,
                     const float* a, const float* b, float* c) {
  // i-k-j ordering: the inner loop streams through contiguous rows of B and
  // C, which the compiler auto-vectorizes.
  for (std::size_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    const float* a_row = a + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float a_ik = a_row[kk];
      if (a_ik == 0.0f) continue;
      const float* b_row = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) c_row[j] += a_ik * b_row[j];
    }
  }
}

void gemm_at_b(std::size_t m, std::size_t k, std::size_t n, const float* a_t,
               const float* b, float* c) {
  // C(m x n) = A^T * B with A stored (k x m): equivalent to accumulating
  // outer products of A rows and B rows.
  std::memset(c, 0, m * n * sizeof(float));
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* a_row = a_t + kk * m;
    const float* b_row = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float a_ki = a_row[i];
      if (a_ki == 0.0f) continue;
      float* c_row = c + i * n;
      for (std::size_t j = 0; j < n; ++j) c_row[j] += a_ki * b_row[j];
    }
  }
}

void gemm_a_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b_t, float* c) {
  // C(m x n) = A * B^T with B stored (n x k): dot products of rows.
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = b_t + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
      c_row[j] = acc;
    }
  }
}

void im2col(const ConvGeometry& g, std::span<const float> image,
            std::span<float> columns) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t cols = oh * ow;
  if (image.size() != g.in_channels * g.in_h * g.in_w)
    throw std::invalid_argument("im2col: image size mismatch");
  if (columns.size() != g.patch_size() * cols)
    throw std::invalid_argument("im2col: column buffer size mismatch");

  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    const float* plane = image.data() + c * g.in_h * g.in_w;
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx, ++row) {
        float* out_row = columns.data() + row * cols;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          // Input y for this output row (may fall in the padding band).
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride + ky) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) {
            std::memset(out_row + oy * ow, 0, ow * sizeof(float));
            continue;
          }
          const float* in_row = plane + static_cast<std::size_t>(iy) * g.in_w;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * g.stride + kx) -
                static_cast<std::ptrdiff_t>(g.pad);
            out_row[oy * ow + ox] =
                (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w))
                    ? 0.0f
                    : in_row[static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

void col2im(const ConvGeometry& g, std::span<const float> columns,
            std::span<float> image_grad) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t cols = oh * ow;
  if (image_grad.size() != g.in_channels * g.in_h * g.in_w)
    throw std::invalid_argument("col2im: image size mismatch");
  if (columns.size() != g.patch_size() * cols)
    throw std::invalid_argument("col2im: column buffer size mismatch");

  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    float* plane = image_grad.data() + c * g.in_h * g.in_w;
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* in_row_base = columns.data() + row * cols;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride + ky) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
          float* out_row = plane + static_cast<std::size_t>(iy) * g.in_w;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * g.stride + kx) -
                static_cast<std::ptrdiff_t>(g.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w)) continue;
            out_row[static_cast<std::size_t>(ix)] += in_row_base[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace a4nn::tensor
