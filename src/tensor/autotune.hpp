// One-shot kernel autotuner: sweeps the cache-blocking candidates over the
// GEMM shape classes the search space actually emits (im2col conv GEMMs,
// eval-mode whole-batch Linear, serving micro-batch Linear) and picks a
// winner per (k, n).
//
// Determinism and resumability come from journal replay, not from
// pretending timing is deterministic: tune.json records every raw
// measurement, and a re-run (or a resume after an interrupt) reuses the
// recorded numbers instead of re-timing, so the winners — and the emitted
// bytes — are a pure function of the journal. A tune started and finished
// on one machine therefore replays byte-identically anywhere, which is
// what lets CI assert "same seed, same tune.json" and lets the artifact
// live under the commons' CRC/journal discipline like any other.
//
// Shapes sharing (k, n) (an eval-batch Linear and a serving micro-batch of
// the same layer differ only in m) are co-tuned: one winner is chosen by
// summed time across the claiming shapes, because the runtime table is
// keyed on (k, n) alone — see ops.hpp TileConfig for why m must not key
// the lookup.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tensor/ops.hpp"
#include "util/json.hpp"

namespace a4nn::tensor {

/// One GEMM problem to tune: a shape class name plus the (m, k, n) it
/// emits. `b_transposed` selects the operand layout actually used by that
/// class (Linear layers store weights (n x k) and run gemm_a_bt).
struct TuneShape {
  std::string cls;
  std::size_t m = 0;
  std::size_t k = 0;
  std::size_t n = 0;
  bool b_transposed = false;

  /// Stable journal key, e.g. "conv_im2col m16 k36 n64".
  std::string key() const;
};

/// Measurement hook: nanoseconds to run `shape` under `config`. Tests
/// inject a fake to make the whole pipeline deterministic end to end; the
/// default hook times the real kernels (best of `repeats` runs).
using MeasureFn = std::function<double(const TuneShape&, const TileConfig&)>;

struct TuneOptions {
  /// Seeds the operand buffers of the default measurement hook and is
  /// recorded in tune.json as part of the journal identity.
  std::uint64_t seed = 0;
  /// Timing repeats per (shape, candidate); the minimum is recorded.
  std::size_t repeats = 3;
  /// Override the measurement hook (tests). Null uses real timing.
  MeasureFn measure;
};

struct TuneResult {
  /// The complete tune.json document (journal + winners + entries).
  util::Json doc;
  /// The installed form of the winners, ready for
  /// set_tuned_tile_configs().
  std::vector<TunedTileEntry> entries;
};

/// The deterministic candidate list every tune sweeps. candidates[0] is
/// the compiled default TileConfig, so a tuned table can never lose to the
/// untuned baseline on a journaled shape. All candidates satisfy
/// validate_tile_config.
const std::vector<TileConfig>& candidate_tile_configs();

/// The shape classes emitted by the phase-based search space for a given
/// dataset geometry: per-layer im2col conv GEMMs, the eval-mode
/// whole-batch Linear, and serving micro-batch Linears.
std::vector<TuneShape> search_space_tune_shapes(
    std::size_t pixels, std::size_t num_classes, std::size_t stem_channels,
    std::size_t eval_batch, const std::vector<std::size_t>& serve_batches);

/// Run (or resume) a tune. `prior` is a previously produced tune.json:
/// any (shape, candidate) measurement it already records — under the same
/// seed, repeats, and candidate list — is reused verbatim; only missing
/// measurements are timed. Passing a completed journal back in therefore
/// re-emits it byte-identically without running a single kernel.
TuneResult run_tune(const std::vector<TuneShape>& shapes,
                    const TuneOptions& options,
                    const util::Json* prior = nullptr);

/// Parse a tune.json document into runtime table entries, validating every
/// config. Throws util::JsonError / std::invalid_argument on malformed or
/// constraint-violating content.
std::vector<TunedTileEntry> tune_entries_from_json(const util::Json& doc);

/// Parse + install: set_tuned_tile_configs(tune_entries_from_json(doc)).
void apply_tune_document(const util::Json& doc);

/// Read `path` (a framed commons artifact or plain JSON), parse, install.
void load_tune_file(const std::string& path);

/// Install the file named by $A4NN_TUNE, once per process. Called from the
/// GEMM driver; after the first call it is a single std::call_once load.
/// A malformed file aborts startup loudly rather than silently untuned.
void ensure_env_tune_loaded();

}  // namespace a4nn::tensor
