#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace a4nn::tensor {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream oss;
  oss << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) oss << 'x';
    oss << shape[i];
  }
  oss << ']';
  return oss.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_numel(shape_))
    throw std::invalid_argument("Tensor: data size does not match shape " +
                                shape_to_string(shape_));
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, util::Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_)
    x = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::he_init(Shape shape, std::size_t fan_in, util::Rng& rng) {
  if (fan_in == 0) throw std::invalid_argument("he_init: fan_in must be > 0");
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return randn(std::move(shape), rng, 0.0f, stddev);
}

Tensor Tensor::xavier_init(Shape shape, std::size_t fan_in,
                           std::size_t fan_out, util::Rng& rng) {
  if (fan_in + fan_out == 0)
    throw std::invalid_argument("xavier_init: fans must be > 0");
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  Tensor t(std::move(shape));
  for (auto& x : t.data_)
    x = static_cast<float>(rng.uniform(-a, a));
  return t;
}

std::size_t Tensor::dim(std::size_t axis) const {
  if (axis >= shape_.size())
    throw std::out_of_range("Tensor::dim: axis out of range");
  return shape_[axis];
}

float& Tensor::at(std::size_t i) {
  if (i >= data_.size()) throw std::out_of_range("Tensor::at: index out of range");
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  if (i >= data_.size()) throw std::out_of_range("Tensor::at: index out of range");
  return data_[i];
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  if (rank() != 4) throw std::logic_error("Tensor::at4: rank != 4");
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) const {
  if (rank() != 4) throw std::logic_error("Tensor::at4: rank != 4");
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (shape_numel(new_shape) != numel())
    throw std::invalid_argument("Tensor::reshaped: numel mismatch " +
                                shape_to_string(shape_) + " -> " +
                                shape_to_string(new_shape));
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

}  // namespace a4nn::tensor
