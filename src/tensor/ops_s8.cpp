// int8 inference kernels: symmetric quantization helpers and the
// dequant-fused GEMM the quantized serving path runs on.
//
// The accumulator is int32 and the products are int8*int8, so every dot
// product is computed exactly: the only rounding in the whole pipeline
// happens once, at quantization time. That makes int8 predictions
// bit-deterministic by construction — no tile table, no summation-order
// contract, no per-shape tuning — while the inner loop still
// auto-vectorizes (widen to int16/int32 and multiply-accumulate).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "tensor/ops.hpp"

namespace a4nn::tensor {

namespace {

/// Beyond this depth k * 127 * 127 no longer fits an int32 accumulator.
constexpr std::size_t kMaxS8Depth =
    static_cast<std::size_t>(INT32_MAX) / (127 * 127);

/// Resolve a broadcastable scale span: size 1 broadcasts, size `rows` is
/// per-row; anything else is a caller bug.
float scale_at(std::span<const float> scales, std::size_t row) {
  return scales.size() == 1 ? scales[0] : scales[row];
}

void validate_scales(std::span<const float> scales, std::size_t rows,
                     const char* which) {
  if (scales.size() != 1 && scales.size() != rows)
    throw std::invalid_argument(
        std::string("gemm_s8_a_bt_ex: ") + which + " scale span has " +
        std::to_string(scales.size()) + " entries, expected 1 or " +
        std::to_string(rows));
  for (float s : scales)
    if (!(s > 0.0f))
      throw std::invalid_argument(std::string("gemm_s8_a_bt_ex: ") + which +
                                  " scales must be positive");
}

}  // namespace

float max_abs(std::span<const float> xs) {
  float limit = 0.0f;
  for (float x : xs) limit = std::max(limit, std::fabs(x));
  return limit;
}

float symmetric_scale_s8(float limit) {
  // An all-zero tensor still needs a usable (positive) scale: 1.0 maps
  // every zero to quantized zero and back.
  if (!(limit > 0.0f)) return 1.0f;
  return limit / 127.0f;
}

void quantize_s8(std::span<const float> xs, float scale, std::int8_t* out) {
  if (!(scale > 0.0f))
    throw std::invalid_argument("quantize_s8: scale must be positive");
  const float inv = 1.0f / scale;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const float q = std::nearbyintf(xs[i] * inv);
    out[i] = static_cast<std::int8_t>(
        std::clamp(q, -127.0f, 127.0f));
  }
}

void gemm_s8_a_bt_ex(std::size_t m, std::size_t k, std::size_t n,
                     const std::int8_t* a, std::span<const float> a_scales,
                     const std::int8_t* b_t, std::span<const float> b_scales,
                     float* c, const Epilogue& epilogue) {
  if (k > kMaxS8Depth)
    throw std::invalid_argument(
        "gemm_s8_a_bt_ex: k = " + std::to_string(k) +
        " overflows the int32 accumulator (max " +
        std::to_string(kMaxS8Depth) + ")");
  validate_scales(a_scales, m, "A");
  validate_scales(b_scales, n, "B");

  // Row-dot-row like the float b_t path: both operands stream unit-stride,
  // and the widened int multiply-accumulate auto-vectorizes. The epilogue
  // (dequant * bias * ReLU) happens once per output during writeback.
  for (std::size_t i = 0; i < m; ++i) {
    const std::int8_t* a_row = a + i * k;
    float* c_row = c + i * n;
    const float a_scale = scale_at(a_scales, i);
    const float row_bias =
        epilogue.bias == Epilogue::Bias::kPerRow ? epilogue.bias_data[i]
                                                 : 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      const std::int8_t* b_row = b_t + j * k;
      std::int32_t acc = 0;
      for (std::size_t kk = 0; kk < k; ++kk)
        acc += static_cast<std::int32_t>(a_row[kk]) *
               static_cast<std::int32_t>(b_row[kk]);
      float v = static_cast<float>(acc) * a_scale * scale_at(b_scales, j);
      v += epilogue.bias == Epilogue::Bias::kPerCol ? epilogue.bias_data[j]
                                                    : row_bias;
      if (epilogue.relu && v < 0.0f) v = 0.0f;
      c_row[j] = v;
    }
  }
}

}  // namespace a4nn::tensor
