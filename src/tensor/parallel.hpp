// Deterministic intra-op parallelism for the training kernels.
//
// Work over a batch is split into a FIXED partition of contiguous chunks
// whose count and boundaries depend only on the item count — never on the
// worker count. Chunks write disjoint outputs (or chunk-private partial
// buffers that the caller reduces in chunk order), so the result is
// bit-identical whether the chunks run on 1 thread or 8. That contract is
// what lets the PENGUIN prediction engine terminate training early on
// reproducible per-epoch fitness regardless of the host's core count.
//
// The worker count is process-global (kernels are shared by every model a
// ResourceManager device is training): set once at startup via
// set_intra_op_threads() or the A4NN_INTRA_OP_THREADS environment
// variable. The default of 1 runs every chunk inline on the caller.
#pragma once

#include <cstddef>
#include <functional>

namespace a4nn::tensor {

/// Number of worker threads the kernels may use (>= 1; 1 = serial).
/// First call reads A4NN_INTRA_OP_THREADS (default 1).
std::size_t intra_op_threads();

/// Resize the kernel worker pool. Must not be called while kernels are
/// running (configure at startup, or between training runs in tests).
void set_intra_op_threads(std::size_t n);

/// Fixed upper bound on chunks per parallel region. Also bounds the
/// per-chunk partial-gradient slabs layers allocate for reductions.
inline constexpr std::size_t kMaxIntraOpChunks = 16;

/// Number of chunks [0, items) is split into: min(items, kMaxIntraOpChunks).
/// Depends only on `items` — the determinism contract hinges on this.
std::size_t intra_op_chunks(std::size_t items);

/// Half-open item range of chunk `c` (ceil-division partition).
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};
ChunkRange intra_op_chunk_range(std::size_t items, std::size_t chunk);

/// Run fn(chunk, begin, end) for every chunk of [0, items). Serial (and in
/// chunk order) when the pool size is 1, the region is nested inside
/// another parallel region, or there is only one chunk; otherwise chunks
/// run concurrently on the kernel pool and this call blocks until all
/// complete. The first exception thrown by any chunk is rethrown.
void parallel_chunks(
    std::size_t items,
    const std::function<void(std::size_t chunk, std::size_t begin,
                             std::size_t end)>& fn);

}  // namespace a4nn::tensor
