#include "tensor/parallel.hpp"

#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "util/thread_pool.hpp"

namespace a4nn::tensor {

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<util::ThreadPool> g_pool;
std::size_t g_threads = 0;  // 0 = not yet initialized from the environment

// A chunk function must never fan out again onto the same pool: a worker
// blocking on sub-chunks that sit behind it in the queue would deadlock.
thread_local bool t_in_parallel_region = false;

std::size_t threads_from_env() {
  const char* env = std::getenv("A4NN_INTRA_OP_THREADS");
  if (!env) return 1;
  const long v = std::strtol(env, nullptr, 10);
  return v > 1 ? static_cast<std::size_t>(v) : 1;
}

}  // namespace

std::size_t intra_op_threads() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_threads == 0) g_threads = threads_from_env();
  return g_threads;
}

void set_intra_op_threads(std::size_t n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_threads = n > 1 ? n : 1;
  g_pool.reset();  // lazily rebuilt at the new size on next use
}

std::size_t intra_op_chunks(std::size_t items) {
  return items < kMaxIntraOpChunks ? items : kMaxIntraOpChunks;
}

ChunkRange intra_op_chunk_range(std::size_t items, std::size_t chunk) {
  const std::size_t chunks = intra_op_chunks(items);
  if (chunks == 0) return {0, 0};
  const std::size_t base = items / chunks;
  const std::size_t extra = items % chunks;  // first `extra` chunks get +1
  const std::size_t begin =
      chunk * base + (chunk < extra ? chunk : extra);
  return {begin, begin + base + (chunk < extra ? 1 : 0)};
}

void parallel_chunks(
    std::size_t items,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const std::size_t chunks = intra_op_chunks(items);
  if (chunks == 0) return;

  const std::size_t threads = intra_op_threads();
  if (threads <= 1 || chunks == 1 || t_in_parallel_region) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const ChunkRange r = intra_op_chunk_range(items, c);
      fn(c, r.begin, r.end);
    }
    return;
  }

  util::ThreadPool* pool;
  {
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (!g_pool || g_pool->size() != threads)
      g_pool = std::make_unique<util::ThreadPool>(threads);
    pool = g_pool.get();
  }

  std::vector<std::future<void>> done;
  done.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const ChunkRange r = intra_op_chunk_range(items, c);
    done.push_back(pool->submit([&fn, c, r] {
      struct RegionGuard {
        RegionGuard() { t_in_parallel_region = true; }
        ~RegionGuard() { t_in_parallel_region = false; }
      } guard;
      fn(c, r.begin, r.end);
    }));
  }
  // Rethrows the first chunk failure in chunk order (deterministic too).
  for (auto& f : done) f.get();
}

}  // namespace a4nn::tensor
