// Per-thread scratch arena for kernel temporaries (im2col columns, GEMM
// pack panels, per-chunk gradient slabs). Training previously heap-allocated
// these buffers fresh on every batch; the arena amortizes them to one
// allocation per high-water mark per thread, with stack-discipline reuse.
//
// Lifetime contract: a kernel (or layer forward/backward) opens a
// ScratchScope, allocates freely, and every allocation is released when the
// scope closes — but the backing memory stays resident on the thread, so
// the next batch reuses it without touching the allocator. A job releases
// its thread's arena when it finishes (see orchestrator::TrainingLoop), so
// memory is bounded by the largest model a worker is currently training.
//
// Allocations return stable pointers for the lifetime of their scope:
// the arena grows by adding blocks, never by relocating existing ones
// (nested allocs — e.g. GEMM pack buffers inside a layer that already
// holds an im2col span — stay valid).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace a4nn::tensor {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Uninitialized floats; caller must fully overwrite what it reads.
  std::span<float> alloc(std::size_t n);

  /// Zero-filled floats (for accumulation slabs).
  std::span<float> alloc_zeroed(std::size_t n);

  /// Position bookmark for stack-discipline release.
  struct Mark {
    std::size_t block = 0;
    std::size_t used = 0;
    std::size_t live = 0;
  };
  Mark mark() const { return {current_block_, used_in_block_, live_}; }
  void rewind(const Mark& m);

  /// Free all backing memory (arena returns to empty). Called at job
  /// boundaries so a worker that just trained a large model does not pin
  /// its peak scratch forever.
  void release();

  /// Soft-watermark trim for long-lived processes: keep at most the
  /// largest block that fits in `max_floats` (the steady-state working
  /// set) and free the rest, so one outlier request cannot pin its peak
  /// scratch on every serving thread forever. No-op while allocations are
  /// live (freeing would dangle); `max_floats == 0` frees everything.
  void trim(std::size_t max_floats);

  /// Total floats currently reserved across blocks.
  std::size_t capacity() const;
  /// Largest single-scope footprint seen (floats), for diagnostics.
  std::size_t high_water() const { return high_water_; }

  /// The calling thread's arena.
  static ScratchArena& tls();

 private:
  struct Block {
    std::unique_ptr<float[]> data;
    std::size_t size = 0;
  };
  std::vector<Block> blocks_;
  std::size_t current_block_ = 0;  // index of the block being filled
  std::size_t used_in_block_ = 0;
  std::size_t live_ = 0;  // floats handed out and not yet rewound
  std::size_t high_water_ = 0;
};

/// RAII: everything allocated after construction is released on
/// destruction. Nests freely.
class ScratchScope {
 public:
  ScratchScope() : arena_(&ScratchArena::tls()), mark_(arena_->mark()) {}
  explicit ScratchScope(ScratchArena& arena)
      : arena_(&arena), mark_(arena.mark()) {}
  ~ScratchScope() { arena_->rewind(mark_); }
  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

  std::span<float> alloc(std::size_t n) { return arena_->alloc(n); }
  std::span<float> alloc_zeroed(std::size_t n) {
    return arena_->alloc_zeroed(n);
  }

 private:
  ScratchArena* arena_;
  ScratchArena::Mark mark_;
};

}  // namespace a4nn::tensor
