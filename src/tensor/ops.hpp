// Kernels shared by the NN layers: SAXPY-style elementwise ops, GEMM, and
// im2col/col2im transforms that turn convolutions into matrix multiplies.
//
// The GEMM family is cache-blocked with packed panels: B (and A, when it
// is accessed transposed) is repacked into contiguous MR/NR strips so the
// inner microkernel streams unit-stride and auto-vectorizes. All variants
// share one driver, so loop order — and therefore float summation order —
// is a pure function of the problem shape: results are bit-reproducible
// run to run and independent of how callers parallelize around the kernel.
//
// Epilogues fuse the per-row/per-column bias add and an optional ReLU into
// the GEMM writeback, so convolution and dense layers do not make a second
// (or third) pass over their output tensors.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/tensor.hpp"

namespace a4nn::tensor {

/// out += alpha * x (sizes must match).
void axpy(float alpha, std::span<const float> x, std::span<float> out);

/// out = a + b elementwise.
Tensor add(const Tensor& a, const Tensor& b);

/// out = a * b elementwise (Hadamard).
Tensor mul(const Tensor& a, const Tensor& b);

/// Scale in place.
void scale(Tensor& t, float alpha);

/// Sum of all entries.
double sum(const Tensor& t);

/// Index of the maximum entry in [begin, begin+len).
std::size_t argmax(std::span<const float> xs);

/// Fused GEMM epilogue, applied to each C entry during the final
/// writeback: C_ij = act(C_ij + bias), where bias is indexed by the row
/// (per output channel of a conv GEMM) or the column (per output feature
/// of a dense GEMM).
struct Epilogue {
  enum class Bias { kNone, kPerRow, kPerCol };
  Bias bias = Bias::kNone;
  /// m floats for kPerRow, n floats for kPerCol; unused for kNone.
  const float* bias_data = nullptr;
  bool relu = false;
};

/// C(m x n) = A(m x k) * B(k x n), row-major, C overwritten.
void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c);

/// C(m x n) += A(m x k) * B(k x n).
void gemm_accumulate(std::size_t m, std::size_t k, std::size_t n,
                     const float* a, const float* b, float* c);

/// gemm with a fused epilogue (bias broadcast and/or ReLU).
void gemm_ex(std::size_t m, std::size_t k, std::size_t n, const float* a,
             const float* b, float* c, const Epilogue& epilogue);

/// C(m x n) = A^T(k x m)^T... explicitly: C = A_t^T * B where a_t is stored
/// (k x m) row-major. Used for weight-gradient computation.
void gemm_at_b(std::size_t m, std::size_t k, std::size_t n, const float* a_t,
               const float* b, float* c);

/// C(m x n) += A_t^T * B — accumulating form, so weight gradients sum
/// directly into their persistent buffers without a staging copy.
void gemm_at_b_acc(std::size_t m, std::size_t k, std::size_t n,
                   const float* a_t, const float* b, float* c);

/// C(m x n) = A(m x k) * B_t^T where b_t is stored (n x k) row-major.
/// Used for input-gradient computation.
void gemm_a_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b_t, float* c);

/// C(m x n) += A * B_t^T — accumulating form.
void gemm_a_bt_acc(std::size_t m, std::size_t k, std::size_t n,
                   const float* a, const float* b_t, float* c);

/// gemm_a_bt with a fused epilogue (dense forward: bias is kPerCol).
void gemm_a_bt_ex(std::size_t m, std::size_t k, std::size_t n, const float* a,
                  const float* b_t, float* c, const Epilogue& epilogue);

/// The seed's naive i-k-j GEMM, kept as the reference implementation for
/// the property tests and the bench_kernels speedup baseline.
void gemm_naive(std::size_t m, std::size_t k, std::size_t n, const float* a,
                const float* b, float* c);

/// Geometry of a 2-d convolution / pooling window.
struct ConvGeometry {
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  /// Rows of the im2col matrix: one per (channel, ky, kx).
  std::size_t patch_size() const { return in_channels * kernel * kernel; }
};

/// im2col for a single image (C x H x W span) into a
/// (patch_size x out_h*out_w) column matrix.
void im2col(const ConvGeometry& g, std::span<const float> image,
            std::span<float> columns);

/// Adjoint of im2col: scatter-add columns back into the image gradient.
void col2im(const ConvGeometry& g, std::span<const float> columns,
            std::span<float> image_grad);

}  // namespace a4nn::tensor
