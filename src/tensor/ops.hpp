// Kernels shared by the NN layers: SAXPY-style elementwise ops, GEMM, and
// im2col/col2im transforms that turn convolutions into matrix multiplies.
//
// The GEMM family is cache-blocked with packed panels: B (and A, when it
// is accessed transposed) is repacked into contiguous MR/NR strips so the
// inner microkernel streams unit-stride and auto-vectorizes. All variants
// share one driver, so loop order — and therefore float summation order —
// is a pure function of the problem shape: results are bit-reproducible
// run to run and independent of how callers parallelize around the kernel.
//
// Epilogues fuse the per-row/per-column bias add and an optional ReLU into
// the GEMM writeback, so convolution and dense layers do not make a second
// (or third) pass over their output tensors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace a4nn::tensor {

/// out += alpha * x (sizes must match).
void axpy(float alpha, std::span<const float> x, std::span<float> out);

/// out = a + b elementwise.
Tensor add(const Tensor& a, const Tensor& b);

/// out = a * b elementwise (Hadamard).
Tensor mul(const Tensor& a, const Tensor& b);

/// Scale in place.
void scale(Tensor& t, float alpha);

/// Sum of all entries.
double sum(const Tensor& t);

/// Index of the maximum entry in [begin, begin+len).
std::size_t argmax(std::span<const float> xs);

/// Fused GEMM epilogue, applied to each C entry during the final
/// writeback: C_ij = act(C_ij + bias), where bias is indexed by the row
/// (per output channel of a conv GEMM) or the column (per output feature
/// of a dense GEMM).
struct Epilogue {
  enum class Bias { kNone, kPerRow, kPerCol };
  Bias bias = Bias::kNone;
  /// m floats for kPerRow, n floats for kPerCol; unused for kNone.
  const float* bias_data = nullptr;
  bool relu = false;
};

/// Register tile of the GEMM microkernel. Compile-time: the accumulator
/// layout is baked into the inner loop and cannot be retuned at runtime.
inline constexpr std::size_t kGemmMR = 6;
inline constexpr std::size_t kGemmNR = 16;

/// Runtime-tunable cache blocking for the packed GEMM driver. The defaults
/// are the hand-fixed constants the autotuner replaces per shape class.
///
/// KC and small_row_flops change the per-row float summation order (k-panel
/// grouping and the small/blocked path choice), so they are part of the
/// numeric contract; MC/NC only change scheduling. That is why the tuned
/// table below is keyed on (k, n) alone.
struct TileConfig {
  /// A-tile rows per L2 block; must be a positive multiple of kGemmMR.
  std::size_t mc = 60;
  /// k-panel depth (L1-resident B strips); positive.
  std::size_t kc = 256;
  /// B-tile columns per block; must be a positive multiple of kGemmNR.
  std::size_t nc = 256;
  /// Below this many multiply-adds per output row (n*k) the unblocked
  /// small-problem path wins; the predicate deliberately ignores m.
  std::size_t small_row_flops = 2048;

  bool operator==(const TileConfig&) const = default;
};

/// One tuned entry: the blocking the driver uses for every GEMM with this
/// exact (k, n), at any m.
struct TunedTileEntry {
  std::size_t k = 0;
  std::size_t n = 0;
  TileConfig config;
};

/// Install the tuned blocking table (replacing any previous one). Entries
/// are keyed on (k, n) only — never m — because a row's accumulation order
/// must be independent of how many rows share the call (the serving
/// engine's batch-size-invariance guarantee). Duplicate (k, n) keys and
/// configs violating the MR/NR alignment rules are rejected.
/// Like set_intra_op_threads: configure at startup, not while kernels run.
void set_tuned_tile_configs(const std::vector<TunedTileEntry>& entries);

/// Drop every tuned entry (back to the compiled defaults).
void clear_tuned_tile_configs();

/// The blocking the driver will use for shape (k, n): the tuned entry if
/// one is installed, else the defaults.
const TileConfig& tile_config_for(std::size_t k, std::size_t n);

/// Throws std::invalid_argument if `config` violates the driver's
/// constraints (mc % MR, nc % NR, zero extents).
void validate_tile_config(const TileConfig& config);

/// C(m x n) = A(m x k) * B(k x n), row-major, C overwritten.
void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c);

/// C(m x n) += A(m x k) * B(k x n).
void gemm_accumulate(std::size_t m, std::size_t k, std::size_t n,
                     const float* a, const float* b, float* c);

/// gemm with a fused epilogue (bias broadcast and/or ReLU).
void gemm_ex(std::size_t m, std::size_t k, std::size_t n, const float* a,
             const float* b, float* c, const Epilogue& epilogue);

/// C(m x n) = A^T(k x m)^T... explicitly: C = A_t^T * B where a_t is stored
/// (k x m) row-major. Used for weight-gradient computation.
void gemm_at_b(std::size_t m, std::size_t k, std::size_t n, const float* a_t,
               const float* b, float* c);

/// C(m x n) += A_t^T * B — accumulating form, so weight gradients sum
/// directly into their persistent buffers without a staging copy.
void gemm_at_b_acc(std::size_t m, std::size_t k, std::size_t n,
                   const float* a_t, const float* b, float* c);

/// C(m x n) = A(m x k) * B_t^T where b_t is stored (n x k) row-major.
/// Used for input-gradient computation.
void gemm_a_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b_t, float* c);

/// C(m x n) += A * B_t^T — accumulating form.
void gemm_a_bt_acc(std::size_t m, std::size_t k, std::size_t n,
                   const float* a, const float* b_t, float* c);

/// gemm_a_bt with a fused epilogue (dense forward: bias is kPerCol).
void gemm_a_bt_ex(std::size_t m, std::size_t k, std::size_t n, const float* a,
                  const float* b_t, float* c, const Epilogue& epilogue);

// ---- int8 inference kernels (ops_s8.cpp) ----------------------------------
//
// Symmetric post-training quantization for the serving path: values are
// stored as round(x / scale) in [-127, 127] and multiplied in int32, which
// is EXACT — no rounding inside the dot product, so results are
// bit-deterministic and independent of summation order, unlike the float
// kernels whose summation order the tile table pins down. The dequantize +
// bias + ReLU epilogue is fused into the writeback, mirroring Epilogue.

/// Largest |x| over the span (0 for an empty span).
float max_abs(std::span<const float> xs);

/// Symmetric scale mapping [-limit, limit] onto [-127, 127]; returns a
/// positive scale even for an all-zero tensor (limit 0).
float symmetric_scale_s8(float limit);

/// Quantize xs[i] -> round(xs[i] / scale), clamped to [-127, 127].
/// `scale` must be positive; out must hold xs.size() values.
void quantize_s8(std::span<const float> xs, float scale, std::int8_t* out);

/// C(m x n) = act(dequant(A_q * B_q_t^T) + bias) where A_q is (m x k)
/// row-major int8, B_q_t is (n x k) row-major int8 (B transposed, like
/// gemm_a_bt_ex), and dequant multiplies the exact int32 dot product by
/// a_scales[i] * b_scales[j]. Scale spans broadcast: size 1 applies one
/// per-tensor scale to every row, size m (for A) / size n (for B_t) gives
/// per-row scales — the dense path passes a per-tensor activation scale and
/// per-output-feature weight scales; the conv path flips the roles.
/// Throws std::invalid_argument on scale-span size mismatches and when k is
/// large enough for the int32 accumulator to overflow (k * 127^2 >= 2^31;
/// every shape this codebase produces is orders of magnitude below that).
void gemm_s8_a_bt_ex(std::size_t m, std::size_t k, std::size_t n,
                     const std::int8_t* a, std::span<const float> a_scales,
                     const std::int8_t* b_t, std::span<const float> b_scales,
                     float* c, const Epilogue& epilogue);

/// The seed's naive i-k-j GEMM, kept as the reference implementation for
/// the property tests and the bench_kernels speedup baseline.
void gemm_naive(std::size_t m, std::size_t k, std::size_t n, const float* a,
                const float* b, float* c);

/// gemm under an explicit blocking config, bypassing the installed tuned
/// table. Autotuner measurement hook; also used by tests to pin a config.
void gemm_with_config(std::size_t m, std::size_t k, std::size_t n,
                      const float* a, const float* b, float* c,
                      const TileConfig& config);

/// gemm_a_bt under an explicit blocking config (dense-layer layout, B
/// stored (n x k) row-major).
void gemm_a_bt_with_config(std::size_t m, std::size_t k, std::size_t n,
                           const float* a, const float* b_t, float* c,
                           const TileConfig& config);

/// Geometry of a 2-d convolution / pooling window.
struct ConvGeometry {
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  /// Rows of the im2col matrix: one per (channel, ky, kx).
  std::size_t patch_size() const { return in_channels * kernel * kernel; }

  /// Rejects degenerate geometries with a clear error instead of letting
  /// out_h()/out_w() wrap or im2col fail with a size mismatch downstream:
  /// zero extents, padding >= the receptive extent (border outputs would
  /// read only padding), and output dims that truncate to zero.
  void validate() const;
};

/// im2col for a single image (C x H x W span) into a
/// (patch_size x out_h*out_w) column matrix.
void im2col(const ConvGeometry& g, std::span<const float> image,
            std::span<float> columns);

/// Adjoint of im2col: scatter-add columns back into the image gradient.
void col2im(const ConvGeometry& g, std::span<const float> columns,
            std::span<float> image_grad);

/// Whether conv2d_forward_direct profitably skips im2col for this
/// geometry: 3x3 stride-1 with out_w >= kGemmNR (the full-resolution
/// shapes that dominate the search space; narrower outputs pack in short
/// branchy runs and measure slower than the two-pass im2col path). Other
/// geometries take the materialized fallback inside the call.
bool conv2d_direct_viable(const ConvGeometry& g);

/// Convolution forward for one image:
///   out(oc x oh*ow) = epilogue(W(oc x patch) * im2col(image))
/// For viable geometries the im2col matrix is never materialized: image
/// tiles are packed straight into the NR-strip panel layout the blocked
/// GEMM driver consumes, so the result is bit-identical to
/// im2col() + gemm_ex() — same packed bytes, same microkernel, same
/// summation order — while skipping a full (patch x cols) buffer write
/// and re-read. Non-viable and small-problem shapes fall back to the
/// materialized path (also bit-identical: it IS that path).
void conv2d_forward_direct(const ConvGeometry& g, std::size_t out_channels,
                           const float* weights, std::span<const float> image,
                           float* out, const Epilogue& epilogue);

}  // namespace a4nn::tensor
