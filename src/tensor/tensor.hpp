// Dense row-major float tensor: the storage substrate for the NN library.
//
// Deliberately simple — contiguous float32 data plus a shape — because the
// NN layers implement their own kernels (im2col convolution, pooling,
// matmul) on top of raw spans. The class guards shape bookkeeping,
// provides checked indexing in debug paths, and supplies the random
// initializers (He/Xavier) the NAS-generated architectures need.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace a4nn::tensor {

/// Tensor shape. Rank up to 4 is what the NN library uses
/// (N x C x H x W activations, OC x IC x KH x KW conv weights).
using Shape = std::vector<std::size_t>;

std::size_t shape_numel(const Shape& shape);
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  /// Empty scalar-less tensor (numel 0).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor with explicit contents; data.size() must equal numel(shape).
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  /// I.i.d. N(mean, stddev) entries.
  static Tensor randn(Shape shape, util::Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// He (Kaiming) initialization for layers followed by ReLU:
  /// N(0, sqrt(2 / fan_in)).
  static Tensor he_init(Shape shape, std::size_t fan_in, util::Rng& rng);
  /// Xavier/Glorot uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
  static Tensor xavier_init(Shape shape, std::size_t fan_in,
                            std::size_t fan_out, util::Rng& rng);

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  std::size_t dim(std::size_t axis) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return data_; }
  std::span<const float> span() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Checked flat access.
  float& at(std::size_t i);
  float at(std::size_t i) const;

  /// Row-major 4-d indexing helpers for the common activation layout.
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  /// Reinterpret the same data with a new shape of identical numel.
  Tensor reshaped(Shape new_shape) const;

  void fill(float value);
  /// Set all entries to 0 (gradient buffers between steps).
  void zero() { fill(0.0f); }

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace a4nn::tensor
