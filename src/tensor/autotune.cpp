#include "tensor/autotune.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>

#include "util/frame.hpp"
#include "util/fsutil.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace a4nn::tensor {

namespace {

constexpr int kTuneVersion = 1;

util::Json config_to_json(const TileConfig& c) {
  util::Json j = util::Json::object();
  j["kc"] = c.kc;
  j["mc"] = c.mc;
  j["nc"] = c.nc;
  j["small_row_flops"] = c.small_row_flops;
  return j;
}

TileConfig config_from_json(const util::Json& j) {
  TileConfig c;
  c.mc = static_cast<std::size_t>(j.at("mc").as_int());
  c.kc = static_cast<std::size_t>(j.at("kc").as_int());
  c.nc = static_cast<std::size_t>(j.at("nc").as_int());
  c.small_row_flops =
      static_cast<std::size_t>(j.at("small_row_flops").as_int());
  return c;
}

// FNV-1a, for deriving a per-shape operand seed from the tune seed. Any
// stable mix works; what matters is that it is a pure function of the
// journal identity so the default measurement hook is reproducible.
std::uint64_t mix_seed(std::uint64_t seed, const std::string& key) {
  std::uint64_t h = 1469598103934665603ULL ^ seed;
  for (unsigned char ch : key) {
    h ^= ch;
    h *= 1099511628211ULL;
  }
  return h;
}

// Time one (shape, candidate) with live kernels: deterministic operand
// buffers, one warmup run, then best-of-`repeats` wall time.
double measure_real(const TuneShape& s, const TileConfig& c,
                    std::uint64_t seed, std::size_t repeats) {
  util::Rng rng(mix_seed(seed, s.key()));
  std::vector<float> a(s.m * s.k), b(s.k * s.n), out(s.m * s.n);
  for (float& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (float& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  auto run = [&] {
    if (s.b_transposed)
      gemm_a_bt_with_config(s.m, s.k, s.n, a.data(), b.data(), out.data(), c);
    else
      gemm_with_config(s.m, s.k, s.n, a.data(), b.data(), out.data(), c);
  };
  run();  // warmup: faults in pages, primes caches
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < std::max<std::size_t>(repeats, 1); ++r) {
    util::Timer t;
    run();
    best = std::min(best, t.seconds() * 1e9);
  }
  return best;
}

// A prior journal's measurements are only trustworthy if they were taken
// under the same identity: seed, repeats, and the exact candidate list.
bool prior_matches(const util::Json& prior, const util::Json& candidates,
                   std::uint64_t seed, std::size_t repeats) {
  if (!prior.is_object()) return false;
  if (!prior.contains("candidates") || !prior.contains("measurements"))
    return false;
  if (static_cast<std::uint64_t>(prior.number_or("seed", -1.0)) != seed)
    return false;
  if (static_cast<std::size_t>(prior.number_or("repeats", 0.0)) != repeats)
    return false;
  return prior.at("candidates") == candidates;
}

}  // namespace

std::string TuneShape::key() const {
  return cls + " m" + std::to_string(m) + " k" + std::to_string(k) + " n" +
         std::to_string(n) + (b_transposed ? " bt" : "");
}

const std::vector<TileConfig>& candidate_tile_configs() {
  // candidates[0] MUST stay the default config: the winner per (k, n) is an
  // argmin over this list, so the tuned table can never regress a journaled
  // shape below the untuned baseline. Every entry passes
  // validate_tile_config (mc % MR == 0, nc % NR == 0, kc > 0).
  static const std::vector<TileConfig> kCandidates = {
      TileConfig{},                // the compiled defaults
      {36, 256, 256, 2048},        // smaller L2 A-tile
      {120, 256, 256, 2048},       // larger L2 A-tile
      {60, 128, 256, 2048},        // shallower k-panels
      {60, 512, 256, 2048},        // deeper k-panels
      {60, 256, 128, 2048},        // narrower B-tiles
      {60, 256, 512, 2048},        // wider B-tiles
      {36, 128, 128, 2048},        // small everything (L1-heavy shapes)
      {120, 512, 512, 2048},       // big everything (large GEMMs)
      {96, 384, 320, 4096},        // mid-size blend
      {60, 256, 256, 0},           // always blocked, even tiny problems
      {60, 256, 256, 8192},        // prefer the small path much longer
  };
  return kCandidates;
}

std::vector<TuneShape> search_space_tune_shapes(
    std::size_t pixels, std::size_t num_classes, std::size_t stem_channels,
    std::size_t eval_batch, const std::vector<std::size_t>& serve_batches) {
  std::vector<TuneShape> shapes;
  // Stem + phase-node convs at each downsample level, mirroring
  // decode_genome: channels double and spatial halves while spatial >= 4.
  std::size_t ch = stem_channels;
  std::size_t spatial = pixels;
  shapes.push_back({"conv_stem", ch, 1 * 3 * 3, spatial * spatial, false});
  for (int level = 0; level < 3; ++level) {
    const std::size_t cells = spatial * spatial;
    // Phase-node 3x3 conv (the macro space's default op everywhere).
    shapes.push_back({"conv3x3", ch, ch * 3 * 3, cells, false});
    // Pointwise GEMMs: the 1x1 channel expansion between phases and the
    // separable op's pointwise half share this shape family.
    shapes.push_back({"conv1x1", ch * 2, ch, cells / 4, false});
    if (spatial < 8) break;
    spatial /= 2;
    ch *= 2;
  }
  // Eval-mode whole-batch Linear (gemm_a_bt: m = batch, k = features,
  // n = classes) and the serving micro-batch versions of the same layer —
  // deliberately the same (k, n) so they are co-tuned into one entry.
  shapes.push_back({"linear_eval", eval_batch, ch, num_classes, true});
  for (std::size_t b : serve_batches)
    shapes.push_back(
        {"linear_serve_b" + std::to_string(b), b, ch, num_classes, true});
  return shapes;
}

TuneResult run_tune(const std::vector<TuneShape>& shapes,
                    const TuneOptions& options, const util::Json* prior) {
  const std::vector<TileConfig>& candidates = candidate_tile_configs();
  util::Json cand_json = util::Json::array();
  for (const TileConfig& c : candidates) cand_json.push_back(config_to_json(c));

  const bool resume = prior != nullptr &&
                      prior_matches(*prior, cand_json, options.seed,
                                    options.repeats);

  // Validate shapes up front: a zero extent would "win" with 0 ns.
  for (const TuneShape& s : shapes) {
    if (s.m == 0 || s.k == 0 || s.n == 0)
      throw std::invalid_argument("run_tune: zero extent in shape " + s.key());
    if (s.cls.empty())
      throw std::invalid_argument("run_tune: unnamed shape class");
  }

  // Measure (or replay) every (shape, candidate). The journal stores one
  // ns array per shape key; an array of the right length with finite
  // non-negative entries is replayed verbatim, which is what makes a
  // finished tune re-emit byte-identically and an interrupted one resume.
  util::Json measurements = util::Json::object();
  std::map<std::string, std::vector<double>> ns_by_key;
  for (const TuneShape& s : shapes) {
    const std::string key = s.key();
    if (ns_by_key.contains(key)) continue;  // duplicate shape row
    std::vector<double> ns;
    if (resume && prior->at("measurements").contains(key)) {
      const util::Json& arr = prior->at("measurements").at(key);
      if (arr.is_array() && arr.size() == candidates.size()) {
        bool ok = true;
        for (std::size_t i = 0; i < arr.size(); ++i) {
          const double v = arr.at(i).as_number();
          if (!std::isfinite(v) || v < 0.0) ok = false;
          ns.push_back(v);
        }
        if (!ok) ns.clear();
      }
    }
    if (ns.empty()) {
      ns.reserve(candidates.size());
      for (const TileConfig& c : candidates)
        ns.push_back(options.measure
                         ? options.measure(s, c)
                         : measure_real(s, c, options.seed, options.repeats));
    }
    util::Json arr = util::Json::array();
    for (double v : ns) arr.push_back(v);
    measurements[key] = std::move(arr);
    ns_by_key[key] = std::move(ns);
  }

  // Co-tune shapes sharing (k, n): one winner per key, by summed ns across
  // every claiming shape, ties broken toward the lowest candidate index.
  // std::map keys the groups in (k, n) order, so the output is stable.
  std::map<std::pair<std::size_t, std::size_t>, std::vector<const TuneShape*>>
      groups;
  for (const TuneShape& s : shapes) groups[{s.k, s.n}].push_back(&s);

  util::Json winners = util::Json::array();
  util::Json entries_json = util::Json::array();
  std::vector<TunedTileEntry> entries;
  for (const auto& [kn, members] : groups) {
    std::size_t best = 0;
    double best_total = std::numeric_limits<double>::infinity();
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      double total = 0.0;
      for (const TuneShape* s : members) total += ns_by_key.at(s->key())[ci];
      if (total < best_total) {
        best_total = total;
        best = ci;
      }
    }
    TunedTileEntry e;
    e.k = kn.first;
    e.n = kn.second;
    e.config = candidates[best];
    entries.push_back(e);

    util::Json w = util::Json::object();
    w["candidate"] = best;
    util::Json cls = util::Json::array();
    for (const TuneShape* s : members) cls.push_back(s->key());
    w["k"] = e.k;
    w["n"] = e.n;
    w["shapes"] = std::move(cls);
    w["total_ns"] = best_total;
    winners.push_back(std::move(w));

    util::Json ej = config_to_json(e.config);
    ej["k"] = e.k;
    ej["n"] = e.n;
    entries_json.push_back(std::move(ej));
  }

  util::Json shapes_json = util::Json::array();
  for (const TuneShape& s : shapes) {
    util::Json sj = util::Json::object();
    sj["b_transposed"] = s.b_transposed;
    sj["cls"] = s.cls;
    sj["k"] = s.k;
    sj["m"] = s.m;
    sj["n"] = s.n;
    shapes_json.push_back(std::move(sj));
  }

  TuneResult result;
  result.doc = util::Json::object();
  result.doc["candidates"] = std::move(cand_json);
  result.doc["entries"] = std::move(entries_json);
  result.doc["measurements"] = std::move(measurements);
  result.doc["repeats"] = options.repeats;
  result.doc["seed"] = options.seed;
  result.doc["shapes"] = std::move(shapes_json);
  result.doc["version"] = kTuneVersion;
  result.doc["winners"] = std::move(winners);
  result.entries = std::move(entries);
  return result;
}

std::vector<TunedTileEntry> tune_entries_from_json(const util::Json& doc) {
  if (!doc.is_object() || !doc.contains("entries"))
    throw std::invalid_argument("tune document: missing 'entries'");
  const int version =
      static_cast<int>(doc.number_or("version", kTuneVersion));
  if (version != kTuneVersion)
    throw std::invalid_argument("tune document: unknown version " +
                                std::to_string(version));
  std::vector<TunedTileEntry> entries;
  for (const util::Json& ej : doc.at("entries").as_array()) {
    TunedTileEntry e;
    e.k = static_cast<std::size_t>(ej.at("k").as_int());
    e.n = static_cast<std::size_t>(ej.at("n").as_int());
    e.config = config_from_json(ej);
    validate_tile_config(e.config);
    entries.push_back(e);
  }
  return entries;
}

void apply_tune_document(const util::Json& doc) {
  set_tuned_tile_configs(tune_entries_from_json(doc));
}

void load_tune_file(const std::string& path) {
  const std::string raw = util::read_file(path);
  // Commons artifacts carry an integrity frame; a hand-written or
  // CI-generated plain JSON file loads the same way.
  const util::UnframeResult content = util::unframe_or_legacy(raw);
  apply_tune_document(util::Json::parse(content.payload));
}

void ensure_env_tune_loaded() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    const char* path = std::getenv("A4NN_TUNE");
    if (path == nullptr || path[0] == '\0') return;
    try {
      load_tune_file(path);
    } catch (const std::exception& e) {
      // A requested-but-broken tune config must not silently fall back to
      // untuned defaults — that would invalidate every perf gate run.
      throw std::runtime_error(std::string("A4NN_TUNE: failed to load '") +
                               path + "': " + e.what());
    }
  });
}

}  // namespace a4nn::tensor
