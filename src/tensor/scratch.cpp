#include "tensor/scratch.hpp"

#include <algorithm>
#include <cstring>

namespace a4nn::tensor {

namespace {
constexpr std::size_t kMinBlockFloats = 1 << 14;  // 64 KiB first block
}

std::span<float> ScratchArena::alloc(std::size_t n) {
  if (n == 0) return {};
  // Fill the current block; otherwise advance past blocks that are too
  // small (they stay parked until release) or append a fresh one that at
  // least doubles total capacity, so the block count stays logarithmic.
  while (current_block_ < blocks_.size()) {
    Block& b = blocks_[current_block_];
    if (b.size - used_in_block_ >= n) {
      float* p = b.data.get() + used_in_block_;
      used_in_block_ += n;
      live_ += n;
      high_water_ = std::max(high_water_, live_);
      return {p, n};
    }
    ++current_block_;
    used_in_block_ = 0;
  }
  const std::size_t want = std::max({n, kMinBlockFloats, 2 * capacity()});
  blocks_.push_back({std::make_unique<float[]>(want), want});
  current_block_ = blocks_.size() - 1;
  used_in_block_ = n;
  live_ += n;
  high_water_ = std::max(high_water_, live_);
  return {blocks_.back().data.get(), n};
}

std::span<float> ScratchArena::alloc_zeroed(std::size_t n) {
  std::span<float> s = alloc(n);
  std::memset(s.data(), 0, s.size() * sizeof(float));
  return s;
}

void ScratchArena::rewind(const Mark& m) {
  current_block_ = m.block;
  used_in_block_ = m.used;
  live_ = m.live;
}

void ScratchArena::release() {
  blocks_.clear();
  current_block_ = 0;
  used_in_block_ = 0;
  live_ = 0;
}

void ScratchArena::trim(std::size_t max_floats) {
  if (live_ != 0) return;
  std::size_t keep = blocks_.size();
  std::size_t keep_size = 0;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].size <= max_floats && blocks_[i].size > keep_size) {
      keep = i;
      keep_size = blocks_[i].size;
    }
  }
  if (keep == blocks_.size()) {
    release();
    return;
  }
  Block kept = std::move(blocks_[keep]);
  blocks_.clear();
  blocks_.push_back(std::move(kept));
  current_block_ = 0;
  used_in_block_ = 0;
}

std::size_t ScratchArena::capacity() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

ScratchArena& ScratchArena::tls() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace a4nn::tensor
