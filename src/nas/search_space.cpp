#include "nas/search_space.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/layers.hpp"

namespace a4nn::nas {

util::Json SearchSpaceConfig::to_json() const {
  util::Json j = util::Json::object();
  j["phase_count"] = phase_count;
  j["nodes_per_phase"] = nodes_per_phase;
  j["stem_channels"] = stem_channels;
  j["channel_multiplier"] = channel_multiplier;
  j["classes"] = classes;
  util::JsonArray shape;
  for (std::size_t d : input_shape) shape.emplace_back(d);
  j["input_shape"] = util::Json(std::move(shape));
  j["searchable_ops"] = searchable_ops;
  return j;
}

nn::Model decode_genome(const Genome& genome, const SearchSpaceConfig& config,
                        util::Rng& rng) {
  if (genome.phase_count() != config.phase_count)
    throw std::invalid_argument("decode_genome: phase count mismatch");
  if (config.input_shape.size() != 3)
    throw std::invalid_argument("decode_genome: input shape must be CHW");

  auto trunk = std::make_unique<nn::Sequential>();
  const std::size_t in_channels = config.input_shape[0];
  std::size_t channels = config.stem_channels;
  trunk->append(std::make_unique<nn::Conv2d>(in_channels, channels, 3, 1, 1, rng));
  trunk->append(std::make_unique<nn::BatchNorm2d>(channels));
  trunk->append(std::make_unique<nn::ReLU>());

  std::size_t spatial = std::min(config.input_shape[1], config.input_shape[2]);
  for (std::size_t p = 0; p < config.phase_count; ++p) {
    trunk->append(
        std::make_unique<nn::PhaseBlock>(genome.phases[p], channels, rng));
    const bool last = p + 1 == config.phase_count;
    if (!last && spatial >= 4) {
      // Downsample and widen between phases.
      trunk->append(std::make_unique<nn::MaxPool2d>(2));
      spatial /= 2;
      const std::size_t next_channels = static_cast<std::size_t>(
          std::llround(static_cast<double>(channels) *
                       config.channel_multiplier));
      trunk->append(
          std::make_unique<nn::Conv2d>(channels, next_channels, 1, 1, 0, rng));
      trunk->append(std::make_unique<nn::BatchNorm2d>(next_channels));
      trunk->append(std::make_unique<nn::ReLU>());
      channels = next_channels;
    }
  }
  trunk->append(std::make_unique<nn::GlobalAvgPool>());
  trunk->append(std::make_unique<nn::Linear>(channels, config.classes, rng));
  return nn::Model(std::move(trunk), config.input_shape);
}

std::uint64_t genome_flops(const Genome& genome,
                           const SearchSpaceConfig& config) {
  util::Rng rng(0);  // weights do not influence FLOPs
  nn::Model model = decode_genome(genome, config, rng);
  return model.flops_per_image();
}

}  // namespace a4nn::nas
