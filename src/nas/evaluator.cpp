#include "nas/evaluator.hpp"

namespace a4nn::nas {

namespace {

util::Json doubles_to_json(const std::vector<double>& v) {
  util::JsonArray arr;
  arr.reserve(v.size());
  for (double d : v) arr.emplace_back(d);
  return util::Json(std::move(arr));
}

std::vector<double> doubles_from_json(const util::Json& j) {
  return j.as_double_vector();
}

}  // namespace

util::Json EvaluationRecord::to_json() const {
  util::Json j = util::Json::object();
  j["genome"] = genome.to_json();
  j["model_id"] = model_id;
  j["generation"] = generation;
  j["fitness"] = fitness;
  j["measured_fitness"] = measured_fitness;
  j["flops"] = flops;
  j["parameters"] = parameters;
  j["epochs_trained"] = epochs_trained;
  j["max_epochs"] = max_epochs;
  j["early_terminated"] = early_terminated;
  j["resumed_from_epoch"] = resumed_from_epoch;
  j["fitness_history"] = doubles_to_json(fitness_history);
  j["train_accuracy_history"] = doubles_to_json(train_accuracy_history);
  j["train_loss_history"] = doubles_to_json(train_loss_history);
  j["prediction_history"] = doubles_to_json(prediction_history);
  j["epoch_virtual_seconds"] = doubles_to_json(epoch_virtual_seconds);
  j["wall_seconds"] = wall_seconds;
  j["virtual_seconds"] = virtual_seconds;
  j["engine_overhead_seconds"] = engine_overhead_seconds;
  j["device_id"] = device_id;
  // Only failed records carry the failure fields, so the serialized bytes
  // of every successful record are unchanged from earlier journal formats.
  if (failed) {
    j["failed"] = true;
    j["error"] = error;
  }
  // Likewise inheritance fields appear only on warm-started records, and
  // `replayed` never serializes: a cache hit's journal bytes must equal the
  // cold-trained record's.
  if (inherited_from_model >= 0) {
    j["inherited_from_model"] = inherited_from_model;
    j["inherited_from_epoch"] = inherited_from_epoch;
    j["inherited_params_copied"] = inherited_params_copied;
    j["inherited_params_fresh"] = inherited_params_fresh;
  }
  // Probe fields ride along only when a latency probe actually ran, keyed
  // by the host fingerprint: flops-mode records keep their historical
  // journal bytes, and a replayed/warmed record on another machine can tell
  // the stored timing is not its own.
  if (!latency_host.empty()) {
    j["latency_ms"] = latency_ms;
    j["latency_p99_ms"] = latency_p99_ms;
    j["bytes_moved"] = bytes_moved;
    j["arithmetic_intensity"] = arithmetic_intensity;
    j["latency_host"] = latency_host;
  }
  return j;
}

EvaluationRecord EvaluationRecord::from_json(const util::Json& j) {
  EvaluationRecord r;
  r.genome = Genome::from_json(j.at("genome"));
  r.model_id = static_cast<int>(j.at("model_id").as_int());
  r.generation = static_cast<int>(j.at("generation").as_int());
  r.fitness = j.at("fitness").as_number();
  r.measured_fitness = j.at("measured_fitness").as_number();
  r.flops = static_cast<std::uint64_t>(j.at("flops").as_number());
  r.parameters = static_cast<std::size_t>(j.at("parameters").as_int());
  r.epochs_trained = static_cast<std::size_t>(j.at("epochs_trained").as_int());
  r.max_epochs = static_cast<std::size_t>(j.at("max_epochs").as_int());
  r.early_terminated = j.at("early_terminated").as_bool();
  // Absent in records written before fault-tolerant resume existed.
  r.resumed_from_epoch =
      static_cast<std::size_t>(j.number_or("resumed_from_epoch", 0.0));
  r.fitness_history = doubles_from_json(j.at("fitness_history"));
  r.train_accuracy_history = doubles_from_json(j.at("train_accuracy_history"));
  r.train_loss_history = doubles_from_json(j.at("train_loss_history"));
  r.prediction_history = doubles_from_json(j.at("prediction_history"));
  r.epoch_virtual_seconds = doubles_from_json(j.at("epoch_virtual_seconds"));
  r.wall_seconds = j.at("wall_seconds").as_number();
  r.virtual_seconds = j.at("virtual_seconds").as_number();
  r.engine_overhead_seconds = j.at("engine_overhead_seconds").as_number();
  r.device_id = static_cast<int>(j.at("device_id").as_int());
  r.failed = j.bool_or("failed", false);
  r.error = j.string_or("error", "");
  r.inherited_from_model =
      static_cast<int>(j.number_or("inherited_from_model", -1.0));
  r.inherited_from_epoch =
      static_cast<std::size_t>(j.number_or("inherited_from_epoch", 0.0));
  r.inherited_params_copied =
      static_cast<std::size_t>(j.number_or("inherited_params_copied", 0.0));
  r.inherited_params_fresh =
      static_cast<std::size_t>(j.number_or("inherited_params_fresh", 0.0));
  r.latency_ms = j.number_or("latency_ms", 0.0);
  r.latency_p99_ms = j.number_or("latency_p99_ms", 0.0);
  r.bytes_moved = static_cast<std::uint64_t>(j.number_or("bytes_moved", 0.0));
  r.arithmetic_intensity = j.number_or("arithmetic_intensity", 0.0);
  r.latency_host = j.string_or("latency_host", "");
  return r;
}

}  // namespace a4nn::nas
