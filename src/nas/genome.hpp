// NSGA-Net macro search-space genome.
//
// A genome is one connectivity bit-string per phase (bits for every
// (i -> j) node pair plus a skip bit), exactly the encoding of Lu et al.'s
// NSGA-Net macro space. Genomes serialize into record trails, and their
// canonical key deduplicates architectures across a search.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/phase_block.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace a4nn::nas {

struct Genome {
  std::vector<nn::PhaseSpec> phases;

  std::size_t phase_count() const { return phases.size(); }
  /// True when the genome carries per-node operation genes (the extended
  /// operation-searchable space); false for the paper's macro space.
  bool has_node_ops() const {
    return !phases.empty() && !phases.front().node_ops.empty();
  }
  /// Total number of bits (connectivity + skip per phase, plus 2 bits per
  /// node when operations are searchable).
  std::size_t bit_count() const;

  /// Flatten to a bit vector: per phase, connectivity bits, skip bit, then
  /// (if operations are searchable) 2 op bits per node, LSB first.
  std::vector<bool> to_bits() const;
  /// Rebuild from a flat bit vector given the per-phase node counts.
  static Genome from_bits(const std::vector<bool>& bits,
                          std::size_t phase_count, std::size_t nodes_per_phase,
                          bool with_node_ops = false);

  /// Canonical "0101|1..." string; unique per architecture encoding.
  std::string key() const;

  /// Canonical 64-bit digest of key(): FNV-1a over the key bytes finished
  /// with a splitmix64 avalanche, so any single-gene change flips about
  /// half the digest bits. Keys fitness memo-cache and tabular-mode
  /// entries; collision probability over a 10k-genome space is ~3e-12
  /// (test_properties checks injectivity empirically), and every consumer
  /// still verifies the full key behind the digest before reusing a
  /// result.
  std::uint64_t digest() const;

  util::Json to_json() const;
  static Genome from_json(const util::Json& j);

  bool operator==(const Genome& other) const { return key() == other.key(); }
};

/// Uniformly random genome. `with_node_ops` enables the extended space.
Genome random_genome(std::size_t phase_count, std::size_t nodes_per_phase,
                     util::Rng& rng, bool with_node_ops = false);

}  // namespace a4nn::nas
