// Variation operators on genome bit-strings: uniform and single-point
// crossover plus per-bit flip mutation (NSGA-Net's operators).
#pragma once

#include "nas/genome.hpp"

namespace a4nn::nas {

struct OperatorConfig {
  double crossover_rate = 0.9;   // probability offspring mixes both parents
  double mutation_rate = 0.02;   // per-bit flip probability
  bool uniform_crossover = false;  // false: single-point (NSGA-Net default)
};

/// Produce one child from two parents.
Genome crossover(const Genome& a, const Genome& b, const OperatorConfig& cfg,
                 util::Rng& rng);

/// Flip each bit independently with cfg.mutation_rate.
Genome mutate(const Genome& g, const OperatorConfig& cfg, util::Rng& rng);

}  // namespace a4nn::nas
