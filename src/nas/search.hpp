// The NSGA-Net generation loop: initialize a random population, evaluate
// it through an Evaluator, then repeatedly breed offspring via binary
// tournament + crossover + mutation and apply NSGA-II environmental
// selection on the union. Objectives: maximize fitness, minimize FLOPs.
#pragma once

#include <functional>

#include "nas/evaluator.hpp"
#include "nas/nsga2.hpp"
#include "nas/operators.hpp"
#include "nas/search_space.hpp"

namespace a4nn::nas {

/// Which objective vector the search minimizes (besides -fitness, which is
/// always first). kFlops is the historical 2-objective configuration and
/// the default; the hardware-aware modes append measured per-image latency
/// (kLatency: 3 objectives) and the roofline bytes-moved estimate (kBoth:
/// 4 objectives). Non-default modes require an evaluator that stamps the
/// latency fields into its records (see latency/probe.hpp).
enum class ObjectiveMode { kFlops, kLatency, kBoth };

const char* objective_mode_name(ObjectiveMode mode);
/// Parse "flops" | "latency" | "both"; throws std::invalid_argument.
ObjectiveMode objective_mode_from_name(const std::string& name);

/// Number of minimized objectives under `mode` (2, 3, or 4).
std::size_t objective_count(ObjectiveMode mode);

/// Table 2 of the paper, plus operator settings.
struct NsgaNetConfig {
  std::size_t population_size = 10;          // size of starting population
  std::size_t offspring_per_generation = 10; // offspring per generation
  /// Total evaluation rounds including the initial population, so the
  /// paper's configuration (10) trains 10 + 9*10 = 100 networks.
  std::size_t generations = 10;
  std::size_t max_epochs = 25;               // epochs to train (upper bound)
  SearchSpaceConfig space;                   // 4 nodes/phase by default
  OperatorConfig operators;
  std::uint64_t seed = 1234;
  /// When true, offspring skip the seen-genome dedup so crossover/mutation
  /// may re-produce already-evaluated architectures. Pointless without the
  /// fitness memo-cache; with it, duplicate-heavy searches resolve repeats
  /// in O(1) — the configuration the memo bench measures.
  bool allow_duplicates = false;
  /// Objective vector (see ObjectiveMode). Serialized only when non-default
  /// so the search.json bytes — and the cluster handshake CRC derived from
  /// them — are unchanged for every historical flops-mode run.
  ObjectiveMode objective = ObjectiveMode::kFlops;

  /// Networks the configuration will train in total.
  std::size_t total_networks() const {
    return population_size + (generations - 1) * offspring_per_generation;
  }

  util::Json to_json() const;
};

struct SearchResult {
  /// Every network trained during the search, in evaluation order; the
  /// model_id of each record indexes into this vector.
  std::vector<EvaluationRecord> history;
  /// Indices (into history) of the final surviving population.
  std::vector<std::size_t> final_population;
  /// Indices (into history) of the Pareto-optimal set over all evaluated
  /// networks (accuracy maximized, FLOPs minimized).
  std::vector<std::size_t> pareto;

  std::size_t total_epochs_trained() const;
  double total_virtual_seconds() const;
  double total_wall_seconds() const;
};

class NsgaNetSearch {
 public:
  /// The evaluator must outlive the search.
  NsgaNetSearch(NsgaNetConfig config, Evaluator& evaluator);

  /// Optional observer called after each generation with (generation
  /// index, records of that generation).
  using GenerationObserver =
      std::function<void(int, std::span<const EvaluationRecord>)>;
  void set_observer(GenerationObserver observer);

  SearchResult run();

  const NsgaNetConfig& config() const { return config_; }

 private:
  NsgaNetConfig config_;
  Evaluator* evaluator_;
  GenerationObserver observer_;
};

/// Objective-space view of a record: {-accuracy, flops}, both minimized —
/// the historical 2-objective view (== kFlops mode).
Objectives record_objectives(const EvaluationRecord& r);

/// Mode-aware view: kFlops appends nothing, kLatency appends the measured
/// per-image latency (ms), kBoth also appends the roofline bytes-moved
/// estimate. The latency fields must have been stamped by a probe-aware
/// evaluator; records without them contribute 0 (and would corrupt the
/// front), so NsgaNetSearch validates before using them.
Objectives record_objectives(const EvaluationRecord& r, ObjectiveMode mode);

}  // namespace a4nn::nas
