#include "nas/operators.hpp"

#include <stdexcept>

namespace a4nn::nas {

Genome crossover(const Genome& a, const Genome& b, const OperatorConfig& cfg,
                 util::Rng& rng) {
  if (a.phase_count() != b.phase_count())
    throw std::invalid_argument("crossover: incompatible genomes");
  const std::vector<bool> bits_a = a.to_bits();
  const std::vector<bool> bits_b = b.to_bits();
  if (bits_a.size() != bits_b.size())
    throw std::invalid_argument("crossover: bit length mismatch");

  std::vector<bool> child = bits_a;
  if (rng.bernoulli(cfg.crossover_rate)) {
    if (cfg.uniform_crossover) {
      for (std::size_t i = 0; i < child.size(); ++i) {
        if (rng.bernoulli(0.5)) child[i] = bits_b[i];
      }
    } else {
      // Single point: take the tail from parent b.
      const std::size_t cut =
          static_cast<std::size_t>(rng.uniform_index(child.size()));
      for (std::size_t i = cut; i < child.size(); ++i) child[i] = bits_b[i];
    }
  }
  return Genome::from_bits(child, a.phase_count(), a.phases[0].nodes,
                           a.has_node_ops());
}

Genome mutate(const Genome& g, const OperatorConfig& cfg, util::Rng& rng) {
  std::vector<bool> bits = g.to_bits();
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (rng.bernoulli(cfg.mutation_rate)) bits[i] = !bits[i];
  }
  return Genome::from_bits(bits, g.phase_count(), g.phases[0].nodes,
                           g.has_node_ops());
}

}  // namespace a4nn::nas
