#include "nas/memo.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace a4nn::nas {

namespace {

std::string digest_hex(std::uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[digest & 0xF];
    digest >>= 4;
  }
  return out;
}

}  // namespace

const char* memo_mode_name(MemoMode mode) {
  switch (mode) {
    case MemoMode::kOff:
      return "off";
    case MemoMode::kCold:
      return "cold";
    case MemoMode::kOn:
      return "on";
  }
  return "off";
}

MemoMode memo_mode_from_name(const std::string& name) {
  if (name == "off") return MemoMode::kOff;
  if (name == "cold") return MemoMode::kCold;
  if (name == "on") return MemoMode::kOn;
  throw std::invalid_argument("memo_mode_from_name: unknown mode '" + name +
                              "' (expected off|cold|on)");
}

std::uint64_t memo_model_seed(std::uint64_t run_seed, const Genome& genome) {
  // Mirror the legacy model-id mix (golden-ratio multiply) but feed it the
  // genome digest, so the stream a model trains with is a pure function of
  // (run seed, architecture).
  return run_seed ^ (0x9E3779B97F4A7C15ULL * genome.digest());
}

void FitnessMemo::insert(const EvaluationRecord& record) {
  if (record.failed) return;  // failures are never cache hits
  // An inherited record's curves depend on the ancestor it warm-started
  // from, not on the genome alone — replaying it for a duplicate bred from
  // a different parent would break the kCold == kOn bit-identity contract.
  // Warm-started evaluations therefore never enter the cache (and the
  // evaluator never serves a hit to a child that will warm-start).
  if (record.inherited_from_model >= 0) return;
  const std::uint64_t d = record.genome.digest();
  const std::string key = record.genome.key();
  auto it = entries_.find(d);
  if (it == entries_.end()) {
    entries_.emplace(d, Entry{key, record});
    model_digest_.emplace(record.model_id, d);
    return;
  }
  if (it->second.key != key) return;  // digest collision: keep first owner
  // Already cached; remember the duplicate's model id so inheritance can
  // still resolve it back to the canonical snapshots.
  model_digest_.emplace(record.model_id, d);
}

void FitnessMemo::warm(std::span<const EvaluationRecord> records) {
  for (const auto& r : records) insert(r);
}

const EvaluationRecord* FitnessMemo::lookup(const Genome& genome) {
  if (!reuse_enabled()) return nullptr;
  auto it = entries_.find(genome.digest());
  if (it == entries_.end() || it->second.key != genome.key()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second.record;
}

int FitnessMemo::canonical_model(const Genome& genome) const {
  auto it = entries_.find(genome.digest());
  if (it == entries_.end() || it->second.key != genome.key()) return -1;
  return it->second.record.model_id;
}

int FitnessMemo::canonical_model_of(int model_id) const {
  auto mit = model_digest_.find(model_id);
  if (mit == model_digest_.end()) return -1;
  auto it = entries_.find(mit->second);
  if (it == entries_.end()) return -1;
  return it->second.record.model_id;
}

util::Json memo_index_json(std::span<const EvaluationRecord> history) {
  // Rebuild digest -> canonical entry from the journaled history (first
  // successful record per genome wins), so the index reflects exactly what
  // the run persisted — independent of in-memory cache state or mode.
  struct IndexEntry {
    std::uint64_t digest;
    std::string key;
    int model_id;
    double fitness;
    std::uint64_t flops;
    std::size_t epochs_trained;
  };
  std::vector<IndexEntry> entries;
  // O(n) dedup: keys seen per digest (a vector, so a digest collision
  // still yields one entry per distinct key, exactly as a linear scan
  // over all prior entries would).
  std::unordered_map<std::uint64_t, std::vector<std::string>> seen;
  for (const auto& r : history) {
    if (r.failed) continue;
    const std::uint64_t d = r.genome.digest();
    std::string key = r.genome.key();
    auto& keys = seen[d];
    if (std::find(keys.begin(), keys.end(), key) != keys.end()) continue;
    entries.push_back(
        {d, key, r.model_id, r.fitness, r.flops, r.epochs_trained});
    keys.push_back(std::move(key));
  }
  std::sort(entries.begin(), entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              return a.digest < b.digest;
            });

  util::Json j = util::Json::object();
  j["format"] = std::string("a4nn-memo-index-v1");
  j["unique_genomes"] = entries.size();
  util::JsonArray arr;
  arr.reserve(entries.size());
  for (const auto& e : entries) {
    util::Json ej = util::Json::object();
    ej["digest"] = digest_hex(e.digest);
    ej["key"] = e.key;
    ej["model_id"] = e.model_id;
    ej["fitness"] = e.fitness;
    ej["flops"] = e.flops;
    ej["epochs_trained"] = e.epochs_trained;
    arr.push_back(std::move(ej));
  }
  j["entries"] = util::Json(std::move(arr));
  return j;
}

}  // namespace a4nn::nas
