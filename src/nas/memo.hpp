// Search-time fitness memoization.
//
// NSGA-II crossover/mutation re-produces genomes — across generations,
// across --resume restarts, and across cluster re-dispatches. Training is
// deterministic given (genome, seed), so re-training a genome that already
// has a journaled record is pure waste. The FitnessMemo keys every
// successful evaluation by the genome's canonical 64-bit digest
// (Genome::digest) and resolves re-appearances to an O(1) lookup over the
// records the LineageTracker already journals (A4NNF1-framed, CRC-checked
// — the manifest journal IS the cache's durable form; `memo_index.json`
// summarizes it per run as a journaled artifact).
//
// Bit-exactness contract: with memoization the per-model training seed is
// derived from the genome digest instead of the model id (memo_model_seed),
// so a duplicate genome trained from scratch produces the byte-identical
// learning curve its cached twin carries. MemoMode::kCold runs the same
// genome-keyed seeding with reuse disabled — the differential tests in
// tests/test_memo_cache.cpp prove kCold and kOn runs produce identical
// Pareto fronts, commons records, and lineage facts (only wall-clock
// fields differ). Failed records never enter the cache (PR 4 semantics: a
// failure marker holds no result worth replaying). Neither do inherited
// records, and a child about to warm-start is never served a hit: a
// warm-started evaluation is a function of (genome, ancestor), not of the
// genome alone, so under --inherit-weights the cache covers exactly the
// parentless from-scratch evaluations — the subset where replay is provably
// equivalent.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>

#include "nas/evaluator.hpp"

namespace a4nn::nas {

/// How the evaluation accelerator runs.
///   kOff  — legacy behavior: per-model-id seeds, no cache (the default;
///           preserves every pre-memo result bit-for-bit).
///   kCold — genome-keyed seeds, cache bookkeeping, but no result reuse:
///           the control arm of the differential tests and benches.
///   kOn   — genome-keyed seeds + O(1) reuse of journaled evaluations.
enum class MemoMode { kOff, kCold, kOn };

const char* memo_mode_name(MemoMode mode);
/// Parse "off" | "cold" | "on"; throws std::invalid_argument otherwise.
MemoMode memo_mode_from_name(const std::string& name);

/// Per-model training seed under genome-keyed seeding: depends only on the
/// run seed and the architecture, never on the model id, so two models
/// with the same genome train bit-identically.
std::uint64_t memo_model_seed(std::uint64_t run_seed, const Genome& genome);

class FitnessMemo {
 public:
  explicit FitnessMemo(MemoMode mode) : mode_(mode) {}

  MemoMode mode() const { return mode_; }
  bool reuse_enabled() const { return mode_ == MemoMode::kOn; }

  /// Record a finished evaluation. Failed records are rejected (never
  /// cache hits), and so are inherited records: a warm-started child's
  /// curves depend on its ancestor, so replaying one for a duplicate bred
  /// from a different parent would break kCold == kOn bit-identity. The
  /// first model to train a genome from scratch stays its canonical
  /// source. Insertion happens in both kCold and kOn so the canonical
  /// model map (weight-inheritance fallback) is mode-independent.
  void insert(const EvaluationRecord& record);

  /// Warm the cache from journaled commons records (resume / shared
  /// commons). Equivalent to inserting each in order.
  void warm(std::span<const EvaluationRecord> records);

  /// O(1) cache lookup. Returns the canonical record when reuse is
  /// enabled and the genome was already evaluated (exact key match behind
  /// the digest, so a digest collision degrades to a miss, never a wrong
  /// record). Null otherwise.
  const EvaluationRecord* lookup(const Genome& genome);

  /// Canonical model id that trained this genome (-1 if never trained).
  /// Available in every mode != kOff: lets weight inheritance fall back to
  /// the model that actually wrote snapshots when the requested ancestor
  /// was itself a cache hit.
  int canonical_model(const Genome& genome) const;
  /// Same, by the digest of a model already inserted (-1 when unknown).
  int canonical_model_of(int model_id) const;

  std::size_t size() const { return entries_.size(); }
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  struct Entry {
    std::string key;  // full canonical key, verified behind the digest
    EvaluationRecord record;
  };

  MemoMode mode_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::unordered_map<int, std::uint64_t> model_digest_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// Deterministic summary of a run's evaluations: digest -> canonical model
/// id + fitness/flops, sorted by digest, first successful record per
/// genome winning. Built purely from the journaled history — never from
/// in-memory cache state — so kCold and kOn runs of the same configuration
/// produce byte-identical indexes (the differential suite diffs them).
/// Journaled as `memo_index.json` through the LineageTracker.
util::Json memo_index_json(std::span<const EvaluationRecord> history);

}  // namespace a4nn::nas
