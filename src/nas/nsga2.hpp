// NSGA-II machinery: fast non-dominated sorting, crowding distance,
// environmental selection, and binary tournament — the multi-objective
// core of NSGA-Net. Objectives are minimized; callers negate
// maximization objectives (accuracy) before handing points in.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace a4nn::nas {

/// One point in objective space, every component minimized. Historically a
/// fixed {-accuracy, flops} pair; now a small k-objective vector so the
/// hardware-aware modes can append measured latency and bytes-moved.
/// Fixed capacity (no allocation): dominance checks are the innermost loop
/// of the sort. Every point handed to one NSGA-II call must have the same
/// size; brace-init keeps the historical `{{-a, f}, ...}` literals working.
class Objectives {
 public:
  static constexpr std::size_t kMaxObjectives = 6;

  constexpr Objectives() = default;
  constexpr Objectives(std::initializer_list<double> values) {
    for (double v : values) push_back(v);
  }

  constexpr void push_back(double v) { values_[size_++] = v; }
  constexpr std::size_t size() const { return size_; }
  constexpr double operator[](std::size_t i) const { return values_[i]; }
  constexpr double& operator[](std::size_t i) { return values_[i]; }
  constexpr const double* begin() const { return values_.data(); }
  constexpr const double* end() const { return values_.data() + size_; }
  constexpr bool operator==(const Objectives&) const = default;

 private:
  std::array<double, kMaxObjectives> values_{};
  std::size_t size_ = 0;
};

/// True if a dominates b (<= in every objective, < in at least one).
bool dominates(const Objectives& a, const Objectives& b);

/// Fronts of indices: fronts[0] is the Pareto-optimal set, fronts[1] the
/// set dominated only by fronts[0], etc. (Deb et al.'s fast sort.)
std::vector<std::vector<std::size_t>> fast_non_dominated_sort(
    std::span<const Objectives> points);

/// Crowding distance of each member within one front (same index order as
/// `front`); boundary points get +infinity.
std::vector<double> crowding_distance(std::span<const Objectives> points,
                                      std::span<const std::size_t> front);

/// Pick `count` survivors from `points` by rank then crowding distance —
/// NSGA-II environmental selection. Returns selected indices.
std::vector<std::size_t> environmental_selection(
    std::span<const Objectives> points, std::size_t count);

/// Rank (front index) and crowding distance for every point, as used by
/// tournament selection.
struct RankedPoint {
  std::size_t rank = 0;
  double crowding = 0.0;
};
std::vector<RankedPoint> rank_population(std::span<const Objectives> points);

/// Binary tournament: lower rank wins; ties broken by larger crowding.
/// Returns the winning index of {a, b}.
std::size_t tournament_winner(std::span<const RankedPoint> ranked,
                              std::size_t a, std::size_t b);

/// Pareto-optimal subset of the points (front 0 indices).
std::vector<std::size_t> pareto_front(std::span<const Objectives> points);

}  // namespace a4nn::nas
