// NSGA-II machinery: fast non-dominated sorting, crowding distance,
// environmental selection, and binary tournament — the multi-objective
// core of NSGA-Net. Objectives are minimized; callers negate
// maximization objectives (accuracy) before handing points in.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace a4nn::nas {

/// One point in objective space (2 objectives, both minimized:
/// {-accuracy, flops} for NSGA-Net).
using Objectives = std::array<double, 2>;

/// True if a dominates b (<= in every objective, < in at least one).
bool dominates(const Objectives& a, const Objectives& b);

/// Fronts of indices: fronts[0] is the Pareto-optimal set, fronts[1] the
/// set dominated only by fronts[0], etc. (Deb et al.'s fast sort.)
std::vector<std::vector<std::size_t>> fast_non_dominated_sort(
    std::span<const Objectives> points);

/// Crowding distance of each member within one front (same index order as
/// `front`); boundary points get +infinity.
std::vector<double> crowding_distance(std::span<const Objectives> points,
                                      std::span<const std::size_t> front);

/// Pick `count` survivors from `points` by rank then crowding distance —
/// NSGA-II environmental selection. Returns selected indices.
std::vector<std::size_t> environmental_selection(
    std::span<const Objectives> points, std::size_t count);

/// Rank (front index) and crowding distance for every point, as used by
/// tournament selection.
struct RankedPoint {
  std::size_t rank = 0;
  double crowding = 0.0;
};
std::vector<RankedPoint> rank_population(std::span<const Objectives> points);

/// Binary tournament: lower rank wins; ties broken by larger crowding.
/// Returns the winning index of {a, b}.
std::size_t tournament_winner(std::span<const RankedPoint> ranked,
                              std::size_t a, std::size_t b);

/// Pareto-optimal subset of the points (front 0 indices).
std::vector<std::size_t> pareto_front(std::span<const Objectives> points);

}  // namespace a4nn::nas
