#include "nas/genome.hpp"

#include <stdexcept>

namespace a4nn::nas {

std::size_t Genome::bit_count() const {
  std::size_t n = 0;
  for (const auto& p : phases) {
    n += p.bits.size() + 1;
    n += 2 * p.node_ops.size();  // 2 op-selection bits per node
  }
  return n;
}

std::vector<bool> Genome::to_bits() const {
  std::vector<bool> bits;
  bits.reserve(bit_count());
  for (const auto& p : phases) {
    bits.insert(bits.end(), p.bits.begin(), p.bits.end());
    bits.push_back(p.skip);
    for (nn::NodeOp op : p.node_ops) {
      const auto code = static_cast<std::uint8_t>(op);
      bits.push_back((code & 1) != 0);
      bits.push_back((code & 2) != 0);
    }
  }
  return bits;
}

Genome Genome::from_bits(const std::vector<bool>& bits,
                         std::size_t phase_count, std::size_t nodes_per_phase,
                         bool with_node_ops) {
  const std::size_t per_phase =
      nn::PhaseSpec::bits_for_nodes(nodes_per_phase) + 1 +
      (with_node_ops ? 2 * nodes_per_phase : 0);
  if (bits.size() != per_phase * phase_count)
    throw std::invalid_argument("Genome::from_bits: bit count mismatch");
  Genome g;
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < phase_count; ++p) {
    nn::PhaseSpec spec;
    spec.nodes = nodes_per_phase;
    const std::size_t conn = nn::PhaseSpec::bits_for_nodes(nodes_per_phase);
    spec.bits.assign(bits.begin() + static_cast<std::ptrdiff_t>(cursor),
                     bits.begin() + static_cast<std::ptrdiff_t>(cursor + conn));
    cursor += conn;
    spec.skip = bits[cursor++];
    if (with_node_ops) {
      for (std::size_t j = 0; j < nodes_per_phase; ++j) {
        std::uint8_t code = 0;
        if (bits[cursor++]) code |= 1;
        if (bits[cursor++]) code |= 2;
        spec.node_ops.push_back(static_cast<nn::NodeOp>(code));
      }
    }
    g.phases.push_back(std::move(spec));
  }
  return g;
}

std::string Genome::key() const {
  std::string out;
  for (const auto& p : phases) {
    for (bool b : p.bits) out += b ? '1' : '0';
    out += p.skip ? 'S' : 's';
    for (nn::NodeOp op : p.node_ops)
      out += static_cast<char>('a' + static_cast<std::uint8_t>(op));
    out += '|';
  }
  return out;
}

std::uint64_t Genome::digest() const {
  // FNV-1a 64-bit over the canonical key.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : key()) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  // splitmix64 finalizer: avalanches the low-entropy tail of short keys.
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

util::Json Genome::to_json() const {
  util::Json j = util::Json::object();
  util::JsonArray phase_arr;
  for (const auto& p : phases) {
    util::Json pj = util::Json::object();
    pj["nodes"] = p.nodes;
    util::JsonArray bits;
    for (bool b : p.bits) bits.emplace_back(b);
    pj["bits"] = util::Json(std::move(bits));
    pj["skip"] = p.skip;
    if (!p.node_ops.empty()) {
      util::JsonArray ops;
      for (nn::NodeOp op : p.node_ops)
        ops.emplace_back(static_cast<std::int64_t>(op));
      pj["node_ops"] = util::Json(std::move(ops));
    }
    phase_arr.push_back(std::move(pj));
  }
  j["phases"] = util::Json(std::move(phase_arr));
  return j;
}

Genome Genome::from_json(const util::Json& j) {
  Genome g;
  for (const auto& pj : j.at("phases").as_array()) {
    nn::PhaseSpec spec;
    spec.nodes = static_cast<std::size_t>(pj.at("nodes").as_int());
    for (const auto& b : pj.at("bits").as_array())
      spec.bits.push_back(b.as_bool());
    spec.skip = pj.at("skip").as_bool();
    if (pj.contains("node_ops")) {
      for (const auto& op : pj.at("node_ops").as_array())
        spec.node_ops.push_back(static_cast<nn::NodeOp>(op.as_int()));
    }
    if (spec.bits.size() != nn::PhaseSpec::bits_for_nodes(spec.nodes))
      throw std::invalid_argument("Genome::from_json: malformed phase");
    if (!spec.node_ops.empty() && spec.node_ops.size() != spec.nodes)
      throw std::invalid_argument("Genome::from_json: malformed node_ops");
    g.phases.push_back(std::move(spec));
  }
  return g;
}

Genome random_genome(std::size_t phase_count, std::size_t nodes_per_phase,
                     util::Rng& rng, bool with_node_ops) {
  Genome g;
  for (std::size_t p = 0; p < phase_count; ++p) {
    nn::PhaseSpec spec;
    spec.nodes = nodes_per_phase;
    spec.bits.resize(nn::PhaseSpec::bits_for_nodes(nodes_per_phase));
    for (std::size_t i = 0; i < spec.bits.size(); ++i)
      spec.bits[i] = rng.bernoulli(0.5);
    spec.skip = rng.bernoulli(0.5);
    if (with_node_ops) {
      for (std::size_t j = 0; j < nodes_per_phase; ++j) {
        spec.node_ops.push_back(static_cast<nn::NodeOp>(
            rng.uniform_index(nn::kNodeOpCount)));
      }
    }
    g.phases.push_back(std::move(spec));
  }
  return g;
}

}  // namespace a4nn::nas
