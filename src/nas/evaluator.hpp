// The seam between the NAS and everything else.
//
// NSGA-Net only needs a fitness and a FLOPs number per genome; *how* a
// genome is trained — full 25 epochs standalone, or early-terminated by
// the A4NN prediction engine, on one simulated GPU or four — is entirely
// the evaluator's business. This decoupling is the paper's composability
// claim made concrete: the same search runs against a standalone
// evaluator and an A4NN-augmented one.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nas/genome.hpp"
#include "util/json.hpp"

namespace a4nn::nas {

/// Full record trail of one trained network, also what the lineage tracker
/// persists to the data commons.
struct EvaluationRecord {
  Genome genome;
  int model_id = -1;
  int generation = -1;

  double fitness = 0.0;           // fitness reported to the NAS (%)
  double measured_fitness = 0.0;  // last measured validation accuracy (%)
  std::uint64_t flops = 0;        // forward FLOPs per image
  std::size_t parameters = 0;

  std::size_t epochs_trained = 0;
  std::size_t max_epochs = 0;
  bool early_terminated = false;
  /// Nonzero when training resumed from a commons epoch checkpoint instead
  /// of epoch 0 (fault-tolerant restart); counts the epochs skipped.
  std::size_t resumed_from_epoch = 0;

  std::vector<double> fitness_history;      // validation accuracy per epoch
  std::vector<double> train_accuracy_history;
  std::vector<double> train_loss_history;
  std::vector<double> prediction_history;   // engine predictions per epoch
  std::vector<double> epoch_virtual_seconds;

  double wall_seconds = 0.0;     // measured host time spent training
  double virtual_seconds = 0.0;  // simulated device time (scheduler clock)
  double engine_overhead_seconds = 0.0;  // measured time inside the engine
  int device_id = -1;            // simulated GPU the model trained on

  /// True when evaluation did not complete (the job exhausted its retries).
  /// A failed record carries no trustworthy fitness: selection, Pareto
  /// analysis, and the data commons must all skip it.
  bool failed = false;
  std::string error;  // what the last attempt threw (empty when !failed)

  /// Weight-inheritance provenance: when >= 0, this model's tensors were
  /// seeded from that ancestor's epoch checkpoint before fine-tuning, and
  /// the three companion fields say which epoch and how many parameter
  /// tensors transferred vs. re-initialized. Serialized only when set, so
  /// cold-start records keep their historical journal bytes.
  int inherited_from_model = -1;
  std::size_t inherited_from_epoch = 0;
  std::size_t inherited_params_copied = 0;
  std::size_t inherited_params_fresh = 0;

  /// Hardware-aware objectives (latency/probe.hpp). Populated only when a
  /// latency probe ran for this record; `latency_host` names the machine
  /// fingerprint the timing belongs to — measured latency is machine-local,
  /// so memo/resume replay on a different host must re-probe rather than
  /// trust a foreign number. Serialized only when stamped (latency_host
  /// non-empty), so flops-mode journal bytes are unchanged from pre-probe
  /// runs.
  double latency_ms = 0.0;      ///< median per-image ms at serving geometry
  double latency_p99_ms = 0.0;  ///< p99 per-image ms across probe repeats
  std::uint64_t bytes_moved = 0;       ///< roofline bytes per image forward
  double arithmetic_intensity = 0.0;   ///< flops / bytes_moved
  std::string latency_host;            ///< probe host fingerprint

  /// True when this record was resolved from the fitness memo-cache rather
  /// than trained. Transient: never serialized, so a replayed record's
  /// journal bytes are identical to its cold-trained twin's — that is the
  /// differential-equivalence guarantee the memo tests pin down.
  bool replayed = false;

  /// True when this record was copied from a same-generation duplicate's
  /// leader job instead of training its own copy (duplicate coalescing).
  /// Transient like `replayed`: the journal bytes of a coalesced record are
  /// identical to the record the duplicate would have trained — genome-keyed
  /// seeds make the two trainings bit-equal, so only the accounting differs.
  bool coalesced = false;

  util::Json to_json() const;
  static EvaluationRecord from_json(const util::Json& j);
};

/// Who produced an offspring genome: model ids of the tournament-selected
/// parents (the indices NSGA-II already reports to the lineage tracker), or
/// -1 for initial-population genomes with no ancestry.
struct Parentage {
  int parent_a = -1;
  int parent_b = -1;
};

class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Train/score one generation of genomes. Called once per generation so
  /// the resource manager can schedule the whole batch across devices.
  virtual std::vector<EvaluationRecord> evaluate_generation(
      std::span<const Genome> genomes, int generation) = 0;

  /// Ancestry-aware variant: `parents[i]` names the models whose crossover
  /// produced `genomes[i]` (empty span when ancestry is unknown). The
  /// default ignores parentage, so evaluators that cannot warm-start —
  /// standalone, table-backed — need no changes.
  virtual std::vector<EvaluationRecord> evaluate_generation(
      std::span<const Genome> genomes, std::span<const Parentage> parents,
      int generation) {
    (void)parents;
    return evaluate_generation(genomes, generation);
  }
};

}  // namespace a4nn::nas
