// NAS-Bench-201-style tabular NAS mode.
//
// `a4nn_tabulate` exhaustively trains a small search space once, journaling
// every full learning curve into a data commons (the table's durable,
// CRC-checked form, resumable mid-sweep like any interrupted run). A
// GenomeTable then loads those records into a digest-keyed map, and the
// TableEvaluator answers evaluate_generation() from the table in
// microseconds — so the ablation benches sweep thousands of architectures
// per second without touching a training loop.
//
// The TableEvaluator can also replay the prediction engine offline over
// each stored curve (simulate_early_termination) to model what an
// early-terminating search would have reported. Fits are cached per genome
// digest: a genome swept twice reuses its journaled fit outcome
// (iterations, convergence) instead of re-running LM fitting, which keeps
// engine-overhead accounting honest — repeat lookups add zero fresh fits.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "nas/evaluator.hpp"
#include "nas/search_space.hpp"
#include "penguin/engine.hpp"

namespace a4nn::nas {

/// Every genome of the macro space defined by `config`, in canonical
/// numeric order (flat bit vector read as a little-endian integer,
/// counting up). Throws std::invalid_argument when the space exceeds
/// `max_genomes` — tabulation is for small spaces by construction.
std::vector<Genome> enumerate_space(const SearchSpaceConfig& config,
                                    std::size_t max_genomes = 1u << 20);

/// Digest-keyed map from genome to its tabulated evaluation record (full
/// learning curve). Built from commons records; lookups verify the full
/// canonical key behind the digest.
class GenomeTable {
 public:
  GenomeTable() = default;

  /// Build from record trails (e.g. DataCommons::load_records of an
  /// a4nn_tabulate commons). Failed records are skipped; the first record
  /// per genome wins.
  static GenomeTable from_records(std::vector<EvaluationRecord> records);

  /// Null when the genome is not tabulated.
  const EvaluationRecord* find(const Genome& genome) const;

  std::size_t size() const { return entries_.size(); }

  /// Deterministic table header document (journaled as "table.json").
  static util::Json header_json(const SearchSpaceConfig& space,
                                std::size_t genomes, std::size_t max_epochs);

 private:
  struct Entry {
    std::string key;
    EvaluationRecord record;
  };
  std::unordered_map<std::uint64_t, Entry> entries_;
};

/// Evaluator answering from a GenomeTable instead of training. With an
/// engine config, each lookup replays Algorithm 1 offline over the stored
/// curve (early termination + predicted fitness); without one, the stored
/// record is returned as-is. Genomes absent from the table come back as
/// failed records (never phantom fitness-0 points).
class TableEvaluator : public Evaluator {
 public:
  /// The table must outlive the evaluator.
  explicit TableEvaluator(const GenomeTable& table);
  TableEvaluator(const GenomeTable& table, penguin::EngineConfig engine);

  std::vector<EvaluationRecord> evaluate_generation(
      std::span<const Genome> genomes, int generation) override;

  std::size_t lookups() const { return lookups_; }
  std::size_t table_misses() const { return misses_; }
  /// Engine replays served from the per-digest fit cache (no fresh LM
  /// fitting). lookups - fit_cache_hits - misses == fresh simulations.
  std::size_t fit_cache_hits() const { return fit_cache_hits_; }

  /// Attach a metrics registry; the engine's fit/LM counters land there,
  /// so tests can assert cached replays add no fresh iterations.
  void set_metrics(util::metrics::Registry* registry);

 private:
  const GenomeTable* table_;
  std::unique_ptr<penguin::PredictionEngine> engine_;
  /// Digest -> simulated termination of that genome's stored curve.
  std::unordered_map<std::uint64_t, penguin::SimulatedTermination> fit_cache_;
  std::size_t lookups_ = 0;
  std::size_t misses_ = 0;
  std::size_t fit_cache_hits_ = 0;
};

}  // namespace a4nn::nas
