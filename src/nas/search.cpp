#include "nas/search.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/log.hpp"

namespace a4nn::nas {

const char* objective_mode_name(ObjectiveMode mode) {
  switch (mode) {
    case ObjectiveMode::kFlops:
      return "flops";
    case ObjectiveMode::kLatency:
      return "latency";
    case ObjectiveMode::kBoth:
      return "both";
  }
  return "unknown";
}

ObjectiveMode objective_mode_from_name(const std::string& name) {
  if (name == "flops") return ObjectiveMode::kFlops;
  if (name == "latency") return ObjectiveMode::kLatency;
  if (name == "both") return ObjectiveMode::kBoth;
  throw std::invalid_argument("unknown objective mode: " + name);
}

std::size_t objective_count(ObjectiveMode mode) {
  switch (mode) {
    case ObjectiveMode::kFlops:
      return 2;
    case ObjectiveMode::kLatency:
      return 3;
    case ObjectiveMode::kBoth:
      return 4;
  }
  return 2;
}

util::Json NsgaNetConfig::to_json() const {
  util::Json j = util::Json::object();
  j["population_size"] = population_size;
  j["offspring_per_generation"] = offspring_per_generation;
  j["generations"] = generations;
  j["max_epochs"] = max_epochs;
  j["space"] = space.to_json();
  j["crossover_rate"] = operators.crossover_rate;
  j["mutation_rate"] = operators.mutation_rate;
  j["seed"] = seed;
  j["allow_duplicates"] = allow_duplicates;
  // Only non-default modes serialize: flops-mode search.json bytes (and the
  // cluster handshake CRC computed over them) stay pre-PR identical, while
  // a latency-mode master/worker pair must agree on the mode to shake hands.
  if (objective != ObjectiveMode::kFlops)
    j["objective"] = std::string(objective_mode_name(objective));
  return j;
}

std::size_t SearchResult::total_epochs_trained() const {
  std::size_t n = 0;
  for (const auto& r : history) n += r.epochs_trained;
  return n;
}

double SearchResult::total_virtual_seconds() const {
  double t = 0.0;
  for (const auto& r : history) t = std::max(t, r.virtual_seconds);
  return t;
}

double SearchResult::total_wall_seconds() const {
  double t = 0.0;
  for (const auto& r : history) t += r.wall_seconds;
  return t;
}

Objectives record_objectives(const EvaluationRecord& r) {
  return {-r.fitness, static_cast<double>(r.flops)};
}

Objectives record_objectives(const EvaluationRecord& r, ObjectiveMode mode) {
  Objectives obj = record_objectives(r);
  if (mode == ObjectiveMode::kLatency || mode == ObjectiveMode::kBoth)
    obj.push_back(r.latency_ms);
  if (mode == ObjectiveMode::kBoth)
    obj.push_back(static_cast<double>(r.bytes_moved));
  return obj;
}

NsgaNetSearch::NsgaNetSearch(NsgaNetConfig config, Evaluator& evaluator)
    : config_(std::move(config)), evaluator_(&evaluator) {
  if (config_.population_size < 2)
    throw std::invalid_argument("NsgaNetSearch: population must be >= 2");
  if (config_.generations == 0)
    throw std::invalid_argument("NsgaNetSearch: need >= 1 generation");
}

void NsgaNetSearch::set_observer(GenerationObserver observer) {
  observer_ = std::move(observer);
}

SearchResult NsgaNetSearch::run() {
  util::Rng rng(config_.seed);
  SearchResult result;
  std::unordered_set<std::string> seen;

  auto fresh_random = [&] {
    for (int attempt = 0; attempt < 256; ++attempt) {
      Genome g = random_genome(config_.space.phase_count,
                               config_.space.nodes_per_phase, rng,
                               config_.space.searchable_ops);
      if (seen.insert(g.key()).second) return g;
    }
    throw std::runtime_error("NsgaNetSearch: search space exhausted");
  };

  // Initial population.
  std::vector<Genome> population;
  population.reserve(config_.population_size);
  for (std::size_t i = 0; i < config_.population_size; ++i)
    population.push_back(fresh_random());

  auto evaluate = [&](std::span<const Genome> genomes,
                      std::span<const Parentage> parents, int generation) {
    std::vector<EvaluationRecord> records =
        evaluator_->evaluate_generation(genomes, parents, generation);
    if (records.size() != genomes.size())
      throw std::runtime_error("NsgaNetSearch: evaluator record count mismatch");
    const std::size_t base = result.history.size();
    for (std::size_t i = 0; i < records.size(); ++i) {
      records[i].model_id = static_cast<int>(base + i);
      records[i].generation = generation;
      // Hardware-aware modes rank on measured latency: a record without a
      // probe stamp would enter selection as a phantom 0 ms candidate and
      // dominate everything, so an evaluator that cannot probe is a
      // configuration error, not a silent degradation.
      if (config_.objective != ObjectiveMode::kFlops && !records[i].failed &&
          records[i].latency_host.empty())
        throw std::runtime_error(
            "NsgaNetSearch: objective mode '" +
            std::string(objective_mode_name(config_.objective)) + "' needs " +
            "latency-probed records, but model " +
            std::to_string(records[i].model_id) + " carries no probe stamp");
      result.history.push_back(records[i]);
    }
    if (observer_) {
      observer_(generation,
                std::span<const EvaluationRecord>(
                    result.history.data() + base, records.size()));
    }
  };

  evaluate(population, {}, 0);
  // Indices into result.history of the current population. Failed
  // evaluations stay in the history (model_id indexes into it) but never
  // enter the breeding population: a record with no real fitness would
  // otherwise win tournaments as a phantom 0%-accuracy / 0-FLOPs point.
  std::vector<std::size_t> pop_indices;
  pop_indices.reserve(config_.population_size);
  for (std::size_t i = 0; i < config_.population_size; ++i) {
    if (!result.history[i].failed) pop_indices.push_back(i);
  }
  if (pop_indices.empty())
    throw std::runtime_error(
        "NsgaNetSearch: every evaluation in the initial population failed");

  for (std::size_t gen = 1; gen < config_.generations; ++gen) {
    // Rank the current population for tournament selection.
    std::vector<Objectives> pop_obj;
    pop_obj.reserve(pop_indices.size());
    for (std::size_t idx : pop_indices)
      pop_obj.push_back(record_objectives(result.history[idx], config_.objective));
    const auto ranked = rank_population(pop_obj);

    auto pick_parent = [&] {
      const std::size_t a = rng.uniform_index(pop_indices.size());
      const std::size_t b = rng.uniform_index(pop_indices.size());
      return pop_indices[tournament_winner(ranked, a, b)];
    };

    std::vector<Genome> offspring;
    std::vector<Parentage> parentage;
    offspring.reserve(config_.offspring_per_generation);
    parentage.reserve(config_.offspring_per_generation);
    while (offspring.size() < config_.offspring_per_generation) {
      const std::size_t idx_a = pick_parent();
      const std::size_t idx_b = pick_parent();
      const Genome& parent_a = result.history[idx_a].genome;
      const Genome& parent_b = result.history[idx_b].genome;
      Genome child =
          mutate(crossover(parent_a, parent_b, config_.operators, rng),
                 config_.operators, rng);
      Parentage who{static_cast<int>(idx_a), static_cast<int>(idx_b)};
      if (!config_.allow_duplicates) {
        // Deduplicate: retry mutation, then fall back to a random genome so
        // every evaluation trains a distinct architecture.
        bool unique = seen.insert(child.key()).second;
        for (int attempt = 0; !unique && attempt < 64; ++attempt) {
          child = mutate(child, config_.operators, rng);
          unique = seen.insert(child.key()).second;
        }
        if (!unique) {
          child = fresh_random();
          who = Parentage{};  // random restart: no meaningful ancestry
        }
      } else {
        seen.insert(child.key());
      }
      offspring.push_back(std::move(child));
      parentage.push_back(who);
    }

    const std::size_t base = result.history.size();
    evaluate(offspring, parentage, static_cast<int>(gen));

    // Environmental selection over population + offspring (failed
    // offspring are skipped; pop_indices is already all-viable).
    std::vector<std::size_t> union_indices = pop_indices;
    for (std::size_t i = 0; i < offspring.size(); ++i) {
      if (!result.history[base + i].failed) union_indices.push_back(base + i);
    }
    std::vector<Objectives> union_obj;
    union_obj.reserve(union_indices.size());
    for (std::size_t idx : union_indices)
      union_obj.push_back(record_objectives(result.history[idx], config_.objective));
    const auto survivors = environmental_selection(
        union_obj, std::min(config_.population_size, union_indices.size()));
    std::vector<std::size_t> next;
    next.reserve(survivors.size());
    for (std::size_t s : survivors) next.push_back(union_indices[s]);
    pop_indices = std::move(next);
    util::log_info("generation ", gen, " complete: population updated");
  }

  result.final_population = pop_indices;
  // Pareto set over every network actually evaluated in the whole search;
  // failed records contribute no point.
  std::vector<std::size_t> viable;
  viable.reserve(result.history.size());
  std::vector<Objectives> all_obj;
  all_obj.reserve(result.history.size());
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    if (result.history[i].failed) continue;
    viable.push_back(i);
    all_obj.push_back(record_objectives(result.history[i], config_.objective));
  }
  const auto front = pareto_front(all_obj);
  result.pareto.clear();
  result.pareto.reserve(front.size());
  for (std::size_t f : front) result.pareto.push_back(viable[f]);
  return result;
}

}  // namespace a4nn::nas
