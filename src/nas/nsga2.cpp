#include "nas/nsga2.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace a4nn::nas {

bool dominates(const Objectives& a, const Objectives& b) {
  bool strictly_better = false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k] > b[k]) return false;
    if (a[k] < b[k]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::vector<std::size_t>> fast_non_dominated_sort(
    std::span<const Objectives> points) {
  const std::size_t n = points.size();
  std::vector<std::vector<std::size_t>> dominated_by(n);
  std::vector<std::size_t> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> fronts;

  std::vector<std::size_t> current;
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      if (dominates(points[p], points[q])) {
        dominated_by[p].push_back(q);
      } else if (dominates(points[q], points[p])) {
        ++domination_count[p];
      }
    }
    if (domination_count[p] == 0) current.push_back(p);
  }

  while (!current.empty()) {
    fronts.push_back(current);
    std::vector<std::size_t> next;
    for (std::size_t p : current) {
      for (std::size_t q : dominated_by[p]) {
        if (--domination_count[q] == 0) next.push_back(q);
      }
    }
    current = std::move(next);
  }
  return fronts;
}

std::vector<double> crowding_distance(std::span<const Objectives> points,
                                      std::span<const std::size_t> front) {
  const std::size_t n = front.size();
  std::vector<double> distance(n, 0.0);
  if (n <= 2) {
    std::fill(distance.begin(), distance.end(),
              std::numeric_limits<double>::infinity());
    return distance;
  }
  const std::size_t num_objectives = points.empty() ? 0 : points[front[0]].size();
  for (std::size_t obj = 0; obj < num_objectives; ++obj) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return points[front[a]][obj] < points[front[b]][obj];
    });
    const double lo = points[front[order.front()]][obj];
    const double hi = points[front[order.back()]][obj];
    // A degenerate objective (no spread across the front) discriminates
    // nothing: skip it entirely — pinning its arbitrary sort boundaries to
    // infinity would make a constant extra objective change the crowding a
    // 2-objective run computes, breaking the k->2 reduction property.
    if (hi <= lo) continue;
    distance[order.front()] = std::numeric_limits<double>::infinity();
    distance[order.back()] = std::numeric_limits<double>::infinity();
    for (std::size_t i = 1; i + 1 < n; ++i) {
      distance[order[i]] += (points[front[order[i + 1]]][obj] -
                             points[front[order[i - 1]]][obj]) /
                            (hi - lo);
    }
  }
  return distance;
}

std::vector<std::size_t> environmental_selection(
    std::span<const Objectives> points, std::size_t count) {
  if (count > points.size())
    throw std::invalid_argument(
        "environmental_selection: count exceeds population");
  const auto fronts = fast_non_dominated_sort(points);
  std::vector<std::size_t> selected;
  selected.reserve(count);
  for (const auto& front : fronts) {
    if (selected.size() + front.size() <= count) {
      selected.insert(selected.end(), front.begin(), front.end());
      if (selected.size() == count) break;
      continue;
    }
    // Partial front: keep the most crowded-out (largest distance) members.
    const auto dist = crowding_distance(points, front);
    std::vector<std::size_t> order(front.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return dist[a] > dist[b]; });
    for (std::size_t i = 0; selected.size() < count; ++i)
      selected.push_back(front[order[i]]);
    break;
  }
  return selected;
}

std::vector<RankedPoint> rank_population(std::span<const Objectives> points) {
  std::vector<RankedPoint> ranked(points.size());
  const auto fronts = fast_non_dominated_sort(points);
  for (std::size_t r = 0; r < fronts.size(); ++r) {
    const auto dist = crowding_distance(points, fronts[r]);
    for (std::size_t i = 0; i < fronts[r].size(); ++i) {
      ranked[fronts[r][i]].rank = r;
      ranked[fronts[r][i]].crowding = dist[i];
    }
  }
  return ranked;
}

std::size_t tournament_winner(std::span<const RankedPoint> ranked,
                              std::size_t a, std::size_t b) {
  if (ranked[a].rank != ranked[b].rank)
    return ranked[a].rank < ranked[b].rank ? a : b;
  return ranked[a].crowding >= ranked[b].crowding ? a : b;
}

std::vector<std::size_t> pareto_front(std::span<const Objectives> points) {
  if (points.empty()) return {};
  return fast_non_dominated_sort(points).front();
}

}  // namespace a4nn::nas
