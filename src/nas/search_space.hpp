// Decode a genome into a trainable model.
//
// Architecture template (NSGA-Net macro space):
//   stem Conv3x3 -> BN -> ReLU
//   phase 1 (PhaseBlock) -> MaxPool2 -> Conv1x1 channel expansion
//   phase 2 (PhaseBlock) -> MaxPool2 -> Conv1x1 channel expansion
//   ...
//   phase P (PhaseBlock)
//   GlobalAvgPool -> Linear(classes)
#pragma once

#include "nas/genome.hpp"
#include "nn/model.hpp"

namespace a4nn::nas {

struct SearchSpaceConfig {
  std::size_t phase_count = 3;
  std::size_t nodes_per_phase = 4;    // Table 2: number of nodes per phase
  std::size_t stem_channels = 4;
  double channel_multiplier = 2.0;    // channel growth at each downsample
  std::size_t classes = 2;
  tensor::Shape input_shape{1, 16, 16};
  /// Extended space: each node also chooses its operation (conv3x3,
  /// sepconv3x3, conv1x1, sepconv5x5) via 2 extra genome bits per node.
  /// Off by default — the paper's macro space uses conv3x3 everywhere.
  bool searchable_ops = false;

  util::Json to_json() const;
};

/// Build a freshly initialized model for `genome`. Weight init is drawn
/// from `rng` (each candidate NN gets its own stream).
nn::Model decode_genome(const Genome& genome, const SearchSpaceConfig& config,
                        util::Rng& rng);

/// FLOPs of the decoded architecture without building trainable state
/// twice — convenience wrapper used by the NAS objectives.
std::uint64_t genome_flops(const Genome& genome,
                           const SearchSpaceConfig& config);

}  // namespace a4nn::nas
