#include "nas/table.hpp"

#include <stdexcept>

namespace a4nn::nas {

std::vector<Genome> enumerate_space(const SearchSpaceConfig& config,
                                    std::size_t max_genomes) {
  const std::size_t per_phase =
      nn::PhaseSpec::bits_for_nodes(config.nodes_per_phase) + 1 +
      (config.searchable_ops ? 2 * config.nodes_per_phase : 0);
  const std::size_t total_bits = per_phase * config.phase_count;
  if (total_bits >= 63)
    throw std::invalid_argument("enumerate_space: space too large to count");
  const std::uint64_t count = 1ULL << total_bits;
  if (count > max_genomes)
    throw std::invalid_argument(
        "enumerate_space: " + std::to_string(count) +
        " genomes exceed the tabulation cap of " + std::to_string(max_genomes));

  std::vector<Genome> genomes;
  genomes.reserve(count);
  std::vector<bool> bits(total_bits);
  for (std::uint64_t v = 0; v < count; ++v) {
    for (std::size_t b = 0; b < total_bits; ++b) bits[b] = (v >> b) & 1;
    genomes.push_back(Genome::from_bits(bits, config.phase_count,
                                        config.nodes_per_phase,
                                        config.searchable_ops));
  }
  return genomes;
}

GenomeTable GenomeTable::from_records(std::vector<EvaluationRecord> records) {
  GenomeTable table;
  for (auto& r : records) {
    if (r.failed) continue;
    const std::uint64_t d = r.genome.digest();
    std::string key = r.genome.key();
    auto it = table.entries_.find(d);
    if (it != table.entries_.end() && it->second.key == key) continue;
    table.entries_.emplace(d, Entry{std::move(key), std::move(r)});
  }
  return table;
}

const EvaluationRecord* GenomeTable::find(const Genome& genome) const {
  auto it = entries_.find(genome.digest());
  if (it == entries_.end() || it->second.key != genome.key()) return nullptr;
  return &it->second.record;
}

util::Json GenomeTable::header_json(const SearchSpaceConfig& space,
                                    std::size_t genomes,
                                    std::size_t max_epochs) {
  util::Json j = util::Json::object();
  j["format"] = std::string("a4nn-table-v1");
  j["space"] = space.to_json();
  j["genomes"] = genomes;
  j["max_epochs"] = max_epochs;
  return j;
}

TableEvaluator::TableEvaluator(const GenomeTable& table) : table_(&table) {}

TableEvaluator::TableEvaluator(const GenomeTable& table,
                               penguin::EngineConfig engine)
    : table_(&table),
      engine_(std::make_unique<penguin::PredictionEngine>(std::move(engine))) {
}

void TableEvaluator::set_metrics(util::metrics::Registry* registry) {
  if (engine_) engine_->set_metrics(registry);
}

std::vector<EvaluationRecord> TableEvaluator::evaluate_generation(
    std::span<const Genome> genomes, int generation) {
  std::vector<EvaluationRecord> records;
  records.reserve(genomes.size());
  for (const Genome& genome : genomes) {
    ++lookups_;
    const EvaluationRecord* stored = table_->find(genome);
    if (!stored) {
      ++misses_;
      EvaluationRecord miss;
      miss.genome = genome;
      miss.generation = generation;
      miss.failed = true;
      miss.error = "genome not tabulated";
      records.push_back(std::move(miss));
      continue;
    }
    EvaluationRecord record = *stored;
    record.generation = generation;
    record.replayed = true;
    if (engine_ && !record.fitness_history.empty()) {
      // Offline Algorithm 1 replay over the stored full curve. The fit is
      // cached per genome digest: a repeated genome reuses the journaled
      // outcome (same iterations/convergence) instead of re-running the
      // LM fits — honest engine-overhead accounting for cached sweeps.
      const std::uint64_t d = genome.digest();
      auto it = fit_cache_.find(d);
      if (it == fit_cache_.end()) {
        it = fit_cache_
                 .emplace(d, penguin::simulate_early_termination(
                                 record.fitness_history, *engine_))
                 .first;
      } else {
        ++fit_cache_hits_;
      }
      const penguin::SimulatedTermination& sim = it->second;
      record.epochs_trained = sim.epochs_trained;
      record.early_terminated = sim.early_terminated;
      record.fitness = sim.reported_fitness;
      record.prediction_history = sim.prediction_history;
      record.fitness_history.resize(sim.epochs_trained);
      if (record.train_accuracy_history.size() > sim.epochs_trained)
        record.train_accuracy_history.resize(sim.epochs_trained);
      if (record.train_loss_history.size() > sim.epochs_trained)
        record.train_loss_history.resize(sim.epochs_trained);
      if (record.epoch_virtual_seconds.size() > sim.epochs_trained)
        record.epoch_virtual_seconds.resize(sim.epochs_trained);
      record.measured_fitness = record.fitness_history.empty()
                                    ? 0.0
                                    : record.fitness_history.back();
      double virtual_total = 0.0;
      for (double s : record.epoch_virtual_seconds) virtual_total += s;
      record.virtual_seconds = virtual_total;
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace a4nn::nas
