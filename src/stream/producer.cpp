#include "stream/producer.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>

#include "util/log.hpp"
#include "xfel/diffraction.hpp"

namespace a4nn::stream {

namespace {

/// SplitMix64 avalanche — same construction the fault injector uses, so
/// pool seeds are pure functions of (dataset seed, phase, class).
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t pool_seed(std::uint64_t base, std::size_t phase,
                        std::size_t cls) {
  return mix64(mix64(base ^ 0x5EEDF00DULL) ^
               mix64((static_cast<std::uint64_t>(phase) << 32) | cls));
}

}  // namespace

// ---------------------------------------------------------------------------
// FrameQueue

FrameQueue::FrameQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool FrameQueue::push(Frame frame, const std::function<bool()>& cancelled) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (cancelled && cancelled()) return false;
    if (closed_) return false;
    if (queue_.size() < capacity_) break;
    cv_.wait_for(lock, std::chrono::milliseconds(10));
  }
  queue_.push_back(std::move(frame));
  cv_.notify_all();
  return true;
}

std::optional<Frame> FrameQueue::pop(const std::function<bool()>& cancelled) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (!queue_.empty()) {
      Frame frame = std::move(queue_.front());
      queue_.pop_front();
      cv_.notify_all();
      return frame;
    }
    if (closed_) return std::nullopt;
    if (cancelled && cancelled()) return std::nullopt;
    cv_.wait_for(lock, std::chrono::milliseconds(10));
  }
}

void FrameQueue::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  cv_.notify_all();
}

bool FrameQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t FrameQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

// ---------------------------------------------------------------------------
// StreamProducer

StreamProducer::StreamProducer(ProducerConfig config, FrameQueue& out,
                               const util::FaultInjector* faults)
    : config_(std::move(config)), out_(out), faults_(faults) {
  if (config_.dataset.conformations < 2)
    throw std::invalid_argument("StreamProducer: need >= 2 conformations");
  if (config_.pool_per_class == 0)
    throw std::invalid_argument("StreamProducer: pool_per_class must be > 0");
  conformations_ = xfel::make_conformations(config_.dataset.protein,
                                            config_.dataset.conformations);
  // Normalise the phase schedule: always one phase covering frame 0.
  if (config_.phases.empty() || config_.phases.front().start_frame != 0) {
    PhaseSpec base;
    base.start_frame = 0;
    base.label_rotation = 0;
    base.intensity = config_.dataset.intensity;
    config_.phases.insert(config_.phases.begin(), base);
  }
  for (std::size_t i = 1; i < config_.phases.size(); ++i)
    if (config_.phases[i].start_frame <= config_.phases[i - 1].start_frame)
      throw std::invalid_argument(
          "StreamProducer: phases must be sorted by start_frame");
}

const PhaseSpec& StreamProducer::phase_at(std::size_t index) const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < config_.phases.size(); ++i)
    if (config_.phases[i].start_frame <= index) best = i;
  return config_.phases[best];
}

const std::vector<float>& StreamProducer::pool_image(std::size_t phase_index,
                                                     std::size_t cls,
                                                     std::size_t sample) const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  auto& pool = pools_[phase_index];
  if (pool.empty()) {
    const std::size_t classes = config_.dataset.conformations;
    const xfel::DiffractionSimulator sim(config_.dataset.detector,
                                         config_.phases[phase_index].intensity);
    pool.resize(classes);
    for (std::size_t c = 0; c < classes; ++c) {
      util::Rng rng(pool_seed(config_.dataset.seed, phase_index, c));
      pool[c].reserve(config_.pool_per_class);
      for (std::size_t s = 0; s < config_.pool_per_class; ++s)
        pool[c].push_back(sim.simulate_shot(conformations_[c], rng).image);
    }
  }
  return pool[cls][sample];
}

Frame StreamProducer::make_frame(std::size_t index) const {
  const std::size_t classes = config_.dataset.conformations;
  std::size_t phase_index = 0;
  for (std::size_t i = 0; i < config_.phases.size(); ++i)
    if (config_.phases[i].start_frame <= index) phase_index = i;
  const PhaseSpec& phase = config_.phases[phase_index];
  const std::size_t cls = index % classes;
  const std::size_t sample = (index / classes) % config_.pool_per_class;
  Frame frame;
  frame.index = index;
  frame.image = pool_image(phase_index, cls, sample);
  frame.truth =
      static_cast<std::int64_t>((cls + phase.label_rotation) % classes);
  return frame;
}

void StreamProducer::run(Supervisor::Context& ctx) {
  const double base_interval_ms =
      config_.rate_hz > 0.0 ? 1000.0 / config_.rate_hz : 0.0;
  std::size_t burst_until = 0;
  std::size_t spike_until = 0;
  const std::size_t attempt = ctx.attempt();
  // Backpressure blocking still heartbeats: a producer waiting on a full
  // queue is healthy, not stalled.
  const auto blocked = [&ctx] {
    ctx.heartbeat();
    return ctx.stopping();
  };
  for (std::size_t i = cursor_.load(); i < config_.total_frames; ++i) {
    if (ctx.stopping()) return;
    ctx.heartbeat();
    if (faults_) {
      if (faults_->stream_crash(i, attempt))
        throw std::runtime_error("injected producer crash at frame " +
                                 std::to_string(i));
      if (faults_->stream_stall(i, attempt)) {
        // Deliberate uninterruptible, non-heartbeating sleep: watchdog food.
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            faults_->config().stream_stall_ms));
        if (ctx.stopping()) return;  // the watchdog reclaimed us meanwhile
      }
      if (faults_->stream_burst(i, attempt))
        burst_until = i + faults_->config().stream_burst_frames;
      if (faults_->stream_rate_spike(i, attempt))
        spike_until = i + faults_->config().stream_rate_spike_frames;
    }
    if (base_interval_ms > 0.0 && i >= burst_until) {
      double interval = base_interval_ms;
      if (i < spike_until)
        interval /= std::max(1.0, faults_->config().stream_rate_spike_factor);
      if (!ctx.sleep_ms(interval)) return;
    }
    Frame frame = make_frame(i);
    if (faults_ && faults_->stream_corrupt_frame(i)) {
      // Keyed by frame only: corruption is a property of the frame content,
      // so drift-window exclusions replay identically across restarts.
      frame.poisoned = true;
      for (std::size_t k = 0; k < frame.image.size(); k += 7)
        frame.image[k] = std::numeric_limits<float>::quiet_NaN();
    }
    if (!out_.push(std::move(frame), blocked)) return;
    cursor_.store(i + 1);
  }
  out_.close();
}

}  // namespace a4nn::stream
