#include "stream/scenario.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "lineage/tracker.hpp"
#include "nn/dataset.hpp"
#include "nn/optimizer.hpp"
#include "util/log.hpp"
#include "util/trace.hpp"

namespace a4nn::stream {

namespace {

void note(util::metrics::Counter* counter, const char* event, int tid) {
  // Counter and event increment at the same point — check_trace.py holds
  // every stream.* counter equal to its pid-4 instant-event twin.
  if (counter) counter->add();
  util::trace::emit_instant(event, "stream", util::trace::now_us(),
                            util::trace::kStreamPid, tid);
}

std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

struct RecoveryTask {
  std::uint64_t action_id = 0;
  std::size_t window_index = 0;
  std::vector<Frame> buffer;  ///< ring snapshot at the firing boundary
};

}  // namespace

util::Json StreamResult::to_json() const {
  util::Json j = util::Json::object();
  j["frames_produced"] = frames_produced;
  j["frames_served"] = frames_served;
  j["frames_corrupt_dropped"] = frames_corrupt_dropped;
  j["frames_unserved"] = frames_unserved;
  j["windows"] = windows;
  j["triggers_fired"] = triggers_fired;
  j["triggers_acked"] = triggers_acked;
  j["triggers_completed"] = triggers_completed;
  j["triggers_shed"] = triggers_shed;
  j["child_restarts"] = child_restarts;
  j["child_crashes"] = child_crashes;
  j["watchdog_stalls"] = watchdog_stalls;
  j["degraded_entries"] = degraded_entries;
  j["degraded"] = degraded;
  j["interrupted"] = interrupted;
  j["aborted"] = aborted;
  j["graceful_stop"] = graceful_stop;
  j["final_champion_model"] = final_champion_model;
  j["final_champion_epoch"] = final_champion_epoch;
  j["final_generation"] = final_generation;
  j["accuracy_overall"] = accuracy_overall;
  j["p99_outside_faults_ms"] = p99_outside_faults_ms;
  util::Json champs = util::Json::array();
  for (const auto& [model, epoch] : champions) {
    util::Json c = util::Json::object();
    c["model"] = model;
    c["epoch"] = epoch;
    champs.push_back(std::move(c));
  }
  j["champions"] = std::move(champs);
  util::Json wins = util::Json::array();
  for (std::size_t i = 0; i < window_history.size(); ++i) {
    const WindowStats& w = window_history[i];
    util::Json wj = util::Json::object();
    wj["index"] = w.index;
    wj["frames"] = w.frames;
    wj["accuracy"] = w.accuracy;
    wj["p99_latency_ms"] = w.p99_latency_ms;
    wj["fired"] = w.fired;
    wj["fault_tainted"] =
        i < window_fault_tainted.size() ? window_fault_tainted[i] : false;
    wins.push_back(std::move(wj));
  }
  j["window_history"] = std::move(wins);
  return j;
}

StreamScenario::StreamScenario(StreamConfig config)
    : config_(std::move(config)) {}

StreamResult StreamScenario::run() {
  namespace fs = std::filesystem;
  StreamResult result;

  if (config_.resume) {
    lineage::DataCommons commons(config_.commons_root);
    const auto report = commons.fsck(lineage::FsckMode::kQuick);
    if (!report.issues.empty())
      util::log_warn("stream: resume fsck quarantined ",
                     report.files_quarantined, " artifact(s)");
  }

  serve::RegistryConfig rc;
  rc.commons_root = config_.commons_root;
  rc.policy = config_.policy;
  rc.max_flops = config_.max_flops;
  rc.metrics = config_.metrics;
  serve::ModelRegistry registry(rc);
  registry.refresh();  // throws when the commons holds no servable champion
  const auto genesis_gen = registry.active();

  const std::size_t pixels = config_.producer.dataset.detector.pixels;
  if (genesis_gen->input_numel != pixels * pixels)
    throw std::invalid_argument(
        "StreamScenario: champion input (" +
        std::to_string(genesis_gen->input_numel) +
        " floats) does not match the detector (" + std::to_string(pixels) +
        "^2 pixels)");
  if (genesis_gen->num_classes < config_.producer.dataset.conformations)
    throw std::invalid_argument(
        "StreamScenario: champion has fewer classes than the stream has "
        "conformations");

  const fs::path journal_path = config_.journal_path.empty()
                                    ? config_.commons_root / "stream.journal"
                                    : config_.journal_path;
  TriggerJournal journal(journal_path, config_.durable);
  if (config_.journal_append_limit > 0)
    journal.set_append_limit(config_.journal_append_limit);
  try {
    journal.write_genesis(genesis_gen->info.model_id, genesis_gen->info.epoch);
  } catch (const StreamInterrupted&) {
    result.interrupted = true;
    result.journal_text = journal.text();
    return result;
  }

  // Resume bookkeeping: a resumed run replays the deterministic stream
  // from frame 0, so (a) windows a past action already covered must not
  // refire (the replayed stream is served by the *recovered* champion, so
  // accuracies differ, but the journal must not grow), and (b) a
  // fired-but-incomplete action re-executes when the replay reaches its
  // recorded window, with the identical ring buffer.
  DriftMonitor monitor(config_.drift);
  std::map<std::size_t, std::uint64_t> pending_at;  // window -> action id
  {
    std::size_t disarm = 0;
    for (const auto& [id, rec] : journal.actions()) {
      disarm = std::max(disarm,
                        rec.window_index + config_.drift.cooldown_windows + 1);
      if (rec.state != ActionState::kCompleted)
        pending_at[rec.window_index] = id;
    }
    monitor.disarm_until(disarm);
  }

  util::FaultConfig fault_config = config_.fault;
  if (fault_config.seed == 0) fault_config.seed = config_.seed ^ 0xA4A4ULL;
  const util::FaultInjector faults(fault_config);

  util::metrics::Counter* c_windows = nullptr;
  util::metrics::Counter* c_fired = nullptr;
  util::metrics::Counter* c_acked = nullptr;
  util::metrics::Counter* c_completed = nullptr;
  util::metrics::Counter* c_shed = nullptr;
  util::metrics::Counter* c_corrupt = nullptr;
  if (config_.metrics) {
    c_windows = &config_.metrics->counter("stream.windows");
    c_fired = &config_.metrics->counter("stream.triggers_fired");
    c_acked = &config_.metrics->counter("stream.triggers_acked");
    c_completed = &config_.metrics->counter("stream.triggers_completed");
    c_shed = &config_.metrics->counter("stream.triggers_shed");
    c_corrupt = &config_.metrics->counter("stream.corrupt_frames");
  }
  util::trace::name_process(util::trace::kStreamPid, "stream supervisor");

  serve::EngineConfig engine_config = config_.engine;
  if (config_.metrics) engine_config.metrics = config_.metrics;
  serve::InferenceEngine engine(registry, engine_config);
  if (config_.hint_service_time_ms > 0.0)
    engine.hint_service_time_ms(config_.hint_service_time_ms);

  FrameQueue queue(config_.queue_capacity);
  StreamProducer producer(config_.producer, queue, &faults);

  lineage::TrackerConfig tracker_config;
  tracker_config.root = config_.commons_root;
  tracker_config.snapshot_every = 1;
  tracker_config.durable = config_.durable;
  lineage::LineageTracker tracker(tracker_config);
  if (config_.metrics) tracker.set_metrics(config_.metrics);

  // Shared state between the three children.
  std::mutex rmutex;
  std::condition_variable rcv;      // recovery worker wake-ups
  std::condition_variable done_cv;  // pump waiting on a deterministic swap
  std::deque<RecoveryTask> tasks;
  std::set<std::uint64_t> done_actions;
  std::atomic<bool> recovery_dead{false};
  std::atomic<bool> action_inflight{false};
  std::atomic<std::size_t> served{0};
  std::atomic<std::size_t> served_correct{0};
  std::atomic<std::size_t> corrupt_dropped{0};
  std::atomic<std::size_t> unserved{0};
  std::atomic<std::size_t> shed_count{0};

  SupervisorConfig sup_config;
  sup_config.metrics = config_.metrics;
  Supervisor sup(sup_config);
  sup.on_exhausted([&](const std::string& name) {
    if (name == "recovery") {
      // Serve-only degradation: the stale champion keeps serving; fired
      // windows are shed from here on.
      recovery_dead.store(true);
      action_inflight.store(false);
      std::lock_guard<std::mutex> lock(rmutex);
      done_cv.notify_all();
      rcv.notify_all();
    } else if (name == "producer") {
      // No more frames are coming; let the pump drain and finish.
      queue.close();
    }
    // "server" exhausted: the main loop observes it and aborts the run.
  });

  // ---- recovery action execution (recovery child thread) ----------------
  auto execute_action = [&](const RecoveryTask& task,
                            Supervisor::Context& ctx) {
    if (journal.ack(task.action_id)) note(c_acked, "trigger.acked", 3);
    ctx.heartbeat();
    lineage::DataCommons commons(config_.commons_root);

    // Deterministic fine-tune source chain: action 0 starts from the
    // journaled genesis champion, action n from action n-1's model —
    // pinned identities, never "whatever the registry serves right now",
    // so a resumed re-execution fine-tunes the same weights.
    int src_model;
    std::size_t src_epoch;
    if (task.action_id == 0) {
      src_model = journal.genesis_model_id();
      src_epoch = journal.genesis_epoch();
    } else {
      src_model =
          config_.recovery.model_id_base + static_cast<int>(task.action_id) - 1;
      src_epoch = config_.recovery.finetune_epochs;
    }
    nn::Model model = commons.load_model(src_model, src_epoch);
    const auto& shape = model.input_shape();

    nn::Dataset holdout(shape[0], shape[1], shape[2]);
    nn::Dataset train(shape[0], shape[1], shape[2]);
    const std::size_t hold_n = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(
               static_cast<double>(task.buffer.size()) *
               config_.recovery.holdout_fraction)));
    for (std::size_t i = 0; i < task.buffer.size(); ++i) {
      const Frame& f = task.buffer[i];
      (i < hold_n ? holdout : train).add_sample(f.image, f.truth);
    }
    if (train.size() == 0 || holdout.size() == 0)
      throw std::runtime_error("stream: recovery buffer too small to split");
    ctx.heartbeat();

    // Honest re-scoring: drift invalidated every record's validation
    // fitness, so every loadable model is re-evaluated on the drifted
    // holdout before the registry re-picks. This is what lets the
    // fine-tuned model win the Pareto pick on merit, deterministically.
    auto records = commons.load_records();
    std::map<int, double> rescored;
    for (const auto& rec : records) {
      if (rec.failed) continue;
      const auto epochs = commons.snapshot_epochs(rec.model_id);
      if (epochs.empty()) continue;
      try {
        nn::Model m = commons.load_model(rec.model_id, epochs.back());
        rescored[rec.model_id] = m.evaluate(holdout).accuracy;
      } catch (const std::exception&) {
        continue;  // corrupt snapshot: the registry will quarantine it
      }
      ctx.heartbeat();
    }

    util::Rng rng(mix64(config_.seed ^ (0xF17E0000ULL + task.action_id)));
    nn::Sgd opt(config_.recovery.learning_rate, config_.recovery.momentum);
    std::vector<double> train_acc;
    std::vector<double> train_loss;
    for (std::size_t e = 0; e < config_.recovery.finetune_epochs; ++e) {
      const auto m =
          model.train_epoch(train, config_.recovery.batch_size, opt, rng);
      train_acc.push_back(m.accuracy);
      train_loss.push_back(m.loss);
      ctx.heartbeat();
    }
    const double f_new = model.evaluate(holdout).accuracy;

    const int new_id =
        config_.recovery.model_id_base + static_cast<int>(task.action_id);
    tracker.record_model_epoch(new_id, config_.recovery.finetune_epochs,
                               model);

    const nas::EvaluationRecord* src_rec = nullptr;
    for (const auto& r : records)
      if (r.model_id == src_model) src_rec = &r;
    if (!src_rec)
      throw std::runtime_error("stream: missing record for source model " +
                               std::to_string(src_model));

    nas::EvaluationRecord nr = *src_rec;
    nr.model_id = new_id;
    nr.fitness = f_new;
    nr.measured_fitness = f_new;
    nr.flops = model.flops_per_image();
    nr.parameters = model.parameter_count();
    nr.epochs_trained = config_.recovery.finetune_epochs;
    nr.max_epochs = config_.recovery.finetune_epochs;
    nr.early_terminated = false;
    nr.resumed_from_epoch = 0;
    nr.fitness_history = {f_new};
    nr.train_accuracy_history = std::move(train_acc);
    nr.train_loss_history = std::move(train_loss);
    nr.prediction_history.clear();
    nr.epoch_virtual_seconds.clear();
    // No wall-clock data: the record must be byte-identical on replay.
    nr.wall_seconds = 0.0;
    nr.virtual_seconds = 0.0;
    nr.engine_overhead_seconds = 0.0;
    nr.device_id = -1;
    nr.failed = false;
    nr.error.clear();
    tracker.record_evaluation(nr);

    for (const auto& r : records) {
      if (r.failed) continue;
      const auto it = rescored.find(r.model_id);
      if (it == rescored.end()) continue;
      nas::EvaluationRecord rr = r;
      rr.fitness = it->second;
      rr.measured_fitness = it->second;
      tracker.record_evaluation(rr);
    }
    ctx.heartbeat();

    if (config_.after_promote_hook)
      config_.after_promote_hook(new_id, config_.recovery.finetune_epochs);
    // Hot-swap. A corrupt promoted model is quarantined here and the
    // registry falls back — the completion line records whatever champion
    // the registry actually settled on.
    registry.refresh();
    const auto active = registry.active();
    if (journal.complete(task.action_id, active->info.model_id,
                         active->info.epoch))
      note(c_completed, "trigger.completed", 3);
  };

  auto recovery_body = [&](Supervisor::Context& ctx) {
    for (;;) {
      RecoveryTask task;
      {
        std::unique_lock<std::mutex> lock(rmutex);
        while (tasks.empty()) {
          if (ctx.stopping()) return;
          ctx.heartbeat();
          rcv.wait_for(lock, std::chrono::milliseconds(10));
        }
        task = tasks.front();  // copy; popped only after success, so a
                               // crashed attempt retries the same task
      }
      if (ctx.stopping()) return;
      ctx.heartbeat();
      if (faults.stream_recovery_crash(task.action_id, ctx.attempt()))
        throw std::runtime_error("injected recovery crash for action " +
                                 std::to_string(task.action_id));
      execute_action(task, ctx);
      {
        std::lock_guard<std::mutex> lock(rmutex);
        if (!tasks.empty() && tasks.front().action_id == task.action_id)
          tasks.pop_front();
        done_actions.insert(task.action_id);
        action_inflight.store(false);
        done_cv.notify_all();
      }
    }
  };

  // ---- serving pump (server child thread) -------------------------------
  auto server_body = [&](Supervisor::Context& ctx) {
    std::deque<std::pair<Frame, std::future<serve::Prediction>>> inflight;
    std::deque<Frame> ring;
    const std::size_t depth_bound =
        std::max<std::size_t>(1, 2 * engine_config.max_batch);
    const auto cancelled = [&] {
      ctx.heartbeat();
      return ctx.stopping();
    };

    auto dispatch_recovery = [&](std::uint64_t id, std::size_t window_index) {
      RecoveryTask task;
      task.action_id = id;
      task.window_index = window_index;
      task.buffer.assign(ring.begin(), ring.end());
      {
        std::lock_guard<std::mutex> lock(rmutex);
        if (done_actions.count(id)) return;
        tasks.push_back(std::move(task));
        action_inflight.store(true);
        rcv.notify_all();
      }
      if (config_.deterministic_swap) {
        // Hold the stream at the boundary until the swap lands, so the
        // champion change hits a deterministic point in the frame order.
        std::unique_lock<std::mutex> lock(rmutex);
        while (!done_actions.count(id) && !recovery_dead.load() &&
               !ctx.stopping()) {
          ctx.heartbeat();
          done_cv.wait_for(lock, std::chrono::milliseconds(10));
        }
      }
    };

    auto handle_window = [&](const WindowStats& w) {
      note(c_windows, "drift.window", 2);
      if (const auto it = pending_at.find(w.index); it != pending_at.end()) {
        dispatch_recovery(it->second, w.index);
        pending_at.erase(it);
      } else if (w.fired) {
        if (recovery_dead.load()) {
          shed_count.fetch_add(1);
          note(c_shed, "trigger.shed", 2);
        } else {
          const std::uint64_t id = journal.next_action_id();
          if (journal.fire(id, w.index)) note(c_fired, "trigger.fired", 2);
          dispatch_recovery(id, w.index);
        }
      }
    };

    auto resolve_one = [&] {
      Frame frame = std::move(inflight.front().first);
      std::future<serve::Prediction> fut =
          std::move(inflight.front().second);
      inflight.pop_front();
      const serve::Prediction p = fut.get();
      served.fetch_add(1);
      if (static_cast<std::int64_t>(p.label) == frame.truth)
        served_correct.fetch_add(1);
      const std::int64_t truth = frame.truth;
      ring.push_back(std::move(frame));
      while (ring.size() > config_.recovery.buffer_frames) ring.pop_front();
      monitor.set_pending(action_inflight.load());
      if (const auto w = monitor.observe(static_cast<std::int64_t>(p.label),
                                         truth, p.latency_ms))
        handle_window(*w);
    };

    for (;;) {
      if (ctx.stopping()) return;
      auto frame = queue.pop(cancelled);
      if (!frame) {
        if (ctx.stopping()) return;
        break;  // queue closed and drained
      }
      ctx.heartbeat();
      bool bad = frame->image.size() != registry.active()->input_numel;
      if (!bad)
        for (const float v : frame->image)
          if (!std::isfinite(v)) {
            bad = true;
            break;
          }
      if (bad) {
        corrupt_dropped.fetch_add(1);
        note(c_corrupt, "frame.corrupt_drop", 2);
        continue;
      }
      auto sub = engine.submit(frame->image);
      if (sub.admission != serve::Admission::kAccepted) {
        unserved.fetch_add(1);
        continue;
      }
      inflight.emplace_back(std::move(*frame), std::move(sub.prediction));
      while (inflight.size() >= depth_bound) resolve_one();
    }
    while (!inflight.empty() && !ctx.stopping()) resolve_one();
  };

  sup.spawn("producer", config_.producer_policy,
            [&](Supervisor::Context& ctx) { producer.run(ctx); }, 1);
  sup.spawn("server", config_.server_policy, server_body, 2);
  sup.spawn("recovery", config_.recovery_policy, recovery_body, 3);

  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (sup.interrupted()) break;
    if (sup.child_done("server")) break;
    if (sup.child_exhausted("server")) {
      result.aborted = true;
      break;
    }
    if (config_.stop_requested && config_.stop_requested()) {
      result.graceful_stop = true;
      break;
    }
    if (config_.max_wall_seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (elapsed > config_.max_wall_seconds) {
        util::log_warn("stream: wall deadline expired, aborting");
        result.aborted = true;
        break;
      }
    }
  }
  sup.stop_all();
  engine.drain();

  result.interrupted = result.interrupted || sup.interrupted();
  result.degraded = sup.degraded();
  result.child_restarts = sup.restarts();
  result.child_crashes = sup.crashes();
  result.watchdog_stalls = sup.stalls();
  result.degraded_entries = sup.degraded_entries();

  result.frames_produced = producer.emitted();
  result.frames_served = served.load();
  result.frames_corrupt_dropped = corrupt_dropped.load();
  result.frames_unserved = unserved.load();
  result.accuracy_overall =
      served.load() == 0
          ? 0.0
          : 100.0 * static_cast<double>(served_correct.load()) /
                static_cast<double>(served.load());

  result.window_history = monitor.history();
  result.windows = monitor.windows_closed();

  // Fault-tainted windows from pure oracle replay (identical across runs):
  // a window is tainted when any producer frame mapped into it could have
  // drawn a stall/burst/spike/crash at any plausible restart attempt.
  {
    const std::size_t W = config_.drift.window_frames;
    const std::size_t produced = producer.emitted();
    result.window_fault_tainted.assign(result.windows, false);
    if (fault_config.enabled && result.windows > 0) {
      std::vector<bool> risky(produced, false);
      for (std::size_t i = 0; i < produced; ++i) {
        for (std::size_t a = 0; a <= config_.producer_policy.max_restarts;
             ++a) {
          if (faults.stream_stall(i, a) || faults.stream_crash(i, a))
            risky[i] = true;
          if (faults.stream_burst(i, a))
            for (std::size_t k = i;
                 k < std::min(produced, i + fault_config.stream_burst_frames);
                 ++k)
              risky[k] = true;
          if (faults.stream_rate_spike(i, a))
            for (std::size_t k = i;
                 k <
                 std::min(produced, i + fault_config.stream_rate_spike_frames);
                 ++k)
              risky[k] = true;
        }
      }
      std::size_t valid_seen = 0;
      for (std::size_t i = 0; i < produced; ++i) {
        const std::size_t w = valid_seen / W;
        if (w >= result.windows) break;
        if (risky[i]) result.window_fault_tainted[w] = true;
        if (!faults.stream_corrupt_frame(i)) ++valid_seen;
      }
    }
    double worst = 0.0;
    for (std::size_t w = 0; w < result.windows; ++w)
      if (!result.window_fault_tainted[w])
        worst = std::max(worst, result.window_history[w].p99_latency_ms);
    result.p99_outside_faults_ms = worst;
  }

  for (const auto& [id, rec] : journal.actions()) {
    if (rec.state == ActionState::kFired) ++result.triggers_fired;
    if (rec.state == ActionState::kAcked)
      result.triggers_fired += 1, result.triggers_acked += 1;
    if (rec.state == ActionState::kCompleted) {
      ++result.triggers_fired;
      ++result.triggers_acked;
      ++result.triggers_completed;
      result.champions.emplace_back(rec.champion_model_id,
                                    rec.champion_epoch);
    }
  }
  result.triggers_shed = shed_count.load();
  result.journal_text = journal.text();

  const auto final_gen = registry.active();
  result.final_champion_model = final_gen->info.model_id;
  result.final_champion_epoch = final_gen->info.epoch;
  result.final_generation = final_gen->info.generation;
  return result;
}

}  // namespace a4nn::stream
