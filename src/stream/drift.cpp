#include "stream/drift.hpp"

#include <stdexcept>

namespace a4nn::stream {

DriftMonitor::DriftMonitor(DriftConfig config)
    : config_(config),
      labels_(0.0, static_cast<double>(config.num_classes),
              config.num_classes == 0 ? 1 : config.num_classes),
      latency_(0.0, config.latency_hi_ms <= 0.0 ? 1.0 : config.latency_hi_ms,
               256) {
  if (config_.window_frames == 0)
    throw std::invalid_argument("DriftMonitor: window_frames must be > 0");
  if (config_.sustain_windows == 0)
    throw std::invalid_argument("DriftMonitor: sustain_windows must be > 0");
  if (config_.rearm_above < config_.fire_below)
    throw std::invalid_argument(
        "DriftMonitor: rearm_above must be >= fire_below");
}

std::optional<WindowStats> DriftMonitor::observe(std::int64_t predicted,
                                                 std::int64_t truth,
                                                 double latency_ms) {
  labels_.observe(static_cast<double>(truth) + 0.5);
  latency_.observe(latency_ms);
  if (predicted == truth) ++correct_;
  if (++frames_ < config_.window_frames) return std::nullopt;

  WindowStats w;
  w.index = window_index_;
  w.frames = frames_;
  w.correct = correct_;
  w.accuracy = 100.0 * static_cast<double>(correct_) /
               static_cast<double>(frames_);
  auto label_win = labels_.window_snapshot();
  w.label_counts = std::move(label_win.counts);
  w.p99_latency_ms = latency_.window_snapshot().p99;

  // Trigger state machine — advances exactly once per window boundary.
  if (cooldown_ > 0) {
    --cooldown_;
    bad_ = 0;
  } else if (pending_ || w.index < disarm_until_) {
    bad_ = 0;
  } else if (w.accuracy < config_.fire_below) {
    if (++bad_ >= config_.sustain_windows) {
      w.fired = true;
      ++fires_;
      bad_ = 0;
      cooldown_ = config_.cooldown_windows;
    }
  } else if (w.accuracy >= config_.rearm_above) {
    bad_ = 0;
  }
  // accuracy in [fire_below, rearm_above): hold the streak (hysteresis).

  frames_ = 0;
  correct_ = 0;
  ++window_index_;
  history_.push_back(w);
  return w;
}

void DriftMonitor::disarm_until(std::size_t window_index) {
  if (window_index > disarm_until_) disarm_until_ = window_index;
}

}  // namespace a4nn::stream
