// Supervision tree for the streaming loop: runs the producer, the serving
// pump, and the recovery worker as monitored children, in the spirit of
// the sched/cluster quarantine ladder.
//
// Each child gets a policy: a watchdog deadline (heartbeat silence →
// declared stalled, incarnation stopped and restarted), capped exponential
// restart backoff, and a restart budget. A child body that throws is a
// crash (restart); a body that returns is done (no restart); a body that
// throws StreamInterrupted is a simulated kill (stop the whole tree, no
// restart — resume happens in a fresh run via the trigger journal). When a
// child exhausts its restarts the supervisor escalates to degraded mode
// and notifies the scenario, which walks the degradation ladder: recovery
// dead → serve-only (shed re-search triggers); producer dead → drain and
// finish; server dead → abort the run.
//
// Child bodies cooperate through Supervisor::Context: heartbeat() feeds
// the watchdog, stopping() observes stop/restart requests, and sleep_ms()
// sleeps interruptibly so a stalled-but-sleeping child can be reclaimed
// without detaching threads.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.hpp"

namespace a4nn::stream {

struct ChildPolicy {
  std::size_t max_restarts = 3;
  double backoff_base_ms = 10.0;
  double backoff_multiplier = 2.0;
  double backoff_cap_ms = 200.0;
  /// Heartbeat-silence deadline; 0 disables the watchdog for this child.
  double watchdog_ms = 0.0;
};

struct SupervisorConfig {
  double poll_ms = 5.0;
  /// stream.* counters land here (nullable; must outlive the supervisor).
  util::metrics::Registry* metrics = nullptr;
};

class Supervisor {
 public:
  class Context {
   public:
    void heartbeat();
    bool stopping() const;
    /// Interruptible sleep; false when woken by a stop request.
    bool sleep_ms(double ms);
    /// Restart count of this incarnation (0 for the first run).
    std::size_t attempt() const { return attempt_; }

   private:
    friend class Supervisor;
    struct Incarnation;
    explicit Context(std::shared_ptr<Incarnation> inc, std::size_t attempt)
        : inc_(std::move(inc)), attempt_(attempt) {}
    std::shared_ptr<Incarnation> inc_;
    std::size_t attempt_ = 0;
  };
  using Body = std::function<void(Context&)>;

  explicit Supervisor(SupervisorConfig config);
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Called (from the monitor thread) when a child exhausts its restart
  /// budget, with the child's name. Set before spawn().
  void on_exhausted(std::function<void(const std::string&)> callback);

  /// Start a monitored child. `tid` is the child's trace lane on
  /// util::trace::kStreamPid.
  void spawn(std::string name, ChildPolicy policy, Body body, int tid);

  /// Signal every incarnation to stop and join all threads (children and
  /// monitor). Idempotent; the destructor calls it.
  void stop_all();

  bool degraded() const { return degraded_.load(); }
  /// A child threw StreamInterrupted (simulated kill): the tree is
  /// stopping and the scenario should surface an interrupted result.
  bool interrupted() const { return interrupted_.load(); }

  bool child_done(const std::string& name) const;
  bool child_exhausted(const std::string& name) const;
  std::string child_error(const std::string& name) const;

  std::size_t restarts() const { return restarts_.load(); }
  std::size_t crashes() const { return crashes_.load(); }
  std::size_t stalls() const { return stalls_.load(); }
  std::size_t degraded_entries() const { return degraded_entries_.load(); }

 private:
  enum class ChildState { kRunning, kDone, kCrashed, kStalled, kExhausted };
  struct Child;

  void start_incarnation(Child& child);
  void monitor_loop();
  void note(util::metrics::Counter* counter, const char* event, int tid);

  SupervisorConfig config_;
  std::function<void(const std::string&)> on_exhausted_;

  util::metrics::Counter* c_restarts_ = nullptr;
  util::metrics::Counter* c_crashes_ = nullptr;
  util::metrics::Counter* c_stalls_ = nullptr;
  util::metrics::Counter* c_degraded_ = nullptr;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Child>> children_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> degraded_{false};
  std::atomic<bool> interrupted_{false};
  std::atomic<std::size_t> restarts_{0};
  std::atomic<std::size_t> crashes_{0};
  std::atomic<std::size_t> stalls_{0};
  std::atomic<std::size_t> degraded_entries_{0};
  std::thread monitor_;
  bool monitor_started_ = false;
  bool stopped_ = false;
};

}  // namespace a4nn::stream
