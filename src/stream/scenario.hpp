// The self-healing in situ streaming scenario — the tentpole wiring of
// the beamline→champion loop:
//
//   producer (supervised child, trace lane 1)
//     rate-controlled diffraction frames, injectable faults
//       ↓ bounded FrameQueue (backpressure)
//   serving pump (supervised child, lane 2)
//     validate → micro-batched inference on the registry champion →
//     DriftMonitor windows → fire/shed recovery triggers
//       ↓ trigger journal (fired → acked → completed, CRC lines)
//   recovery worker (supervised child, lane 3)
//     fine-tune the champion on a buffer of recent frames, re-score the
//     commons honestly, publish, hot-swap via ModelRegistry::refresh()
//
// Crash consistency: every trigger transition is journaled before its
// effects land, recovery actions are re-executed from the journal after a
// kill, and every durable payload is a pure function of (seed, frame
// schedule) — so a run SIGKILLed anywhere and resumed produces the exact
// journal, champion lineage, and window statistics of an undisturbed run.
//
// Graceful degradation ladder (driven by Supervisor escalation):
//   recovery child exhausted → serve-only mode: triggers are shed, the
//     stale champion keeps serving;
//   producer exhausted → the queue closes, the pump drains and finishes;
//   serving pump exhausted → the run aborts (nothing left to degrade to).
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "serve/engine.hpp"
#include "stream/drift.hpp"
#include "stream/journal.hpp"
#include "stream/producer.hpp"
#include "stream/supervisor.hpp"
#include "util/fault.hpp"

namespace a4nn::stream {

/// How a fired trigger is executed.
struct RecoveryConfig {
  /// Ring of most-recent valid frames handed to the fine-tuner.
  std::size_t buffer_frames = 128;
  std::size_t finetune_epochs = 3;
  std::size_t batch_size = 16;
  double learning_rate = 0.05;
  double momentum = 0.9;
  /// Leading fraction of the buffer held out for honest re-scoring.
  double holdout_fraction = 0.25;
  /// Recovery action n records its fine-tuned model as model_id_base + n —
  /// a flat namespace above the NAS ids, so the fine-tune source chain
  /// (genesis → base+0 → base+1 → …) is deterministic across resumes.
  int model_id_base = 900000;
};

struct StreamConfig {
  std::filesystem::path commons_root;
  serve::ChampionPolicy policy = serve::ChampionPolicy::kBestFitness;
  std::uint64_t max_flops = 0;

  serve::EngineConfig engine;
  ProducerConfig producer;
  DriftConfig drift;
  RecoveryConfig recovery;
  util::FaultConfig fault;

  ChildPolicy producer_policy;
  ChildPolicy server_policy;
  ChildPolicy recovery_policy;

  std::size_t queue_capacity = 64;
  /// Hold the serving pump at the trigger's window boundary until the
  /// recovery action completes, so the hot-swap point is deterministic in
  /// the frame sequence (required for byte-identical faulty replay). False
  /// keeps serving the stale champion while recovery runs concurrently.
  bool deterministic_swap = true;
  /// Run DataCommons::fsck before loading (resuming after a kill).
  bool resume = false;
  /// Wall-clock safety net; 0 disables. Expiry aborts the run.
  double max_wall_seconds = 0.0;
  std::uint64_t seed = 42;
  /// Fsync journal/lineage writes. Tests that only exercise logic turn
  /// this off for speed; kill-and-resume paths keep it on.
  bool durable = true;

  util::metrics::Registry* metrics = nullptr;
  /// Defaults to <commons_root>/stream.journal when empty.
  std::filesystem::path journal_path;
  /// Simulated SIGKILL: the (n+1)-th journal append throws
  /// StreamInterrupted. 0 disables.
  std::size_t journal_append_limit = 0;
  /// Test seam, called after a recovery action records its fine-tuned
  /// model but before ModelRegistry::refresh() — the hot-swap-under-fire
  /// test corrupts the snapshot here and asserts the fallback.
  std::function<void(int model_id, std::size_t epoch)> after_promote_hook;
  /// Polled by the main loop; returning true drains and stops (SIGINT).
  std::function<bool()> stop_requested;
  /// Seeds the engine's service-time EMA (ms) when > 0.
  double hint_service_time_ms = 0.0;
};

struct StreamResult {
  std::size_t frames_produced = 0;
  std::size_t frames_served = 0;
  std::size_t frames_corrupt_dropped = 0;
  std::size_t frames_unserved = 0;  ///< shed/rejected at admission
  std::size_t windows = 0;

  std::size_t triggers_fired = 0;
  std::size_t triggers_acked = 0;
  std::size_t triggers_completed = 0;
  std::size_t triggers_shed = 0;

  std::size_t child_restarts = 0;
  std::size_t child_crashes = 0;
  std::size_t watchdog_stalls = 0;
  std::size_t degraded_entries = 0;

  bool degraded = false;
  bool interrupted = false;  ///< simulated kill — resume to continue
  bool aborted = false;      ///< serving pump dead or wall deadline
  bool graceful_stop = false;

  std::vector<WindowStats> window_history;
  /// True where the window overlapped an injected producer fault episode
  /// (pure oracle replay — identical across runs); parallel to
  /// window_history. SLO assertions read untainted windows only.
  std::vector<bool> window_fault_tainted;

  /// Completion payloads in action order: (champion model id, epoch).
  std::vector<std::pair<int, std::size_t>> champions;
  std::string journal_text;  ///< byte-exact journal image (tests diff this)

  int final_champion_model = -1;
  std::size_t final_champion_epoch = 0;
  std::uint64_t final_generation = 0;
  double accuracy_overall = 0.0;  ///< percent over served frames
  /// Max per-window p99 latency over fault-untainted windows (ms).
  double p99_outside_faults_ms = 0.0;

  util::Json to_json() const;
};

class StreamScenario {
 public:
  explicit StreamScenario(StreamConfig config);
  /// Run the supervised loop to completion (or kill/abort/stop) and
  /// collect the result. One call per scenario instance.
  StreamResult run();

 private:
  StreamConfig config_;
};

}  // namespace a4nn::stream
