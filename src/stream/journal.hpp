// Trigger journal: the crash-consistency spine of the streaming loop.
//
// Every recovery action (drift-triggered re-search / fine-tune) walks a
// three-state ladder — fired → acked → completed — and each transition is
// one append-only line in `<commons>/stream.journal`, in the same format
// as the lineage manifest journal: `<crc32 of body, 8 hex> <body>` with a
// JSON body, committed by an atomic fsync'd rewrite. Because the body
// carries no wall-clock data (action ids, window indices, and champion
// identity only), the journal of a run killed anywhere and resumed is
// byte-identical to the journal of an undisturbed run of the same seed.
//
// Exactly-once semantics: transitions are idempotent (appending a state an
// action already reached is a no-op), so a resumed run re-executing a
// fired-but-incomplete action re-appends nothing it already wrote and
// completes the action exactly once. A `genesis` line pins the initial
// champion identity so the fine-tune source chain is deterministic across
// resumes even after honest re-records shuffle the commons fitness order.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>

namespace a4nn::stream {

/// Thrown to simulate SIGKILL at a chosen journal transition (the
/// in-process analogue of the CI smoke's real `kill -9`): the supervisor
/// treats it as "stop everything now", not as a crash to restart.
struct StreamInterrupted : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class ActionState { kFired, kAcked, kCompleted };
const char* action_state_name(ActionState s);

/// One recovery action's journaled state.
struct ActionRecord {
  std::uint64_t action_id = 0;
  std::size_t window_index = 0;  ///< drift window whose boundary fired it
  ActionState state = ActionState::kFired;
  // Completion payload: the champion the registry settled on afterwards
  // (the fine-tuned model, or the fallback if its artifacts were corrupt).
  int champion_model_id = -1;
  std::size_t champion_epoch = 0;
};

class TriggerJournal {
 public:
  /// Loads (and tolerates a torn tail of) an existing journal file; starts
  /// empty when the file does not exist.
  explicit TriggerJournal(std::filesystem::path file, bool durable = true);

  bool has_genesis() const;
  /// Record the initial champion identity. No-op if already present.
  void write_genesis(int model_id, std::size_t epoch);
  int genesis_model_id() const;
  std::size_t genesis_epoch() const;

  /// Each returns true when the transition was appended, false when the
  /// action had already reached (or passed) that state — the exactly-once
  /// guard a resumed run leans on.
  bool fire(std::uint64_t action_id, std::size_t window_index);
  bool ack(std::uint64_t action_id);
  bool complete(std::uint64_t action_id, int champion_model_id,
                std::size_t champion_epoch);

  std::optional<ActionRecord> action(std::uint64_t action_id) const;
  /// All actions, keyed by id (furthest state wins).
  std::map<std::uint64_t, ActionRecord> actions() const;
  /// max(action id) + 1, or 0 for an empty journal.
  std::uint64_t next_action_id() const;

  std::size_t torn_lines() const { return torn_lines_; }
  /// The journal image as written to disk (byte-exact; tests diff this).
  std::string text() const;
  const std::filesystem::path& file() const { return file_; }

  /// Crash simulation: after `n` successful appends, the next append
  /// throws StreamInterrupted *before* writing. 0 disables the limit.
  void set_append_limit(std::size_t n) { append_limit_ = n; }
  std::size_t appends() const;

 private:
  void append_locked(const std::string& body);

  std::filesystem::path file_;
  bool durable_;
  mutable std::mutex mutex_;
  std::string text_;
  std::map<std::uint64_t, ActionRecord> actions_;
  bool has_genesis_ = false;
  int genesis_model_ = -1;
  std::size_t genesis_epoch_ = 0;
  std::size_t torn_lines_ = 0;
  std::size_t appends_ = 0;
  std::size_t append_limit_ = 0;
};

}  // namespace a4nn::stream
