// Drift monitor: windowed accuracy / label-distribution / tail-latency
// statistics over the served stream, with a hysteresis + cooldown trigger
// state machine.
//
// The serving pump feeds every validated frame's (prediction, ground
// truth, latency) into observe(); every `window_frames` observations close
// a window. A window whose accuracy falls below `fire_below` increments a
// bad-window streak; `sustain_windows` consecutive bad windows fire the
// re-search/fine-tune trigger. Firing opens a `cooldown_windows` circuit
// breaker, and accuracy must climb back above `rearm_above` to clear a
// partial streak — the hysteresis band keeps a champion oscillating around
// the threshold from machine-gunning recovery actions.
//
// Determinism: the state machine advances only on window boundaries, which
// are frame-count boundaries, so the fire/no-fire decision per window is a
// pure function of the frame stream. Resumed runs suppress re-fires with
// disarm_until() (computed from the trigger journal) and set_pending()
// (while a recovery action is in flight), not wall-clock state.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/metrics.hpp"

namespace a4nn::stream {

struct DriftConfig {
  std::size_t window_frames = 64;
  /// Accuracy (percent) below which a window counts toward the streak.
  double fire_below = 70.0;
  /// Accuracy (percent) at or above which a partial streak resets; the
  /// band [fire_below, rearm_above) holds the streak (hysteresis).
  double rearm_above = 85.0;
  /// Consecutive bad windows required to fire.
  std::size_t sustain_windows = 2;
  /// Windows the trigger stays open (no fires) after firing.
  std::size_t cooldown_windows = 3;
  std::size_t num_classes = 2;
  /// Range ceiling for the per-window latency histogram.
  double latency_hi_ms = 250.0;
};

/// One closed drift window.
struct WindowStats {
  std::size_t index = 0;
  std::size_t frames = 0;
  std::size_t correct = 0;
  double accuracy = 0.0;  ///< percent
  std::vector<std::uint64_t> label_counts;
  double p99_latency_ms = 0.0;
  bool fired = false;
};

/// Single-threaded (one consumer — the serving pump owns it).
class DriftMonitor {
 public:
  explicit DriftMonitor(DriftConfig config);

  /// Feed one served frame; returns the closed window at each boundary
  /// (with `fired` set when this boundary fires the trigger).
  std::optional<WindowStats> observe(std::int64_t predicted,
                                     std::int64_t truth, double latency_ms);

  /// Replay suppression: windows with index < `window_index` never fire
  /// (streak held at zero). Monotonic (max wins).
  void disarm_until(std::size_t window_index);
  /// While a recovery action is in flight the streak is held at zero; the
  /// journal, not the monitor, decides what happens to in-flight actions.
  void set_pending(bool pending) { pending_ = pending; }

  std::size_t windows_closed() const { return window_index_; }
  std::size_t fires() const { return fires_; }
  std::size_t bad_streak() const { return bad_; }
  std::size_t cooldown_remaining() const { return cooldown_; }
  const std::vector<WindowStats>& history() const { return history_; }
  const DriftConfig& config() const { return config_; }

 private:
  DriftConfig config_;
  util::metrics::Histogram labels_;
  util::metrics::Histogram latency_;
  std::size_t frames_ = 0;
  std::size_t correct_ = 0;
  std::size_t window_index_ = 0;
  std::size_t bad_ = 0;
  std::size_t cooldown_ = 0;
  std::size_t disarm_until_ = 0;
  std::size_t fires_ = 0;
  bool pending_ = false;
  std::vector<WindowStats> history_;
};

}  // namespace a4nn::stream
