#include "stream/supervisor.hpp"

#include <algorithm>
#include <cmath>

#include "stream/journal.hpp"
#include "util/log.hpp"
#include "util/trace.hpp"

namespace a4nn::stream {

using Clock = std::chrono::steady_clock;

/// Shared between the supervisor and one running incarnation of a child's
/// body; kept alive by shared_ptr so a reclaimed-but-still-exiting thread
/// can't touch freed state.
struct Supervisor::Context::Incarnation {
  std::atomic<bool> stop{false};
  std::atomic<Clock::rep> last_beat{Clock::now().time_since_epoch().count()};
  std::mutex mutex;
  std::condition_variable cv;

  void request_stop() {
    stop.store(true);
    cv.notify_all();
  }
};

void Supervisor::Context::heartbeat() {
  inc_->last_beat.store(Clock::now().time_since_epoch().count(),
                        std::memory_order_relaxed);
}

bool Supervisor::Context::stopping() const { return inc_->stop.load(); }

bool Supervisor::Context::sleep_ms(double ms) {
  if (ms <= 0.0) return !inc_->stop.load();
  std::unique_lock<std::mutex> lock(inc_->mutex);
  inc_->cv.wait_for(lock, std::chrono::duration<double, std::milli>(ms),
                    [&] { return inc_->stop.load(); });
  return !inc_->stop.load();
}

struct Supervisor::Child {
  std::string name;
  ChildPolicy policy;
  Body body;
  int tid = 0;
  std::thread thread;
  std::shared_ptr<Context::Incarnation> inc;
  std::size_t restarts = 0;
  ChildState state = ChildState::kRunning;
  std::string error;
  Clock::time_point restart_due;
};

Supervisor::Supervisor(SupervisorConfig config) : config_(config) {
  if (config_.metrics) {
    c_restarts_ = &config_.metrics->counter("stream.child_restarts");
    c_crashes_ = &config_.metrics->counter("stream.child_crashes");
    c_stalls_ = &config_.metrics->counter("stream.watchdog_stalls");
    c_degraded_ = &config_.metrics->counter("stream.degraded_entries");
  }
}

Supervisor::~Supervisor() { stop_all(); }

void Supervisor::on_exhausted(std::function<void(const std::string&)> cb) {
  on_exhausted_ = std::move(cb);
}

void Supervisor::note(util::metrics::Counter* counter, const char* event,
                      int tid) {
  // Counter and trace event increment at the same point so check_trace.py
  // can hold stream.* counters equal to their pid-4 event twins.
  if (counter) counter->add();
  util::trace::emit_instant(event, "stream", util::trace::now_us(),
                            util::trace::kStreamPid, tid);
}

void Supervisor::spawn(std::string name, ChildPolicy policy, Body body,
                       int tid) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto child = std::make_unique<Child>();
  child->name = std::move(name);
  child->policy = policy;
  child->body = std::move(body);
  child->tid = tid;
  util::trace::name_thread(util::trace::kStreamPid, tid, child->name);
  start_incarnation(*child);
  children_.push_back(std::move(child));
  if (!monitor_started_) {
    monitor_started_ = true;
    monitor_ = std::thread([this] { monitor_loop(); });
  }
}

void Supervisor::start_incarnation(Child& child) {
  // Caller holds mutex_. The previous thread (if any) has already set a
  // terminal state and is returning; join is bounded.
  if (child.thread.joinable()) child.thread.join();
  child.inc = std::make_shared<Context::Incarnation>();
  child.state = ChildState::kRunning;
  auto inc = child.inc;
  const std::size_t attempt = child.restarts;
  Child* self = &child;
  child.thread = std::thread([this, self, inc, attempt] {
    Context ctx(inc, attempt);
    try {
      self->body(ctx);
      std::lock_guard<std::mutex> lock(mutex_);
      if (self->inc == inc) self->state = ChildState::kDone;
    } catch (const StreamInterrupted& e) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (self->inc == inc) {
          self->state = ChildState::kDone;
          self->error = e.what();
        }
      }
      interrupted_.store(true);
      util::log_warn("stream: " + self->name + " interrupted: " + e.what());
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (self->inc == inc) {
        self->state = ChildState::kCrashed;
        self->error = e.what();
        crashes_.fetch_add(1);
        note(c_crashes_, "child.crash", self->tid);
        const double backoff = std::min(
            self->policy.backoff_cap_ms,
            self->policy.backoff_base_ms *
                std::pow(self->policy.backoff_multiplier,
                         static_cast<double>(self->restarts)));
        self->restart_due =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   backoff));
      }
    }
  });
}

void Supervisor::monitor_loop() {
  const auto poll =
      std::chrono::duration<double, std::milli>(std::max(config_.poll_ms, 1.0));
  while (!stop_.load()) {
    std::this_thread::sleep_for(poll);
    if (interrupted_.load()) {
      // Simulated kill: freeze the tree in place; stop_all() (driven by
      // the scenario) does the joining.
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto& child : children_)
        if (child->inc) child->inc->request_stop();
      continue;
    }
    // Reaped threads are joined OUTSIDE mutex_: an exiting child wrapper
    // takes mutex_ to record its terminal state, so joining under the lock
    // would deadlock against a child that finished right at the deadline.
    std::vector<std::thread> reap;
    std::vector<std::string> exhausted;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto& child : children_) {
        if (child->state == ChildState::kRunning &&
            child->policy.watchdog_ms > 0.0 && child->inc) {
          const auto last = Clock::time_point(Clock::duration(
              child->inc->last_beat.load(std::memory_order_relaxed)));
          const double silent_ms =
              std::chrono::duration<double, std::milli>(Clock::now() - last)
                  .count();
          if (silent_ms > child->policy.watchdog_ms) {
            stalls_.fetch_add(1);
            note(c_stalls_, "child.stall", child->tid);
            util::log_warn("stream: watchdog: " + child->name +
                           " silent for " + std::to_string(silent_ms) +
                           "ms, reclaiming");
            child->inc->request_stop();
            // Detach the incarnation so a concurrently-exiting wrapper
            // (whose inc no longer matches) leaves the state to us.
            child->inc.reset();
            child->state = ChildState::kStalled;
            child->restart_due = Clock::now();
            reap.push_back(std::move(child->thread));
          }
        }
        if ((child->state == ChildState::kCrashed ||
             child->state == ChildState::kStalled) &&
            Clock::now() >= child->restart_due &&
            (!child->thread.joinable() || child->state == ChildState::kCrashed)) {
          if (child->restarts >= child->policy.max_restarts) {
            child->state = ChildState::kExhausted;
            degraded_.store(true);
            degraded_entries_.fetch_add(1);
            note(c_degraded_, "child.degraded", child->tid);
            util::log_warn("stream: " + child->name +
                           " exhausted its restart budget — degraded mode");
            if (on_exhausted_) exhausted.push_back(child->name);
          } else {
            ++child->restarts;
            restarts_.fetch_add(1);
            note(c_restarts_, "child.restart", child->tid);
            start_incarnation(*child);
          }
        }
      }
    }
    for (auto& t : reap) t.join();
    for (const auto& name : exhausted) on_exhausted_(name);
  }
}

void Supervisor::stop_all() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  stop_.store(true);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& child : children_)
      if (child->inc) child->inc->request_stop();
  }
  if (monitor_.joinable()) monitor_.join();
  // Same rule as the monitor loop: join child threads OUTSIDE mutex_,
  // because an exiting wrapper takes it to record its terminal state.
  std::vector<std::thread> reap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& child : children_)
      if (child->thread.joinable()) reap.push_back(std::move(child->thread));
  }
  for (auto& t : reap) t.join();
}

bool Supervisor::child_done(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& child : children_)
    if (child->name == name) return child->state == ChildState::kDone;
  return false;
}

bool Supervisor::child_exhausted(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& child : children_)
    if (child->name == name) return child->state == ChildState::kExhausted;
  return false;
}

std::string Supervisor::child_error(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& child : children_)
    if (child->name == name) return child->error;
  return {};
}

}  // namespace a4nn::stream
