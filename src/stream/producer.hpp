// Rate-controlled diffraction-frame producer — the beamline end of the in
// situ loop. Frame content is a pure function of (seed, frame index, phase
// schedule): the producer pre-renders a pool of diffraction shots per
// (phase, conformation) with hash-derived seeds and emits pool samples
// round-robin, so a restarted producer resumes from its cursor and emits
// byte-identical frames — the foundation of deterministic faulty replay.
//
// Drift is modeled as a phase schedule: from a phase's start frame onward
// the ground-truth labels rotate (the paper's conformational drift — the
// protein population in the beam changes, so the image↔class mapping the
// champion learned goes stale) and the beam intensity may change.
//
// Injectable faults (util::FaultInjector stream_* oracles, keyed by frame
// index and restart attempt): stall (stop heartbeating mid-emit), burst
// (unpaced frame train), corrupt-frame (non-finite pixels the consumer
// must detect and drop), rate-spike (temporarily multiplied pacing), and
// crash (child throws; the supervisor restarts it at the cursor).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "stream/supervisor.hpp"
#include "util/fault.hpp"
#include "xfel/dataset.hpp"

namespace a4nn::stream {

struct Frame {
  std::size_t index = 0;
  std::vector<float> image;
  std::int64_t truth = 0;
  /// Injection ground truth (set when the corrupt-frame fault poisoned the
  /// payload); the consumer must detect the damage itself by validation.
  bool poisoned = false;
};

/// Beamline conditions from `start_frame` onward.
struct PhaseSpec {
  std::size_t start_frame = 0;
  /// Ground-truth label rotation: the image generated for conformation c
  /// now carries truth (c + label_rotation) % classes.
  std::size_t label_rotation = 0;
  xfel::BeamIntensity intensity = xfel::BeamIntensity::kMedium;
};

/// Bounded SPSC frame queue with cancellable blocking push/pop — the
/// backpressure edge between beamline rate and serving throughput.
class FrameQueue {
 public:
  explicit FrameQueue(std::size_t capacity);

  /// Blocks while full; returns false when `cancelled` fired first.
  bool push(Frame frame, const std::function<bool()>& cancelled);
  /// Blocks while empty; nullopt when cancelled, or closed and drained.
  std::optional<Frame> pop(const std::function<bool()>& cancelled);

  void close();
  bool closed() const;
  std::size_t depth() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Frame> queue_;
  std::size_t capacity_;
  bool closed_ = false;
};

struct ProducerConfig {
  std::size_t total_frames = 0;
  /// Steady pacing rate (frames/s); 0 = unpaced (tests, benches).
  double rate_hz = 0.0;
  /// Pre-rendered shots per (phase, class); frame i reuses pool sample
  /// (i / classes) % pool_per_class of class i % classes.
  std::size_t pool_per_class = 32;
  /// Sorted by start_frame; an empty list means one un-drifted phase.
  std::vector<PhaseSpec> phases;
  /// Detector geometry / protein / base seed; intensity comes from the
  /// active phase.
  xfel::XfelDatasetConfig dataset;
};

class StreamProducer {
 public:
  /// `faults` is nullable and must outlive the producer.
  StreamProducer(ProducerConfig config, FrameQueue& out,
                 const util::FaultInjector* faults);

  /// Supervised child body: emits frames [cursor, total_frames) into the
  /// queue, advancing the cursor only after a successful push, then closes
  /// the queue. Restart-safe: a new incarnation resumes at the cursor.
  void run(Supervisor::Context& ctx);

  /// Pure frame synthesis for index i (no faults applied). Also used by
  /// tests to assert replay identity.
  Frame make_frame(std::size_t index) const;

  const PhaseSpec& phase_at(std::size_t index) const;
  std::size_t classes() const { return config_.dataset.conformations; }
  std::size_t cursor() const { return cursor_.load(); }
  std::size_t emitted() const { return cursor_.load(); }

 private:
  const std::vector<float>& pool_image(std::size_t phase_index,
                                       std::size_t cls,
                                       std::size_t sample) const;

  ProducerConfig config_;
  FrameQueue& out_;
  const util::FaultInjector* faults_;
  std::vector<xfel::Conformation> conformations_;
  std::atomic<std::size_t> cursor_{0};

  // Lazily rendered per-phase pools; guarded for cross-restart access.
  mutable std::mutex pool_mutex_;
  mutable std::map<std::size_t, std::vector<std::vector<std::vector<float>>>>
      pools_;  // phase -> class -> sample -> image
};

}  // namespace a4nn::stream
