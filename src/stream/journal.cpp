#include "stream/journal.hpp"

#include <charconv>
#include <cstdio>

#include "util/checksum.hpp"
#include "util/fsutil.hpp"
#include "util/json.hpp"

namespace a4nn::stream {

namespace {

/// `<crc32 of body, 8 hex> <body>\n` — the lineage manifest convention, so
/// a torn or bit-flipped line is deterministically detectable.
std::string journal_line(const std::string& body) {
  char crc[12];
  std::snprintf(crc, sizeof(crc), "%08x ", util::crc32(body));
  return crc + body + "\n";
}

bool parse_line(std::string_view line, std::string& body_out) {
  if (line.size() < 9 || line[8] != ' ') return false;
  std::uint32_t crc = 0;
  auto [p, ec] = std::from_chars(line.data(), line.data() + 8, crc, 16);
  if (ec != std::errc{} || p != line.data() + 8) return false;
  const std::string_view body = line.substr(9);
  if (util::crc32(body) != crc) return false;
  body_out.assign(body);
  return true;
}

ActionState state_from_name(const std::string& name) {
  if (name == "fired") return ActionState::kFired;
  if (name == "acked") return ActionState::kAcked;
  if (name == "completed") return ActionState::kCompleted;
  throw std::runtime_error("TriggerJournal: unknown state " + name);
}

}  // namespace

const char* action_state_name(ActionState s) {
  switch (s) {
    case ActionState::kFired: return "fired";
    case ActionState::kAcked: return "acked";
    case ActionState::kCompleted: return "completed";
  }
  return "?";
}

TriggerJournal::TriggerJournal(std::filesystem::path file, bool durable)
    : file_(std::move(file)), durable_(durable) {
  std::error_code ec;
  if (!std::filesystem::exists(file_, ec)) return;
  const std::string disk = util::read_file(file_);
  // Replay valid lines (furthest state wins per action); drop torn ones.
  // The rebuilt in-memory image keeps only the valid lines, so the first
  // append after a power-cut truncation also repairs the file on disk.
  std::size_t pos = 0;
  while (pos < disk.size()) {
    const std::size_t nl = disk.find('\n', pos);
    const bool terminated = nl != std::string::npos;
    const std::string_view line(disk.data() + pos,
                                (terminated ? nl : disk.size()) - pos);
    pos = terminated ? nl + 1 : disk.size();
    if (line.empty()) continue;
    std::string body;
    if (!terminated || !parse_line(line, body)) {
      ++torn_lines_;
      continue;
    }
    util::Json j;
    try {
      j = util::Json::parse(body);
    } catch (const std::exception&) {
      ++torn_lines_;
      continue;
    }
    if (j.contains("genesis")) {
      has_genesis_ = true;
      genesis_model_ = static_cast<int>(j.at("genesis").at("model").as_int());
      genesis_epoch_ =
          static_cast<std::size_t>(j.at("genesis").at("epoch").as_int());
    } else if (j.contains("action")) {
      ActionRecord rec;
      rec.action_id = static_cast<std::uint64_t>(j.at("action").as_int());
      rec.state = state_from_name(j.at("state").as_string());
      if (j.contains("window"))
        rec.window_index = static_cast<std::size_t>(j.at("window").as_int());
      if (j.contains("champion")) {
        rec.champion_model_id = static_cast<int>(j.at("champion").as_int());
        rec.champion_epoch =
            static_cast<std::size_t>(j.at("epoch").as_int());
      }
      auto [it, inserted] = actions_.emplace(rec.action_id, rec);
      if (!inserted && rec.state >= it->second.state) {
        // Later states carry strictly more fields; keep the fired window.
        rec.window_index = it->second.window_index;
        it->second = rec;
      }
    } else {
      ++torn_lines_;
    }
    text_.append(journal_line(body));
  }
  if (torn_lines_ > 0 && !disk.empty())
    util::write_file(file_, text_,
                     durable_ ? util::Durability::kFsync
                              : util::Durability::kBuffered);
}

bool TriggerJournal::has_genesis() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return has_genesis_;
}

void TriggerJournal::write_genesis(int model_id, std::size_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (has_genesis_) return;
  util::Json g = util::Json::object();
  g["model"] = model_id;
  g["epoch"] = epoch;
  util::Json j = util::Json::object();
  j["genesis"] = std::move(g);
  append_locked(j.dump());
  has_genesis_ = true;
  genesis_model_ = model_id;
  genesis_epoch_ = epoch;
}

int TriggerJournal::genesis_model_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return genesis_model_;
}

std::size_t TriggerJournal::genesis_epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return genesis_epoch_;
}

bool TriggerJournal::fire(std::uint64_t action_id, std::size_t window_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (actions_.count(action_id)) return false;
  util::Json j = util::Json::object();
  j["action"] = action_id;
  j["state"] = "fired";
  j["window"] = window_index;
  append_locked(j.dump());
  ActionRecord rec;
  rec.action_id = action_id;
  rec.window_index = window_index;
  rec.state = ActionState::kFired;
  actions_[action_id] = rec;
  return true;
}

bool TriggerJournal::ack(std::uint64_t action_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = actions_.find(action_id);
  if (it == actions_.end())
    throw std::runtime_error("TriggerJournal: ack of unknown action");
  if (it->second.state >= ActionState::kAcked) return false;
  util::Json j = util::Json::object();
  j["action"] = action_id;
  j["state"] = "acked";
  append_locked(j.dump());
  it->second.state = ActionState::kAcked;
  return true;
}

bool TriggerJournal::complete(std::uint64_t action_id, int champion_model_id,
                              std::size_t champion_epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = actions_.find(action_id);
  if (it == actions_.end())
    throw std::runtime_error("TriggerJournal: complete of unknown action");
  if (it->second.state >= ActionState::kCompleted) return false;
  util::Json j = util::Json::object();
  j["action"] = action_id;
  j["state"] = "completed";
  j["champion"] = champion_model_id;
  j["epoch"] = champion_epoch;
  append_locked(j.dump());
  it->second.state = ActionState::kCompleted;
  it->second.champion_model_id = champion_model_id;
  it->second.champion_epoch = champion_epoch;
  return true;
}

std::optional<ActionRecord> TriggerJournal::action(
    std::uint64_t action_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = actions_.find(action_id);
  if (it == actions_.end()) return std::nullopt;
  return it->second;
}

std::map<std::uint64_t, ActionRecord> TriggerJournal::actions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return actions_;
}

std::uint64_t TriggerJournal::next_action_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (actions_.empty()) return 0;
  return actions_.rbegin()->first + 1;
}

std::string TriggerJournal::text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return text_;
}

std::size_t TriggerJournal::appends() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appends_;
}

void TriggerJournal::append_locked(const std::string& body) {
  if (append_limit_ > 0 && appends_ >= append_limit_)
    throw StreamInterrupted("journal append limit reached (simulated kill)");
  text_.append(journal_line(body));
  util::write_file(file_, text_,
                   durable_ ? util::Durability::kFsync
                            : util::Durability::kBuffered);
  ++appends_;
}

}  // namespace a4nn::stream
