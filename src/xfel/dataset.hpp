// Dataset generation: balanced two-class protein-diffraction image sets at
// a chosen beam intensity, with the 80/20 train/test split used in the
// paper and per-shot orientation metadata kept for validation.
#pragma once

#include "nn/dataset.hpp"
#include "xfel/diffraction.hpp"

namespace a4nn::xfel {

struct XfelDatasetConfig {
  BeamIntensity intensity = BeamIntensity::kMedium;
  std::size_t images_per_class = 200;
  /// Number of protein conformations to distinguish (classes). The paper
  /// uses 2 (eEF2 1n0u vs 1n0v); more conformations interpolate the
  /// domain swing.
  std::size_t conformations = 2;
  DetectorConfig detector;
  ProteinConfig protein;
  double train_fraction = 0.8;
  std::uint64_t seed = 42;
};

struct XfelDataset {
  nn::Dataset train;
  nn::Dataset validation;
  /// Ground-truth beam orientations, parallel to train then validation
  /// sample order (the "additional information on the protein's angles"
  /// the simulated data carries).
  std::vector<Mat3> train_orientations;
  std::vector<Mat3> validation_orientations;
  BeamIntensity intensity = BeamIntensity::kMedium;
};

/// Simulate shots for both conformations, interleave classes, and split.
XfelDataset generate_xfel_dataset(const XfelDatasetConfig& config);

}  // namespace a4nn::xfel
