// Far-field XFEL diffraction-pattern synthesis.
//
// Stand-in for the paper's spsim + Xmipp pipeline. For each shot we draw a
// uniform random beam orientation (Xmipp's role), rotate the conformation,
// and evaluate the coherent structure factor F(q) = sum_j exp(2*pi*i q.r_j)
// on a flat detector grid in the small-angle approximation (spsim's role).
// The expected photon count per pixel is the normalized intensity |F|^2
// scaled by the beam fluence, and the recorded pattern is a Poisson sample
// of it — so beam intensity controls the signal-to-noise ratio exactly as
// in the paper (low fluence -> noisy patterns -> harder classification).
#pragma once

#include <vector>

#include "util/rng.hpp"
#include "xfel/protein.hpp"

namespace a4nn::xfel {

/// Beam intensity regimes from the paper (photons / um^2 / pulse).
enum class BeamIntensity { kLow, kMedium, kHigh };

const char* beam_name(BeamIntensity b);
/// Paper fluence value, for record trails.
double beam_fluence(BeamIntensity b);
/// Expected total detected photons per pattern in our detector model.
/// Chosen so low/medium/high reproduce the paper's noise ordering.
double beam_expected_photons(BeamIntensity b);

struct DetectorConfig {
  std::size_t pixels = 16;   // square detector, pixels x pixels
  double q_max = 0.12;       // reciprocal-space half-extent (1/Angstrom-ish)
  double curvature = 0.35;   // Ewald-sphere qz curvature factor
};

struct Shot {
  std::vector<float> image;  // pixels*pixels, normalized [0, 1]
  Mat3 orientation;          // beam orientation used (ground truth metadata)
  double total_photons = 0;  // detected photon count before normalization
};

class DiffractionSimulator {
 public:
  DiffractionSimulator(DetectorConfig detector, BeamIntensity intensity);

  /// Noise-free normalized intensity pattern for a given orientation.
  std::vector<double> ideal_pattern(const Conformation& conf,
                                    const Mat3& orientation) const;

  /// One simulated shot: random orientation + Poisson photon noise +
  /// log-scale normalization to [0, 1].
  Shot simulate_shot(const Conformation& conf, util::Rng& rng) const;

  const DetectorConfig& detector() const { return detector_; }
  BeamIntensity intensity() const { return intensity_; }

 private:
  DetectorConfig detector_;
  BeamIntensity intensity_;
};

}  // namespace a4nn::xfel
