#include "xfel/protein.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace a4nn::xfel {

Vec3 operator+(const Vec3& a, const Vec3& b) {
  return {a.x + b.x, a.y + b.y, a.z + b.z};
}

Vec3 operator-(const Vec3& a, const Vec3& b) {
  return {a.x - b.x, a.y - b.y, a.z - b.z};
}

Vec3 operator*(double s, const Vec3& v) { return {s * v.x, s * v.y, s * v.z}; }

double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

Vec3 Mat3::apply(const Vec3& v) const {
  return {m[0] * v.x + m[1] * v.y + m[2] * v.z,
          m[3] * v.x + m[4] * v.y + m[5] * v.z,
          m[6] * v.x + m[7] * v.y + m[8] * v.z};
}

Mat3 Mat3::rotation_about(const Vec3& axis_unit, double angle_rad) {
  // Rodrigues' rotation formula.
  const double c = std::cos(angle_rad), s = std::sin(angle_rad);
  const double t = 1.0 - c;
  const double x = axis_unit.x, y = axis_unit.y, z = axis_unit.z;
  Mat3 r;
  r.m = {t * x * x + c,     t * x * y - s * z, t * x * z + s * y,
         t * x * y + s * z, t * y * y + c,     t * y * z - s * x,
         t * x * z - s * y, t * y * z + s * x, t * z * z + c};
  return r;
}

Mat3 Mat3::random_rotation(util::Rng& rng) {
  // Shoemake's method: uniform quaternion from three uniforms.
  const double u1 = rng.uniform(), u2 = rng.uniform(), u3 = rng.uniform();
  const double sq1 = std::sqrt(1.0 - u1), sq2 = std::sqrt(u1);
  const double qx = sq1 * std::sin(2.0 * M_PI * u2);
  const double qy = sq1 * std::cos(2.0 * M_PI * u2);
  const double qz = sq2 * std::sin(2.0 * M_PI * u3);
  const double qw = sq2 * std::cos(2.0 * M_PI * u3);
  Mat3 r;
  r.m = {1 - 2 * (qy * qy + qz * qz), 2 * (qx * qy - qz * qw),
         2 * (qx * qz + qy * qw),
         2 * (qx * qy + qz * qw),     1 - 2 * (qx * qx + qz * qz),
         2 * (qy * qz - qx * qw),
         2 * (qx * qz - qy * qw),     2 * (qy * qz + qx * qw),
         1 - 2 * (qx * qx + qy * qy)};
  return r;
}

double rotation_angle_between(const Mat3& a, const Mat3& b) {
  // trace(a^T b) = sum_ij a_ij * b_ij for row-major storage.
  double trace = 0.0;
  for (std::size_t i = 0; i < 9; ++i) trace += a.m[i] * b.m[i];
  const double c = std::clamp((trace - 1.0) / 2.0, -1.0, 1.0);
  return std::acos(c);
}

double diffraction_orientation_error(const Mat3& a, const Mat3& b) {
  // Friedel mate of `a`: rotate the sample by pi about the beam axis (z).
  Mat3 mate;
  mate.m = {-a.m[0], -a.m[1], -a.m[2],
            -a.m[3], -a.m[4], -a.m[5],
            a.m[6],  a.m[7],  a.m[8]};
  return std::min(rotation_angle_between(a, b),
                  rotation_angle_between(mate, b));
}

double Conformation::radius_of_gyration() const {
  if (atoms.empty()) return 0.0;
  Vec3 center{};
  for (const auto& a : atoms) center = center + a;
  center = (1.0 / static_cast<double>(atoms.size())) * center;
  double acc = 0.0;
  for (const auto& a : atoms) {
    const Vec3 d = a - center;
    acc += dot(d, d);
  }
  return std::sqrt(acc / static_cast<double>(atoms.size()));
}

std::pair<Conformation, Conformation> make_conformation_pair(
    const ProteinConfig& config) {
  auto all = make_conformations(config, 2);
  return {std::move(all[0]), std::move(all[1])};
}

std::vector<Conformation> make_conformations(const ProteinConfig& config,
                                             std::size_t count) {
  if (config.core_atoms == 0 || config.domain_atoms == 0)
    throw std::invalid_argument("make_conformations: need atoms");
  if (count < 2)
    throw std::invalid_argument("make_conformations: need >= 2 conformations");
  util::Rng rng(config.seed);

  auto sample_ball = [&rng](double radius) {
    // Rejection sample inside a ball for a roughly globular cloud.
    for (;;) {
      Vec3 v{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
             rng.uniform(-1.0, 1.0)};
      if (dot(v, v) <= 1.0) return radius * v;
    }
  };

  std::vector<Vec3> core;
  core.reserve(config.core_atoms);
  for (std::size_t i = 0; i < config.core_atoms; ++i)
    core.push_back(sample_ball(config.core_radius));

  // Domain sits offset along +x from the core; the hinge runs through the
  // junction point along z.
  const Vec3 hinge_point{config.core_radius, 0.0, 0.0};
  const Vec3 hinge_axis{0.0, 0.0, 1.0};
  std::vector<Vec3> domain;
  domain.reserve(config.domain_atoms);
  for (std::size_t i = 0; i < config.domain_atoms; ++i) {
    Vec3 local = sample_ball(config.domain_radius);
    domain.push_back(local + Vec3{config.domain_offset + config.core_radius,
                                  0.0, 0.0});
  }

  std::vector<Conformation> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    Conformation conf;
    conf.name = "conf" + std::string(1, static_cast<char>('A' + k));
    conf.atoms = core;
    const double angle = config.conformation_angle * static_cast<double>(k) /
                         static_cast<double>(count - 1);
    const Mat3 swing = Mat3::rotation_about(hinge_axis, angle);
    for (const auto& atom : domain) {
      const Vec3 relative = atom - hinge_point;
      conf.atoms.push_back(swing.apply(relative) + hinge_point);
    }
    out.push_back(std::move(conf));
  }
  return out;
}

}  // namespace a4nn::xfel
