// A second, non-XFEL dataset for the paper's generality claim ("can be
// generalized to other datasets ... changing the input dataset is a
// straightforward operation"): synthetic grayscale geometric shapes
// (filled disc vs ring vs bar) with additive noise. Swapping the A4NN
// workflow onto this data requires only a different nn::Dataset — no
// change to the NAS, engine, orchestrator, or scheduler.
#pragma once

#include "nn/dataset.hpp"

namespace a4nn::xfel {

enum class ShapeClass { kDisc = 0, kRing = 1, kBar = 2 };

struct ShapesDatasetConfig {
  std::size_t image_px = 16;
  std::size_t images_per_class = 100;
  std::size_t classes = 3;       // 2 or 3 (disc/ring or disc/ring/bar)
  double noise_sigma = 0.1;      // additive Gaussian pixel noise
  double jitter = 2.0;           // center jitter (pixels)
  double train_fraction = 0.8;
  std::uint64_t seed = 77;
};

struct ShapesDataset {
  nn::Dataset train;
  nn::Dataset validation;
};

/// Render one noisy shape image (row-major, [0, 1]-ish). Exposed for tests.
std::vector<float> render_shape(ShapeClass shape, std::size_t px,
                                double jitter, double noise_sigma,
                                util::Rng& rng);

ShapesDataset generate_shapes_dataset(const ShapesDatasetConfig& config);

}  // namespace a4nn::xfel
