#include "xfel/diffraction.hpp"

#include <cmath>
#include <stdexcept>

namespace a4nn::xfel {

const char* beam_name(BeamIntensity b) {
  switch (b) {
    case BeamIntensity::kLow: return "low";
    case BeamIntensity::kMedium: return "medium";
    case BeamIntensity::kHigh: return "high";
  }
  return "?";
}

double beam_fluence(BeamIntensity b) {
  switch (b) {
    case BeamIntensity::kLow: return 1e14;
    case BeamIntensity::kMedium: return 1e15;
    case BeamIntensity::kHigh: return 1e16;
  }
  return 0.0;
}

double beam_expected_photons(BeamIntensity b) {
  // Detected photons scale linearly with fluence; the absolute numbers are
  // detector-model specific. 10x steps mirror the paper's fluence ladder.
  switch (b) {
    case BeamIntensity::kLow: return 2.0e2;
    case BeamIntensity::kMedium: return 2.0e3;
    case BeamIntensity::kHigh: return 2.0e4;
  }
  return 0.0;
}

DiffractionSimulator::DiffractionSimulator(DetectorConfig detector,
                                           BeamIntensity intensity)
    : detector_(detector), intensity_(intensity) {
  if (detector.pixels < 4)
    throw std::invalid_argument("DiffractionSimulator: detector too small");
  if (detector.q_max <= 0.0)
    throw std::invalid_argument("DiffractionSimulator: q_max must be > 0");
}

std::vector<double> DiffractionSimulator::ideal_pattern(
    const Conformation& conf, const Mat3& orientation) const {
  const std::size_t n = detector_.pixels;
  std::vector<double> intensity(n * n, 0.0);

  // Rotate atoms into the lab frame once per shot.
  std::vector<Vec3> atoms;
  atoms.reserve(conf.atoms.size());
  for (const auto& a : conf.atoms) atoms.push_back(orientation.apply(a));

  const double step = 2.0 * detector_.q_max / static_cast<double>(n - 1);
  for (std::size_t py = 0; py < n; ++py) {
    const double qy = -detector_.q_max + step * static_cast<double>(py);
    for (std::size_t px = 0; px < n; ++px) {
      const double qx = -detector_.q_max + step * static_cast<double>(px);
      // Small-angle Ewald sphere: qz grows quadratically off-axis.
      const double qz =
          detector_.curvature * (qx * qx + qy * qy) / detector_.q_max;
      double re = 0.0, im = 0.0;
      for (const auto& r : atoms) {
        const double phase =
            2.0 * M_PI * (qx * r.x + qy * r.y + qz * r.z);
        re += std::cos(phase);
        im += std::sin(phase);
      }
      intensity[py * n + px] = re * re + im * im;
    }
  }

  // Normalize to unit total so fluence scaling is detector-independent.
  double total = 0.0;
  for (double v : intensity) total += v;
  if (total > 0.0) {
    for (double& v : intensity) v /= total;
  }
  return intensity;
}

Shot DiffractionSimulator::simulate_shot(const Conformation& conf,
                                         util::Rng& rng) const {
  Shot shot;
  shot.orientation = Mat3::random_rotation(rng);
  const std::vector<double> ideal = ideal_pattern(conf, shot.orientation);
  const double expected_photons = beam_expected_photons(intensity_);

  const std::size_t numel = ideal.size();
  shot.image.resize(numel);
  double max_counts = 0.0;
  std::vector<double> counts(numel);
  for (std::size_t i = 0; i < numel; ++i) {
    counts[i] =
        static_cast<double>(rng.poisson(expected_photons * ideal[i]));
    shot.total_photons += counts[i];
    max_counts = std::max(max_counts, counts[i]);
  }
  // Log-scale normalization: diffraction intensities span orders of
  // magnitude; log compression is what practitioners feed CNNs.
  const double denom = std::log1p(max_counts);
  for (std::size_t i = 0; i < numel; ++i) {
    shot.image[i] = denom > 0.0
                        ? static_cast<float>(std::log1p(counts[i]) / denom)
                        : 0.0f;
  }
  return shot;
}

}  // namespace a4nn::xfel
