#include "xfel/dataset.hpp"

#include <numeric>
#include <stdexcept>

namespace a4nn::xfel {

XfelDataset generate_xfel_dataset(const XfelDatasetConfig& config) {
  if (config.images_per_class == 0)
    throw std::invalid_argument("generate_xfel_dataset: empty dataset");
  if (config.train_fraction <= 0.0 || config.train_fraction >= 1.0)
    throw std::invalid_argument(
        "generate_xfel_dataset: train fraction must be in (0, 1)");

  util::Rng rng(config.seed);
  const auto conformations =
      make_conformations(config.protein, config.conformations);
  DiffractionSimulator sim(config.detector, config.intensity);

  struct Sample {
    std::vector<float> image;
    std::int64_t label;
    Mat3 orientation;
  };
  std::vector<Sample> samples;
  samples.reserve(conformations.size() * config.images_per_class);
  for (std::size_t i = 0; i < config.images_per_class; ++i) {
    for (std::size_t label = 0; label < conformations.size(); ++label) {
      Shot shot = sim.simulate_shot(conformations[label], rng);
      samples.push_back({std::move(shot.image),
                         static_cast<std::int64_t>(label), shot.orientation});
    }
  }
  // Shuffle before the split so both halves are class-balanced in
  // expectation (the generation order interleaves classes already, but a
  // shuffle removes any pairing structure).
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  const std::size_t n = config.detector.pixels;
  XfelDataset out;
  out.intensity = config.intensity;
  out.train = nn::Dataset(1, n, n);
  out.validation = nn::Dataset(1, n, n);
  const std::size_t train_count = static_cast<std::size_t>(
      config.train_fraction * static_cast<double>(samples.size()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Sample& s = samples[order[i]];
    if (i < train_count) {
      out.train.add_sample(s.image, s.label);
      out.train_orientations.push_back(s.orientation);
    } else {
      out.validation.add_sample(s.image, s.label);
      out.validation_orientations.push_back(s.orientation);
    }
  }
  return out;
}

}  // namespace a4nn::xfel
