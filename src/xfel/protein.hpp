// Synthetic protein conformations.
//
// The paper images two conformations of the eEF2 protein (PDB 1n0u / 1n0v)
// that differ by a domain rotation around a single-bond axis. Without the
// PDB-derived atom lists we build the closest synthetic equivalent: a
// shared random "core" atom cloud plus a mobile "domain" cloud that is
// rigidly rotated by a conformation-specific angle. Classification
// difficulty then comes from the same source as in the paper — the two
// classes share most of their scattering mass and differ in the spatial
// arrangement of one subdomain.
#pragma once

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace a4nn::xfel {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;
};

Vec3 operator+(const Vec3& a, const Vec3& b);
Vec3 operator-(const Vec3& a, const Vec3& b);
Vec3 operator*(double s, const Vec3& v);
double dot(const Vec3& a, const Vec3& b);

/// Row-major 3x3 rotation matrix.
struct Mat3 {
  std::array<double, 9> m{1, 0, 0, 0, 1, 0, 0, 0, 1};

  Vec3 apply(const Vec3& v) const;
  static Mat3 rotation_about(const Vec3& axis_unit, double angle_rad);
  /// Uniform random rotation from a random unit quaternion.
  static Mat3 random_rotation(util::Rng& rng);
};

/// Geodesic distance on SO(3) between two rotations, in radians:
/// the angle of R_a^T R_b, in [0, pi]. Used to validate orientation
/// recovery against the simulator's ground-truth beam orientations.
double rotation_angle_between(const Mat3& a, const Mat3& b);

/// Orientation distance modulo the diffraction ambiguity: in the
/// small-curvature limit, Friedel symmetry (I(q) = I(-q)) makes the
/// pattern of orientation R indistinguishable from that of Rz(pi) * R,
/// so orientation recovery is only defined up to that 2-fold symmetry.
double diffraction_orientation_error(const Mat3& a, const Mat3& b);

/// One protein conformation: atom positions in Angstrom-like units.
struct Conformation {
  std::string name;
  std::vector<Vec3> atoms;

  /// Radius of gyration — used by tests to check the two conformations
  /// have comparable size but different shape.
  double radius_of_gyration() const;
};

struct ProteinConfig {
  std::size_t core_atoms = 48;     // shared scattering mass
  std::size_t domain_atoms = 24;   // mobile subdomain
  double core_radius = 12.0;       // cloud extent
  double domain_offset = 14.0;     // subdomain distance from the core
  double domain_radius = 6.0;
  /// Domain rotation (radians) of conformation B relative to A about the
  /// hinge axis; the structural difference the classifier must detect.
  double conformation_angle = 2.6;
  std::uint64_t seed = 7;
};

/// Build the two conformations ("confA" mimicking 1n0u, "confB" mimicking
/// 1n0v). Both share core and domain atoms; B's domain is rotated about a
/// hinge axis through the core boundary.
std::pair<Conformation, Conformation> make_conformation_pair(
    const ProteinConfig& config);

/// Generalization: `count` conformations of the same protein, the k-th
/// with its domain swung by k * conformation_angle / (count - 1) — a
/// multi-class variant of the use case (the paper's XFEL study
/// distinguishes two conformations; real campaigns have more).
std::vector<Conformation> make_conformations(const ProteinConfig& config,
                                             std::size_t count);

}  // namespace a4nn::xfel
