#include "xfel/shapes_dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace a4nn::xfel {

std::vector<float> render_shape(ShapeClass shape, std::size_t px,
                                double jitter, double noise_sigma,
                                util::Rng& rng) {
  std::vector<float> img(px * px, 0.0f);
  const double half = static_cast<double>(px) / 2.0;
  const double cx = half + rng.uniform(-jitter, jitter);
  const double cy = half + rng.uniform(-jitter, jitter);
  const double r_outer = half * rng.uniform(0.5, 0.7);
  const double r_inner = r_outer * 0.55;
  const double bar_halfwidth = half * 0.18;
  const double angle = rng.uniform(0.0, M_PI);
  const double ca = std::cos(angle), sa = std::sin(angle);

  for (std::size_t y = 0; y < px; ++y) {
    for (std::size_t x = 0; x < px; ++x) {
      const double dx = static_cast<double>(x) + 0.5 - cx;
      const double dy = static_cast<double>(y) + 0.5 - cy;
      const double r = std::sqrt(dx * dx + dy * dy);
      bool lit = false;
      switch (shape) {
        case ShapeClass::kDisc: lit = r <= r_outer; break;
        case ShapeClass::kRing: lit = r <= r_outer && r >= r_inner; break;
        case ShapeClass::kBar: {
          // A rotated bar through the center.
          const double along = dx * ca + dy * sa;
          const double across = -dx * sa + dy * ca;
          lit = std::fabs(across) <= bar_halfwidth &&
                std::fabs(along) <= r_outer * 1.3;
          break;
        }
      }
      double v = (lit ? 1.0 : 0.0) + rng.normal(0.0, noise_sigma);
      img[y * px + x] = static_cast<float>(std::clamp(v, 0.0, 1.5));
    }
  }
  return img;
}

ShapesDataset generate_shapes_dataset(const ShapesDatasetConfig& config) {
  if (config.classes < 2 || config.classes > 3)
    throw std::invalid_argument("generate_shapes_dataset: classes must be 2 or 3");
  if (config.images_per_class == 0)
    throw std::invalid_argument("generate_shapes_dataset: empty dataset");
  if (config.train_fraction <= 0.0 || config.train_fraction >= 1.0)
    throw std::invalid_argument(
        "generate_shapes_dataset: train fraction must be in (0, 1)");

  util::Rng rng(config.seed);
  struct Sample {
    std::vector<float> image;
    std::int64_t label;
  };
  std::vector<Sample> samples;
  samples.reserve(config.classes * config.images_per_class);
  for (std::size_t i = 0; i < config.images_per_class; ++i) {
    for (std::size_t c = 0; c < config.classes; ++c) {
      samples.push_back(
          {render_shape(static_cast<ShapeClass>(c), config.image_px,
                        config.jitter, config.noise_sigma, rng),
           static_cast<std::int64_t>(c)});
    }
  }
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  ShapesDataset out;
  out.train = nn::Dataset(1, config.image_px, config.image_px);
  out.validation = nn::Dataset(1, config.image_px, config.image_px);
  const std::size_t train_count = static_cast<std::size_t>(
      config.train_fraction * static_cast<double>(samples.size()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Sample& s = samples[order[i]];
    (i < train_count ? out.train : out.validation).add_sample(s.image, s.label);
  }
  return out;
}

}  // namespace a4nn::xfel
