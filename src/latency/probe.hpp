// Measured-latency and roofline estimation for hardware-aware NAS.
//
// The search historically ranked candidates on analytic FLOPs — a proxy
// the autotuner work proved can diverge from wall-clock by integer factors
// depending on shape class. This module closes the gap the way
// elasticAI.explorer and NAS-Bench-201 do: measure inference latency per
// candidate at the *serving* micro-batch geometry (through the exact tuned
// GEMM paths the serving engine uses), and compute a bytes-moved /
// arithmetic-intensity roofline estimate from the same flops(Shape) walk
// that already prices the FLOPs objective.
//
// Determinism contract: the probe procedure is deterministic by
// construction — seeded inputs, fixed warm-up count, fixed repetition
// count, median-of-k aggregation — so two probes of the same model on an
// idle machine agree to measurement noise, and the roofline numbers are
// exact functions of the architecture (byte-stable across runs and hosts).
// The measured milliseconds themselves are machine-local: records carry a
// host fingerprint so replay on another machine knows to re-probe.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "nn/model.hpp"

namespace a4nn::latency {

/// Probe settings. The defaults mirror the serving engine's default
/// micro-batch width so the measured number prices what serving will pay.
struct ProbeConfig {
  /// Batch rows per timed forward pass (the serving micro-batch geometry).
  std::size_t batch = 8;
  /// Discarded warm-up passes (cache/allocator warm-up; also where the
  /// scratch arenas reach steady state).
  std::size_t warmup = 2;
  /// Timed passes; the reported latency is their median, the p99 the
  /// ceil(0.99*k)-th order statistic.
  std::size_t repeats = 9;
  /// Seed for the synthetic probe inputs (timing is input-value
  /// independent for this network family, but the inputs are still pinned
  /// so the procedure is reproducible end to end).
  std::uint64_t seed = 2023;
};

/// One probe outcome, all times in milliseconds per image.
struct ProbeResult {
  double median_ms = 0.0;  ///< median per-image latency across repeats
  double p99_ms = 0.0;     ///< p99 per-image latency across repeats
  std::vector<double> samples_ms;  ///< per-repeat per-image latencies
};

/// Stable fingerprint of the measuring host (hostname + hardware thread
/// count). Latency numbers are only comparable within one fingerprint.
const std::string& host_fingerprint();

class LatencyProbe {
 public:
  explicit LatencyProbe(ProbeConfig config);

  const ProbeConfig& config() const { return config_; }

  /// Timing hook for deterministic tests: given the forward callable for
  /// one batch, return the measured milliseconds for one pass. When unset,
  /// the probe times the real call with a steady clock.
  using MeasureHook = std::function<double(const std::function<void()>&)>;
  void set_measure_hook(MeasureHook hook) { hook_ = std::move(hook); }

  /// Probe an arbitrary forward callable at `input_shape` (one image,
  /// C/H/W). The callable receives a (batch x C x H x W) tensor.
  ProbeResult probe_fn(
      const std::function<void(const tensor::Tensor&)>& forward,
      const tensor::Shape& input_shape) const;

  /// Probe a float model (inference mode, whole-batch forward — the same
  /// call the serving engine issues per micro-batch).
  ProbeResult probe(nn::Model& model) const;

 private:
  ProbeConfig config_;
  MeasureHook hook_;
};

/// Roofline estimate for one layer of the forward pass.
struct LayerRoofline {
  std::string kind;
  std::uint64_t flops = 0;
  std::uint64_t bytes_moved = 0;
};

/// Whole-model roofline estimate at a given input shape (one image).
struct RooflineEstimate {
  std::uint64_t flops = 0;        ///< forward FLOPs per image
  std::uint64_t bytes_moved = 0;  ///< bytes read+written per image forward
  std::vector<LayerRoofline> layers;

  /// flops / bytes_moved (0 when no bytes move).
  double arithmetic_intensity() const;
  /// Lower latency bound (ms) on a machine with the given peak compute and
  /// memory bandwidth: max(compute time, memory time) — the roofline.
  double min_latency_ms(double flops_per_second,
                        double bytes_per_second) const;
};

/// Walk the trunk layer by layer with the existing flops(Shape) /
/// output_shape(Shape) accounting, charging each layer its activation
/// traffic (input read + output write) plus one streaming read of its
/// parameters. float32 everywhere — the estimate prices the float serving
/// path; the int8 path moves ~4x fewer weight bytes, which is exactly why
/// it wins at memory-bound serving shapes. Non-const only because
/// Layer::params() is non-const; nothing is written.
RooflineEstimate roofline_estimate(nn::Sequential& trunk,
                                   const tensor::Shape& input_shape);

/// Convenience: roofline of a whole model at its own input shape.
RooflineEstimate roofline_estimate(nn::Model& model);

}  // namespace a4nn::latency
