#include "latency/probe.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"

namespace a4nn::latency {

const std::string& host_fingerprint() {
  static const std::string fingerprint = [] {
    char name[256] = {0};
    if (::gethostname(name, sizeof(name) - 1) != 0) name[0] = '\0';
    std::string host = name[0] ? name : "unknown-host";
    return host + "/" + std::to_string(std::thread::hardware_concurrency()) +
           "t";
  }();
  return fingerprint;
}

LatencyProbe::LatencyProbe(ProbeConfig config) : config_(config) {
  if (config_.batch == 0)
    throw std::invalid_argument("LatencyProbe: batch must be positive");
  if (config_.repeats == 0)
    throw std::invalid_argument("LatencyProbe: repeats must be positive");
}

namespace {

double measure_ms(const std::function<void()>& pass) {
  const auto t0 = std::chrono::steady_clock::now();
  pass();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

ProbeResult LatencyProbe::probe_fn(
    const std::function<void(const tensor::Tensor&)>& forward,
    const tensor::Shape& input_shape) const {
  // Seeded synthetic batch at the serving geometry.
  tensor::Shape shape;
  shape.reserve(1 + input_shape.size());
  shape.push_back(config_.batch);
  shape.insert(shape.end(), input_shape.begin(), input_shape.end());
  tensor::Tensor batch(std::move(shape));
  util::Rng rng(config_.seed);
  for (std::size_t i = 0; i < batch.numel(); ++i)
    batch.data()[i] = static_cast<float>(rng.uniform());

  const std::function<void()> pass = [&] { forward(batch); };
  for (std::size_t i = 0; i < config_.warmup; ++i) pass();

  ProbeResult result;
  result.samples_ms.reserve(config_.repeats);
  const double per_image = 1.0 / static_cast<double>(config_.batch);
  for (std::size_t i = 0; i < config_.repeats; ++i) {
    const double pass_ms = hook_ ? hook_(pass) : measure_ms(pass);
    result.samples_ms.push_back(pass_ms * per_image);
  }

  std::vector<double> sorted = result.samples_ms;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t k = sorted.size();
  result.median_ms = (k % 2 == 1)
                         ? sorted[k / 2]
                         : 0.5 * (sorted[k / 2 - 1] + sorted[k / 2]);
  const std::size_t p99 = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(k)));
  result.p99_ms = sorted[p99 == 0 ? 0 : p99 - 1];
  return result;
}

ProbeResult LatencyProbe::probe(nn::Model& model) const {
  return probe_fn([&model](const tensor::Tensor& batch) { model.predict(batch); },
                  model.input_shape());
}

double RooflineEstimate::arithmetic_intensity() const {
  if (bytes_moved == 0) return 0.0;
  return static_cast<double>(flops) / static_cast<double>(bytes_moved);
}

double RooflineEstimate::min_latency_ms(double flops_per_second,
                                        double bytes_per_second) const {
  if (flops_per_second <= 0.0 || bytes_per_second <= 0.0)
    throw std::invalid_argument("RooflineEstimate: peaks must be positive");
  const double compute_s = static_cast<double>(flops) / flops_per_second;
  const double memory_s = static_cast<double>(bytes_moved) / bytes_per_second;
  return 1e3 * std::max(compute_s, memory_s);
}

RooflineEstimate roofline_estimate(nn::Sequential& trunk,
                                   const tensor::Shape& input_shape) {
  RooflineEstimate est;
  est.layers.reserve(trunk.layer_count());
  tensor::Shape shape = input_shape;
  for (std::size_t i = 0; i < trunk.layer_count(); ++i) {
    nn::Layer& layer = trunk.layer(i);
    const tensor::Shape out = layer.output_shape(shape);
    LayerRoofline lr;
    lr.kind = layer.kind();
    lr.flops = layer.flops(shape);
    // Activation traffic (input read + output write) plus one streaming
    // pass over the parameters — the canonical inference roofline, pricing
    // the float32 path.
    std::uint64_t param_elems = 0;
    for (const auto& slot : layer.params())
      param_elems += tensor::shape_numel(slot.value->shape());
    lr.bytes_moved = static_cast<std::uint64_t>(sizeof(float)) *
                     (tensor::shape_numel(shape) + tensor::shape_numel(out) +
                      param_elems);
    est.flops += lr.flops;
    est.bytes_moved += lr.bytes_moved;
    est.layers.push_back(std::move(lr));
    shape = out;
  }
  return est;
}

RooflineEstimate roofline_estimate(nn::Model& model) {
  return roofline_estimate(model.trunk(), model.input_shape());
}

}  // namespace a4nn::latency
