#include "core/a4nn.hpp"

#include "util/log.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace a4nn::core {

util::Json WorkflowConfig::to_json() const {
  util::Json j = util::Json::object();
  util::Json ds = util::Json::object();
  ds["intensity"] = xfel::beam_name(dataset.intensity);
  ds["fluence"] = xfel::beam_fluence(dataset.intensity);
  ds["images_per_class"] = dataset.images_per_class;
  ds["conformations"] = dataset.conformations;
  ds["detector_pixels"] = dataset.detector.pixels;
  ds["train_fraction"] = dataset.train_fraction;
  ds["seed"] = dataset.seed;
  j["dataset"] = std::move(ds);
  j["nas"] = nas.to_json();
  j["trainer"] = trainer.to_json();
  util::Json cl = util::Json::object();
  cl["num_gpus"] = cluster.num_gpus;
  cl["flops_per_second"] = cluster.cost.flops_per_second;
  cl["fault"] = cluster.fault.to_json();
  j["cluster"] = std::move(cl);
  j["memo"] = std::string(nas::memo_mode_name(memo));
  // Conditional keys: default runs (flops objective, no coalescing) keep
  // their historical config bytes — and therefore the cluster handshake
  // CRC — unchanged. Non-default modes change the CRC on purpose: master
  // and workers must agree on the objective before sharing a search.
  if (coalesce_duplicates) j["coalesce"] = true;
  if (nas.objective != nas::ObjectiveMode::kFlops) {
    util::Json pr = util::Json::object();
    pr["batch"] = probe.batch;
    pr["warmup"] = probe.warmup;
    pr["repeats"] = probe.repeats;
    pr["seed"] = probe.seed;
    j["probe"] = std::move(pr);
  }
  j["seed"] = seed;
  return j;
}

util::Json ClusterTotals::to_json() const {
  util::Json j = util::Json::object();
  j["remote_jobs"] = remote_jobs;
  j["remote_fallbacks"] = remote_fallbacks;
  j["dispatches"] = dispatches;
  j["redispatches"] = redispatches;
  j["worker_failures"] = worker_failures;
  j["worker_quarantines"] = worker_quarantines;
  j["heartbeat_timeouts"] = heartbeat_timeouts;
  j["stale_results"] = stale_results;
  j["corrupt_frames"] = corrupt_frames;
  j["corrupt_results"] = corrupt_results;
  j["local_fallbacks"] = local_fallbacks;
  return j;
}

util::Json RunSummary::to_json() const {
  util::Json j = util::Json::object();
  j["faults"] = faults.to_json();
  j["failed_evaluations"] = failed_evaluations;
  j["engine_overhead_seconds"] = engine_overhead_seconds;
  j["metrics"] = metrics;
  j["resumed_evaluations"] = resumed_evaluations;
  j["resumed_epochs"] = resumed_epochs;
  j["genome_mismatches"] = genome_mismatches;
  j["fsck_quarantined"] = fsck_quarantined;
  j["fsck_tmp_removed"] = fsck_tmp_removed;
  j["fsck_crc_mismatches"] = fsck_crc_mismatches;
  j["fsck_journal_repairs"] = fsck_journal_repairs;
  j["memo_hits"] = memo_hits;
  j["inherited_starts"] = inherited_starts;
  j["engine_overhead_replayed_seconds"] = engine_overhead_replayed_seconds;
  j["coalesced_evaluations"] = coalesced_evaluations;
  j["engine_overhead_coalesced_seconds"] = engine_overhead_coalesced_seconds;
  j["latency_probes"] = latency_probes;
  j["cluster"] = cluster.to_json();
  return j;
}

A4nnWorkflow::A4nnWorkflow(WorkflowConfig config)
    : config_(std::move(config)),
      owned_data_(xfel::generate_xfel_dataset(config_.dataset)),
      data_(&*owned_data_) {}

A4nnWorkflow::A4nnWorkflow(WorkflowConfig config,
                           const xfel::XfelDataset& shared_data)
    : config_(std::move(config)), data_(&shared_data) {}

WorkflowResult A4nnWorkflow::run() {
  util::Timer wall;
  // Keep the trainer's virtual cost model consistent with the cluster's,
  // and the classifier head consistent with the dataset's class count.
  config_.trainer.cost = config_.cluster.cost;
  config_.nas.space.classes = data_->train.num_classes();
  // The fault injector inherits the workflow seed unless pinned, so a
  // faulty run replays bit-identically without extra configuration.
  if (config_.cluster.fault.enabled && config_.cluster.fault.seed == 0)
    config_.cluster.fault.seed = config_.seed;

  WorkflowResult result;
  // Declared before every component that records into it, so the registry
  // outlives them all. One registry per run: two workflows in one process
  // never share totals.
  util::metrics::Registry registry;
  util::trace::Scope run_span("workflow.run", "core");
  if (util::trace::enabled())
    util::trace::name_process(util::trace::kHostPid, "a4nn host");

  const bool resuming = config_.resume_from_commons && config_.lineage;
  if (resuming) {
    // A crashed writer can leave truncated or corrupt state behind; the
    // deep fsck checks every artifact against the manifest journal now so
    // a record that parses but fails its CRC is never replayed into the
    // Pareto front. Partially-trained models then continue from their
    // newest intact epoch checkpoint.
    std::error_code ec;
    if (std::filesystem::exists(config_.lineage->root / "models", ec)) {
      lineage::DataCommons commons(config_.lineage->root);
      const lineage::FsckReport fsck = commons.fsck(lineage::FsckMode::kDeep);
      result.summary.fsck_quarantined = fsck.files_quarantined;
      result.summary.fsck_tmp_removed = fsck.tmp_files_removed;
      result.summary.fsck_crc_mismatches = fsck.integrity.crc_mismatches;
      result.summary.fsck_journal_repairs = fsck.integrity.journal_torn_lines +
                                            fsck.integrity.missing_files +
                                            fsck.integrity.unjournaled_adopted;
      if (!fsck.clean())
        util::log_warn("resume: fsck quarantined ", fsck.files_quarantined,
                       " file(s), removed ", fsck.tmp_files_removed,
                       " stale tmp file(s), repaired ",
                       result.summary.fsck_journal_repairs,
                       " journal entr(ies)");
    }
    config_.trainer.resume_partial = true;
  }

  std::optional<lineage::LineageTracker> tracker;
  if (config_.lineage) {
    tracker.emplace(*config_.lineage);
    tracker->set_metrics(&registry);
    tracker->record_search_config(config_.to_json());
  }

  orchestrator::TrainingLoop loop(data_->train, data_->validation,
                                  config_.trainer,
                                  tracker ? &*tracker : nullptr);
  loop.set_metrics(&registry);
  // The remote backend (cluster master) outlives this run but the registry
  // does not: detach on every exit path, including WorkflowInterrupted.
  struct RemoteMetricsGuard {
    sched::RemoteExecutor* remote;
    ~RemoteMetricsGuard() {
      if (remote) remote->set_metrics(nullptr);
    }
  } remote_guard{config_.cluster.remote};
  if (config_.cluster.remote) config_.cluster.remote->set_metrics(&registry);
  sched::ResourceManager cluster(config_.cluster);
  cluster.set_metrics(&registry);
  // Declared before the evaluator so it outlives it (memo.hpp contract):
  // the evaluator holds a raw pointer to the memo until its destructor.
  nas::FitnessMemo memo(config_.memo);
  orchestrator::WorkflowEvaluator evaluator(loop, cluster, config_.nas.space,
                                            config_.seed,
                                            tracker ? &*tracker : nullptr);
  evaluator.set_metrics(&registry);
  evaluator.set_crash_after(config_.crash_after_evaluations);
  if (config_.memo != nas::MemoMode::kOff) evaluator.set_memo(&memo);
  if (config_.coalesce_duplicates && config_.memo == nas::MemoMode::kOff)
    util::log_warn(
        "coalesce: duplicate coalescing needs genome-keyed training seeds "
        "(memo mode cold or on); request ignored");
  evaluator.set_coalesce(config_.coalesce_duplicates);
  evaluator.set_objective(config_.nas.objective);
  // Hardware-aware objectives: every record the search ranks must carry a
  // latency measured on this machine; the evaluator re-probes anything the
  // memo or commons replays from another host.
  std::optional<latency::LatencyProbe> probe;
  if (config_.nas.objective != nas::ObjectiveMode::kFlops) {
    probe.emplace(config_.probe);
    evaluator.set_latency_probe(&*probe);
  }
  if (resuming) {
    // Reuse whatever record trails a previous (interrupted) run left in
    // the commons; deterministic seeding makes the replay exact. The memo
    // warms from the same records, so a genome evaluated before the crash
    // is a cache hit even under a fresh model id.
    std::error_code ec;
    if (std::filesystem::exists(config_.lineage->root / "models", ec)) {
      lineage::DataCommons commons(config_.lineage->root);
      std::vector<nas::EvaluationRecord> stored = commons.load_records();
      if (config_.memo != nas::MemoMode::kOff) memo.warm(stored);
      evaluator.preload_records(std::move(stored));
    }
  }
  nas::NsgaNetSearch search(config_.nas, evaluator);

  result.search = search.run();
  if (tracker && config_.memo != nas::MemoMode::kOff) {
    // Journal the genome->evaluation index. Built from the history alone,
    // so kCold and kOn runs commit byte-identical indexes.
    tracker->record_artifact("memo_index.json",
                             nas::memo_index_json(result.search.history));
  }
  result.resumed_evaluations = evaluator.resumed_count();
  result.schedules = evaluator.schedules();
  // The fault totals are read back from the registry (a derived view);
  // because the scheduler adds its per-generation totals in schedule
  // order, this equals fault_totals(result.schedules) bit-for-bit
  // (test_trace_metrics asserts the two overloads agree).
  result.summary.metrics = registry.snapshot();
  result.summary.faults = analytics::fault_totals(result.summary.metrics);
  result.summary.failed_evaluations = evaluator.failed_count();
  if (result.summary.metrics.contains("counters")) {
    result.summary.engine_overhead_seconds =
        result.summary.metrics.at("counters").number_or(
            "penguin.engine_overhead_seconds", 0.0);
  }
  result.summary.resumed_evaluations = evaluator.resumed_count();
  result.summary.resumed_epochs = loop.resumed_epochs();
  result.summary.genome_mismatches = evaluator.genome_mismatches();
  result.summary.memo_hits = evaluator.memo_hits();
  result.summary.inherited_starts = evaluator.inherited_count();
  if (result.summary.metrics.contains("counters")) {
    result.summary.engine_overhead_replayed_seconds =
        result.summary.metrics.at("counters").number_or(
            "penguin.engine_overhead_replayed_seconds", 0.0);
    result.summary.engine_overhead_coalesced_seconds =
        result.summary.metrics.at("counters").number_or(
            "penguin.engine_overhead_coalesced_seconds", 0.0);
  }
  result.summary.coalesced_evaluations = evaluator.coalesced_count();
  result.summary.latency_probes = evaluator.probed_count();
  if (result.summary.metrics.contains("counters")) {
    const util::Json& counters = result.summary.metrics.at("counters");
    const auto count = [&counters](const char* name) {
      return static_cast<std::size_t>(counters.number_or(name, 0.0));
    };
    ClusterTotals& ct = result.summary.cluster;
    ct.remote_jobs = count("sched.remote_jobs");
    ct.remote_fallbacks = count("sched.remote_fallbacks");
    ct.dispatches = count("cluster.dispatches");
    ct.redispatches = count("cluster.redispatches");
    ct.worker_failures = count("cluster.worker_failures");
    ct.worker_quarantines = count("cluster.worker_quarantines");
    ct.heartbeat_timeouts = count("cluster.heartbeat_timeouts");
    ct.stale_results = count("cluster.stale_results");
    ct.corrupt_frames = count("cluster.corrupt_frames");
    ct.corrupt_results = count("cluster.corrupt_results");
    ct.local_fallbacks = count("cluster.local_fallbacks");
  }
  result.virtual_wall_seconds = cluster.virtual_now();
  result.measured_wall_seconds = wall.seconds();
  if (config_.lineage) result.commons_root = config_.lineage->root;
  return result;
}

WorkflowConfig standalone_variant(WorkflowConfig config) {
  config.trainer.use_prediction_engine = false;
  // NSGA-Net standalone does not support multiple GPUs (paper §4.2.2).
  config.cluster.num_gpus = 1;
  return config;
}

}  // namespace a4nn::core
