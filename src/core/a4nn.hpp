// A4NN — the user-facing, composable workflow.
//
// One configuration object wires together every component of Figure 1:
// the dataset (data path), the NAS (NSGA-Net settings), the prediction
// engine (Table 1 settings), the resource manager (GPU count), and the
// lineage tracker (commons location). `run()` executes the full search
// and returns the search history plus scheduling/timing information.
// Setting `use_prediction_engine = false` yields the standalone-NSGA-Net
// baseline on the exact same plumbing — the comparison the paper's
// evaluation is built around.
#pragma once

#include <optional>

#include "analytics/analyzer.hpp"
#include "latency/probe.hpp"
#include "lineage/tracker.hpp"
#include "nas/memo.hpp"
#include "nas/search.hpp"
#include "orchestrator/workflow_evaluator.hpp"
#include "xfel/dataset.hpp"

namespace a4nn::core {

struct WorkflowConfig {
  /// Scientific data: customize the dataset without touching the rest.
  xfel::XfelDatasetConfig dataset;
  /// NAS settings (Table 2).
  nas::NsgaNetConfig nas;
  /// Training-loop settings, including the prediction-engine settings
  /// (Table 1) and whether the engine is used at all.
  orchestrator::TrainerConfig trainer;
  /// Resource manager: simulated GPU cluster.
  sched::ClusterConfig cluster;
  /// Data commons root; nullopt disables lineage tracking.
  std::optional<lineage::TrackerConfig> lineage;
  /// Resume an interrupted run: record trails already present in the
  /// commons are reused instead of retraining (requires `lineage` and the
  /// same configuration/seed as the original run). The commons is fsck'd
  /// first — corrupt files are quarantined instead of killing the resume —
  /// and partially-trained models continue from their last epoch
  /// checkpoint instead of restarting at epoch 1.
  bool resume_from_commons = false;
  /// Fault injection for tests and drills: simulate process death after
  /// this many freshly-trained records reach the commons (0 disables).
  /// When hit, run() throws orchestrator::WorkflowInterrupted.
  std::size_t crash_after_evaluations = 0;
  /// Search-time fitness memoization (nas/memo.hpp). kOff keeps the legacy
  /// model-id-keyed training seeds; kCold switches to genome-keyed seeds
  /// without reuse (the differential control); kOn adds O(1) replay of
  /// already-evaluated genomes. kCold and kOn runs of the same
  /// configuration are bit-identical up to wall-clock fields. The memo is
  /// warmed from the commons on resume, and `memo_index.json` is journaled
  /// at the end of the run in both non-kOff modes.
  nas::MemoMode memo = nas::MemoMode::kOff;
  /// Same-generation duplicate coalescing (requires a genome-keyed memo,
  /// i.e. memo != kOff): duplicate genomes within a generation train once
  /// and the copies ride the leader's record. Journal bytes are provably
  /// unchanged; only the wall clock and the nas.coalesced counter move.
  bool coalesce_duplicates = false;
  /// Latency-probe settings, used when nas.objective requests measured
  /// hardware objectives (kLatency/kBoth).
  latency::ProbeConfig probe;
  std::uint64_t seed = 2023;

  util::Json to_json() const;
};

/// Remote-execution accounting for one run(), derived from the registry's
/// "sched.remote_*" and "cluster.*" counters. All zeros for purely local
/// runs (and for cluster runs that degraded to local the whole way).
struct ClusterTotals {
  std::size_t remote_jobs = 0;       // jobs served by cluster workers
  std::size_t remote_fallbacks = 0;  // offered remotely, ran locally
  std::size_t dispatches = 0;        // first sends of a job to a worker
  std::size_t redispatches = 0;      // re-sends after a worker failure
  std::size_t worker_failures = 0;   // drops, timeouts, corrupt streams
  std::size_t worker_quarantines = 0;
  std::size_t heartbeat_timeouts = 0;
  std::size_t stale_results = 0;     // replies racing their own re-dispatch
  std::size_t corrupt_frames = 0;    // wire frames failing CRC/structure
  std::size_t corrupt_results = 0;   // CRC-valid but wrong-model records
  std::size_t local_fallbacks = 0;   // declines answered by local execution

  util::Json to_json() const;
};

/// Fault-tolerance and recovery accounting for one run().
struct RunSummary {
  /// Derived view of the run's metrics registry ("sched.*" counters); the
  /// registry is populated in schedule order, so these equal
  /// analytics::fault_totals over the run's schedules bit-for-bit.
  analytics::FaultTotals faults;
  /// Evaluations whose training job exhausted its retries. Their records
  /// carry failed=true, no fitness, and never reach selection, the Pareto
  /// front, or the commons.
  std::size_t failed_evaluations = 0;
  /// Host seconds spent inside the prediction engine across every model
  /// (derived from the "penguin.engine_overhead_seconds" counter, which is
  /// accumulated in record order and bit-matches summing the history).
  double engine_overhead_seconds = 0.0;
  /// Full metrics-registry snapshot for this run: counters, gauges, and
  /// histograms from every instrumented layer (see util/metrics.hpp).
  util::Json metrics = util::Json::object();
  /// Evaluations reused whole from the commons when resuming.
  std::size_t resumed_evaluations = 0;
  /// Training epochs skipped by resuming partially-trained models from
  /// their epoch checkpoints.
  std::size_t resumed_epochs = 0;
  /// Preloaded records rejected because their stored genome mismatched.
  std::size_t genome_mismatches = 0;
  /// Files the pre-resume deep fsck quarantined or removed (0 on fresh
  /// runs). Quarantines include parse failures and checksum mismatches.
  std::size_t fsck_quarantined = 0;
  std::size_t fsck_tmp_removed = 0;
  /// Artifacts whose stored bytes failed their manifest-journal CRC.
  std::size_t fsck_crc_mismatches = 0;
  /// Journal repairs: torn lines dropped, missing entries pruned, and
  /// unjournaled artifacts adopted back.
  std::size_t fsck_journal_repairs = 0;
  /// Evaluations satisfied by memo-cache replay instead of training, and
  /// children warm-started from an ancestor checkpoint.
  std::size_t memo_hits = 0;
  std::size_t inherited_starts = 0;
  /// Engine overhead carried by replayed records (already paid by their
  /// canonical evaluations; kept out of engine_overhead_seconds so cache
  /// hits never inflate the fresh-overhead total).
  double engine_overhead_replayed_seconds = 0.0;
  /// Same-generation duplicates whose record rode a leader's training
  /// (duplicate coalescing), and the engine overhead those copies carry
  /// (paid once by the leader, split out like the replayed bucket).
  std::size_t coalesced_evaluations = 0;
  double engine_overhead_coalesced_seconds = 0.0;
  /// Latency probes run for hardware-aware objectives (0 in flops mode).
  std::size_t latency_probes = 0;
  /// Remote-execution accounting (all zeros without a cluster backend).
  ClusterTotals cluster;

  util::Json to_json() const;
};

struct WorkflowResult {
  nas::SearchResult search;
  /// Evaluations reused from the commons when resuming (0 otherwise).
  std::size_t resumed_evaluations = 0;
  /// Per-generation placement/timing from the resource manager.
  std::vector<sched::GenerationSchedule> schedules;
  /// Fault/retry/recovery accounting for the whole run.
  RunSummary summary;
  /// Virtual wall time of the whole search (last generation barrier).
  double virtual_wall_seconds = 0.0;
  /// Measured host time for the whole search.
  double measured_wall_seconds = 0.0;
  /// Commons location, when lineage tracking was enabled.
  std::optional<std::filesystem::path> commons_root;
};

class A4nnWorkflow {
 public:
  /// Generates the dataset up front (or accepts a pre-generated one via
  /// the second constructor, so A4NN and the baseline share data).
  explicit A4nnWorkflow(WorkflowConfig config);
  A4nnWorkflow(WorkflowConfig config, const xfel::XfelDataset& shared_data);

  WorkflowResult run();

  const xfel::XfelDataset& dataset() const { return *data_; }
  const WorkflowConfig& config() const { return config_; }

 private:
  WorkflowConfig config_;
  std::optional<xfel::XfelDataset> owned_data_;
  const xfel::XfelDataset* data_;
};

/// Convenience: the same search without the prediction engine (standalone
/// NSGA-Net), sharing the given dataset.
WorkflowConfig standalone_variant(WorkflowConfig config);

}  // namespace a4nn::core
