#include "xpsi/xpsi.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "nn/layers.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace a4nn::xpsi {

XpsiClassifier::XpsiClassifier(XpsiConfig config) : config_(std::move(config)) {
  if (config_.latent_dim == 0 || config_.hidden_dim == 0)
    throw std::invalid_argument("XpsiClassifier: zero-sized layers");
  if (config_.k_neighbors == 0)
    throw std::invalid_argument("XpsiClassifier: k must be >= 1");
}

std::int64_t knn_predict(const std::vector<std::vector<float>>& train_points,
                         std::span<const std::int64_t> train_labels,
                         std::span<const float> query, std::size_t k) {
  if (train_points.size() != train_labels.size() || train_points.empty())
    throw std::invalid_argument("knn_predict: bad training set");
  k = std::min(k, train_points.size());

  std::vector<std::pair<double, std::int64_t>> dist;
  dist.reserve(train_points.size());
  for (std::size_t i = 0; i < train_points.size(); ++i) {
    const auto& p = train_points[i];
    if (p.size() != query.size())
      throw std::invalid_argument("knn_predict: dimension mismatch");
    double acc = 0.0;
    for (std::size_t d = 0; d < p.size(); ++d) {
      const double diff = static_cast<double>(p[d]) - query[d];
      acc += diff * diff;
    }
    dist.emplace_back(acc, train_labels[i]);
  }
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k),
                    dist.end());
  // Majority vote over the k nearest; ties resolved to the smaller label
  // (deterministic).
  std::vector<std::size_t> votes;
  for (std::size_t i = 0; i < k; ++i) {
    const auto label = static_cast<std::size_t>(dist[i].second);
    if (label >= votes.size()) votes.resize(label + 1, 0);
    ++votes[label];
  }
  return static_cast<std::int64_t>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

XpsiResult XpsiClassifier::fit_and_evaluate(const nn::Dataset& train,
                                            const nn::Dataset& validation) {
  util::Timer wall;
  util::Rng rng(config_.seed);
  const std::size_t input_dim = train.image_numel();

  encoder_ = std::make_unique<nn::Sequential>();
  if (config_.convolutional) {
    // XPSI-style conv feature extractor: two strided conv+relu stages,
    // then a linear bottleneck.
    const std::size_t c = config_.conv_channels;
    encoder_->append(std::make_unique<nn::Conv2d>(train.channels(), c, 3,
                                                  /*stride=*/2, 1, rng));
    encoder_->append(std::make_unique<nn::ReLU>());
    encoder_->append(std::make_unique<nn::Conv2d>(c, 2 * c, 3, 2, 1, rng));
    encoder_->append(std::make_unique<nn::ReLU>());
    encoder_->append(std::make_unique<nn::Flatten>());
    const std::size_t conv_out =
        encoder_->output_shape(train.image_shape())[0];
    encoder_->append(
        std::make_unique<nn::Linear>(conv_out, config_.latent_dim, rng));
  } else {
    encoder_->append(std::make_unique<nn::Flatten>());
    encoder_->append(
        std::make_unique<nn::Linear>(input_dim, config_.hidden_dim, rng));
    encoder_->append(std::make_unique<nn::ReLU>());
    encoder_->append(std::make_unique<nn::Linear>(config_.hidden_dim,
                                                  config_.latent_dim, rng));
  }
  decoder_ = std::make_unique<nn::Sequential>();
  decoder_->append(
      std::make_unique<nn::Linear>(config_.latent_dim, config_.hidden_dim, rng));
  decoder_->append(std::make_unique<nn::ReLU>());
  decoder_->append(
      std::make_unique<nn::Linear>(config_.hidden_dim, input_dim, rng));

  nn::Adam opt(config_.learning_rate);
  auto enc_slots = encoder_->params();
  auto dec_slots = decoder_->params();
  std::vector<nn::ParamSlot> all_slots = enc_slots;
  all_slots.insert(all_slots.end(), dec_slots.begin(), dec_slots.end());

  XpsiResult result;
  for (std::size_t epoch = 0; epoch < config_.autoencoder_epochs; ++epoch) {
    nn::BatchIterator it(train.size(), config_.batch_size, rng);
    double mse_sum = 0.0;
    std::size_t seen = 0;
    for (auto idx = it.next(); !idx.empty(); idx = it.next()) {
      const auto batch = train.gather(idx);
      encoder_->zero_grad();
      decoder_->zero_grad();
      const nn::Tensor latent = encoder_->forward(batch.images, true);
      const nn::Tensor recon = decoder_->forward(latent, true);
      // MSE loss against the flattened input.
      const nn::Tensor target =
          batch.images.reshaped({idx.size(), input_dim});
      nn::Tensor grad(recon.shape());
      double mse = 0.0;
      const double scale =
          2.0 / static_cast<double>(recon.numel());
      for (std::size_t i = 0; i < recon.numel(); ++i) {
        const double diff = recon[i] - target[i];
        mse += diff * diff;
        grad[i] = static_cast<float>(scale * diff);
      }
      mse /= static_cast<double>(recon.numel());
      encoder_->backward(decoder_->backward(grad));
      opt.step(all_slots);
      mse_sum += mse * static_cast<double>(idx.size());
      seen += idx.size();
    }
    result.mse_history.push_back(mse_sum / static_cast<double>(seen));
  }
  result.reconstruction_mse = result.mse_history.back();

  // Embed both splits and run kNN on the features.
  auto train_latents = embed(train);
  auto val_latents = embed(validation);
  if (config_.radial_features) {
    auto append_radial = [&](std::vector<std::vector<float>>& rows,
                             const nn::Dataset& ds) {
      for (std::size_t i = 0; i < ds.size(); ++i) {
        const auto prof =
            radial_profile(ds.image(i), ds.height(), ds.width());
        rows[i].insert(rows[i].end(), prof.begin(), prof.end());
      }
    };
    append_radial(train_latents, train);
    append_radial(val_latents, validation);
  }
  if (config_.standardize_latents) {
    // Per-dimension standardization fitted on the training features only.
    const std::size_t dim = train_latents.front().size();
    std::vector<double> mean(dim, 0.0), var(dim, 0.0);
    for (const auto& row : train_latents) {
      for (std::size_t d = 0; d < dim; ++d) mean[d] += row[d];
    }
    for (auto& m : mean) m /= static_cast<double>(train_latents.size());
    for (const auto& row : train_latents) {
      for (std::size_t d = 0; d < dim; ++d) {
        const double diff = row[d] - mean[d];
        var[d] += diff * diff;
      }
    }
    for (auto& v : var) v /= static_cast<double>(train_latents.size());
    auto standardize = [&](std::vector<std::vector<float>>& rows) {
      for (auto& row : rows) {
        for (std::size_t d = 0; d < dim; ++d) {
          row[d] = static_cast<float>((row[d] - mean[d]) /
                                      std::sqrt(var[d] + 1e-8));
        }
      }
    };
    standardize(train_latents);
    standardize(val_latents);
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < val_latents.size(); ++i) {
    const std::int64_t predicted =
        knn_predict(train_latents, train.labels(), val_latents[i],
                    config_.k_neighbors);
    if (predicted == validation.label(i)) ++correct;
  }
  result.validation_accuracy = 100.0 * static_cast<double>(correct) /
                               static_cast<double>(validation.size());

  // Virtual single-GPU cost: autoencoder epochs at the shared cost model
  // (forward+backward over the virtual train set) plus one embedding pass.
  const tensor::Shape img_shape = train.image_shape();
  const std::uint64_t enc_flops = encoder_->flops(img_shape);
  const std::uint64_t dec_flops =
      decoder_->flops({config_.latent_dim});
  result.autoencoder_flops = enc_flops + dec_flops;
  result.virtual_seconds =
      static_cast<double>(config_.autoencoder_epochs) *
      config_.cost.epoch_seconds(result.autoencoder_flops);
  result.wall_seconds = wall.seconds();
  return result;
}

XpsiClassifier::OrientationRecovery
XpsiClassifier::evaluate_orientation_recovery(
    const nn::Dataset& train, std::span<const xfel::Mat3> train_orientations,
    const nn::Dataset& validation,
    std::span<const xfel::Mat3> validation_orientations) {
  if (train.size() != train_orientations.size() ||
      validation.size() != validation_orientations.size())
    throw std::invalid_argument(
        "evaluate_orientation_recovery: orientation metadata mismatch");
  const auto train_latents = embed(train);
  const auto val_latents = embed(validation);

  const double rad2deg = 180.0 / M_PI;
  std::vector<double> errors;
  errors.reserve(validation.size());
  double chance = 0.0;
  util::Rng rng(config_.seed ^ 0xBEEF);
  for (std::size_t v = 0; v < val_latents.size(); ++v) {
    // Nearest training shot in latent space (restricted to the same
    // conformation class — XPSI predicts orientation after classifying).
    double best_dist = std::numeric_limits<double>::infinity();
    std::size_t best = 0;
    for (std::size_t t = 0; t < train_latents.size(); ++t) {
      if (train.label(t) != validation.label(v)) continue;
      double acc = 0.0;
      for (std::size_t d = 0; d < val_latents[v].size(); ++d) {
        const double diff =
            static_cast<double>(train_latents[t][d]) - val_latents[v][d];
        acc += diff * diff;
      }
      if (acc < best_dist) {
        best_dist = acc;
        best = t;
      }
    }
    errors.push_back(rad2deg *
                     xfel::diffraction_orientation_error(train_orientations[best],
                                                  validation_orientations[v]));
    // Chance baseline: a uniformly random training orientation.
    const std::size_t random_pick = rng.uniform_index(train.size());
    chance += rad2deg * xfel::diffraction_orientation_error(
                            train_orientations[random_pick],
                            validation_orientations[v]);
  }
  OrientationRecovery out;
  out.mean_error_deg = util::mean(errors);
  out.median_error_deg = util::median(errors);
  out.chance_error_deg = chance / static_cast<double>(errors.size());
  return out;
}

std::vector<float> XpsiClassifier::radial_profile(std::span<const float> image,
                                                  std::size_t height,
                                                  std::size_t width) {
  if (image.size() != height * width)
    throw std::invalid_argument("radial_profile: image size mismatch");
  const std::size_t bins = std::max<std::size_t>(2, std::min(height, width) / 2);
  std::vector<float> profile(bins, 0.0f);
  std::vector<std::size_t> counts(bins, 0);
  const double cy = (static_cast<double>(height) - 1.0) / 2.0;
  const double cx = (static_cast<double>(width) - 1.0) / 2.0;
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const double dy = static_cast<double>(y) - cy;
      const double dx = static_cast<double>(x) - cx;
      const std::size_t r = std::min<std::size_t>(
          bins - 1, static_cast<std::size_t>(std::sqrt(dy * dy + dx * dx)));
      profile[r] += image[y * width + x];
      ++counts[r];
    }
  }
  for (std::size_t r = 0; r < bins; ++r) {
    if (counts[r] > 0) profile[r] /= static_cast<float>(counts[r]);
  }
  return profile;
}

std::vector<std::vector<float>> XpsiClassifier::embed(const nn::Dataset& data) {
  if (!encoder_)
    throw std::logic_error("XpsiClassifier::embed: call fit_and_evaluate first");
  std::vector<std::vector<float>> out;
  out.reserve(data.size());
  util::Rng noshuffle(0);
  nn::BatchIterator it(data.size(), 64, noshuffle, /*shuffle=*/false);
  for (auto idx = it.next(); !idx.empty(); idx = it.next()) {
    const auto batch = data.gather(idx);
    const nn::Tensor latent = encoder_->forward(batch.images, false);
    for (std::size_t b = 0; b < idx.size(); ++b) {
      std::vector<float> row(config_.latent_dim);
      for (std::size_t d = 0; d < config_.latent_dim; ++d)
        row[d] = latent[b * config_.latent_dim + d];
      out.push_back(std::move(row));
    }
  }
  return out;
}

}  // namespace a4nn::xpsi
