// XPSI baseline (Olaya et al.): the state of the art the paper compares
// against — an autoencoder learns a compact latent representation of the
// diffraction patterns, then a k-Nearest-Neighbors classifier predicts the
// conformation from the latent features. Reimplemented on the same NN
// substrate so Table 3 compares A4NN and XPSI on identical data.
#pragma once

#include "nn/model.hpp"
#include "sched/cost_model.hpp"
#include "xfel/protein.hpp"

namespace a4nn::xpsi {

struct XpsiConfig {
  std::size_t latent_dim = 16;
  std::size_t hidden_dim = 64;
  /// Use a convolutional encoder (XPSI's design) instead of an MLP one.
  bool convolutional = true;
  std::size_t conv_channels = 8;
  std::size_t autoencoder_epochs = 15;
  std::size_t batch_size = 32;
  double learning_rate = 0.01;
  std::size_t k_neighbors = 5;
  /// Standardize latent features (zero mean, unit variance per dimension)
  /// before the kNN distance computation.
  bool standardize_latents = true;
  /// Concatenate an orientation-invariant radial intensity profile with
  /// the learned latents (XPSI exploits physics-informed features of the
  /// diffraction patterns alongside the autoencoder representation).
  bool radial_features = true;
  std::uint64_t seed = 99;
  /// Virtual-time accounting, same cost model as the NAS trainings.
  sched::DeviceCostModel cost;
};

struct XpsiResult {
  double validation_accuracy = 0.0;       // percentage
  double reconstruction_mse = 0.0;        // final autoencoder train MSE
  double virtual_seconds = 0.0;           // simulated single-GPU time
  double wall_seconds = 0.0;              // measured host time
  std::vector<double> mse_history;        // per autoencoder epoch
  std::uint64_t autoencoder_flops = 0;    // forward FLOPs per image
};

class XpsiClassifier {
 public:
  explicit XpsiClassifier(XpsiConfig config);

  /// Train the autoencoder on the training images, embed both sets, fit
  /// kNN on the training latents, and score the validation set.
  XpsiResult fit_and_evaluate(const nn::Dataset& train,
                              const nn::Dataset& validation);

  /// Latent embedding of a dataset (after fit); exposed for tests.
  std::vector<std::vector<float>> embed(const nn::Dataset& data);

  /// Orientation-invariant radial mean-intensity profile of one image
  /// (bins from the detector center outward). Exposed for tests.
  static std::vector<float> radial_profile(std::span<const float> image,
                                           std::size_t height,
                                           std::size_t width);

  /// Orientation recovery (XPSI also predicts beam orientations): each
  /// validation shot is assigned the orientation of its nearest training
  /// shot in latent space; errors are geodesic angles on SO(3) against the
  /// simulator's ground truth. Call after fit_and_evaluate.
  struct OrientationRecovery {
    double mean_error_deg = 0.0;
    double median_error_deg = 0.0;
    /// Mean error of a random-assignment baseline on the same data, for
    /// context (uniform random rotations average ~126.5 degrees apart).
    double chance_error_deg = 0.0;
  };
  OrientationRecovery evaluate_orientation_recovery(
      const nn::Dataset& train, std::span<const xfel::Mat3> train_orientations,
      const nn::Dataset& validation,
      std::span<const xfel::Mat3> validation_orientations);

 private:
  XpsiConfig config_;
  std::unique_ptr<nn::Sequential> encoder_;
  std::unique_ptr<nn::Sequential> decoder_;
};

/// Exact kNN majority vote. Exposed for unit tests.
std::int64_t knn_predict(const std::vector<std::vector<float>>& train_points,
                         std::span<const std::int64_t> train_labels,
                         std::span<const float> query, std::size_t k);

}  // namespace a4nn::xpsi
