// The seam between the scheduler and a real cluster backend.
//
// ResourceManager's phase-1 execution runs each job's closure on a host
// thread pool. When a RemoteExecutor is attached, jobs that carry a remote
// payload are offered to it first: the executor ships the payload to a
// remote worker process and returns the worker's result document, or
// nullopt when no worker could run it (no workers connected, all
// quarantined, or the job exhausted its dispatch attempts). On nullopt the
// scheduler falls back to local in-process execution, so a cluster with
// zero reachable workers degrades to exactly the single-process run —
// results are bit-identical either way, which is what keeps cluster and
// solo Pareto fronts interchangeable.
#pragma once

#include <optional>

#include "util/json.hpp"
#include "util/metrics.hpp"

namespace a4nn::sched {

class RemoteExecutor {
 public:
  virtual ~RemoteExecutor() = default;

  /// Evaluate `payload` on some remote worker. Blocking; safe to call from
  /// multiple scheduler threads concurrently. Returns the worker's result
  /// document, or nullopt when the job could not be served remotely (the
  /// caller must then execute locally).
  virtual std::optional<util::Json> evaluate(const util::Json& payload) = 0;

  /// Attach/detach a metrics registry for cluster counters ("cluster.*").
  /// Default: no-op for executors that do not report metrics.
  virtual void set_metrics(util::metrics::Registry* /*registry*/) {}
};

}  // namespace a4nn::sched
