// Virtual GPU cost model.
//
// This host has no GPUs, so the 1-vs-4-GPU experiments (paper Figures 7
// and 9) run against simulated devices: each device owns a virtual clock,
// and one training epoch advances it by a FLOP-rate cost. The defaults are
// calibrated so a typical search-space model costs ~60-80 virtual seconds
// per epoch on the paper's dataset size (63,508 train / 15,876 validation
// images), which puts a 2,500-epoch standalone search at the same tens-of-
// hours scale the paper reports. Reported *shapes* (speedups, savings)
// depend only on relative costs, not on this calibration.
#pragma once

#include <cstdint>

namespace a4nn::sched {

struct DeviceCostModel {
  /// Simulated device throughput (FLOP/s) for training workloads.
  double flops_per_second = 5e9;
  /// Fixed per-epoch overhead (data loading, kernel launches), seconds.
  double epoch_overhead_seconds = 2.0;
  /// Backward pass costs ~2x the forward pass.
  double backward_factor = 2.0;
  /// Virtual dataset sizes: the paper's XFEL image counts. The *real*
  /// training uses a reduced dataset; virtual time is computed as if each
  /// epoch processed the full-sized dataset.
  std::uint64_t virtual_train_images = 63508;
  std::uint64_t virtual_val_images = 15876;

  /// Virtual seconds for one training epoch (train pass + validation) of a
  /// model with the given forward FLOPs per image.
  double epoch_seconds(std::uint64_t model_flops_per_image) const {
    const double fwd = static_cast<double>(model_flops_per_image);
    const double train_cost =
        fwd * (1.0 + backward_factor) * static_cast<double>(virtual_train_images);
    const double val_cost = fwd * static_cast<double>(virtual_val_images);
    return (train_cost + val_cost) / flops_per_second + epoch_overhead_seconds;
  }
};

}  // namespace a4nn::sched
