#include "sched/resource_manager.hpp"

#include <algorithm>
#include <future>
#include <stdexcept>

namespace a4nn::sched {

ResourceManager::ResourceManager(ClusterConfig config)
    : config_(std::move(config)) {
  if (config_.num_gpus == 0)
    throw std::invalid_argument("ResourceManager: need at least one GPU");
  if (config_.parallel_execution)
    pool_ = std::make_unique<util::ThreadPool>(config_.num_gpus);
}

GenerationSchedule ResourceManager::run_generation(std::vector<Job> jobs) {
  GenerationSchedule schedule;
  schedule.placements.resize(jobs.size());
  if (jobs.empty()) {
    schedule.makespan_end = barrier_;
    return schedule;
  }

  // Phase 1: execute every job and collect its virtual duration. Results
  // are independent of placement, so execution can overlap freely.
  std::vector<double> durations(jobs.size(), 0.0);
  if (pool_) {
    std::vector<std::future<double>> futures;
    futures.reserve(jobs.size());
    for (auto& job : jobs) futures.push_back(pool_->submit(job.run));
    for (std::size_t i = 0; i < futures.size(); ++i)
      durations[i] = futures[i].get();
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) durations[i] = jobs[i].run();
  }

  // Phase 2: FIFO list scheduling against virtual device clocks. Job i is
  // dispatched (in submission order) to the device that frees up first —
  // Ray's FIFO dynamic scheduling within a generation.
  std::vector<double> device_free(config_.num_gpus, barrier_);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto next = std::min_element(device_free.begin(), device_free.end());
    const int device = static_cast<int>(next - device_free.begin());
    JobPlacement& p = schedule.placements[i];
    p.device_id = device;
    p.start_seconds = *next;
    p.duration_seconds = durations[i];
    p.end_seconds = *next + durations[i];
    *next = p.end_seconds;
  }

  schedule.makespan_end =
      *std::max_element(device_free.begin(), device_free.end());
  for (double free_at : device_free)
    schedule.idle_seconds += schedule.makespan_end - free_at;
  barrier_ = schedule.makespan_end;
  return schedule;
}

void ResourceManager::reset() { barrier_ = 0.0; }

}  // namespace a4nn::sched
