#include "sched/resource_manager.hpp"

#include <algorithm>
#include <deque>
#include <future>
#include <stdexcept>

#include "util/log.hpp"
#include "util/trace.hpp"

namespace a4nn::sched {

namespace {

namespace trace = util::trace;

constexpr double kSecToUs = 1e6;  // virtual seconds -> trace microseconds

/// Outcome of really executing one job (host side), with exception
/// containment: a throwing job is re-run up to max_retries times and, if it
/// never succeeds, reported as failed instead of aborting the generation.
struct ExecResult {
  double duration = 0.0;
  bool ok = false;
  std::size_t real_retries = 0;
  bool remote = false;          // served by a cluster worker
  bool remote_declined = false; // offered remotely, fell back to local
  std::string error;
};

ExecResult execute_contained(const Job& job, std::size_t max_retries) {
  ExecResult result;
  for (std::size_t attempt = 0; attempt <= max_retries; ++attempt) {
    try {
      result.duration = job.run();
      result.ok = true;
      result.real_retries = attempt;
      return result;
    } catch (const std::exception& e) {
      result.error = e.what();
    } catch (...) {
      result.error = "unknown exception";
    }
  }
  result.real_retries = max_retries;
  return result;
}

/// Remote-first execution: offer the job to the cluster backend, fall back
/// to the contained local path when the backend declines or its result
/// document is unusable. The backend does its own re-dispatch/quarantine
/// dance internally, so one offer is enough here.
ExecResult execute_with_remote(const Job& job, RemoteExecutor* remote,
                               std::size_t max_retries) {
  if (remote && job.remote_payload && job.apply_remote) {
    std::optional<util::Json> reply;
    try {
      reply = remote->evaluate(*job.remote_payload);
    } catch (const std::exception& e) {
      util::log_warn("sched: remote backend threw (", e.what(),
                     "); running job locally");
      reply.reset();
    }
    if (reply) {
      try {
        ExecResult result;
        result.duration = job.apply_remote(*reply);
        result.ok = true;
        result.remote = true;
        return result;
      } catch (const std::exception& e) {
        util::log_warn("sched: remote result rejected (", e.what(),
                       "); running job locally");
      }
    }
    ExecResult local = execute_contained(job, max_retries);
    local.remote_declined = true;
    return local;
  }
  return execute_contained(job, max_retries);
}

}  // namespace

ResourceManager::ResourceManager(ClusterConfig config)
    : config_(std::move(config)),
      injector_(config_.fault),
      quarantined_(config_.num_gpus, false) {
  if (config_.num_gpus == 0)
    throw std::invalid_argument("ResourceManager: need at least one GPU");
  if (config_.parallel_execution)
    pool_ = std::make_unique<util::ThreadPool>(config_.num_gpus);
}

std::size_t ResourceManager::quarantined_devices() const {
  return static_cast<std::size_t>(
      std::count(quarantined_.begin(), quarantined_.end(), true));
}

void ResourceManager::set_metrics(util::metrics::Registry* registry) {
  metrics_ = registry;
}

GenerationSchedule ResourceManager::run_generation(std::vector<Job> jobs) {
  GenerationSchedule schedule;
  schedule.placements.resize(jobs.size());
  const std::uint64_t generation = generation_index_++;
  if (jobs.empty()) {
    schedule.makespan_end = barrier_;
    return schedule;
  }

  // Phase 1: execute every job and collect its virtual duration. Results
  // are independent of placement, so execution can overlap freely. Real
  // exceptions are contained here; they mark the job failed, never the
  // generation.
  std::vector<ExecResult> results(jobs.size());
  const std::size_t max_retries = config_.fault.max_retries;
  RemoteExecutor* remote = config_.remote;
  auto execute_traced = [max_retries, remote](const Job& job,
                                              std::size_t index) {
    trace::Scope span("job.execute", "sched");
    span.arg("job", static_cast<double>(index));
    ExecResult result = execute_with_remote(job, remote, max_retries);
    span.arg("real_retries", static_cast<double>(result.real_retries));
    span.arg("ok", result.ok ? 1.0 : 0.0);
    span.arg("remote", result.remote ? 1.0 : 0.0);
    return result;
  };
  if (pool_) {
    std::vector<std::future<ExecResult>> futures;
    futures.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
      futures.push_back(pool_->submit(
          [&jobs, i, &execute_traced] { return execute_traced(jobs[i], i); }));
    for (std::size_t i = 0; i < futures.size(); ++i) results[i] = futures[i].get();
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i)
      results[i] = execute_traced(jobs[i], i);
  }

  // Phase 2: FIFO list scheduling against virtual device clocks, with
  // seeded fault injection. Every decision hashes (seed, generation, job,
  // attempt), so the simulated timeline is identical on every replay.
  //
  // Which devices die permanently this generation is decided up front; the
  // last healthy device is never allowed to die so the generation always
  // completes.
  std::vector<bool> dies_this_generation(config_.num_gpus, false);
  {
    std::size_t healthy = healthy_devices();
    for (std::size_t d = 0; d < config_.num_gpus; ++d) {
      if (quarantined_[d] || healthy <= 1) continue;
      if (injector_.device_fails_permanently(generation,
                                             static_cast<int>(d))) {
        dies_this_generation[d] = true;
        --healthy;
      }
    }
  }

  // The simulated timeline goes into the trace as its own pseudo-process,
  // one lane per GPU, so scheduler gaps/retries read straight off the file.
  const bool tracing = trace::enabled();
  if (tracing) {
    trace::name_process(trace::kVirtualPid, "simulated cluster (virtual time)");
    for (std::size_t d = 0; d < config_.num_gpus; ++d)
      trace::name_thread(trace::kVirtualPid, static_cast<int>(d),
                         "gpu " + std::to_string(d));
  }

  std::vector<double> device_free(config_.num_gpus, barrier_);
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    JobPlacement& p = schedule.placements[i];
    p.retries = results[i].real_retries;
    schedule.total_retries += results[i].real_retries;
    if (results[i].remote) ++schedule.remote_jobs;
    if (results[i].remote_declined) ++schedule.remote_fallbacks;
    if (!results[i].ok) {
      // Real execution never succeeded: the job is dropped from the
      // virtual timeline but stays in the schedule as a failed placement.
      p.failed = true;
      p.error = results[i].error;
      ++schedule.failed_jobs;
      util::log_error("sched: job ", i, " of generation ", generation,
                      " failed after ", max_retries + 1,
                      " attempts: ", p.error);
      continue;
    }
    queue.push_back(i);
  }

  std::vector<std::size_t> attempts(jobs.size(), 0);
  std::vector<double> earliest_start(jobs.size(), barrier_);
  std::vector<double> wasted(jobs.size(), 0.0);

  while (!queue.empty()) {
    const std::size_t job = queue.front();
    queue.pop_front();

    // FIFO dynamic scheduling: dispatch to the healthy device that frees
    // up first (lowest index on ties — deterministic).
    int device = -1;
    for (std::size_t d = 0; d < config_.num_gpus; ++d) {
      if (quarantined_[d]) continue;
      if (device < 0 ||
          device_free[d] < device_free[static_cast<std::size_t>(device)])
        device = static_cast<int>(d);
    }
    const std::size_t dev = static_cast<std::size_t>(device);
    const double start = std::max(device_free[dev], earliest_start[job]);
    schedule.idle_seconds += start - device_free[dev];

    const std::size_t attempt = ++attempts[job];
    double duration = results[job].duration;
    bool straggled = false;
    if (injector_.straggler_multiplier(generation, job, attempt) > 1.0) {
      duration *= config_.fault.straggler_slowdown;
      ++schedule.straggler_events;
      straggled = true;
    }

    if (dies_this_generation[dev]) {
      // The device dies partway through its first dispatch this
      // generation; its clock freezes at the failure instant and the job
      // goes back to the front of the queue for a healthy device.
      const double consumed =
          injector_.fail_fraction(generation, job, attempt) * duration;
      device_free[dev] = start + consumed;
      quarantined_[dev] = true;
      dies_this_generation[dev] = false;
      schedule.newly_quarantined.push_back(device);
      wasted[job] += consumed;
      ++schedule.total_retries;
      ++schedule.placements[job].retries;
      earliest_start[job] = start + consumed;
      queue.push_front(job);
      if (tracing) {
        trace::emit_complete("device.failure", "fault", start * kSecToUs,
                             consumed * kSecToUs, trace::kVirtualPid, device,
                             {{"job", static_cast<double>(job)},
                              {"attempt", static_cast<double>(attempt)}});
        trace::emit_instant("quarantine", "fault", (start + consumed) * kSecToUs,
                            trace::kVirtualPid, device,
                            {{"device", static_cast<double>(device)}});
      }
      util::log_warn("sched: device ", device, " failed permanently at t=",
                     start + consumed, "s; requeueing job ", job);
      continue;
    }

    // Injected faults stop after max_retries so every job terminates.
    const bool injectable = attempts[job] <= max_retries;
    const bool transient =
        injectable && injector_.transient_fault(generation, job, attempt);
    const bool crash =
        injectable && !transient && injector_.job_crash(generation, job, attempt);
    if (transient || crash) {
      // Transient device faults kill the attempt partway through; job
      // crashes waste the full attempt. Either way the device frees up and
      // the job backs off (capped exponential, charged in virtual time)
      // before re-entering the FIFO queue.
      const double consumed =
          transient
              ? injector_.fail_fraction(generation, job, attempt) * duration
              : duration;
      const double backoff =
          injector_.jittered_backoff_seconds(generation, job, attempt);
      device_free[dev] = start + consumed;
      earliest_start[job] = start + consumed + backoff;
      wasted[job] += consumed + backoff;
      ++schedule.total_retries;
      ++schedule.placements[job].retries;
      if (transient)
        ++schedule.transient_faults;
      else
        ++schedule.job_crashes;
      if (tracing) {
        trace::emit_complete(transient ? "fault.transient" : "fault.crash",
                             "fault", start * kSecToUs, consumed * kSecToUs,
                             trace::kVirtualPid, device,
                             {{"job", static_cast<double>(job)},
                              {"attempt", static_cast<double>(attempt)},
                              {"backoff_seconds", backoff}});
      }
      queue.push_back(job);
      continue;
    }

    JobPlacement& p = schedule.placements[job];
    p.device_id = device;
    p.start_seconds = start;
    p.duration_seconds = duration;
    p.end_seconds = start + duration;
    device_free[dev] = p.end_seconds;
    if (tracing) {
      // wasted[job] is final here: every failed attempt precedes the
      // successful one, so summing these args over a generation reproduces
      // schedule.wasted_seconds exactly (test_trace_metrics checks this).
      trace::emit_complete("job " + std::to_string(job), "sched",
                           start * kSecToUs, duration * kSecToUs,
                           trace::kVirtualPid, device,
                           {{"job", static_cast<double>(job)},
                            {"retries", static_cast<double>(p.retries)},
                            {"wasted_seconds", wasted[job]},
                            {"straggler", straggled ? 1.0 : 0.0}});
    }
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    schedule.placements[i].wasted_seconds = wasted[i];
    schedule.wasted_seconds += wasted[i];
  }

  // Barrier over the surviving devices (a quarantined device's clock is
  // frozen at its failure instant and no longer accrues idle time).
  schedule.makespan_end = barrier_;
  for (std::size_t d = 0; d < config_.num_gpus; ++d) {
    schedule.makespan_end = std::max(schedule.makespan_end, device_free[d]);
  }
  for (std::size_t d = 0; d < config_.num_gpus; ++d) {
    if (quarantined_[d]) continue;
    schedule.idle_seconds += schedule.makespan_end - device_free[d];
  }
  barrier_ = schedule.makespan_end;

  // Schedule totals land on the metrics registry generation by generation,
  // in the same order analytics::fault_totals walks the schedules, so the
  // two double sums are bit-identical.
  if (metrics_) {
    auto add_count = [&](const char* name, std::size_t n) {
      metrics_->counter(name).add(static_cast<double>(n));
    };
    add_count("sched.jobs", schedule.placements.size());
    add_count("sched.retries", schedule.total_retries);
    add_count("sched.transient_faults", schedule.transient_faults);
    add_count("sched.job_crashes", schedule.job_crashes);
    add_count("sched.straggler_events", schedule.straggler_events);
    add_count("sched.device_quarantines", schedule.newly_quarantined.size());
    add_count("sched.failed_jobs", schedule.failed_jobs);
    if (config_.remote) {
      add_count("sched.remote_jobs", schedule.remote_jobs);
      add_count("sched.remote_fallbacks", schedule.remote_fallbacks);
    }
    metrics_->counter("sched.wasted_virtual_seconds")
        .add(schedule.wasted_seconds);
    metrics_->counter("sched.idle_virtual_seconds").add(schedule.idle_seconds);
    metrics_->counter("sched.generations").add();
    metrics_->gauge("sched.virtual_now_seconds").set(barrier_);
  }
  return schedule;
}

void ResourceManager::reset() {
  barrier_ = 0.0;
  generation_index_ = 0;
  std::fill(quarantined_.begin(), quarantined_.end(), false);
}

}  // namespace a4nn::sched
