// Ray-style resource manager: FIFO dynamic scheduling of training jobs
// onto simulated GPU devices, with a barrier at the end of each
// generation (the paper notes GPU downtime accumulates there because a
// generation's network count need not divide the GPU count).
//
// Execution and accounting are separated so results are deterministic:
// jobs run concurrently on a host thread pool (one worker per simulated
// device — the real concurrent code path), but device assignment, start
// and completion times come from a FIFO list-scheduling simulation over
// the jobs' *virtual* durations, never from host timing.
//
// The manager is fault-tolerant: real job exceptions are contained (a
// throwing job never aborts the generation), and a seeded FaultInjector
// can perturb the virtual schedule with transient faults, permanent
// device failures (quarantine + requeue onto healthy devices), job
// crashes, and stragglers. Failed attempts are retried with capped
// exponential backoff charged in virtual time. Because faults only touch
// the schedule, a faulty run reports the same training results as a
// fault-free one — just later and with retry/waste accounting attached.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "sched/cost_model.hpp"
#include "sched/remote.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace a4nn::sched {

struct ClusterConfig {
  std::size_t num_gpus = 1;
  DeviceCostModel cost;
  /// Run the jobs of a generation concurrently on a thread pool (one
  /// worker per device). Disable to execute inline (useful in tests).
  bool parallel_execution = true;
  /// Seeded fault injection (disabled by default).
  util::FaultConfig fault;
  /// Optional real-cluster backend: jobs carrying a remote payload are
  /// offered here first and only run locally when the executor declines
  /// (no reachable workers, dispatch attempts exhausted). Not owned; must
  /// outlive the manager. Null: everything runs in-process.
  RemoteExecutor* remote = nullptr;
};

/// A unit of schedulable work. Runs to completion and reports its virtual
/// duration (sum of per-epoch costs).
struct Job {
  Job() = default;
  /// Local-only job (the overwhelmingly common construction).
  Job(std::function<double()> run_fn) : run(std::move(run_fn)) {}

  /// Executes the work (training a model) locally and returns virtual
  /// seconds. Always set — the local path is also the remote fallback.
  std::function<double()> run;
  /// What a remote worker needs to run this job (genome, ids, seed). Null:
  /// the job is local-only and never offered to the remote backend.
  std::shared_ptr<const util::Json> remote_payload;
  /// Installs a remote result document (the worker's evaluation record)
  /// and returns its virtual seconds. Must be set when remote_payload is.
  /// A throw here means the document was unusable; the scheduler falls
  /// back to running the job locally.
  std::function<double(const util::Json&)> apply_remote;
};

/// Where and when each job of a generation ran (virtual time).
struct JobPlacement {
  int device_id = -1;
  double start_seconds = 0.0;     // virtual start of the successful attempt
  double end_seconds = 0.0;       // virtual completion time
  double duration_seconds = 0.0;  // virtual duration of the final attempt
  /// Failed attempts before the job completed (injected faults + real
  /// exception re-runs).
  std::size_t retries = 0;
  /// Virtual seconds lost to this job's failed attempts and backoff.
  double wasted_seconds = 0.0;
  /// True when the job's real execution kept throwing after max_retries
  /// re-runs; `error` carries the last exception message.
  bool failed = false;
  std::string error;
};

struct GenerationSchedule {
  std::vector<JobPlacement> placements;
  /// Barrier: virtual time at which the whole generation is complete.
  double makespan_end = 0.0;
  /// Accumulated idle time across healthy devices between generation start
  /// and the barrier (the downtime the paper attributes to FIFO +
  /// barriers), plus mid-generation gaps introduced by retry backoff.
  double idle_seconds = 0.0;
  /// Fault/recovery accounting for this generation.
  std::size_t total_retries = 0;
  std::size_t transient_faults = 0;
  std::size_t job_crashes = 0;
  std::size_t straggler_events = 0;
  std::size_t failed_jobs = 0;
  /// Jobs whose real execution was served by a remote cluster worker, and
  /// jobs that were offered remotely but fell back to local execution.
  std::size_t remote_jobs = 0;
  std::size_t remote_fallbacks = 0;
  double wasted_seconds = 0.0;
  /// Devices quarantined during this generation (permanent failures).
  std::vector<int> newly_quarantined;
};

class ResourceManager {
 public:
  explicit ResourceManager(ClusterConfig config);

  /// Execute one generation of jobs: run them (concurrently if configured),
  /// then assign them to devices in FIFO order against the device clocks,
  /// injecting faults and retrying/requeueing as configured. All surviving
  /// devices are synchronized to the barrier afterwards.
  GenerationSchedule run_generation(std::vector<Job> jobs);

  /// Cluster-wide virtual clock (last barrier).
  double virtual_now() const { return barrier_; }
  std::size_t num_gpus() const { return config_.num_gpus; }
  const ClusterConfig& config() const { return config_; }

  /// Devices permanently failed so far (quarantined for the whole run).
  std::size_t quarantined_devices() const;
  std::size_t healthy_devices() const {
    return config_.num_gpus - quarantined_devices();
  }
  bool is_quarantined(int device) const {
    return quarantined_[static_cast<std::size_t>(device)];
  }

  /// Reset the virtual clock and un-quarantine every device (a fresh
  /// experiment on the same cluster).
  void reset();

  /// Attach a metrics registry: every generation's schedule totals are
  /// added to the "sched.*" counters, in schedule order, so the counter
  /// values agree bit-exactly with analytics::fault_totals over the same
  /// schedules. Pass nullptr to detach; the registry must outlive the
  /// manager.
  void set_metrics(util::metrics::Registry* registry);

 private:
  ClusterConfig config_;
  util::FaultInjector injector_;
  double barrier_ = 0.0;
  /// Generation counter feeding the fault injector's hash coordinates.
  std::uint64_t generation_index_ = 0;
  std::vector<bool> quarantined_;
  std::unique_ptr<util::ThreadPool> pool_;
  util::metrics::Registry* metrics_ = nullptr;
};

}  // namespace a4nn::sched
