// Ray-style resource manager: FIFO dynamic scheduling of training jobs
// onto simulated GPU devices, with a barrier at the end of each
// generation (the paper notes GPU downtime accumulates there because a
// generation's network count need not divide the GPU count).
//
// Execution and accounting are separated so results are deterministic:
// jobs run concurrently on a host thread pool (one worker per simulated
// device — the real concurrent code path), but device assignment, start
// and completion times come from a FIFO list-scheduling simulation over
// the jobs' *virtual* durations, never from host timing.
#pragma once

#include <functional>

#include "sched/cost_model.hpp"
#include "util/thread_pool.hpp"

namespace a4nn::sched {

struct ClusterConfig {
  std::size_t num_gpus = 1;
  DeviceCostModel cost;
  /// Run the jobs of a generation concurrently on a thread pool (one
  /// worker per device). Disable to execute inline (useful in tests).
  bool parallel_execution = true;
};

/// A unit of schedulable work. Runs to completion and reports its virtual
/// duration (sum of per-epoch costs).
struct Job {
  /// Executes the work (training a model) and returns virtual seconds.
  std::function<double()> run;
};

/// Where and when each job of a generation ran (virtual time).
struct JobPlacement {
  int device_id = -1;
  double start_seconds = 0.0;     // virtual start time
  double end_seconds = 0.0;       // virtual completion time
  double duration_seconds = 0.0;  // virtual duration reported by the job
};

struct GenerationSchedule {
  std::vector<JobPlacement> placements;
  /// Barrier: virtual time at which the whole generation is complete.
  double makespan_end = 0.0;
  /// Accumulated idle time across devices between generation start and the
  /// barrier (the downtime the paper attributes to FIFO + barriers).
  double idle_seconds = 0.0;
};

class ResourceManager {
 public:
  explicit ResourceManager(ClusterConfig config);

  /// Execute one generation of jobs: run them (concurrently if configured)
  /// and assign them to devices in FIFO order against the device clocks.
  /// All devices are synchronized to the barrier afterwards.
  GenerationSchedule run_generation(std::vector<Job> jobs);

  /// Cluster-wide virtual clock (last barrier).
  double virtual_now() const { return barrier_; }
  std::size_t num_gpus() const { return config_.num_gpus; }
  const ClusterConfig& config() const { return config_; }

  /// Reset the virtual clock (a fresh experiment on the same cluster).
  void reset();

 private:
  ClusterConfig config_;
  double barrier_ = 0.0;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace a4nn::sched
