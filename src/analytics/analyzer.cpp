#include "analytics/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace a4nn::analytics {

util::Json FaultTotals::to_json() const {
  util::Json j = util::Json::object();
  j["total_jobs"] = total_jobs;
  j["retries"] = retries;
  j["transient_faults"] = transient_faults;
  j["job_crashes"] = job_crashes;
  j["straggler_events"] = straggler_events;
  j["permanent_device_failures"] = permanent_device_failures;
  j["failed_jobs"] = failed_jobs;
  j["wasted_virtual_seconds"] = wasted_virtual_seconds;
  return j;
}

FaultTotals fault_totals(std::span<const sched::GenerationSchedule> schedules) {
  FaultTotals t;
  for (const auto& s : schedules) {
    t.total_jobs += s.placements.size();
    t.retries += s.total_retries;
    t.transient_faults += s.transient_faults;
    t.job_crashes += s.job_crashes;
    t.straggler_events += s.straggler_events;
    t.permanent_device_failures += s.newly_quarantined.size();
    t.failed_jobs += s.failed_jobs;
    t.wasted_virtual_seconds += s.wasted_seconds;
  }
  return t;
}

FaultTotals fault_totals(const util::Json& metrics_snapshot) {
  FaultTotals t;
  if (!metrics_snapshot.is_object() || !metrics_snapshot.contains("counters"))
    return t;
  const util::Json& counters = metrics_snapshot.at("counters");
  if (!counters.is_object()) return t;
  auto count = [&](const char* name) {
    return static_cast<std::size_t>(counters.number_or(name, 0.0));
  };
  t.total_jobs = count("sched.jobs");
  t.retries = count("sched.retries");
  t.transient_faults = count("sched.transient_faults");
  t.job_crashes = count("sched.job_crashes");
  t.straggler_events = count("sched.straggler_events");
  t.permanent_device_failures = count("sched.device_quarantines");
  t.failed_jobs = count("sched.failed_jobs");
  t.wasted_virtual_seconds =
      counters.number_or("sched.wasted_virtual_seconds", 0.0);
  return t;
}

std::vector<std::size_t> pareto_indices(
    std::span<const nas::EvaluationRecord> records) {
  std::vector<std::size_t> viable;
  std::vector<nas::Objectives> obj;
  viable.reserve(records.size());
  obj.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].failed) continue;
    viable.push_back(i);
    obj.push_back(nas::record_objectives(records[i]));
  }
  const auto front = nas::pareto_front(obj);
  std::vector<std::size_t> out;
  out.reserve(front.size());
  for (std::size_t f : front) out.push_back(viable[f]);
  return out;
}

EpochSavings epoch_savings(std::span<const nas::EvaluationRecord> records) {
  EpochSavings s;
  for (const auto& r : records) {
    s.epochs_trained += r.epochs_trained;
    s.epochs_budget += r.max_epochs;
    if (r.early_terminated) ++s.early_terminated;
  }
  if (s.epochs_budget > 0) {
    s.saved_fraction = 1.0 - static_cast<double>(s.epochs_trained) /
                                 static_cast<double>(s.epochs_budget);
  }
  if (!records.empty()) {
    s.early_terminated_fraction = static_cast<double>(s.early_terminated) /
                                  static_cast<double>(records.size());
  }
  return s;
}

TerminationStats termination_stats(
    std::span<const nas::EvaluationRecord> records) {
  TerminationStats t;
  std::size_t max_epochs = 1;
  for (const auto& r : records) {
    max_epochs = std::max(max_epochs, r.max_epochs);
    if (r.early_terminated)
      t.termination_epochs.push_back(static_cast<double>(r.epochs_trained));
  }
  if (!t.termination_epochs.empty())
    t.mean_e_t = util::mean(t.termination_epochs);
  if (!records.empty()) {
    t.early_fraction = static_cast<double>(t.termination_epochs.size()) /
                       static_cast<double>(records.size());
  }
  t.histogram = t.termination_epochs.empty()
                    ? util::Histogram{}
                    : util::histogram(t.termination_epochs, 1.0,
                                      static_cast<double>(max_epochs + 1),
                                      max_epochs);
  return t;
}

FitnessSummary fitness_summary(std::span<const nas::EvaluationRecord> records) {
  FitnessSummary s;
  if (records.empty()) return s;
  std::vector<double> fitness;
  fitness.reserve(records.size());
  for (const auto& r : records) fitness.push_back(r.fitness);
  s.best = util::max_of(fitness);
  s.mean = util::mean(fitness);
  s.worst = util::min_of(fitness);
  const auto pareto = pareto_indices(records);
  for (std::size_t idx : pareto) {
    if (records[idx].fitness >= s.best_pareto) {
      s.best_pareto = records[idx].fitness;
      s.best_pareto_flops = static_cast<double>(records[idx].flops);
      s.best_pareto_measured = records[idx].measured_fitness;
    }
  }
  return s;
}

double flops_fitness_correlation(
    std::span<const nas::EvaluationRecord> records) {
  std::vector<double> flops, fitness;
  for (const auto& r : records) {
    flops.push_back(static_cast<double>(r.flops));
    fitness.push_back(r.measured_fitness);
  }
  return util::pearson(flops, fitness);
}

CurveShape curve_shape(std::span<const nas::EvaluationRecord> records) {
  CurveShape shape;
  if (records.empty()) return shape;
  std::size_t increasing = 0, counted = 0;
  double first_gain = 0.0, second_gain = 0.0;
  for (const auto& r : records) {
    const auto& h = r.fitness_history;
    if (h.size() < 4) continue;
    ++counted;
    if (h.back() >= h.front()) ++increasing;
    const std::size_t mid = h.size() / 2;
    first_gain += h[mid] - h.front();
    second_gain += h.back() - h[mid];
  }
  if (counted > 0) {
    shape.increasing_fraction =
        static_cast<double>(increasing) / static_cast<double>(counted);
    shape.mean_first_half_gain = first_gain / static_cast<double>(counted);
    shape.mean_second_half_gain = second_gain / static_cast<double>(counted);
  }
  return shape;
}

std::vector<std::size_t> find_records(
    std::span<const nas::EvaluationRecord> records, const RecordQuery& query) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    if (query.min_fitness >= 0.0 && r.fitness < query.min_fitness) continue;
    if (query.max_flops >= 0.0 &&
        static_cast<double>(r.flops) > query.max_flops)
      continue;
    if (query.early_terminated_only && !r.early_terminated) continue;
    if (query.generation >= 0 && r.generation != query.generation) continue;
    out.push_back(i);
  }
  return out;
}

std::string render_architecture(const nas::Genome& genome,
                                const nas::SearchSpaceConfig& space) {
  std::ostringstream out;
  std::size_t channels = space.stem_channels;
  out << "input " << tensor::shape_to_string(space.input_shape) << "\n";
  out << "  stem: conv3x3(" << space.input_shape[0] << "->" << channels
      << ") + bn + relu\n";
  for (std::size_t p = 0; p < genome.phase_count(); ++p) {
    const auto& phase = genome.phases[p];
    out << "  phase " << p + 1 << " [" << channels << " ch]";
    if (phase.skip) out << " (+input skip)";
    out << "\n";
    // Recompute node activity the way PhaseBlock does.
    std::vector<bool> active(phase.nodes, false);
    for (std::size_t j = 1; j < phase.nodes; ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        if (phase.edge(i, j)) active[i] = active[j] = true;
      }
    }
    bool any = false;
    for (bool a : active) any |= a;
    if (!any) active[0] = true;
    for (std::size_t j = 0; j < phase.nodes; ++j) {
      if (!active[j]) {
        out << "    node " << j << ": (pruned)\n";
        continue;
      }
      out << "    node " << j << ": " << nn::node_op_name(phase.op_of(j))
          << "+bn+relu <- ";
      bool has_input = false;
      for (std::size_t i = 0; i < j; ++i) {
        if (active[i] && phase.edge(i, j)) {
          out << (has_input ? ", " : "") << "node " << i;
          has_input = true;
        }
      }
      if (!has_input) out << "phase input";
      out << "\n";
    }
    if (p + 1 < genome.phase_count()) {
      const std::size_t next = static_cast<std::size_t>(std::llround(
          static_cast<double>(channels) * space.channel_multiplier));
      out << "  downsample: maxpool2 + conv1x1(" << channels << "->" << next
          << ")\n";
      channels = next;
    }
  }
  out << "  head: global-avg-pool + linear(" << channels << "->"
      << space.classes << ")\n";
  return out.str();
}

double hypervolume(std::span<const nas::Objectives> points,
                   const nas::Objectives& reference) {
  // Keep only points that strictly dominate the reference, take the Pareto
  // subset, sort by the first objective, and sum the staircase rectangles.
  std::vector<nas::Objectives> candidates;
  for (const auto& p : points) {
    if (p[0] < reference[0] && p[1] < reference[1]) candidates.push_back(p);
  }
  if (candidates.empty()) return 0.0;
  const auto front = nas::pareto_front(candidates);
  std::vector<nas::Objectives> frontier;
  frontier.reserve(front.size());
  for (std::size_t idx : front) frontier.push_back(candidates[idx]);
  std::sort(frontier.begin(), frontier.end(),
            [](const nas::Objectives& a, const nas::Objectives& b) {
              return a[0] < b[0];
            });
  double volume = 0.0;
  double prev_o1 = reference[0];
  // Sweep from the largest first objective toward the smallest; each point
  // contributes a rectangle up to the previous sweep line.
  for (auto it = frontier.rbegin(); it != frontier.rend(); ++it) {
    volume += (prev_o1 - (*it)[0]) * (reference[1] - (*it)[1]);
    prev_o1 = (*it)[0];
  }
  return volume;
}

double frontier_hypervolume(std::span<const nas::EvaluationRecord> records,
                            double reference_accuracy,
                            double reference_flops) {
  std::vector<nas::Objectives> points;
  points.reserve(records.size());
  for (const auto& r : records) points.push_back(nas::record_objectives(r));
  const nas::Objectives reference{-reference_accuracy, reference_flops};
  const double box = (100.0 - reference_accuracy) * reference_flops;
  if (box <= 0.0) return 0.0;
  return hypervolume(points, reference) / box;
}

}  // namespace a4nn::analytics
