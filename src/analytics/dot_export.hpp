// Graphviz export of NN architectures — the analyzer's "visualize the
// structure of NNs" capability (paper Figures 3 and 10) in a portable
// format: `dot -Tsvg model.dot > model.svg`.
#pragma once

#include <string>

#include "nas/search_space.hpp"

namespace a4nn::analytics {

struct DotStyle {
  std::string node_color = "#4a90d9";
  std::string pruned_color = "#cccccc";
  std::string skip_color = "#d94a4a";
  bool rankdir_lr = false;  // top-to-bottom by default, like Fig 10
};

/// Render a genome's full architecture (stem, phases with node DAGs,
/// downsamples, head) as a Graphviz digraph. Pruned nodes are drawn
/// greyed-out; skip connections are highlighted.
std::string to_dot(const nas::Genome& genome,
                   const nas::SearchSpaceConfig& space,
                   const DotStyle& style = {});

}  // namespace a4nn::analytics
