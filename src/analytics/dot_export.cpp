#include "analytics/dot_export.hpp"

#include <cmath>
#include <sstream>

namespace a4nn::analytics {

namespace {

/// Node activity exactly as PhaseBlock computes it (isolated nodes pruned,
/// all-zero phases repaired to node 0).
std::vector<bool> active_nodes(const nn::PhaseSpec& phase) {
  std::vector<bool> active(phase.nodes, false);
  for (std::size_t j = 1; j < phase.nodes; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      if (phase.edge(i, j)) active[i] = active[j] = true;
    }
  }
  bool any = false;
  for (bool a : active) any |= a;
  if (!any) active[0] = true;
  return active;
}

}  // namespace

std::string to_dot(const nas::Genome& genome,
                   const nas::SearchSpaceConfig& space,
                   const DotStyle& style) {
  std::ostringstream out;
  out << "digraph a4nn_model {\n";
  if (style.rankdir_lr) out << "  rankdir=LR;\n";
  out << "  node [shape=box, style=filled, fontname=\"Helvetica\"];\n";
  out << "  input [label=\"input " << tensor::shape_to_string(space.input_shape)
      << "\", fillcolor=\"#ffffff\"];\n";
  out << "  stem [label=\"stem conv3x3 (" << space.input_shape[0] << "->"
      << space.stem_channels << ") + bn + relu\", fillcolor=\""
      << style.node_color << "\"];\n";
  out << "  input -> stem;\n";

  std::string prev = "stem";
  std::size_t channels = space.stem_channels;
  for (std::size_t p = 0; p < genome.phase_count(); ++p) {
    const auto& phase = genome.phases[p];
    const auto active = active_nodes(phase);
    const std::string prefix = "p" + std::to_string(p) + "_";

    out << "  subgraph cluster_phase" << p << " {\n";
    out << "    label=\"phase " << p + 1 << " (" << channels << " ch)\";\n";
    out << "    style=rounded;\n";
    for (std::size_t j = 0; j < phase.nodes; ++j) {
      out << "    " << prefix << "n" << j << " [label=\"node " << j << "\\n"
          << nn::node_op_name(phase.op_of(j)) << "+bn+relu\", fillcolor=\""
          << (active[j] ? style.node_color : style.pruned_color) << "\"";
      if (!active[j]) out << ", fontcolor=\"#888888\"";
      out << "];\n";
    }
    out << "  }\n";

    // Output collector for the phase (sums loose ends + optional skip).
    const std::string sum = prefix + "sum";
    out << "  " << sum
        << " [label=\"+\", shape=circle, fillcolor=\"#ffffff\"];\n";

    std::vector<bool> consumed(phase.nodes, false);
    for (std::size_t j = 0; j < phase.nodes; ++j) {
      if (!active[j]) continue;
      bool has_input = false;
      for (std::size_t i = 0; i < j; ++i) {
        if (active[i] && phase.edge(i, j)) {
          out << "  " << prefix << "n" << i << " -> " << prefix << "n" << j
              << ";\n";
          consumed[i] = true;
          has_input = true;
        }
      }
      if (!has_input) out << "  " << prev << " -> " << prefix << "n" << j << ";\n";
    }
    for (std::size_t j = 0; j < phase.nodes; ++j) {
      if (active[j] && !consumed[j])
        out << "  " << prefix << "n" << j << " -> " << sum << ";\n";
    }
    if (phase.skip) {
      out << "  " << prev << " -> " << sum << " [color=\"" << style.skip_color
          << "\", penwidth=2, label=\"skip\"];\n";
    }
    prev = sum;

    if (p + 1 < genome.phase_count()) {
      const std::size_t next = static_cast<std::size_t>(std::llround(
          static_cast<double>(channels) * space.channel_multiplier));
      const std::string down = "down" + std::to_string(p);
      out << "  " << down << " [label=\"maxpool2 + conv1x1 (" << channels
          << "->" << next << ")\", fillcolor=\"" << style.node_color
          << "\"];\n";
      out << "  " << prev << " -> " << down << ";\n";
      prev = down;
      channels = next;
    }
  }

  out << "  head [label=\"global-avg-pool + linear (" << channels << "->"
      << space.classes << ")\", fillcolor=\"" << style.node_color << "\"];\n";
  out << "  " << prev << " -> head;\n";
  out << "  output [label=\"class scores\", fillcolor=\"#ffffff\"];\n";
  out << "  head -> output;\n";
  out << "}\n";
  return out.str();
}

}  // namespace a4nn::analytics
