// The analyzer: queries and summaries over record trails, standing in for
// the paper's Jupyter-notebook interface. Computes Pareto frontiers
// (Fig 6), epoch savings (Fig 7), termination-epoch distributions (Fig 8),
// wall-time summaries (Fig 9), learning-curve shape statistics, and ASCII
// renderings of NN architectures (Figs 3 and 10).
#pragma once

#include "nas/search.hpp"
#include "sched/resource_manager.hpp"
#include "util/stats.hpp"

namespace a4nn::analytics {

/// Aggregate fault/recovery activity over a run's generation schedules
/// (all zero for a fault-free run).
struct FaultTotals {
  std::size_t total_jobs = 0;
  std::size_t retries = 0;
  std::size_t transient_faults = 0;
  std::size_t job_crashes = 0;
  std::size_t straggler_events = 0;
  std::size_t permanent_device_failures = 0;
  std::size_t failed_jobs = 0;
  double wasted_virtual_seconds = 0.0;

  util::Json to_json() const;
};
FaultTotals fault_totals(std::span<const sched::GenerationSchedule> schedules);

/// Same totals read back from a metrics registry snapshot (the "sched.*"
/// counters). The registry is incremented in schedule order, so this
/// agrees bit-exactly with the schedule-walking overload — test_trace_metrics
/// locks the two together.
FaultTotals fault_totals(const util::Json& metrics_snapshot);

/// Indices of the Pareto-optimal records (max fitness, min FLOPs).
/// Failed evaluations carry no real fitness and are never on the front.
std::vector<std::size_t> pareto_indices(
    std::span<const nas::EvaluationRecord> records);

struct EpochSavings {
  std::size_t epochs_trained = 0;   // total epochs across all models
  std::size_t epochs_budget = 0;    // models * max_epochs (standalone cost)
  double saved_fraction = 0.0;      // [0, 1]
  std::size_t early_terminated = 0; // models stopped by the engine
  double early_terminated_fraction = 0.0;
};
EpochSavings epoch_savings(std::span<const nas::EvaluationRecord> records);

/// Termination-epoch (e_t) distribution over early-terminated models.
struct TerminationStats {
  std::vector<double> termination_epochs;  // e_t of each early-terminated NN
  double mean_e_t = 0.0;
  double early_fraction = 0.0;             // share of models terminated early
  util::Histogram histogram;               // over [1, max_epochs]
};
TerminationStats termination_stats(
    std::span<const nas::EvaluationRecord> records);

struct FitnessSummary {
  // Over the NAS-reported fitness (the engine's converged prediction of
  // accuracy@e_pred for early-terminated models, else the final measured
  // accuracy) — the value the paper's figures plot.
  double best = 0.0;
  double mean = 0.0;
  double worst = 0.0;
  /// Best reported fitness among Pareto-optimal records, and its FLOPs.
  double best_pareto = 0.0;
  double best_pareto_flops = 0.0;
  /// The same Pareto point's measured accuracy at its termination epoch
  /// (equals best_pareto for fully trained models).
  double best_pareto_measured = 0.0;
};
FitnessSummary fitness_summary(std::span<const nas::EvaluationRecord> records);

/// Pearson correlation between FLOPs and measured fitness across records
/// (one of the paper's open questions).
double flops_fitness_correlation(
    std::span<const nas::EvaluationRecord> records);

/// Learning-curve shape: fraction of curves that are (weakly) increasing
/// overall, and mean first-half vs second-half gain — concave saturating
/// curves gain much more in the first half.
struct CurveShape {
  double increasing_fraction = 0.0;
  double mean_first_half_gain = 0.0;
  double mean_second_half_gain = 0.0;
};
CurveShape curve_shape(std::span<const nas::EvaluationRecord> records);

/// Search records by attribute (the commons query the paper's notebook
/// offers). Filters compose via the config's optional bounds.
struct RecordQuery {
  double min_fitness = -1.0;      // keep records with fitness >= this
  double max_flops = -1.0;        // keep records with flops <= this (<0: off)
  bool early_terminated_only = false;
  int generation = -1;            // keep a single generation (<0: off)
};
std::vector<std::size_t> find_records(
    std::span<const nas::EvaluationRecord> records, const RecordQuery& query);

/// ASCII structural rendering of a genome's architecture (Fig 3/10 style):
/// one block per phase, listing active nodes, their inputs, and skips.
std::string render_architecture(const nas::Genome& genome,
                                const nas::SearchSpaceConfig& space);

/// 2-objective hypervolume (both objectives minimized) dominated by the
/// Pareto front of `points` relative to `reference`. Standard scalar
/// quality measure for comparing whole frontiers (used to compare A4NN's
/// and the standalone NAS's Pareto fronts beyond best-point accuracy).
/// Points that do not dominate the reference contribute nothing.
double hypervolume(std::span<const nas::Objectives> points,
                   const nas::Objectives& reference);

/// Hypervolume of a record set's frontier in (accuracy, FLOPs) space,
/// normalized by the reference box so the result lies in [0, 1].
/// reference_accuracy: worst acceptable accuracy (e.g. 50 = chance);
/// reference_flops: largest FLOPs budget of interest.
double frontier_hypervolume(std::span<const nas::EvaluationRecord> records,
                            double reference_accuracy, double reference_flops);

}  // namespace a4nn::analytics
