// The cluster master: accepts worker connections, partitions each
// generation's evaluation jobs across them, and survives every network
// fault the workers and links can throw at it.
//
// It plugs into the scheduler as a sched::RemoteExecutor: pool threads
// block in evaluate() while the master's single I/O thread handshakes
// workers, places jobs capacity-aware (most free slots first, RAM as the
// tie-break), pings heartbeats, and re-dispatches the in-flight jobs of a
// dead worker with capped exponential backoff. Robustness rules:
//
//   - A worker is *dead* when its connection drops, a frame from it fails
//     CRC validation irrecoverably, or it misses the heartbeat deadline.
//     Its outstanding jobs go back to the queue (attempt + 1).
//   - A worker identity that keeps failing is quarantined after
//     `quarantine_after` failures — reconnects are rejected, mirroring the
//     scheduler's device quarantine semantics.
//   - A job that exhausts `max_attempts` dispatches, or becomes
//     dispatchable while zero workers are reachable, is *declined*:
//     evaluate() returns nullopt and the scheduler runs the job locally.
//     The master therefore degrades to single-process execution instead
//     of wedging — with zero workers a cluster run IS the solo run.
//   - A result frame for an unknown or already-reassigned job id (a stale
//     reply racing a re-dispatch) is dropped, never committed.
//   - Backoff jitter and injected faults draw from the seeded hash stream
//     (util/fault), never the wall clock, so a faulty run's decision
//     sequence replays deterministically.
//
// Accounting: every counter lands in the attached metrics registry under
// "cluster.*", and each counted event emits a matching span/instant on the
// trace's pid-3 lanes (one lane per worker), so scripts/check_trace.py can
// cross-check them exactly.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/protocol.hpp"
#include "cluster/transport.hpp"
#include "sched/remote.hpp"
#include "util/fault.hpp"
#include "util/frame.hpp"
#include "util/metrics.hpp"

namespace a4nn::cluster {

struct MasterOptions {
  std::string bind = "127.0.0.1";
  std::uint16_t port = 0;  // 0: ephemeral; read back with port()
  /// CRC-32 digest of the run-configuration JSON; a Hello with a different
  /// digest is rejected (the worker would compute different results).
  std::uint32_t config_crc = 0;
  int heartbeat_interval_ms = 200;
  /// A worker silent for longer than this is declared dead.
  int heartbeat_timeout_ms = 2000;
  /// Dispatch attempts per job before evaluate() declines it (the
  /// scheduler then runs it locally).
  std::size_t max_attempts = 5;
  /// Worker failures (disconnect, heartbeat loss, corrupt frames) before
  /// the worker identity is quarantined for the rest of the run.
  std::size_t quarantine_after = 3;
  /// Capped exponential re-dispatch backoff (host milliseconds), jittered
  /// from the seeded hash stream.
  double backoff_base_ms = 50.0;
  double backoff_multiplier = 2.0;
  double backoff_cap_ms = 2000.0;
  /// Deterministic fault injection (partition/torn-frame on dispatch) and
  /// backoff jitter. `fault.seed` falls back to `seed` when 0.
  util::FaultConfig fault;
  std::uint64_t seed = 0;
};

class Master : public sched::RemoteExecutor {
 public:
  explicit Master(MasterOptions options);
  ~Master() override;

  std::uint16_t port() const { return listener_.port(); }

  /// Stop serving: close every connection, decline every queued job, join
  /// the I/O thread. Idempotent; the destructor calls it.
  void stop();

  /// Welcomed, live workers right now.
  std::size_t connected_workers() const;

  /// Block until at least `n` workers are welcomed or `timeout_ms` passes.
  bool wait_for_workers(std::size_t n, int timeout_ms);

  // sched::RemoteExecutor
  std::optional<util::Json> evaluate(const util::Json& payload) override;
  void set_metrics(util::metrics::Registry* registry) override;

 private:
  struct PendingJob {
    std::uint64_t id = 0;
    util::Json payload;
    int model_id = -1;
    std::size_t attempts = 0;  // dispatches so far
    /// Host steady-clock ms before which this job may not be re-dispatched.
    double not_before_ms = 0.0;
    /// Id of the connection currently running the job; 0 when queued.
    std::uint64_t assigned_conn = 0;
    double dispatched_us = 0.0;  // trace timestamp of the last dispatch
    bool done = false;
    std::optional<util::Json> result;
    std::condition_variable cv;
  };

  struct Connection {
    std::uint64_t id = 0;  // stable handle; conns_ gets swept, indices do not
    TcpConn conn;
    util::StreamDecoder decoder;
    std::size_t corrupt_seen = 0;  // decoder corrupt count already tallied
    bool welcomed = false;
    Hello hello;
    std::size_t worker_index = 0;  // stable per identity, assigned at first Hello
    double last_recv_ms = 0.0;
    std::size_t outstanding = 0;
  };

  void io_loop();
  double now_ms() const;

  // All private helpers below run on the I/O thread with mutex_ held.
  void pump_connection(Connection& conn);
  void handle_frame(Connection& conn, const util::WireFrame& frame);
  void fail_connection(Connection& conn, const char* why);
  void dispatch_ready_jobs();
  void finish_job(PendingJob& job, std::optional<util::Json> result);
  /// Count a cluster event and emit its pid-3 trace twin: `counter_name`
  /// increments in the registry, `event_name` lands as an instant on the
  /// worker's lane. check_trace.py asserts the pair stays equal.
  void note(const char* counter_name, const char* event_name, int lane);

  MasterOptions options_;
  TcpListener listener_;
  util::FaultInjector injector_;

  mutable std::mutex mutex_;
  std::condition_variable workers_cv_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::map<std::uint64_t, std::unique_ptr<PendingJob>> jobs_;
  std::deque<std::uint64_t> queue_;
  /// Worker identity -> failure count / quarantine flag / stable index.
  std::map<std::string, std::size_t> failures_;
  std::map<std::string, bool> quarantined_;
  std::map<std::string, std::size_t> worker_indices_;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t dispatch_counter_ = 0;
  double last_heartbeat_ms_ = 0.0;
  util::metrics::Registry* metrics_ = nullptr;
  /// Counts noted while no registry is attached (pre-run handshakes);
  /// flushed into the registry by set_metrics so counters always equal
  /// their pid-3 trace twins.
  std::map<std::string, double> pending_counts_;
  bool stopping_ = false;

  std::thread io_thread_;
};

}  // namespace a4nn::cluster
