#include "cluster/master.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/log.hpp"
#include "util/trace.hpp"

namespace a4nn::cluster {

namespace {

/// Lane 0 on the cluster pid is the master itself (fallbacks with no
/// worker attached); worker `i` gets lane `i + 1`.
constexpr int kMasterLane = 0;

int worker_lane(std::size_t worker_index) {
  return static_cast<int>(worker_index) + 1;
}

}  // namespace

Master::Master(MasterOptions options)
    : options_(std::move(options)),
      listener_(options_.bind, options_.port),
      injector_([&] {
        util::FaultConfig fc = options_.fault;
        if (fc.seed == 0) fc.seed = options_.seed;
        // The injector's backoff knobs are reused for the master's
        // re-dispatch delay, in host milliseconds instead of virtual
        // seconds — jittered_backoff_seconds() then reads as ms directly.
        fc.backoff_base_seconds = options_.backoff_base_ms;
        fc.backoff_multiplier = options_.backoff_multiplier;
        fc.backoff_cap_seconds = options_.backoff_cap_ms;
        return fc;
      }()) {
  if (util::trace::enabled()) {
    util::trace::name_process(util::trace::kClusterPid, "cluster master");
    util::trace::name_thread(util::trace::kClusterPid, kMasterLane, "master");
  }
  last_heartbeat_ms_ = now_ms();
  io_thread_ = std::thread([this] { io_loop(); });
}

Master::~Master() { stop(); }

double Master::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Master::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    const std::string bye = cluster::encode(MsgType::kShutdown);
    for (auto& c : conns_) {
      if (c->conn.valid()) c->conn.send_all(bye);
      c->conn.close();
    }
    for (auto& [id, job] : jobs_) {
      if (!job->done) finish_job(*job, std::nullopt);
    }
    queue_.clear();
    workers_cv_.notify_all();
  }
  if (io_thread_.joinable()) io_thread_.join();
  listener_.close();
}

std::size_t Master::connected_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& c : conns_)
    if (c->welcomed && c->conn.valid()) ++n;
  return n;
}

bool Master::wait_for_workers(std::size_t n, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto live = [&] {
    std::size_t k = 0;
    for (const auto& c : conns_)
      if (c->welcomed && c->conn.valid()) ++k;
    return k;
  };
  return workers_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                              [&] { return stopping_ || live() >= n; }) &&
         !stopping_;
}

void Master::set_metrics(util::metrics::Registry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_ = registry;
  if (!metrics_) return;
  // Events noted before the run attached its registry (worker handshakes
  // happen while the master is waiting for --min-workers) were buffered;
  // flush them so the counters match the pid-3 trace events exactly.
  for (const auto& [name, count] : pending_counts_)
    metrics_->counter(name).add(count);
  pending_counts_.clear();
}

void Master::note(const char* counter_name, const char* event_name, int lane) {
  if (metrics_)
    metrics_->counter(counter_name).add(1.0);
  else
    pending_counts_[counter_name] += 1.0;
  if (util::trace::enabled()) {
    util::trace::emit_instant(event_name, "cluster", util::trace::now_us(),
                              util::trace::kClusterPid, lane);
  }
}

std::optional<util::Json> Master::evaluate(const util::Json& payload) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) return std::nullopt;

  // Fast path: with no reachable worker the cluster degrades to local
  // execution immediately — queueing would only add I/O-tick latency.
  const bool any_worker = std::any_of(
      conns_.begin(), conns_.end(),
      [](const auto& c) { return c->welcomed && c->conn.valid(); });
  if (!any_worker) {
    note("cluster.local_fallbacks", "job.local_fallback", kMasterLane);
    return std::nullopt;
  }

  const std::uint64_t id = next_job_id_++;
  auto owned = std::make_unique<PendingJob>();
  PendingJob& job = *owned;
  job.id = id;
  job.payload = payload;
  job.payload["job"] = static_cast<double>(id);
  if (payload.contains("model_id"))
    job.model_id = static_cast<int>(payload.at("model_id").as_number());
  jobs_.emplace(id, std::move(owned));
  queue_.push_back(id);

  job.cv.wait(lock, [&] { return job.done; });
  std::optional<util::Json> result = std::move(job.result);
  jobs_.erase(id);
  return result;
}

void Master::finish_job(PendingJob& job, std::optional<util::Json> result) {
  job.done = true;
  job.result = std::move(result);
  job.assigned_conn = 0;
  job.cv.notify_all();
}

void Master::io_loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      const double now = now_ms();

      // New connections (drain everything pending this tick).
      for (;;) {
        TcpConn c = listener_.accept(0);
        if (!c.valid()) break;
        auto conn = std::make_unique<Connection>();
        conn->id = next_conn_id_++;
        conn->conn = std::move(c);
        conn->last_recv_ms = now;
        conns_.push_back(std::move(conn));
      }

      // Inbound bytes -> frames -> messages.
      for (auto& c : conns_) pump_connection(*c);

      // Heartbeats out, liveness in.
      if (now - last_heartbeat_ms_ >= options_.heartbeat_interval_ms) {
        last_heartbeat_ms_ = now;
        const std::string ping = cluster::encode(MsgType::kHeartbeat);
        for (auto& c : conns_) {
          if (!c->welcomed || !c->conn.valid()) continue;
          if (!c->conn.send_all(ping)) fail_connection(*c, "send_failed");
        }
      }
      for (auto& c : conns_) {
        if (!c->conn.valid()) continue;
        if (now - c->last_recv_ms > options_.heartbeat_timeout_ms) {
          note("cluster.heartbeat_timeouts", "worker.heartbeat_timeout",
               c->welcomed ? worker_lane(c->worker_index) : kMasterLane);
          fail_connection(*c, "heartbeat_timeout");
        }
      }

      // Sweep closed connections (ids keep job bookkeeping stable).
      conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                  [](const auto& c) {
                                    return !c->conn.valid();
                                  }),
                   conns_.end());

      dispatch_ready_jobs();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void Master::pump_connection(Connection& conn) {
  if (!conn.conn.valid()) return;
  char buf[16 * 1024];
  for (;;) {
    const int n = conn.conn.recv_some(buf, sizeof(buf), 0);
    if (n == 0) break;  // nothing more this tick
    if (n < 0) {
      fail_connection(conn, "connection_closed");
      return;
    }
    conn.last_recv_ms = now_ms();
    conn.decoder.feed(buf, static_cast<std::size_t>(n));
  }
  // Corrupt frames are survivable (the decoder resyncs); count them so the
  // corruption sweep can assert nothing corrupt was committed silently.
  while (conn.decoder.corrupt_frames() > conn.corrupt_seen) {
    ++conn.corrupt_seen;
    note("cluster.corrupt_frames", "frame.corrupt",
         conn.welcomed ? worker_lane(conn.worker_index) : kMasterLane);
  }
  util::WireFrame frame;
  while (conn.conn.valid() && conn.decoder.next(frame)) {
    handle_frame(conn, frame);
  }
}

void Master::handle_frame(Connection& conn, const util::WireFrame& frame) {
  if (!known_type(frame.type)) {
    // CRC-valid payload under a garbage type byte: a resync landed inside
    // hostile bytes. Treat the stream as poisoned.
    note("cluster.corrupt_frames", "frame.corrupt",
         conn.welcomed ? worker_lane(conn.worker_index) : kMasterLane);
    fail_connection(conn, "unknown_message_type");
    return;
  }
  const auto type = static_cast<MsgType>(frame.type);
  util::Json body;
  try {
    body = parse_body(frame);
  } catch (const std::exception&) {
    note("cluster.corrupt_frames", "frame.corrupt",
         conn.welcomed ? worker_lane(conn.worker_index) : kMasterLane);
    fail_connection(conn, "malformed_body");
    return;
  }

  try {
    switch (type) {
      case MsgType::kHello: {
        if (conn.welcomed) {
          fail_connection(conn, "duplicate_hello");
          return;
        }
        const Hello hello = Hello::from_json(body);
        std::string reject_reason;
        if (hello.protocol != kProtocolVersion)
          reject_reason = "protocol version mismatch";
        else if (hello.config_crc != options_.config_crc)
          reject_reason = "config digest mismatch";
        else if (quarantined_[hello.worker])
          reject_reason = "worker quarantined";
        if (!reject_reason.empty()) {
          Reject r;
          r.reason = reject_reason;
          conn.conn.send_all(cluster::encode(MsgType::kReject, r.to_json()));
          conn.conn.close();
          note("cluster.worker_rejects", "worker.reject", kMasterLane);
          return;
        }
        conn.hello = hello;
        auto [it, fresh] = worker_indices_.emplace(hello.worker,
                                                   worker_indices_.size());
        conn.worker_index = it->second;
        conn.welcomed = true;
        if (util::trace::enabled() && fresh) {
          util::trace::name_thread(util::trace::kClusterPid,
                                   worker_lane(conn.worker_index),
                                   "worker " + hello.worker);
        }
        Welcome w;
        w.worker_index = conn.worker_index;
        if (!conn.conn.send_all(
                cluster::encode(MsgType::kWelcome, w.to_json()))) {
          fail_connection(conn, "send_failed");
          return;
        }
        note("cluster.worker_connects", "worker.connect",
             worker_lane(conn.worker_index));
        util::log_info("cluster: worker '", hello.worker, "' joined (threads=",
                       hello.threads, ", ram=", hello.ram_bytes, ")");
        workers_cv_.notify_all();
        break;
      }
      case MsgType::kHeartbeatAck:
        break;  // last_recv_ms already refreshed in pump_connection
      case MsgType::kJobResult: {
        const JobResult res = JobResult::from_json(body);
        auto it = jobs_.find(res.job);
        if (it == jobs_.end() || it->second->done ||
            it->second->assigned_conn != conn.id) {
          // Unknown id, already-finished job, or a reply racing its own
          // re-dispatch. Either way the commons must not see it twice.
          note("cluster.stale_results", "result.stale",
               worker_lane(conn.worker_index));
          break;
        }
        PendingJob& job = *it->second;
        const bool id_matches =
            res.record.is_object() && res.record.contains("model_id") &&
            static_cast<int>(res.record.at("model_id").as_number()) ==
                job.model_id;
        if (!id_matches) {
          // CRC-valid frame carrying the wrong model's record: a worker
          // bug, not line noise. Never commit it; retry elsewhere.
          note("cluster.corrupt_results", "result.corrupt",
               worker_lane(conn.worker_index));
          if (conn.outstanding > 0) --conn.outstanding;
          job.assigned_conn = 0;
          job.not_before_ms =
              now_ms() + injector_.jittered_backoff_seconds(
                             0, static_cast<std::size_t>(job.id), job.attempts);
          queue_.push_back(job.id);
          fail_connection(conn, "corrupt_result");
          break;
        }
        if (conn.outstanding > 0) --conn.outstanding;
        if (metrics_)
          metrics_->counter("cluster.remote_results").add(1.0);
        else
          pending_counts_["cluster.remote_results"] += 1.0;
        if (util::trace::enabled()) {
          const double end_us = util::trace::now_us();
          util::trace::emit_complete(
              "job.remote", "cluster", job.dispatched_us,
              std::max(0.0, end_us - job.dispatched_us),
              util::trace::kClusterPid, worker_lane(conn.worker_index),
              {{"model_id", static_cast<double>(job.model_id)},
               {"attempt", static_cast<double>(job.attempts)}});
        }
        finish_job(job, res.record);
        break;
      }
      default:
        // Master-bound streams never carry master->worker message types.
        fail_connection(conn, "unexpected_message");
        break;
    }
  } catch (const std::exception& e) {
    util::log_warn("cluster: dropping worker after bad '",
                   type_name(type), "' message: ", e.what());
    note("cluster.corrupt_frames", "frame.corrupt",
         conn.welcomed ? worker_lane(conn.worker_index) : kMasterLane);
    fail_connection(conn, "bad_message_body");
  }
}

void Master::fail_connection(Connection& conn, const char* why) {
  if (!conn.conn.valid() && conn.outstanding == 0 && !conn.welcomed) return;
  conn.conn.close();
  const int lane =
      conn.welcomed ? worker_lane(conn.worker_index) : kMasterLane;
  if (conn.welcomed) {
    note("cluster.worker_failures", "worker.failure", lane);
    util::log_warn("cluster: worker '", conn.hello.worker, "' failed (", why,
                   ")");
    const std::size_t fails = ++failures_[conn.hello.worker];
    if (fails >= options_.quarantine_after &&
        !quarantined_[conn.hello.worker]) {
      quarantined_[conn.hello.worker] = true;
      note("cluster.worker_quarantines", "worker.quarantine", lane);
      util::log_warn("cluster: quarantining worker '", conn.hello.worker,
                     "' after ", fails, " failures");
    }
  }
  // Put every in-flight job back in the queue behind a jittered backoff.
  const double now = now_ms();
  for (auto& [id, job] : jobs_) {
    if (job->done || job->assigned_conn != conn.id) continue;
    job->assigned_conn = 0;
    job->not_before_ms =
        now + injector_.jittered_backoff_seconds(
                  0, static_cast<std::size_t>(job->id), job->attempts);
    queue_.push_back(id);
  }
  conn.outstanding = 0;
  conn.welcomed = false;
}

void Master::dispatch_ready_jobs() {
  if (queue_.empty()) return;
  const double now = now_ms();

  std::vector<Connection*> workers;
  for (auto& c : conns_)
    if (c->welcomed && c->conn.valid()) workers.push_back(c.get());

  std::deque<std::uint64_t> keep;
  while (!queue_.empty()) {
    const std::uint64_t id = queue_.front();
    queue_.pop_front();
    auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second->done ||
        it->second->assigned_conn != 0)
      continue;  // finished or re-assigned while queued
    PendingJob& job = *it->second;

    if (workers.empty()) {
      // Nobody reachable: degrade to local execution instead of wedging.
      note("cluster.local_fallbacks", "job.local_fallback", kMasterLane);
      finish_job(job, std::nullopt);
      continue;
    }
    if (job.attempts >= options_.max_attempts) {
      note("cluster.local_fallbacks", "job.local_fallback", kMasterLane);
      finish_job(job, std::nullopt);
      continue;
    }
    if (job.not_before_ms > now) {
      keep.push_back(id);
      continue;
    }

    // Capacity-aware placement: most free slots first, more RAM breaking
    // ties, then the stable worker index so placement is reproducible.
    Connection* best = nullptr;
    for (Connection* w : workers) {
      if (w->outstanding >= w->hello.threads) continue;
      if (!best) {
        best = w;
        continue;
      }
      const std::size_t free_b = best->hello.threads - best->outstanding;
      const std::size_t free_w = w->hello.threads - w->outstanding;
      if (free_w > free_b ||
          (free_w == free_b &&
           (w->hello.ram_bytes > best->hello.ram_bytes ||
            (w->hello.ram_bytes == best->hello.ram_bytes &&
             w->worker_index < best->worker_index))))
        best = w;
    }
    if (!best) {
      keep.push_back(id);  // all workers saturated; retry next tick
      continue;
    }

    ++job.attempts;
    const std::uint64_t dispatch_epoch = dispatch_counter_++;
    job.assigned_conn = best->id;
    job.dispatched_us = util::trace::now_us();
    ++best->outstanding;
    note(job.attempts > 1 ? "cluster.redispatches" : "cluster.dispatches",
         job.attempts > 1 ? "job.redispatch" : "job.dispatch",
         worker_lane(best->worker_index));

    const std::string bytes =
        cluster::encode(MsgType::kJobRequest, job.payload);
    if (injector_.torn_frame(dispatch_epoch, best->worker_index,
                             job.attempts)) {
      note("cluster.injected_torn_frames", "fault.torn_frame",
           worker_lane(best->worker_index));
      best->conn.send_torn(bytes, bytes.size() / 2);
      fail_connection(*best, "injected_torn_frame");
    } else if (!best->conn.send_all(bytes)) {
      fail_connection(*best, "send_failed");
    } else if (injector_.network_partition(dispatch_epoch, best->worker_index,
                                           job.attempts)) {
      note("cluster.injected_partitions", "fault.partition",
           worker_lane(best->worker_index));
      fail_connection(*best, "injected_partition");
    }
    if (!best->conn.valid()) {
      workers.erase(std::find(workers.begin(), workers.end(), best));
      // fail_connection requeued the job (and anything else in flight).
    }
  }
  queue_ = std::move(keep);
}

}  // namespace a4nn::cluster
