// Minimal TCP transport for the cluster: a listener and a connection, both
// thin RAII wrappers over POSIX sockets. No framing here — byte streams in
// and out; framing/integrity lives in util/frame + cluster/protocol.
//
// Failure philosophy: a transport error is never an exception on the hot
// path. send_all()/recv_some() report dead connections through their
// return values and the caller (master or worker) treats the peer as
// failed — that is the normal, survivable event this layer exists for.
// Only setup (bind/listen) throws, because a master that cannot listen has
// no degraded mode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace a4nn::cluster {

/// One connected TCP stream. Move-only; closes on destruction.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd);
  ~TcpConn();
  TcpConn(TcpConn&& other) noexcept;
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  /// Connect to host:port, waiting at most `timeout_ms`. Returns an
  /// invalid conn on failure (reconnect loops treat that as one attempt).
  static TcpConn connect(const std::string& host, std::uint16_t port,
                         int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Write every byte (retrying short writes). False: the peer is gone.
  bool send_all(std::string_view bytes);

  /// Torn-frame fault injection: write only `prefix` bytes, then close.
  /// Always leaves the connection invalid.
  void send_torn(std::string_view bytes, std::size_t prefix);

  /// Read up to `cap` bytes, waiting at most `timeout_ms` for readability.
  /// Returns bytes read (> 0), 0 on timeout, or -1 when the peer closed or
  /// the connection errored.
  int recv_some(char* buf, std::size_t cap, int timeout_ms);

 private:
  int fd_ = -1;
};

/// Listening socket. Throws std::runtime_error when the address cannot be
/// bound — there is no degraded mode for a master that cannot listen.
class TcpListener {
 public:
  /// Bind and listen on `bind_addr:port`; port 0 picks an ephemeral port
  /// (read it back with port()).
  TcpListener(const std::string& bind_addr, std::uint16_t port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_; }

  /// Accept one pending connection, waiting at most `timeout_ms`. Returns
  /// an invalid conn on timeout.
  TcpConn accept(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace a4nn::cluster
