// The cluster worker: connects to the master, reports its capacity, and
// turns JobRequests into JobResults until told to shut down.
//
// Survivability is the worker's whole job description:
//   - connect (and reconnect after any drop) with capped exponential
//     backoff, giving up only after `max_reconnects` consecutive failures;
//   - resume cleanly after a re-dispatch: the job handler runs the same
//     deterministic training path as a local run, and with a lineage
//     commons + resume_partial configured it continues from the model's
//     last epoch checkpoint instead of epoch 0;
//   - inject its own deterministic faults (crash-after-job, slow link,
//     torn result frame) keyed on the completed-job count, so a test run
//     replays the identical failure sequence every time.
//
// Concurrency: `threads` jobs run on an internal pool; the Hello capacity
// report tells the master exactly how many to keep in flight. Sends are
// serialized by a mutex (results and heartbeat acks share the stream).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "cluster/protocol.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"

namespace a4nn::cluster {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Stable identity across reconnects; the master quarantines by it.
  std::string name = "worker";
  /// Concurrent jobs (reported to the master as capacity).
  std::size_t threads = 1;
  /// Reported RAM; 0 autodetects from the OS.
  std::uint64_t ram_bytes = 0;
  /// Digest of the run-configuration JSON; must match the master's.
  std::uint32_t config_crc = 0;
  int connect_timeout_ms = 2000;
  /// Capped exponential reconnect backoff (host milliseconds).
  double reconnect_base_ms = 100.0;
  double reconnect_multiplier = 2.0;
  double reconnect_cap_ms = 2000.0;
  /// Consecutive failed connection attempts before run() gives up.
  std::size_t max_reconnects = 10;
  /// Worker-side fault injection (crash / slow link / torn result frame),
  /// keyed on the completed-job count. `fault.seed` falls back to `seed`.
  util::FaultConfig fault;
  std::uint64_t seed = 0;
};

struct WorkerStats {
  std::size_t jobs_completed = 0;
  std::size_t reconnects = 0;       // successful connections after the first
  std::size_t injected_crashes = 0;
  std::size_t injected_torn_frames = 0;
  std::size_t injected_slow_links = 0;
  /// True when run() ended because the master said Shutdown (as opposed to
  /// exhausting reconnect attempts or being rejected).
  bool clean_shutdown = false;
  std::string reject_reason;  // set when the master rejected the handshake
};

class Worker {
 public:
  /// `handler` turns one JobRequest into the evaluation-record JSON the
  /// master commits. It runs on pool threads and must be thread-safe; a
  /// throwing handler drops the connection (the master re-dispatches).
  using Handler = std::function<util::Json(const JobRequest&)>;

  explicit Worker(WorkerOptions options);

  /// Serve until Shutdown, rejection, or reconnect exhaustion.
  WorkerStats run(const Handler& handler);

  /// Ask a running run() to wind down after the current jobs finish.
  void request_stop() { stop_.store(true); }

 private:
  WorkerOptions options_;
  util::FaultInjector injector_;
  std::atomic<bool> stop_{false};
};

/// Total system RAM in bytes (sysconf), 0 when undeterminable.
std::uint64_t detect_ram_bytes();

}  // namespace a4nn::cluster
