#include "cluster/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace a4nn::cluster {

namespace {

bool wait_fd(int fd, short events, int timeout_ms) {
  pollfd p{fd, events, 0};
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r > 0) return (p.revents & (events | POLLERR | POLLHUP)) != 0;
    if (r == 0) return false;
    if (errno != EINTR) return false;
  }
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("transport: bad IPv4 address '" + host + "'");
  return addr;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpConn::TcpConn(int fd) : fd_(fd) {}

TcpConn::~TcpConn() { close(); }

TcpConn::TcpConn(TcpConn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpConn TcpConn::connect(const std::string& host, std::uint16_t port,
                         int timeout_ms) {
  sockaddr_in addr;
  try {
    addr = make_addr(host, port);
  } catch (const std::exception&) {
    return TcpConn();
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return TcpConn();
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return TcpConn();
  }
  if (rc != 0) {
    if (!wait_fd(fd, POLLOUT, timeout_ms)) {
      ::close(fd);
      return TcpConn();
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return TcpConn();
    }
  }
  // Back to blocking mode: reads/writes are driven by poll() deadlines.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  set_nodelay(fd);
  return TcpConn(fd);
}

bool TcpConn::send_all(std::string_view bytes) {
  if (fd_ < 0) return false;
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

void TcpConn::send_torn(std::string_view bytes, std::size_t prefix) {
  if (prefix > bytes.size()) prefix = bytes.size();
  send_all(bytes.substr(0, prefix));
  close();
}

int TcpConn::recv_some(char* buf, std::size_t cap, int timeout_ms) {
  if (fd_ < 0) return -1;
  if (!wait_fd(fd_, POLLIN, timeout_ms)) return 0;
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, cap, 0);
    if (n > 0) return static_cast<int>(n);
    if (n == 0) return -1;  // orderly shutdown by the peer
    if (errno == EINTR) continue;
    return -1;
  }
}

TcpListener::TcpListener(const std::string& bind_addr, std::uint16_t port) {
  const sockaddr_in addr = make_addr(bind_addr, port);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("transport: socket() failed");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("transport: bind " + bind_addr + ":" +
                             std::to_string(port) + " failed: " + err);
  }
  if (::listen(fd_, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("transport: listen failed: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpConn TcpListener::accept(int timeout_ms) {
  if (fd_ < 0) return TcpConn();
  if (!wait_fd(fd_, POLLIN, timeout_ms)) return TcpConn();
  const int c = ::accept(fd_, nullptr, nullptr);
  if (c < 0) return TcpConn();
  set_nodelay(c);
  return TcpConn(c);
}

}  // namespace a4nn::cluster
