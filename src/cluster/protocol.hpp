// Wire protocol for the master/worker NAS cluster.
//
// Every message is one wire frame: `[u32 len][u8 type][payload]` where the
// payload is an A4NNF1 integrity frame (util/frame) wrapping the message
// body as JSON text. The inner CRC makes torn writes, bit flips, and
// truncation detectable per message; util::StreamDecoder resynchronizes
// the byte stream after corruption. The type byte selects the body schema:
//
//   worker -> master:  Hello (identity + capacity report), JobResult,
//                      HeartbeatAck
//   master -> worker:  Welcome / Reject (handshake verdict), JobRequest,
//                      Heartbeat, Shutdown
//
// A JobRequest carries everything a worker needs to reproduce a training
// job bit-exactly: genome, model id, generation, and the per-model seed
// (as hex text — a u64 does not survive a JSON double). The run
// configuration itself is NOT shipped: master and workers are launched
// with the same flags, and the handshake compares a CRC-32 digest of the
// configuration JSON so a mismatched worker is rejected instead of
// silently computing different results.
#pragma once

#include <cstdint>
#include <string>

#include "util/frame.hpp"
#include "util/json.hpp"

namespace a4nn::cluster {

inline constexpr int kProtocolVersion = 1;

enum class MsgType : std::uint8_t {
  kHello = 1,
  kWelcome = 2,
  kReject = 3,
  kJobRequest = 4,
  kJobResult = 5,
  kHeartbeat = 6,
  kHeartbeatAck = 7,
  kShutdown = 8,
};

/// Whether a received type byte names a known message (torn headers can
/// produce arbitrary type bytes even when the payload CRC happens to pass).
bool known_type(std::uint8_t type);
const char* type_name(MsgType type);

/// Worker -> master handshake: identity + capacity report.
struct Hello {
  int protocol = kProtocolVersion;
  std::string worker;        // stable identity across reconnects
  std::uint64_t ram_bytes = 0;
  std::size_t threads = 1;   // concurrent jobs this worker can run
  std::uint32_t config_crc = 0;  // digest of the run-configuration JSON

  util::Json to_json() const;
  static Hello from_json(const util::Json& j);
};

struct Welcome {
  std::size_t worker_index = 0;

  util::Json to_json() const;
  static Welcome from_json(const util::Json& j);
};

struct Reject {
  std::string reason;

  util::Json to_json() const;
  static Reject from_json(const util::Json& j);
};

struct JobRequest {
  std::uint64_t job = 0;  // master-assigned dispatch id, echoed in the result
  int model_id = -1;
  int generation = -1;
  std::string seed_hex;   // per-model training seed, u64 as lowercase hex
  util::Json genome;      // nas::Genome::to_json()
  /// Objective mode of the search dispatching this job
  /// (nas::objective_mode_name). Serialized only when not "flops", so
  /// default-mode requests keep their historical wire bytes. Informational
  /// for workers — latency is always probed on the master's own hardware —
  /// but lets a worker log/refuse a mode mismatch beyond the config CRC.
  std::string objective = "flops";

  util::Json to_json() const;
  static JobRequest from_json(const util::Json& j);
};

struct JobResult {
  std::uint64_t job = 0;
  util::Json record;      // nas::EvaluationRecord::to_json()

  util::Json to_json() const;
  static JobResult from_json(const util::Json& j);
};

/// Encode a message body as one wire frame ready for send().
std::string encode(MsgType type, const util::Json& body);
/// Bodyless messages (heartbeats, shutdown).
std::string encode(MsgType type);

/// Parse a decoded wire frame's payload text as the message body. Throws
/// util::JsonError on malformed text (a CRC-valid frame always parses in
/// practice; this guards against a sender bug).
util::Json parse_body(const util::WireFrame& frame);

/// u64 <-> hex helpers for seeds (JSON numbers are doubles; 2^53 is not
/// enough for a mixed seed).
std::string u64_to_hex(std::uint64_t v);
std::uint64_t hex_to_u64(const std::string& s);

}  // namespace a4nn::cluster
