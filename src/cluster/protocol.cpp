#include "cluster/protocol.hpp"

#include <charconv>
#include <stdexcept>

namespace a4nn::cluster {

bool known_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(MsgType::kHello) &&
         type <= static_cast<std::uint8_t>(MsgType::kShutdown);
}

const char* type_name(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kWelcome: return "welcome";
    case MsgType::kReject: return "reject";
    case MsgType::kJobRequest: return "job_request";
    case MsgType::kJobResult: return "job_result";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kHeartbeatAck: return "heartbeat_ack";
    case MsgType::kShutdown: return "shutdown";
  }
  return "unknown";
}

util::Json Hello::to_json() const {
  util::Json j = util::Json::object();
  j["protocol"] = protocol;
  j["worker"] = worker;
  j["ram_bytes"] = static_cast<double>(ram_bytes);
  j["threads"] = threads;
  j["config_crc"] = static_cast<double>(config_crc);
  return j;
}

Hello Hello::from_json(const util::Json& j) {
  Hello h;
  h.protocol = static_cast<int>(j.at("protocol").as_number());
  h.worker = j.at("worker").as_string();
  h.ram_bytes = static_cast<std::uint64_t>(j.at("ram_bytes").as_number());
  h.threads = static_cast<std::size_t>(j.at("threads").as_number());
  h.config_crc = static_cast<std::uint32_t>(j.at("config_crc").as_number());
  return h;
}

util::Json Welcome::to_json() const {
  util::Json j = util::Json::object();
  j["worker_index"] = worker_index;
  return j;
}

Welcome Welcome::from_json(const util::Json& j) {
  Welcome w;
  w.worker_index = static_cast<std::size_t>(j.at("worker_index").as_number());
  return w;
}

util::Json Reject::to_json() const {
  util::Json j = util::Json::object();
  j["reason"] = reason;
  return j;
}

Reject Reject::from_json(const util::Json& j) {
  Reject r;
  r.reason = j.at("reason").as_string();
  return r;
}

util::Json JobRequest::to_json() const {
  util::Json j = util::Json::object();
  j["job"] = static_cast<double>(job);
  j["model_id"] = model_id;
  j["generation"] = generation;
  j["seed"] = seed_hex;
  j["genome"] = genome;
  if (objective != "flops") j["objective"] = objective;
  return j;
}

JobRequest JobRequest::from_json(const util::Json& j) {
  JobRequest r;
  r.job = static_cast<std::uint64_t>(j.at("job").as_number());
  r.model_id = static_cast<int>(j.at("model_id").as_number());
  r.generation = static_cast<int>(j.at("generation").as_number());
  r.seed_hex = j.at("seed").as_string();
  r.genome = j.at("genome");
  r.objective = j.string_or("objective", "flops");
  return r;
}

util::Json JobResult::to_json() const {
  util::Json j = util::Json::object();
  j["job"] = static_cast<double>(job);
  j["record"] = record;
  return j;
}

JobResult JobResult::from_json(const util::Json& j) {
  JobResult r;
  r.job = static_cast<std::uint64_t>(j.at("job").as_number());
  r.record = j.at("record");
  return r;
}

std::string encode(MsgType type, const util::Json& body) {
  return util::encode_wire_frame(static_cast<std::uint8_t>(type), body.dump());
}

std::string encode(MsgType type) { return encode(type, util::Json::object()); }

util::Json parse_body(const util::WireFrame& frame) {
  return util::Json::parse(frame.payload);
}

std::string u64_to_hex(std::uint64_t v) {
  char buf[17];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v, 16);
  if (ec != std::errc{}) throw std::runtime_error("u64_to_hex: conversion failed");
  return std::string(buf, ptr);
}

std::uint64_t hex_to_u64(const std::string& s) {
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 16);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    throw std::runtime_error("hex_to_u64: malformed seed '" + s + "'");
  return v;
}

}  // namespace a4nn::cluster
