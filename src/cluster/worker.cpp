#include "cluster/worker.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <utility>

#include "cluster/transport.hpp"
#include "util/frame.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace a4nn::cluster {

std::uint64_t detect_ram_bytes() {
#if defined(_SC_PHYS_PAGES) && defined(_SC_PAGESIZE)
  const long pages = ::sysconf(_SC_PHYS_PAGES);
  const long page = ::sysconf(_SC_PAGESIZE);
  if (pages > 0 && page > 0)
    return static_cast<std::uint64_t>(pages) * static_cast<std::uint64_t>(page);
#endif
  return 0;
}

Worker::Worker(WorkerOptions options)
    : options_(std::move(options)), injector_([&] {
        util::FaultConfig fc = options_.fault;
        if (fc.seed == 0) fc.seed = options_.seed;
        return fc;
      }()) {
  if (options_.ram_bytes == 0) options_.ram_bytes = detect_ram_bytes();
  if (options_.threads == 0) options_.threads = 1;
}

WorkerStats Worker::run(const Handler& handler) {
  WorkerStats stats;
  // Pool threads bump these concurrently when `threads > 1`; folded back
  // into `stats` before run() returns.
  std::atomic<std::size_t> jobs_completed{0};
  std::atomic<std::size_t> injected_crashes{0};
  std::atomic<std::size_t> injected_torn_frames{0};
  std::atomic<std::size_t> injected_slow_links{0};
  const auto fold_stats = [&] {
    stats.jobs_completed = jobs_completed.load();
    stats.injected_crashes = injected_crashes.load();
    stats.injected_torn_frames = injected_torn_frames.load();
    stats.injected_slow_links = injected_slow_links.load();
  };
  std::size_t consecutive_failures = 0;
  bool ever_connected = false;
  std::size_t worker_index = 0;  // assigned by the first Welcome

  while (!stop_.load()) {
    if (consecutive_failures >= options_.max_reconnects) {
      util::log_error("worker '", options_.name, "': giving up after ",
                      consecutive_failures, " failed connection attempts");
      break;
    }
    if (consecutive_failures > 0) {
      double delay = options_.reconnect_base_ms;
      for (std::size_t i = 1; i < consecutive_failures; ++i)
        delay *= options_.reconnect_multiplier;
      delay = std::min(delay, options_.reconnect_cap_ms);
      // Jitter from the seeded hash stream, so reconnect timelines replay.
      delay *= injector_.jittered_backoff_seconds(jobs_completed.load(),
                                                  worker_index,
                                                  consecutive_failures) /
               std::max(1e-12, injector_.backoff_seconds(consecutive_failures));
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay));
      if (stop_.load()) break;
    }

    TcpConn conn = TcpConn::connect(options_.host, options_.port,
                                    options_.connect_timeout_ms);
    if (!conn.valid()) {
      ++consecutive_failures;
      continue;
    }

    Hello hello;
    hello.worker = options_.name;
    hello.ram_bytes = options_.ram_bytes;
    hello.threads = options_.threads;
    hello.config_crc = options_.config_crc;
    if (!conn.send_all(cluster::encode(MsgType::kHello, hello.to_json()))) {
      ++consecutive_failures;
      continue;
    }

    // Serve this connection. Sends are serialized: results from pool
    // threads and heartbeat acks from the recv loop share the stream.
    std::mutex send_mutex;
    std::atomic<bool> conn_dead{false};
    // Always at least one real pool thread: jobs must run OFF the recv
    // thread, or a long training would starve heartbeat acks and get this
    // worker declared dead mid-job.
    util::ThreadPool pool(options_.threads);
    util::StreamDecoder decoder;
    bool welcomed = false;
    char buf[16 * 1024];

    while (!stop_.load() && !conn_dead.load()) {
      const int n = conn.recv_some(buf, sizeof(buf), 50);
      if (n < 0) break;
      if (n == 0) continue;
      decoder.feed(buf, static_cast<std::size_t>(n));

      util::WireFrame frame;
      while (!conn_dead.load() && decoder.next(frame)) {
        if (!known_type(frame.type)) continue;  // resync landed in garbage
        const auto type = static_cast<MsgType>(frame.type);
        try {
          switch (type) {
            case MsgType::kWelcome: {
              const Welcome w = Welcome::from_json(parse_body(frame));
              worker_index = w.worker_index;
              if (ever_connected) ++stats.reconnects;
              ever_connected = true;
              welcomed = true;
              consecutive_failures = 0;
              util::log_info("worker '", options_.name,
                             "': connected as index ", worker_index);
              break;
            }
            case MsgType::kReject: {
              const Reject r = Reject::from_json(parse_body(frame));
              stats.reject_reason = r.reason;
              util::log_error("worker '", options_.name,
                              "': rejected by master: ", r.reason);
              pool.wait_idle();
              fold_stats();
              return stats;
            }
            case MsgType::kHeartbeat: {
              std::lock_guard<std::mutex> lock(send_mutex);
              if (!conn.send_all(cluster::encode(MsgType::kHeartbeatAck)))
                conn_dead.store(true);
              break;
            }
            case MsgType::kJobRequest: {
              if (!welcomed) break;
              const JobRequest req = JobRequest::from_json(parse_body(frame));
              pool.submit([&, req] {
                util::Json record;
                try {
                  record = handler(req);
                } catch (const std::exception& e) {
                  util::log_error("worker '", options_.name, "': job ",
                                  req.job, " (model ", req.model_id,
                                  ") threw: ", e.what());
                  conn_dead.store(true);  // master re-dispatches elsewhere
                  return;
                }
                const std::size_t done = ++jobs_completed;

                // Deterministic worker-side faults, keyed on progress.
                if (injector_.slow_link(done, worker_index, 1)) {
                  ++injected_slow_links;
                  std::this_thread::sleep_for(
                      std::chrono::duration<double, std::milli>(
                          injector_.config().slow_link_delay_ms));
                }
                JobResult res;
                res.job = req.job;
                res.record = std::move(record);
                const std::string bytes =
                    cluster::encode(MsgType::kJobResult, res.to_json());
                if (injector_.worker_crash(done, worker_index, 1)) {
                  // Die with the result unsent: the canonical lost-work
                  // case the master's re-dispatch exists for.
                  ++injected_crashes;
                  std::lock_guard<std::mutex> lock(send_mutex);
                  conn.close();
                  conn_dead.store(true);
                  return;
                }
                if (injector_.torn_frame(done, worker_index, 1)) {
                  ++injected_torn_frames;
                  std::lock_guard<std::mutex> lock(send_mutex);
                  conn.send_torn(bytes, bytes.size() / 2);
                  conn_dead.store(true);
                  return;
                }
                std::lock_guard<std::mutex> lock(send_mutex);
                if (!conn.send_all(bytes)) conn_dead.store(true);
              });
              break;
            }
            case MsgType::kShutdown:
              stats.clean_shutdown = true;
              pool.wait_idle();
              fold_stats();
              return stats;
            default:
              break;  // worker-bound streams ignore worker->master types
          }
        } catch (const std::exception& e) {
          util::log_warn("worker '", options_.name, "': dropping bad '",
                         type_name(type), "' message: ", e.what());
        }
      }
    }
    pool.wait_idle();
    conn.close();
    if (stop_.load()) break;
    // Dropped connection (real or injected): come back like a restarted
    // process — one backoff step, then a fresh handshake.
    consecutive_failures = std::max<std::size_t>(consecutive_failures, 1);
  }
  stats.clean_shutdown = stats.clean_shutdown || stop_.load();
  fold_stats();
  return stats;
}

}  // namespace a4nn::cluster
