// Post-training int8 quantization for the serving path.
//
// A QuantizedModel is built from a trained float model plus one seeded
// calibration batch: Conv2d/Linear weights get symmetric per-output-row
// int8 scales, activations get one per-layer scale calibrated from the
// batch's observed dynamic range, and every other layer (pooling, flatten,
// batch-norm, ...) runs in float exactly as before. Inference multiplies
// int8 x int8 into int32 accumulators — exact arithmetic, so quantized
// predictions are bit-deterministic across runs, batch splits, and thread
// counts by construction (the float kernels need a summation-order
// contract for that; the int8 path gets it for free).
//
// The snapshot format rides the same A4NNF1 integrity frames as every
// other commons artifact, so a torn write or bit flip quarantines instead
// of serving garbage.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "nn/model.hpp"
#include "tensor/ops.hpp"
#include "util/json.hpp"

namespace a4nn::quant {

/// One int8-quantized GEMM layer (conv2d or linear).
struct QuantizedLayer {
  util::Json spec;  ///< the float layer's spec() (geometry + fused act)
  std::size_t rows = 0;  ///< out_channels (conv) / out_features (linear)
  std::size_t cols = 0;  ///< patch size (conv) / in_features (linear)
  std::vector<std::int8_t> weight;   ///< (rows x cols) row-major
  std::vector<float> weight_scales;  ///< per-row symmetric scales
  std::vector<float> bias;           ///< kept in float (exact)
  float act_scale = 1.0f;  ///< calibrated input-activation scale
};

/// Hybrid float/int8 inference pipeline over a trained model's trunk.
class QuantizedModel {
 public:
  /// Quantize `model` using `calibration` (a batch at the model's input
  /// shape) to pick activation scales. The calibration forward passes run
  /// in inference mode; the float model is not modified.
  static QuantizedModel quantize(nn::Model& model,
                                 const tensor::Tensor& calibration);

  /// Inference on a batch (N x C x H x W): int8 GEMMs for the quantized
  /// layers, the original float code for everything else.
  tensor::Tensor predict(const tensor::Tensor& batch);

  const tensor::Shape& input_shape() const { return input_shape_; }
  std::size_t stage_count() const { return stages_.size(); }
  /// How many stages run on the int8 kernels.
  std::size_t quantized_layer_count() const;
  /// int8 weight values stored across all quantized layers.
  std::size_t int8_parameters() const;

  util::Json to_json() const;
  static QuantizedModel from_json(const util::Json& j);

  /// A4NNF1-framed snapshot on disk.
  void save(const std::filesystem::path& path) const;
  static QuantizedModel load(const std::filesystem::path& path);

 private:
  struct Stage {
    /// Exactly one of the two is set.
    nn::LayerPtr float_layer;             // with float spec+weights below
    std::optional<QuantizedLayer> quant;  // int8 conv2d / linear
    util::Json float_spec;     // float stage serialization
    util::Json float_weights;  // (unused for quant stages)
  };

  tensor::Tensor forward_quant_linear(const QuantizedLayer& q,
                                      const tensor::Tensor& x) const;
  tensor::Tensor forward_quant_conv(const QuantizedLayer& q,
                                    const tensor::Tensor& x) const;

  tensor::Shape input_shape_;
  std::vector<Stage> stages_;
};

/// Top-1 accuracy (%) of `predict`-style logits against labels: shared by
/// the float/int8 accuracy guard in the serving registry and the tests.
double top1_accuracy(const tensor::Tensor& logits,
                     const std::vector<std::size_t>& labels);

}  // namespace a4nn::quant
