#include "quant/quantized_model.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "nn/factory.hpp"
#include "util/frame.hpp"
#include "util/fsutil.hpp"
#include "util/rng.hpp"

namespace a4nn::quant {

namespace {

constexpr const char* kFormat = "a4nn-quant-v1";

bool is_gemm_kind(const std::string& kind) {
  return kind == "conv2d" || kind == "linear";
}

bool spec_relu(const util::Json& spec) {
  return spec.string_or("activation", "none") == "relu";
}

/// int8 blobs dominate the snapshot, so they are hex strings (2 chars per
/// value) instead of JSON number arrays — ~5x smaller and round-trips the
/// bytes exactly.
std::string hex_encode(const std::vector<std::int8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::int8_t b : bytes) {
    const auto u = static_cast<std::uint8_t>(b);
    out.push_back(digits[u >> 4]);
    out.push_back(digits[u & 0xF]);
  }
  return out;
}

std::uint8_t hex_nibble(char c) {
  if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
  if (c >= 'A' && c <= 'F') return static_cast<std::uint8_t>(c - 'A' + 10);
  throw std::invalid_argument("quant snapshot: invalid hex digit");
}

std::vector<std::int8_t> hex_decode(const std::string& hex) {
  if (hex.size() % 2 != 0)
    throw std::invalid_argument("quant snapshot: odd-length hex blob");
  std::vector<std::int8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<std::int8_t>(
        (hex_nibble(hex[2 * i]) << 4) | hex_nibble(hex[2 * i + 1]));
  return out;
}

std::vector<float> float_vector(const util::Json& j) {
  const auto doubles = j.as_double_vector();
  std::vector<float> out;
  out.reserve(doubles.size());
  for (double d : doubles) out.push_back(static_cast<float>(d));
  return out;
}

tensor::ConvGeometry conv_geometry(const util::Json& spec,
                                   const tensor::Shape& in) {
  tensor::ConvGeometry g;
  g.in_channels = static_cast<std::size_t>(spec.at("in_channels").as_int());
  g.in_h = in[in.size() - 2];
  g.in_w = in[in.size() - 1];
  g.kernel = static_cast<std::size_t>(spec.at("kernel").as_int());
  g.stride = static_cast<std::size_t>(spec.at("stride").as_int());
  g.pad = static_cast<std::size_t>(spec.at("pad").as_int());
  g.validate();
  return g;
}

/// Quantize a GEMM layer's float weights/bias (as serialized by the layer)
/// into the per-row int8 form the serving kernel consumes. Row = output
/// channel (conv) or output feature (linear): scaling each row by its own
/// dynamic range keeps a few large filters from crushing the resolution of
/// every other one.
QuantizedLayer quantize_gemm_layer(const util::Json& spec,
                                   const util::Json& weights,
                                   float act_scale) {
  const tensor::Tensor w = nn::tensor_from_json(weights.at("weight"));
  const tensor::Tensor b = nn::tensor_from_json(weights.at("bias"));
  if (w.rank() != 2)
    throw std::invalid_argument("quantize: expected a 2-d GEMM weight");

  QuantizedLayer q;
  q.spec = spec;
  q.rows = w.dim(0);
  q.cols = w.dim(1);
  q.act_scale = act_scale;
  q.weight.resize(q.rows * q.cols);
  q.weight_scales.reserve(q.rows);
  for (std::size_t r = 0; r < q.rows; ++r) {
    const std::span<const float> row = w.span().subspan(r * q.cols, q.cols);
    const float scale = tensor::symmetric_scale_s8(tensor::max_abs(row));
    q.weight_scales.push_back(scale);
    tensor::quantize_s8(row, scale, q.weight.data() + r * q.cols);
  }
  q.bias.assign(b.span().begin(), b.span().end());
  if (q.bias.size() != q.rows)
    throw std::invalid_argument("quantize: bias/row count mismatch");
  return q;
}

}  // namespace

QuantizedModel QuantizedModel::quantize(nn::Model& model,
                                        const tensor::Tensor& calibration) {
  if (calibration.rank() != 4 || calibration.dim(0) == 0)
    throw std::invalid_argument(
        "QuantizedModel::quantize: calibration batch must be NCHW with N > 0");

  QuantizedModel out;
  out.input_shape_ = model.input_shape();

  // One calibration pass: each GEMM layer's activation scale is taken from
  // the dynamic range its *input* shows on the calibration batch, then the
  // batch is forwarded through the original float layer so downstream
  // layers calibrate against exactly the activations the float model
  // produces.
  tensor::Tensor x = calibration;
  nn::Sequential& trunk = model.trunk();
  for (std::size_t i = 0; i < trunk.layer_count(); ++i) {
    nn::Layer& layer = trunk.layer(i);
    Stage stage;
    if (is_gemm_kind(layer.kind())) {
      const float act_scale =
          tensor::symmetric_scale_s8(tensor::max_abs(x.span()));
      stage.quant = quantize_gemm_layer(layer.spec(), layer.weights(),
                                        act_scale);
    } else {
      stage.float_spec = layer.spec();
      stage.float_weights = layer.weights();
      util::Rng rng(0);  // placeholder init; real weights loaded below
      stage.float_layer = nn::make_layer(stage.float_spec, rng);
      stage.float_layer->load_weights(stage.float_weights);
    }
    x = layer.forward(x, /*training=*/false);
    out.stages_.push_back(std::move(stage));
  }
  return out;
}

tensor::Tensor QuantizedModel::forward_quant_linear(
    const QuantizedLayer& q, const tensor::Tensor& x) const {
  if (x.rank() != 2 || x.dim(1) != q.cols)
    throw std::invalid_argument(
        "QuantizedModel: linear input shape mismatch, got " +
        tensor::shape_to_string(x.shape()));
  const std::size_t batch = x.dim(0);

  // A = quantized activations (batch x in), one per-tensor scale;
  // B_t = int8 weights (out x in), per-output-feature scales.
  std::vector<std::int8_t> aq(batch * q.cols);
  tensor::quantize_s8(x.span(), q.act_scale, aq.data());

  tensor::Tensor out({batch, q.rows});
  tensor::Epilogue ep;
  ep.bias = tensor::Epilogue::Bias::kPerCol;
  ep.bias_data = q.bias.data();
  ep.relu = spec_relu(q.spec);
  tensor::gemm_s8_a_bt_ex(batch, q.cols, q.rows, aq.data(),
                          std::span<const float>(&q.act_scale, 1),
                          q.weight.data(), q.weight_scales, out.data(), ep);
  return out;
}

tensor::Tensor QuantizedModel::forward_quant_conv(
    const QuantizedLayer& q, const tensor::Tensor& x) const {
  if (x.rank() != 4)
    throw std::invalid_argument("QuantizedModel: conv input must be NCHW");
  const tensor::ConvGeometry g = conv_geometry(q.spec, x.shape());
  const std::size_t patch = g.patch_size();
  if (patch != q.cols)
    throw std::invalid_argument("QuantizedModel: conv patch size mismatch");
  const std::size_t batch = x.dim(0);
  const std::size_t cols = g.out_h() * g.out_w();
  const std::size_t image_size = g.in_channels * g.in_h * g.in_w;

  tensor::Tensor out({batch, q.rows, g.out_h(), g.out_w()});
  tensor::Epilogue ep;
  ep.bias = tensor::Epilogue::Bias::kPerRow;
  ep.bias_data = q.bias.data();
  ep.relu = spec_relu(q.spec);

  // Per image: float im2col, quantize the columns once with the calibrated
  // activation scale, transpose to the (n x k) row-major layout the b_t
  // kernel streams, and run the int8 GEMM:
  //   out(oc x cells) = act(dequant(W_q(oc x patch) * cols_q^T) + bias)
  std::vector<float> columns(patch * cols);
  std::vector<std::int8_t> columns_q(patch * cols);
  std::vector<std::int8_t> columns_qt(cols * patch);
  for (std::size_t n = 0; n < batch; ++n) {
    tensor::im2col(g, {x.data() + n * image_size, image_size}, columns);
    tensor::quantize_s8(columns, q.act_scale, columns_q.data());
    for (std::size_t p = 0; p < patch; ++p)
      for (std::size_t c = 0; c < cols; ++c)
        columns_qt[c * patch + p] = columns_q[p * cols + c];
    tensor::gemm_s8_a_bt_ex(q.rows, patch, cols, q.weight.data(),
                            q.weight_scales, columns_qt.data(),
                            std::span<const float>(&q.act_scale, 1),
                            out.data() + n * q.rows * cols, ep);
  }
  return out;
}

tensor::Tensor QuantizedModel::predict(const tensor::Tensor& batch) {
  tensor::Tensor x = batch;
  for (Stage& stage : stages_) {
    if (stage.quant) {
      const std::string kind = stage.quant->spec.at("kind").as_string();
      x = kind == "conv2d" ? forward_quant_conv(*stage.quant, x)
                           : forward_quant_linear(*stage.quant, x);
    } else {
      x = stage.float_layer->forward(x, /*training=*/false);
    }
  }
  return x;
}

std::size_t QuantizedModel::quantized_layer_count() const {
  std::size_t n = 0;
  for (const Stage& s : stages_)
    if (s.quant) ++n;
  return n;
}

std::size_t QuantizedModel::int8_parameters() const {
  std::size_t n = 0;
  for (const Stage& s : stages_)
    if (s.quant) n += s.quant->weight.size();
  return n;
}

util::Json QuantizedModel::to_json() const {
  util::Json j = util::Json::object();
  j["format"] = kFormat;
  util::JsonArray shape;
  for (std::size_t d : input_shape_) shape.emplace_back(d);
  j["input_shape"] = util::Json(std::move(shape));
  util::Json stages = util::Json::array();
  for (const Stage& s : stages_) {
    util::Json st = util::Json::object();
    if (s.quant) {
      const QuantizedLayer& q = *s.quant;
      st["type"] = "int8";
      st["spec"] = q.spec;
      st["rows"] = q.rows;
      st["cols"] = q.cols;
      st["act_scale"] = static_cast<double>(q.act_scale);
      st["weight_scales"] = util::Json(q.weight_scales);
      st["bias"] = util::Json(q.bias);
      st["weight"] = hex_encode(q.weight);
    } else {
      st["type"] = "float";
      st["spec"] = s.float_spec;
      st["weights"] = s.float_weights;
    }
    stages.push_back(std::move(st));
  }
  j["stages"] = std::move(stages);
  return j;
}

QuantizedModel QuantizedModel::from_json(const util::Json& j) {
  if (j.string_or("format", "") != kFormat)
    throw std::invalid_argument("quant snapshot: unknown format '" +
                                j.string_or("format", "<missing>") + "'");
  QuantizedModel out;
  for (const auto& d : j.at("input_shape").as_array())
    out.input_shape_.push_back(static_cast<std::size_t>(d.as_int()));
  for (const auto& st : j.at("stages").as_array()) {
    Stage stage;
    const std::string type = st.at("type").as_string();
    if (type == "int8") {
      QuantizedLayer q;
      q.spec = st.at("spec");
      q.rows = static_cast<std::size_t>(st.at("rows").as_int());
      q.cols = static_cast<std::size_t>(st.at("cols").as_int());
      q.act_scale = static_cast<float>(st.at("act_scale").as_number());
      q.weight_scales = float_vector(st.at("weight_scales"));
      q.bias = float_vector(st.at("bias"));
      q.weight = hex_decode(st.at("weight").as_string());
      if (q.weight.size() != q.rows * q.cols ||
          q.weight_scales.size() != q.rows || q.bias.size() != q.rows)
        throw std::invalid_argument("quant snapshot: stage size mismatch");
      stage.quant = std::move(q);
    } else if (type == "float") {
      stage.float_spec = st.at("spec");
      stage.float_weights = st.at("weights");
      util::Rng rng(0);
      stage.float_layer = nn::make_layer(stage.float_spec, rng);
      stage.float_layer->load_weights(stage.float_weights);
    } else {
      throw std::invalid_argument("quant snapshot: unknown stage type '" +
                                  type + "'");
    }
    out.stages_.push_back(std::move(stage));
  }
  return out;
}

void QuantizedModel::save(const std::filesystem::path& path) const {
  util::write_file(path, util::frame(to_json().dump()));
}

QuantizedModel QuantizedModel::load(const std::filesystem::path& path) {
  const auto content = util::unframe_or_legacy(util::read_file(path));
  return from_json(util::Json::parse(content.payload));
}

double top1_accuracy(const tensor::Tensor& logits,
                     const std::vector<std::size_t>& labels) {
  if (logits.rank() != 2 || logits.dim(0) != labels.size())
    throw std::invalid_argument("top1_accuracy: logits/labels mismatch");
  if (labels.empty()) return 0.0;
  const std::size_t classes = logits.dim(1);
  std::size_t correct = 0;
  for (std::size_t n = 0; n < labels.size(); ++n) {
    const std::span<const float> row =
        logits.span().subspan(n * classes, classes);
    if (tensor::argmax(row) == labels[n]) ++correct;
  }
  return 100.0 * static_cast<double>(correct) /
         static_cast<double>(labels.size());
}

}  // namespace a4nn::quant
