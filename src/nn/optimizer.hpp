// First-order optimizers operating on ParamSlot views.
#pragma once

#include <unordered_map>

#include "nn/layer.hpp"

namespace a4nn::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply one update step to every slot, then the caller zeroes grads.
  virtual void step(std::vector<ParamSlot>& slots) = 0;
  virtual std::string kind() const = 0;
};

/// SGD with classical momentum and decoupled L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(double lr, double momentum = 0.9, double weight_decay = 0.0);

  void step(std::vector<ParamSlot>& slots) override;
  std::string kind() const override { return "sgd"; }

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

  /// Momentum buffers as JSON, one array per slot in slot order. Part of
  /// the training-state checkpoint that makes mid-run resume bit-exact.
  util::Json state_json(const std::vector<ParamSlot>& slots) const;
  /// Restore buffers captured by state_json from the same architecture.
  void load_state(const std::vector<ParamSlot>& slots, const util::Json& j);

 private:
  double lr_, momentum_, weight_decay_;
  // Velocity buffers keyed by parameter tensor address; layers own their
  // tensors for the whole training run so addresses are stable.
  std::unordered_map<const Tensor*, std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
       double eps = 1e-8, double weight_decay = 0.0);

  void step(std::vector<ParamSlot>& slots) override;
  std::string kind() const override { return "adam"; }

 private:
  struct State {
    std::vector<float> m, v;
  };
  double lr_, beta1_, beta2_, eps_, weight_decay_;
  std::uint64_t t_ = 0;
  std::unordered_map<const Tensor*, State> state_;
};

}  // namespace a4nn::nn
