// Layer abstraction for the from-scratch NN library.
//
// Every layer owns its parameters and gradient buffers, implements
// forward/backward, reports FLOPs per image (the second NAS objective),
// and serializes both its hyperparameter spec and its weights to JSON so
// the lineage tracker can snapshot a model after every training epoch and
// reload it from any point — the paper's "re-evaluate from any point in
// the training phase" requirement.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace a4nn::nn {

using tensor::Shape;
using tensor::Tensor;

/// A mutable view of one parameter tensor and its gradient, handed to the
/// optimizer. Views stay valid for the lifetime of the owning layer.
struct ParamSlot {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass on a batch (N x ...). `training` toggles dropout /
  /// batch-norm statistics and backward caching: with training=true layers
  /// cache what backward needs; with training=false the pass is pure — no
  /// member state is written (temporaries live on the thread's
  /// ScratchArena), so concurrent inference on a shared model is safe and
  /// per-sample results are batch-size invariant. backward() is only valid
  /// after a forward(training=true) on the same thread.
  virtual Tensor forward(const Tensor& x, bool training) = 0;

  /// Backward pass: gradient w.r.t. this layer's output in, gradient
  /// w.r.t. its input out. Parameter gradients accumulate into the slots.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Parameter/gradient views for the optimizer. Default: no parameters.
  virtual std::vector<ParamSlot> params() { return {}; }

  /// Output shape for a given input shape (both without the batch dim).
  virtual Shape output_shape(const Shape& in) const = 0;

  /// Forward FLOPs for one image of the given shape (no batch dim).
  /// Multiply-accumulate counted as 2 FLOPs, matching common convention.
  virtual std::uint64_t flops(const Shape& in) const = 0;

  /// Stable type tag used by the factory ("conv2d", "relu", ...).
  virtual std::string kind() const = 0;

  /// Hyperparameter spec (architecture description, no weights).
  virtual util::Json spec() const = 0;

  /// Weight snapshot; default for stateless layers is an empty object.
  virtual util::Json weights() const { return util::Json::object(); }

  /// Restore weights from a snapshot produced by weights().
  virtual void load_weights(const util::Json& w) { (void)w; }

  /// Zero all parameter gradients.
  void zero_grad() {
    for (auto& p : params()) p.grad->zero();
  }
};

using LayerPtr = std::unique_ptr<Layer>;

/// Serialization helpers shared by layer implementations.
util::Json tensor_to_json(const Tensor& t);
Tensor tensor_from_json(const util::Json& j);

}  // namespace a4nn::nn
