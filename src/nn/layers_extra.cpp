#include "nn/layers_extra.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"
#include "tensor/scratch.hpp"

namespace a4nn::nn {

// --------------------------------------------------------- SeparableConv2d

SeparableConv2d::SeparableConv2d(std::size_t in_channels,
                                 std::size_t out_channels, std::size_t kernel,
                                 std::size_t pad, util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      pad_(pad) {
  if (in_channels == 0 || out_channels == 0 || kernel == 0)
    throw std::invalid_argument("SeparableConv2d: zero-sized configuration");
  dw_weight_ =
      Tensor::he_init({in_channels, kernel, kernel}, kernel * kernel, rng);
  dw_weight_grad_ = Tensor::zeros({in_channels, kernel, kernel});
  pw_weight_ =
      Tensor::he_init({out_channels, in_channels}, in_channels, rng);
  pw_weight_grad_ = Tensor::zeros({out_channels, in_channels});
  bias_ = Tensor::zeros({out_channels});
  bias_grad_ = Tensor::zeros({out_channels});
}

Shape SeparableConv2d::output_shape(const Shape& in) const {
  if (in.size() != 3)
    throw std::invalid_argument("SeparableConv2d::output_shape: expected CHW");
  // Same degeneracy screen as Conv2d: without it, in + 2*pad < kernel
  // underflows oh/ow to astronomically large sizes instead of erroring.
  tensor::ConvGeometry g{in_channels_, in[1], in[2], kernel_, 1, pad_};
  g.validate();
  return {out_channels_, g.out_h(), g.out_w()};
}

Tensor SeparableConv2d::forward(const Tensor& x, bool training) {
  if (x.rank() != 4 || x.dim(1) != in_channels_)
    throw std::invalid_argument("SeparableConv2d: bad input shape");
  const std::size_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  tensor::ConvGeometry geom{in_channels_, h, w, kernel_, 1, pad_};
  geom.validate();
  const std::size_t oh = geom.out_h();
  const std::size_t ow = geom.out_w();
  const std::size_t cells = oh * ow;
  if (training) {
    input_cache_ = x;
    in_shape_cache_ = x.shape();
    // Depthwise stage output persists until backward. Inference keeps one
    // image's worth on the executing thread's scratch arena instead.
    depthwise_out_cache_ = Tensor({batch, in_channels_, oh, ow});
  }

  // Depthwise stage: each channel convolved with its own KxK filter.
  // Images are independent, so both stages chunk over the batch.
  tensor::Epilogue ep;
  ep.bias = tensor::Epilogue::Bias::kPerRow;  // row = output channel
  ep.bias_data = bias_.data();
  Tensor out({batch, out_channels_, oh, ow});
  tensor::parallel_chunks(batch, [&](std::size_t, std::size_t chunk_begin,
                                     std::size_t chunk_end) {
  tensor::ScratchScope scratch;
  std::span<float> eval_dw;
  if (!training) eval_dw = scratch.alloc(in_channels_ * cells);
  for (std::size_t n = chunk_begin; n < chunk_end; ++n) {
    float* dw_image = training
                          ? depthwise_out_cache_.data() + n * in_channels_ * cells
                          : eval_dw.data();
    for (std::size_t c = 0; c < in_channels_; ++c) {
      const float* plane = x.data() + (n * in_channels_ + c) * h * w;
      const float* filt = dw_weight_.data() + c * kernel_ * kernel_;
      float* out_plane = dw_image + c * oh * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy + ky) -
                static_cast<std::ptrdiff_t>(pad_);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox + kx) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
              acc += filt[ky * kernel_ + kx] *
                     plane[static_cast<std::size_t>(iy) * w +
                           static_cast<std::size_t>(ix)];
            }
          }
          out_plane[oy * ow + ox] = acc;
        }
      }
    }
    // Pointwise stage with fused bias:
    // out(oc x cells) = PW(oc x in) * dw(in x cells) + bias.
    tensor::gemm_ex(out_channels_, in_channels_, cells, pw_weight_.data(),
                    dw_image, out.data() + n * out_channels_ * cells, ep);
  }
  });
  return out;
}

Tensor SeparableConv2d::backward(const Tensor& grad_out) {
  const std::size_t batch = in_shape_cache_[0];
  const std::size_t h = in_shape_cache_[2], w = in_shape_cache_[3];
  const std::size_t oh = h + 2 * pad_ - kernel_ + 1;
  const std::size_t ow = w + 2 * pad_ - kernel_ + 1;
  const std::size_t cells = oh * ow;

  Tensor grad_in(in_shape_cache_);
  // Chunk-private gradient slabs for all three parameter tensors, reduced
  // in chunk order after the parallel region.
  const std::size_t chunks = tensor::intra_op_chunks(batch);
  const std::size_t pw_n = out_channels_ * in_channels_;
  const std::size_t dwf_n = in_channels_ * kernel_ * kernel_;
  tensor::ScratchScope scratch;
  std::span<float> d_pw_slabs = scratch.alloc_zeroed(chunks * pw_n);
  std::span<float> db_slabs = scratch.alloc_zeroed(chunks * out_channels_);
  std::span<float> d_dwf_slabs = scratch.alloc_zeroed(chunks * dwf_n);
  tensor::parallel_chunks(batch, [&](std::size_t chunk,
                                     std::size_t chunk_begin,
                                     std::size_t chunk_end) {
  float* d_pw = d_pw_slabs.data() + chunk * pw_n;
  float* db = db_slabs.data() + chunk * out_channels_;
  float* d_dwf = d_dwf_slabs.data() + chunk * dwf_n;
  tensor::ScratchScope local;  // this worker thread's arena
  std::span<float> d_dw_out = local.alloc(in_channels_ * cells);
  for (std::size_t n = chunk_begin; n < chunk_end; ++n) {
    const float* gout = grad_out.data() + n * out_channels_ * cells;
    const float* dw_out =
        depthwise_out_cache_.data() + n * in_channels_ * cells;
    // dPW(oc x in) += gout(oc x cells) * dw_out^T(cells x in).
    tensor::gemm_a_bt_acc(out_channels_, cells, in_channels_, gout, dw_out,
                          d_pw);
    // dBias.
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      float acc = 0.0f;
      for (std::size_t i = 0; i < cells; ++i) acc += gout[oc * cells + i];
      db[oc] += acc;
    }
    // d_dw_out(in x cells) = PW^T(in x oc) * gout(oc x cells).
    tensor::gemm_at_b(in_channels_, out_channels_, cells, pw_weight_.data(),
                      gout, d_dw_out.data());

    // Depthwise backward per channel: filter grads (correlate input with
    // d_dw_out) and input grads (correlate d_dw_out with flipped filter).
    for (std::size_t c = 0; c < in_channels_; ++c) {
      const float* plane = input_cache_.data() + (n * in_channels_ + c) * h * w;
      const float* g = d_dw_out.data() + c * cells;
      float* filt_grad = d_dwf + c * kernel_ * kernel_;
      const float* filt = dw_weight_.data() + c * kernel_ * kernel_;
      float* in_grad = grad_in.data() + (n * in_channels_ + c) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float gv = g[oy * ow + ox];
          if (gv == 0.0f) continue;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy + ky) -
                static_cast<std::ptrdiff_t>(pad_);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox + kx) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
              const std::size_t in_idx =
                  static_cast<std::size_t>(iy) * w +
                  static_cast<std::size_t>(ix);
              filt_grad[ky * kernel_ + kx] += gv * plane[in_idx];
              in_grad[in_idx] += gv * filt[ky * kernel_ + kx];
            }
          }
        }
      }
    }
  }
  });
  for (std::size_t c = 0; c < chunks; ++c) {
    tensor::axpy(1.0f, d_pw_slabs.subspan(c * pw_n, pw_n),
                 pw_weight_grad_.span());
    tensor::axpy(1.0f, db_slabs.subspan(c * out_channels_, out_channels_),
                 bias_grad_.span());
    tensor::axpy(1.0f, d_dwf_slabs.subspan(c * dwf_n, dwf_n),
                 dw_weight_grad_.span());
  }
  return grad_in;
}

std::vector<ParamSlot> SeparableConv2d::params() {
  return {{"dw_weight", &dw_weight_, &dw_weight_grad_},
          {"pw_weight", &pw_weight_, &pw_weight_grad_},
          {"bias", &bias_, &bias_grad_}};
}

std::uint64_t SeparableConv2d::flops(const Shape& in) const {
  const Shape out = output_shape(in);
  const std::uint64_t cells = out[1] * out[2];
  const std::uint64_t depthwise = cells * in_channels_ * 2 * kernel_ * kernel_;
  const std::uint64_t pointwise = cells * out_channels_ * (2 * in_channels_ + 1);
  return depthwise + pointwise;
}

util::Json SeparableConv2d::spec() const {
  util::Json j = util::Json::object();
  j["kind"] = kind();
  j["in_channels"] = in_channels_;
  j["out_channels"] = out_channels_;
  j["kernel"] = kernel_;
  j["pad"] = pad_;
  return j;
}

util::Json SeparableConv2d::weights() const {
  util::Json j = util::Json::object();
  j["dw_weight"] = tensor_to_json(dw_weight_);
  j["pw_weight"] = tensor_to_json(pw_weight_);
  j["bias"] = tensor_to_json(bias_);
  return j;
}

void SeparableConv2d::load_weights(const util::Json& w) {
  Tensor dw = tensor_from_json(w.at("dw_weight"));
  Tensor pw = tensor_from_json(w.at("pw_weight"));
  Tensor b = tensor_from_json(w.at("bias"));
  if (!dw.same_shape(dw_weight_) || !pw.same_shape(pw_weight_) ||
      !b.same_shape(bias_))
    throw std::invalid_argument("SeparableConv2d::load_weights: shape mismatch");
  dw_weight_ = std::move(dw);
  pw_weight_ = std::move(pw);
  bias_ = std::move(b);
}

// --------------------------------------------------------------- AvgPool2d

AvgPool2d::AvgPool2d(std::size_t window) : window_(window) {
  if (window == 0) throw std::invalid_argument("AvgPool2d: window must be > 0");
}

Tensor AvgPool2d::forward(const Tensor& x, bool training) {
  if (x.rank() != 4)
    throw std::invalid_argument("AvgPool2d: expected NCHW input");
  const std::size_t batch = x.dim(0), ch = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (h < window_ || w < window_)
    throw std::invalid_argument("AvgPool2d: input smaller than window");
  const std::size_t oh = h / window_, ow = w / window_;
  if (training) in_shape_cache_ = x.shape();
  Tensor out({batch, ch, oh, ow});
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* plane = x.data() + (n * ch + c) * h * w;
      float* out_plane = out.data() + (n * ch + c) * oh * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              acc += plane[(oy * window_ + dy) * w + ox * window_ + dx];
            }
          }
          out_plane[oy * ow + ox] = acc * inv;
        }
      }
    }
  }
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  const std::size_t batch = in_shape_cache_[0], ch = in_shape_cache_[1];
  const std::size_t h = in_shape_cache_[2], w = in_shape_cache_[3];
  const std::size_t oh = h / window_, ow = w / window_;
  Tensor grad_in(in_shape_cache_);
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* g = grad_out.data() + (n * ch + c) * oh * ow;
      float* plane = grad_in.data() + (n * ch + c) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float gv = g[oy * ow + ox] * inv;
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              plane[(oy * window_ + dy) * w + ox * window_ + dx] = gv;
            }
          }
        }
      }
    }
  }
  return grad_in;
}

Shape AvgPool2d::output_shape(const Shape& in) const {
  if (in.size() != 3)
    throw std::invalid_argument("AvgPool2d::output_shape: expected CHW");
  return {in[0], in[1] / window_, in[2] / window_};
}

std::uint64_t AvgPool2d::flops(const Shape& in) const {
  return tensor::shape_numel(in);
}

util::Json AvgPool2d::spec() const {
  util::Json j = util::Json::object();
  j["kind"] = kind();
  j["window"] = window_;
  return j;
}

}  // namespace a4nn::nn
