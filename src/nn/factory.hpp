// Rebuild layers and trunks from their JSON specs — the reload half of the
// lineage tracker's "load and re-evaluate a model from any training epoch".
#pragma once

#include "nn/sequential.hpp"

namespace a4nn::nn {

/// Construct a layer from its spec(). Weights are freshly initialized from
/// `rng`; call load_weights() afterwards to restore a snapshot.
LayerPtr make_layer(const util::Json& spec, util::Rng& rng);

/// Construct a Sequential trunk from its spec().
std::unique_ptr<Sequential> make_sequential(const util::Json& spec,
                                            util::Rng& rng);

}  // namespace a4nn::nn
