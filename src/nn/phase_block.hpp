// NSGA-Net macro search-space phase.
//
// A phase is a small DAG over `n` nodes. Node j may receive the output of
// any earlier node i < j, controlled by a connectivity bit-string (the
// genome segment for this phase); a final bit adds a skip connection from
// the phase input to the phase output. Each active node applies
// Conv3x3(same channels) -> BatchNorm -> ReLU to the SUM of its inputs.
// Nodes with no incoming connections read the phase input; nodes whose
// output nobody consumes feed the phase output (summed), exactly as in
// Lu et al.'s NSGA-Net encoding.
#pragma once

#include <optional>

#include "nn/layers.hpp"

namespace a4nn::nn {

/// Node operations available in the extended (operation-searchable) space.
/// The paper's macro space always uses kConv3x3; enabling op search adds
/// two genome bits per node choosing among these four.
enum class NodeOp : std::uint8_t {
  kConv3x3 = 0,
  kSepConv3x3 = 1,
  kConv1x1 = 2,
  kSepConv5x5 = 3,
};
const char* node_op_name(NodeOp op);
inline constexpr std::size_t kNodeOpCount = 4;

/// Connectivity for one phase: bits[k] for pairs (i -> j), ordered
/// (0->1), (0->2), (1->2), (0->3), (1->3), (2->3), ...; plus skip bit.
/// `node_ops` is empty in the macro space (all conv3x3) or one entry per
/// node in the extended space.
struct PhaseSpec {
  std::size_t nodes = 0;
  std::vector<bool> bits;  // nodes*(nodes-1)/2 entries
  bool skip = false;
  std::vector<NodeOp> node_ops;  // empty, or `nodes` entries

  static std::size_t bits_for_nodes(std::size_t nodes) {
    return nodes * (nodes - 1) / 2;
  }
  /// Bit index for edge i -> j (i < j).
  static std::size_t edge_index(std::size_t i, std::size_t j) {
    return j * (j - 1) / 2 + i;
  }
  bool edge(std::size_t i, std::size_t j) const {
    return bits.at(edge_index(i, j));
  }
  NodeOp op_of(std::size_t node) const {
    return node_ops.empty() ? NodeOp::kConv3x3 : node_ops.at(node);
  }
};

class PhaseBlock : public Layer {
 public:
  /// channels: both input and output channel count of the phase.
  PhaseBlock(PhaseSpec spec, std::size_t channels, util::Rng& rng);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamSlot> params() override;
  Shape output_shape(const Shape& in) const override { return in; }
  std::uint64_t flops(const Shape& in) const override;
  std::string kind() const override { return "phase"; }
  util::Json spec() const override;
  util::Json weights() const override;
  void load_weights(const util::Json& w) override;

  const PhaseSpec& phase_spec() const { return spec_; }
  /// Indices of nodes that actually run (reachable with inputs).
  const std::vector<bool>& active() const { return active_; }
  /// Number of active (trained) nodes.
  std::size_t active_nodes() const;

 private:
  struct Node {
    LayerPtr op;  // conv3x3 / sepconv / conv1x1 per the phase spec
    std::unique_ptr<BatchNorm2d> bn;
    std::unique_ptr<ReLU> relu;
  };

  /// Inputs of node j: earlier active nodes with an edge, or the phase
  /// input if none.
  std::vector<std::size_t> node_inputs(std::size_t j) const;
  /// True for nodes whose output is consumed by a later active node.
  std::vector<bool> consumed_flags() const;

  PhaseSpec spec_;
  std::size_t channels_;
  std::vector<Node> nodes_;
  std::vector<bool> active_;
  // Forward caches: per-node output activations and the phase input.
  std::vector<Tensor> node_out_cache_;
  Tensor input_cache_;
};

}  // namespace a4nn::nn
