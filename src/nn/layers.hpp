// Concrete layers: Conv2d (im2col + GEMM), Linear, ReLU, MaxPool2d,
// GlobalAvgPool, Flatten, Dropout, and BatchNorm2d.
#pragma once

#include "nn/layer.hpp"
#include "tensor/ops.hpp"

namespace a4nn::nn {

/// Activation a GEMM-backed layer can fuse into its epilogue, so the
/// nonlinearity is applied during the GEMM writeback instead of by a
/// separate ReLU layer making another pass over the tensor. Produces
/// bit-identical values to the unfused Conv/Linear + ReLU pair.
enum class Activation { kNone, kRelu };

const char* activation_name(Activation a);
Activation activation_from_name(const std::string& name);

/// 2-d convolution with square kernels, implemented as im2col + GEMM.
/// Weight layout: (out_channels x in_channels*k*k); bias per out channel.
/// The bias add is fused into the GEMM epilogue; an optional ReLU can be
/// fused too (see Sequential::fuse_epilogues). Forward/backward are
/// chunk-parallel over the batch with a thread-count-independent partition.
class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, std::size_t pad, util::Rng& rng);

  Activation activation() const { return act_; }
  void set_activation(Activation a) { act_ = a; }

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamSlot> params() override;
  Shape output_shape(const Shape& in) const override;
  std::uint64_t flops(const Shape& in) const override;
  std::string kind() const override { return "conv2d"; }
  util::Json spec() const override;
  util::Json weights() const override;
  void load_weights(const util::Json& w) override;

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }

 private:
  tensor::ConvGeometry geometry(const Shape& in) const;

  std::size_t in_channels_, out_channels_, kernel_, stride_, pad_;
  Activation act_ = Activation::kNone;
  Tensor weight_, weight_grad_;
  Tensor bias_, bias_grad_;
  // Cached for backward.
  Tensor input_cache_;
  Tensor output_cache_;  // only when a ReLU is fused (its gradient mask)
  std::vector<float> columns_cache_;  // im2col per batch image, concatenated
  Shape in_shape_cache_;
};

/// Fully connected layer on flattened input (N x features). Bias (and an
/// optionally fused ReLU) are applied in the GEMM epilogue.
class Linear : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng);

  Activation activation() const { return act_; }
  void set_activation(Activation a) { act_ = a; }

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamSlot> params() override;
  Shape output_shape(const Shape& in) const override;
  std::uint64_t flops(const Shape& in) const override;
  std::string kind() const override { return "linear"; }
  util::Json spec() const override;
  util::Json weights() const override;
  void load_weights(const util::Json& w) override;

 private:
  std::size_t in_features_, out_features_;
  Activation act_ = Activation::kNone;
  Tensor weight_, weight_grad_;  // (out x in)
  Tensor bias_, bias_grad_;
  Tensor input_cache_;
  Tensor output_cache_;  // only when a ReLU is fused
};

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  Shape output_shape(const Shape& in) const override { return in; }
  std::uint64_t flops(const Shape& in) const override;
  std::string kind() const override { return "relu"; }
  util::Json spec() const override;

 private:
  Tensor input_cache_;
};

/// Max pooling with square window; window == stride (non-overlapping).
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(std::size_t window);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  Shape output_shape(const Shape& in) const override;
  std::uint64_t flops(const Shape& in) const override;
  std::string kind() const override { return "maxpool2d"; }
  util::Json spec() const override;

 private:
  std::size_t window_;
  Shape in_shape_cache_;
  std::vector<std::size_t> argmax_cache_;  // flat input index per output cell
};

/// Collapse each channel plane to its mean: (N,C,H,W) -> (N,C).
class GlobalAvgPool : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  Shape output_shape(const Shape& in) const override;
  std::uint64_t flops(const Shape& in) const override;
  std::string kind() const override { return "gap"; }
  util::Json spec() const override;

 private:
  Shape in_shape_cache_;
};

/// (N, C, H, W) -> (N, C*H*W).
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  Shape output_shape(const Shape& in) const override;
  std::uint64_t flops(const Shape&) const override { return 0; }
  std::string kind() const override { return "flatten"; }
  util::Json spec() const override;

 private:
  Shape in_shape_cache_;
};

/// Inverted dropout; identity at evaluation time.
class Dropout : public Layer {
 public:
  Dropout(double rate, std::uint64_t seed);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  Shape output_shape(const Shape& in) const override { return in; }
  std::uint64_t flops(const Shape& in) const override;
  std::string kind() const override { return "dropout"; }
  util::Json spec() const override;

 private:
  double rate_;
  util::Rng rng_;
  Tensor mask_cache_;
};

/// Per-channel batch normalization over (N, H, W) with learnable affine
/// parameters and running statistics for evaluation.
class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, double momentum = 0.1,
                       double eps = 1e-5);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamSlot> params() override;
  Shape output_shape(const Shape& in) const override { return in; }
  std::uint64_t flops(const Shape& in) const override;
  std::string kind() const override { return "batchnorm2d"; }
  util::Json spec() const override;
  util::Json weights() const override;
  void load_weights(const util::Json& w) override;

 private:
  std::size_t channels_;
  double momentum_, eps_;
  Tensor gamma_, gamma_grad_;
  Tensor beta_, beta_grad_;
  Tensor running_mean_, running_var_;
  // Backward caches.
  Tensor xhat_cache_;
  std::vector<double> batch_mean_, batch_inv_std_;
  Shape in_shape_cache_;
};

}  // namespace a4nn::nn
