// In-memory labeled image dataset with mini-batch iteration. The XFEL
// simulator produces these; the trainer and the XPSI baseline consume them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace a4nn::nn {

class Dataset {
 public:
  Dataset() = default;

  /// channels/height/width describe each image; images are appended via
  /// add_sample in row-major CHW order.
  Dataset(std::size_t channels, std::size_t height, std::size_t width);

  void add_sample(std::span<const float> image, std::int64_t label);

  std::size_t size() const { return labels_.size(); }
  std::size_t channels() const { return channels_; }
  std::size_t height() const { return height_; }
  std::size_t width() const { return width_; }
  std::size_t image_numel() const { return channels_ * height_ * width_; }
  tensor::Shape image_shape() const { return {channels_, height_, width_}; }

  std::span<const float> image(std::size_t i) const;
  std::int64_t label(std::size_t i) const { return labels_.at(i); }
  std::span<const std::int64_t> labels() const { return labels_; }
  std::size_t num_classes() const;

  /// Assemble a batch tensor (B x C x H x W) and labels for the given
  /// sample indices.
  struct Batch {
    tensor::Tensor images;
    std::vector<std::int64_t> labels;
  };
  Batch gather(std::span<const std::size_t> indices) const;

  /// Split into (first `head` samples, rest) after an optional shuffle —
  /// the 80/20 train/test split of the use case.
  std::pair<Dataset, Dataset> split(double head_fraction, util::Rng& rng) const;

 private:
  std::size_t channels_ = 0, height_ = 0, width_ = 0;
  std::vector<float> pixels_;
  std::vector<std::int64_t> labels_;
};

/// Yields index batches in shuffled order each epoch.
class BatchIterator {
 public:
  BatchIterator(std::size_t dataset_size, std::size_t batch_size,
                util::Rng& rng, bool shuffle = true);

  /// Next batch of indices, or empty when the epoch is exhausted.
  std::vector<std::size_t> next();
  void reset();

 private:
  std::size_t batch_size_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
  util::Rng* rng_;
  bool shuffle_;
};

}  // namespace a4nn::nn
