// Additional layer kinds for the extended (operation-searchable) search
// space: depthwise-separable convolution, average pooling, and an identity
// op. With these, a phase node can choose its operation instead of always
// applying Conv3x3 — the NSGA-Net micro-space idea grafted onto the macro
// encoding (this repo's "extended search space", see nas/search_space.hpp).
#pragma once

#include "nn/layers.hpp"

namespace a4nn::nn {

/// Depthwise-separable convolution: per-channel KxK depthwise convolution
/// followed by a 1x1 pointwise projection. ~K^2/(K^2+C_out) of a dense
/// convolution's FLOPs — the cheap-but-expressive op of mobile CNNs.
class SeparableConv2d : public Layer {
 public:
  SeparableConv2d(std::size_t in_channels, std::size_t out_channels,
                  std::size_t kernel, std::size_t pad, util::Rng& rng);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamSlot> params() override;
  Shape output_shape(const Shape& in) const override;
  std::uint64_t flops(const Shape& in) const override;
  std::string kind() const override { return "sepconv2d"; }
  util::Json spec() const override;
  util::Json weights() const override;
  void load_weights(const util::Json& w) override;

 private:
  std::size_t in_channels_, out_channels_, kernel_, pad_;
  // Depthwise: one KxK filter per input channel.
  Tensor dw_weight_, dw_weight_grad_;   // (in_channels x K x K)
  // Pointwise 1x1: (out x in).
  Tensor pw_weight_, pw_weight_grad_;
  Tensor bias_, bias_grad_;
  // Caches.
  Tensor input_cache_;
  Tensor depthwise_out_cache_;
  Shape in_shape_cache_;
};

/// Average pooling with square non-overlapping windows.
class AvgPool2d : public Layer {
 public:
  explicit AvgPool2d(std::size_t window);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  Shape output_shape(const Shape& in) const override;
  std::uint64_t flops(const Shape& in) const override;
  std::string kind() const override { return "avgpool2d"; }
  util::Json spec() const override;

 private:
  std::size_t window_;
  Shape in_shape_cache_;
};

/// Identity op (a "skip" node operation in the extended space).
class Identity : public Layer {
 public:
  Tensor forward(const Tensor& x, bool) override { return x; }
  Tensor backward(const Tensor& grad_out) override { return grad_out; }
  Shape output_shape(const Shape& in) const override { return in; }
  std::uint64_t flops(const Shape&) const override { return 0; }
  std::string kind() const override { return "identity"; }
  util::Json spec() const override {
    util::Json j = util::Json::object();
    j["kind"] = kind();
    return j;
  }
};

}  // namespace a4nn::nn
