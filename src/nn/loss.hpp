// Softmax cross-entropy loss with integer class labels, plus the accuracy
// metric that serves as the NAS fitness measurement.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace a4nn::nn {

struct LossResult {
  double loss = 0.0;          // mean cross-entropy over the batch
  tensor::Tensor grad;        // d(mean loss)/d(logits), same shape as logits
  std::size_t correct = 0;    // argmax(logits) == label count
};

/// logits: (N x classes); labels: N entries in [0, classes).
/// Numerically stable log-sum-exp formulation.
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 std::span<const std::int64_t> labels);

/// Softmax probabilities (row-wise), for inspection / the analyzer.
tensor::Tensor softmax(const tensor::Tensor& logits);

}  // namespace a4nn::nn
