#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace a4nn::nn {

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("Sgd: lr must be > 0");
  if (momentum < 0.0 || momentum >= 1.0)
    throw std::invalid_argument("Sgd: momentum must be in [0, 1)");
}

void Sgd::step(std::vector<ParamSlot>& slots) {
  for (auto& slot : slots) {
    Tensor& w = *slot.value;
    const Tensor& g = *slot.grad;
    auto& vel = velocity_[slot.value];
    if (vel.size() != w.numel()) vel.assign(w.numel(), 0.0f);
    for (std::size_t i = 0; i < w.numel(); ++i) {
      const float grad =
          g[i] + static_cast<float>(weight_decay_) * w[i];
      vel[i] = static_cast<float>(momentum_) * vel[i] + grad;
      w[i] -= static_cast<float>(lr_) * vel[i];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps,
           double weight_decay)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("Adam: lr must be > 0");
}

void Adam::step(std::vector<ParamSlot>& slots) {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (auto& slot : slots) {
    Tensor& w = *slot.value;
    const Tensor& g = *slot.grad;
    auto& st = state_[slot.value];
    if (st.m.size() != w.numel()) {
      st.m.assign(w.numel(), 0.0f);
      st.v.assign(w.numel(), 0.0f);
    }
    for (std::size_t i = 0; i < w.numel(); ++i) {
      const double grad = g[i] + weight_decay_ * w[i];
      st.m[i] = static_cast<float>(beta1_ * st.m[i] + (1.0 - beta1_) * grad);
      st.v[i] =
          static_cast<float>(beta2_ * st.v[i] + (1.0 - beta2_) * grad * grad);
      const double mhat = st.m[i] / bc1;
      const double vhat = st.v[i] / bc2;
      w[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace a4nn::nn
