#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace a4nn::nn {

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("Sgd: lr must be > 0");
  if (momentum < 0.0 || momentum >= 1.0)
    throw std::invalid_argument("Sgd: momentum must be in [0, 1)");
}

void Sgd::step(std::vector<ParamSlot>& slots) {
  for (auto& slot : slots) {
    Tensor& w = *slot.value;
    const Tensor& g = *slot.grad;
    auto& vel = velocity_[slot.value];
    if (vel.size() != w.numel()) vel.assign(w.numel(), 0.0f);
    for (std::size_t i = 0; i < w.numel(); ++i) {
      const float grad =
          g[i] + static_cast<float>(weight_decay_) * w[i];
      vel[i] = static_cast<float>(momentum_) * vel[i] + grad;
      w[i] -= static_cast<float>(lr_) * vel[i];
    }
  }
}

util::Json Sgd::state_json(const std::vector<ParamSlot>& slots) const {
  util::Json velocities = util::Json::array();
  for (const auto& slot : slots) {
    util::JsonArray arr;
    const auto it = velocity_.find(slot.value);
    if (it != velocity_.end()) {
      arr.reserve(it->second.size());
      for (float v : it->second) arr.emplace_back(static_cast<double>(v));
    }
    velocities.push_back(util::Json(std::move(arr)));
  }
  util::Json j = util::Json::object();
  j["kind"] = kind();
  j["velocity"] = std::move(velocities);
  return j;
}

void Sgd::load_state(const std::vector<ParamSlot>& slots,
                     const util::Json& j) {
  const auto& velocities = j.at("velocity").as_array();
  if (velocities.size() != slots.size())
    throw std::invalid_argument("Sgd::load_state: slot count mismatch");
  for (std::size_t s = 0; s < slots.size(); ++s) {
    const auto& arr = velocities[s].as_array();
    if (arr.empty()) continue;  // slot never stepped before the checkpoint
    if (arr.size() != slots[s].value->numel())
      throw std::invalid_argument("Sgd::load_state: velocity size mismatch");
    auto& vel = velocity_[slots[s].value];
    vel.resize(arr.size());
    for (std::size_t i = 0; i < arr.size(); ++i)
      vel[i] = static_cast<float>(arr[i].as_number());
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps,
           double weight_decay)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("Adam: lr must be > 0");
}

void Adam::step(std::vector<ParamSlot>& slots) {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (auto& slot : slots) {
    Tensor& w = *slot.value;
    const Tensor& g = *slot.grad;
    auto& st = state_[slot.value];
    if (st.m.size() != w.numel()) {
      st.m.assign(w.numel(), 0.0f);
      st.v.assign(w.numel(), 0.0f);
    }
    for (std::size_t i = 0; i < w.numel(); ++i) {
      const double grad = g[i] + weight_decay_ * w[i];
      st.m[i] = static_cast<float>(beta1_ * st.m[i] + (1.0 - beta1_) * grad);
      st.v[i] =
          static_cast<float>(beta2_ * st.v[i] + (1.0 - beta2_) * grad * grad);
      const double mhat = st.m[i] / bc1;
      const double vhat = st.v[i] / bc2;
      w[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace a4nn::nn
