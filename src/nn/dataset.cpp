#include "nn/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace a4nn::nn {

Dataset::Dataset(std::size_t channels, std::size_t height, std::size_t width)
    : channels_(channels), height_(height), width_(width) {
  if (channels == 0 || height == 0 || width == 0)
    throw std::invalid_argument("Dataset: zero-sized image geometry");
}

void Dataset::add_sample(std::span<const float> image, std::int64_t label) {
  if (image.size() != image_numel())
    throw std::invalid_argument("Dataset::add_sample: image size mismatch");
  if (label < 0)
    throw std::invalid_argument("Dataset::add_sample: negative label");
  pixels_.insert(pixels_.end(), image.begin(), image.end());
  labels_.push_back(label);
}

std::span<const float> Dataset::image(std::size_t i) const {
  if (i >= size()) throw std::out_of_range("Dataset::image: index out of range");
  return {pixels_.data() + i * image_numel(), image_numel()};
}

std::size_t Dataset::num_classes() const {
  std::int64_t max_label = -1;
  for (std::int64_t l : labels_) max_label = std::max(max_label, l);
  return static_cast<std::size_t>(max_label + 1);
}

Dataset::Batch Dataset::gather(std::span<const std::size_t> indices) const {
  Batch batch;
  batch.images = tensor::Tensor({indices.size(), channels_, height_, width_});
  batch.labels.reserve(indices.size());
  const std::size_t numel = image_numel();
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const auto img = image(indices[b]);
    std::copy(img.begin(), img.end(), batch.images.data() + b * numel);
    batch.labels.push_back(label(indices[b]));
  }
  return batch;
}

std::pair<Dataset, Dataset> Dataset::split(double head_fraction,
                                           util::Rng& rng) const {
  if (head_fraction <= 0.0 || head_fraction >= 1.0)
    throw std::invalid_argument("Dataset::split: fraction must be in (0, 1)");
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const std::size_t head_count =
      static_cast<std::size_t>(head_fraction * static_cast<double>(size()));
  Dataset head(channels_, height_, width_);
  Dataset tail(channels_, height_, width_);
  for (std::size_t i = 0; i < order.size(); ++i) {
    Dataset& dst = i < head_count ? head : tail;
    dst.add_sample(image(order[i]), label(order[i]));
  }
  return {std::move(head), std::move(tail)};
}

BatchIterator::BatchIterator(std::size_t dataset_size, std::size_t batch_size,
                             util::Rng& rng, bool shuffle)
    : batch_size_(batch_size), rng_(&rng), shuffle_(shuffle) {
  if (batch_size == 0)
    throw std::invalid_argument("BatchIterator: batch size must be > 0");
  order_.resize(dataset_size);
  std::iota(order_.begin(), order_.end(), 0);
  reset();
}

std::vector<std::size_t> BatchIterator::next() {
  if (cursor_ >= order_.size()) return {};
  const std::size_t end = std::min(cursor_ + batch_size_, order_.size());
  std::vector<std::size_t> batch(order_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                                 order_.begin() + static_cast<std::ptrdiff_t>(end));
  cursor_ = end;
  return batch;
}

void BatchIterator::reset() {
  cursor_ = 0;
  if (shuffle_) rng_->shuffle(order_);
}

}  // namespace a4nn::nn
