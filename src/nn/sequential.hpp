// Ordered container of layers with pass-through forward/backward.
#pragma once

#include "nn/layer.hpp"

namespace a4nn::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;

  void append(LayerPtr layer);

  /// Graph optimization: merge each Conv2d/Linear + following ReLU pair
  /// into the GEMM layer's fused epilogue and drop the standalone ReLU.
  /// Values and gradients are bit-identical to the unfused network. Call
  /// before training/serialization; the fused spec round-trips through the
  /// layer factory. Returns the number of pairs fused.
  std::size_t fuse_epilogues();

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamSlot> params() override;
  Shape output_shape(const Shape& in) const override;
  std::uint64_t flops(const Shape& in) const override;
  std::string kind() const override { return "sequential"; }
  util::Json spec() const override;
  util::Json weights() const override;
  void load_weights(const util::Json& w) override;

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace a4nn::nn
