#include "nn/model.hpp"

#include <stdexcept>

#include "nn/factory.hpp"
#include "nn/loss.hpp"

namespace a4nn::nn {

Model::Model(std::unique_ptr<Sequential> trunk, Shape input_shape)
    : trunk_(std::move(trunk)), input_shape_(std::move(input_shape)) {
  if (!trunk_) throw std::invalid_argument("Model: null trunk");
  if (input_shape_.size() != 3)
    throw std::invalid_argument("Model: input shape must be CHW");
  // Validate that the trunk produces class scores for this input.
  const Shape out = trunk_->output_shape(input_shape_);
  if (out.size() != 1 || out[0] < 2)
    throw std::invalid_argument(
        "Model: trunk must map CHW input to a class-score vector");
}

EpochMetrics Model::train_epoch(const Dataset& data, std::size_t batch_size,
                                Optimizer& opt, util::Rng& rng) {
  if (data.size() == 0)
    throw std::invalid_argument("Model::train_epoch: empty dataset");
  BatchIterator it(data.size(), batch_size, rng, /*shuffle=*/true);
  double loss_sum = 0.0;
  std::size_t correct = 0, seen = 0;
  auto slots = trunk_->params();
  for (auto indices = it.next(); !indices.empty(); indices = it.next()) {
    const auto batch = data.gather(indices);
    trunk_->zero_grad();
    const Tensor logits = trunk_->forward(batch.images, /*training=*/true);
    LossResult res = softmax_cross_entropy(logits, batch.labels);
    trunk_->backward(res.grad);
    opt.step(slots);
    loss_sum += res.loss * static_cast<double>(indices.size());
    correct += res.correct;
    seen += indices.size();
  }
  EpochMetrics m;
  m.loss = loss_sum / static_cast<double>(seen);
  m.accuracy = 100.0 * static_cast<double>(correct) / static_cast<double>(seen);
  return m;
}

EpochMetrics Model::evaluate(const Dataset& data, std::size_t batch_size) {
  if (data.size() == 0)
    throw std::invalid_argument("Model::evaluate: empty dataset");
  util::Rng noshuffle(0);
  BatchIterator it(data.size(), batch_size, noshuffle, /*shuffle=*/false);
  double loss_sum = 0.0;
  std::size_t correct = 0, seen = 0;
  for (auto indices = it.next(); !indices.empty(); indices = it.next()) {
    const auto batch = data.gather(indices);
    const Tensor logits = trunk_->forward(batch.images, /*training=*/false);
    LossResult res = softmax_cross_entropy(logits, batch.labels);
    loss_sum += res.loss * static_cast<double>(indices.size());
    correct += res.correct;
    seen += indices.size();
  }
  EpochMetrics m;
  m.loss = loss_sum / static_cast<double>(seen);
  m.accuracy = 100.0 * static_cast<double>(correct) / static_cast<double>(seen);
  return m;
}

Tensor Model::predict(const Tensor& images) {
  return trunk_->forward(images, /*training=*/false);
}

std::uint64_t Model::flops_per_image() const {
  return trunk_->flops(input_shape_);
}

std::size_t Model::parameter_count() {
  std::size_t n = 0;
  for (const auto& p : trunk_->params()) n += p.value->numel();
  return n;
}

util::Json Model::checkpoint() const {
  util::Json j = util::Json::object();
  util::JsonArray shape;
  for (std::size_t d : input_shape_) shape.emplace_back(d);
  j["input_shape"] = util::Json(std::move(shape));
  j["spec"] = trunk_->spec();
  j["weights"] = trunk_->weights();
  return j;
}

Model Model::from_checkpoint(const util::Json& ckpt) {
  Shape input_shape;
  for (const auto& d : ckpt.at("input_shape").as_array())
    input_shape.push_back(static_cast<std::size_t>(d.as_int()));
  // The RNG only seeds throwaway initial weights; the snapshot overwrites
  // them, so any fixed seed gives identical results.
  util::Rng rng(0);
  auto trunk = make_sequential(ckpt.at("spec"), rng);
  trunk->load_weights(ckpt.at("weights"));
  return Model(std::move(trunk), std::move(input_shape));
}

}  // namespace a4nn::nn
