// A trainable classifier: a Sequential trunk plus training/evaluation
// driver methods, FLOPs/parameter accounting, and whole-model JSON
// checkpoints (spec + weights) that the lineage tracker stores per epoch.
#pragma once

#include <memory>

#include "nn/dataset.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace a4nn::nn {

struct EpochMetrics {
  double loss = 0.0;       // mean loss
  double accuracy = 0.0;   // percentage, [0, 100]
};

class Model {
 public:
  /// Takes ownership of the trunk; `input_shape` is one image (C,H,W).
  Model(std::unique_ptr<Sequential> trunk, Shape input_shape);

  /// One pass over the training set with mini-batch SGD.
  EpochMetrics train_epoch(const Dataset& data, std::size_t batch_size,
                           Optimizer& opt, util::Rng& rng);

  /// Full-dataset evaluation (no parameter updates, eval-mode layers).
  EpochMetrics evaluate(const Dataset& data, std::size_t batch_size = 64);

  /// Forward a batch (inference mode).
  Tensor predict(const Tensor& images);

  std::uint64_t flops_per_image() const;
  std::size_t parameter_count();

  const Shape& input_shape() const { return input_shape_; }
  Sequential& trunk() { return *trunk_; }
  const Sequential& trunk() const { return *trunk_; }

  /// Full checkpoint: {"input_shape", "spec", "weights"}.
  util::Json checkpoint() const;
  /// Rebuild a model (architecture + weights) from a checkpoint.
  static Model from_checkpoint(const util::Json& ckpt);

 private:
  std::unique_ptr<Sequential> trunk_;
  Shape input_shape_;
};

}  // namespace a4nn::nn
