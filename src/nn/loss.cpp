#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace a4nn::nn {

LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 std::span<const std::int64_t> labels) {
  if (logits.rank() != 2)
    throw std::invalid_argument("softmax_cross_entropy: logits must be 2-d");
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  if (labels.size() != batch)
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");

  LossResult result;
  result.grad = tensor::Tensor(logits.shape());
  double total = 0.0;
  for (std::size_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    const std::int64_t label = labels[n];
    if (label < 0 || static_cast<std::size_t>(label) >= classes)
      throw std::invalid_argument("softmax_cross_entropy: label out of range");

    float max_logit = row[0];
    for (std::size_t c = 1; c < classes; ++c)
      max_logit = std::max(max_logit, row[c]);
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c)
      denom += std::exp(static_cast<double>(row[c] - max_logit));
    const double log_denom = std::log(denom);
    total += log_denom - (row[static_cast<std::size_t>(label)] - max_logit);

    float* grad_row = result.grad.data() + n * classes;
    for (std::size_t c = 0; c < classes; ++c) {
      const double p =
          std::exp(static_cast<double>(row[c] - max_logit)) / denom;
      grad_row[c] = static_cast<float>(
          (p - (c == static_cast<std::size_t>(label) ? 1.0 : 0.0)) /
          static_cast<double>(batch));
    }
    if (tensor::argmax({row, classes}) == static_cast<std::size_t>(label))
      ++result.correct;
  }
  result.loss = total / static_cast<double>(batch);
  return result;
}

tensor::Tensor softmax(const tensor::Tensor& logits) {
  if (logits.rank() != 2)
    throw std::invalid_argument("softmax: logits must be 2-d");
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  tensor::Tensor out(logits.shape());
  for (std::size_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    float* out_row = out.data() + n * classes;
    float max_logit = row[0];
    for (std::size_t c = 1; c < classes; ++c)
      max_logit = std::max(max_logit, row[c]);
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c)
      denom += std::exp(static_cast<double>(row[c] - max_logit));
    for (std::size_t c = 0; c < classes; ++c)
      out_row[c] = static_cast<float>(
          std::exp(static_cast<double>(row[c] - max_logit)) / denom);
  }
  return out;
}

}  // namespace a4nn::nn
