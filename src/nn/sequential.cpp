#include "nn/sequential.hpp"

#include <stdexcept>

#include "nn/layers.hpp"

namespace a4nn::nn {

void Sequential::append(LayerPtr layer) {
  if (!layer) throw std::invalid_argument("Sequential::append: null layer");
  layers_.push_back(std::move(layer));
}

std::size_t Sequential::fuse_epilogues() {
  std::size_t fused = 0;
  std::vector<LayerPtr> kept;
  kept.reserve(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Layer* cur = layers_[i].get();
    const bool next_is_relu =
        i + 1 < layers_.size() &&
        dynamic_cast<ReLU*>(layers_[i + 1].get()) != nullptr;
    if (next_is_relu) {
      auto* conv = dynamic_cast<Conv2d*>(cur);
      auto* lin = conv ? nullptr : dynamic_cast<Linear*>(cur);
      if ((conv && conv->activation() == Activation::kNone) ||
          (lin && lin->activation() == Activation::kNone)) {
        if (conv) conv->set_activation(Activation::kRelu);
        if (lin) lin->set_activation(Activation::kRelu);
        kept.push_back(std::move(layers_[i]));
        ++i;  // drop the ReLU
        ++fused;
        continue;
      }
    }
    kept.push_back(std::move(layers_[i]));
  }
  layers_ = std::move(kept);
  return fused;
}

Tensor Sequential::forward(const Tensor& x, bool training) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h, training);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<ParamSlot> Sequential::params() {
  std::vector<ParamSlot> out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    for (auto& p : layers_[i]->params()) {
      p.name = "layer" + std::to_string(i) + "." + p.name;
      out.push_back(p);
    }
  }
  return out;
}

Shape Sequential::output_shape(const Shape& in) const {
  Shape s = in;
  for (const auto& layer : layers_) s = layer->output_shape(s);
  return s;
}

std::uint64_t Sequential::flops(const Shape& in) const {
  std::uint64_t total = 0;
  Shape s = in;
  for (const auto& layer : layers_) {
    total += layer->flops(s);
    s = layer->output_shape(s);
  }
  return total;
}

util::Json Sequential::spec() const {
  util::Json j = util::Json::object();
  j["kind"] = kind();
  util::JsonArray layers;
  for (const auto& layer : layers_) layers.push_back(layer->spec());
  j["layers"] = util::Json(std::move(layers));
  return j;
}

util::Json Sequential::weights() const {
  util::Json j = util::Json::object();
  util::JsonArray layers;
  for (const auto& layer : layers_) layers.push_back(layer->weights());
  j["layers"] = util::Json(std::move(layers));
  return j;
}

void Sequential::load_weights(const util::Json& w) {
  const auto& arr = w.at("layers").as_array();
  if (arr.size() != layers_.size())
    throw std::invalid_argument("Sequential::load_weights: layer count mismatch");
  for (std::size_t i = 0; i < layers_.size(); ++i)
    layers_[i]->load_weights(arr[i]);
}

}  // namespace a4nn::nn
