#include "nn/phase_block.hpp"

#include <stdexcept>

#include "nn/layers_extra.hpp"

namespace a4nn::nn {

const char* node_op_name(NodeOp op) {
  switch (op) {
    case NodeOp::kConv3x3: return "conv3x3";
    case NodeOp::kSepConv3x3: return "sepconv3x3";
    case NodeOp::kConv1x1: return "conv1x1";
    case NodeOp::kSepConv5x5: return "sepconv5x5";
  }
  return "?";
}

namespace {

LayerPtr make_node_op(NodeOp op, std::size_t channels, util::Rng& rng) {
  switch (op) {
    case NodeOp::kConv3x3:
      return std::make_unique<Conv2d>(channels, channels, 3, 1, 1, rng);
    case NodeOp::kSepConv3x3:
      return std::make_unique<SeparableConv2d>(channels, channels, 3, 1, rng);
    case NodeOp::kConv1x1:
      return std::make_unique<Conv2d>(channels, channels, 1, 1, 0, rng);
    case NodeOp::kSepConv5x5:
      return std::make_unique<SeparableConv2d>(channels, channels, 5, 2, rng);
  }
  throw std::invalid_argument("make_node_op: unknown op code");
}

}  // namespace

PhaseBlock::PhaseBlock(PhaseSpec spec, std::size_t channels, util::Rng& rng)
    : spec_(std::move(spec)), channels_(channels) {
  if (spec_.nodes == 0)
    throw std::invalid_argument("PhaseBlock: need at least one node");
  if (spec_.bits.size() != PhaseSpec::bits_for_nodes(spec_.nodes))
    throw std::invalid_argument("PhaseBlock: wrong connectivity bit count");
  if (!spec_.node_ops.empty() && spec_.node_ops.size() != spec_.nodes)
    throw std::invalid_argument("PhaseBlock: wrong node_ops count");

  // A node participates if it touches at least one edge; isolated nodes are
  // pruned (NSGA-Net semantics). An all-zero phase is repaired to a single
  // default node so every phase computes something.
  active_.assign(spec_.nodes, false);
  for (std::size_t j = 1; j < spec_.nodes; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      if (spec_.edge(i, j)) {
        active_[i] = true;
        active_[j] = true;
      }
    }
  }
  bool any_active = false;
  for (bool a : active_) any_active |= a;
  if (!any_active) active_[0] = true;

  nodes_.resize(spec_.nodes);
  for (std::size_t j = 0; j < spec_.nodes; ++j) {
    if (!active_[j]) continue;
    nodes_[j].op = make_node_op(spec_.op_of(j), channels_, rng);
    nodes_[j].bn = std::make_unique<BatchNorm2d>(channels_);
    nodes_[j].relu = std::make_unique<ReLU>();
  }
}

std::vector<std::size_t> PhaseBlock::node_inputs(std::size_t j) const {
  std::vector<std::size_t> in;
  for (std::size_t i = 0; i < j; ++i) {
    if (active_[i] && spec_.edge(i, j)) in.push_back(i);
  }
  return in;
}

std::vector<bool> PhaseBlock::consumed_flags() const {
  std::vector<bool> consumed(spec_.nodes, false);
  for (std::size_t j = 1; j < spec_.nodes; ++j) {
    if (!active_[j]) continue;
    for (std::size_t i : node_inputs(j)) consumed[i] = true;
  }
  return consumed;
}

std::size_t PhaseBlock::active_nodes() const {
  std::size_t n = 0;
  for (bool a : active_) n += a ? 1 : 0;
  return n;
}

Tensor PhaseBlock::forward(const Tensor& x, bool training) {
  // Inference keeps the node dataflow in a local buffer so the member
  // caches (needed only by backward) stay untouched — see Layer::forward's
  // purity contract.
  std::vector<Tensor> local_out;
  std::vector<Tensor>& node_out =
      training ? node_out_cache_ : local_out;
  if (training) input_cache_ = x;
  node_out.assign(spec_.nodes, Tensor());
  for (std::size_t j = 0; j < spec_.nodes; ++j) {
    if (!active_[j]) continue;
    const auto inputs = node_inputs(j);
    Tensor node_in;
    if (inputs.empty()) {
      node_in = x;
    } else {
      node_in = node_out[inputs[0]];
      for (std::size_t k = 1; k < inputs.size(); ++k)
        node_in = tensor::add(node_in, node_out[inputs[k]]);
    }
    Tensor h = nodes_[j].op->forward(node_in, training);
    h = nodes_[j].bn->forward(h, training);
    node_out[j] = nodes_[j].relu->forward(h, training);
  }

  const auto consumed = consumed_flags();
  Tensor out;
  bool have_out = false;
  for (std::size_t j = 0; j < spec_.nodes; ++j) {
    if (!active_[j] || consumed[j]) continue;
    if (!have_out) {
      out = node_out[j];
      have_out = true;
    } else {
      out = tensor::add(out, node_out[j]);
    }
  }
  if (!have_out) out = x;  // unreachable after repair, kept for safety
  if (spec_.skip) out = tensor::add(out, x);
  return out;
}

Tensor PhaseBlock::backward(const Tensor& grad_out) {
  const auto consumed = consumed_flags();
  // Per-node output gradients, accumulated from the phase output and from
  // every later node that consumed this node.
  std::vector<Tensor> node_grad(spec_.nodes);
  Tensor input_grad(input_cache_.shape());

  auto accumulate = [](Tensor& dst, const Tensor& src) {
    if (dst.numel() == 0) {
      dst = src;
    } else {
      dst = tensor::add(dst, src);
    }
  };

  for (std::size_t j = 0; j < spec_.nodes; ++j) {
    if (active_[j] && !consumed[j]) accumulate(node_grad[j], grad_out);
  }
  if (spec_.skip) input_grad = tensor::add(input_grad, grad_out);

  for (std::size_t jj = spec_.nodes; jj-- > 0;) {
    if (!active_[jj] || node_grad[jj].numel() == 0) continue;
    Tensor g = nodes_[jj].relu->backward(node_grad[jj]);
    g = nodes_[jj].bn->backward(g);
    g = nodes_[jj].op->backward(g);
    const auto inputs = node_inputs(jj);
    if (inputs.empty()) {
      input_grad = tensor::add(input_grad, g);
    } else {
      for (std::size_t i : inputs) accumulate(node_grad[i], g);
    }
  }
  return input_grad;
}

std::vector<ParamSlot> PhaseBlock::params() {
  std::vector<ParamSlot> out;
  for (std::size_t j = 0; j < spec_.nodes; ++j) {
    if (!active_[j]) continue;
    for (auto* layer :
         std::initializer_list<Layer*>{nodes_[j].op.get(), nodes_[j].bn.get()}) {
      for (auto& p : layer->params()) {
        p.name = "node" + std::to_string(j) + "." + p.name;
        out.push_back(p);
      }
    }
  }
  return out;
}

std::uint64_t PhaseBlock::flops(const Shape& in) const {
  std::uint64_t total = 0;
  for (std::size_t j = 0; j < spec_.nodes; ++j) {
    if (!active_[j]) continue;
    total += nodes_[j].op->flops(in);
    total += nodes_[j].bn->flops(in);
    total += nodes_[j].relu->flops(in);
  }
  // Elementwise additions for fan-in sums and skip connection.
  total += tensor::shape_numel(in) * (active_nodes() + (spec_.skip ? 1 : 0));
  return total;
}

util::Json PhaseBlock::spec() const {
  util::Json j = util::Json::object();
  j["kind"] = kind();
  j["nodes"] = spec_.nodes;
  j["channels"] = channels_;
  util::JsonArray bits;
  for (bool b : spec_.bits) bits.emplace_back(b);
  j["bits"] = util::Json(std::move(bits));
  j["skip"] = spec_.skip;
  if (!spec_.node_ops.empty()) {
    util::JsonArray ops;
    for (NodeOp op : spec_.node_ops)
      ops.emplace_back(static_cast<std::int64_t>(op));
    j["node_ops"] = util::Json(std::move(ops));
  }
  return j;
}

util::Json PhaseBlock::weights() const {
  util::Json j = util::Json::object();
  for (std::size_t n = 0; n < spec_.nodes; ++n) {
    if (!active_[n]) continue;
    util::Json node = util::Json::object();
    node["op"] = nodes_[n].op->weights();
    node["bn"] = nodes_[n].bn->weights();
    j["node" + std::to_string(n)] = std::move(node);
  }
  return j;
}

void PhaseBlock::load_weights(const util::Json& w) {
  for (std::size_t n = 0; n < spec_.nodes; ++n) {
    if (!active_[n]) continue;
    const auto& node = w.at("node" + std::to_string(n));
    nodes_[n].op->load_weights(node.at("op"));
    nodes_[n].bn->load_weights(node.at("bn"));
  }
}

}  // namespace a4nn::nn
